package elastic

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
)

// newElasticCluster builds an elastic partitioned cluster: nParts
// sub-clusters of (1 master + nSlaves) each, hash-ruled on kv.k, nbuckets
// virtual buckets, with the kv schema loaded.
func newElasticCluster(t *testing.T, nParts, nSlaves, nbuckets int, msCfg core.MasterSlaveConfig) (*core.Partitioned, []*core.MasterSlave) {
	t.Helper()
	parts := make([]*core.MasterSlave, nParts)
	for i := range parts {
		parts[i] = newSubCluster(t, fmt.Sprintf("p%d", i), nSlaves, msCfg)
	}
	pc, err := core.NewElasticPartitioned(parts, []*core.PartitionRule{{
		Table: "kv", Column: "k", Strategy: core.HashPartition,
	}}, nbuckets)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)
	sess := pc.NewSession("boot")
	defer sess.Close()
	for _, sql := range []string{
		"CREATE DATABASE app",
		"USE app",
		"CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)",
	} {
		if _, err := sess.Exec(sql); err != nil {
			t.Fatalf("bootstrap %q: %v", sql, err)
		}
	}
	return pc, parts
}

func newSubCluster(t *testing.T, name string, nSlaves int, cfg core.MasterSlaveConfig) *core.MasterSlave {
	t.Helper()
	master := core.NewReplica(core.ReplicaConfig{Name: name + "-m"})
	slaves := make([]*core.Replica, nSlaves)
	for j := range slaves {
		slaves[j] = core.NewReplica(core.ReplicaConfig{Name: fmt.Sprintf("%s-s%d", name, j+1)})
	}
	if nSlaves == 0 {
		cfg.ReadFromMaster = true
	}
	ms := core.NewMasterSlave(master, slaves, cfg)
	t.Cleanup(ms.Close)
	return ms
}

// seedRows inserts ids [1, n] through the router.
func seedRows(t *testing.T, pc *core.Partitioned, n int) {
	t.Helper()
	sess := pc.NewSession("seed")
	defer sess.Close()
	if _, err := sess.Exec("USE app"); err != nil {
		t.Fatal(err)
	}
	var values []string
	for i := 1; i <= n; i++ {
		values = append(values, fmt.Sprintf("(%d, 0)", i))
	}
	if _, err := sess.Exec("INSERT INTO kv (k, v) VALUES " + strings.Join(values, ", ")); err != nil {
		t.Fatal(err)
	}
}

// writers runs nw concurrent keyed-insert loops through the router until
// stop closes, retrying retryable routing errors, and returns the set of
// acknowledged keys. Keys start above base to stay clear of seeded rows.
func writers(t *testing.T, pc *core.Partitioned, nw, base int, stop chan struct{}) *ackSet {
	t.Helper()
	acks := &ackSet{keys: make(map[int]bool)}
	for w := 0; w < nw; w++ {
		go func(w int) {
			sess := pc.NewSession(fmt.Sprintf("w%d", w))
			defer sess.Close()
			if _, err := sess.Exec("USE app"); err != nil {
				t.Errorf("writer %d: USE: %v", w, err)
				return
			}
			k := base + w
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := sess.Exec(fmt.Sprintf("INSERT INTO kv (k, v) VALUES (%d, %d)", k, w))
				if err == nil {
					acks.add(k)
					k += nw
					continue
				}
				if errors.Is(err, core.ErrRangeMoved) {
					continue // retryable by contract: re-route and retry
				}
				// Transient failover windows surface as other errors; retry
				// without acking.
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}
	return acks
}

type ackSet struct {
	mu   sync.Mutex
	keys map[int]bool
}

func (a *ackSet) add(k int) {
	a.mu.Lock()
	a.keys[k] = true
	a.mu.Unlock()
}

func (a *ackSet) snapshot() map[int]bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]bool, len(a.keys))
	for k := range a.keys {
		out[k] = true
	}
	return out
}

// auditCluster collects every kv row from every partition master and fails
// on duplicates (double-applied writes) or missing acknowledged keys (lost
// writes).
func auditCluster(t *testing.T, pc *core.Partitioned, acked map[int]bool) {
	t.Helper()
	seen := make(map[int]int)
	rt := pc.RouteTable()
	for pi, p := range rt.Partitions() {
		sess := p.NewSession("audit")
		if _, err := sess.Exec("USE app"); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Exec("SELECT k FROM kv")
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		rule := rt.Rule("kv")
		owned := make(map[int]bool)
		for _, b := range rt.OwnedBuckets(pi) {
			owned[b] = true
		}
		for _, row := range res.Rows {
			k := int(row[0].Int())
			seen[k]++
			bk, err := rule.BucketFor(row[0], rt.NumBuckets())
			if err != nil {
				t.Fatal(err)
			}
			if !owned[bk] {
				t.Errorf("key %d (bucket %d) physically on partition %d which does not own it", k, bk, pi)
			}
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("key %d applied %d times (double-applied write)", k, n)
		}
	}
	for k := range acked {
		if seen[k] == 0 {
			t.Errorf("acknowledged key %d lost", k)
		}
	}
}

// TestSplitToFreshPartitionUnderLoad migrates half a partition's buckets to
// a brand-new sub-cluster while writers hammer the router: zero lost or
// double-applied acknowledged writes, and the routing table grows a member.
func TestSplitToFreshPartitionUnderLoad(t *testing.T) {
	pc, _ := newElasticCluster(t, 2, 1, 8, core.MasterSlaveConfig{Consistency: core.SessionConsistent})
	seedRows(t, pc, 64)
	epoch0 := pc.RouteTable().Epoch()

	stop := make(chan struct{})
	acks := writers(t, pc, 4, 1000, stop)
	time.Sleep(10 * time.Millisecond) // writes in flight before the split

	dest := newSubCluster(t, "fresh", 1, core.MasterSlaveConfig{Consistency: core.SessionConsistent})
	r := NewRebalancer(pc, RebalancerConfig{})
	if err := r.Split(0, dest); err != nil {
		close(stop)
		t.Fatalf("split: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // writes in flight after the cutover
	close(stop)
	time.Sleep(5 * time.Millisecond)

	rt := pc.RouteTable()
	if rt.Epoch() != epoch0+1 {
		t.Fatalf("epoch = %d, want %d", rt.Epoch(), epoch0+1)
	}
	if len(rt.Partitions()) != 3 {
		t.Fatalf("partitions = %d, want 3", len(rt.Partitions()))
	}
	if rt.PartIndex(dest) < 0 {
		t.Fatal("fresh destination not routed")
	}
	if r.Completed() != 1 || r.Aborted() != 0 {
		t.Fatalf("completed=%d aborted=%d", r.Completed(), r.Aborted())
	}
	acked := acks.snapshot()
	if len(acked) == 0 {
		t.Fatal("no writes acknowledged during migration")
	}
	auditCluster(t, pc, acked)
}

// TestMigrateToExistingPartition moves buckets between two routed members
// (the filtered-copy path) under load.
func TestMigrateToExistingPartition(t *testing.T) {
	pc, parts := newElasticCluster(t, 2, 1, 8, core.MasterSlaveConfig{Consistency: core.SessionConsistent})
	seedRows(t, pc, 64)

	stop := make(chan struct{})
	acks := writers(t, pc, 4, 1000, stop)
	time.Sleep(10 * time.Millisecond)

	rt := pc.RouteTable()
	owned := rt.OwnedBuckets(0)
	moving := owned[len(owned)/2:]
	r := NewRebalancer(pc, RebalancerConfig{})
	if err := r.Migrate(moving, parts[1]); err != nil {
		close(stop)
		t.Fatalf("migrate: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	time.Sleep(5 * time.Millisecond)

	rt = pc.RouteTable()
	for _, b := range moving {
		if rt.Owner(b) != parts[1] {
			t.Fatalf("bucket %d not moved", b)
		}
	}
	if len(rt.Partitions()) != 2 {
		t.Fatalf("partitions = %d, want 2", len(rt.Partitions()))
	}
	auditCluster(t, pc, acks.snapshot())
}

// TestMergeRetiresPartition merges one partition into another and drops it
// from routing in the same install; row counts survive.
func TestMergeRetiresPartition(t *testing.T) {
	pc, parts := newElasticCluster(t, 2, 1, 8, core.MasterSlaveConfig{Consistency: core.SessionConsistent})
	seedRows(t, pc, 64)

	r := NewRebalancer(pc, RebalancerConfig{})
	retired, err := r.Merge(0, 1)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if retired != parts[0] {
		t.Fatal("merge returned the wrong retired cluster")
	}
	rt := pc.RouteTable()
	if len(rt.Partitions()) != 1 || rt.Partitions()[0] != parts[1] {
		t.Fatalf("routing after merge: %d partitions", len(rt.Partitions()))
	}
	sess := pc.NewSession("check")
	defer sess.Close()
	if _, err := sess.Exec("USE app"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 64 {
		t.Fatalf("rows after merge = %d, want 64", got)
	}
	auditCluster(t, pc, nil)
}

// TestMigrationAbortsWhenDestinationDies is the first required chaos case:
// the destination master dies mid-migration; the migration aborts cleanly,
// the routing epoch never advances, and the source keeps serving.
func TestMigrationAbortsWhenDestinationDies(t *testing.T) {
	pc, _ := newElasticCluster(t, 2, 1, 8, core.MasterSlaveConfig{Consistency: core.SessionConsistent})
	seedRows(t, pc, 32)
	epoch0 := pc.RouteTable().Epoch()

	// Writers outpace the throttled tail, holding the migration in its
	// streaming phase until the kill lands.
	stop := make(chan struct{})
	writers(t, pc, 4, 1000, stop)
	defer close(stop)

	dest := newSubCluster(t, "doomed", 0, core.MasterSlaveConfig{})
	r := NewRebalancer(pc, RebalancerConfig{
		TailBatch: 8, TailDelay: 2 * time.Millisecond, CatchupThreshold: 2,
		CatchupTimeout: 30 * time.Second,
	})
	done := make(chan error, 1)
	go func() { done <- r.Split(0, dest) }()

	// Wait for the migration to enter its streaming phase, then kill the
	// destination master mid-stream.
	waitFor(t, 5*time.Second, func() bool { return r.Migrating() && r.Clones() == 1 })
	time.Sleep(5 * time.Millisecond)
	dest.Master().Fail()

	err := <-done
	if err == nil {
		t.Fatal("migration succeeded with a dead destination")
	}
	if r.Aborted() != 1 {
		t.Fatalf("aborted = %d, want 1", r.Aborted())
	}
	if got := pc.RouteTable().Epoch(); got != epoch0 {
		t.Fatalf("aborted migration advanced epoch %d -> %d", epoch0, got)
	}
	if pc.Migrating() {
		t.Fatal("migration flag stuck after abort")
	}
	// Source keeps serving reads and writes.
	sess := pc.NewSession("after")
	defer sess.Close()
	if _, err := sess.Exec("USE app"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO kv (k, v) VALUES (9999, 1)"); err != nil {
		t.Fatalf("write after abort: %v", err)
	}
	res, err := sess.Exec("SELECT COUNT(*) FROM kv WHERE k = 9999")
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("read after abort: %v %v", res, err)
	}
}

// TestMigrationResumesAcrossSourceFailover is the second required chaos
// case: the source master dies mid-tail-stream; the sub-cluster fails over
// and the migration resumes from its contiguous prefix without re-cloning.
func TestMigrationResumesAcrossSourceFailover(t *testing.T) {
	msCfg := core.MasterSlaveConfig{
		Consistency: core.SessionConsistent, TransparentFailover: true,
		FailoverTimeout: 2 * time.Second,
	}
	pc, parts := newElasticCluster(t, 2, 2, 8, msCfg)
	seedRows(t, pc, 64)
	src := parts[0]
	// A health monitor drives the promotion, exactly as a deployment would;
	// sessions blocked in recoverFromMasterFailure only wait for it.
	mon := core.NewMonitor(src, 2*time.Millisecond)
	mon.Start()
	t.Cleanup(mon.Stop)

	stop := make(chan struct{})
	writers(t, pc, 4, 1000, stop)
	time.Sleep(5 * time.Millisecond)

	dest := newSubCluster(t, "fresh", 1, msCfg)
	r := NewRebalancer(pc, RebalancerConfig{
		TailBatch: 64, TailDelay: 2 * time.Millisecond, CatchupThreshold: 2,
		CatchupTimeout: 30 * time.Second,
	})
	done := make(chan error, 1)
	go func() { done <- r.Split(0, dest) }()

	// Let the stream start, then kill the source master mid-tail. The
	// monitor promotes a slave and the blocked writers resume through it.
	waitFor(t, 5*time.Second, func() bool { return r.Migrating() && r.Clones() == 1 })
	time.Sleep(5 * time.Millisecond)
	src.Master().Fail()

	time.Sleep(20 * time.Millisecond)
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("migration did not survive source failover: %v", err)
	}
	if r.Clones() != 1 {
		t.Fatalf("clones = %d: resume must not re-clone", r.Clones())
	}
	if r.Resumed() < 1 {
		t.Fatalf("resumed = %d, want >= 1 (source master changed mid-stream)", r.Resumed())
	}
	if r.Completed() != 1 {
		t.Fatalf("completed = %d", r.Completed())
	}
	time.Sleep(5 * time.Millisecond)
	// 1-safe failover may legitimately lose the acked tail (the paper's
	// LostTransactions accounting), so the audit here checks the migration
	// invariants: no double-applied rows, every row on its owning partition.
	auditCluster(t, pc, nil)
}

// ---- autoscaler ----

// TestAutoscalerFlashCrowd drives sustained high occupancy through the
// admission controller and expects the autoscaler to provision at least one
// replica, then retire it after the load stops and the cooldown passes.
func TestAutoscalerFlashCrowd(t *testing.T) {
	adm := admission.NewController(admission.Config{Slots: 2})
	master := core.NewReplica(core.ReplicaConfig{Name: "m", ReadCost: 500 * time.Microsecond})
	slave := core.NewReplica(core.ReplicaConfig{Name: "s1", ReadCost: 500 * time.Microsecond})
	ms := core.NewMasterSlave(master, []*core.Replica{slave}, core.MasterSlaveConfig{
		Consistency: core.ReadAny, Admission: adm,
	})
	t.Cleanup(ms.Close)
	boot := ms.NewSession("boot")
	for _, sql := range []string{"CREATE DATABASE app", "USE app", "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)", "INSERT INTO kv (k, v) VALUES (1, 1)"} {
		if _, err := boot.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	boot.Close()

	spareSeq := 0
	as, err := NewAutoscaler(ms, adm, nil, AutoscalerConfig{
		Interval:    2 * time.Millisecond,
		SustainUp:   3,
		SustainDown: 5,
		Cooldown:    30 * time.Millisecond,
		MinReplicas: 1,
		MaxReplicas: 3,
		Spare: func() *core.Replica {
			spareSeq++
			return core.NewReplica(core.ReplicaConfig{Name: fmt.Sprintf("auto-%d", spareSeq), ReadCost: 500 * time.Microsecond})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(as.Close)

	// Flash crowd: 16 readers against 2 slots.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ms.NewSession(fmt.Sprintf("r%d", i))
			defer sess.Close()
			if _, err := sess.Exec("USE app"); err != nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				sess.Exec("SELECT v FROM kv WHERE k = 1") //nolint:errcheck // shed errors expected under overload
			}
		}(i)
	}

	waitFor(t, 5*time.Second, func() bool { return as.ScaleUps() >= 1 })
	if len(as.Provisioned()) < 1 {
		t.Fatalf("provisioned = %v", as.Provisioned())
	}
	if len(ms.Slaves()) < 2 {
		t.Fatalf("slaves = %d after scale-up", len(ms.Slaves()))
	}

	// Load vanishes: the controller must retire what it provisioned.
	close(stop)
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return len(as.Provisioned()) == 0 })
	if len(ms.Slaves()) != 1 {
		t.Fatalf("slaves = %d after retire, want 1", len(ms.Slaves()))
	}
	if as.ScaleDowns() < 1 {
		t.Fatal("no scale-down recorded")
	}
}

// TestAutoscalerCooldownBoundsTransitions oscillates load faster than the
// cooldown window and checks the controller makes at most one transition
// per window (plus the in-flight one).
func TestAutoscalerCooldownBoundsTransitions(t *testing.T) {
	adm := admission.NewController(admission.Config{Slots: 2})
	master := core.NewReplica(core.ReplicaConfig{Name: "m", ReadCost: 200 * time.Microsecond})
	ms := core.NewMasterSlave(master, nil, core.MasterSlaveConfig{
		Consistency: core.ReadAny, ReadFromMaster: true, Admission: adm,
	})
	t.Cleanup(ms.Close)
	boot := ms.NewSession("boot")
	for _, sql := range []string{"CREATE DATABASE app", "USE app", "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)", "INSERT INTO kv (k, v) VALUES (1, 1)"} {
		if _, err := boot.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	boot.Close()

	const cooldown = 250 * time.Millisecond
	spareSeq := 0
	as, err := NewAutoscaler(ms, adm, nil, AutoscalerConfig{
		Interval:    2 * time.Millisecond,
		SustainUp:   2,
		SustainDown: 2, // deliberately twitchy: only the cooldown damps it
		Cooldown:    cooldown,
		MinReplicas: 0,
		MaxReplicas: 4,
		Spare: func() *core.Replica {
			spareSeq++
			return core.NewReplica(core.ReplicaConfig{Name: fmt.Sprintf("auto-%d", spareSeq), ReadCost: 200 * time.Microsecond})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(as.Close)

	// Oscillate: 30ms bursts of 8 readers, 30ms idle, for ~2.5 windows.
	var hammering atomic.Bool
	stopAll := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := ms.NewSession(fmt.Sprintf("r%d", i))
			defer sess.Close()
			if _, err := sess.Exec("USE app"); err != nil {
				return
			}
			for {
				select {
				case <-stopAll:
					return
				default:
				}
				if hammering.Load() {
					sess.Exec("SELECT v FROM kv WHERE k = 1") //nolint:errcheck
				} else {
					time.Sleep(500 * time.Microsecond)
				}
			}
		}(i)
	}
	start := time.Now()
	for time.Since(start) < 2*cooldown+cooldown/2 {
		hammering.Store(true)
		time.Sleep(30 * time.Millisecond)
		hammering.Store(false)
		time.Sleep(30 * time.Millisecond)
	}
	close(stopAll)
	wg.Wait()

	transitions := as.ScaleUps() + as.ScaleDowns()
	// Bound by measured wall time, not the nominal loop count: scheduler
	// (and race-detector) slowdown stretches the run, and each real
	// cooldown window legitimately admits one transition.
	elapsed := time.Since(start)
	windows := uint64(elapsed/cooldown) + 1
	if transitions > windows {
		t.Fatalf("%d transitions in %v (%d cooldown windows): cooldown not damping oscillation", transitions, elapsed, windows)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
