package elastic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// tailer applies a batch of source binlog events to the destination. It
// returns how many of the events are fully applied; on error the prefix
// before the failing event is durable, so the caller's cursor stays
// contiguous.
type tailer interface {
	apply(events []engine.Event) (int, error)
}

// cloneTail is the fresh-destination tail: the destination was seeded as a
// full clone at the snapshot position, so source events apply one-for-one
// (one event, one destination commit) and the destination head doubles as
// the resume cursor.
type cloneTail struct {
	dest *core.MasterSlave
}

func (t *cloneTail) apply(events []engine.Event) (int, error) {
	return t.dest.ApplyForeignEvents(events)
}

// filteredTail is the existing-destination tail: only write-set operations
// on ruled tables whose key falls in the moving buckets are shipped. DDL
// and writes to unruled (fully replicated) tables are skipped — the router
// broadcasts those to the destination directly, and re-applying them here
// would double-apply.
type filteredTail struct {
	dest     *core.MasterSlave
	rule     func(table string) *core.PartitionRule
	nbuckets int
	moving   map[int]bool
	// keyIdx maps "db\x00table" to the partition-key column index in row
	// order, taken from the snapshot schema.
	keyIdx map[string]int
	cursor uint64
}

// copySnapshot bulk-loads the moving buckets' rows from the source
// snapshot into the destination as write-set inserts (binlogged on the
// destination master, so its slaves follow).
func (t *filteredTail) copySnapshot(b *engine.Backup) error {
	eng := t.dest.Master().Engine()
	const chunk = 256
	for _, db := range b.Databases {
		for _, td := range db.Tables {
			rule := t.rule(td.Name)
			if rule == nil {
				continue
			}
			ki, ok := t.keyIdx[tableKey(db.Name, td.Name)]
			if !ok {
				return fmt.Errorf("table %s.%s has no %s column in snapshot schema", db.Name, td.Name, rule.Column)
			}
			pkIdx := -1
			for i, c := range td.Columns {
				if c.PrimaryKey {
					pkIdx = i
					break
				}
			}
			var ws *engine.WriteSet
			flush := func() error {
				if ws == nil || len(ws.Ops) == 0 {
					return nil
				}
				err := eng.ApplyWriteSet(ws, engine.ApplyOptions{AdvanceCounters: true})
				ws = nil
				return err
			}
			for _, row := range td.Rows {
				if ki >= len(row) {
					return fmt.Errorf("row of %s.%s shorter than key index %d", db.Name, td.Name, ki)
				}
				bk, err := rule.BucketFor(row[ki], t.nbuckets)
				if err != nil {
					return err
				}
				if !t.moving[bk] {
					continue
				}
				op := engine.WriteOp{
					Database: db.Name, Table: td.Name,
					Kind:  engine.WriteInsert,
					After: row.Clone(),
				}
				if pkIdx >= 0 && pkIdx < len(row) {
					op.PK = row[pkIdx]
					op.HasPK = true
				}
				if ws == nil {
					ws = &engine.WriteSet{}
				}
				ws.Ops = append(ws.Ops, op)
				if len(ws.Ops) >= chunk {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// apply filters each event's write-set down to the moving buckets and
// applies the survivors to the destination master, one (possibly empty)
// write-set per event so the applied count maps one-to-one onto events.
func (t *filteredTail) apply(events []engine.Event) (int, error) {
	sets := make([]*engine.WriteSet, len(events))
	for i, ev := range events {
		if ev.DDL {
			continue // broadcast reaches the destination directly
		}
		if ev.WriteSet == nil {
			if len(ev.Stmts) == 0 {
				continue
			}
			return 0, fmt.Errorf("event %d carries statements without a write-set; filtered migration requires write-set shipping", ev.Seq)
		}
		var ws *engine.WriteSet
		for _, op := range ev.WriteSet.Ops {
			rule := t.rule(op.Table)
			if rule == nil {
				continue // unruled tables broadcast; skip
			}
			row := op.After
			if row == nil {
				row = op.Before
			}
			ki, ok := t.keyIdx[tableKey(op.Database, op.Table)]
			if !ok || ki >= len(row) {
				return 0, fmt.Errorf("event %d: cannot locate partition key for %s.%s", ev.Seq, op.Database, op.Table)
			}
			bk, err := rule.BucketFor(row[ki], t.nbuckets)
			if err != nil {
				return 0, err
			}
			if !t.moving[bk] {
				continue
			}
			if ws == nil {
				ws = &engine.WriteSet{}
			}
			ws.Ops = append(ws.Ops, op)
		}
		sets[i] = ws
	}
	return t.dest.Master().Engine().ApplyWriteSets(sets, engine.ApplyOptions{AdvanceCounters: true})
}

func tableKey(db, table string) string { return db + "\x00" + table }

// keyIndexes maps every ruled table in the snapshot to its partition-key
// column index (case-insensitive match against the rule's column).
func keyIndexes(b *engine.Backup, rt *core.RouteTable) map[string]int {
	out := make(map[string]int)
	for _, db := range b.Databases {
		for _, td := range db.Tables {
			rule := rt.Rule(td.Name)
			if rule == nil {
				continue
			}
			for i, c := range td.Columns {
				if equalFold(c.Name, rule.Column) {
					out[tableKey(db.Name, td.Name)] = i
					break
				}
			}
		}
	}
	return out
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
