package elastic

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
)

// AutoscalerConfig tunes the replica autoscaler. The zero value gets
// conservative defaults; Spare is required.
type AutoscalerConfig struct {
	// Interval is the control-loop tick (0 = 100ms).
	Interval time.Duration
	// ScaleUpOccupancy is the admission slot occupancy at or above which a
	// tick votes to scale up (0 = 0.8). Shed requests and a blown latency
	// budget also vote up.
	ScaleUpOccupancy float64
	// ScaleDownOccupancy is the occupancy at or below which a tick votes
	// to scale down (0 = 0.3).
	ScaleDownOccupancy float64
	// P99Budget, when set, votes up while the read-class p99 service time
	// exceeds it — the observed-service-time signal (CCBench's point:
	// contention shows in latency before it shows in throughput).
	P99Budget time.Duration
	// LagHigh, when set, votes up while any replica's apply lag exceeds
	// this many events.
	LagHigh float64
	// SustainUp is how many consecutive up-votes trigger provisioning
	// (0 = 3); SustainDown how many down-votes trigger retirement
	// (0 = 10). The asymmetry is the hysteresis: scale up fast, down slow.
	SustainUp   int
	SustainDown int
	// Cooldown is the minimum time between transitions (0 = 2s) — at most
	// one scaling action per cooldown window, so oscillating load cannot
	// thrash.
	Cooldown time.Duration
	// MinReplicas/MaxReplicas bound the slave count (Max 0 = 8).
	MinReplicas int
	MaxReplicas int
	// Spare supplies a fresh (or warm retired) replica to provision.
	Spare func() *core.Replica
	// Provisioner, when non-nil, clones spares via the recovery log
	// (ResyncAuto: checkpoint restore + tail replay). Otherwise the
	// autoscaler takes a hot backup of the master.
	Provisioner *core.Provisioner
	// ResyncMaxDuration bounds a log-based catch-up (0 = 10s).
	ResyncMaxDuration time.Duration
}

func (c *AutoscalerConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.ScaleUpOccupancy <= 0 {
		c.ScaleUpOccupancy = 0.8
	}
	if c.ScaleDownOccupancy <= 0 {
		c.ScaleDownOccupancy = 0.3
	}
	if c.SustainUp <= 0 {
		c.SustainUp = 3
	}
	if c.SustainDown <= 0 {
		c.SustainDown = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 8
	}
	if c.ResyncMaxDuration <= 0 {
		c.ResyncMaxDuration = 10 * time.Second
	}
}

// Autoscaler is a monitor-driven controller that provisions read replicas
// under sustained load and retires them when idle. Its inputs are the
// signals the operability surface already exports — admission occupancy and
// shedding, per-class service-time percentiles, per-replica apply lag — so
// what the operator sees on /metrics is exactly what the controller acts
// on. Hysteresis (sustain streaks) plus a cooldown keep a flash crowd from
// thrashing the fleet: at most one transition per cooldown window.
type Autoscaler struct {
	ms  *core.MasterSlave
	adm *admission.Controller
	lag *core.LagTracker
	cfg AutoscalerConfig

	stop chan struct{}
	done chan struct{}

	mu             sync.Mutex
	provisioned    []string // LIFO: retire the newest first
	upStreak       int
	downStreak     int
	lastTransition time.Time
	lastShed       uint64
	lastOcc        float64

	scaleUps   atomic.Uint64
	scaleDowns atomic.Uint64
	upErrors   atomic.Uint64
}

// NewAutoscaler starts the control loop. adm supplies occupancy and
// latency signals; lag (optional) supplies per-replica apply lag.
func NewAutoscaler(ms *core.MasterSlave, adm *admission.Controller, lag *core.LagTracker, cfg AutoscalerConfig) (*Autoscaler, error) {
	if cfg.Spare == nil {
		return nil, fmt.Errorf("elastic: AutoscalerConfig.Spare is required")
	}
	if adm == nil {
		return nil, fmt.Errorf("elastic: autoscaler needs an admission controller for its load signals")
	}
	cfg.defaults()
	a := &Autoscaler{
		ms: ms, adm: adm, lag: lag, cfg: cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.run()
	return a, nil
}

func (a *Autoscaler) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.tick()
		}
	}
}

// tick evaluates the load signals, advances the hysteresis streaks, and
// acts when a streak sustains past its threshold outside the cooldown.
func (a *Autoscaler) tick() {
	st := a.adm.Stats()
	slots := a.adm.Config().Slots
	occ := float64(st.Active) / float64(slots)
	shed := st.ShedTotal()

	a.mu.Lock()
	shedDelta := shed - a.lastShed
	a.lastShed = shed
	a.lastOcc = occ

	p99Over := false
	if a.cfg.P99Budget > 0 {
		for _, class := range []admission.Class{admission.ClassReadSession, admission.ClassReadAny} {
			if h := a.adm.Latency(class); h != nil && h.Count() > 0 && h.Percentile(99) > a.cfg.P99Budget {
				p99Over = true
				break
			}
		}
	}
	lagHigh := a.cfg.LagHigh > 0 && a.lag != nil && a.lag.MaxLag() >= a.cfg.LagHigh

	up := occ >= a.cfg.ScaleUpOccupancy || shedDelta > 0 || p99Over || lagHigh
	down := occ <= a.cfg.ScaleDownOccupancy && shedDelta == 0 && !p99Over && !lagHigh
	switch {
	case up:
		a.upStreak++
		a.downStreak = 0
	case down:
		a.downStreak++
		a.upStreak = 0
	default:
		a.upStreak = 0
		a.downStreak = 0
	}

	now := time.Now()
	inCooldown := now.Sub(a.lastTransition) < a.cfg.Cooldown
	nslaves := len(a.ms.Slaves())
	doUp := !inCooldown && a.upStreak >= a.cfg.SustainUp && nslaves < a.cfg.MaxReplicas
	doDown := !inCooldown && !doUp && a.downStreak >= a.cfg.SustainDown &&
		nslaves > a.cfg.MinReplicas && len(a.provisioned) > 0
	a.mu.Unlock()

	if doUp {
		if err := a.scaleUp(); err != nil {
			a.upErrors.Add(1)
			return
		}
		a.scaleUps.Add(1)
		a.mu.Lock()
		a.lastTransition = time.Now()
		a.upStreak = 0
		a.mu.Unlock()
	} else if doDown {
		if err := a.scaleDown(); err != nil {
			return
		}
		a.scaleDowns.Add(1)
		a.mu.Lock()
		a.lastTransition = time.Now()
		a.downStreak = 0
		a.mu.Unlock()
	}
}

// scaleUp clones a spare replica to the cluster's state and registers it
// for reads: through the recovery log (checkpoint restore + tail replay)
// when a provisioner is wired, otherwise via a hot master backup.
func (a *Autoscaler) scaleUp() error {
	rep := a.cfg.Spare()
	if rep == nil {
		return fmt.Errorf("elastic: spare factory returned nil")
	}
	var from uint64
	if p := a.cfg.Provisioner; p != nil {
		res, err := p.ResyncAuto(rep, core.ResyncOptions{Parallel: true}, a.cfg.ResyncMaxDuration)
		if err != nil {
			return fmt.Errorf("elastic: resync spare %s: %w", rep.Name(), err)
		}
		from = res.To
	} else {
		b, err := a.ms.Master().Engine().Dump(core.FaithfulBackup)
		if err != nil {
			return fmt.Errorf("elastic: snapshot for spare %s: %w", rep.Name(), err)
		}
		if err := core.CloneFromBackup(b, rep); err != nil {
			return err
		}
		rep.Engine().Binlog().Reset(b.AtSeq)
		from = b.AtSeq
	}
	if err := a.ms.Failback(rep, from); err != nil {
		return fmt.Errorf("elastic: register spare %s: %w", rep.Name(), err)
	}
	a.mu.Lock()
	a.provisioned = append(a.provisioned, rep.Name())
	a.mu.Unlock()
	return nil
}

// scaleDown retires the most recently provisioned replica (LIFO keeps the
// original fleet untouched).
func (a *Autoscaler) scaleDown() error {
	a.mu.Lock()
	if len(a.provisioned) == 0 {
		a.mu.Unlock()
		return fmt.Errorf("elastic: nothing provisioned to retire")
	}
	name := a.provisioned[len(a.provisioned)-1]
	a.mu.Unlock()
	if _, err := a.ms.Retire(name); err != nil {
		return err
	}
	a.mu.Lock()
	a.provisioned = a.provisioned[:len(a.provisioned)-1]
	a.mu.Unlock()
	return nil
}

// ScaleUps returns how many replicas the controller provisioned.
func (a *Autoscaler) ScaleUps() uint64 { return a.scaleUps.Load() }

// ScaleDowns returns how many replicas the controller retired.
func (a *Autoscaler) ScaleDowns() uint64 { return a.scaleDowns.Load() }

// Provisioned returns the names of currently provisioned replicas.
func (a *Autoscaler) Provisioned() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.provisioned...)
}

// Close stops the control loop (provisioned replicas stay attached).
func (a *Autoscaler) Close() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

// WriteMetrics appends the autoscaler's state in the /metrics line format.
func (a *Autoscaler) WriteMetrics(w io.Writer) {
	a.mu.Lock()
	prov := len(a.provisioned)
	occ := a.lastOcc
	a.mu.Unlock()
	fmt.Fprintf(w, "repl_autoscale_replicas %d\n", len(a.ms.Slaves()))
	fmt.Fprintf(w, "repl_autoscale_provisioned %d\n", prov)
	fmt.Fprintf(w, "repl_autoscale_occupancy %.3f\n", occ)
	fmt.Fprintf(w, "repl_autoscale_up_total %d\n", a.scaleUps.Load())
	fmt.Fprintf(w, "repl_autoscale_down_total %d\n", a.scaleDowns.Load())
	fmt.Fprintf(w, "repl_autoscale_up_errors_total %d\n", a.upErrors.Load())
}
