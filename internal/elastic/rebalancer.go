// Package elastic makes the partitioned cluster reshape itself without
// downtime: live bucket migration between sub-clusters (split, merge,
// migrate) and load-driven read-replica autoscaling. The paper treats the
// partitioned "RAID-0" topology and replica counts as static construction
// choices while its own provisioning discussion assumes capacity follows
// load; this package closes that gap on top of the pieces that already
// exist — checkpoint backups for state movement, the binlog for tailing,
// and the versioned routing table for atomic cutover.
package elastic

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// RebalancerConfig tunes live migrations. The zero value is usable.
type RebalancerConfig struct {
	// TailBatch is how many binlog events each tail read ships (0 = 256).
	TailBatch int
	// TailDelay, when set, sleeps between tail rounds — a throttle bounding
	// the migration's apply pressure on the destination (at the cost of a
	// longer catch-up phase).
	TailDelay time.Duration
	// CatchupThreshold is the tail gap (events) below which the migration
	// stops streaming and fences for the final drain (0 = 16).
	CatchupThreshold uint64
	// CatchupTimeout bounds the streaming phase (0 = 30s).
	CatchupTimeout time.Duration
	// FenceTimeout bounds the in-fence final drain and destination slave
	// catch-up — the write-stall budget (0 = 5s).
	FenceTimeout time.Duration
	// QuiesceTimeout bounds waiting for readers of the superseded routing
	// table before scavenging moved rows (0 = 10s).
	QuiesceTimeout time.Duration
}

func (c *RebalancerConfig) defaults() {
	if c.TailBatch <= 0 {
		c.TailBatch = 256
	}
	if c.CatchupThreshold == 0 {
		c.CatchupThreshold = 16
	}
	if c.CatchupTimeout <= 0 {
		c.CatchupTimeout = 30 * time.Second
	}
	if c.FenceTimeout <= 0 {
		c.FenceTimeout = 5 * time.Second
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 10 * time.Second
	}
}

// Rebalancer moves virtual buckets between the sub-clusters of a
// Partitioned cluster while it serves traffic. The protocol, per
// migration:
//
//  1. snapshot the source (hot backup at a binlog position),
//  2. seed or copy the destination and stream the binlog tail while
//     writes continue — never beyond the source's SurvivableSeq, so a
//     source master kill mid-stream fails over and the migration resumes
//     from its contiguous prefix without re-cloning,
//  3. fence writes on the source (reads never block), drain the tail to
//     the frozen head, wait destination slaves level, and atomically
//     install the successor routing table,
//  4. after the superseded table quiesces, scavenge moved rows.
//
// Any failure before step 3's install aborts cleanly: the routing epoch
// never advances and the source keeps serving.
type Rebalancer struct {
	pc  *core.Partitioned
	cfg RebalancerConfig

	mu sync.Mutex // one migration at a time

	started   atomic.Uint64
	completed atomic.Uint64
	aborted   atomic.Uint64
	resumed   atomic.Uint64
	clones    atomic.Uint64
	moved     atomic.Uint64
}

// NewRebalancer builds a rebalancer for the cluster.
func NewRebalancer(pc *core.Partitioned, cfg RebalancerConfig) *Rebalancer {
	cfg.defaults()
	return &Rebalancer{pc: pc, cfg: cfg}
}

// Completed returns how many migrations finished.
func (r *Rebalancer) Completed() uint64 { return r.completed.Load() }

// Aborted returns how many migrations aborted without touching routing.
func (r *Rebalancer) Aborted() uint64 { return r.aborted.Load() }

// Resumed counts source-master changes survived mid-tail (failover resume).
func (r *Rebalancer) Resumed() uint64 { return r.resumed.Load() }

// Clones counts full snapshot clones taken (a resume must not re-clone).
func (r *Rebalancer) Clones() uint64 { return r.clones.Load() }

// Migrate moves the given buckets to dest, which may be a fresh sub-cluster
// (not yet routed; it is seeded from a snapshot) or an existing member (it
// receives a filtered row copy). All buckets must currently be owned by one
// partition — the fence is per-partition.
func (r *Rebalancer) Migrate(buckets []int, dest *core.MasterSlave) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.migrate(buckets, dest, false)
}

// Split moves the upper half of partition srcIdx's buckets to dest
// (fresh or existing).
func (r *Rebalancer) Split(srcIdx int, dest *core.MasterSlave) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := r.pc.RouteTable()
	owned := rt.OwnedBuckets(srcIdx)
	if len(owned) < 2 {
		return fmt.Errorf("elastic: partition %d owns %d bucket(s); nothing to split", srcIdx, len(owned))
	}
	return r.migrate(owned[len(owned)/2:], dest, false)
}

// Merge migrates all of partition fromIdx's buckets into partition intoIdx
// and drops the emptied partition from routing in the same install. The
// retired sub-cluster is returned still running (drained of routing but
// not of data); the caller owns closing it.
func (r *Rebalancer) Merge(fromIdx, intoIdx int) (*core.MasterSlave, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := r.pc.RouteTable()
	parts := rt.Partitions()
	if fromIdx == intoIdx || fromIdx < 0 || intoIdx < 0 || fromIdx >= len(parts) || intoIdx >= len(parts) {
		return nil, fmt.Errorf("elastic: cannot merge partition %d into %d of %d", fromIdx, intoIdx, len(parts))
	}
	from, into := parts[fromIdx], parts[intoIdx]
	if err := r.migrate(rt.OwnedBuckets(fromIdx), into, true); err != nil {
		return nil, err
	}
	r.pc.ForgetPartition(from)
	return from, nil
}

// migrate runs one bucket move. dropEmpty removes partitions emptied by the
// install (the merge path). Caller holds r.mu.
func (r *Rebalancer) migrate(buckets []int, dest *core.MasterSlave, dropEmpty bool) error {
	if len(buckets) == 0 {
		return fmt.Errorf("elastic: no buckets to migrate")
	}
	rt := r.pc.RouteTable()
	src, err := singleOwner(rt, buckets)
	if err != nil {
		return err
	}
	if src == dest {
		return fmt.Errorf("elastic: source and destination are the same partition")
	}
	fresh := rt.PartIndex(dest) < 0
	if fresh && dropEmpty {
		return fmt.Errorf("elastic: merge destination must already be routed")
	}

	r.started.Add(1)
	r.pc.BeginMigration()
	defer r.pc.EndMigration()
	abort := func(err error) error {
		r.aborted.Add(1)
		return err
	}

	// 1. Snapshot the source at a binlog position.
	b, err := src.Master().Engine().Dump(core.FaithfulBackup)
	if err != nil {
		return abort(fmt.Errorf("elastic: source snapshot: %w", err))
	}
	r.clones.Add(1)

	// 2. Seed or copy the destination. A fresh destination becomes a full
	// clone (its binlog reset so destination head tracks applied source
	// position); an existing one receives only the moving buckets' rows as
	// write-sets, and is marked contaminated until it owns them.
	var tail tailer
	if fresh {
		if err := dest.SeedFrom(b); err != nil {
			return abort(fmt.Errorf("elastic: seed destination: %w", err))
		}
		// Both sides will physically hold the moving rows around cutover.
		r.pc.SetContaminated(dest, true)
		tail = &cloneTail{dest: dest}
	} else {
		r.pc.SetContaminated(dest, true)
		ft := &filteredTail{
			dest:     dest,
			rule:     func(table string) *core.PartitionRule { return rt.Rule(table) },
			nbuckets: rt.NumBuckets(),
			moving:   bucketSet(buckets),
			keyIdx:   keyIndexes(b, rt),
			cursor:   b.AtSeq,
		}
		if err := ft.copySnapshot(b); err != nil {
			r.pc.SetContaminated(dest, false)
			return abort(fmt.Errorf("elastic: filtered copy: %w", err))
		}
		tail = ft
	}
	r.pc.SetContaminated(src, true)
	cleanupMarks := func() {
		r.pc.SetContaminated(src, false)
		r.pc.SetContaminated(dest, false)
	}

	// 3. Stream the binlog tail while writes continue, capped at the
	// source's survivable position so a mid-stream master kill resumes
	// from the contiguous prefix after failover.
	cursor := b.AtSeq
	lastMaster := src.Master().Name()
	deadline := time.Now().Add(r.cfg.CatchupTimeout)
	for {
		if r.cfg.TailDelay > 0 {
			time.Sleep(r.cfg.TailDelay)
		}
		if now := src.Master().Name(); now != lastMaster {
			lastMaster = now
			r.resumed.Add(1)
		}
		head := src.MasterSeq()
		if head-cursor <= r.cfg.CatchupThreshold {
			break // close enough: fence for the final drain
		}
		if time.Now().After(deadline) {
			cleanupMarks()
			return abort(fmt.Errorf("elastic: tail did not catch up within %v (gap %d)", r.cfg.CatchupTimeout, head-cursor))
		}
		if !dest.Master().Healthy() {
			cleanupMarks()
			return abort(fmt.Errorf("elastic: destination master died mid-migration; aborting with routing unchanged"))
		}
		capSeq := src.SurvivableSeq()
		if cursor >= capSeq {
			// Nothing survivable to ship yet: wait for source slaves.
			time.Sleep(500 * time.Microsecond)
			continue
		}
		n, next, err := r.shipBatch(src, tail, cursor, capSeq)
		if err != nil {
			cleanupMarks()
			return abort(fmt.Errorf("elastic: tail stream: %w", err))
		}
		if n == 0 {
			time.Sleep(500 * time.Microsecond)
			continue
		}
		cursor = next
	}

	// 4. Fence, drain to the frozen head, wait destination level, install.
	moved := append([]int(nil), buckets...)
	prev, installed, err := r.pc.InstallRouting(
		func(cur *core.RouteTable) (*core.RouteTable, error) {
			for _, bk := range moved {
				if cur.Owner(bk) != src {
					return nil, fmt.Errorf("elastic: bucket %d changed owner mid-migration", bk)
				}
			}
			return cur.WithReassign(moved, dest, dropEmpty)
		},
		src,
		func(frozenHead uint64) error {
			fenceDeadline := time.Now().Add(r.cfg.FenceTimeout)
			for cursor < frozenHead {
				if time.Now().After(fenceDeadline) {
					return fmt.Errorf("elastic: fence drain exceeded %v", r.cfg.FenceTimeout)
				}
				if !dest.Master().Healthy() {
					return fmt.Errorf("elastic: destination master died during fence drain")
				}
				n, next, err := r.shipBatch(src, tail, cursor, frozenHead)
				if err != nil {
					return err
				}
				if n == 0 {
					return fmt.Errorf("elastic: source binlog unreachable at %d during fence drain", cursor)
				}
				cursor = next
			}
			return waitSlavesLevel(dest, fenceDeadline)
		})
	if err != nil {
		cleanupMarks()
		return abort(err)
	}
	r.moved.Add(uint64(len(moved)))

	// 5. Cleanup: wait for readers of the superseded table, then scavenge
	// rows neither side owns any more. Scavenge failures leave marks set —
	// reads stay correct via ownership predicates, just slower.
	if err := r.pc.WaitQuiesce(prev, r.cfg.QuiesceTimeout); err != nil {
		return fmt.Errorf("elastic: migrated (epoch %d) but old readers lingered: %w", installed.Epoch(), err)
	}
	if !dropEmpty {
		if err := scavenge(src, installed, b, moved); err != nil {
			return fmt.Errorf("elastic: migrated (epoch %d) but source scavenge failed: %w", installed.Epoch(), err)
		}
	}
	if fresh {
		// The full clone holds every bucket; drop what dest does not own.
		if err := scavenge(dest, installed, b, complementOf(installed, dest, moved)); err != nil {
			return fmt.Errorf("elastic: migrated (epoch %d) but destination scavenge failed: %w", installed.Epoch(), err)
		}
	}
	flushCaches(src, dest)
	cleanupMarks()
	r.completed.Add(1)
	return nil
}

// shipBatch reads source events after cursor (never beyond capSeq) and
// applies them to the destination through the tailer. Returns events
// shipped and the new cursor. The source master is re-read per call so a
// failover mid-stream transparently switches to the promoted lineage.
func (r *Rebalancer) shipBatch(src *core.MasterSlave, tail tailer, cursor, capSeq uint64) (int, uint64, error) {
	events, trimmed := src.Master().Engine().Binlog().ReadFrom(cursor, r.cfg.TailBatch)
	if len(events) == 0 && trimmed {
		return 0, cursor, fmt.Errorf("source binlog trimmed below cursor %d; migration cannot resume without re-cloning", cursor)
	}
	clipped := events[:0]
	for _, ev := range events {
		if ev.Seq > capSeq {
			break
		}
		clipped = append(clipped, ev)
	}
	if len(clipped) == 0 {
		return 0, cursor, nil
	}
	n, err := tail.apply(clipped)
	if n > 0 {
		cursor = clipped[n-1].Seq
	}
	if err != nil {
		return n, cursor, err
	}
	return n, clipped[n-1].Seq, nil
}

// singleOwner verifies all buckets share one owner under rt and returns it.
func singleOwner(rt *core.RouteTable, buckets []int) (*core.MasterSlave, error) {
	var owner *core.MasterSlave
	for _, b := range buckets {
		if b < 0 || b >= rt.NumBuckets() {
			return nil, fmt.Errorf("elastic: bucket %d out of range [0,%d)", b, rt.NumBuckets())
		}
		o := rt.Owner(b)
		if owner == nil {
			owner = o
		} else if o != owner {
			return nil, fmt.Errorf("elastic: buckets span multiple source partitions; migrate per source")
		}
	}
	return owner, nil
}

func bucketSet(buckets []int) map[int]bool {
	m := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		m[b] = true
	}
	return m
}

// complementOf returns the buckets dest does NOT own under rt, given it
// just received `moved`.
func complementOf(rt *core.RouteTable, dest *core.MasterSlave, moved []int) []int {
	di := rt.PartIndex(dest)
	var out []int
	for b := 0; b < rt.NumBuckets(); b++ {
		if rt.OwnerIndex(b) != di {
			out = append(out, b)
		}
	}
	return out
}

// waitSlavesLevel waits (inside the fence) until every healthy destination
// slave has applied the destination head — session-consistent reads stay
// monotonic across the cutover.
func waitSlavesLevel(dest *core.MasterSlave, deadline time.Time) error {
	for {
		head := dest.MasterSeq()
		level := true
		for _, sl := range dest.Slaves() {
			if sl.Healthy() && sl.AppliedSeq() < head {
				level = false
				break
			}
		}
		if level {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("elastic: destination slaves did not level with head %d before the fence budget", head)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// scavenge deletes rows of ruled tables on ms whose bucket falls in
// buckets — the rows ms no longer owns after the install. Statements run
// through a normal cluster session so they replicate to slaves and
// invalidate caches like any other write.
func scavenge(ms *core.MasterSlave, rt *core.RouteTable, b *engine.Backup, buckets []int) error {
	if len(buckets) == 0 {
		return nil
	}
	sess := ms.NewSession("rebalance")
	defer sess.Close()
	for _, db := range b.Databases {
		for _, td := range db.Tables {
			rule := rt.Rule(td.Name)
			if rule == nil {
				continue
			}
			pred := core.OwnershipPredicate(rule, rt.NumBuckets(), buckets)
			del := &sqlparse.Delete{
				Table: sqlparse.TableRef{Database: db.Name, Name: td.Name},
				Where: pred,
			}
			if _, err := sess.ExecStmt(del); err != nil {
				return fmt.Errorf("scavenge %s.%s: %w", db.Name, td.Name, err)
			}
		}
	}
	return nil
}

// flushCaches drops both clusters' query-cache scopes after a cutover:
// invalidation keyed to each cluster's own binlog cannot see rows that
// moved between clusters.
func flushCaches(parts ...*core.MasterSlave) {
	for _, p := range parts {
		if sc := p.QueryCacheScope(); sc != nil {
			sc.FlushAll()
		}
	}
}

// Migrating reports whether a migration is currently running.
func (r *Rebalancer) Migrating() bool { return r.pc.Migrating() }

// WriteMetrics appends the rebalancer's state in the /metrics line format.
func (r *Rebalancer) WriteMetrics(w io.Writer) {
	rt := r.pc.RouteTable()
	fmt.Fprintf(w, "repl_elastic_epoch %d\n", rt.Epoch())
	fmt.Fprintf(w, "repl_elastic_partitions %d\n", len(rt.Partitions()))
	fmt.Fprintf(w, "repl_elastic_buckets %d\n", rt.NumBuckets())
	migrating := 0
	if r.pc.Migrating() {
		migrating = 1
	}
	fmt.Fprintf(w, "repl_elastic_migrating %d\n", migrating)
	fmt.Fprintf(w, "repl_elastic_migrations_started_total %d\n", r.started.Load())
	fmt.Fprintf(w, "repl_elastic_migrations_completed_total %d\n", r.completed.Load())
	fmt.Fprintf(w, "repl_elastic_migrations_aborted_total %d\n", r.aborted.Load())
	fmt.Fprintf(w, "repl_elastic_migrations_resumed_total %d\n", r.resumed.Load())
	fmt.Fprintf(w, "repl_elastic_clones_total %d\n", r.clones.Load())
	fmt.Fprintf(w, "repl_elastic_buckets_moved_total %d\n", r.moved.Load())
}
