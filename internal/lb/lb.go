// Package lb implements the load balancing policies of §3.2: the paper
// distinguishes the *level* at which balancing happens (connection,
// transaction, or query) from the *policy* picking a replica (round robin,
// least pending requests first, weighted). Levels are enforced by the
// middleware session router; this package provides the policies and the
// per-replica load accounting they need.
package lb

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Level is the granularity at which a balancing decision sticks.
type Level int

// Balancing levels (§3.2).
const (
	// ConnectionLevel pins a client connection to one replica for its
	// lifetime — simple, but "offers poor balancing when clients use
	// connection pools or persistent connections".
	ConnectionLevel Level = iota
	// TransactionLevel picks a replica per transaction.
	TransactionLevel
	// QueryLevel picks a replica per read query.
	QueryLevel
)

func (l Level) String() string {
	switch l {
	case ConnectionLevel:
		return "connection"
	case TransactionLevel:
		return "transaction"
	case QueryLevel:
		return "query"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Target is a balanceable replica as seen by a policy.
type Target interface {
	// Name identifies the replica.
	Name() string
	// Pending returns the number of requests queued or executing.
	Pending() int
	// Weight returns the replica's capacity weight (1 = baseline).
	Weight() float64
	// Healthy reports whether the replica accepts traffic.
	Healthy() bool
}

// Policy picks one replica among candidates. Implementations must be safe
// for concurrent use. Pick returns nil when no healthy candidate exists.
type Policy interface {
	Pick(candidates []Target) Target
	Name() string
}

// RoundRobin cycles through healthy replicas.
type RoundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (rr *RoundRobin) Pick(candidates []Target) Target {
	n := len(candidates)
	if n == 0 {
		return nil
	}
	start := int(rr.next.Add(1) - 1)
	for i := 0; i < n; i++ {
		t := candidates[(start+i)%n]
		if t.Healthy() {
			return t
		}
	}
	return nil
}

// LPRF is Least Pending Requests First (the C-JDBC policy cited in §4.1.3
// for absorbing heterogeneous-hardware imbalance): it routes to the healthy
// replica with the fewest outstanding requests, breaking ties round-robin.
type LPRF struct {
	tie atomic.Uint64
}

// NewLPRF returns an LPRF policy.
func NewLPRF() *LPRF { return &LPRF{} }

// Name implements Policy.
func (*LPRF) Name() string { return "lprf" }

// Pick implements Policy.
func (l *LPRF) Pick(candidates []Target) Target {
	var best Target
	bestPending := 0
	offset := int(l.tie.Add(1) - 1)
	n := len(candidates)
	for i := 0; i < n; i++ {
		t := candidates[(offset+i)%n]
		if !t.Healthy() {
			continue
		}
		p := t.Pending()
		if best == nil || p < bestPending {
			best = t
			bestPending = p
		}
	}
	return best
}

// Weighted distributes proportionally to static weights: the manual knob
// operators reach for on heterogeneous clusters. It implements smooth
// weighted round robin.
type Weighted struct {
	mu      sync.Mutex
	current map[string]float64
}

// NewWeighted returns a weighted policy.
func NewWeighted() *Weighted {
	return &Weighted{current: make(map[string]float64)}
}

// Name implements Policy.
func (*Weighted) Name() string { return "weighted" }

// Pick implements Policy.
func (w *Weighted) Pick(candidates []Target) Target {
	w.mu.Lock()
	defer w.mu.Unlock()
	var best Target
	var total float64
	for _, t := range candidates {
		if !t.Healthy() {
			continue
		}
		wt := t.Weight()
		if wt <= 0 {
			wt = 1
		}
		total += wt
		w.current[t.Name()] += wt
		if best == nil || w.current[t.Name()] > w.current[best.Name()] {
			best = t
		}
	}
	if best != nil {
		w.current[best.Name()] -= total
	}
	return best
}

// Counter is a ready-made Pending() implementation for replicas.
type Counter struct {
	n atomic.Int64
}

// Inc marks a request started.
func (c *Counter) Inc() { c.n.Add(1) }

// Dec marks a request finished.
func (c *Counter) Dec() { c.n.Add(-1) }

// Load returns the current outstanding count.
func (c *Counter) Load() int { return int(c.n.Load()) }
