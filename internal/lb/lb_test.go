package lb

import (
	"testing"
)

type fakeTarget struct {
	name    string
	pending int
	weight  float64
	healthy bool
}

func (f *fakeTarget) Name() string    { return f.name }
func (f *fakeTarget) Pending() int    { return f.pending }
func (f *fakeTarget) Weight() float64 { return f.weight }
func (f *fakeTarget) Healthy() bool   { return f.healthy }

func targets(specs ...*fakeTarget) []Target {
	out := make([]Target, len(specs))
	for i, s := range specs {
		out[i] = s
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	a := &fakeTarget{name: "a", healthy: true}
	b := &fakeTarget{name: "b", healthy: true}
	c := &fakeTarget{name: "c", healthy: true}
	rr := NewRoundRobin()
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		counts[rr.Pick(targets(a, b, c)).Name()]++
	}
	for _, n := range []string{"a", "b", "c"} {
		if counts[n] != 10 {
			t.Fatalf("uneven round robin: %v", counts)
		}
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	a := &fakeTarget{name: "a", healthy: true}
	b := &fakeTarget{name: "b", healthy: false}
	rr := NewRoundRobin()
	for i := 0; i < 10; i++ {
		if got := rr.Pick(targets(a, b)); got.Name() != "a" {
			t.Fatalf("picked unhealthy target")
		}
	}
}

func TestRoundRobinAllDown(t *testing.T) {
	a := &fakeTarget{name: "a"}
	if got := NewRoundRobin().Pick(targets(a)); got != nil {
		t.Fatal("should return nil with no healthy targets")
	}
	if got := NewRoundRobin().Pick(nil); got != nil {
		t.Fatal("should return nil with no targets")
	}
}

func TestLPRFPicksLeastPending(t *testing.T) {
	a := &fakeTarget{name: "a", pending: 5, healthy: true}
	b := &fakeTarget{name: "b", pending: 1, healthy: true}
	c := &fakeTarget{name: "c", pending: 3, healthy: true}
	l := NewLPRF()
	for i := 0; i < 5; i++ {
		if got := l.Pick(targets(a, b, c)); got.Name() != "b" {
			t.Fatalf("picked %s, want b", got.Name())
		}
	}
}

func TestLPRFAbsorbsSlowNode(t *testing.T) {
	// A slow node accumulates pending work; LPRF sends new traffic
	// elsewhere — the §4.1.3 heterogeneity mitigation.
	fast := &fakeTarget{name: "fast", pending: 0, healthy: true}
	slow := &fakeTarget{name: "slow", pending: 0, healthy: true}
	l := NewLPRF()
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		p := l.Pick(targets(fast, slow))
		counts[p.Name()]++
		// Fast node drains immediately; slow node keeps its backlog.
		if p == slow {
			slow.pending += 3
		}
		if fast.pending > 0 {
			fast.pending--
		}
	}
	if counts["fast"] <= counts["slow"] {
		t.Fatalf("LPRF did not favor the fast node: %v", counts)
	}
}

func TestWeightedProportions(t *testing.T) {
	a := &fakeTarget{name: "a", weight: 3, healthy: true}
	b := &fakeTarget{name: "b", weight: 1, healthy: true}
	w := NewWeighted()
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		counts[w.Pick(targets(a, b)).Name()]++
	}
	if counts["a"] != 300 || counts["b"] != 100 {
		t.Fatalf("weighted split: %v", counts)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Dec()
	if c.Load() != 1 {
		t.Fatalf("load = %d", c.Load())
	}
}

func TestLevelStrings(t *testing.T) {
	if ConnectionLevel.String() != "connection" || TransactionLevel.String() != "transaction" || QueryLevel.String() != "query" {
		t.Fatal("level strings wrong")
	}
}
