package analysis

import "testing"

func TestLockedCall(t *testing.T) {
	runFixture(t, LockedCallAnalyzer, "lockedcall/a")
}

func TestRawSQLText(t *testing.T) {
	runFixture(t, RawSQLTextAnalyzer, "rawsqltext/internal/core")
}

func TestRawSQLTextOutOfScope(t *testing.T) {
	runFixture(t, RawSQLTextAnalyzer, "rawsqltext/other")
}

func TestTypedErr(t *testing.T) {
	runFixture(t, TypedErrAnalyzer, "typederr/internal/core")
}

func TestWallClock(t *testing.T) {
	runFixture(t, WallClockAnalyzer, "wallclock/internal/history")
}

func TestSlotLeak(t *testing.T) {
	runFixture(t, SlotLeakAnalyzer, "slotleak/core")
}
