package analysis

import (
	"go/ast"
	"go/types"
)

// RawSQLTextAnalyzer guards the boundary-crossing contract for statement
// text: wherever SQL text leaves the process or replica that parsed it —
// binlog records for statement-based shipping, ordering scripts, wire
// sends, partition-key routing — a parameterized statement must first have
// its ? placeholders inlined via sqlparse.BindParams, or every replica-side
// re-parse stalls on "parameter not bound" (the PR-5 slave-applier bug).
//
// The analyzer flags every call to the SQL() text renderer inside the
// boundary packages (internal/core, internal/engine, internal/wire,
// internal/history) when the receiver's static type could carry a ?
// placeholder, unless:
//
//   - the receiver demonstrably came from sqlparse.BindParams (directly, or
//     via a local variable assigned from it), or
//   - the receiver's concrete type cannot carry placeholders (DDL and the
//     other statements BindParams passes through untouched), or
//   - the site or its enclosing function carries `// lint:rawsql-ok
//     <reason>` — the explicit allowlist for render, backup, error-message
//     and history-recording sites where raw text is the point.
var RawSQLTextAnalyzer = &Analyzer{
	Name: "rawsqltext",
	Doc:  "statement text crossing a boundary must flow through sqlparse.BindParams (lint:rawsql-ok to allowlist)",
	Run:  runRawSQLText,
}

// rawSQLBoundaryPkgs are the packages where SQL() output reaches process or
// replica boundaries. sqlparse itself (the renderer) is deliberately not
// listed.
var rawSQLBoundaryPkgs = []string{
	"internal/core",
	"internal/engine",
	"internal/wire",
	"internal/history",
}

// paramFreeStatements are sqlparse types BindParams passes through
// unchanged because they cannot carry a ? placeholder; rendering them raw
// is always safe. This mirrors the switch in sqlparse/bind.go.
var paramFreeStatements = map[string]bool{
	"CreateDatabase": true, "DropDatabase": true, "UseDatabase": true,
	"CreateTable": true, "DropTable": true,
	"CreateSequence": true, "DropSequence": true,
	"CreateTrigger": true, "DropTrigger": true,
	"CreateProcedure": true, "DropProcedure": true,
	"CreateUser": true, "Grant": true, "Show": true,
	"BeginTxn": true, "CommitTxn": true, "RollbackTxn": true,
	"SetIsolation": true, "SetConsistency": true, "SetDeadline": true,
	// Param-free expression nodes (rendered in error messages and scan
	// plans): a bare column reference or literal has no placeholder.
	"ColumnRef": true, "Literal": true, "VarRef": true, "TableRef": true,
}

func runRawSQLText(pass *Pass) error {
	if !pass.pkgPathHasSuffix(rawSQLBoundaryPkgs...) {
		return nil
	}
	for _, f := range pass.prodFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.funcAnnotated(fn, "rawsql-ok") {
				continue
			}
			checkRawSQLFunc(pass, fn)
		}
	}
	return nil
}

func checkRawSQLFunc(pass *Pass, fn *ast.FuncDecl) {
	// bound tracks local variables whose value came from
	// sqlparse.BindParams; their SQL() render is the sanctioned shape.
	bound := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			markBoundAssignments(pass, x, bound)
		case *ast.CallExpr:
			checkSQLCall(pass, x, bound)
		}
		return true
	})
}

// markBoundAssignments records `v, err := sqlparse.BindParams(...)` (and
// plain `v := sqlparse.BindParams(...)`) so later v.SQL() calls pass.
func markBoundAssignments(pass *Pass, as *ast.AssignStmt, bound map[types.Object]bool) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !pkgFuncCall(pass.TypesInfo, call, "sqlparse", "BindParams") {
		return
	}
	if id, ok := as.Lhs[0].(*ast.Ident); ok {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			bound[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			bound[obj] = true
		}
	}
}

func checkSQLCall(pass *Pass, call *ast.CallExpr, bound map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "SQL" || len(call.Args) != 0 {
		return
	}
	recvType, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return
	}
	name, pkgName := namedTypeName(recvType.Type)
	if pkgName != "sqlparse" {
		// Interface types Statement/Expr also live in sqlparse; anything
		// else with a SQL() method is not statement text.
		if !isSqlparseInterface(recvType.Type) {
			return
		}
	} else if paramFreeStatements[name] {
		return
	}
	// Receiver provably bound: `bound.SQL()` through a BindParams local,
	// or the direct call chain sqlparse.BindParams(...).SQL() — the latter
	// cannot occur (BindParams returns two values) but a helper may.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && bound[obj] {
			return
		}
	}
	if pass.annotatedAt(call.Pos(), "rawsql-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"raw statement text: %s.SQL() in a boundary package without sqlparse.BindParams — a ? placeholder here ships unbound to replicas (wrap with BindParams, or annotate // lint:rawsql-ok <reason> for render/backup/error-message sites)",
		types.ExprString(sel.X))
}

// namedTypeName returns the type name and defining package name of t after
// pointer indirection, or empty strings.
func namedTypeName(t types.Type) (name, pkgName string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), ""
	}
	return obj.Name(), obj.Pkg().Name()
}

// isSqlparseInterface reports whether t is an interface defined in a
// package named sqlparse (Statement or Expr): the static type says nothing
// about placeholders, so the dynamic value must be assumed parameterized.
func isSqlparseInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "sqlparse"
}
