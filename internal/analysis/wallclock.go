package analysis

import (
	"go/ast"
	"go/types"
)

// WallClockAnalyzer keeps nondeterminism out of the certification paths.
// PR 6's offline checkers (Biswas & Enea-style polynomial certification)
// are only sound if the recorded orders are ground truth: history recording
// uses a process-wide logical clock instead of time.Now, and the workload /
// chaos generators derive every choice from CERT_SEED so a failing cell
// reproduces bit-for-bit. Wall-clock reads, global (unseeded) randomness,
// or iteration order of a Go map leaking into recorded sequences all break
// that reproducibility silently.
//
// In package internal/history the analyzer forbids:
//
//   - time.Now / time.Since / time.Until (time.Sleep is allowed: pacing
//     changes interleavings, never recorded facts);
//   - package-level math/rand functions (rand.Intn, rand.Shuffle, ...):
//     all randomness must flow from a seeded *rand.Rand (rand.New /
//     rand.NewSource are allowed);
//   - ranging over a map while appending to a slice declared outside the
//     loop — the shape that turns map iteration order into a recorded or
//     reported sequence. Sort the result, or annotate
//     `// lint:maporder-ok <reason>` when order provably cannot escape.
//
// Deliberate wall-clock reads (none today) carry `// lint:wallclock-ok`.
var WallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "certification paths must stay deterministic: no wall clock, no global rand, no map-order-dependent sequences",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	if !pass.pkgPathHasSuffix("internal/history") {
		return nil
	}
	for _, f := range pass.prodFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkWallClockCall(pass, x)
			case *ast.RangeStmt:
				checkMapOrderRange(pass, x)
			}
			return true
		})
	}
	return nil
}

func checkWallClockCall(pass *Pass, call *ast.CallExpr) {
	for _, fname := range [...]string{"Now", "Since", "Until"} {
		if pkgFuncCall(pass.TypesInfo, call, "time", fname) {
			if !pass.annotatedAt(call.Pos(), "wallclock-ok") {
				pass.Reportf(call.Pos(),
					"time.%s on a certification path: recorded orders must come from the logical clock, not wall time (annotate // lint:wallclock-ok <reason> if this never reaches a recorded fact)", fname)
			}
			return
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math/rand" {
		switch sel.Sel.Name {
		case "New", "NewSource":
			return // building a seeded generator is the sanctioned use
		}
		if !pass.annotatedAt(call.Pos(), "wallclock-ok") {
			pass.Reportf(call.Pos(),
				"global rand.%s on a certification path: CERT_SEED reproducibility requires every choice to flow from a seeded *rand.Rand", sel.Sel.Name)
		}
	}
}

// checkMapOrderRange flags `for ... range <map>` loops that append to a
// slice declared outside the loop: map iteration order becomes sequence
// order, and a recorded or reported sequence must not depend on it.
func checkMapOrderRange(pass *Pass, rng *ast.RangeStmt) {
	t, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := t.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.annotatedAt(rng.Pos(), "maporder-ok") {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
			return true
		}
		target, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[target]
		if obj == nil {
			obj = pass.TypesInfo.Defs[target]
		}
		// Declared inside the loop body: order cannot outlive one
		// iteration.
		if obj == nil || (obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End()) {
			return true
		}
		if pass.annotatedAt(as.Pos(), "maporder-ok") {
			return true
		}
		pass.Reportf(as.Pos(),
			"append to %s while ranging over a map: iteration order leaks into a sequence — sort the result deterministically, or annotate // lint:maporder-ok <reason>", target.Name)
		return true
	})
}
