package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TypedErrAnalyzer protects the typed-error contract on request paths: the
// database/sql driver decides whether to back off and retry (ErrOverloaded,
// deadline errors wrapping context.DeadlineExceeded) or to surface an error
// verbatim, purely via errors.Is over typed sentinels that PR 7 threaded
// admission → core → engine → wire → driver. A request-path return of a
// naked errors.New or a fmt.Errorf without %w creates an error no layer can
// classify — the silent regression this analyzer forbids.
//
// Scope: packages internal/core, internal/admission, internal/wire and
// replication/sqldriver; within them, "request path" means functions whose
// results include *engine.Result (the statement-execution signature) and
// error-returning methods on session/connection types (receiver named
// *Session, Conn, Stmt, Tx, Rows, or Controller). Sentinel definitions
// (package-level `var ErrX = errors.New(...)`) are the sanctioned place for
// naked constructors and are out of scope by construction.
//
// A deliberate untyped return — a client-usage error no retry can fix that
// intentionally matches no sentinel — carries `// lint:typederr-ok <reason>`.
var TypedErrAnalyzer = &Analyzer{
	Name: "typederr",
	Doc:  "request-path errors must be (or wrap, via %w) a typed sentinel so retryable/deadline classification survives",
	Run:  runTypedErr,
}

var typedErrPkgs = []string{
	"internal/core",
	"internal/admission",
	"internal/wire",
	"replication/sqldriver",
}

// requestPathReceivers are receiver type-name shapes whose error-returning
// methods sit on the client request path even when they do not return
// *engine.Result (freshness waits, admission, driver interface methods).
func isRequestPathReceiver(name string) bool {
	return strings.HasSuffix(name, "Session") ||
		name == "Conn" || name == "Stmt" || name == "Tx" || name == "Rows" ||
		name == "Controller" || name == "Slot"
}

func runTypedErr(pass *Pass) error {
	if !pass.pkgPathHasSuffix(typedErrPkgs...) {
		return nil
	}
	for _, f := range pass.prodFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isRequestPath(pass, fn) {
				continue
			}
			if pass.funcAnnotated(fn, "typederr-ok") {
				continue
			}
			checkTypedErrFunc(pass, fn)
		}
	}
	return nil
}

// isRequestPath decides whether fn's returned errors reach the driver's
// retryable/deadline classification.
func isRequestPath(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	returnsError := false
	returnsResult := false
	for _, field := range fn.Type.Results.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		if isErrorType(t) {
			returnsError = true
		}
		if namedTypeIn(t, "engine", "Result") {
			returnsResult = true
		}
	}
	if !returnsError {
		return false
	}
	if returnsResult {
		return true
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		name, _ := namedTypeName(pass.TypesInfo.Types[fn.Recv.List[0].Type].Type)
		if isRequestPathReceiver(name) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func checkTypedErrFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			if pkgFuncCall(pass.TypesInfo, call, "errors", "New") {
				if !pass.annotatedAt(call.Pos(), "typederr-ok") {
					pass.Reportf(call.Pos(),
						"request path returns naked errors.New: no driver layer can classify it as retryable or deadline — wrap a typed sentinel with %%w, or annotate // lint:typederr-ok <reason>")
				}
				continue
			}
			if pkgFuncCall(pass.TypesInfo, call, "fmt", "Errorf") && !errorfWrapsW(call) {
				if !pass.annotatedAt(call.Pos(), "typederr-ok") {
					pass.Reportf(call.Pos(),
						"request path returns fmt.Errorf without %%w: the error chain breaks here and errors.Is classification (retryable/deadline) silently regresses — wrap a typed sentinel with %%w, or annotate // lint:typederr-ok <reason>")
				}
			}
		}
		return true
	})
}

// errorfWrapsW reports whether a fmt.Errorf call's format literal contains
// a %w verb. Non-literal formats are assumed wrapping (unknowable here).
func errorfWrapsW(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}
