package analysis

// This file is the fixture harness: a stdlib-only reimplementation of the
// golang.org/x/tools analysistest idea. Fixture packages live under
// testdata/src/<importPath>/ (GOPATH-style), import stub packages from the
// same tree (a testdata "sync" stands in for the real one — the analyzers
// deliberately match package *names* so fixtures stay hermetic), and mark
// expected diagnostics with trailing `// want "substring"` comments on the
// offending line. The harness typechecks the fixture, runs one analyzer,
// and requires an exact match between expected and reported lines.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runFixture analyzes the fixture package at testdata/src/<importPath> with
// the given analyzer and checks its `// want` expectations.
func runFixture(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset: fset,
		root: filepath.Join("testdata", "src"),
		pkgs: map[string]*types.Package{},
	}
	files, pkg, info, err := ld.load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}

	diags := RunAnalyzers([]*Analyzer{a}, fset, files, pkg, info)

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		p := fset.Position(d.pos)
		got[key{p.Filename, p.Line}] = append(got[key{p.Filename, p.Line}], d.message)
	}
	want := map[key][]string{}
	wantRe := regexp.MustCompile(`// want "([^"]*)"`)
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					line := fset.Position(c.Pos()).Line
					want[key{fileName, line}] = append(want[key{fileName, line}], m[1])
				}
			}
		}
	}

	for k, subs := range want {
		msgs := got[k]
		for _, sub := range subs {
			found := false
			for _, msg := range msgs {
				if strings.Contains(msg, sub) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: expected diagnostic containing %q, got %v", k.file, k.line, sub, msgs)
			}
		}
		if len(msgs) > len(subs) {
			t.Errorf("%s:%d: %d diagnostics for %d want comments: %v", k.file, k.line, len(msgs), len(subs), msgs)
		}
	}
	for k, msgs := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s:%d: unexpected diagnostic(s): %v", k.file, k.line, msgs)
		}
	}
}

// fixtureLoader typechecks fixture packages from testdata/src, resolving
// their imports recursively within the same tree.
type fixtureLoader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
	// current accumulates the files/info of the top-level load target.
	files []*ast.File
	info  *types.Info
}

func (ld *fixtureLoader) load(importPath string) ([]*ast.File, *types.Package, *types.Info, error) {
	info := newTypesInfo()
	files, pkg, err := ld.check(importPath, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

func (ld *fixtureLoader) check(importPath string, info *types.Info) ([]*ast.File, *types.Package, error) {
	dir := filepath.Join(ld.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return ld.importPkg(path)
		}),
		Sizes: types.SizesFor("gc", "amd64"),
	}
	pkg, err := tc.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return files, pkg, nil
}

func (ld *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err != nil {
		// Not stubbed in the fixture tree: fall back to the real package
		// so fixtures may use the actual standard library when the
		// analyzer's matching doesn't need a stub.
		pkg, err := importer.Default().Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: not in fixture tree and %v", path, err)
		}
		ld.pkgs[path] = pkg
		return pkg, nil
	}
	// Imported fixture packages get throwaway info: only the top-level
	// target's info is analyzed.
	_, pkg, err := ld.check(path, newTypesInfo())
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}
