package analysis

import (
	"go/ast"
	"go/types"
)

// LockedCallAnalyzer enforces the *Locked naming contract: a function whose
// name ends in "Locked" asserts that its caller holds the guarding mutex,
// so it may only be called from (a) a function that is itself *Locked, (b)
// a function that acquires a mutex (mu.Lock / mu.RLock) on every path
// reaching the call, or (c) a site or function annotated
// `// lint:holds <mu>` documenting an acquisition the analyzer cannot see.
//
// Motivating bug: PR 6's gcs split-brain fix lives in assignLocked /
// drainTokenQueueLocked / majorityLocked — helpers whose correctness
// (and the snapMu snapshot-position sampling in internal/core) silently
// evaporates if any call site forgets n.mu. The analyzer tracks lock state
// lexically with branch awareness: a Lock inside one arm of an if does not
// count after the branch rejoins, and an Unlock (not deferred) clears the
// held state.
// The same contract covers the routing-epoch convention from the elastic
// partitioning layer: helpers whose name ends in "Epoch" (installEpoch,
// advanceEpoch, ...) mutate or read the published routing table and must
// run under the router's mutex. The bare accessor Epoch() is exempt — it
// reads an immutable field of an already-published table — as are *Epoch
// methods on RouteTable or *Snapshot receivers, which are immutable values
// by construction.
var LockedCallAnalyzer = &Analyzer{
	Name: "lockedcall",
	Doc:  "calls to *Locked and *Epoch helpers must hold the corresponding mutex (or carry a lint:holds annotation)",
	Run:  runLockedCall,
}

func runLockedCall(pass *Pass) error {
	for _, f := range pass.prodFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasLockedSuffix(fn.Name.Name) || hasEpochSuffix(fn.Name.Name) {
				// A *Locked (or *Epoch) function's own callees inherit its
				// caller's lock; the contract is discharged at the
				// outermost non-Locked caller.
				continue
			}
			if pass.funcAnnotated(fn, "holds") {
				continue
			}
			lw := &lockWalker{pass: pass}
			lw.walkStmts(fn.Body.List, newLockState())
		}
	}
	return nil
}

func hasLockedSuffix(name string) bool {
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}

// hasEpochSuffix matches routing-epoch helpers (installEpoch, advanceEpoch,
// ...) but not the bare accessor Epoch(), which reads an immutable field of
// an already-published routing table.
func hasEpochSuffix(name string) bool {
	return len(name) > len("Epoch") && name[len(name)-len("Epoch"):] == "Epoch"
}

// lockState tracks which mutexes are held at a program point, keyed by the
// source text of the expression they were locked through (c.mu, s.eng.mu,
// ...). The int is a hold count so Lock/Unlock pairs nest.
type lockState map[string]int

func newLockState() lockState { return lockState{} }

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge intersects two states: after control flow rejoins, a mutex counts
// as held only if both arms held it.
func merge(a, b lockState) lockState {
	out := newLockState()
	for k, v := range a {
		if bv, ok := b[k]; ok {
			if bv < v {
				v = bv
			}
			if v > 0 {
				out[k] = v
			}
		}
	}
	return out
}

func (s lockState) anyHeld() bool {
	for _, v := range s {
		if v > 0 {
			return true
		}
	}
	return false
}

type lockWalker struct {
	pass *Pass
}

// walkStmts walks a statement list in source order, threading lock state
// through it, and returns the state at the fall-through exit.
func (lw *lockWalker) walkStmts(stmts []ast.Stmt, state lockState) lockState {
	for _, st := range stmts {
		state = lw.walkStmt(st, state)
	}
	return state
}

func (lw *lockWalker) walkStmt(st ast.Stmt, state lockState) lockState {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return lw.walkStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			state = lw.walkStmt(s.Init, state)
		}
		lw.scanExpr(s.Cond, state)
		thenOut := lw.walkStmt(s.Body, state.clone())
		elseOut := state.clone()
		elseTerm := false
		if s.Else != nil {
			elseOut = lw.walkStmt(s.Else, state.clone())
			elseTerm = terminates(s.Else)
		}
		// An arm that cannot fall through (return/branch/panic) does not
		// contribute to the rejoin state: `mu.Lock(); if c { mu.Unlock();
		// return }` leaves the mutex held on the fall-through path.
		switch {
		case terminates(s.Body) && elseTerm:
			return state // unreachable fall-through; keep entry state
		case terminates(s.Body):
			return elseOut
		case elseTerm:
			return thenOut
		}
		return merge(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			state = lw.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			lw.scanExpr(s.Cond, state)
		}
		body := lw.walkStmt(s.Body, state.clone())
		if s.Post != nil {
			lw.walkStmt(s.Post, body)
		}
		return merge(state, body)
	case *ast.RangeStmt:
		lw.scanExpr(s.X, state)
		body := lw.walkStmt(s.Body, state.clone())
		return merge(state, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			state = lw.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			lw.scanExpr(s.Tag, state)
		}
		return lw.walkClauses(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state = lw.walkStmt(s.Init, state)
		}
		return lw.walkClauses(s.Body, state)
	case *ast.SelectStmt:
		return lw.walkClauses(s.Body, state)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the remainder of the
		// function, so deferred calls do not mutate lock state; a *Locked
		// call deferred while the lock is held runs after the deferred
		// Unlock in LIFO order, but flagging that shape costs more noise
		// than it catches — the walk just scans nested literals.
		lw.scanFuncLits(s.Call)
		return state
	case *ast.GoStmt:
		// A goroutine does not inherit the spawner's lock; its literal is
		// walked with fresh state by scanFuncLits.
		lw.scanFuncLits(s.Call)
		return state
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lw.scanExpr(r, state)
		}
		return state
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			state = lw.scanExpr(r, state)
		}
		return state
	case *ast.ExprStmt:
		return lw.scanExpr(s.X, state)
	case *ast.LabeledStmt:
		return lw.walkStmt(s.Stmt, state)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				lw.scanExpr(e, state)
				return false
			}
			return true
		})
		return state
	default:
		return state
	}
}

func (lw *lockWalker) walkClauses(body *ast.BlockStmt, state lockState) lockState {
	out := state.clone()
	first := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				stmts = append([]ast.Stmt{c.Comm}, c.Body...)
			} else {
				stmts = c.Body
			}
		}
		clauseOut := lw.walkStmts(stmts, state.clone())
		if first {
			out = clauseOut
			first = false
		} else {
			out = merge(out, clauseOut)
		}
	}
	return merge(state, out)
}

// scanExpr visits calls inside e in source order, updating lock state for
// Lock/Unlock calls and checking *Locked calls; function literals get a
// fresh state (they may run at any time).
func (lw *lockWalker) scanExpr(e ast.Expr, state lockState) lockState {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lw.walkStmts(x.Body.List, newLockState())
			return false
		case *ast.CallExpr:
			lw.checkCall(x, state)
		}
		return true
	})
	return state
}

// scanFuncLits visits only nested function literals (defer and go
// arguments), walking each with fresh lock state.
func (lw *lockWalker) scanFuncLits(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lw.walkStmts(lit.Body.List, newLockState())
			return false
		}
		return true
	})
}

// terminates reports whether a statement (or the last statement of a
// block) cannot fall through: return, branch, or a panic/Fatal-style call.
func terminates(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		if n := len(s.List); n > 0 {
			return terminates(s.List[n-1])
		}
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch calleeName(call) {
			case "panic", "Fatal", "Fatalf", "Exit", "Goexit":
				return true
			}
		}
	}
	return false
}

func (lw *lockWalker) checkCall(call *ast.CallExpr, state lockState) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if isSel {
		if t, ok := lw.pass.TypesInfo.Types[sel.X]; ok && isMutex(t.Type) {
			key := types.ExprString(sel.X)
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				state[key]++
				return
			case "Unlock", "RUnlock":
				if state[key] > 0 {
					state[key]--
				}
				return
			}
		}
	}
	name := calleeName(call)
	if !hasLockedSuffix(name) && !hasEpochSuffix(name) {
		return
	}
	if hasEpochSuffix(name) && !hasLockedSuffix(name) && lw.epochExempt(call) {
		return
	}
	if state.anyHeld() {
		return
	}
	if lw.pass.annotatedAt(call.Pos(), "holds") {
		return
	}
	lw.pass.Reportf(call.Pos(),
		"call to %s without its mutex: caller is neither *Locked nor holds a Lock/RLock on every path here (annotate with // lint:holds <mu> if the lock is taken elsewhere)", name)
}

// epochExempt reports whether an *Epoch call's receiver is an immutable
// routing value — a RouteTable or a *Snapshot type — whose epoch field is
// stamped once at install time and safe to read without the router's
// mutex. Function-valued and receiver-less calls get no exemption.
func (lw *lockWalker) epochExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t, ok := lw.pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	typ := t.Type
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	n := named.Obj().Name()
	return n == "RouteTable" ||
		(len(n) >= len("Snapshot") && n[len(n)-len("Snapshot"):] == "Snapshot")
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	default:
		return ""
	}
}
