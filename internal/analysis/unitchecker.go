package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// This file implements the `go vet -vettool` compilation-unit protocol, the
// same contract golang.org/x/tools/go/analysis/unitchecker speaks, on the
// standard library alone (the module deliberately has no dependencies):
//
//	repllint -V=full      describe the executable      (to the go command)
//	repllint -flags       describe the tool's flags    (to the go command)
//	repllint <unit>.cfg   analyze one compilation unit (per package)
//
// For each package, the go command writes a JSON config naming the unit's
// source files and the export-data files of every import, then invokes the
// tool with the config's path. The tool parses and type-checks the unit
// (imports are satisfied from the compiler's export data via go/importer),
// runs the analyzers, and exits non-zero if any diagnostics were reported —
// which fails the overall `go vet` invocation.

// unitConfig describes a vet compilation unit; it mirrors the JSON the go
// command writes (cmd/go/internal/work.vetConfig). Unknown fields are
// ignored by encoding/json, so the subset here is forward-compatible.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vettool protocol for the given analyzers and exits.
// It expects os.Args[1:] to be one of -V=full, -flags, or a single path
// ending in .cfg.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			printVersion(args[0])
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags: every analyzer always runs.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0], analyzers))
		}
	}
	fmt.Fprintf(os.Stderr, `repllint: this tool speaks the go vet -vettool protocol and expects a
single <unit>.cfg argument from the go command; run it via

	go run ./cmd/repllint ./...

(or go vet -vettool=$(command -v repllint) ./...), not directly.
`)
	os.Exit(64)
}

// printVersion answers `-V=full`: the go command hashes the reply into its
// action cache so analysis re-runs when the tool binary changes. The reply
// must be of the form "<progname> version <ver>"; using "devel" plus a
// content hash of the executable mirrors what cmd/compile and unitchecker
// do, and makes the cache key track the tool's actual bytes.
func printVersion(flagArg string) {
	if flagArg != "-V=full" {
		fmt.Fprintf(os.Stderr, "repllint: unsupported flag %q\n", flagArg)
		os.Exit(2)
	}
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
}

// runUnit analyzes one compilation unit and returns the process exit code:
// 0 clean, 1 on operational errors, 2 when diagnostics were reported.
func runUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repllint: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repllint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command asks for a "vetx" facts file per unit so dependent
	// units can consume cross-package facts. These analyzers keep no
	// cross-package facts, so the file is written empty — but it must be
	// written, before any other outcome, for the caching contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			fmt.Fprintf(os.Stderr, "repllint: %v\n", err)
			return 1
		}
	}
	// VetxOnly units are pure dependencies: the driver wants only their
	// facts. With no facts to compute, skip the parse and type-check
	// entirely — this is what keeps whole-tree runs fast (the standard
	// library is never analyzed, only this module's packages are).
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "repllint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheckUnit(fset, &cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repllint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := RunAnalyzers(analyzers, fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.pos), d.message, d.analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckUnit type-checks the unit's parsed files, resolving imports
// through the export data the go command listed in the config.
func typecheckUnit(fset *token.FileSet, cfg *unitConfig, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped // resolve vendoring and test-variant remapping
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(importPath, cfg.Dir, 0)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// unitDiag is one diagnostic tagged with its analyzer, position-sortable.
type unitDiag struct {
	pos      token.Pos
	analyzer string
	message  string
}

// RunAnalyzers runs every analyzer over one type-checked package and
// returns the diagnostics sorted by position. It is the shared core of the
// unitchecker driver and the analysistest harness.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []unitDiag {
	var diags []unitDiag
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			diags = append(diags, unitDiag{pos: d.Pos, analyzer: pass.Analyzer.Name, message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, unitDiag{pos: token.NoPos, analyzer: a.Name, message: "analyzer error: " + err.Error()})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].analyzer < diags[j].analyzer
	})
	return diags
}

// Position exposes a diagnostic's location for the test harness.
func (d unitDiag) Position(fset *token.FileSet) token.Position { return fset.Position(d.pos) }

// Analyzer names the analyzer that produced the diagnostic.
func (d unitDiag) Analyzer() string { return d.analyzer }

// Message returns the diagnostic text.
func (d unitDiag) Message() string { return d.message }
