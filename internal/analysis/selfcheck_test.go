package analysis

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepllintSelfCheck builds the real vettool and runs it — through the
// exact `go vet -vettool` invocation CI uses — over the analysis suite and
// its command. The linter must be clean under its own rules, and this
// doubles as an end-to-end test of the unitchecker protocol implementation.
func TestRepllintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the vettool and re-enters the go toolchain")
	}
	bin := filepath.Join(t.TempDir(), "repllint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/repllint")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building repllint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/analysis/...", "./cmd/repllint")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("repllint is not clean on its own source: %v\n%s", err, out)
	}
}
