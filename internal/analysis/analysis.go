// Package analysis is repllint: a suite of project-specific static
// analyzers that mechanically enforce the invariants PRs 2–7 kept fixing by
// hand. Each analyzer is grounded in a bug class that actually shipped:
//
//   - lockedcall: *Locked helpers invoked without their mutex (the PR-6
//     snapMu/assignLocked family).
//   - rawsqltext: raw statement text crossing a process or replica boundary
//     without sqlparse.BindParams (the PR-5 unbound-? slave-applier stall).
//   - typederr: request-path errors that drop the typed retryable/deadline
//     contract the database/sql driver's classification depends on (PR 7).
//   - wallclock: wall-clock time, global randomness and map-iteration-order
//     dependence in the deterministic certification paths (PR 6's offline
//     checkers are only sound if recorded orders are ground truth).
//   - slotleak: admission slots or replica semaphore acquisitions not
//     released on every control-flow path (the bug shape PR 7's
//     deadline-cancellation tests guard dynamically).
//
// The types here mirror golang.org/x/tools/go/analysis deliberately — same
// Analyzer/Pass/Diagnostic shape — but are implemented on the standard
// library alone so the module stays dependency-free. cmd/repllint drives
// them through the `go vet -vettool` compilation-unit protocol (see
// unitchecker.go) and through a package-pattern mode that re-invokes go vet,
// so local runs and CI cannot diverge.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package via the Pass and reports diagnostics through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer's view of a single type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for the package.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)

	annots map[*ast.File]fileAnnotations
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// fileAnnotations indexes a file's `// lint:<key> <args>` suppression
// comments by the line they occupy.
type fileAnnotations struct {
	byLine map[int][]annotation
}

type annotation struct {
	key  string // e.g. "holds", "rawsql-ok"
	args string // remainder of the comment after the key
}

// AnnotationPrefix introduces a repllint suppression or assertion comment:
//
//	// lint:<key> <argument or reason>
//
// Recognized keys are documented per analyzer in docs/LINTING.md.
const AnnotationPrefix = "lint:"

func (p *Pass) annotations(f *ast.File) fileAnnotations {
	if fa, ok := p.annots[f]; ok {
		return fa
	}
	fa := fileAnnotations{byLine: make(map[int][]annotation)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, AnnotationPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, AnnotationPrefix)
			key, args, _ := strings.Cut(rest, " ")
			line := p.Fset.Position(c.Pos()).Line
			fa.byLine[line] = append(fa.byLine[line], annotation{key: key, args: strings.TrimSpace(args)})
		}
	}
	if p.annots == nil {
		p.annots = make(map[*ast.File]fileAnnotations)
	}
	p.annots[f] = fa
	return fa
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// annotatedAt reports whether a `// lint:<key>` comment covers pos: on the
// same source line (trailing) or on the line immediately above it.
func (p *Pass) annotatedAt(pos token.Pos, key string) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	fa := p.annotations(f)
	line := p.Fset.Position(pos).Line
	for _, a := range append(fa.byLine[line], fa.byLine[line-1]...) {
		if a.key == key {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether fn's declaration carries a `// lint:<key>`
// comment, either in its doc comment or on the line above it.
func (p *Pass) funcAnnotated(fn *ast.FuncDecl, key string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, AnnotationPrefix+key) {
				return true
			}
		}
	}
	return p.annotatedAt(fn.Pos(), key)
}

// isTestFile reports whether the file at pos is a _test.go file. The lint
// invariants guard production code; tests routinely use wall clocks, raw
// text and ad-hoc errors on purpose.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// prodFiles yields the package's non-test files.
func (p *Pass) prodFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.isTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// pkgPathHasSuffix reports whether the package's import path ends with one
// of the given suffixes. Matching by suffix (not exact path) lets the
// analyzers apply both to the real module ("repro/internal/core") and to
// analysistest fixtures ("a/internal/core").
func (p *Pass) pkgPathHasSuffix(suffixes ...string) bool {
	path := p.Pkg.Path()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Analyzers returns the full repllint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockedCallAnalyzer,
		RawSQLTextAnalyzer,
		TypedErrAnalyzer,
		WallClockAnalyzer,
		SlotLeakAnalyzer,
	}
}

// --- shared type helpers ---

// namedTypeIn reports whether t (after pointer indirection) is a defined
// type with the given name whose package's *name* is pkgName. Matching the
// package name rather than full path keeps the analyzers testable against
// fixture stubs (a testdata "sync" package stands in for the real one).
func namedTypeIn(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (or a pointer to
// one).
func isMutex(t types.Type) bool {
	return namedTypeIn(t, "sync", "Mutex") || namedTypeIn(t, "sync", "RWMutex")
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgName.funcName (matching the *name* of the imported package object).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgName, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Name() == pkgName
}

// rootIdent returns the leftmost identifier of a selector chain (x in
// x.y.z), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
