package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SlotLeakAnalyzer enforces the acquire/release pairing PR 7's overload
// protection depends on: every admission.Acquire (and every Replica worker
// semaphore acquire) must be matched by a Release/Done (or release) on
// every control-flow path, including early error returns. A leaked slot is
// permanent capacity loss — enough of them and the admission controller
// rejects all traffic forever, the failure shape the deadline-cancellation
// tests guard dynamically and this analyzer guards statically.
//
// Tracking is ownership-based and deliberately conservative about escapes:
//
//   - a token is created when a call whose results include *admission.Slot
//     is assigned to a variable, or when Replica.acquire/acquireDeadline is
//     called (keyed by receiver);
//   - inside an `if err != nil` guard on the acquire's own error, the token
//     is not held (Acquire returns no slot alongside an error);
//   - ANY later statement mentioning the slot variable discharges the token
//     — calling Done/Release, deferring it, passing the slot to a helper,
//     storing it, or returning it all transfer ownership out of this
//     function's obligation;
//   - the replica-semaphore token is discharged by a (possibly deferred)
//     receiver.release() call;
//   - a return reached with a live token, or falling off the end of the
//     function with one, is a leak.
//
// Sites where ownership provably moves in a way the analyzer cannot see
// carry `// lint:slotleak-ok <reason>`.
var SlotLeakAnalyzer = &Analyzer{
	Name: "slotleak",
	Doc:  "every admission slot / replica semaphore acquire must be released on all control-flow paths",
	Run:  runSlotLeak,
}

func runSlotLeak(pass *Pass) error {
	for _, f := range pass.prodFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.funcAnnotated(fn, "slotleak-ok") {
				continue
			}
			sw := &slotWalker{pass: pass}
			out := sw.walkStmts(fn.Body.List, slotState{})
			for _, tok := range out {
				pass.Reportf(fn.Body.Rbrace,
					"%s acquired at line %d is still held when the function falls off its end — release it on every path (or annotate // lint:slotleak-ok <reason>)",
					tok.desc, pass.Fset.Position(tok.pos).Line)
			}
		}
	}
	return nil
}

// slotToken is one outstanding acquisition.
type slotToken struct {
	key     string       // identity within the state map
	desc    string       // human description for diagnostics
	slotObj types.Object // the *admission.Slot variable (nil for semaphores)
	errObj  types.Object // the error assigned alongside the acquire
	recvKey string       // receiver source text for semaphore release matching
	pos     token.Pos    // acquire site
}

type slotState map[string]slotToken

func (s slotState) clone() slotState {
	out := make(slotState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// union keeps a token live if it is live on either arm: a leak on any path
// is a leak.
func union(a, b slotState) slotState {
	out := a.clone()
	for k, v := range b {
		out[k] = v
	}
	return out
}

type slotWalker struct {
	pass *Pass
}

func (sw *slotWalker) walkStmts(stmts []ast.Stmt, state slotState) slotState {
	for _, st := range stmts {
		state = sw.walkStmt(st, state)
	}
	return state
}

func (sw *slotWalker) walkStmt(st ast.Stmt, state slotState) slotState {
	// For simple statements, any mention of a live token's slot variable —
	// or its release call — discharges it, whatever the statement shape.
	// Compound statements are NOT discharged wholesale: a release inside
	// one arm must not absolve the other arms, so recursion handles their
	// inner statements one by one.
	switch st.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
	default:
		state = sw.discharge(st, state)
	}

	switch s := st.(type) {
	case *ast.BlockStmt:
		return sw.walkStmts(s.List, state)
	case *ast.AssignStmt:
		return sw.acquireFromAssign(s, state)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return sw.acquireFromCall(call, nil, state)
		}
		return state
	case *ast.IfStmt:
		if s.Init != nil {
			state = sw.walkStmt(s.Init, state)
		}
		thenState, elseState := sw.splitOnErrGuard(s.Cond, state)
		thenOut := sw.walkStmt(s.Body, thenState)
		elseOut := elseState
		elseTerm := false
		if s.Else != nil {
			elseOut = sw.walkStmt(s.Else, elseState)
			elseTerm = terminates(s.Else)
		}
		switch {
		case terminates(s.Body) && elseTerm:
			return slotState{}
		case terminates(s.Body):
			return elseOut
		case elseTerm:
			return thenOut
		}
		return union(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			state = sw.walkStmt(s.Init, state)
		}
		body := sw.walkStmt(s.Body, state.clone())
		if s.Post != nil {
			body = sw.walkStmt(s.Post, body)
		}
		return union(state, body)
	case *ast.RangeStmt:
		return union(state, sw.walkStmt(s.Body, state.clone()))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return sw.walkBranchBody(st, state)
	case *ast.ReturnStmt:
		for _, tok := range state {
			if sw.pass.annotatedAt(s.Pos(), "slotleak-ok") {
				continue
			}
			sw.pass.Reportf(s.Pos(),
				"return leaks %s acquired at line %d: no Release/Done on this path (early error returns after a successful acquire are the classic shape; or annotate // lint:slotleak-ok <reason>)",
				tok.desc, sw.pass.Fset.Position(tok.pos).Line)
		}
		return slotState{}
	case *ast.LabeledStmt:
		return sw.walkStmt(s.Stmt, state)
	default:
		return state
	}
}

func (sw *slotWalker) walkBranchBody(st ast.Stmt, state slotState) slotState {
	var body *ast.BlockStmt
	switch s := st.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	out := state.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		out = union(out, sw.walkStmts(stmts, state.clone()))
	}
	return out
}

// splitOnErrGuard recognizes `if err != nil` / `if err == nil` over the
// error variable of a live acquire token: the token is only held on the
// err==nil side (Acquire returns no slot alongside an error).
func (sw *slotWalker) splitOnErrGuard(cond ast.Expr, state slotState) (thenState, elseState slotState) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return state.clone(), state.clone()
	}
	var errIdent *ast.Ident
	if id, ok := bin.X.(*ast.Ident); ok && isNilIdent(bin.Y) {
		errIdent = id
	} else if id, ok := bin.Y.(*ast.Ident); ok && isNilIdent(bin.X) {
		errIdent = id
	}
	if errIdent == nil {
		return state.clone(), state.clone()
	}
	obj := sw.pass.TypesInfo.Uses[errIdent]
	if obj == nil {
		return state.clone(), state.clone()
	}
	errSide := state.clone()     // err != nil: token not held
	successSide := state.clone() // err == nil: token held
	for k, tok := range state {
		if tok.errObj == obj {
			delete(errSide, k)
		}
	}
	if bin.Op == token.NEQ {
		return errSide, successSide
	}
	return successSide, errSide
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// discharge removes tokens whose slot variable is mentioned anywhere in the
// statement (ownership transfers: Done/Release, defer, helper call, store,
// return) and semaphore tokens whose receiver.release() is called.
func (sw *slotWalker) discharge(st ast.Stmt, state slotState) slotState {
	if len(state) == 0 {
		return state
	}
	out := state
	copied := false
	remove := func(k string) {
		if !copied {
			out = state.clone()
			copied = true
		}
		delete(out, k)
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if obj := sw.pass.TypesInfo.Uses[x]; obj != nil {
				for k, tok := range state {
					if tok.slotObj != nil && tok.slotObj == obj {
						remove(k)
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "release" {
				key := types.ExprString(sel.X)
				for k, tok := range state {
					if tok.recvKey != "" && tok.recvKey == key {
						remove(k)
					}
				}
			}
		}
		return true
	})
	return out
}

// acquireFromAssign creates tokens for `slot, err := ...Acquire(...)`
// shapes: any single-call assignment whose results include *admission.Slot,
// or a Replica.acquire/acquireDeadline error assignment.
func (sw *slotWalker) acquireFromAssign(as *ast.AssignStmt, state slotState) slotState {
	if len(as.Rhs) != 1 {
		return state
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return state
	}
	return sw.acquireFromCall(call, as, state)
}

func (sw *slotWalker) acquireFromCall(call *ast.CallExpr, as *ast.AssignStmt, state slotState) slotState {
	t, ok := sw.pass.TypesInfo.Types[call]
	if !ok {
		return state
	}
	// Replica worker-semaphore acquire: method named acquire/acquireDeadline
	// on a core.Replica receiver.
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel &&
		(sel.Sel.Name == "acquire" || sel.Sel.Name == "acquireDeadline") {
		if rt, ok := sw.pass.TypesInfo.Types[sel.X]; ok && namedTypeIn(rt.Type, "core", "Replica") {
			if sw.pass.annotatedAt(call.Pos(), "slotleak-ok") {
				return state
			}
			key := "sem:" + types.ExprString(sel.X)
			tok := slotToken{
				key:     key,
				desc:    "replica worker semaphore (" + types.ExprString(sel.X) + ".acquire)",
				recvKey: types.ExprString(sel.X),
				pos:     call.Pos(),
			}
			tok.errObj = errObjOf(sw.pass, as)
			ns := state.clone()
			ns[key] = tok
			return ns
		}
	}
	// Admission slot acquire: results include *admission.Slot.
	slotIdx := -1
	switch tt := t.Type.(type) {
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			if namedTypeIn(tt.At(i).Type(), "admission", "Slot") {
				slotIdx = i
			}
		}
	default:
		if namedTypeIn(t.Type, "admission", "Slot") {
			slotIdx = 0
		}
	}
	if slotIdx < 0 {
		return state
	}
	if sw.pass.annotatedAt(call.Pos(), "slotleak-ok") {
		return state
	}
	if as == nil || len(as.Lhs) <= slotIdx {
		// Result discarded outright: on the success path the slot can
		// never be released.
		sw.pass.Reportf(call.Pos(),
			"admission slot result discarded: the slot acquired here can never be released")
		return state
	}
	slotIdent, ok := as.Lhs[slotIdx].(*ast.Ident)
	if !ok || slotIdent.Name == "_" {
		sw.pass.Reportf(call.Pos(),
			"admission slot assigned to _: the slot acquired here can never be released")
		return state
	}
	slotObj := sw.pass.TypesInfo.Defs[slotIdent]
	if slotObj == nil {
		slotObj = sw.pass.TypesInfo.Uses[slotIdent]
	}
	if slotObj == nil {
		return state
	}
	tok := slotToken{
		key:     "slot:" + slotIdent.Name + ":" + sw.pass.Fset.Position(slotObj.Pos()).String(),
		desc:    "admission slot `" + slotIdent.Name + "`",
		slotObj: slotObj,
		pos:     call.Pos(),
	}
	tok.errObj = errObjOf(sw.pass, as)
	ns := state.clone()
	ns[tok.key] = tok
	return ns
}

// errObjOf finds the error variable assigned alongside the acquire, if any.
func errObjOf(pass *Pass, as *ast.AssignStmt) types.Object {
	if as == nil {
		return nil
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var obj types.Object
		if obj = pass.TypesInfo.Defs[id]; obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil && isErrorType(obj.Type()) {
			return obj
		}
	}
	return nil
}
