// Package time is a fixture stub matched by package name.
package time

type Duration int64

type Time struct{}

func (t Time) Add(d Duration) Time { return t }

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Until(t Time) Duration { return 0 }
func Sleep(d Duration)      {}
