package history

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want "time.Now"
}

func pace() {
	time.Sleep(10)
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since"
}

func pick(n int) int {
	return rand.Intn(n) // want "global rand.Intn"
}

func pickSeeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func keysBad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "iteration order leaks"
	}
	return out
}

func keysAnnotated(m map[string]int) []string {
	var out []string
	for k := range m { // lint:maporder-ok caller sorts before recording
		out = append(out, k)
	}
	return out
}

func countsOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func innerScope(m map[string]int) {
	for k := range m {
		var tmp []string
		tmp = append(tmp, k)
		_ = tmp
	}
}

func deliberate() time.Time {
	return time.Now() // lint:wallclock-ok operator-facing timestamp, never enters a recorded order
}
