// Package sync is a fixture stub: the analyzers match mutexes by package
// name and type name, so this stands in for the real sync package.
package sync

type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{}

func (m *RWMutex) Lock()          {}
func (m *RWMutex) Unlock()        {}
func (m *RWMutex) RLock()         {}
func (m *RWMutex) RUnlock()       {}
func (m *RWMutex) TryLock() bool  { return true }
func (m *RWMutex) TryRLock() bool { return true }
