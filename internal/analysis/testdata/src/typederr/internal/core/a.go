package core

import (
	"engine"
	"errors"
	"fmt"
)

var ErrOverloaded = errors.New("core: overloaded")

type Session struct{}

func (s *Session) waitFreshness(ok bool) error {
	if !ok {
		return errors.New("home stuck") // want "naked errors.New"
	}
	return nil
}

func (s *Session) Exec(q string) (*engine.Result, error) {
	if q == "" {
		return nil, fmt.Errorf("empty query %q", q) // want "without %w"
	}
	if len(q) > 10 {
		return nil, fmt.Errorf("%w: queue full", ErrOverloaded)
	}
	return &engine.Result{}, nil
}

func (s *Session) validate(q string) error {
	if q == "bad" {
		return errors.New("client misuse") // lint:typederr-ok usage error, deliberately matches no sentinel
	}
	return nil
}

// parseHint has no request-path signature: untyped errors are fine here.
func parseHint(h string) error {
	if h == "" {
		return errors.New("no hint")
	}
	return nil
}
