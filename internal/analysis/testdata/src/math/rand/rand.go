// Package rand is a fixture stub; wallclock matches it by import path
// ("math/rand"), which the fixture loader preserves.
package rand

type Source interface {
	Int63() int64
}

type Rand struct{}

func (r *Rand) Intn(n int) int                     { return 0 }
func (r *Rand) Shuffle(n int, swap func(i, j int)) {}

func New(src Source) *Rand        { return &Rand{} }
func NewSource(seed int64) Source { return nil }

func Intn(n int) int                     { return 0 }
func Int63() int64                       { return 0 }
func Shuffle(n int, swap func(i, j int)) {}
