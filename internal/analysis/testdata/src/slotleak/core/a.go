package core

import "admission"

type Replica struct{}

func (r *Replica) acquire() error                { return nil }
func (r *Replica) acquireDeadline(d int64) error { return nil }
func (r *Replica) release()                      {}

func good(ctrl *admission.Controller) error {
	slot, err := ctrl.Acquire("u", "oltp")
	if err != nil {
		return err
	}
	defer slot.Release()
	return nil
}

func leakEarlyReturn(ctrl *admission.Controller, c bool) error {
	slot, err := ctrl.Acquire("u", "oltp")
	if err != nil {
		return err
	}
	if c {
		return nil // want "leaks admission slot"
	}
	slot.Done(nil)
	return nil
}

func discarded(ctrl *admission.Controller) {
	ctrl.Acquire("u", "oltp") // want "discarded"
}

func blankSlot(ctrl *admission.Controller) error {
	_, err := ctrl.Acquire("u", "oltp") // want "assigned to _"
	return err
}

func handoff(ctrl *admission.Controller, sink func(*admission.Slot)) error {
	slot, err := ctrl.Acquire("u", "oltp")
	if err != nil {
		return err
	}
	// Passing the slot onward transfers the release obligation.
	sink(slot)
	return nil
}

func semGood(r *Replica) error {
	if err := r.acquire(); err != nil {
		return err
	}
	defer r.release()
	return nil
}

func semLeak(r *Replica, c bool) error {
	if err := r.acquire(); err != nil {
		return err
	}
	if c {
		return nil // want "leaks replica worker semaphore"
	}
	r.release()
	return nil
}

func fallOffLeak(ctrl *admission.Controller, c bool) {
	slot, err := ctrl.Acquire("u", "oltp")
	if err != nil {
		return
	}
	if c {
		slot.Done(nil)
	}
} // want "falls off its end"

func annotatedReturn(ctrl *admission.Controller, c bool) error {
	slot, err := ctrl.Acquire("u", "oltp")
	if err != nil {
		return err
	}
	if c {
		return nil // lint:slotleak-ok admission timer reclaims the slot in this mode
	}
	slot.Done(nil)
	return nil
}
