// Package fmt is a fixture stub matched by package name.
package fmt

func Errorf(format string, args ...interface{}) error { return nil }

func Sprintf(format string, args ...interface{}) string { return "" }
