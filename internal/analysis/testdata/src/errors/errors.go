// Package errors is a fixture stub matched by package name.
package errors

func New(text string) error { return nil }

func Is(err, target error) bool { return false }
