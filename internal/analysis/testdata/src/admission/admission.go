// Package admission is a fixture stub matched by package name: Slot is the
// resource slotleak tracks.
package admission

type Slot struct{}

func (s *Slot) Done(err error) {}
func (s *Slot) Release()       {}

type Controller struct{}

func (c *Controller) Acquire(user, class string) (*Slot, error) {
	return &Slot{}, nil
}
