// Package engine is a fixture stub matched by package name: Result marks
// the statement-execution signature typederr treats as request-path.
package engine

type Result struct{}
