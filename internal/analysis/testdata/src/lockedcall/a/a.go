package a

import "sync"

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (n *node) assignLocked() { n.n++ }
func (n *node) drainLocked()  { n.n-- }

func (n *node) good() {
	n.mu.Lock()
	n.assignLocked()
	n.mu.Unlock()
}

func (n *node) goodDeferred() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.assignLocked()
}

func (n *node) goodRLock() {
	n.rw.RLock()
	n.assignLocked()
	n.rw.RUnlock()
}

func (n *node) helperLocked() {
	// A *Locked function's callees inherit the caller's lock.
	n.assignLocked()
}

func (n *node) bad() {
	n.assignLocked() // want "without its mutex"
}

func (n *node) badAfterUnlock() {
	n.mu.Lock()
	n.assignLocked()
	n.mu.Unlock()
	n.drainLocked() // want "without its mutex"
}

func (n *node) badBranchOnly(c bool) {
	if c {
		n.mu.Lock()
		n.assignLocked()
		n.mu.Unlock()
	}
	n.drainLocked() // want "without its mutex"
}

func (n *node) goodEarlyReturn(c bool) {
	n.mu.Lock()
	if c {
		n.mu.Unlock()
		return
	}
	n.assignLocked()
	n.mu.Unlock()
}

// lint:holds n.mu — every caller pins the mutex before invoking this helper.
func (n *node) annotatedFunc() {
	n.assignLocked()
}

func (n *node) annotatedSite() {
	n.assignLocked() // lint:holds n.mu taken two frames up
}

func (n *node) badGoroutine() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.assignLocked() // want "without its mutex"
	}()
}
