package a

import "sync"

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (n *node) assignLocked() { n.n++ }
func (n *node) drainLocked()  { n.n-- }

func (n *node) good() {
	n.mu.Lock()
	n.assignLocked()
	n.mu.Unlock()
}

func (n *node) goodDeferred() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.assignLocked()
}

func (n *node) goodRLock() {
	n.rw.RLock()
	n.assignLocked()
	n.rw.RUnlock()
}

func (n *node) helperLocked() {
	// A *Locked function's callees inherit the caller's lock.
	n.assignLocked()
}

func (n *node) bad() {
	n.assignLocked() // want "without its mutex"
}

func (n *node) badAfterUnlock() {
	n.mu.Lock()
	n.assignLocked()
	n.mu.Unlock()
	n.drainLocked() // want "without its mutex"
}

func (n *node) badBranchOnly(c bool) {
	if c {
		n.mu.Lock()
		n.assignLocked()
		n.mu.Unlock()
	}
	n.drainLocked() // want "without its mutex"
}

func (n *node) goodEarlyReturn(c bool) {
	n.mu.Lock()
	if c {
		n.mu.Unlock()
		return
	}
	n.assignLocked()
	n.mu.Unlock()
}

// lint:holds n.mu — every caller pins the mutex before invoking this helper.
func (n *node) annotatedFunc() {
	n.assignLocked()
}

func (n *node) annotatedSite() {
	n.assignLocked() // lint:holds n.mu taken two frames up
}

func (n *node) badGoroutine() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.assignLocked() // want "without its mutex"
	}()
}

// ---- routing-epoch convention ----

type router struct {
	mu    sync.Mutex
	epoch uint64
}

type RouteTable struct{ epoch uint64 }

type routeSnapshot struct{ epoch uint64 }

// Renamed-in-fixture stand-ins for the core package's RouteTable/Snapshot
// exemption: immutable values whose epoch is stamped at install time.
func (rt *RouteTable) NextEpoch() uint64   { return rt.epoch + 1 }
func (s *routeSnapshot) NextEpoch() uint64 { return s.epoch + 1 }
func (r *router) installEpoch(next uint64) { r.epoch = next }
func (r *router) Epoch() uint64            { return r.epoch }

func (r *router) goodInstall(next uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.installEpoch(next)
}

func (r *router) badInstall(next uint64) {
	r.installEpoch(next) // want "without its mutex"
}

func (r *router) badInstallAfterUnlock(next uint64) {
	r.mu.Lock()
	r.installEpoch(next)
	r.mu.Unlock()
	r.installEpoch(next + 1) // want "without its mutex"
}

func (r *router) goodBareEpoch() uint64 {
	// The bare accessor reads a published value; no lock required.
	return r.Epoch()
}

func goodImmutableReceivers(rt *RouteTable, s *routeSnapshot) uint64 {
	// RouteTable and *Snapshot receivers are immutable: exempt.
	return rt.NextEpoch() + s.NextEpoch()
}

// lint:holds r.mu — callers install epochs mid-cutover with the router lock pinned.
func (r *router) annotatedEpochFunc(next uint64) {
	r.installEpoch(next)
}
