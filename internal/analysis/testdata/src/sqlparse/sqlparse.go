// Package sqlparse is a fixture stub matched by package name: Statement and
// Expr interfaces, one parameterized statement (Insert), one param-free DDL
// statement (CreateTable), and BindParams.
package sqlparse

type Statement interface {
	SQL() string
}

type Expr interface {
	SQL() string
}

type Insert struct{}

func (i *Insert) SQL() string { return "" }

type Select struct{}

func (s *Select) SQL() string { return "" }

type CreateTable struct{}

func (c *CreateTable) SQL() string { return "" }

type Literal struct{}

func (l *Literal) SQL() string { return "" }

func BindParams(st Statement, args []interface{}) (Statement, error) {
	return st, nil
}
