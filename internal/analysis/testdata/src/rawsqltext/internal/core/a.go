package core

import "sqlparse"

func ship(st sqlparse.Statement) string {
	return st.SQL() // want "raw statement text"
}

func shipBound(st sqlparse.Statement, args []interface{}) (string, error) {
	bound, err := sqlparse.BindParams(st, args)
	if err != nil {
		return "", err
	}
	return bound.SQL(), nil
}

func shipDDL(ct *sqlparse.CreateTable) string {
	// Concrete param-free type: cannot carry a ? placeholder.
	return ct.SQL()
}

func shipInsert(ins *sqlparse.Insert) string {
	return ins.SQL() // want "raw statement text"
}

func logText(st sqlparse.Statement) string {
	return st.SQL() // lint:rawsql-ok error-message rendering only, never re-parsed
}

// lint:rawsql-ok backup files store raw text by design
func backupText(st sqlparse.Statement) string {
	return st.SQL()
}
