// Package other is outside the boundary packages: raw SQL() renders are
// not flagged here.
package other

import "sqlparse"

func render(st sqlparse.Statement) string {
	return st.SQL()
}
