package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// testEngine builds an engine plus a client factory. Engine sessions are
// not safe for concurrent use (they model driver connections), so each
// worker of RunClosed/RunOpen gets its own session on the shared engine.
func testEngine(t *testing.T) (Client, func(int) (Client, error)) {
	t.Helper()
	e := engine.New(engine.Config{})
	mk := func(int) (Client, error) {
		s := e.NewSession("w")
		if _, err := s.Exec("USE app"); err != nil {
			return nil, err
		}
		return s, nil
	}
	s := e.NewSession("w")
	if _, err := s.Exec("CREATE DATABASE app"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("USE app"); err != nil {
		t.Fatal(err)
	}
	return s, mk
}

func testClient(t *testing.T) Client {
	t.Helper()
	c, _ := testEngine(t)
	return c
}

func TestMixRequestRespectsReadFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mix := Mix{ReadFraction: 0.9, Keys: 10, Table: "t"}
	reads := 0
	const n = 2000
	for i := 0; i < n; i++ {
		_, isRead := mix.Request(rng)
		if isRead {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction = %.3f, want ~0.9", frac)
	}
}

func TestMixRequestSQLShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mix := Mix{ReadFraction: 0, Keys: 5, Table: "bookings"}
	sql, isRead := mix.Request(rng)
	if isRead || !strings.HasPrefix(sql, "UPDATE bookings") {
		t.Fatalf("write request: %q", sql)
	}
	mix.ReadFraction = 1
	sql, isRead = mix.Request(rng)
	if !isRead || !strings.HasPrefix(sql, "SELECT") {
		t.Fatalf("read request: %q", sql)
	}
}

func TestSetupPopulates(t *testing.T) {
	c := testClient(t)
	mix := Mix{Table: "bookings", Keys: 250}
	if err := mix.Setup(c, 250); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT COUNT(*) FROM bookings")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 250 {
		t.Fatalf("rows = %d", res.Rows[0][0].Int())
	}
}

func TestRunClosedCollectsMetrics(t *testing.T) {
	c, mk := testEngine(t)
	mix := Mix{ReadFraction: 0.5, Keys: 20, Table: "bookings"}
	if err := mix.Setup(c, 20); err != nil {
		t.Fatal(err)
	}
	res, err := RunClosed(mk, 2, mix, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes == 0 {
		t.Fatal("no operations recorded")
	}
	if res.ThroughputTotal <= 0 {
		t.Fatal("no throughput")
	}
	if res.ReadErrs+res.WriteErrs != 0 {
		t.Fatalf("errors: %d", res.ReadErrs+res.WriteErrs)
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunOpenPacesArrivals(t *testing.T) {
	c, mk := testEngine(t)
	mix := Mix{ReadFraction: 1, Keys: 20, Table: "bookings"}
	if err := mix.Setup(c, 20); err != nil {
		t.Fatal(err)
	}
	res, err := RunOpen(mk, 2, 200, mix, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// ~200/s over 200 ms ≈ 40 requests; allow generous slack.
	total := res.Reads + res.Writes
	if total < 10 || total > 120 {
		t.Fatalf("open-loop total = %d, want ≈40", total)
	}
}

func TestTicketBrokerPreset(t *testing.T) {
	mix := TicketBroker(100)
	if mix.ReadFraction != 0.95 || mix.Keys != 100 || mix.Table != "bookings" {
		t.Fatalf("preset: %+v", mix)
	}
}
