// Package workload provides the load generators the experiments run:
// the Fortune-500 ticket broker of §1 (95 % reads, thousands of writes/s),
// a TPC-W-like browse/order mix, and micro-benchmarks, in both closed-loop
// (the academic default §3.4 criticizes) and open-loop (fixed-rate,
// "most production systems operate at less than 50 % load") forms.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sqltypes"
)

// Client is anything that can execute SQL with optional ? bind arguments:
// an engine session, a middleware session, or a wire connection adapter —
// the same uniform Exec signature the whole stack shares.
type Client interface {
	Exec(sql string, args ...sqltypes.Value) (*engine.Result, error)
}

// ClientFunc adapts a function to the Client interface.
type ClientFunc func(sql string, args ...sqltypes.Value) (*engine.Result, error)

// Exec implements Client.
func (f ClientFunc) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return f(sql, args...)
}

// Mix describes a read/write statement mix over a keyspace.
type Mix struct {
	// ReadFraction in [0,1]: probability a request is a read.
	ReadFraction float64
	// Keys is the hot keyspace size (ids 1..Keys).
	Keys int
	// Table is the target table (schema: id PK, name TEXT, price FLOAT,
	// stock INTEGER).
	Table string
	// WriteInTxn wraps each write in BEGIN/COMMIT.
	WriteInTxn bool
}

// TicketBroker is the §1 case study: 95 % availability lookups, 5 % booking
// updates on a hot inventory.
func TicketBroker(keys int) Mix {
	return Mix{ReadFraction: 0.95, Keys: keys, Table: "bookings"}
}

// Request generates one SQL statement for the mix.
func (m Mix) Request(rng *rand.Rand) (sql string, isRead bool) {
	key := rng.Intn(m.Keys) + 1
	if rng.Float64() < m.ReadFraction {
		return fmt.Sprintf("SELECT id, name, price, stock FROM %s WHERE id = %d", m.Table, key), true
	}
	return fmt.Sprintf("UPDATE %s SET stock = stock - 1 WHERE id = %d", m.Table, key), false
}

// Setup creates and populates the mix's table through the client.
func (m Mix) Setup(c Client, rows int) error {
	if _, err := c.Exec(fmt.Sprintf(
		"CREATE TABLE IF NOT EXISTS %s (id INTEGER PRIMARY KEY, name TEXT, price FLOAT DEFAULT 1, stock INTEGER DEFAULT 1000000)", m.Table)); err != nil {
		return err
	}
	const batch = 100
	for lo := 1; lo <= rows; lo += batch {
		hi := lo + batch - 1
		if hi > rows {
			hi = rows
		}
		stmt := fmt.Sprintf("INSERT INTO %s (id, name) VALUES ", m.Table)
		for id := lo; id <= hi; id++ {
			if id > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'item-%d')", id, id)
		}
		if _, err := c.Exec(stmt); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes one load run.
type Result struct {
	Reads, Writes   int64
	ReadErrs        int64
	WriteErrs       int64
	Duration        time.Duration
	ReadLatency     *metrics.Histogram
	WriteLatency    *metrics.Histogram
	ThroughputTotal float64 // ops/sec
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%.0f ops/s (r=%d w=%d errs=%d) read %s | write %s",
		r.ThroughputTotal, r.Reads, r.Writes, r.ReadErrs+r.WriteErrs,
		r.ReadLatency.Summary(), r.WriteLatency.Summary())
}

// RunClosed drives `clients` concurrent closed-loop workers for the given
// duration: each worker issues its next request as soon as the previous one
// completes (the scaled-load methodology of §3.4).
func RunClosed(mkClient func(i int) (Client, error), clients int, mix Mix, dur time.Duration) (*Result, error) {
	res := &Result{
		ReadLatency:  metrics.NewHistogram(0),
		WriteLatency: metrics.NewHistogram(0),
	}
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		c, err := mkClient(i)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 42))
			for time.Now().Before(deadline) {
				sql, isRead := mix.Request(rng)
				t0 := time.Now()
				_, err := c.Exec(sql)
				lat := time.Since(t0)
				mu.Lock()
				if isRead {
					res.Reads++
					res.ReadLatency.Observe(lat)
					if err != nil {
						res.ReadErrs++
					}
				} else {
					res.Writes++
					res.WriteLatency.Observe(lat)
					if err != nil {
						res.WriteErrs++
					}
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.ThroughputTotal = float64(res.Reads+res.Writes) / res.Duration.Seconds()
	return res, nil
}

// RunOpen drives an open-loop arrival process at `rate` requests/second for
// the duration, with up to maxInFlight outstanding requests (requests beyond
// that are counted as errors — an overloaded open system sheds load).
func RunOpen(mkClient func(i int) (Client, error), workers int, rate float64, mix Mix, dur time.Duration) (*Result, error) {
	res := &Result{
		ReadLatency:  metrics.NewHistogram(0),
		WriteLatency: metrics.NewHistogram(0),
	}
	type req struct {
		sql    string
		isRead bool
		at     time.Time
	}
	queue := make(chan req, 4096)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		c, err := mkClient(i)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(c Client) {
			defer wg.Done()
			for rq := range queue {
				t0 := time.Now()
				_, err := c.Exec(rq.sql)
				lat := time.Since(t0)
				mu.Lock()
				if rq.isRead {
					res.Reads++
					res.ReadLatency.Observe(lat)
					if err != nil {
						res.ReadErrs++
					}
				} else {
					res.Writes++
					res.WriteLatency.Observe(lat)
					if err != nil {
						res.WriteErrs++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	rng := rand.New(rand.NewSource(7))
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	next := start
	for time.Now().Sub(start) < dur {
		sql, isRead := mix.Request(rng)
		select {
		case queue <- req{sql: sql, isRead: isRead, at: time.Now()}:
		default:
			mu.Lock()
			if isRead {
				res.ReadErrs++
			} else {
				res.WriteErrs++
			}
			mu.Unlock()
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(queue)
	wg.Wait()
	res.Duration = time.Since(start)
	res.ThroughputTotal = float64(res.Reads+res.Writes) / res.Duration.Seconds()
	return res, nil
}
