package gcs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

// newGroup spins up n members on a fresh network.
func newGroup(t *testing.T, n int, cfg Config) (*simnet.Network, []*Node) {
	t.Helper()
	net := simnet.NewNetwork(1)
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i + 1)
	}
	nodes := make([]*Node, n)
	for i, id := range ids {
		nodes[i] = NewNode(net.Attach(id), ids, cfg)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	})
	return net, nodes
}

// collect drains deliveries from a node until count messages arrive or the
// timeout passes.
func collect(node *Node, count int, timeout time.Duration) []Delivery {
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case d := <-node.Deliveries():
			out = append(out, d)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestSequencerTotalOrder(t *testing.T) {
	_, nodes := newGroup(t, 4, Config{Ordering: Sequencer})
	const perNode = 25
	for _, nd := range nodes {
		go func(nd *Node) {
			for i := 0; i < perNode; i++ {
				if err := nd.Broadcast(fmt.Sprintf("%d/%d", nd.ID(), i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(nd)
	}
	total := perNode * len(nodes)
	seqs := make([][]Delivery, len(nodes))
	for i, nd := range nodes {
		seqs[i] = collect(nd, total, 5*time.Second)
		if len(seqs[i]) != total {
			t.Fatalf("node %d delivered %d/%d", nd.ID(), len(seqs[i]), total)
		}
	}
	// The delivered sequences must be identical on every node.
	for i := 1; i < len(seqs); i++ {
		for j := range seqs[0] {
			if seqs[i][j].Payload != seqs[0][j].Payload || seqs[i][j].Seq != seqs[0][j].Seq {
				t.Fatalf("order divergence at %d: node1=%v node%d=%v",
					j, seqs[0][j], i+1, seqs[i][j])
			}
		}
	}
	// Sequence numbers are dense and increasing.
	for j, d := range seqs[0] {
		if d.Seq != uint64(j+1) {
			t.Fatalf("gap at %d: seq=%d", j, d.Seq)
		}
	}
}

func TestTokenRingTotalOrder(t *testing.T) {
	_, nodes := newGroup(t, 3, Config{Ordering: TokenRing})
	const perNode = 10
	for _, nd := range nodes {
		go func(nd *Node) {
			for i := 0; i < perNode; i++ {
				_ = nd.Broadcast(fmt.Sprintf("%d/%d", nd.ID(), i))
			}
		}(nd)
	}
	total := perNode * len(nodes)
	seqs := make([][]Delivery, len(nodes))
	for i, nd := range nodes {
		seqs[i] = collect(nd, total, 10*time.Second)
		if len(seqs[i]) != total {
			t.Fatalf("node %d delivered %d/%d", nd.ID(), len(seqs[i]), total)
		}
	}
	for i := 1; i < len(seqs); i++ {
		for j := range seqs[0] {
			if seqs[i][j].Payload != seqs[0][j].Payload {
				t.Fatalf("token-ring order divergence at %d", j)
			}
		}
	}
}

func TestFailureDetectorSuspectsCrashedNode(t *testing.T) {
	net, nodes := newGroup(t, 3, Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    50 * time.Millisecond,
	})
	// Crash node 3.
	nodes[2].Stop()
	net.Detach(3)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		v := nodes[0].View()
		if len(v.Members) == 2 && !v.Contains(3) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("crashed node never suspected: view=%v", nodes[0].View())
}

func TestViewChangeCallback(t *testing.T) {
	net, nodes := newGroup(t, 3, Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    50 * time.Millisecond,
	})
	got := make(chan View, 16)
	nodes[0].OnViewChange(func(v View) { got <- v })
	nodes[1].Stop()
	net.Detach(2)
	select {
	case v := <-got:
		if v.Contains(2) {
			t.Fatalf("new view still contains crashed node: %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no view change delivered")
	}
}

func TestSequencerFailoverContinuesOrdering(t *testing.T) {
	net, nodes := newGroup(t, 3, Config{
		Ordering:          Sequencer,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    50 * time.Millisecond,
		RetransmitTimeout: 40 * time.Millisecond,
	})
	// A few messages through the original coordinator (node 1).
	for i := 0; i < 5; i++ {
		if err := nodes[1].Broadcast(fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	pre2 := collect(nodes[1], 5, 2*time.Second)
	pre3 := collect(nodes[2], 5, 2*time.Second)
	if len(pre2) != 5 || len(pre3) != 5 {
		t.Fatalf("pre-failover deliveries: %d, %d", len(pre2), len(pre3))
	}
	// Kill the coordinator.
	nodes[0].Stop()
	net.Detach(1)
	// Wait for node 2 to take over.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[1].View().Coordinator() == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if nodes[1].View().Coordinator() != 2 {
		t.Fatalf("no coordinator handover: %v", nodes[1].View())
	}
	// Broadcasts continue through the new coordinator.
	for i := 0; i < 5; i++ {
		if err := nodes[2].Broadcast(fmt.Sprintf("post-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	post2 := collect(nodes[1], 5, 3*time.Second)
	post3 := collect(nodes[2], 5, 3*time.Second)
	if len(post2) != 5 || len(post3) != 5 {
		t.Fatalf("post-failover deliveries: %d, %d", len(post2), len(post3))
	}
	for i := range post2 {
		if post2[i].Payload != post3[i].Payload {
			t.Fatalf("post-failover divergence at %d", i)
		}
		if post2[i].Seq <= pre2[len(pre2)-1].Seq {
			t.Fatalf("sequence regressed after failover: %d", post2[i].Seq)
		}
	}
}

func TestLossRecoveryViaNack(t *testing.T) {
	net, nodes := newGroup(t, 3, Config{
		Ordering:          Sequencer,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    100 * time.Millisecond,
		RetransmitTimeout: 30 * time.Millisecond,
	})
	net.SetLoss(0.2)
	const total = 30
	go func() {
		for i := 0; i < total; i++ {
			_ = nodes[1].Broadcast(i)
			time.Sleep(time.Millisecond)
		}
	}()
	for i, nd := range nodes {
		got := collect(nd, total, 10*time.Second)
		if len(got) != total {
			t.Fatalf("node %d delivered %d/%d under loss", i+1, len(got), total)
		}
		for j, d := range got {
			if d.Payload.(int) != j {
				t.Fatalf("node %d out of order at %d: %v", i+1, j, d.Payload)
			}
		}
	}
}

func TestPartitionBlocksMinority(t *testing.T) {
	net, nodes := newGroup(t, 3, Config{
		Ordering:          Sequencer,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	// Partition node 3 away from {1, 2}.
	net.Partition([]simnet.NodeID{1, 2}, []simnet.NodeID{3})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		vMaj := nodes[0].View()
		vMin := nodes[2].View()
		if len(vMaj.Members) == 2 && len(vMin.Members) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(nodes[0].View().Members); got != 2 {
		t.Fatalf("majority view = %v", nodes[0].View())
	}
	if got := len(nodes[2].View().Members); got != 1 {
		t.Fatalf("minority view = %v", nodes[2].View())
	}
	// Heal: both sides converge back to 3 members.
	net.Heal()
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodes[0].View().Members) == 3 && len(nodes[2].View().Members) == 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("views did not heal: %v / %v", nodes[0].View(), nodes[2].View())
}

func TestSelfDeliveryIncluded(t *testing.T) {
	_, nodes := newGroup(t, 2, Config{Ordering: Sequencer})
	if err := nodes[1].Broadcast("hello"); err != nil {
		t.Fatal(err)
	}
	got := collect(nodes[1], 1, 2*time.Second)
	if len(got) != 1 || got[0].Payload != "hello" {
		t.Fatalf("sender did not deliver its own broadcast: %v", got)
	}
}

func TestSingleNodeGroup(t *testing.T) {
	_, nodes := newGroup(t, 1, Config{Ordering: Sequencer})
	for i := 0; i < 5; i++ {
		if err := nodes[0].Broadcast(i); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(nodes[0], 5, 2*time.Second)
	if len(got) != 5 {
		t.Fatalf("delivered %d/5", len(got))
	}
}
