// Package gcs is the group communication substrate: heartbeat failure
// detection, membership views, and reliable totally-ordered broadcast, the
// building block multi-master replication needs ("database replication
// requires reliable multicast with total order", §4.3.4.1).
//
// Two ordering protocols are provided — a fixed sequencer and a token ring —
// because their throughput/latency trade-off versus group size is one of the
// tuning headaches the paper describes (experiment C10).
package gcs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Ordering selects the total order protocol.
type Ordering int

// Ordering protocols.
const (
	// Sequencer routes all broadcasts through the current coordinator,
	// which assigns a global sequence number.
	Sequencer Ordering = iota
	// TokenRing circulates a token; only the holder assigns sequence
	// numbers. Higher fairness, extra hop latency.
	TokenRing
)

// Config tunes a group member.
type Config struct {
	// HeartbeatInterval between liveness probes; zero means 20 ms.
	HeartbeatInterval time.Duration
	// SuspectTimeout without a heartbeat before a peer is suspected;
	// zero means 5× the heartbeat interval.
	SuspectTimeout time.Duration
	// RetransmitTimeout before an unacknowledged broadcast is resent to
	// the (possibly new) sequencer; zero means 50 ms.
	RetransmitTimeout time.Duration
	// Ordering selects the total order protocol.
	Ordering Ordering
	// TokenHold is how long a token-ring holder keeps the token when it
	// has traffic; zero means pass immediately after draining.
	TokenHold time.Duration
}

func (c *Config) fill() {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.SuspectTimeout == 0 {
		c.SuspectTimeout = 5 * c.HeartbeatInterval
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = 50 * time.Millisecond
	}
}

// View is a membership snapshot.
type View struct {
	Epoch   uint64
	Members []simnet.NodeID // sorted, only unsuspected nodes
}

// Coordinator returns the view's coordinator (lowest live id), or -1.
func (v View) Coordinator() simnet.NodeID {
	if len(v.Members) == 0 {
		return -1
	}
	return v.Members[0]
}

// Contains reports whether id is in the view.
func (v View) Contains(id simnet.NodeID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Delivery is one totally-ordered message handed to the application.
type Delivery struct {
	Seq     uint64
	Origin  simnet.NodeID
	Payload any
}

// ---- wire message types (simnet payloads) ----

type hbMsg struct{ MaxSeq uint64 }

type tobReq struct {
	Origin  simnet.NodeID
	Counter uint64
	Payload any
}

type tobOrd struct {
	Seq     uint64
	Origin  simnet.NodeID
	Counter uint64
	Payload any
}

type nackMsg struct{ Seq uint64 }

type syncReq struct{ From simnet.NodeID }

type syncResp struct {
	MaxSeq  uint64
	History []tobOrd
}

type tokenMsg struct {
	NextSeq uint64
	Epoch   uint64
}

// msgKey dedups broadcasts by origin.
type msgKey struct {
	origin  simnet.NodeID
	counter uint64
}

// ErrStopped is returned by Broadcast after Stop.
var ErrStopped = errors.New("gcs: node stopped")

// Node is one group member.
type Node struct {
	id  simnet.NodeID
	ep  *simnet.Endpoint
	cfg Config

	mu        sync.Mutex
	members   []simnet.NodeID // static universe
	lastSeen  map[simnet.NodeID]time.Time
	suspected map[simnet.NodeID]bool
	view      View
	viewSubs  []func(View)

	counter   uint64                // local broadcast counter
	pending   map[msgKey]pendingMsg // sent, not yet seen ordered
	delivered map[msgKey]bool
	history   map[uint64]tobOrd // seq -> ordered message (for nacks/sync)
	buffer    map[uint64]tobOrd // out-of-order arrivals
	nextDel   uint64            // next seq to deliver (1-based)
	seqNext   uint64            // sequencer only: next seq to assign
	maxSeen   uint64

	// sequencer FIFO gating: per-origin next expected counter and
	// requests held until their predecessors arrive.
	originNext map[simnet.NodeID]uint64
	originHold map[simnet.NodeID]map[uint64]tobReq

	// token ring state
	haveToken bool
	tokenSeen time.Time
	queue     []tobReq // local messages awaiting a token

	deliverCh chan Delivery
	stopCh    chan struct{}
	stopped   bool
	wg        sync.WaitGroup
}

type pendingMsg struct {
	req  tobReq
	sent time.Time
}

// NewNode creates a group member attached to the endpoint. members is the
// static process universe (the initial configuration file, as with Spread).
func NewNode(ep *simnet.Endpoint, members []simnet.NodeID, cfg Config) *Node {
	cfg.fill()
	ms := append([]simnet.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	n := &Node{
		id:         ep.ID(),
		ep:         ep,
		cfg:        cfg,
		members:    ms,
		lastSeen:   make(map[simnet.NodeID]time.Time),
		suspected:  make(map[simnet.NodeID]bool),
		pending:    make(map[msgKey]pendingMsg),
		delivered:  make(map[msgKey]bool),
		originNext: make(map[simnet.NodeID]uint64),
		originHold: make(map[simnet.NodeID]map[uint64]tobReq),
		history:    make(map[uint64]tobOrd),
		buffer:     make(map[uint64]tobOrd),
		nextDel:    1,
		seqNext:    1,
		deliverCh:  make(chan Delivery, 4096),
		stopCh:     make(chan struct{}),
	}
	now := time.Now()
	for _, m := range ms {
		n.lastSeen[m] = now
	}
	n.view = View{Epoch: 1, Members: ms}
	n.tokenSeen = now
	return n
}

// ID returns this member's node id.
func (n *Node) ID() simnet.NodeID { return n.id }

// Start launches the member's event loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.run()
	if n.cfg.Ordering == TokenRing && n.isCoordinator() {
		// The initial coordinator mints the token.
		n.mu.Lock()
		n.haveToken = true
		n.tokenSeen = time.Now()
		n.mu.Unlock()
	}
}

// Stop terminates the member.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	n.mu.Unlock()
	n.wg.Wait()
}

// Deliveries returns the totally-ordered delivery channel.
func (n *Node) Deliveries() <-chan Delivery { return n.deliverCh }

// View returns the current membership view.
func (n *Node) View() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := n.view
	v.Members = append([]simnet.NodeID(nil), v.Members...)
	return v
}

// OnViewChange registers a callback invoked (from the event loop) on every
// view installation.
func (n *Node) OnViewChange(fn func(View)) {
	n.mu.Lock()
	n.viewSubs = append(n.viewSubs, fn)
	n.mu.Unlock()
}

// Broadcast submits a payload for totally-ordered delivery to all members
// (including the sender). It returns once the message is queued; delivery
// happens asynchronously.
func (n *Node) Broadcast(payload any) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	n.counter++
	req := tobReq{Origin: n.id, Counter: n.counter, Payload: payload}
	key := msgKey{origin: n.id, counter: n.counter}
	n.pending[key] = pendingMsg{req: req, sent: time.Now()}
	switch n.cfg.Ordering {
	case Sequencer:
		n.sendReqLocked(req)
	case TokenRing:
		n.queue = append(n.queue, req)
		if n.haveToken {
			n.drainTokenQueueLocked()
		}
	}
	return nil
}

// sendReqLocked routes a request to the current coordinator (possibly
// ourselves).
func (n *Node) sendReqLocked(req tobReq) {
	coord := n.view.Coordinator()
	if coord == n.id {
		n.assignLocked(req)
		return
	}
	if coord >= 0 {
		_ = n.ep.Send(coord, req)
	}
}

// majorityLocked reports whether the current view is a primary component —
// a majority of the static universe. Only the primary component may assign
// sequence numbers (virtual synchrony's primary-partition rule): an isolated
// minority that elects itself coordinator and kept sequencing would collide
// with the majority's sequencer and fork the total order, which downstream
// shows up as replicated certifiers reaching different decisions (lost
// updates). Requests arriving in a minority view are dropped here and
// re-sent by their origin's retransmit timer once the partition heals.
func (n *Node) majorityLocked() bool {
	return len(n.view.Members) > len(n.members)/2
}

// assignLocked sequences a request (sequencer role), enforcing per-origin
// FIFO: a request whose predecessors have not arrived yet is held until the
// gap closes (lost requests are retransmitted by their origin).
func (n *Node) assignLocked(req tobReq) {
	if !n.majorityLocked() {
		return
	}
	next := n.originNextLocked(req.Origin)
	switch {
	case req.Counter < next:
		return // duplicate of an already sequenced message
	case req.Counter > next:
		hold := n.originHold[req.Origin]
		if hold == nil {
			hold = make(map[uint64]tobReq)
			n.originHold[req.Origin] = hold
		}
		hold[req.Counter] = req
		return
	}
	n.sequenceNowLocked(req)
	// Drain any held successors that are now dense.
	for {
		hold := n.originHold[req.Origin]
		if hold == nil {
			return
		}
		nxt, ok := hold[n.originNextLocked(req.Origin)]
		if !ok {
			return
		}
		delete(hold, nxt.Counter)
		n.sequenceNowLocked(nxt)
	}
}

// originNextLocked returns the next expected counter for an origin (1-based).
func (n *Node) originNextLocked(origin simnet.NodeID) uint64 {
	if v, ok := n.originNext[origin]; ok {
		return v
	}
	return 1
}

// sequenceNowLocked assigns the next global sequence number to the request
// and broadcasts the ordered message.
func (n *Node) sequenceNowLocked(req tobReq) {
	ord := tobOrd{Seq: n.seqNext, Origin: req.Origin, Counter: req.Counter, Payload: req.Payload}
	n.seqNext++
	n.acceptOrdLocked(ord)
	for _, m := range n.members {
		if m != n.id {
			_ = n.ep.Send(m, ord)
		}
	}
}

// acceptOrdLocked ingests an ordered message, delivering in-order prefixes.
func (n *Node) acceptOrdLocked(ord tobOrd) {
	if ord.Seq > n.maxSeen {
		n.maxSeen = ord.Seq
	}
	if ord.Counter >= n.originNextLocked(ord.Origin) {
		n.originNext[ord.Origin] = ord.Counter + 1
	}
	if ord.Seq >= n.seqNext {
		n.seqNext = ord.Seq + 1
	}
	if ord.Seq < n.nextDel {
		return // already delivered
	}
	n.history[ord.Seq] = ord
	n.buffer[ord.Seq] = ord
	for {
		next, ok := n.buffer[n.nextDel]
		if !ok {
			break
		}
		delete(n.buffer, n.nextDel)
		key := msgKey{origin: next.Origin, counter: next.Counter}
		n.delivered[key] = true
		delete(n.pending, key)
		n.nextDel++
		select {
		case n.deliverCh <- Delivery{Seq: next.Seq, Origin: next.Origin, Payload: next.Payload}:
		default:
			// The application is lagging: block outside the lock.
			n.mu.Unlock()
			n.deliverCh <- Delivery{Seq: next.Seq, Origin: next.Origin, Payload: next.Payload}
			n.mu.Lock()
		}
	}
}

func (n *Node) isCoordinator() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Coordinator() == n.id
}

// run is the event loop.
func (n *Node) run() {
	defer n.wg.Done()
	hb := time.NewTicker(n.cfg.HeartbeatInterval)
	defer hb.Stop()
	retx := time.NewTicker(n.cfg.RetransmitTimeout)
	defer retx.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-hb.C:
			n.heartbeatTick()
		case <-retx.C:
			n.retransmitTick()
		case m, ok := <-n.ep.Incoming():
			if !ok {
				return
			}
			n.handle(m)
		}
	}
}

func (n *Node) heartbeatTick() {
	n.mu.Lock()
	members := append([]simnet.NodeID(nil), n.members...)
	maxSeq := n.maxSeen
	n.mu.Unlock()
	for _, m := range members {
		if m != n.id {
			_ = n.ep.Send(m, hbMsg{MaxSeq: maxSeq})
		}
	}
	n.updateSuspicions()
	if n.cfg.Ordering == TokenRing {
		n.tokenMaintenance()
	}
}

// updateSuspicions recomputes the failure detector state and installs a new
// view when it changed.
func (n *Node) updateSuspicions() {
	n.mu.Lock()
	now := time.Now()
	changed := false
	for _, m := range n.members {
		if m == n.id {
			continue
		}
		silent := now.Sub(n.lastSeen[m]) > n.cfg.SuspectTimeout
		if silent != n.suspected[m] {
			n.suspected[m] = silent
			changed = true
		}
	}
	if !changed {
		n.mu.Unlock()
		return
	}
	var live []simnet.NodeID
	for _, m := range n.members {
		if m == n.id || !n.suspected[m] {
			live = append(live, m)
		}
	}
	oldCoord := n.view.Coordinator()
	n.view = View{Epoch: n.view.Epoch + 1, Members: live}
	newCoord := n.view.Coordinator()
	subs := append([]func(View){}, n.viewSubs...)
	v := n.view
	becameCoord := newCoord == n.id && oldCoord != n.id
	n.mu.Unlock()

	for _, fn := range subs {
		fn(v)
	}
	if becameCoord {
		n.takeOverSequencing()
	}
}

// takeOverSequencing runs when this node becomes coordinator: it gathers
// ordering state from the surviving members so sequence numbering continues
// without gaps or double assignment (the recovery procedure research
// "rarely describes", §3.2).
func (n *Node) takeOverSequencing() {
	n.mu.Lock()
	members := append([]simnet.NodeID(nil), n.view.Members...)
	n.mu.Unlock()
	for _, m := range members {
		if m != n.id {
			_ = n.ep.Send(m, syncReq{From: n.id})
		}
	}
	if n.cfg.Ordering == TokenRing {
		// Regenerate the token.
		n.mu.Lock()
		n.haveToken = true
		n.tokenSeen = time.Now()
		if n.seqNext <= n.maxSeen {
			n.seqNext = n.maxSeen + 1
		}
		n.drainTokenQueueLocked()
		n.mu.Unlock()
	}
}

// retransmitTick resends pending requests whose ordering we have not yet
// observed (sequencer may have died before broadcasting).
func (n *Node) retransmitTick() {
	n.mu.Lock()
	now := time.Now()
	var resend []tobReq
	for key, p := range n.pending {
		if now.Sub(p.sent) >= n.cfg.RetransmitTimeout {
			resend = append(resend, p.req)
			n.pending[key] = pendingMsg{req: p.req, sent: now}
		}
	}
	ordering := n.cfg.Ordering
	n.mu.Unlock()
	for _, req := range resend {
		n.mu.Lock()
		if ordering == Sequencer {
			n.sendReqLocked(req)
		} else if n.haveToken {
			n.drainTokenQueueLocked()
		}
		n.mu.Unlock()
	}
	// Nack gaps: heartbeats gossip the highest assigned sequence number,
	// so a node that is missing a prefix (even a trailing one) asks the
	// coordinator to resend.
	n.mu.Lock()
	var firstGap uint64
	if n.nextDel <= n.maxSeen {
		if _, ok := n.buffer[n.nextDel]; !ok {
			firstGap = n.nextDel
		}
	}
	coord := n.view.Coordinator()
	n.mu.Unlock()
	if firstGap > 0 && coord != n.id && coord >= 0 {
		_ = n.ep.Send(coord, nackMsg{Seq: firstGap})
	}
}

// tokenMaintenance keeps the token circulating: a holder drains its queue
// and passes the token on; the coordinator regenerates a lost token.
func (n *Node) tokenMaintenance() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.haveToken {
		n.drainTokenQueueLocked()
		n.passTokenLocked()
		return
	}
	if n.view.Coordinator() != n.id {
		return
	}
	if time.Since(n.tokenSeen) > 4*n.cfg.SuspectTimeout {
		n.haveToken = true
		n.tokenSeen = time.Now()
		if n.seqNext <= n.maxSeen {
			n.seqNext = n.maxSeen + 1
		}
		n.drainTokenQueueLocked()
		n.passTokenLocked()
	}
}

// drainTokenQueueLocked assigns sequence numbers to queued local messages
// while holding the token.
func (n *Node) drainTokenQueueLocked() {
	if !n.haveToken || !n.majorityLocked() {
		return
	}
	for _, req := range n.queue {
		key := msgKey{origin: req.Origin, counter: req.Counter}
		if n.delivered[key] {
			continue
		}
		ord := tobOrd{Seq: n.seqNext, Origin: req.Origin, Counter: req.Counter, Payload: req.Payload}
		n.seqNext++
		n.acceptOrdLocked(ord)
		for _, m := range n.members {
			if m != n.id {
				_ = n.ep.Send(m, ord)
			}
		}
	}
	n.queue = nil
}

// passTokenLocked forwards the token to the next live member.
func (n *Node) passTokenLocked() {
	if !n.haveToken {
		return
	}
	live := n.view.Members
	if len(live) <= 1 {
		return // keep the token
	}
	idx := 0
	for i, m := range live {
		if m == n.id {
			idx = i
			break
		}
	}
	next := live[(idx+1)%len(live)]
	if next == n.id {
		return
	}
	n.haveToken = false
	_ = n.ep.Send(next, tokenMsg{NextSeq: n.seqNext, Epoch: n.view.Epoch})
}

// handle processes one network message.
func (n *Node) handle(m simnet.Message) {
	switch p := m.Payload.(type) {
	case hbMsg:
		n.mu.Lock()
		n.lastSeen[m.From] = time.Now()
		if p.MaxSeq > n.maxSeen {
			n.maxSeen = p.MaxSeq
		}
		if n.suspected[m.From] {
			// Peer recovered; next suspicion pass installs a new view.
			n.suspected[m.From] = false
			var live []simnet.NodeID
			for _, mm := range n.members {
				if mm == n.id || !n.suspected[mm] {
					live = append(live, mm)
				}
			}
			n.view = View{Epoch: n.view.Epoch + 1, Members: live}
			subs := append([]func(View){}, n.viewSubs...)
			v := n.view
			n.mu.Unlock()
			for _, fn := range subs {
				fn(v)
			}
			return
		}
		n.mu.Unlock()
	case tobReq:
		n.mu.Lock()
		if n.view.Coordinator() == n.id && n.cfg.Ordering == Sequencer {
			n.assignLocked(p)
		} else if n.cfg.Ordering == TokenRing {
			// Requests never route in token mode; ignore.
		} else {
			// Not coordinator: forward.
			n.sendReqLocked(p)
		}
		n.mu.Unlock()
	case tobOrd:
		n.mu.Lock()
		n.acceptOrdLocked(p)
		n.mu.Unlock()
	case nackMsg:
		n.mu.Lock()
		var resend []tobOrd
		for seq := p.Seq; seq < n.seqNext; seq++ {
			if ord, ok := n.history[seq]; ok {
				resend = append(resend, ord)
			}
		}
		n.mu.Unlock()
		for _, ord := range resend {
			_ = n.ep.Send(m.From, ord)
		}
	case syncReq:
		n.mu.Lock()
		resp := syncResp{MaxSeq: n.maxSeen}
		for _, ord := range n.history {
			resp.History = append(resp.History, ord)
		}
		n.mu.Unlock()
		_ = n.ep.Send(m.From, resp)
	case syncResp:
		n.mu.Lock()
		for _, ord := range p.History {
			if _, ok := n.history[ord.Seq]; !ok {
				n.acceptOrdLocked(ord)
			}
		}
		if n.seqNext <= p.MaxSeq {
			n.seqNext = p.MaxSeq + 1
		}
		n.mu.Unlock()
	case tokenMsg:
		n.mu.Lock()
		n.haveToken = true
		n.tokenSeen = time.Now()
		if p.NextSeq > n.seqNext {
			n.seqNext = p.NextSeq
		}
		n.drainTokenQueueLocked()
		if n.cfg.TokenHold > 0 {
			hold := n.cfg.TokenHold
			n.mu.Unlock()
			time.Sleep(hold)
			n.mu.Lock()
			n.drainTokenQueueLocked()
		}
		n.passTokenLocked()
		n.mu.Unlock()
	}
}

// String describes the node for debugging.
func (n *Node) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return fmt.Sprintf("gcs.Node(%d, view=%d, members=%v)", n.id, n.view.Epoch, n.view.Members)
}
