//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in. Timing
// threshold tests use it to relax or skip latency budgets: the detector
// multiplies the cost of synchronized paths unevenly, so a ratio measured
// under -race does not reflect production overhead.
const RaceEnabled = true
