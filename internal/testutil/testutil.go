// Package testutil collects the cluster bootstrap and teardown helpers the
// integration suites share: topology builders with t.Cleanup teardown, a
// wire front-end on an ephemeral port, database provisioning, and the
// wait-for-catchup/convergence polls. Everything is written against the
// public replication facade so the helpers work for any topology.
package testutil

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gcs"
	"repro/internal/simnet"
	"repro/internal/wire"
	"repro/replication"
)

// Serve fronts a cluster with a wire server on an ephemeral port and
// returns the address to dial. The server is closed on test cleanup.
func Serve(t testing.TB, c replication.Cluster) string {
	t.Helper()
	srv, err := wire.NewServer("127.0.0.1:0", &wire.ClusterBackend{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv.Addr()
}

// CreateDB provisions a database on the cluster before the application
// connects (DSNs name the database, so every pooled connection lands in it).
func CreateDB(t testing.TB, c replication.Cluster, name string) {
	t.Helper()
	conn, err := c.NewConn("setup")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE DATABASE " + name); err != nil {
		t.Fatal(err)
	}
}

// ExecAll opens one connection and runs the statements in order — the
// shared shape of every suite's schema bootstrap.
func ExecAll(t testing.TB, c replication.Cluster, stmts ...string) {
	t.Helper()
	conn, err := c.NewConn("setup")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, sql := range stmts {
		if _, err := conn.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
}

// WaitForLag blocks until every slave of a master-slave cluster has applied
// the master's head, or fails the test after 5 s.
func WaitForLag(t testing.TB, ms *replication.MasterSlave) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		max := uint64(0)
		for _, l := range ms.SlaveLag() {
			if l > max {
				max = l
			}
		}
		if max == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("slaves never caught up: %v", ms.SlaveLag())
}

// WaitConverged polls until every replica reports identical table checksums
// for db, or fails the test after 10 s.
func WaitConverged(t testing.TB, replicas []*replication.Replica, db string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rep, err := replication.CheckDivergence(replicas, db)
		if err == nil && rep.OK() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep, _ := replication.CheckDivergence(replicas, db)
	t.Fatalf("replicas did not converge: %v", rep)
}

// NewReplicas builds n replicas named prefix1..prefixN.
func NewReplicas(prefix string, n int) []*replication.Replica {
	reps := make([]*replication.Replica, n)
	for i := range reps {
		reps[i] = replication.NewReplica(replication.ReplicaConfig{
			Name: fmt.Sprintf("%s%d", prefix, i+1),
		})
	}
	return reps
}

// BuildMasterSlave wires a master plus nSlaves slaves under cfg and closes
// the cluster on test cleanup.
func BuildMasterSlave(t testing.TB, nSlaves int, cfg replication.MasterSlaveConfig) *replication.MasterSlave {
	t.Helper()
	master := replication.NewReplica(replication.ReplicaConfig{Name: "m"})
	ms := replication.NewMasterSlave(master, NewReplicas("s", nSlaves), cfg)
	t.Cleanup(ms.Close)
	return ms
}

// BuildMultiMaster wires n replicas over a single in-process sequencer and
// closes the cluster on test cleanup.
func BuildMultiMaster(t testing.TB, n int, cfg replication.MultiMasterConfig) *replication.MultiMaster {
	t.Helper()
	mm, err := replication.NewMultiMaster(NewReplicas("n", n),
		[]replication.Orderer{replication.NewLocalOrderer()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm.Close)
	return mm
}

// BuildGCSMultiMaster wires n replicas over real group-communication
// orderers on a simulated network. The network, orderers and cluster are
// all torn down on test cleanup (cluster first, network last). The
// orderers are returned so partition tests can inspect each node's view.
func BuildGCSMultiMaster(t testing.TB, n int, gcfg gcs.Config, seed int64,
	cfg replication.MultiMasterConfig) (*simnet.Network, []*replication.GCSOrderer, *replication.MultiMaster) {
	t.Helper()
	net, orderers := replication.BuildGCSCluster(n, gcfg, seed)
	t.Cleanup(net.Close)
	t.Cleanup(func() {
		for _, o := range orderers {
			o.Close()
		}
	})
	ords := make([]replication.Orderer, n)
	for i := range ords {
		ords[i] = orderers[i]
	}
	mm, err := replication.NewMultiMaster(NewReplicas("r", n), ords, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm.Close)
	return net, orderers, mm
}

// BuildPartitioned wires nParts master-slave sub-clusters (slavesPer slaves
// each) under the given partition rules. The sub-clusters are returned so
// chaos actions can target one partition's master; Close cascades from the
// partitioned cluster.
func BuildPartitioned(t testing.TB, nParts, slavesPer int, rules []*replication.PartitionRule,
	cfg replication.MasterSlaveConfig) (*replication.Partitioned, []*replication.MasterSlave) {
	t.Helper()
	parts := make([]*replication.MasterSlave, nParts)
	for i := range parts {
		m := replication.NewReplica(replication.ReplicaConfig{Name: fmt.Sprintf("p%d-m", i)})
		parts[i] = replication.NewMasterSlave(m, NewReplicas(fmt.Sprintf("p%d-s", i), slavesPer), cfg)
	}
	pc, err := replication.NewPartitioned(parts, rules)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)
	return pc, parts
}

// BuildWAN wires the sites (each a master-slave cluster built by the
// caller) and closes the WAN plus every site cluster on test cleanup.
func BuildWAN(t testing.TB, sites []*replication.SiteConfig, cfg replication.WANConfig) *replication.WAN {
	t.Helper()
	w, err := replication.NewWAN(sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}
