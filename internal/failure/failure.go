// Package failure injects the faults the paper says evaluations skip
// (§3.4, §5.1): crashes, crash-restarts, degraded hardware, and scheduled
// MTBF-driven failure processes ("one fatal failure per day per 200
// processors", §2.2).
package failure

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// Injector schedules faults against replicas.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	stopped bool
	stops   []chan struct{}
}

// NewInjector creates an injector with a deterministic seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Crash fails the replica after the delay.
func (in *Injector) Crash(r *core.Replica, after time.Duration) {
	in.schedule(after, r.Fail)
}

// CrashRestart fails the replica after `after`, restoring it `down` later.
func (in *Injector) CrashRestart(r *core.Replica, after, down time.Duration) {
	in.schedule(after, func() {
		r.Fail()
		in.schedule(down, r.Recover)
	})
}

// DegradeRAIDBattery halves the replica's speed after the delay — the
// "RAID controller ... suddenly becomes 2x slower when the battery fails,
// and the OS rarely finds out" anomaly of §4.1.3.
func (in *Injector) DegradeRAIDBattery(r *core.Replica, after time.Duration) {
	in.schedule(after, func() { r.SetSlowFactor(2) })
}

// Degrade applies an arbitrary slow factor after the delay.
func (in *Injector) Degrade(r *core.Replica, factor float64, after time.Duration) {
	in.schedule(after, func() { r.SetSlowFactor(factor) })
}

// Stall freezes the replica's client-facing service after the delay without
// failing it, restoring it `length` later — the gray failure overload
// protection has to survive: health checks pass (Healthy() stays true, the
// failover monitor sees nothing) while every routed statement hangs until
// its deadline. Replication appliers are unaffected, as a real wedged
// query-execution path leaves the apply path running.
func (in *Injector) Stall(r *core.Replica, after, length time.Duration) {
	in.schedule(after, func() {
		r.SetStalled(true)
		in.schedule(length, func() { r.SetStalled(false) })
	})
}

// Overload launches a flash crowd after the delay: `clients` goroutines
// hammering the cluster with fn (one call per iteration, its error
// discarded — the point is pressure, not correctness) until `length`
// elapses or the injector stops. It models the paper's ticket-broker
// scenario: demand arrives all at once, not gradually.
func (in *Injector) Overload(clients int, after, length time.Duration, fn func(client int)) {
	in.schedule(after, func() {
		stop := make(chan struct{})
		in.mu.Lock()
		if in.stopped {
			in.mu.Unlock()
			close(stop)
			return
		}
		in.stops = append(in.stops, stop)
		in.mu.Unlock()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				end := time.Now().Add(length)
				for time.Now().Before(end) {
					select {
					case <-stop:
						return
					default:
					}
					fn(c)
				}
			}(c)
		}
		wg.Wait()
	})
}

// MTBFProcess continuously crash-restarts random replicas with
// exponentially distributed inter-failure times (mean mtbf) and fixed
// repair time. Stop() ends the process.
func (in *Injector) MTBFProcess(replicas []*core.Replica, mtbf, repair time.Duration) {
	stop := make(chan struct{})
	in.mu.Lock()
	in.stops = append(in.stops, stop)
	in.mu.Unlock()
	go func() {
		for {
			in.mu.Lock()
			wait := time.Duration(in.rng.ExpFloat64() * float64(mtbf))
			victim := replicas[in.rng.Intn(len(replicas))]
			in.mu.Unlock()
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
			victim.Fail()
			select {
			case <-stop:
				victim.Recover()
				return
			case <-time.After(repair):
			}
			victim.Recover()
		}
	}()
}

// Stop cancels all scheduled and running fault processes.
func (in *Injector) Stop() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.stopped {
		return
	}
	in.stopped = true
	for _, s := range in.stops {
		close(s)
	}
}

func (in *Injector) schedule(after time.Duration, fn func()) {
	stop := make(chan struct{})
	in.mu.Lock()
	if in.stopped {
		in.mu.Unlock()
		return
	}
	in.stops = append(in.stops, stop)
	in.mu.Unlock()
	go func() {
		select {
		case <-stop:
		case <-time.After(after):
			fn()
		}
	}()
}
