package failure

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCrashAndRecover(t *testing.T) {
	r := core.NewReplica(core.ReplicaConfig{Name: "r"})
	in := NewInjector(1)
	defer in.Stop()
	in.Crash(r, 10*time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for r.Healthy() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Healthy() {
		t.Fatal("crash never fired")
	}
}

func TestCrashRestart(t *testing.T) {
	r := core.NewReplica(core.ReplicaConfig{Name: "r"})
	in := NewInjector(1)
	defer in.Stop()
	in.CrashRestart(r, 5*time.Millisecond, 20*time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for r.Healthy() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Healthy() {
		t.Fatal("crash never fired")
	}
	deadline = time.Now().Add(time.Second)
	for !r.Healthy() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !r.Healthy() {
		t.Fatal("restart never fired")
	}
}

func TestStopCancelsScheduled(t *testing.T) {
	r := core.NewReplica(core.ReplicaConfig{Name: "r"})
	in := NewInjector(1)
	in.Crash(r, 50*time.Millisecond)
	in.Stop()
	time.Sleep(80 * time.Millisecond)
	if !r.Healthy() {
		t.Fatal("cancelled crash still fired")
	}
}

func TestMTBFProcessFailsAndRepairs(t *testing.T) {
	r := core.NewReplica(core.ReplicaConfig{Name: "r"})
	in := NewInjector(7)
	defer in.Stop()
	in.MTBFProcess([]*core.Replica{r}, 5*time.Millisecond, 5*time.Millisecond)
	sawDown := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !r.Healthy() {
			sawDown = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawDown {
		t.Fatal("MTBF process never failed the replica")
	}
}

func TestStallIsGrayFailure(t *testing.T) {
	r := core.NewReplica(core.ReplicaConfig{Name: "r"})
	in := NewInjector(1)
	defer in.Stop()
	in.Stall(r, 5*time.Millisecond, 30*time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for !r.Stalled() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !r.Stalled() {
		t.Fatal("stall never fired")
	}
	// The defining property: the replica still looks healthy.
	if !r.Healthy() {
		t.Fatal("stall must not fail the replica")
	}
	deadline = time.Now().Add(time.Second)
	for r.Stalled() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Stalled() {
		t.Fatal("stall never cleared")
	}
}

func TestOverloadBurst(t *testing.T) {
	in := NewInjector(1)
	defer in.Stop()
	var hits atomic.Int64
	seen := make([]atomic.Bool, 8)
	in.Overload(8, 0, 50*time.Millisecond, func(c int) {
		hits.Add(1)
		seen[c].Store(true)
		time.Sleep(time.Millisecond)
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for i := range seen {
			if !seen[i].Load() {
				all = false
				break
			}
		}
		if all && hits.Load() >= 8 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("burst incomplete: %d hits", hits.Load())
}
