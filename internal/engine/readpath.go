package engine

import (
	"strings"

	"repro/internal/sqlparse"
)

// This file decides which statements may run on the engine's shared read
// path — holding mu as a reader so any number of sessions scan MVCC
// snapshots in parallel — and which must serialize with writers.
//
// The rules mirror what the statement can touch:
//
//   - Serializable sessions always use the exclusive path: table-level 2PL
//     registers shared table locks even for reads (§4.1.2).
//   - SELECT ... FOR UPDATE takes row locks, so it is a write.
//   - NEXTVAL consumes a sequence value. Sequences are non-transactional
//     shared state (§4.2.3), so any statement containing NEXTVAL — even a
//     bare SELECT — serializes with writers.
//   - Everything else a SELECT or SHOW can do (column reads, session vars,
//     parameters, NOW, RAND, subqueries obeying the same rules) only reads
//     engine-shared state or mutates session-private state, and RAND() has
//     its own lock.

// sharedRead reports whether st can run on the shared (parallel) read path
// for this session.
func (s *Session) sharedRead(st sqlparse.Statement) bool {
	if s.iso == Serializable {
		return false
	}
	switch st := st.(type) {
	case *sqlparse.Show:
		return true
	case *sqlparse.Select:
		return selectIsShared(st)
	}
	return false
}

// selectIsShared reports whether a SELECT statement (including any
// subqueries) is free of lock-taking and state-advancing constructs.
func selectIsShared(st *sqlparse.Select) bool {
	if st.ForUpdate {
		return false
	}
	for _, it := range st.Items {
		if !it.Star && !exprIsShared(it.Expr) {
			return false
		}
	}
	if !exprIsShared(st.Where) {
		return false
	}
	if st.Join != nil && !exprIsShared(st.Join.On) {
		return false
	}
	for _, g := range st.GroupBy {
		if !exprIsShared(g) {
			return false
		}
	}
	for _, o := range st.OrderBy {
		if !exprIsShared(o.Expr) {
			return false
		}
	}
	return true
}

// CacheableRead reports whether a statement's result may be served from the
// middleware query result cache. It is strictly narrower than the shared
// read path: on top of the shared-path rules (no FOR UPDATE, no NEXTVAL),
// the result must be a deterministic function of committed table state —
// no RAND/RANDOM, no NOW/CURRENT_TIMESTAMP, no session variables — so one
// session's result is every session's result until a write invalidates it.
// Bind parameters are allowed: their values are part of the cache key.
// Serializable sessions must bypass the cache at the router (their reads
// take 2PL table locks, which a cache hit would skip).
func CacheableRead(st sqlparse.Statement) bool {
	sel, ok := st.(*sqlparse.Select)
	if !ok || sel.NoTable {
		return false
	}
	return cacheableSelect(sel)
}

// cacheableSelect applies cacheableExpr to every expression of a SELECT.
func cacheableSelect(st *sqlparse.Select) bool {
	if st.ForUpdate {
		return false
	}
	for _, it := range st.Items {
		if !it.Star && !cacheableExpr(it.Expr) {
			return false
		}
	}
	if !cacheableExpr(st.Where) {
		return false
	}
	if st.Join != nil && !cacheableExpr(st.Join.On) {
		return false
	}
	for _, g := range st.GroupBy {
		if !cacheableExpr(g) {
			return false
		}
	}
	for _, o := range st.OrderBy {
		if !cacheableExpr(o.Expr) {
			return false
		}
	}
	return true
}

// nonCacheableFuncs are functions whose value is not a deterministic
// function of committed table state.
var nonCacheableFuncs = map[string]bool{
	"NEXTVAL":           true,
	"RAND":              true,
	"RANDOM":            true,
	"NOW":               true,
	"CURRENT_TIMESTAMP": true,
}

// cacheableExpr walks an expression tree rejecting session-dependent and
// non-deterministic constructs. Unknown node kinds are conservatively not
// cacheable.
func cacheableExpr(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *sqlparse.Literal, *sqlparse.ColumnRef, *sqlparse.Param:
		return true
	case *sqlparse.VarRef:
		return false // session variable: differs per session
	case *sqlparse.BinaryExpr:
		return cacheableExpr(e.Left) && cacheableExpr(e.Right)
	case *sqlparse.UnaryExpr:
		return cacheableExpr(e.Operand)
	case *sqlparse.IsNullExpr:
		return cacheableExpr(e.Operand)
	case *sqlparse.BetweenExpr:
		return cacheableExpr(e.Operand) && cacheableExpr(e.Lo) && cacheableExpr(e.Hi)
	case *sqlparse.InExpr:
		if !cacheableExpr(e.Left) {
			return false
		}
		if e.Sub != nil && !cacheableSelect(e.Sub) {
			return false
		}
		for _, item := range e.List {
			if !cacheableExpr(item) {
				return false
			}
		}
		return true
	case *sqlparse.FuncExpr:
		if nonCacheableFuncs[strings.ToUpper(e.Name)] {
			return false
		}
		for _, a := range e.Args {
			if !cacheableExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}

// exprIsShared walks an expression tree rejecting anything that advances
// engine-shared state. Unknown node kinds are conservatively exclusive.
func exprIsShared(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *sqlparse.Literal, *sqlparse.ColumnRef, *sqlparse.VarRef, *sqlparse.Param:
		return true
	case *sqlparse.BinaryExpr:
		return exprIsShared(e.Left) && exprIsShared(e.Right)
	case *sqlparse.UnaryExpr:
		return exprIsShared(e.Operand)
	case *sqlparse.IsNullExpr:
		return exprIsShared(e.Operand)
	case *sqlparse.BetweenExpr:
		return exprIsShared(e.Operand) && exprIsShared(e.Lo) && exprIsShared(e.Hi)
	case *sqlparse.InExpr:
		if !exprIsShared(e.Left) {
			return false
		}
		if e.Sub != nil && !selectIsShared(e.Sub) {
			return false
		}
		for _, item := range e.List {
			if !exprIsShared(item) {
				return false
			}
		}
		return true
	case *sqlparse.FuncExpr:
		if strings.ToUpper(e.Name) == "NEXTVAL" {
			return false
		}
		for _, a := range e.Args {
			if !exprIsShared(a) {
				return false
			}
		}
		return true
	}
	return false
}
