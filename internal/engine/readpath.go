package engine

import (
	"strings"

	"repro/internal/sqlparse"
)

// This file decides which statements may run on the engine's shared read
// path — holding mu as a reader so any number of sessions scan MVCC
// snapshots in parallel — and which must serialize with writers.
//
// The rules mirror what the statement can touch:
//
//   - Serializable sessions always use the exclusive path: table-level 2PL
//     registers shared table locks even for reads (§4.1.2).
//   - SELECT ... FOR UPDATE takes row locks, so it is a write.
//   - NEXTVAL consumes a sequence value. Sequences are non-transactional
//     shared state (§4.2.3), so any statement containing NEXTVAL — even a
//     bare SELECT — serializes with writers.
//   - Everything else a SELECT or SHOW can do (column reads, session vars,
//     parameters, NOW, RAND, subqueries obeying the same rules) only reads
//     engine-shared state or mutates session-private state, and RAND() has
//     its own lock.

// sharedRead reports whether st can run on the shared (parallel) read path
// for this session.
func (s *Session) sharedRead(st sqlparse.Statement) bool {
	if s.iso == Serializable {
		return false
	}
	switch st := st.(type) {
	case *sqlparse.Show:
		return true
	case *sqlparse.Select:
		return selectIsShared(st)
	}
	return false
}

// selectIsShared reports whether a SELECT statement (including any
// subqueries) is free of lock-taking and state-advancing constructs.
func selectIsShared(st *sqlparse.Select) bool {
	if st.ForUpdate {
		return false
	}
	for _, it := range st.Items {
		if !it.Star && !exprIsShared(it.Expr) {
			return false
		}
	}
	if !exprIsShared(st.Where) {
		return false
	}
	if st.Join != nil && !exprIsShared(st.Join.On) {
		return false
	}
	for _, g := range st.GroupBy {
		if !exprIsShared(g) {
			return false
		}
	}
	for _, o := range st.OrderBy {
		if !exprIsShared(o.Expr) {
			return false
		}
	}
	return true
}

// exprIsShared walks an expression tree rejecting anything that advances
// engine-shared state. Unknown node kinds are conservatively exclusive.
func exprIsShared(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *sqlparse.Literal, *sqlparse.ColumnRef, *sqlparse.VarRef, *sqlparse.Param:
		return true
	case *sqlparse.BinaryExpr:
		return exprIsShared(e.Left) && exprIsShared(e.Right)
	case *sqlparse.UnaryExpr:
		return exprIsShared(e.Operand)
	case *sqlparse.IsNullExpr:
		return exprIsShared(e.Operand)
	case *sqlparse.BetweenExpr:
		return exprIsShared(e.Operand) && exprIsShared(e.Lo) && exprIsShared(e.Hi)
	case *sqlparse.InExpr:
		if !exprIsShared(e.Left) {
			return false
		}
		if e.Sub != nil && !selectIsShared(e.Sub) {
			return false
		}
		for _, item := range e.List {
			if !exprIsShared(item) {
				return false
			}
		}
		return true
	case *sqlparse.FuncExpr:
		if strings.ToUpper(e.Name) == "NEXTVAL" {
			return false
		}
		for _, a := range e.Args {
			if !exprIsShared(a) {
				return false
			}
		}
		return true
	}
	return false
}
