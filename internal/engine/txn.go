package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sqltypes"
)

// Sentinel errors surfaced by the transaction machinery.
var (
	// ErrSerialization is returned when snapshot isolation's
	// first-committer-wins check aborts a transaction.
	ErrSerialization = errors.New("engine: could not serialize access due to concurrent update")
	// ErrLockTimeout is returned when a lock wait exceeds the configured
	// timeout — the timeout-based deadlock resolution of §4.3.2.
	ErrLockTimeout = errors.New("engine: lock wait timeout exceeded")
	// ErrTxnAborted is returned by engines with AbortTxnOnError profiles
	// for statements issued after an error inside a transaction (§4.1.2).
	ErrTxnAborted = errors.New("engine: current transaction is aborted, commands ignored until ROLLBACK")
	// ErrDuplicateKey is returned on primary key or unique violations.
	ErrDuplicateKey = errors.New("engine: duplicate key value violates unique constraint")
)

// WriteKind classifies a write-set entry.
type WriteKind uint8

// Write-set entry kinds.
const (
	WriteInsert WriteKind = iota
	WriteUpdate
	WriteDelete
)

func (k WriteKind) String() string {
	switch k {
	case WriteInsert:
		return "INSERT"
	case WriteUpdate:
		return "UPDATE"
	case WriteDelete:
		return "DELETE"
	}
	return "?"
}

// WriteOp is one row change in a transaction's write set. Rows are
// identified by primary key so the op can be applied on another replica
// (§4.3.2). HasPK is false for tables without a primary key; such ops can
// only be applied by row identity on the origin replica.
type WriteOp struct {
	Database string
	Table    string
	Kind     WriteKind
	PK       sqltypes.Value
	HasPK    bool
	Before   sqltypes.Row // nil for inserts
	After    sqltypes.Row // nil for deletes
}

// WriteSet is the ordered list of row changes of a transaction, the unit of
// transaction-based (certification) replication. It deliberately does NOT
// include sequence/auto-increment counter movements (§4.3.2).
type WriteSet struct {
	Ops []WriteOp
}

// Tables returns the distinct "db.table" names touched by the write set.
func (ws *WriteSet) Tables() []string {
	seen := make(map[string]bool)
	var out []string
	for _, op := range ws.Ops {
		key := op.Database + "." + op.Table
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}

// Keys returns the distinct (db, table, pk-hash) identities written, used by
// certifiers to detect conflicts.
func (ws *WriteSet) Keys() []string {
	seen := make(map[string]bool)
	var out []string
	for _, op := range ws.Ops {
		var key string
		if op.HasPK {
			key = fmt.Sprintf("%s.%s#%d", op.Database, op.Table, sqltypes.HashValue(op.PK))
		} else {
			key = op.Database + "." + op.Table + "#*" // whole-table conflict
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}

// overlayEntry is a transaction-private pending row state.
type overlayEntry struct {
	data        sqltypes.Row // nil when deleted
	inserted    bool         // created by this txn
	deleted     bool
	before      sqltypes.Row // committed image the txn first saw (for write set)
	updateOpped bool         // a WriteUpdate op was already queued
}

// tableKey identifies a table across database instances.
type tableKey struct{ db, table string }

// Txn is an in-flight transaction on one engine.
type Txn struct {
	id     uint64
	snapTS uint64
	iso    IsolationLevel

	overlay map[tableKey]map[int64]*overlayEntry
	// pkOv indexes overlay entries by HashValue(pk), mirroring
	// Table.pkIndex for the transaction's own pending rows so point
	// lookups (and the per-insert uniqueness check) never walk the whole
	// overlay — what keeps transactional bulk INSERT O(n). Entries are
	// over-approximate and re-verified against the live overlay entry on
	// every probe (pkindex.go).
	pkOv map[tableKey]map[uint64][]int64
	// insertOrder preserves write-set ordering.
	ops []pendingOp

	rowLocks   []heldLock
	tableLocks []heldTableLock

	stmts   []string // executed write statements (for statement-based binlog)
	aborted bool
	done    bool
	// commitSeq is the binlog position the commit landed at (set by
	// commitLocked; zero for read-only or rolled-back transactions).
	commitSeq uint64

	usedTempTables bool
}

type pendingOp struct {
	key   tableKey
	rowID int64
	kind  WriteKind
}

type heldLock struct {
	t     *Table
	rowID int64
}

type heldTableLock struct {
	t         *Table
	exclusive bool
}

// ID returns the transaction id.
func (tx *Txn) ID() uint64 { return tx.id }

// overlayStillHolds reports whether committed row id — the current holder
// of pk — survives this transaction's overlay untouched, making a
// duplicate-key conflict against it real. A row the transaction deleted or
// moved to another key is no conflict. Shared by commit-time insert
// validation and write-set apply so the two sides cannot drift.
func (tx *Txn) overlayStillHolds(key tableKey, id int64, pkCol int, pk sqltypes.Value) bool {
	ent := tx.overlay[key][id]
	return ent == nil || (!ent.deleted && ent.data != nil && sqltypes.Equal(ent.data[pkCol], pk))
}

// ov returns (creating if needed) the overlay map for a table.
func (tx *Txn) ov(key tableKey) map[int64]*overlayEntry {
	m, ok := tx.overlay[key]
	if !ok {
		m = make(map[int64]*overlayEntry)
		tx.overlay[key] = m
	}
	return m
}

// beginTxnLocked creates a transaction. Caller holds e.mu, shared or
// exclusive — read-only implicit transactions begin on the shared path, so
// the txn id counter is atomic.
func (e *Engine) beginTxnLocked(iso IsolationLevel) *Txn {
	return &Txn{
		id:      e.nextTxnID.Add(1),
		snapTS:  e.clock,
		iso:     iso,
		overlay: make(map[tableKey]map[int64]*overlayEntry),
	}
}

// refreshSnapshotLocked advances the snapshot for read-committed statements.
func (e *Engine) refreshSnapshotLocked(tx *Txn) {
	if tx.iso == ReadCommitted {
		tx.snapTS = e.clock
	}
}

// lockRow acquires a write lock on (t, rowID) for tx, waiting up to the
// engine's lock timeout. Caller holds e.mu; the wait releases it.
func (e *Engine) lockRow(tx *Txn, t *Table, rowID int64) error {
	deadline := time.Now().Add(e.cfg.LockTimeout)
	for {
		owner, locked := t.locks[rowID]
		if !locked || owner == tx.id {
			if !locked {
				t.locks[rowID] = tx.id
				tx.rowLocks = append(tx.rowLocks, heldLock{t: t, rowID: rowID})
			}
			return nil
		}
		if time.Now().After(deadline) {
			return ErrLockTimeout
		}
		// Wait for a lock release broadcast, with a periodic wake-up so
		// the deadline is honored. sync.Cond has no timed wait, so wake
		// ourselves with a timer.
		waitDone := make(chan struct{})
		go func() {
			select {
			case <-time.After(10 * time.Millisecond):
			case <-waitDone:
			}
			e.lockWait.Broadcast()
		}()
		e.lockWait.Wait()
		close(waitDone)
	}
}

// lockTable acquires a table-level lock (2PL for serializable sessions).
func (e *Engine) lockTable(tx *Txn, t *Table, exclusive bool) error {
	// Re-entrancy: upgrade shared->exclusive if needed.
	deadline := time.Now().Add(e.cfg.LockTimeout)
	for {
		if exclusive {
			if (t.tlockOwner == 0 || t.tlockOwner == tx.id) &&
				(len(t.tlockReaders) == 0 || (len(t.tlockReaders) == 1 && t.tlockReaders[tx.id])) {
				if t.tlockOwner != tx.id {
					t.tlockOwner = tx.id
					tx.tableLocks = append(tx.tableLocks, heldTableLock{t: t, exclusive: true})
				}
				return nil
			}
		} else {
			if t.tlockOwner == 0 || t.tlockOwner == tx.id {
				if !t.tlockReaders[tx.id] {
					t.tlockReaders[tx.id] = true
					tx.tableLocks = append(tx.tableLocks, heldTableLock{t: t, exclusive: false})
				}
				return nil
			}
		}
		if time.Now().After(deadline) {
			return ErrLockTimeout
		}
		waitDone := make(chan struct{})
		go func() {
			select {
			case <-time.After(10 * time.Millisecond):
			case <-waitDone:
			}
			e.lockWait.Broadcast()
		}()
		e.lockWait.Wait()
		close(waitDone)
	}
}

// releaseLocksLocked drops all locks held by tx. Caller holds e.mu
// exclusively whenever tx actually holds locks; lock-free transactions
// (read-only commits on the shared path) return without waking waiters.
func (e *Engine) releaseLocksLocked(tx *Txn) {
	if len(tx.rowLocks) == 0 && len(tx.tableLocks) == 0 {
		return
	}
	for _, hl := range tx.rowLocks {
		if hl.t.locks[hl.rowID] == tx.id {
			delete(hl.t.locks, hl.rowID)
		}
	}
	tx.rowLocks = nil
	for _, tl := range tx.tableLocks {
		if tl.exclusive && tl.t.tlockOwner == tx.id {
			tl.t.tlockOwner = 0
		}
		delete(tl.t.tlockReaders, tx.id)
	}
	tx.tableLocks = nil
	e.lockWait.Broadcast()
}

// commitLocked validates and applies tx. Caller holds e.mu. Returns the
// commit timestamp (0 for read-only transactions) and the captured write
// set.
func (e *Engine) commitLocked(tx *Txn, s *Session) (uint64, *WriteSet, error) {
	if tx.done {
		return 0, nil, fmt.Errorf("engine: transaction already finished")
	}
	defer func() {
		tx.done = true
		e.releaseLocksLocked(tx)
	}()
	if tx.aborted {
		e.rollbackBodyLocked(tx)
		return 0, nil, ErrTxnAborted
	}
	if len(tx.ops) == 0 {
		return 0, &WriteSet{}, nil // read-only
	}

	// First-committer-wins for snapshot isolation: a row written by this
	// txn must not have been committed by someone else after our snapshot.
	if tx.iso == Snapshot {
		for _, op := range tx.ops {
			if op.kind == WriteInsert {
				continue
			}
			t, err := e.resolveTableLocked(op.key)
			if err != nil {
				return 0, nil, err
			}
			if lw, ok := t.lastWriter[op.rowID]; ok && lw > tx.snapTS {
				e.rollbackBodyLocked(tx)
				return 0, nil, ErrSerialization
			}
		}
	}

	commitTS := e.clock + 1
	ws := &WriteSet{}

	// Validate PK uniqueness of inserts against the latest committed
	// state (covers concurrent committed inserts not visible at snapTS).
	for _, op := range tx.ops {
		if op.kind != WriteInsert {
			continue
		}
		t, err := e.resolveTableLocked(op.key)
		if err != nil {
			return 0, nil, err
		}
		ent := tx.overlay[op.key][op.rowID]
		if ent == nil || ent.deleted {
			continue
		}
		if pk, ok := t.pkValue(ent.data); ok {
			if id := t.findByPK(pk, e.clock); id >= 0 && id != op.rowID &&
				tx.overlayStillHolds(op.key, id, t.pkCol, pk) {
				e.rollbackBodyLocked(tx)
				return 0, nil, fmt.Errorf("%w: %s.%s pk=%v", ErrDuplicateKey, op.key.db, op.key.table, pk)
			}
		}
	}

	// Apply, in op order, building the write set.
	for _, op := range tx.ops {
		t, err := e.resolveTableLocked(op.key)
		if err != nil {
			return 0, nil, err
		}
		ent := tx.overlay[op.key][op.rowID]
		if ent == nil {
			continue
		}
		wop := WriteOp{Database: op.key.db, Table: op.key.table, Kind: op.kind}
		switch op.kind {
		case WriteInsert:
			if ent.deleted { // inserted then deleted inside the txn
				continue
			}
			chain := t.rows[op.rowID]
			if chain == nil {
				chain = &rowChain{}
				t.rows[op.rowID] = chain
				t.rowOrder = append(t.rowOrder, op.rowID)
			}
			chain.versions = append(chain.versions, rowVersion{createdTS: commitTS, data: ent.data.Clone()})
			t.indexPK(ent.data, op.rowID)
			wop.After = ent.data.Clone()
		case WriteUpdate:
			if ent.deleted {
				continue // superseded by a later delete op
			}
			chain := t.rows[op.rowID]
			if chain == nil {
				continue
			}
			// Terminate the currently live version and append the new one.
			if v := chain.visible(e.clock); v != nil {
				v.deletedTS = commitTS
			}
			chain.versions = append(chain.versions, rowVersion{createdTS: commitTS, data: ent.data.Clone()})
			// The update may have moved the row to a new primary key; index
			// it under the new value too (the old entry stays and is ruled
			// out by the per-lookup Equal re-check).
			t.indexPK(ent.data, op.rowID)
			wop.Before = ent.before.Clone()
			wop.After = ent.data.Clone()
		case WriteDelete:
			chain := t.rows[op.rowID]
			if chain == nil {
				continue
			}
			if v := chain.visible(e.clock); v != nil {
				v.deletedTS = commitTS
			}
			wop.Before = ent.before.Clone()
		}
		t.lastWriter[op.rowID] = commitTS
		// Identify the row by PK when available.
		var idRow sqltypes.Row
		if wop.After != nil {
			idRow = wop.After
		} else {
			idRow = wop.Before
		}
		if t.pkCol >= 0 && idRow != nil {
			wop.PK = idRow[t.pkCol]
			wop.HasPK = true
		}
		if !t.Temp { // temp tables never replicate (§4.1.4)
			ws.Ops = append(ws.Ops, wop)
		}
	}

	e.clock = commitTS
	// Record in the binlog for replication subscribers.
	user, db := "", ""
	if s != nil {
		user, db = s.user, s.currentDB
	}
	tx.commitSeq = e.binlog.append(Event{
		CommitTS: commitTS,
		TxnID:    tx.id,
		Stmts:    append([]string(nil), tx.stmts...),
		WriteSet: ws,
		User:     user,
		Database: db,
	})
	return commitTS, ws, nil
}

// rollbackBodyLocked discards pending state (locks released by caller).
func (e *Engine) rollbackBodyLocked(tx *Txn) {
	tx.overlay = make(map[tableKey]map[int64]*overlayEntry)
	tx.pkOv = nil
	tx.ops = nil
	tx.stmts = nil
}

// rollbackLocked aborts tx. Caller holds e.mu.
func (e *Engine) rollbackLocked(tx *Txn) {
	if tx.done {
		return
	}
	tx.done = true
	e.rollbackBodyLocked(tx)
	e.releaseLocksLocked(tx)
}

// resolveTableLocked finds a permanent table by key. Temp tables are
// session-scoped and resolved by the session, not here.
func (e *Engine) resolveTableLocked(key tableKey) (*Table, error) {
	d, err := e.database(key.db)
	if err != nil {
		return nil, err
	}
	t, ok := d.tables[key.table]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q.%q", key.db, key.table)
	}
	return t, nil
}

// PendingWriteSet captures the open transaction's write set without
// committing — the hook certification-based replication uses to broadcast
// row changes before the commit decision is known (§4.3.2). The returned
// snapshot timestamp is the transaction's MVCC snapshot.
func (s *Session) PendingWriteSet() (*WriteSet, uint64, error) {
	s.eng.mu.RLock()
	defer s.eng.mu.RUnlock()
	tx := s.txn
	if tx == nil {
		return nil, 0, fmt.Errorf("engine: no transaction in progress")
	}
	if tx.aborted {
		return nil, 0, ErrTxnAborted
	}
	ws := &WriteSet{}
	for _, op := range tx.ops {
		t, err := s.eng.resolveTableLocked(op.key)
		if err != nil {
			return nil, 0, err
		}
		ent := tx.overlay[op.key][op.rowID]
		if ent == nil {
			continue
		}
		wop := WriteOp{Database: op.key.db, Table: op.key.table, Kind: op.kind}
		switch op.kind {
		case WriteInsert:
			if ent.deleted {
				continue
			}
			wop.After = ent.data.Clone()
		case WriteUpdate:
			if ent.deleted {
				continue
			}
			wop.Before = ent.before.Clone()
			wop.After = ent.data.Clone()
		case WriteDelete:
			wop.Before = ent.before.Clone()
		}
		var idRow sqltypes.Row
		if wop.After != nil {
			idRow = wop.After
		} else {
			idRow = wop.Before
		}
		if t.pkCol >= 0 && idRow != nil {
			wop.PK = idRow[t.pkCol]
			wop.HasPK = true
		}
		if !t.Temp {
			ws.Ops = append(ws.Ops, wop)
		}
	}
	return ws, tx.snapTS, nil
}

// Rollback aborts the session's open transaction, if any. It is the
// programmatic form of executing ROLLBACK and never fails.
func (s *Session) Rollback() {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if s.txn != nil {
		s.eng.rollbackLocked(s.txn)
		s.txn = nil
	}
}
