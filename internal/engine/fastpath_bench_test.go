package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// These benchmarks and threshold tests measure the PR-2 tentpole: the
// statement fast path. Point lookups on a primary key resolve through the
// per-table pk index instead of a full MVCC scan, and prepared/cached
// execution skips the parser. The threshold tests enforce the acceptance
// ratios the same way TestParallelReadThroughputScales guards PR-1: by
// timing the two paths in-process, so the bounds hold under -race and on
// slow hosts.

// fastPathRows is the table size the point-lookup acceptance criterion is
// stated against.
const fastPathRows = 10000

// newFastPathEngine seeds a 10k-row keyed table. Seeding itself leans on
// the fast path twice: a prepared INSERT (no re-parse per row) and the pk
// index behind the uniqueness check (without it, bulk insert is O(n²)).
func newFastPathEngine(tb testing.TB, rows int) (*Engine, *Session) {
	tb.Helper()
	eng := New(Config{})
	s := eng.NewSession("bench")
	script := "CREATE DATABASE shop; USE shop;" +
		"CREATE TABLE items (id INT PRIMARY KEY, name VARCHAR, qty INT, price FLOAT);"
	if err := s.ExecScript(script); err != nil {
		tb.Fatal(err)
	}
	ins, err := s.Prepare("INSERT INTO items (id, name, qty, price) VALUES (?, ?, ?, ?)")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("item-%d", i)),
			sqltypes.NewInt(int64(i%97)),
			sqltypes.NewFloat(float64(i%13)+0.5),
		); err != nil {
			tb.Fatal(err)
		}
	}
	return eng, s
}

// pointQuery is index-eligible: WHERE is exactly `pk = ?`.
const pointQuery = "SELECT id, name, qty, price FROM items WHERE id = ?"

// scanQuery computes the same rows but is deliberately index-ineligible
// (the key sits inside an arithmetic expression), so it takes the seed's
// full-scan path. It is the in-tree stand-in for the pre-PR-2 executor.
const scanQuery = "SELECT id, name, qty, price FROM items WHERE id + 0 = ?"

// BenchmarkPointLookup measures single-session point-lookup throughput on a
// 10k-row table through the full fast path (prepared statement + pk index).
func BenchmarkPointLookup(b *testing.B) {
	_, s := newFastPathEngine(b, fastPathRows)
	defer s.Close()
	st, err := s.Prepare(pointQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec(sqltypes.NewInt(int64(i % fastPathRows)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("want 1 row, got %d", len(res.Rows))
		}
	}
}

// BenchmarkPointLookupFullScan is the same query forced down the scan path
// — the seed behaviour the ≥5× acceptance ratio is measured against.
func BenchmarkPointLookupFullScan(b *testing.B) {
	_, s := newFastPathEngine(b, fastPathRows)
	defer s.Close()
	st, err := s.Prepare(scanQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec(sqltypes.NewInt(int64(i % fastPathRows)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("want 1 row, got %d", len(res.Rows))
		}
	}
}

// BenchmarkPreparedVsUnprepared compares the three ways a session can run
// the same parameterized statement: parse-per-call (the seed behaviour),
// Exec through the statement cache, and a prepared handle.
func BenchmarkPreparedVsUnprepared(b *testing.B) {
	run := func(b *testing.B, exec func(i int) (*Result, error)) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := exec(i)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("want 1 row, got %d", len(res.Rows))
			}
		}
	}
	b.Run("parse-per-call", func(b *testing.B) {
		_, s := newFastPathEngine(b, fastPathRows)
		defer s.Close()
		b.ResetTimer()
		run(b, func(i int) (*Result, error) {
			st, err := sqlparse.Parse(pointQuery) // bypasses the cache on purpose
			if err != nil {
				return nil, err
			}
			return s.ExecStmtArgs(st, sqltypes.NewInt(int64(i%fastPathRows)))
		})
	})
	b.Run("cached", func(b *testing.B) {
		_, s := newFastPathEngine(b, fastPathRows)
		defer s.Close()
		b.ResetTimer()
		run(b, func(i int) (*Result, error) {
			return s.ExecArgs(pointQuery, sqltypes.NewInt(int64(i%fastPathRows)))
		})
	})
	b.Run("prepared", func(b *testing.B) {
		_, s := newFastPathEngine(b, fastPathRows)
		defer s.Close()
		st, err := s.Prepare(pointQuery)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, func(i int) (*Result, error) {
			return st.Exec(sqltypes.NewInt(int64(i % fastPathRows)))
		})
	})
}

// timeOps runs f n times and returns the elapsed wall time.
func timeOps(tb testing.TB, n int, f func(i int) error) time.Duration {
	tb.Helper()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f(i); err != nil {
			tb.Fatal(err)
		}
	}
	return time.Since(start)
}

// TestPointLookupFastPathThreshold enforces the PR-2 acceptance criterion:
// on a 10k-row table, single-session point lookups must be at least 5× the
// throughput of the full-scan path. The real ratio is orders of magnitude
// (O(1) vs O(n)), so 5× leaves plenty of margin for -race and CI noise.
func TestPointLookupFastPathThreshold(t *testing.T) {
	_, s := newFastPathEngine(t, fastPathRows)
	defer s.Close()
	point, err := s.Prepare(pointQuery)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := s.Prepare(scanQuery)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 100
	exec := func(st *Stmt) func(i int) error {
		return func(i int) error {
			res, err := st.Exec(sqltypes.NewInt(int64((i * 97) % fastPathRows)))
			if err != nil {
				return err
			}
			if len(res.Rows) != 1 {
				return fmt.Errorf("want 1 row, got %d", len(res.Rows))
			}
			return nil
		}
	}
	// Warm both paths, then measure.
	timeOps(t, 5, exec(point))
	timeOps(t, 5, exec(scan))
	fast := timeOps(t, ops, exec(point))
	slow := timeOps(t, ops, exec(scan))
	if fast*5 > slow {
		t.Fatalf("point lookup (%v for %d ops) not ≥5× faster than full scan (%v)", fast, ops, slow)
	}
	t.Logf("point %v, scan %v for %d ops on %d rows (%.0fx)", fast, slow, ops, fastPathRows,
		float64(slow)/float64(fast))
}

// TestBulkTransactionalInsertLinear guards the overlay pk index: inserting
// n rows inside ONE transaction must scale linearly, not quadratically —
// each insert's uniqueness check probes the per-transaction pk index
// instead of walking every previously inserted overlay entry. Quadratic
// behaviour makes the 4× workload ~16× slower; linear makes it ~4×. The
// 10× bound sits between with margin for noise.
func TestBulkTransactionalInsertLinear(t *testing.T) {
	load := func(n int) time.Duration {
		eng := New(Config{})
		s := eng.NewSession("bulk")
		defer s.Close()
		if err := s.ExecScript("CREATE DATABASE d; USE d;" +
			"CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
			t.Fatal(err)
		}
		ins, err := s.Prepare("INSERT INTO t (id, v) VALUES (?, ?)")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := ins.Exec(sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		d := time.Since(start)
		if _, err := s.Exec("COMMIT"); err != nil {
			t.Fatal(err)
		}
		return d
	}
	load(500) // warm-up
	small := load(2000)
	big := load(8000)
	if big > small*10 {
		t.Fatalf("transactional bulk insert not linear: 2k rows %v, 8k rows %v (>10×)", small, big)
	}
	t.Logf("2k rows %v, 8k rows %v (%.1fx for 4x the rows)", small, big, float64(big)/float64(small))
}

// TestPreparedFasterThanParsePerCall guards the parse-skipping half of the
// fast path: executing a prepared statement must beat parsing the same text
// on every call. The statement is long enough for parse time to dominate
// and the table small enough that execution cost is negligible, so the
// ratio reflects the parser, not the scan.
func TestPreparedFasterThanParsePerCall(t *testing.T) {
	_, s := newFastPathEngine(t, 4)
	defer s.Close()
	const sql = "SELECT id, name, qty, price FROM items " +
		"WHERE id >= 0 AND name LIKE 'item-%' AND qty BETWEEN 0 AND 100 AND price >= 0.0 " +
		"ORDER BY id DESC LIMIT 2"
	st, err := s.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	const ops = 5000
	prepared := func(i int) error {
		_, err := st.Exec()
		return err
	}
	reparse := func(i int) error {
		ps, err := sqlparse.Parse(sql) // fresh parse each call, like the seed
		if err != nil {
			return err
		}
		_, err = s.ExecStmt(ps)
		return err
	}
	// Best-of-three to shrug off scheduler noise.
	best := func(f func(i int) error) time.Duration {
		timeOps(t, ops/10, f) // warm-up
		d := timeOps(t, ops, f)
		for r := 0; r < 2; r++ {
			if d2 := timeOps(t, ops, f); d2 < d {
				d = d2
			}
		}
		return d
	}
	fast := best(prepared)
	slow := best(reparse)
	if fast*6 > slow*5 { // require ≥1.2× headroom
		t.Fatalf("prepared (%v for %d ops) not ≥1.2× faster than parse-per-call (%v)", fast, ops, slow)
	}
	t.Logf("prepared %v, parse-per-call %v for %d ops (%.1fx)", fast, slow, ops,
		float64(slow)/float64(fast))
}
