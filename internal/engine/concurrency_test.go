package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sqlparse"
)

// Concurrency tests for the PR-1 shared read path: N parallel read-only
// sessions plus one writer per isolation level, expected to run clean
// under `go test -race`.

// newConcurrencyEngine seeds an engine for the stress tests.
func newConcurrencyEngine(t testing.TB, cfg Config, rows int) *Engine {
	t.Helper()
	eng := New(cfg)
	s := eng.NewSession("setup")
	defer s.Close()
	script := "CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT);" +
		"CREATE SEQUENCE seq START 1;"
	if err := s.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO t (id, grp, val) VALUES (%d, %d, %d)", i, i%7, i)); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// tolerableErr reports whether a stress-test error is an expected artifact
// of concurrency control rather than a bug: snapshot first-committer-wins
// aborts and lock-wait timeouts.
func tolerableErr(err error) bool {
	return errors.Is(err, ErrSerialization) || errors.Is(err, ErrLockTimeout) ||
		errors.Is(err, ErrTxnAborted)
}

// TestParallelReadStress runs 6 read-only sessions against 1 writer at
// every isolation level. Readers must never observe an error; the writer
// may only fail with concurrency-control verdicts.
func TestParallelReadStress(t *testing.T) {
	for _, iso := range []IsolationLevel{ReadCommitted, Snapshot, Serializable} {
		iso := iso
		t.Run(iso.String(), func(t *testing.T) {
			t.Parallel()
			eng := newConcurrencyEngine(t, Config{}, 64)
			const readers = 6
			const iters = 150
			var wg sync.WaitGroup
			errCh := make(chan error, readers+1)

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := eng.NewSession("reader")
					defer s.Close()
					if err := s.ExecScript("USE d; SET ISOLATION LEVEL " + iso.String()); err != nil {
						errCh <- err
						return
					}
					for i := 0; i < iters; i++ {
						res, err := s.Exec("SELECT COUNT(*), SUM(val) FROM t WHERE grp < 5")
						if err != nil {
							errCh <- fmt.Errorf("reader: %w", err)
							return
						}
						if len(res.Rows) != 1 {
							errCh <- fmt.Errorf("reader: got %d rows", len(res.Rows))
							return
						}
					}
				}()
			}

			wg.Add(1)
			go func() {
				defer wg.Done()
				w := eng.NewSession("writer")
				defer w.Close()
				if err := w.ExecScript("USE d; SET ISOLATION LEVEL " + iso.String()); err != nil {
					errCh <- err
					return
				}
				for i := 0; i < iters; i++ {
					err := w.ExecScript(fmt.Sprintf(
						"BEGIN; UPDATE t SET val = %d WHERE id = %d; COMMIT", i, i%64))
					if err != nil {
						if tolerableErr(err) {
							w.Rollback()
							continue
						}
						errCh <- fmt.Errorf("writer: %w", err)
						return
					}
				}
			}()

			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
		})
	}
}

// TestPairInvariantUnderConcurrentReads checks read atomicity: a writer
// inserts rows strictly in pairs inside explicit transactions, so a reader
// on the shared path must always count an even number of rows — a torn
// read (seeing a half-committed transaction) would surface as an odd count.
func TestPairInvariantUnderConcurrentReads(t *testing.T) {
	eng := newConcurrencyEngine(t, Config{}, 0)
	const pairs = 150
	const readers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)
	done := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		w := eng.NewSession("writer")
		defer w.Close()
		if _, err := w.Exec("USE d"); err != nil {
			errCh <- err
			return
		}
		for i := 0; i < pairs; i++ {
			err := w.ExecScript(fmt.Sprintf(
				"BEGIN; INSERT INTO t (id, grp, val) VALUES (%d, 0, 0); INSERT INTO t (id, grp, val) VALUES (%d, 0, 0); COMMIT",
				2*i, 2*i+1))
			if err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := eng.NewSession("reader")
			defer s.Close()
			if _, err := s.Exec("USE d"); err != nil {
				errCh <- err
				return
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := s.Exec("SELECT COUNT(*) FROM t")
				if err != nil {
					errCh <- fmt.Errorf("reader: %w", err)
					return
				}
				if n := res.Rows[0][0].Int(); n%2 != 0 {
					errCh <- fmt.Errorf("torn read: row count %d is odd", n)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestNextvalUniqueUnderConcurrency checks that SELECT NEXTVAL — which is
// excluded from the shared read path because it advances the sequence —
// still hands out globally unique values across concurrent sessions.
func TestNextvalUniqueUnderConcurrency(t *testing.T) {
	eng := newConcurrencyEngine(t, Config{}, 0)
	const workers = 4
	const per = 100
	vals := make(chan int64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := eng.NewSession("seq")
			defer s.Close()
			if _, err := s.Exec("USE d"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				res, err := s.Exec("SELECT NEXTVAL('seq')")
				if err != nil {
					t.Error(err)
					return
				}
				vals <- res.Rows[0][0].Int()
			}
		}()
	}
	wg.Wait()
	close(vals)
	seen := make(map[int64]bool)
	for v := range vals {
		if seen[v] {
			t.Fatalf("sequence value %d handed out twice", v)
		}
		seen[v] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d distinct values, want %d", len(seen), workers*per)
	}
}

// TestSharedReadEligibility pins down which statements ride the shared
// read path and which must serialize with writers.
func TestSharedReadEligibility(t *testing.T) {
	eng := New(Config{})
	s := eng.NewSession("x")
	defer s.Close()
	cases := []struct {
		sql    string
		shared bool
	}{
		{"SELECT * FROM t", true},
		{"SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a ORDER BY a", true},
		{"SELECT rand(), now()", true},
		{"SELECT * FROM t WHERE id IN (SELECT id FROM u)", true},
		{"SHOW TABLES", true},
		{"SELECT * FROM t FOR UPDATE", false},
		{"SELECT NEXTVAL('seq')", false},
		{"SELECT * FROM t WHERE id = NEXTVAL('seq')", false},
		{"SELECT * FROM t WHERE id IN (SELECT NEXTVAL('seq') FROM u)", false},
		{"INSERT INTO t (id) VALUES (1)", false},
		{"UPDATE t SET a = 1", false},
		{"DELETE FROM t", false},
		{"BEGIN", false},
	}
	for _, tc := range cases {
		st, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if got := s.sharedRead(st); got != tc.shared {
			t.Errorf("sharedRead(%q) = %v, want %v", tc.sql, got, tc.shared)
		}
	}

	// Serializable sessions never use the shared path: their reads take
	// table-level 2PL locks.
	s.iso = Serializable
	st, _ := sqlparse.Parse("SELECT * FROM t")
	if s.sharedRead(st) {
		t.Error("serializable SELECT must use the exclusive path")
	}
}

// TestParallelReadThroughputScales is the regression guard for the PR-1
// acceptance criterion: with a modeled per-statement engine cost, 8
// concurrent sessions must finish the same read workload at least 2× as
// fast as one session. The modeled cost (1 ms sleep inside the engine's
// concurrency scope) dominates CPU noise, so the bound holds under -race
// and on single-core hosts, where the seed's global mutex would pin the
// ratio to 1.
func TestParallelReadThroughputScales(t *testing.T) {
	const cost = time.Millisecond
	const sessions = 8
	const perSession = 40

	run := func(n int) time.Duration {
		eng := newConcurrencyEngine(t, Config{ExecCost: cost}, 32)
		sess := make([]*Session, n)
		for i := range sess {
			s := eng.NewSession("bench")
			if _, err := s.Exec("USE d"); err != nil {
				t.Fatal(err)
			}
			sess[i] = s
		}
		defer func() {
			for _, s := range sess {
				s.Close()
			}
		}()
		total := sessions * perSession
		start := time.Now()
		var wg sync.WaitGroup
		for i := range sess {
			per := total / n
			if i < total%n {
				per++
			}
			wg.Add(1)
			go func(s *Session, per int) {
				defer wg.Done()
				for j := 0; j < per; j++ {
					if _, err := s.Exec("SELECT COUNT(*) FROM t"); err != nil {
						t.Error(err)
						return
					}
				}
			}(sess[i], per)
		}
		wg.Wait()
		return time.Since(start)
	}

	serial := run(1)
	parallel := run(sessions)
	if parallel > serial/2 {
		t.Fatalf("8-session run (%v) not ≥2× faster than 1-session run (%v)", parallel, serial)
	}
	t.Logf("serial %v, parallel %v (%.1fx)", serial, parallel,
		float64(serial)/float64(parallel))
}
