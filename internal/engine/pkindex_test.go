package engine

import (
	"fmt"
	"testing"

	"repro/internal/sqltypes"
)

// PK-index durability tests: the index must agree with the scan path after
// every lifecycle event a row can go through — rollback, first-committer-
// wins aborts, replicated write-set application, backup/restore, and
// pk-changing updates. Agreement is checked two ways: structurally (every
// visible row is findable through the index) and behaviourally (an
// index-eligible point query returns exactly what the forced full scan
// returns).

// verifyPKIndex asserts that, at the latest committed snapshot, every
// visible row of db.table is reachable through findByPK under its current
// primary key.
func verifyPKIndex(t *testing.T, eng *Engine, db, table string) {
	t.Helper()
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	d, err := eng.database(db)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := d.tables[table]
	if !ok {
		t.Fatalf("unknown table %s.%s", db, table)
	}
	if tbl.pkCol < 0 {
		return
	}
	for _, id := range tbl.rowOrder {
		v := tbl.rows[id].visible(eng.clock)
		if v == nil {
			continue
		}
		if got := tbl.findByPK(v.data[tbl.pkCol], eng.clock); got != id {
			t.Fatalf("pk index lost row %d (pk=%v): findByPK returned %d", id, v.data[tbl.pkCol], got)
		}
	}
}

// assertPointMatchesScan compares the index-eligible point query against the
// forced full scan for every key in [0, hi).
func assertPointMatchesScan(t *testing.T, s *Session, hi int) {
	t.Helper()
	for id := 0; id < hi; id++ {
		point, err := s.ExecArgs("SELECT * FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		scan, err := s.ExecArgs("SELECT * FROM t WHERE id + 0 = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(point.Rows) != len(scan.Rows) {
			t.Fatalf("id=%d: point path %d rows, scan path %d rows", id, len(point.Rows), len(scan.Rows))
		}
		for i := range point.Rows {
			if !rowsEqual(point.Rows[i], scan.Rows[i]) {
				t.Fatalf("id=%d: point row %v != scan row %v", id, point.Rows[i], scan.Rows[i])
			}
		}
	}
}

func newPKIndexEngine(t *testing.T) (*Engine, *Session) {
	t.Helper()
	eng := New(Config{})
	s := eng.NewSession("app")
	if err := s.ExecScript("CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.ExecArgs("INSERT INTO t (id, v) VALUES (?, ?)",
			sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return eng, s
}

func TestPKIndexRollback(t *testing.T) {
	eng, s := newPKIndexEngine(t)
	defer s.Close()
	if err := s.ExecScript("BEGIN;" +
		"INSERT INTO t (id, v) VALUES (100, 'pending');" +
		"UPDATE t SET id = 200 WHERE id = 3;" +
		"DELETE FROM t WHERE id = 5;" +
		"ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	verifyPKIndex(t, eng, "d", "t")
	assertPointMatchesScan(t, s, 16)
	// Rolled-back keys must not resolve.
	for _, id := range []int{100, 200} {
		res, err := s.ExecArgs("SELECT * FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("rolled-back key %d visible through index: %v", id, res.Rows)
		}
	}
	// Row 5 must have survived the rolled-back delete, row 3 its update.
	for _, id := range []int{3, 5} {
		res, err := s.ExecArgs("SELECT * FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("key %d lost by rollback: %v", id, res.Rows)
		}
	}
}

// TestPKIndexInTxnVisibility checks the overlay side of the point lookup:
// a transaction sees its own uncommitted inserts, pk-moves and deletes
// through the fast path, while they stay invisible to other sessions.
func TestPKIndexInTxnVisibility(t *testing.T) {
	eng, s := newPKIndexEngine(t)
	defer s.Close()
	other := eng.NewSession("other")
	defer other.Close()
	if _, err := other.Exec("USE d"); err != nil {
		t.Fatal(err)
	}
	if err := s.ExecScript("BEGIN;" +
		"INSERT INTO t (id, v) VALUES (50, 'mine');" +
		"UPDATE t SET id = 60 WHERE id = 2;" +
		"DELETE FROM t WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	assertPointMatchesScan(t, s, 64) // in-txn view
	for id, want := range map[int]int{50: 1, 60: 1, 2: 0, 7: 0} {
		res, err := s.ExecArgs("SELECT * FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != want {
			t.Fatalf("in-txn key %d: want %d rows, got %v", id, want, res.Rows)
		}
	}
	for id, want := range map[int]int{50: 0, 60: 0, 2: 1, 7: 1} {
		res, err := other.ExecArgs("SELECT * FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != want {
			t.Fatalf("other-session key %d: want %d rows, got %v", id, want, res.Rows)
		}
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	verifyPKIndex(t, eng, "d", "t")
	assertPointMatchesScan(t, other, 64)
}

func TestPKIndexFirstCommitterWins(t *testing.T) {
	eng, s1 := newPKIndexEngine(t)
	defer s1.Close()
	s2 := eng.NewSession("app2")
	defer s2.Close()
	for _, s := range []*Session{s1, s2} {
		if err := s.ExecScript("USE d; SET ISOLATION LEVEL SNAPSHOT"); err != nil {
			t.Fatal(err)
		}
	}
	// Both transactions snapshot row 1; s1 moves it to pk 10 and commits
	// first. s2 then updates its stale snapshot of the same row — found
	// through the index's historical visibility — and must abort at commit.
	if _, err := s1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if err := s1.ExecScript("UPDATE t SET id = 10 WHERE id = 1; COMMIT"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("UPDATE t SET id = 11 WHERE id = 1"); err != nil {
		t.Fatal(err) // sees its snapshot's row 1 via the index
	}
	if _, err := s2.Exec("COMMIT"); err == nil {
		t.Fatal("second committer should have been aborted (first-committer-wins)")
	}
	verifyPKIndex(t, eng, "d", "t")
	assertPointMatchesScan(t, s1, 16)
	res, err := s1.ExecArgs("SELECT v FROM t WHERE id = ?", sqltypes.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("winning update's key not indexed: %v", res.Rows)
	}
	for _, gone := range []int{1, 11} {
		res, err := s1.ExecArgs("SELECT v FROM t WHERE id = ?", sqltypes.NewInt(int64(gone)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("key %d should not resolve after FCW abort: %v", gone, res.Rows)
		}
	}
}

func TestPKIndexApplyWriteSet(t *testing.T) {
	engA, sA := newPKIndexEngine(t)
	defer sA.Close()
	engB := New(Config{})
	sB := engB.NewSession("app")
	defer sB.Close()
	if err := sB.ExecScript("CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	// Replay engine A's committed history onto B via write sets (the slave
	// apply path), then mutate through a write-set transaction that inserts,
	// pk-moves and deletes.
	evs, _ := engA.Binlog().ReadFrom(0, 0)
	for _, ev := range evs {
		if ev.WriteSet == nil || len(ev.WriteSet.Ops) == 0 {
			continue
		}
		if err := engB.ApplyWriteSet(ev.WriteSet, ApplyOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sA.ExecScript("BEGIN;" +
		"INSERT INTO t (id, v) VALUES (20, 'new');" +
		"UPDATE t SET id = 30 WHERE id = 4;" +
		"DELETE FROM t WHERE id = 6"); err != nil {
		t.Fatal(err)
	}
	_, ws, err := sA.CommitWriteSet()
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.ApplyWriteSet(ws, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	verifyPKIndex(t, engB, "d", "t")
	assertPointMatchesScan(t, sB, 40)
	for id, want := range map[int]int{20: 1, 30: 1, 4: 0, 6: 0} {
		res, err := sB.ExecArgs("SELECT * FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != want {
			t.Fatalf("replica key %d: want %d rows, got %v", id, want, res.Rows)
		}
	}
}

func TestPKIndexBackupRestore(t *testing.T) {
	engA, sA := newPKIndexEngine(t)
	defer sA.Close()
	// Churn first so the dump contains updated and deleted history.
	if err := sA.ExecScript("UPDATE t SET id = 40 WHERE id = 0; DELETE FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	b, err := engA.Dump(BackupOptions{IncludeSequences: true})
	if err != nil {
		t.Fatal(err)
	}
	engB := New(Config{})
	if err := engB.Restore(b); err != nil {
		t.Fatal(err)
	}
	sB := engB.NewSession("app")
	defer sB.Close()
	if _, err := sB.Exec("USE d"); err != nil {
		t.Fatal(err)
	}
	verifyPKIndex(t, engB, "d", "t")
	assertPointMatchesScan(t, sB, 48)
	// Restore over an engine that already has data (the resync path):
	// the replaced table must drop its old index with the old table.
	if err := engB.Restore(b); err != nil {
		t.Fatal(err)
	}
	verifyPKIndex(t, engB, "d", "t")
	assertPointMatchesScan(t, sB, 48)
	// And the restored replica keeps indexing new writes.
	if _, err := sB.Exec("INSERT INTO t (id, v) VALUES (99, 'post-restore')"); err != nil {
		t.Fatal(err)
	}
	verifyPKIndex(t, engB, "d", "t")
	res, err := sB.ExecArgs("SELECT v FROM t WHERE id = ?", sqltypes.NewInt(99))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("post-restore insert not indexed: %v %v", res.Rows, err)
	}
}

// TestPKIndexDeleteReinsertSameKey: deleting (or pk-moving) a row and
// re-inserting its key inside ONE transaction must commit — the commit-time
// duplicate check has to look through the transaction's own overlay — and
// the resulting write-set must apply cleanly on a replica.
func TestPKIndexDeleteReinsertSameKey(t *testing.T) {
	eng, s := newPKIndexEngine(t)
	defer s.Close()
	if err := s.ExecScript("BEGIN;" +
		"DELETE FROM t WHERE id = 5;" +
		"INSERT INTO t (id, v) VALUES (5, 'reborn');" +
		"UPDATE t SET id = 300 WHERE id = 6;" +
		"INSERT INTO t (id, v) VALUES (6, 'recycled');" +
		"COMMIT"); err != nil {
		t.Fatalf("delete-then-reinsert txn aborted: %v", err)
	}
	verifyPKIndex(t, eng, "d", "t")
	for id, want := range map[int]string{5: "reborn", 6: "recycled", 300: "v6"} {
		res, err := s.ExecArgs("SELECT v FROM t WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != want {
			t.Fatalf("key %d: want %q, got %v", id, want, res.Rows)
		}
	}

	// The same shape must replicate: replay history onto a fresh engine,
	// then apply a delete+reinsert write-set.
	engB := New(Config{})
	sB := engB.NewSession("app")
	defer sB.Close()
	if err := sB.ExecScript("CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	evs, _ := eng.Binlog().ReadFrom(0, 0)
	for _, ev := range evs {
		if ev.WriteSet == nil || len(ev.WriteSet.Ops) == 0 {
			continue
		}
		if err := engB.ApplyWriteSet(ev.WriteSet, ApplyOptions{}); err != nil {
			t.Fatalf("replica apply: %v", err)
		}
	}
	if err := s.ExecScript("BEGIN;" +
		"DELETE FROM t WHERE id = 5;" +
		"INSERT INTO t (id, v) VALUES (5, 'reborn-2')"); err != nil {
		t.Fatal(err)
	}
	_, ws, err := s.CommitWriteSet()
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.ApplyWriteSet(ws, ApplyOptions{}); err != nil {
		t.Fatalf("replica apply of delete+reinsert write-set: %v", err)
	}
	verifyPKIndex(t, engB, "d", "t")
	res, err := sB.ExecArgs("SELECT v FROM t WHERE id = ?", sqltypes.NewInt(5))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str() != "reborn-2" {
		t.Fatalf("replica delete+reinsert: %v %v", res.Rows, err)
	}
}

func TestPKIndexTempTable(t *testing.T) {
	eng, s := newPKIndexEngine(t)
	defer s.Close()
	if err := s.ExecScript("CREATE TEMP TABLE tmp (id INT PRIMARY KEY, v INT);" +
		"INSERT INTO tmp (id, v) VALUES (1, 10), (2, 20);" +
		"UPDATE tmp SET id = 3 WHERE id = 1;" +
		"DELETE FROM tmp WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int]int{1: 0, 2: 0, 3: 1} {
		res, err := s.ExecArgs("SELECT v FROM tmp WHERE id = ?", sqltypes.NewInt(int64(id)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != want {
			t.Fatalf("temp key %d: want %d rows, got %v", id, want, res.Rows)
		}
	}
	// Insert/update/delete churn must not grow the index: temp tables keep
	// no MVCC history, so deletes and pk-moving updates unindex in place.
	for i := 0; i < 200; i++ {
		if err := s.ExecScript("INSERT INTO tmp (id, v) VALUES (50, 1);" +
			"UPDATE tmp SET id = 60 WHERE id = 50;" +
			"DELETE FROM tmp WHERE id = 60"); err != nil {
			t.Fatal(err)
		}
	}
	tmp := s.tempTables["tmp"]
	for _, key := range []int64{50, 60} {
		if n := len(tmp.pkIndex[sqltypes.HashValue(sqltypes.NewInt(key))]); n > 1 {
			t.Fatalf("temp churn leaked %d index entries under key %d", n, key)
		}
	}
	_ = eng
}

// TestPointLookupCrossKind pins the eligibility rules: exact cross-kind
// constants use the index, lossy ones fall back to the scan path, and both
// agree with full-scan semantics.
func TestPointLookupCrossKind(t *testing.T) {
	_, s := newPKIndexEngine(t)
	defer s.Close()
	// Float constant with integral value matches the INT key.
	res, err := s.Exec("SELECT v FROM t WHERE id = 3.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("id = 3.0 should match int pk 3: %v", res.Rows)
	}
	// Non-integral float can never match an INT key.
	res, err = s.Exec("SELECT v FROM t WHERE id = 3.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("id = 3.5 matched an int pk: %v", res.Rows)
	}
	// NULL never matches (three-valued logic).
	res, err = s.Exec("SELECT v FROM t WHERE id = NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("id = NULL matched: %v", res.Rows)
	}
	// Beyond 2^53, float64 equality is lossy: the scan path promotes int
	// keys to float64, where 2^53 and 2^53+1 collapse. The fast path must
	// fall back to the scan for such constants so both agree.
	if _, err := s.Exec("INSERT INTO t (id, v) VALUES (9007199254740993, 'big')"); err != nil {
		t.Fatal(err)
	}
	point, err := s.Exec("SELECT v FROM t WHERE id = 9007199254740992.0")
	if err != nil {
		t.Fatal(err)
	}
	scan2, err := s.Exec("SELECT v FROM t WHERE id + 0 = 9007199254740992.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(point.Rows) != len(scan2.Rows) {
		t.Fatalf("2^53 float constant: point %v != scan %v", point.Rows, scan2.Rows)
	}
	// String constants keep the engine's compare-as-string semantics via
	// the scan fallback.
	res, err = s.Exec("SELECT v FROM t WHERE id = '3'")
	if err != nil {
		t.Fatal(err)
	}
	scan, err := s.Exec("SELECT v FROM t WHERE id + 0 = '3'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(scan.Rows) {
		t.Fatalf("string-constant semantics diverge: point %v scan %v", res.Rows, scan.Rows)
	}
}
