package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// Result is the outcome of executing one statement.
type Result struct {
	Columns      []string
	Rows         []sqltypes.Row
	RowsAffected int64
	LastInsertID int64
	// AtSeq is the binlog position of the commit this statement produced:
	// set on autocommit writes and on COMMIT, zero for reads, statements
	// inside a still-open transaction, and read-only commits. Middleware
	// layers use it to tag the exact position a write became visible at
	// (session-consistency bookkeeping, history recording) instead of
	// re-reading the binlog head, which may already include later commits
	// from concurrent sessions.
	AtSeq uint64
}

// varEntry is a session variable or procedure parameter binding.
type varEntry struct{ val sqltypes.Value }

// Session is a client connection to one engine. Sessions are not safe for
// concurrent use, matching real driver connections.
type Session struct {
	eng       *Engine
	id        int64
	user      string
	currentDB string
	iso       IsolationLevel
	txn       *Txn
	vars      map[string]varEntry
	// tempTables is the session-private temp namespace (§4.1.4).
	tempTables map[string]*Table
	closed     bool
	// stmtTimeout is the session's SET DEADLINE value: a per-statement
	// execution budget (0 = none). deadline is the externally imposed
	// absolute deadline for the CURRENT statement (set by the router via
	// SetDeadline so queue wait upstream and execution here share one
	// budget); effDeadline is the min of both, computed per statement.
	stmtTimeout time.Duration
	deadline    time.Time
	effDeadline time.Time
	// paramScope holds procedure parameter bindings during CALL.
	paramScope []map[string]sqltypes.Value
	// scanBufs is a free list of scan buffers reused by non-point-lookup
	// statements to cut per-statement allocations (pkindex.go).
	scanBufs [][]scanRow
}

// ErrNoDatabase is returned for table references with no current database.
var ErrNoDatabase = errors.New("engine: no database selected")

// ErrDeadlineExceeded is returned when a statement's deadline (SET DEADLINE
// or a router-imposed absolute deadline) expires before or during
// execution. It wraps context.DeadlineExceeded so one errors.Is check
// classifies deadline expiry from every layer of the stack.
var ErrDeadlineExceeded = fmt.Errorf("engine: statement deadline exceeded: %w", context.DeadlineExceeded)

// SetDeadline imposes an absolute deadline on subsequent statements (zero
// clears it). Routers use it to hand the engine whatever remains of a
// statement's budget after admission-queue and replica-semaphore waits.
func (s *Session) SetDeadline(t time.Time) { s.deadline = t }

// StmtTimeout returns the session's SET DEADLINE per-statement budget.
func (s *Session) StmtTimeout() time.Duration { return s.stmtTimeout }

// ID returns the session id.
func (s *Session) ID() int64 { return s.id }

// User returns the authenticated user name.
func (s *Session) User() string { return s.user }

// CurrentDatabase returns the USE'd database ("" when none).
func (s *Session) CurrentDatabase() string { return s.currentDB }

// Isolation returns the session's isolation level.
func (s *Session) Isolation() IsolationLevel { return s.iso }

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.txn != nil }

// Close rolls back any open transaction and drops the session's temporary
// tables ("most applications ... rather drop the connection, allowing the
// database to automatically free the corresponding resources" — §4.1.4).
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if s.txn != nil {
		s.eng.rollbackLocked(s.txn)
		s.txn = nil
	}
	s.tempTables = make(map[string]*Table)
	s.closed = true
}

// Exec parses and executes one statement, binding ? placeholders to args.
// The signature is the uniform client contract shared by engine sessions,
// every router session and the wire driver.
func (s *Session) Exec(sql string, args ...sqltypes.Value) (*Result, error) {
	return s.ExecArgs(sql, args...)
}

// ExecArgs parses and executes one statement with ? parameters bound to
// args. Parsing goes through the process-wide statement cache, so repeated
// texts skip the parser; Prepare avoids even the cache probe.
func (s *Session) ExecArgs(sql string, args ...sqltypes.Value) (*Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		s.poisonOnError(err)
		return nil, err
	}
	return s.ExecStmtArgs(st, args...)
}

// ExecStmt executes a pre-parsed statement.
func (s *Session) ExecStmt(st sqlparse.Statement) (*Result, error) {
	return s.ExecStmtArgs(st)
}

// ExecStmtArgs executes a pre-parsed statement with bound parameters.
// Read-only statements (plain SELECT and SHOW under non-serializable
// isolation) run on the shared read path: they hold the engine lock as
// readers, so statements from different sessions scan in parallel. Write
// statements, DDL, FOR UPDATE, NEXTVAL and serializable sessions hold it
// exclusively.
func (s *Session) ExecStmtArgs(st sqlparse.Statement, args ...sqltypes.Value) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("engine: session closed")
	}
	if len(args) > 0 {
		// Enforce the argument count up front. Missing arguments would
		// surface lazily at evaluation, but SURPLUS ones would be dropped
		// silently — and a surplus argument almost always means the
		// statement has a literal where a ? was intended, i.e. it is about
		// to do the wrong thing without complaint.
		if n := sqlparse.CountParams(st); n != len(args) {
			return nil, fmt.Errorf("engine: statement has %d placeholders, got %d arguments", n, len(args))
		}
	}
	s.effDeadline = s.deadline
	if s.stmtTimeout > 0 {
		if d := time.Now().Add(s.stmtTimeout); s.effDeadline.IsZero() || d.Before(s.effDeadline) {
			s.effDeadline = d
		}
	}
	if s.sharedRead(st) {
		s.eng.mu.RLock()
		defer s.eng.mu.RUnlock()
		return s.execTopLocked(st, args)
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	return s.execTopLocked(st, args)
}

// execTopLocked runs one top-level statement under whichever engine lock mode
// the caller chose, paying the configured per-statement service time.
// Deadlines are enforced at statement boundaries: a statement whose
// deadline expired while waiting for the engine lock fails before doing any
// work, and the modelled service time is truncated at the deadline.
func (s *Session) execTopLocked(st sqlparse.Statement, args []sqltypes.Value) (*Result, error) {
	if !s.effDeadline.IsZero() {
		rem := time.Until(s.effDeadline)
		if rem <= 0 {
			return nil, ErrDeadlineExceeded
		}
		if c := s.eng.cfg.ExecCost; c > 0 && rem < c {
			// The statement cannot finish inside its budget: pay only the
			// remaining budget, then time out.
			time.Sleep(rem)
			return nil, ErrDeadlineExceeded
		}
	}
	if c := s.eng.cfg.ExecCost; c > 0 {
		time.Sleep(c)
	}
	res, err := s.execLocked(st, args, 0)
	if err != nil {
		s.poisonOnErrorLocked(err)
	}
	return res, err
}

// ExecScript runs a multi-statement script, stopping at the first error.
func (s *Session) ExecScript(sql string) error {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if _, err := s.ExecStmt(st); err != nil {
			return err
		}
	}
	return nil
}

// poisonOnError implements the per-vendor error handling divergence
// (§4.1.2): Postgres-profile engines abort the whole transaction.
func (s *Session) poisonOnError(err error) {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	s.poisonOnErrorLocked(err)
}

func (s *Session) poisonOnErrorLocked(err error) {
	if err == nil || s.txn == nil {
		return
	}
	if errors.Is(err, ErrTxnAborted) {
		return
	}
	if s.eng.cfg.Profile.AbortTxnOnError {
		s.txn.aborted = true
	}
}

// execLocked dispatches one statement. depth > 0 for trigger/procedure
// bodies; only depth-0 write statements are recorded for statement shipping.
func (s *Session) execLocked(st sqlparse.Statement, args []sqltypes.Value, depth int) (*Result, error) {
	if depth > 8 {
		return nil, fmt.Errorf("engine: trigger/procedure recursion limit exceeded")
	}
	if s.txn != nil && s.txn.aborted {
		if _, isRollback := st.(*sqlparse.RollbackTxn); !isRollback {
			return nil, ErrTxnAborted
		}
	}
	switch st := st.(type) {
	case *sqlparse.BeginTxn:
		return s.beginLocked()
	case *sqlparse.CommitTxn:
		return s.commitLocked()
	case *sqlparse.RollbackTxn:
		return s.rollbackLocked()
	case *sqlparse.SetIsolation:
		return s.setIsolationLocked(st)
	case *sqlparse.SetConsistency:
		// Read consistency is a middleware routing concept (§3.3); the
		// engine accepts the announcement so every layer speaks the same
		// SQL surface, but has nothing to do with it.
		return &Result{}, nil
	case *sqlparse.SetDeadline:
		// Routers normally intercept SET DEADLINE (so the budget also
		// covers admission-queue and replica waits); the engine honors it
		// directly for embedded single-node use.
		s.stmtTimeout = st.D
		return &Result{}, nil
	case *sqlparse.SetVar:
		v, err := s.evalConst(st.Value, args)
		if err != nil {
			return nil, err
		}
		s.vars[st.Name] = varEntry{val: v}
		return &Result{}, nil
	case *sqlparse.UseDatabase:
		if _, err := s.eng.database(st.Name); err != nil {
			return nil, err
		}
		if err := s.checkAccessLocked(st.Name); err != nil {
			return nil, err
		}
		s.currentDB = st.Name
		return &Result{}, nil
	case *sqlparse.Show:
		return s.showLocked(st)
	case *sqlparse.CreateDatabase:
		if err := s.eng.createDatabaseLocked(st.Name, st.IfNotExists); err != nil {
			return nil, err
		}
		s.eng.emitDDLLocked(st.SQL(), s)
		return &Result{}, nil
	case *sqlparse.DropDatabase:
		if _, ok := s.eng.databases[st.Name]; !ok {
			return nil, fmt.Errorf("engine: unknown database %q", st.Name)
		}
		delete(s.eng.databases, st.Name)
		if s.currentDB == st.Name {
			s.currentDB = ""
		}
		s.eng.emitDDLLocked(st.SQL(), s)
		return &Result{}, nil
	case *sqlparse.CreateTable:
		return s.createTableLocked(st)
	case *sqlparse.DropTable:
		return s.dropTableLocked(st)
	case *sqlparse.CreateSequence:
		return s.createSequenceLocked(st)
	case *sqlparse.DropSequence:
		return s.dropSequenceLocked(st)
	case *sqlparse.CreateTrigger:
		return s.createTriggerLocked(st)
	case *sqlparse.DropTrigger:
		return s.dropTriggerLocked(st)
	case *sqlparse.CreateProcedure:
		return s.createProcedureLocked(st)
	case *sqlparse.DropProcedure:
		return s.dropProcedureLocked(st)
	case *sqlparse.CreateUser:
		// Deliberately NOT recorded in the binlog: access control is
		// "orthogonal to database content" and gets lost by replication
		// and backups (§4.1.5).
		if _, ok := s.eng.users[st.Name]; ok {
			return nil, fmt.Errorf("engine: user %q already exists", st.Name)
		}
		s.eng.users[st.Name] = &User{Name: st.Name, Password: st.Password, Grants: make(map[string]bool)}
		return &Result{}, nil
	case *sqlparse.Grant:
		u, ok := s.eng.users[st.User]
		if !ok {
			return nil, fmt.Errorf("engine: unknown user %q", st.User)
		}
		u.Grants[st.Database] = true
		return &Result{}, nil
	case *sqlparse.Insert:
		return s.dmlLocked(st, args, depth)
	case *sqlparse.Update:
		return s.dmlLocked(st, args, depth)
	case *sqlparse.Delete:
		return s.dmlLocked(st, args, depth)
	case *sqlparse.Select:
		return s.dmlLocked(st, args, depth)
	case *sqlparse.Call:
		return s.callLocked(st, args, depth)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", st)
}

func (s *Session) beginLocked() (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("engine: transaction already in progress")
	}
	s.txn = s.eng.beginTxnLocked(s.iso)
	return &Result{}, nil
}

func (s *Session) commitLocked() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	tx := s.txn
	s.txn = nil
	_, _, err := s.eng.commitLocked(tx, s)
	if err != nil {
		return nil, err
	}
	s.dropCommitTempTables()
	return &Result{AtSeq: tx.commitSeq}, nil
}

func (s *Session) rollbackLocked() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	s.eng.rollbackLocked(s.txn)
	s.txn = nil
	s.dropCommitTempTables()
	return &Result{}, nil
}

// CommitWriteSet commits the open transaction and returns its write set —
// the hook transaction-based replication uses (functionally what trigger-
// based write-set extraction provides, §4.3.2).
func (s *Session) CommitWriteSet() (uint64, *WriteSet, error) {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if s.txn == nil {
		return 0, nil, fmt.Errorf("engine: no transaction in progress")
	}
	tx := s.txn
	s.txn = nil
	ts, ws, err := s.eng.commitLocked(tx, s)
	if err == nil {
		s.dropCommitTempTables()
	}
	return ts, ws, err
}

// dropCommitTempTables implements the drop-on-commit temp table profile.
func (s *Session) dropCommitTempTables() {
	if s.eng.cfg.Profile.TempTablesDropOnCommit {
		s.tempTables = make(map[string]*Table)
	}
}

func (s *Session) setIsolationLocked(st *sqlparse.SetIsolation) (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("engine: cannot change isolation level inside a transaction")
	}
	switch st.Level {
	case "READ COMMITTED":
		s.iso = ReadCommitted
	case "SNAPSHOT":
		if !s.eng.cfg.Profile.SupportsSnapshot {
			return nil, fmt.Errorf("engine: %s does not support snapshot isolation (§4.1.2)", s.eng.cfg.Profile.Name)
		}
		s.iso = Snapshot
	case "SERIALIZABLE":
		s.iso = Serializable
	default:
		return nil, fmt.Errorf("engine: unknown isolation level %q", st.Level)
	}
	return &Result{}, nil
}

func (s *Session) showLocked(st *sqlparse.Show) (*Result, error) {
	res := &Result{Columns: []string{"name"}}
	switch st.What {
	case "DATABASES":
		names := make([]string, 0, len(s.eng.databases))
		for n := range s.eng.databases {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewString(n)})
		}
	case "TABLES":
		if s.currentDB == "" {
			return nil, ErrNoDatabase
		}
		d, err := s.eng.database(s.currentDB)
		if err != nil {
			return nil, err
		}
		names := d.TableNames()
		for n := range s.tempTables {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			res.Rows = append(res.Rows, sqltypes.Row{sqltypes.NewString(n)})
		}
	default:
		return nil, fmt.Errorf("engine: unknown SHOW %q", st.What)
	}
	return res, nil
}

// checkAccessLocked enforces per-database grants when auth is required.
// The "*" grant covers every database (the daemon's -auth principal uses
// it: databases are created over the wire after the grant is issued).
func (s *Session) checkAccessLocked(db string) error {
	if !s.eng.cfg.RequireAuth {
		return nil
	}
	u, ok := s.eng.users[s.user]
	if !ok {
		return fmt.Errorf("engine: unknown user %q", s.user)
	}
	if !u.Grants[db] && !u.Grants["*"] {
		return fmt.Errorf("engine: user %q has no access to database %q", s.user, db)
	}
	return nil
}

// resolveDB returns the database name a table reference targets.
func (s *Session) resolveDB(ref sqlparse.TableRef) (string, error) {
	if ref.Database != "" {
		return ref.Database, nil
	}
	if s.currentDB == "" {
		return "", ErrNoDatabase
	}
	return s.currentDB, nil
}

// lookupTableLocked resolves a table reference: session temp tables shadow
// permanent tables when the reference is unqualified.
func (s *Session) lookupTableLocked(ref sqlparse.TableRef) (*Table, tableKey, error) {
	if ref.Database == "" {
		if t, ok := s.tempTables[ref.Name]; ok {
			return t, tableKey{db: "", table: ref.Name}, nil
		}
	}
	dbName, err := s.resolveDB(ref)
	if err != nil {
		return nil, tableKey{}, err
	}
	if err := s.checkAccessLocked(dbName); err != nil {
		return nil, tableKey{}, err
	}
	d, err := s.eng.database(dbName)
	if err != nil {
		return nil, tableKey{}, err
	}
	t, ok := d.tables[ref.Name]
	if !ok {
		return nil, tableKey{}, fmt.Errorf("engine: unknown table %q.%q", dbName, ref.Name)
	}
	return t, tableKey{db: dbName, table: ref.Name}, nil
}

func (s *Session) createTableLocked(st *sqlparse.CreateTable) (*Result, error) {
	cols := make([]Column, len(st.Columns))
	for i, c := range st.Columns {
		cols[i] = Column{
			Name: c.Name, Type: c.Type, PrimaryKey: c.PrimaryKey,
			Unique: c.Unique, AutoIncrement: c.AutoIncrement,
			NotNull: c.NotNull, Default: c.Default,
		}
	}
	if st.Temp {
		if st.Table.Database != "" {
			return nil, fmt.Errorf("engine: temporary tables cannot be database-qualified")
		}
		if _, ok := s.tempTables[st.Table.Name]; ok {
			if st.IfNotExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("engine: temp table %q already exists", st.Table.Name)
		}
		s.tempTables[st.Table.Name] = newTable(st.Table.Name, cols, true)
		return &Result{}, nil
	}
	dbName, err := s.resolveDB(st.Table)
	if err != nil {
		return nil, err
	}
	d, err := s.eng.database(dbName)
	if err != nil {
		return nil, err
	}
	if _, ok := d.tables[st.Table.Name]; ok {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: table %q.%q already exists", dbName, st.Table.Name)
	}
	d.tables[st.Table.Name] = newTable(st.Table.Name, cols, false)
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

func (s *Session) dropTableLocked(st *sqlparse.DropTable) (*Result, error) {
	if st.Table.Database == "" {
		if _, ok := s.tempTables[st.Table.Name]; ok {
			delete(s.tempTables, st.Table.Name)
			return &Result{}, nil
		}
	}
	dbName, err := s.resolveDB(st.Table)
	if err != nil {
		return nil, err
	}
	d, err := s.eng.database(dbName)
	if err != nil {
		return nil, err
	}
	if _, ok := d.tables[st.Table.Name]; !ok {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: unknown table %q.%q", dbName, st.Table.Name)
	}
	delete(d.tables, st.Table.Name)
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

func (s *Session) createSequenceLocked(st *sqlparse.CreateSequence) (*Result, error) {
	dbName, err := s.resolveDB(st.Name)
	if err != nil {
		return nil, err
	}
	d, err := s.eng.database(dbName)
	if err != nil {
		return nil, err
	}
	if _, ok := d.sequences[st.Name.Name]; ok {
		return nil, fmt.Errorf("engine: sequence %q already exists", st.Name.Name)
	}
	inc := st.Increment
	if inc == 0 {
		inc = 1
	}
	d.sequences[st.Name.Name] = &Sequence{Name: st.Name.Name, Next: st.Start, Increment: inc}
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

func (s *Session) dropSequenceLocked(st *sqlparse.DropSequence) (*Result, error) {
	dbName, err := s.resolveDB(st.Name)
	if err != nil {
		return nil, err
	}
	d, err := s.eng.database(dbName)
	if err != nil {
		return nil, err
	}
	if _, ok := d.sequences[st.Name.Name]; !ok {
		return nil, fmt.Errorf("engine: unknown sequence %q", st.Name.Name)
	}
	delete(d.sequences, st.Name.Name)
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

func (s *Session) createTriggerLocked(st *sqlparse.CreateTrigger) (*Result, error) {
	dbName, err := s.resolveDB(st.Table)
	if err != nil {
		return nil, err
	}
	d, err := s.eng.database(dbName)
	if err != nil {
		return nil, err
	}
	if _, ok := d.tables[st.Table.Name]; !ok {
		return nil, fmt.Errorf("engine: unknown table %q.%q", dbName, st.Table.Name)
	}
	for _, tr := range d.triggers[st.Table.Name] {
		if tr.Name == st.Name {
			return nil, fmt.Errorf("engine: trigger %q already exists", st.Name)
		}
	}
	d.triggers[st.Table.Name] = append(d.triggers[st.Table.Name], &Trigger{
		Name: st.Name, Event: st.Event, Table: st.Table.Name, Body: st.Body,
	})
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

func (s *Session) dropTriggerLocked(st *sqlparse.DropTrigger) (*Result, error) {
	if s.currentDB == "" {
		return nil, ErrNoDatabase
	}
	d, err := s.eng.database(s.currentDB)
	if err != nil {
		return nil, err
	}
	for table, trs := range d.triggers {
		for i, tr := range trs {
			if tr.Name == st.Name {
				d.triggers[table] = append(trs[:i], trs[i+1:]...)
				s.eng.emitDDLLocked(st.SQL(), s)
				return &Result{}, nil
			}
		}
	}
	return nil, fmt.Errorf("engine: unknown trigger %q", st.Name)
}

func (s *Session) createProcedureLocked(st *sqlparse.CreateProcedure) (*Result, error) {
	if s.currentDB == "" {
		return nil, ErrNoDatabase
	}
	d, err := s.eng.database(s.currentDB)
	if err != nil {
		return nil, err
	}
	if _, ok := d.procedures[st.Name]; ok {
		return nil, fmt.Errorf("engine: procedure %q already exists", st.Name)
	}
	d.procedures[st.Name] = &Procedure{Name: st.Name, Params: st.Params, Body: st.Body}
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

func (s *Session) dropProcedureLocked(st *sqlparse.DropProcedure) (*Result, error) {
	if s.currentDB == "" {
		return nil, ErrNoDatabase
	}
	d, err := s.eng.database(s.currentDB)
	if err != nil {
		return nil, err
	}
	if _, ok := d.procedures[st.Name]; !ok {
		return nil, fmt.Errorf("engine: unknown procedure %q", st.Name)
	}
	delete(d.procedures, st.Name)
	s.eng.emitDDLLocked(st.SQL(), s)
	return &Result{}, nil
}

// callLocked executes a stored procedure body (§4.2.1).
func (s *Session) callLocked(st *sqlparse.Call, args []sqltypes.Value, depth int) (*Result, error) {
	if s.currentDB == "" {
		return nil, ErrNoDatabase
	}
	d, err := s.eng.database(s.currentDB)
	if err != nil {
		return nil, err
	}
	proc, ok := d.procedures[st.Name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown procedure %q", st.Name)
	}
	if len(st.Args) != len(proc.Params) {
		return nil, fmt.Errorf("engine: procedure %q wants %d args, got %d", st.Name, len(proc.Params), len(st.Args))
	}
	scope := make(map[string]sqltypes.Value, len(proc.Params))
	for i, pname := range proc.Params {
		v, err := s.evalConst(st.Args[i], args)
		if err != nil {
			return nil, err
		}
		scope[pname] = v
	}
	s.paramScope = append(s.paramScope, scope)
	defer func() { s.paramScope = s.paramScope[:len(s.paramScope)-1] }()

	// Record the CALL itself for statement shipping at depth 0; the inner
	// statements run silently (the replica's copy of the procedure will
	// re-execute them — including any non-determinism, §4.2.1).
	if depth == 0 && s.txn != nil {
		s.txn.stmts = append(s.txn.stmts, recordSQL(st, args))
	}
	recordCall := depth == 0 && s.txn == nil

	var last *Result
	runBody := func() error {
		for _, body := range proc.Body {
			res, err := s.execLocked(body, nil, depth+1)
			if err != nil {
				return err
			}
			last = res
		}
		return nil
	}
	if recordCall {
		// Autocommit CALL: wrap the body in one implicit transaction whose
		// recorded statement is the CALL.
		s.txn = s.eng.beginTxnLocked(s.iso)
		s.txn.stmts = append(s.txn.stmts, recordSQL(st, args))
		if err := runBody(); err != nil {
			s.eng.rollbackLocked(s.txn)
			s.txn = nil
			return nil, err
		}
		tx := s.txn
		s.txn = nil
		if _, _, err := s.eng.commitLocked(tx, s); err != nil {
			return nil, err
		}
	} else if err := runBody(); err != nil {
		return nil, err
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// lookupParam resolves a procedure parameter from the innermost scope.
func (s *Session) lookupParam(name string) (sqltypes.Value, bool) {
	for i := len(s.paramScope) - 1; i >= 0; i-- {
		if v, ok := s.paramScope[i][name]; ok {
			return v, true
		}
	}
	return sqltypes.Null, false
}

// evalConst evaluates an expression with no row context.
func (s *Session) evalConst(e sqlparse.Expr, args []sqltypes.Value) (sqltypes.Value, error) {
	env := &evalEnv{s: s, args: args}
	return evalExpr(env, e)
}
