package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// newTestDB returns an engine with database "shop" and a standard items
// table, plus a session positioned on it.
func newTestDB(t *testing.T, cfg Config) (*Engine, *Session) {
	t.Helper()
	e := New(cfg)
	s := e.NewSession("test")
	mustExec(t, s, "CREATE DATABASE shop")
	mustExec(t, s, "USE shop")
	mustExec(t, s, `CREATE TABLE items (
		id INTEGER PRIMARY KEY AUTO_INCREMENT,
		name TEXT NOT NULL,
		price FLOAT DEFAULT 0,
		stock INTEGER DEFAULT 10
	)`)
	return e, s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func queryInt(t *testing.T, s *Session, sql string) int64 {
	t.Helper()
	res := mustExec(t, s, sql)
	if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
		t.Fatalf("query %q returned no rows", sql)
	}
	return res.Rows[0][0].Int()
}

func TestInsertSelectBasic(t *testing.T) {
	_, s := newTestDB(t, Config{})
	res := mustExec(t, s, "INSERT INTO items (name, price) VALUES ('apple', 1.5), ('pear', 2.0)")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	out := mustExec(t, s, "SELECT name, price FROM items ORDER BY price")
	if len(out.Rows) != 2 || out.Rows[0][0].Str() != "apple" {
		t.Fatalf("rows: %v", out.Rows)
	}
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items"); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

func TestAutoIncrementAndLastInsertID(t *testing.T) {
	_, s := newTestDB(t, Config{})
	r1 := mustExec(t, s, "INSERT INTO items (name) VALUES ('a')")
	r2 := mustExec(t, s, "INSERT INTO items (name) VALUES ('b')")
	if r1.LastInsertID != 1 || r2.LastInsertID != 2 {
		t.Fatalf("ids: %d, %d", r1.LastInsertID, r2.LastInsertID)
	}
}

func TestAutoIncrementNotRolledBack(t *testing.T) {
	// §4.3.2: auto-incremented keys are not decremented at rollback.
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('ghost')")
	mustExec(t, s, "ROLLBACK")
	r := mustExec(t, s, "INSERT INTO items (name) VALUES ('real')")
	if r.LastInsertID != 2 {
		t.Fatalf("expected hole in keys: LastInsertID = %d, want 2", r.LastInsertID)
	}
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items"); got != 1 {
		t.Fatalf("rolled back row persisted: count = %d", got)
	}
}

func TestUpdateWhere(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name, price) VALUES ('a', 1), ('b', 2), ('c', 3)")
	res := mustExec(t, s, "UPDATE items SET price = price * 10 WHERE price >= 2")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items WHERE price >= 20"); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

func TestDelete(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a'), ('b'), ('c')")
	res := mustExec(t, s, "DELETE FROM items WHERE name != 'b'")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	out := mustExec(t, s, "SELECT name FROM items")
	if len(out.Rows) != 1 || out.Rows[0][0].Str() != "b" {
		t.Fatalf("rows: %v", out.Rows)
	}
}

func TestTransactionRollback(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 5)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE items SET stock = 0")
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 0 {
		t.Fatalf("own write invisible inside txn: %d", got)
	}
	mustExec(t, s, "ROLLBACK")
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 5 {
		t.Fatalf("rollback lost: stock = %d", got)
	}
}

func TestTransactionCommitVisibility(t *testing.T) {
	e, s := newTestDB(t, Config{})
	s2 := e.NewSession("other")
	mustExec(t, s2, "USE shop")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('pending')")
	if got := queryInt(t, s2, "SELECT COUNT(*) FROM items"); got != 0 {
		t.Fatalf("uncommitted row visible to other session")
	}
	mustExec(t, s, "COMMIT")
	if got := queryInt(t, s2, "SELECT COUNT(*) FROM items"); got != 1 {
		t.Fatalf("committed row invisible: %d", got)
	}
}

func TestSnapshotIsolationRepeatableRead(t *testing.T) {
	e, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 1)")
	mustExec(t, s, "SET ISOLATION LEVEL SNAPSHOT")
	mustExec(t, s, "BEGIN")
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 1 {
		t.Fatal("setup")
	}
	s2 := e.NewSession("w")
	mustExec(t, s2, "USE shop")
	mustExec(t, s2, "UPDATE items SET stock = 99")
	// Snapshot reader must still see the old value.
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 1 {
		t.Fatalf("snapshot read changed mid-txn: %d", got)
	}
	mustExec(t, s, "COMMIT")
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 99 {
		t.Fatalf("new txn should see update: %d", got)
	}
}

func TestReadCommittedSeesNewCommits(t *testing.T) {
	e, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 1)")
	mustExec(t, s, "BEGIN") // default read committed
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 1 {
		t.Fatal("setup")
	}
	s2 := e.NewSession("w")
	mustExec(t, s2, "USE shop")
	mustExec(t, s2, "UPDATE items SET stock = 99")
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 99 {
		t.Fatalf("read committed should see new commit: %d", got)
	}
	mustExec(t, s, "COMMIT")
}

func TestFirstCommitterWins(t *testing.T) {
	e, s := newTestDB(t, Config{LockTimeout: 50 * time.Millisecond})
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 1)")

	s1 := e.NewSession("t1")
	s2 := e.NewSession("t2")
	mustExec(t, s1, "USE shop")
	mustExec(t, s2, "USE shop")
	mustExec(t, s1, "SET ISOLATION LEVEL SNAPSHOT")
	mustExec(t, s2, "SET ISOLATION LEVEL SNAPSHOT")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s2, "BEGIN")
	mustExec(t, s1, "UPDATE items SET stock = 10 WHERE name = 'a'")
	// s2 writing the same row must fail: the row lock is held by s1.
	_, err := s2.Exec("UPDATE items SET stock = 20 WHERE name = 'a'")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	mustExec(t, s1, "COMMIT")
	mustExec(t, s2, "ROLLBACK")

	// Now serial conflict: s2 snapshots before s1 commits.
	mustExec(t, s2, "BEGIN")
	_ = queryInt(t, s2, "SELECT stock FROM items") // materialize snapshot
	s3 := e.NewSession("t3")
	mustExec(t, s3, "USE shop")
	mustExec(t, s3, "UPDATE items SET stock = 30 WHERE name = 'a'")
	mustExec(t, s2, "UPDATE items SET stock = 40 WHERE name = 'a'")
	_, err = s2.Exec("COMMIT")
	if !errors.Is(err, ErrSerialization) {
		t.Fatalf("expected serialization failure, got %v", err)
	}
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 30 {
		t.Fatalf("first committer should win: stock = %d", got)
	}
}

func TestSerializableTableLocking(t *testing.T) {
	e, s := newTestDB(t, Config{LockTimeout: 50 * time.Millisecond})
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 1)")
	s1 := e.NewSession("t1")
	s2 := e.NewSession("t2")
	mustExec(t, s1, "USE shop")
	mustExec(t, s2, "USE shop")
	mustExec(t, s1, "SET ISOLATION LEVEL SERIALIZABLE")
	mustExec(t, s2, "SET ISOLATION LEVEL SERIALIZABLE")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "UPDATE items SET stock = 2")
	mustExec(t, s2, "BEGIN")
	_, err := s2.Exec("SELECT COUNT(*) FROM items")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("reader should block on writer's table lock, got %v", err)
	}
	mustExec(t, s1, "COMMIT")
	mustExec(t, s2, "ROLLBACK") // postgres profile poisoned the txn on the timeout
	mustExec(t, s2, "BEGIN")
	if got := queryInt(t, s2, "SELECT stock FROM items"); got != 2 {
		t.Fatalf("stock = %d", got)
	}
	mustExec(t, s2, "COMMIT")
}

func TestErrorPoisonsTxnOnPostgresProfile(t *testing.T) {
	_, s := newTestDB(t, Config{Profile: ProfilePostgres})
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('ok')")
	if _, err := s.Exec("INSERT INTO nosuch (x) VALUES (1)"); err == nil {
		t.Fatal("expected error")
	}
	_, err := s.Exec("SELECT COUNT(*) FROM items")
	if !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("postgres profile should poison txn, got %v", err)
	}
	mustExec(t, s, "ROLLBACK")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items"); got != 0 {
		t.Fatalf("poisoned txn committed rows: %d", got)
	}
}

func TestErrorContinuesTxnOnMySQLProfile(t *testing.T) {
	// §4.1.2: "MySQL continues the transaction until the client explicitly
	// rolls back".
	_, s := newTestDB(t, Config{Profile: ProfileMySQL})
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('ok')")
	if _, err := s.Exec("INSERT INTO nosuch (x) VALUES (1)"); err == nil {
		t.Fatal("expected error")
	}
	mustExec(t, s, "INSERT INTO items (name) VALUES ('still ok')")
	mustExec(t, s, "COMMIT")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items"); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

func TestSybaseHasNoSnapshot(t *testing.T) {
	_, s := newTestDB(t, Config{Profile: ProfileSybase})
	if _, err := s.Exec("SET ISOLATION LEVEL SNAPSHOT"); err == nil {
		t.Fatal("sybase profile should reject snapshot isolation (§4.1.2)")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (7, 'a')")
	_, err := s.Exec("INSERT INTO items (id, name) VALUES (7, 'b')")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("expected duplicate key, got %v", err)
	}
}

func TestNotNullEnforced(t *testing.T) {
	_, s := newTestDB(t, Config{})
	if _, err := s.Exec("INSERT INTO items (name) VALUES (NULL)"); err == nil {
		t.Fatal("expected not-null violation")
	}
}

func TestDefaultsApplied(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a')")
	if got := queryInt(t, s, "SELECT stock FROM items"); got != 10 {
		t.Fatalf("default stock = %d", got)
	}
}

func TestSequencesNonTransactional(t *testing.T) {
	// §4.2.3: sequence values consumed in an aborted txn leave holes.
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE SEQUENCE ord START 100 INCREMENT 1")
	mustExec(t, s, "BEGIN")
	if got := queryInt(t, s, "SELECT NEXTVAL('ord')"); got != 100 {
		t.Fatalf("nextval = %d", got)
	}
	mustExec(t, s, "ROLLBACK")
	if got := queryInt(t, s, "SELECT NEXTVAL('ord')"); got != 101 {
		t.Fatalf("sequence should not roll back: nextval = %d, want 101", got)
	}
}

func TestTempTableLifecycle(t *testing.T) {
	e, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE TEMP TABLE scratch (v INTEGER)")
	mustExec(t, s, "INSERT INTO scratch (v) VALUES (1), (2)")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM scratch"); got != 2 {
		t.Fatalf("count = %d", got)
	}
	// Invisible to other sessions.
	s2 := e.NewSession("x")
	mustExec(t, s2, "USE shop")
	if _, err := s2.Exec("SELECT COUNT(*) FROM scratch"); err == nil {
		t.Fatal("temp table visible to other session")
	}
	// Dropped on close.
	s.Close()
	s3 := e.NewSession("y")
	mustExec(t, s3, "USE shop")
	if _, err := s3.Exec("SELECT * FROM scratch"); err == nil {
		t.Fatal("temp table survived session close")
	}
}

func TestSybaseTempTablesForbiddenInTxn(t *testing.T) {
	_, s := newTestDB(t, Config{Profile: ProfileSybase})
	mustExec(t, s, "CREATE TEMP TABLE scratch (v INTEGER)")
	mustExec(t, s, "BEGIN")
	if _, err := s.Exec("INSERT INTO scratch (v) VALUES (1)"); err == nil {
		t.Fatal("sybase profile must reject temp table use inside txn (§4.1.4)")
	}
	mustExec(t, s, "ROLLBACK")
}

func TestTempTablesDropOnCommitProfile(t *testing.T) {
	p := ProfileMySQL
	p.TempTablesDropOnCommit = true
	_, s := newTestDB(t, Config{Profile: p})
	mustExec(t, s, "CREATE TEMP TABLE scratch (v INTEGER)")
	mustExec(t, s, "INSERT INTO scratch (v) VALUES (1)")
	// The autocommit INSERT committed, so the temp table is gone.
	if _, err := s.Exec("SELECT * FROM scratch"); err == nil {
		t.Fatal("temp table should be freed at commit (§4.1.4)")
	}
}

func TestTriggersCrossDatabase(t *testing.T) {
	// §4.1.1: triggers updating a different reporting database instance.
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE DATABASE reporting")
	mustExec(t, s, "CREATE TABLE reporting.audit (what TEXT)")
	mustExec(t, s, "CREATE TRIGGER ai AFTER INSERT ON items DO INSERT INTO reporting.audit (what) VALUES ('insert')")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a'), ('b')")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM reporting.audit"); got != 2 {
		t.Fatalf("audit rows = %d", got)
	}
}

func TestTriggerRollsBackWithTxn(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE DATABASE reporting")
	mustExec(t, s, "CREATE TABLE reporting.audit (what TEXT)")
	mustExec(t, s, "CREATE TRIGGER ai AFTER INSERT ON items DO INSERT INTO reporting.audit (what) VALUES ('insert')")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a')")
	mustExec(t, s, "ROLLBACK")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM reporting.audit"); got != 0 {
		t.Fatalf("trigger effects must roll back with txn: %d", got)
	}
}

func TestStoredProcedure(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 1)")
	mustExec(t, s, "CREATE PROCEDURE bump(amount) BEGIN UPDATE items SET stock = stock + amount; SELECT stock FROM items; END")
	res := mustExec(t, s, "CALL bump(4)")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 5 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE TABLE orders (oid INTEGER PRIMARY KEY, item INTEGER, qty INTEGER)")
	mustExec(t, s, "INSERT INTO items (id, name, price) VALUES (1, 'apple', 2), (2, 'pear', 3)")
	mustExec(t, s, "INSERT INTO orders (oid, item, qty) VALUES (10, 1, 5), (11, 2, 1)")
	res := mustExec(t, s, "SELECT o.oid, i.name FROM orders o JOIN items i ON o.item = i.id WHERE o.qty > 2")
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "apple" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE TABLE sales (region TEXT, amt INTEGER)")
	mustExec(t, s, "INSERT INTO sales (region, amt) VALUES ('e', 1), ('e', 2), ('w', 10)")
	res := mustExec(t, s, "SELECT region, SUM(amt), COUNT(*) FROM sales GROUP BY region ORDER BY region")
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	// ORDER BY after GROUP BY is not applied in aggregate path; check both groups present.
	sums := map[string]int64{}
	for _, r := range res.Rows {
		sums[r[0].Str()] = r[1].Int()
	}
	if sums["e"] != 3 || sums["w"] != 10 {
		t.Fatalf("sums: %v", sums)
	}
}

func TestSubqueryIn(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (id, name, price) VALUES (1, 'a', 1), (2, 'b', 5), (3, 'c', 9)")
	res := mustExec(t, s, "SELECT name FROM items WHERE id IN (SELECT id FROM items WHERE price > 3)")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestLimitWithoutOrderIsArbitrary(t *testing.T) {
	// The engine returns rows in insertion order, so LIMIT without ORDER BY
	// depends on physical layout — the §4.3.2 divergence vector.
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a'), ('b'), ('c')")
	res := mustExec(t, s, "SELECT name FROM items LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("limit: %v", res.Rows)
	}
}

func TestMultiDatabaseQueries(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "CREATE DATABASE analytics")
	mustExec(t, s, "CREATE TABLE analytics.metrics (k TEXT, v INTEGER)")
	mustExec(t, s, "INSERT INTO analytics.metrics (k, v) VALUES ('x', 42)")
	if got := queryInt(t, s, "SELECT v FROM analytics.metrics"); got != 42 {
		t.Fatalf("cross-db select = %d", got)
	}
}

func TestAccessControl(t *testing.T) {
	e := New(Config{RequireAuth: true})
	admin := e.NewSession("root")
	// RequireAuth engines still allow DDL from any session here; access is
	// enforced on USE/DML per grants.
	if err := e.CreateUser("app", "pw"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, admin, "CREATE DATABASE shop")
	mustExec(t, admin, "CREATE DATABASE hr")
	if err := e.Grant("shop", "app"); err != nil {
		t.Fatal(err)
	}
	if err := e.Authenticate("app", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := e.Authenticate("app", "wrong"); err == nil {
		t.Fatal("bad password accepted")
	}
	s := e.NewSession("app")
	if _, err := s.Exec("USE shop"); err != nil {
		t.Fatalf("granted USE failed: %v", err)
	}
	if _, err := s.Exec("USE hr"); err == nil {
		t.Fatal("ungranted USE allowed")
	}
}

func TestBinlogRecordsCommits(t *testing.T) {
	e, s := newTestDB(t, Config{})
	head := e.Binlog().Head()
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a')")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('b')")
	mustExec(t, s, "UPDATE items SET price = 1 WHERE name = 'b'")
	mustExec(t, s, "COMMIT")
	evs, trimmed := e.Binlog().ReadFrom(head, 0)
	if trimmed {
		t.Fatal("trimmed")
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if len(evs[1].Stmts) != 2 {
		t.Fatalf("txn stmts = %v", evs[1].Stmts)
	}
	// INSERT followed by UPDATE of the same new row coalesces into one
	// insert op carrying the final image.
	if len(evs[1].WriteSet.Ops) != 1 || evs[1].WriteSet.Ops[0].Kind != WriteInsert {
		t.Fatalf("writeset ops = %+v", evs[1].WriteSet.Ops)
	}
}

func TestBinlogSubscription(t *testing.T) {
	e, s := newTestDB(t, Config{})
	ch, cancel := e.Binlog().Subscribe(16)
	defer cancel()
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a')")
	select {
	case ev := <-ch:
		if len(ev.WriteSet.Ops) != 1 {
			t.Fatalf("ops: %v", ev.WriteSet.Ops)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestRolledBackTxnNotInBinlog(t *testing.T) {
	e, s := newTestDB(t, Config{})
	head := e.Binlog().Head()
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('x')")
	mustExec(t, s, "ROLLBACK")
	if e.Binlog().Head() != head {
		t.Fatal("rollback appeared in binlog")
	}
}

func TestWriteSetCapture(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (id, name, stock) VALUES (1, 'a', 5)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE items SET stock = 6 WHERE id = 1")
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (2, 'b')")
	mustExec(t, s, "DELETE FROM items WHERE id = 1")
	_, ws, err := s.CommitWriteSet()
	if err != nil {
		t.Fatal(err)
	}
	// The UPDATE of row 1 is superseded by its DELETE, leaving the
	// minimal write set: insert row 2, delete row 1.
	if len(ws.Ops) != 2 {
		t.Fatalf("ops = %d: %+v", len(ws.Ops), ws.Ops)
	}
	if ws.Ops[0].Kind != WriteInsert || ws.Ops[0].PK.Int() != 2 {
		t.Fatalf("first op: %+v", ws.Ops[0])
	}
	if ws.Ops[1].Kind != WriteDelete || ws.Ops[1].PK.Int() != 1 {
		t.Fatalf("second op: %+v", ws.Ops[1])
	}
}

func TestApplyWriteSetReplicates(t *testing.T) {
	mk := func() (*Engine, *Session) { return newTestDB(t, Config{}) }
	e1, s1 := mk()
	e2, _ := mk()
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "INSERT INTO items (id, name, price, stock) VALUES (1, 'a', 2.5, 3)")
	mustExec(t, s1, "INSERT INTO items (id, name, price, stock) VALUES (2, 'b', 1, 1)")
	_, ws, err := s1.CommitWriteSet()
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ApplyWriteSet(ws, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	c1, _ := e1.TableChecksum("shop", "items")
	c2, _ := e2.TableChecksum("shop", "items")
	if c1 != c2 {
		t.Fatalf("replica diverged: %x vs %x", c1, c2)
	}
}

func TestApplyWriteSetCounterGap(t *testing.T) {
	// §4.3.2: write-set application does not advance auto-increment, so a
	// later local insert on the replica collides.
	_, s1 := newTestDB(t, Config{})
	e2, _ := newTestDB(t, Config{})
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "INSERT INTO items (name) VALUES ('a')") // auto id 1
	_, ws, err := s1.CommitWriteSet()
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ApplyWriteSet(ws, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	s2 := e2.NewSession("local")
	mustExec(t, s2, "USE shop")
	_, err = s2.Exec("INSERT INTO items (name) VALUES ('local')")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("expected duplicate key from stale counter, got %v", err)
	}
	// With AdvanceCounters the gap is fixed.
	e3, _ := newTestDB(t, Config{})
	if err := e3.ApplyWriteSet(ws, ApplyOptions{AdvanceCounters: true}); err != nil {
		t.Fatal(err)
	}
	s3 := e3.NewSession("local")
	mustExec(t, s3, "USE shop")
	mustExec(t, s3, "INSERT INTO items (name) VALUES ('local')")
}

func TestChecksumDivergenceOnRand(t *testing.T) {
	// Two replicas executing the same UPDATE ... SET x = rand() diverge.
	e1, s1 := newTestDB(t, Config{RandSeed: 1})
	e2, s2 := newTestDB(t, Config{RandSeed: 2})
	for _, s := range []*Session{s1, s2} {
		mustExec(t, s, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
		mustExec(t, s, "UPDATE items SET price = RAND()")
	}
	c1, _ := e1.TableChecksum("shop", "items")
	c2, _ := e2.TableChecksum("shop", "items")
	if c1 == c2 {
		t.Fatal("rand() should diverge replicas with different seeds (§4.3.2)")
	}
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	e1, s1 := newTestDB(t, Config{})
	mustExec(t, s1, "INSERT INTO items (name, price) VALUES ('a', 1), ('b', 2)")
	mustExec(t, s1, "CREATE SEQUENCE ord START 50 INCREMENT 1")
	_ = queryInt(t, s1, "SELECT NEXTVAL('ord')") // consume 50

	b, err := e1.Dump(BackupOptions{IncludeSequences: true, IncludeCode: true, IncludeUsers: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := DecodeBackup(data)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{})
	if err := e2.Restore(b2); err != nil {
		t.Fatal(err)
	}
	c1, _ := e1.TableChecksum("shop", "items")
	c2, _ := e2.TableChecksum("shop", "items")
	if c1 != c2 {
		t.Fatalf("restore diverged: %x vs %x", c1, c2)
	}
	s2 := e2.NewSession("x")
	mustExec(t, s2, "USE shop")
	if got := queryInt(t, s2, "SELECT NEXTVAL('ord')"); got != 51 {
		t.Fatalf("sequence position lost: %d, want 51", got)
	}
}

func TestBackupDefaultLosesSequences(t *testing.T) {
	// The zero-options dump reproduces the §4.2.3 gap.
	e1, s1 := newTestDB(t, Config{})
	mustExec(t, s1, "CREATE SEQUENCE ord START 50 INCREMENT 1")
	_ = queryInt(t, s1, "SELECT NEXTVAL('ord')")
	b, err := e1.Dump(BackupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{})
	if err := e2.Restore(b); err != nil {
		t.Fatal(err)
	}
	s2 := e2.NewSession("x")
	mustExec(t, s2, "USE shop")
	if _, err := s2.Exec("SELECT NEXTVAL('ord')"); err == nil {
		t.Fatal("sequence should be missing from a data-only backup (§4.2.3)")
	}
}

func TestBackupConsistentUnderConcurrentWrites(t *testing.T) {
	e, s := newTestDB(t, Config{})
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO items (id, name, stock) VALUES (%d, 'x', 0)", i+1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := e.NewSession("w")
		if _, err := w.Exec("USE shop"); err != nil {
			return
		}
		for i := 0; i < 200; i++ {
			_, _ = w.Exec("UPDATE items SET stock = stock + 1")
		}
	}()
	for i := 0; i < 10; i++ {
		b, err := e.Dump(BackupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Consistency check: within the snapshot all rows must have the
		// same stock value (each update statement bumps all rows at once).
		for _, dd := range b.Databases {
			for _, td := range dd.Tables {
				if td.Name != "items" {
					continue
				}
				first := td.Rows[0][3].Int()
				for _, r := range td.Rows {
					if r[3].Int() != first {
						t.Fatalf("inconsistent snapshot: %d vs %d", r[3].Int(), first)
					}
				}
			}
		}
	}
	<-done
}

func TestParamBinding(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
	res, err := s.ExecArgs("SELECT name FROM items WHERE id = ?", sqltypes.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "b" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestSessionVars(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "SET @x = 41")
	res := mustExec(t, s, "SELECT @x + 1")
	if res.Rows[0][0].Int() != 42 {
		t.Fatalf("var: %v", res.Rows)
	}
}

func TestShowStatements(t *testing.T) {
	_, s := newTestDB(t, Config{})
	res := mustExec(t, s, "SHOW DATABASES")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "shop" {
		t.Fatalf("databases: %v", res.Rows)
	}
	res = mustExec(t, s, "SHOW TABLES")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "items" {
		t.Fatalf("tables: %v", res.Rows)
	}
}

func TestDDLNotTransactional(t *testing.T) {
	// §4.1.2: DDL cannot be rolled back.
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "CREATE TABLE extra (v INTEGER)")
	mustExec(t, s, "ROLLBACK")
	mustExec(t, s, "INSERT INTO extra (v) VALUES (1)") // table survived rollback
}

func TestForUpdateLocks(t *testing.T) {
	e, s := newTestDB(t, Config{LockTimeout: 50 * time.Millisecond})
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (1, 'a')")
	s1 := e.NewSession("t1")
	s2 := e.NewSession("t2")
	mustExec(t, s1, "USE shop")
	mustExec(t, s2, "USE shop")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "SELECT * FROM items WHERE id = 1 FOR UPDATE")
	mustExec(t, s2, "BEGIN")
	_, err := s2.Exec("UPDATE items SET name = 'b' WHERE id = 1")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("expected lock conflict, got %v", err)
	}
	mustExec(t, s1, "COMMIT")
	mustExec(t, s2, "ROLLBACK")
}

func TestLikeOperator(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name) VALUES ('apple'), ('apricot'), ('banana')")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items WHERE name LIKE 'ap%'"); got != 2 {
		t.Fatalf("like count = %d", got)
	}
	if got := queryInt(t, s, "SELECT COUNT(*) FROM items WHERE name LIKE '_anana'"); got != 1 {
		t.Fatalf("underscore like = %d", got)
	}
}

func TestDistinct(t *testing.T) {
	_, s := newTestDB(t, Config{})
	mustExec(t, s, "INSERT INTO items (name, price) VALUES ('a', 1), ('b', 1), ('c', 2)")
	res := mustExec(t, s, "SELECT DISTINCT price FROM items")
	if len(res.Rows) != 2 {
		t.Fatalf("distinct: %v", res.Rows)
	}
}
