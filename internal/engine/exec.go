package engine

import (
	"fmt"
	"sort"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// dmlLocked executes INSERT/UPDATE/DELETE/SELECT, wrapping autocommit
// statements in an implicit transaction.
func (s *Session) dmlLocked(st sqlparse.Statement, args []sqltypes.Value, depth int) (*Result, error) {
	implicit := false
	if s.txn == nil {
		s.txn = s.eng.beginTxnLocked(s.iso)
		implicit = true
	}
	tx := s.txn
	s.eng.refreshSnapshotLocked(tx)

	var res *Result
	var err error
	switch st := st.(type) {
	case *sqlparse.Insert:
		res, err = s.execInsertLocked(tx, st, args, depth)
	case *sqlparse.Update:
		res, err = s.execUpdateLocked(tx, st, args, depth)
	case *sqlparse.Delete:
		res, err = s.execDeleteLocked(tx, st, args, depth)
	case *sqlparse.Select:
		res, err = s.execSelectLocked(tx, st, args)
	default:
		err = fmt.Errorf("engine: not a DML statement: %T", st)
	}
	if err == nil && depth == 0 && !st.IsRead() {
		// Record for statement-based shipping. SELECT FOR UPDATE takes
		// locks but changes nothing, so it is not recorded.
		if _, isSel := st.(*sqlparse.Select); !isSel {
			tx.stmts = append(tx.stmts, recordSQL(st, args))
		}
	}
	if implicit {
		s.txn = nil
		if err != nil {
			s.eng.rollbackLocked(tx)
			return nil, err
		}
		if _, _, cerr := s.eng.commitLocked(tx, s); cerr != nil {
			return nil, cerr
		}
		s.dropCommitTempTables()
		if res != nil {
			res.AtSeq = tx.commitSeq
		}
	}
	return res, err
}

// recordSQL renders the executable text recorded for statement-based
// shipping. Bound ? parameters are inlined as literals: the recorded text is
// re-executed standalone on replicas, which have no access to this call's
// argument vector (shipping "INSERT ... VALUES (?)" verbatim would stall
// every slave applier on "parameter not bound").
func recordSQL(st sqlparse.Statement, args []sqltypes.Value) string {
	if len(args) > 0 {
		if bound, err := sqlparse.BindParams(st, args); err == nil {
			return bound.SQL()
		}
	}
	// Unreachable placeholder case: args==0 means the statement had no ?
	// (ExecStmtArgs enforces the count) and a bind error above implies the
	// statement could not have executed. Raw text is safe here.
	return st.SQL() // lint:rawsql-ok no-args statements carry no placeholders; see comment above
}

// checkTempUse enforces the Sybase-style "no temp tables inside explicit
// transactions" restriction (§4.1.4).
func (s *Session) checkTempUse(t *Table, implicitTx bool) error {
	if !t.Temp {
		return nil
	}
	if s.txn != nil && !implicitTx && !s.eng.cfg.Profile.TempTablesInTxn {
		return fmt.Errorf("engine: %s does not allow temporary tables inside transactions (§4.1.4)", s.eng.cfg.Profile.Name)
	}
	return nil
}

// scanRow is one visible row during execution.
type scanRow struct {
	rowID int64
	data  sqltypes.Row
}

// scanInto appends the rows of t visible to tx — with the transaction's own
// pending changes applied — to out (typically a pooled buffer from
// getScanBuf) and returns the filled slice.
func (s *Session) scanInto(out []scanRow, tx *Txn, key tableKey, t *Table) []scanRow {
	ov := tx.overlay[key]
	for _, id := range t.rowOrder {
		if ent, ok := ov[id]; ok {
			if ent.deleted {
				continue
			}
			out = append(out, scanRow{rowID: id, data: ent.data})
			continue
		}
		if v := t.rows[id].visible(tx.snapTS); v != nil {
			out = append(out, scanRow{rowID: id, data: v.data})
		}
	}
	// Rows inserted by this transaction that are not yet in rowOrder.
	for _, op := range tx.ops {
		if op.key != key || op.kind != WriteInsert {
			continue
		}
		if _, exists := t.rows[op.rowID]; exists {
			continue
		}
		if ent := ov[op.rowID]; ent != nil && !ent.deleted {
			out = append(out, scanRow{rowID: op.rowID, data: ent.data})
		}
	}
	return out
}

// coerce converts v to the column kind, erroring on NOT NULL violations.
func coerce(col Column, v sqltypes.Value) (sqltypes.Value, error) {
	if v.IsNull() {
		if col.NotNull {
			return v, fmt.Errorf("engine: null value in column %q violates not-null constraint", col.Name)
		}
		return v, nil
	}
	switch col.Type {
	case sqltypes.KindInt:
		if v.Kind() == sqltypes.KindInt {
			return v, nil
		}
		return sqltypes.NewInt(v.Int()), nil
	case sqltypes.KindFloat:
		if v.Kind() == sqltypes.KindFloat {
			return v, nil
		}
		return sqltypes.NewFloat(v.Float()), nil
	case sqltypes.KindString:
		if v.Kind() == sqltypes.KindString {
			return v, nil
		}
		return sqltypes.NewString(v.Str()), nil
	case sqltypes.KindBool:
		if v.Kind() == sqltypes.KindBool {
			return v, nil
		}
		return sqltypes.NewBool(v.Bool()), nil
	case sqltypes.KindTime:
		if v.Kind() == sqltypes.KindTime {
			return v, nil
		}
		return sqltypes.Value{K: sqltypes.KindTime, I: v.Int()}, nil
	}
	return v, nil
}

// uniqueViolationLocked checks PK/unique constraints of candidate against rows
// visible to tx (excluding excludeID).
func (s *Session) uniqueViolationLocked(tx *Txn, key tableKey, t *Table, candidate sqltypes.Row, excludeID int64) error {
	if len(t.uniqueCols) == 0 {
		return nil
	}
	// When the primary key is the only uniqueness constraint, a point
	// lookup replaces the full visibility scan — this is what makes bulk
	// INSERT into a keyed table O(n) instead of O(n²).
	if t.pkOnlyUnique {
		pk := candidate[t.pkCol]
		if pk.IsNull() {
			return nil
		}
		for _, sr := range s.pkLookupLocked(tx, key, t, pk) {
			if sr.rowID != excludeID {
				return fmt.Errorf("%w: %s.%s column %s value %v",
					ErrDuplicateKey, key.db, key.table, t.Columns[t.pkCol].Name, pk)
			}
		}
		return nil
	}
	rows := s.scanInto(s.getScanBuf(), tx, key, t)
	defer s.putScanBuf(rows)
	for _, sr := range rows {
		if sr.rowID == excludeID {
			continue
		}
		for _, ci := range t.uniqueCols {
			if candidate[ci].IsNull() {
				continue
			}
			if sqltypes.Equal(sr.data[ci], candidate[ci]) {
				return fmt.Errorf("%w: %s.%s column %s value %v",
					ErrDuplicateKey, key.db, key.table, t.Columns[ci].Name, candidate[ci])
			}
		}
	}
	return nil
}

func (s *Session) execInsertLocked(tx *Txn, st *sqlparse.Insert, args []sqltypes.Value, depth int) (*Result, error) {
	t, key, err := s.lookupTableLocked(st.Table)
	if err != nil {
		return nil, err
	}
	if err := s.checkTempUse(t, false); err != nil {
		return nil, err
	}
	if s.iso == Serializable && !t.Temp {
		if err := s.eng.lockTable(tx, t, true); err != nil {
			return nil, err
		}
	}

	// Map the statement's column list to table positions.
	colIdx := make([]int, 0, len(st.Columns))
	if len(st.Columns) == 0 {
		for i := range t.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range st.Columns {
			ci := t.colIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("engine: unknown column %q in table %q", name, t.Name)
			}
			colIdx = append(colIdx, ci)
		}
	}

	res := &Result{}
	env := &evalEnv{s: s, tx: tx, args: args}
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(colIdx) {
			return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(exprRow), len(colIdx))
		}
		row := make(sqltypes.Row, len(t.Columns))
		given := make([]bool, len(t.Columns))
		for vi, e := range exprRow {
			v, err := evalExpr(env, e)
			if err != nil {
				return nil, err
			}
			row[colIdx[vi]] = v
			given[colIdx[vi]] = true
		}
		for i, c := range t.Columns {
			if given[i] && !row[i].IsNull() {
				continue
			}
			switch {
			case c.AutoIncrement:
				// Non-transactional counter: advanced even if the txn
				// later rolls back (§4.3.2).
				t.autoInc++
				row[i] = sqltypes.NewInt(t.autoInc)
				res.LastInsertID = t.autoInc
			case !given[i] && c.Default != nil:
				v, err := evalExpr(env, c.Default)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		for i, c := range t.Columns {
			cv, err := coerce(c, row[i])
			if err != nil {
				return nil, err
			}
			row[i] = cv
		}
		if err := s.uniqueViolationLocked(tx, key, t, row, -1); err != nil {
			return nil, err
		}
		if t.Temp {
			// Temp tables are session-private and non-transactional in
			// this engine; apply immediately and skip the write set.
			id := t.nextRowID
			t.nextRowID++
			t.rows[id] = &rowChain{versions: []rowVersion{{data: row}}}
			t.rowOrder = append(t.rowOrder, id)
			t.indexPK(row, id)
			tx.usedTempTables = true
		} else {
			id := t.nextRowID
			t.nextRowID++
			tx.ov(key)[id] = &overlayEntry{data: row, inserted: true}
			if t.pkCol >= 0 {
				tx.indexOverlayPK(key, id, row[t.pkCol])
			}
			tx.ops = append(tx.ops, pendingOp{key: key, rowID: id, kind: WriteInsert})
		}
		res.RowsAffected++
		if err := s.fireTriggersLocked(tx, key, "INSERT", depth); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (s *Session) execUpdateLocked(tx *Txn, st *sqlparse.Update, args []sqltypes.Value, depth int) (*Result, error) {
	t, key, err := s.lookupTableLocked(st.Table)
	if err != nil {
		return nil, err
	}
	if err := s.checkTempUse(t, false); err != nil {
		return nil, err
	}
	if s.iso == Serializable && !t.Temp {
		if err := s.eng.lockTable(tx, t, true); err != nil {
			return nil, err
		}
	}
	setIdx := make([]int, len(st.Set))
	for i, a := range st.Set {
		ci := t.colIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in table %q", a.Column, t.Name)
		}
		setIdx[i] = ci
	}

	res := &Result{}
	rows, pooled := s.candidateRowsLocked(tx, key, t, st.Where, args, st.Table.Name)
	if pooled {
		defer s.putScanBuf(rows)
	}
	for _, sr := range rows {
		env := s.rowEnv(tx, t, st.Table, "", sr.data, args)
		if st.Where != nil {
			ok, err := evalBool(env, st.Where)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if !t.Temp && s.iso != Serializable {
			if err := s.eng.lockRow(tx, t, sr.rowID); err != nil {
				return nil, err
			}
			// The row may have changed while we waited. Read-committed
			// re-reads the latest committed version; snapshot isolation
			// proceeds and relies on first-committer-wins at commit.
			if tx.iso == ReadCommitted {
				if v := t.rows[sr.rowID]; v != nil {
					if latest := v.visible(s.eng.clock); latest != nil {
						sr.data = latest.data
						env = s.rowEnv(tx, t, st.Table, "", sr.data, args)
						if st.Where != nil {
							ok, err := evalBool(env, st.Where)
							if err != nil {
								return nil, err
							}
							if !ok {
								s.eng.releaseRow(tx, t, sr.rowID)
								continue
							}
						}
					} else {
						continue // deleted meanwhile
					}
				}
			}
		}
		newRow := sr.data.Clone()
		for i, a := range st.Set {
			v, err := evalExpr(env, a.Value)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(t.Columns[setIdx[i]], v)
			if err != nil {
				return nil, err
			}
			newRow[setIdx[i]] = cv
		}
		// Re-check uniqueness if a key column changed.
		changedKey := false
		for _, ci := range setIdx {
			if t.Columns[ci].PrimaryKey || t.Columns[ci].Unique {
				changedKey = true
			}
		}
		if changedKey {
			if err := s.uniqueViolationLocked(tx, key, t, newRow, sr.rowID); err != nil {
				return nil, err
			}
		}
		if t.Temp {
			chain := t.rows[sr.rowID]
			chain.versions[len(chain.versions)-1].data = newRow
			// Temp updates apply in place with no MVCC history, so move
			// the index entry rather than accumulating one per former key.
			t.unindexPK(sr.data, sr.rowID)
			t.indexPK(newRow, sr.rowID)
			tx.usedTempTables = true
		} else {
			ent := tx.ov(key)[sr.rowID]
			if ent == nil {
				ent = &overlayEntry{before: sr.data.Clone()}
				tx.ov(key)[sr.rowID] = ent
			}
			ent.data = newRow
			if t.pkCol >= 0 {
				tx.indexOverlayPK(key, sr.rowID, newRow[t.pkCol])
			}
			// Rows inserted by this txn stay pending as inserts with the
			// updated image; pre-existing rows get (at most one) update op.
			if !ent.inserted && !ent.updateOpped {
				ent.updateOpped = true
				tx.ops = append(tx.ops, pendingOp{key: key, rowID: sr.rowID, kind: WriteUpdate})
			}
		}
		res.RowsAffected++
		if err := s.fireTriggersLocked(tx, key, "UPDATE", depth); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (s *Session) execDeleteLocked(tx *Txn, st *sqlparse.Delete, args []sqltypes.Value, depth int) (*Result, error) {
	t, key, err := s.lookupTableLocked(st.Table)
	if err != nil {
		return nil, err
	}
	if err := s.checkTempUse(t, false); err != nil {
		return nil, err
	}
	if s.iso == Serializable && !t.Temp {
		if err := s.eng.lockTable(tx, t, true); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	rows, pooled := s.candidateRowsLocked(tx, key, t, st.Where, args, st.Table.Name)
	if pooled {
		defer s.putScanBuf(rows)
	}
	for _, sr := range rows {
		env := s.rowEnv(tx, t, st.Table, "", sr.data, args)
		if st.Where != nil {
			ok, err := evalBool(env, st.Where)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if t.Temp {
			delete(t.rows, sr.rowID)
			for i, id := range t.rowOrder {
				if id == sr.rowID {
					t.rowOrder = append(t.rowOrder[:i], t.rowOrder[i+1:]...)
					break
				}
			}
			// Temp deletes free the chain outright (no MVCC history), so
			// drop the index entry too or churning temp tables would grow
			// their buckets without bound.
			t.unindexPK(sr.data, sr.rowID)
			tx.usedTempTables = true
			res.RowsAffected++
			continue
		}
		if s.iso != Serializable {
			if err := s.eng.lockRow(tx, t, sr.rowID); err != nil {
				return nil, err
			}
		}
		ent := tx.ov(key)[sr.rowID]
		if ent == nil {
			ent = &overlayEntry{before: sr.data.Clone()}
			tx.ov(key)[sr.rowID] = ent
		}
		wasInserted := ent.inserted
		ent.deleted = true
		ent.data = nil
		if !wasInserted {
			tx.ops = append(tx.ops, pendingOp{key: key, rowID: sr.rowID, kind: WriteDelete})
		}
		res.RowsAffected++
		if err := s.fireTriggersLocked(tx, key, "DELETE", depth); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// releaseRow drops a single row lock acquired by tx (used when a re-check
// after lock wait rules the row out).
func (e *Engine) releaseRow(tx *Txn, t *Table, rowID int64) {
	if t.locks[rowID] == tx.id {
		delete(t.locks, rowID)
		for i, hl := range tx.rowLocks {
			if hl.t == t && hl.rowID == rowID {
				tx.rowLocks = append(tx.rowLocks[:i], tx.rowLocks[i+1:]...)
				break
			}
		}
		e.lockWait.Broadcast()
	}
}

// fireTriggersLocked runs AFTER <event> triggers for the table (§4.1.1).
func (s *Session) fireTriggersLocked(tx *Txn, key tableKey, event string, depth int) error {
	if key.db == "" {
		return nil // temp tables have no triggers
	}
	d, err := s.eng.database(key.db)
	if err != nil {
		return nil
	}
	for _, tr := range d.triggers[key.table] {
		if tr.Event != event {
			continue
		}
		if _, err := s.execLocked(tr.Body, nil, depth+1); err != nil {
			return fmt.Errorf("engine: trigger %q: %w", tr.Name, err)
		}
	}
	return nil
}

// ---- SELECT ----

var aggregateFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func isAggregateItem(e sqlparse.Expr) bool {
	if f, ok := e.(*sqlparse.FuncExpr); ok && aggregateFuncs[f.Name] {
		return true
	}
	return false
}

// joinedRow carries the merged row of FROM (+ JOIN) with lookup metadata.
type joinedRow struct {
	data  sqltypes.Row
	left  scanRow // for FOR UPDATE locking on the FROM table
	valid bool
}

func (s *Session) execSelectLocked(tx *Txn, st *sqlparse.Select, args []sqltypes.Value) (*Result, error) {
	if st.NoTable {
		env := &evalEnv{s: s, args: args}
		res := &Result{}
		row := make(sqltypes.Row, 0, len(st.Items))
		for _, it := range st.Items {
			if it.Star {
				return nil, fmt.Errorf("engine: SELECT * requires FROM")
			}
			v, err := evalExpr(env, it.Expr)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			res.Columns = append(res.Columns, itemName(it))
		}
		res.Rows = append(res.Rows, row)
		return res, nil
	}

	t, key, err := s.lookupTableLocked(st.From)
	if err != nil {
		return nil, err
	}
	if err := s.checkTempUse(t, false); err != nil {
		return nil, err
	}
	if s.iso == Serializable && !t.Temp {
		if err := s.eng.lockTable(tx, t, st.ForUpdate); err != nil {
			return nil, err
		}
	}

	leftAlias := st.FromAlias
	if leftAlias == "" {
		leftAlias = st.From.Name
	}

	var envRows []*evalEnv
	var lockTargets []scanRow

	if st.Join == nil {
		// Point predicates on the primary key resolve through the pk index
		// (O(1)) instead of materializing the table; everything else scans
		// into a pooled buffer. WHERE is still evaluated per candidate row.
		rows, pooled := s.candidateRowsLocked(tx, key, t, st.Where, args, leftAlias, st.From.Name)
		if pooled {
			defer s.putScanBuf(rows)
		}
		for _, sr := range rows {
			env := s.rowEnv(tx, t, st.From, leftAlias, sr.data, args)
			if st.Where != nil {
				ok, err := evalBool(env, st.Where)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			envRows = append(envRows, env)
			lockTargets = append(lockTargets, sr)
		}
	} else {
		t2, key2, err := s.lookupTableLocked(st.Join.Table)
		if err != nil {
			return nil, err
		}
		if s.iso == Serializable && !t2.Temp {
			if err := s.eng.lockTable(tx, t2, false); err != nil {
				return nil, err
			}
		}
		rightAlias := st.Join.Alias
		if rightAlias == "" {
			rightAlias = st.Join.Table.Name
		}
		leftRows := s.scanInto(s.getScanBuf(), tx, key, t)
		defer s.putScanBuf(leftRows)
		rightRows := s.scanInto(s.getScanBuf(), tx, key2, t2)
		defer s.putScanBuf(rightRows)
		for _, lr := range leftRows {
			for _, rr := range rightRows {
				env := s.joinEnv(tx, t, leftAlias, lr.data, t2, rightAlias, rr.data, args)
				ok, err := evalBool(env, st.Join.On)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				if st.Where != nil {
					ok, err := evalBool(env, st.Where)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				envRows = append(envRows, env)
				lockTargets = append(lockTargets, lr)
			}
		}
	}

	if st.ForUpdate && !t.Temp && s.iso != Serializable {
		for _, sr := range lockTargets {
			if err := s.eng.lockRow(tx, t, sr.rowID); err != nil {
				return nil, err
			}
		}
	}

	// Aggregate path.
	hasAgg := len(st.GroupBy) > 0
	for _, it := range st.Items {
		if !it.Star && isAggregateItem(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		return s.aggregateSelect(st, envRows)
	}

	// ORDER BY evaluates in row scope (pre-projection).
	if len(st.OrderBy) > 0 {
		if err := sortEnvRows(envRows, st.OrderBy); err != nil {
			return nil, err
		}
	}

	res := &Result{}
	for _, it := range st.Items {
		if it.Star {
			// Expanded per-row below; headers from schema.
			for _, c := range t.Columns {
				res.Columns = append(res.Columns, c.Name)
			}
			if st.Join != nil {
				t2, _, _ := s.lookupTableLocked(st.Join.Table)
				for _, c := range t2.Columns {
					res.Columns = append(res.Columns, c.Name)
				}
			}
			continue
		}
		res.Columns = append(res.Columns, itemName(it))
	}
	for _, env := range envRows {
		var out sqltypes.Row
		for _, it := range st.Items {
			if it.Star {
				out = append(out, env.row...)
				continue
			}
			v, err := evalExpr(env, it.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}

	if st.Distinct {
		seen := make(map[uint64]bool)
		dd := res.Rows[:0]
		for _, r := range res.Rows {
			h := sqltypes.HashRow(r)
			if !seen[h] {
				seen[h] = true
				dd = append(dd, r)
			}
		}
		res.Rows = dd
	}
	applyLimit(res, st)
	return res, nil
}

// aggregateSelect computes GROUP BY / aggregate projections.
func (s *Session) aggregateSelect(st *sqlparse.Select, envRows []*evalEnv) (*Result, error) {
	type group struct {
		key  []sqltypes.Value
		rows []*evalEnv
	}
	groups := make(map[uint64]*group)
	var order []uint64
	for _, env := range envRows {
		var keyVals []sqltypes.Value
		for _, g := range st.GroupBy {
			v, err := evalExpr(env, g)
			if err != nil {
				return nil, err
			}
			keyVals = append(keyVals, v)
		}
		h := sqltypes.HashRow(keyVals)
		grp, ok := groups[h]
		if !ok {
			grp = &group{key: keyVals}
			groups[h] = grp
			order = append(order, h)
		}
		grp.rows = append(grp.rows, env)
	}
	if len(groups) == 0 && len(st.GroupBy) == 0 {
		// Aggregates over an empty set yield one row.
		groups[0] = &group{}
		order = append(order, 0)
	}

	res := &Result{}
	for _, it := range st.Items {
		res.Columns = append(res.Columns, itemName(it))
	}
	for _, h := range order {
		grp := groups[h]
		var out sqltypes.Row
		for _, it := range st.Items {
			if it.Star {
				return nil, fmt.Errorf("engine: * not allowed with aggregates")
			}
			v, err := evalAggregate(grp.rows, it.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	applyLimit(res, st)
	return res, nil
}

// evalAggregate computes an item over a group; non-aggregate expressions
// evaluate on the group's first row.
func evalAggregate(rows []*evalEnv, e sqlparse.Expr) (sqltypes.Value, error) {
	f, ok := e.(*sqlparse.FuncExpr)
	if !ok || !aggregateFuncs[f.Name] {
		if len(rows) == 0 {
			return sqltypes.Null, nil
		}
		return evalExpr(rows[0], e)
	}
	if f.Name == "COUNT" && f.Star {
		return sqltypes.NewInt(int64(len(rows))), nil
	}
	if len(f.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: %s wants one argument", f.Name)
	}
	var vals []sqltypes.Value
	for _, env := range rows {
		v, err := evalExpr(env, f.Args[0])
		if err != nil {
			return sqltypes.Null, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch f.Name {
	case "COUNT":
		return sqltypes.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqltypes.Null, nil
		}
		isFloat := false
		var si int64
		var sf float64
		for _, v := range vals {
			if v.Kind() == sqltypes.KindFloat {
				isFloat = true
			}
			si += v.Int()
			sf += v.Float()
		}
		if f.Name == "AVG" {
			return sqltypes.NewFloat(sf / float64(len(vals))), nil
		}
		if isFloat {
			return sqltypes.NewFloat(sf), nil
		}
		return sqltypes.NewInt(si), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqltypes.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := sqltypes.Compare(v, best)
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqltypes.Null, fmt.Errorf("engine: unknown aggregate %s", f.Name)
}

func itemName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlparse.ColumnRef); ok {
		return cr.Name
	}
	return it.Expr.SQL() // lint:rawsql-ok result-set column naming; the header text never re-parses
}

// sortEnvRows orders the row set by the ORDER BY keys.
func sortEnvRows(rows []*evalEnv, keys []sqlparse.OrderItem) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			vi, err := evalExpr(rows[i], k.Expr)
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := evalExpr(rows[j], k.Expr)
			if err != nil {
				sortErr = err
				return false
			}
			c := sqltypes.Compare(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func applyLimit(res *Result, st *sqlparse.Select) {
	if st.Offset > 0 {
		if st.Offset >= int64(len(res.Rows)) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[st.Offset:]
		}
	}
	if st.Limit >= 0 && int64(len(res.Rows)) > st.Limit {
		res.Rows = res.Rows[:st.Limit]
	}
}

// rowEnv builds an evaluation environment for a single-table row. It shares
// the table's precomputed column map instead of building per-row maps —
// only the env struct itself allocates, which matters because selects and
// updates build one env per candidate row.
func (s *Session) rowEnv(tx *Txn, t *Table, ref sqlparse.TableRef, alias string, row sqltypes.Row, args []sqltypes.Value) *evalEnv {
	if alias == "" {
		alias = ref.Name
	}
	return &evalEnv{
		s: s, tx: tx, args: args, row: row,
		cols:    t.colsLower,
		alias:   toLower(alias),
		refName: toLower(ref.Name),
	}
}

// joinEnv builds an environment over the concatenation of two rows.
func (s *Session) joinEnv(tx *Txn, t1 *Table, a1 string, r1 sqltypes.Row, t2 *Table, a2 string, r2 sqltypes.Row, args []sqltypes.Value) *evalEnv {
	merged := make(sqltypes.Row, 0, len(r1)+len(r2))
	merged = append(merged, r1...)
	merged = append(merged, r2...)
	env := &evalEnv{
		s: s, tx: tx, args: args, row: merged,
		cols:  make(map[string]int, len(merged)),
		qcols: make(map[string]int, len(merged)),
	}
	for i, c := range t1.Columns {
		lower := toLower(c.Name)
		if _, dup := env.cols[lower]; !dup {
			env.cols[lower] = i
		}
		env.qcols[toLower(a1)+"."+lower] = i
	}
	off := len(t1.Columns)
	for i, c := range t2.Columns {
		lower := toLower(c.Name)
		if _, dup := env.cols[lower]; !dup {
			env.cols[lower] = off + i
		}
		env.qcols[toLower(a2)+"."+lower] = off + i
	}
	return env
}

func toLower(s string) string {
	// Scan before converting: the common case (already lower-case, the
	// norm for column names in hot statements) must not allocate.
	lower := true
	for i := 0; i < len(s); i++ {
		if 'A' <= s[i] && s[i] <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return s
	}
	b := []byte(s)
	changed := false
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}
