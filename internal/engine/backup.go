package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// BackupOptions controls what a dump captures. The zero value reproduces
// the behaviour the paper complains about (§4.1.5, §4.4.1): data only — no
// users, no triggers, no stored procedures, and sequences reset — so a
// restored replica is subtly incomplete. Set the Include* fields to build a
// faithful clone.
type BackupOptions struct {
	// Databases restricts the dump; empty means all.
	Databases []string
	// IncludeUsers captures users and grants.
	IncludeUsers bool
	// IncludeCode captures triggers and stored procedures.
	IncludeCode bool
	// IncludeSequences captures sequence positions. Without it, restored
	// sequences restart and regenerate already-used keys — the §4.2.3
	// backup/restore workaround problem.
	IncludeSequences bool
}

// ColumnSpec is the gob-friendly form of a column definition (the default
// expression travels as SQL text).
type ColumnSpec struct {
	Name          string
	Type          sqltypes.Kind
	PrimaryKey    bool
	Unique        bool
	AutoIncrement bool
	NotNull       bool
	DefaultSQL    string
}

// TableDump is the serialized content and schema of one table.
type TableDump struct {
	Name    string
	Columns []ColumnSpec
	Rows    []sqltypes.Row
	AutoInc int64
}

// SequenceDump is a serialized sequence position.
type SequenceDump struct {
	Name      string
	Next      int64
	Increment int64
}

// CodeDump carries trigger and procedure definitions as SQL text.
type CodeDump struct {
	Triggers   []string
	Procedures []string
}

// DatabaseDump is one database instance in a backup.
type DatabaseDump struct {
	Name      string
	Tables    []TableDump
	Sequences []SequenceDump
	Code      CodeDump
}

// Backup is a consistent snapshot of an engine, taken at a single commit
// timestamp via MVCC (a "hot backup" that does not block writers).
type Backup struct {
	AtCommitTS uint64
	// AtSeq is the binlog position the snapshot reflects: every event with
	// Seq <= AtSeq is included, none after (binlog appends happen under the
	// engine write lock the dump shares). Replay resumes at AtSeq+1, which
	// is what ties recovery-log checkpoints to backups.
	AtSeq     uint64
	Databases []DatabaseDump
	Users     []User
}

// Dump takes a consistent snapshot at the current commit timestamp. It
// holds the engine lock as a reader, so it blocks writers for the dump's
// copying time but runs alongside other read-only statements — a hot
// backup.
func (e *Engine) Dump(opts BackupOptions) (*Backup, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ts := e.clock
	b := &Backup{AtCommitTS: ts, AtSeq: e.binlog.Head()}

	want := make(map[string]bool)
	for _, n := range opts.Databases {
		want[n] = true
	}
	names := make([]string, 0, len(e.databases))
	for n := range e.databases {
		if len(want) == 0 || want[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, dbName := range names {
		d := e.databases[dbName]
		dd := DatabaseDump{Name: dbName}
		for _, tn := range d.TableNames() {
			t := d.tables[tn]
			td := TableDump{Name: tn, Columns: specsFromColumns(t.Columns)}
			for _, id := range t.rowOrder {
				if v := t.rows[id].visible(ts); v != nil {
					td.Rows = append(td.Rows, v.data.Clone())
				}
			}
			if opts.IncludeSequences {
				td.AutoInc = t.autoInc
			}
			dd.Tables = append(dd.Tables, td)
		}
		if opts.IncludeSequences {
			seqNames := make([]string, 0, len(d.sequences))
			for sn := range d.sequences {
				seqNames = append(seqNames, sn)
			}
			sort.Strings(seqNames)
			for _, sn := range seqNames {
				sq := d.sequences[sn]
				dd.Sequences = append(dd.Sequences, SequenceDump{Name: sn, Next: sq.Next, Increment: sq.Increment})
			}
		}
		if opts.IncludeCode {
			tabNames := make([]string, 0, len(d.triggers))
			for tn := range d.triggers {
				tabNames = append(tabNames, tn)
			}
			sort.Strings(tabNames)
			for _, tn := range tabNames {
				for _, tr := range d.triggers[tn] {
					dd.Code.Triggers = append(dd.Code.Triggers,
						"CREATE TRIGGER "+tr.Name+" AFTER "+tr.Event+" ON "+tr.Table+" DO "+tr.Body.SQL()) // lint:rawsql-ok backup stores raw text by design; trigger bodies carry no ? placeholders
				}
			}
			procNames := make([]string, 0, len(d.procedures))
			for pn := range d.procedures {
				procNames = append(procNames, pn)
			}
			sort.Strings(procNames)
			for _, pn := range procNames {
				p := d.procedures[pn]
				stub := &procedureSQL{p}
				dd.Code.Procedures = append(dd.Code.Procedures, stub.SQL())
			}
		}
		b.Databases = append(b.Databases, dd)
	}
	if opts.IncludeUsers {
		for name, u := range e.users {
			cu := *u
			cu.Grants = make(map[string]bool, len(u.Grants))
			for k, v := range u.Grants {
				cu.Grants[k] = v
			}
			_ = name
			b.Users = append(b.Users, cu)
		}
		sort.Slice(b.Users, func(i, j int) bool { return b.Users[i].Name < b.Users[j].Name })
	}
	return b, nil
}

// procedureSQL renders a procedure back to CREATE PROCEDURE text.
type procedureSQL struct{ p *Procedure }

func (ps *procedureSQL) SQL() string {
	var buf bytes.Buffer
	buf.WriteString("CREATE PROCEDURE " + ps.p.Name + "(")
	for i, pr := range ps.p.Params {
		if i > 0 {
			buf.WriteString(", ")
		}
		buf.WriteString(pr)
	}
	buf.WriteString(") BEGIN ")
	for _, st := range ps.p.Body {
		buf.WriteString(st.SQL()) // lint:rawsql-ok backup stores raw text by design; procedure bodies carry no ? placeholders
		buf.WriteString("; ")
	}
	buf.WriteString("END")
	return buf.String()
}

// Restore loads a backup into the engine, replacing any existing database
// of the same name. The engine's commit clock advances so subsequent events
// order after the restore.
func (e *Engine) Restore(b *Backup) error {
	// Re-create schema objects through sessions so the code path is the
	// same as regular DDL. Triggers/procedures restore via their SQL.
	s := e.NewSession("restore")
	defer s.Close()
	e.mu.Lock()
	for _, dd := range b.Databases {
		delete(e.databases, dd.Name)
		e.databases[dd.Name] = newDatabase(dd.Name)
		d := e.databases[dd.Name]
		for _, td := range dd.Tables {
			cols, err := columnsFromSpecs(td.Columns)
			if err != nil {
				e.mu.Unlock()
				return err
			}
			t := newTable(td.Name, cols, false)
			for _, row := range td.Rows {
				id := t.nextRowID
				t.nextRowID++
				t.rows[id] = &rowChain{versions: []rowVersion{{createdTS: e.clock, data: row.Clone()}}}
				t.rowOrder = append(t.rowOrder, id)
				t.indexPK(row, id)
			}
			t.autoInc = td.AutoInc
			d.tables[td.Name] = t
		}
		for _, sd := range dd.Sequences {
			d.sequences[sd.Name] = &Sequence{Name: sd.Name, Next: sd.Next, Increment: sd.Increment}
		}
	}
	for _, u := range b.Users {
		cu := u
		e.users[u.Name] = &cu
	}
	e.clock++
	e.mu.Unlock()

	// Code objects go through the SQL path (needs the session's DB).
	for _, dd := range b.Databases {
		if len(dd.Code.Triggers)+len(dd.Code.Procedures) == 0 {
			continue
		}
		if _, err := s.Exec("USE " + dd.Name); err != nil {
			return err
		}
		for _, sql := range dd.Code.Triggers {
			if _, err := s.Exec(sql); err != nil {
				return fmt.Errorf("engine: restore trigger: %w", err)
			}
		}
		for _, sql := range dd.Code.Procedures {
			if _, err := s.Exec(sql); err != nil {
				return fmt.Errorf("engine: restore procedure: %w", err)
			}
		}
	}
	return nil
}

// Encode serializes the backup (gob) for transport to another node.
func (b *Backup) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBackup deserializes a backup produced by Encode.
func DecodeBackup(data []byte) (*Backup, error) {
	var b Backup
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// specsFromColumns converts engine columns to their serializable form.
func specsFromColumns(cols []Column) []ColumnSpec {
	out := make([]ColumnSpec, len(cols))
	for i, c := range cols {
		out[i] = ColumnSpec{
			Name: c.Name, Type: c.Type, PrimaryKey: c.PrimaryKey,
			Unique: c.Unique, AutoIncrement: c.AutoIncrement, NotNull: c.NotNull,
		}
		if c.Default != nil {
			out[i].DefaultSQL = c.Default.SQL() // lint:rawsql-ok backup stores raw text by design; DEFAULT expressions carry no ? placeholders
		}
	}
	return out
}

// columnsFromSpecs converts serialized column specs back, re-parsing any
// default expression.
func columnsFromSpecs(specs []ColumnSpec) ([]Column, error) {
	out := make([]Column, len(specs))
	for i, sp := range specs {
		out[i] = Column{
			Name: sp.Name, Type: sp.Type, PrimaryKey: sp.PrimaryKey,
			Unique: sp.Unique, AutoIncrement: sp.AutoIncrement, NotNull: sp.NotNull,
		}
		if sp.DefaultSQL != "" {
			st, err := sqlparse.Parse("SELECT " + sp.DefaultSQL)
			if err != nil {
				return nil, fmt.Errorf("engine: bad default expression %q: %v", sp.DefaultSQL, err)
			}
			out[i].Default = st.(*sqlparse.Select).Items[0].Expr
		}
	}
	return out, nil
}
