package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sqlparse"
)

// These tests pin down the plan-cache invalidation story: the statement
// cache stores syntax, not schema-bound plans, so DDL can never leave a
// cached statement producing wrong results — names re-resolve on every
// execution. The tests run the same cached texts across DROP/CREATE schema
// changes and under concurrent access (-race) to prove it.

func TestPlanCacheSurvivesDDL(t *testing.T) {
	sqlparse.PurgeCache()
	eng := New(Config{})
	s := eng.NewSession("app")
	defer s.Close()
	if err := s.ExecScript("CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR)"); err != nil {
		t.Fatal(err)
	}

	const insert = "INSERT INTO t (id, v) VALUES (1, 'old')"
	const query = "SELECT * FROM t WHERE id = 1"
	if _, err := s.Exec(insert); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(query) // now cached
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "old" {
		t.Fatalf("unexpected pre-DDL result: %+v", res.Rows)
	}

	// Drop and recreate the table with a different shape. The cached
	// SELECT/INSERT texts must track the new schema, not the old one.
	if err := s.ExecScript("DROP TABLE t;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR, extra INT DEFAULT 7)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(insert); err != nil { // same cached text
		t.Fatal(err)
	}
	res, err = s.Exec(query) // same cached text
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 3 || res.Rows[0][2].Int() != 7 {
		t.Fatalf("cached statement did not see the new schema: %+v", res.Rows)
	}

	// Dropping the table entirely must surface the same error a fresh
	// parse would, not stale results.
	if _, err := s.Exec("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	_, errCached := s.Exec(query)
	fresh, perr := sqlparse.Parse(query)
	if perr != nil {
		t.Fatal(perr)
	}
	_, errFresh := s.ExecStmt(fresh)
	if errCached == nil || errFresh == nil {
		t.Fatal("query against dropped table must fail on both paths")
	}
	if errCached.Error() != errFresh.Error() {
		t.Fatalf("cached path error %q diverges from fresh parse error %q", errCached, errFresh)
	}
}

// TestPlanCacheConcurrentDDL runs cached point reads from several sessions
// while another session drops and recreates the table in a loop. Readers may
// observe "unknown table" between the drop and the recreate — that is the
// correct serialization — but must never see stale schema, wrong rows, or a
// data race (-race enforces the latter).
func TestPlanCacheConcurrentDDL(t *testing.T) {
	sqlparse.PurgeCache()
	eng := New(Config{})
	admin := eng.NewSession("admin")
	defer admin.Close()
	if err := admin.ExecScript("CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v INT); INSERT INTO t (id, v) VALUES (1, 42)"); err != nil {
		t.Fatal(err)
	}

	const query = "SELECT v FROM t WHERE id = 1"
	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := eng.NewSession("reader")
			defer s.Close()
			if _, err := s.Exec("USE d"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300; i++ {
				res, err := s.Exec(query)
				if err != nil {
					if strings.Contains(err.Error(), "unknown table") {
						continue // in the DROP..CREATE window
					}
					t.Errorf("reader: %v", err)
					return
				}
				if len(res.Rows) == 1 && res.Rows[0][0].Int() != 42 {
					t.Errorf("reader saw wrong value: %v", res.Rows)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := admin.ExecScript("DROP TABLE t;" +
			"CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := admin.Exec("INSERT INTO t (id, v) VALUES (1, 42)"); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

// TestPreparedStmtAcrossDDL covers the Prepare handle the same way: a
// handle prepared before a DROP/CREATE keeps working against the new
// schema.
func TestPreparedStmtAcrossDDL(t *testing.T) {
	eng := New(Config{})
	s := eng.NewSession("app")
	defer s.Close()
	if err := s.ExecScript("CREATE DATABASE d; USE d;" +
		"CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Prepare("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExecScript("DROP TABLE t; CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("prepared handle saw stale table: %v", res.Rows)
	}
}
