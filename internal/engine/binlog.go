package engine

import (
	"sync"
)

// Event is one committed transaction (or DDL statement) in the binlog: the
// unit shipped by master-slave replication and consumed by the recovery log.
// It carries both representations — the executed statements (statement-based
// shipping) and the captured write set (transaction-based shipping) — so the
// middleware can choose either mode (§4.3.2).
type Event struct {
	Seq      uint64 // position in the binlog, 1-based, dense
	CommitTS uint64
	TxnID    uint64
	Stmts    []string
	WriteSet *WriteSet
	DDL      bool
	User     string
	Database string
}

// Tables returns the distinct db-qualified tables the event touches.
func (ev Event) Tables() []string {
	if ev.WriteSet != nil && len(ev.WriteSet.Ops) > 0 {
		return ev.WriteSet.Tables()
	}
	return nil
}

// subscriber is an unbounded buffered fan-out target. The queue is unbounded
// on purpose: a lagging slave accumulates backlog rather than throttling the
// master, exactly the behaviour behind the paper's multi-hour failover
// horror stories (§2.2).
type subscriber struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Event
	ch     chan Event
	closed bool
}

func newSubscriber(buf int) *subscriber {
	s := &subscriber{ch: make(chan Event, buf)}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

func (s *subscriber) push(ev Event) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ev)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// pump forwards queued events to the channel, closing it when the
// subscription ends and the queue drains.
func (s *subscriber) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			close(s.ch)
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		closed := s.closed
		s.mu.Unlock()
		if closed {
			// Drop remaining backlog quickly once unsubscribed.
			continue
		}
		s.ch <- ev
	}
}

// Binlog is an append-only in-memory log of committed events with
// subscription support. It is safe for concurrent use.
type Binlog struct {
	mu       sync.Mutex
	events   []Event
	base     uint64 // seq of events[0] minus 1 (events trimmed below base)
	capacity int
	subs     map[int]*subscriber
	nextSub  int
}

func newBinlog(capacity int) *Binlog {
	return &Binlog{capacity: capacity, subs: make(map[int]*subscriber)}
}

// append adds an event, assigning its sequence number, and fans it out to
// subscribers without blocking.
func (b *Binlog) append(ev Event) uint64 {
	b.mu.Lock()
	ev.Seq = b.base + uint64(len(b.events)) + 1
	b.events = append(b.events, ev)
	if b.capacity > 0 && len(b.events) > b.capacity {
		drop := len(b.events) - b.capacity
		b.base += uint64(drop)
		b.events = append([]Event(nil), b.events[drop:]...)
	}
	for _, s := range b.subs {
		s.push(ev)
	}
	b.mu.Unlock()
	return ev.Seq
}

// Head returns the sequence number of the latest event (0 when empty).
func (b *Binlog) Head() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base + uint64(len(b.events))
}

// ReadFrom returns up to max events with Seq > after. max <= 0 means all.
// The second result reports whether events at or below `after` have been
// trimmed (the subscriber must resynchronize from a backup instead, §4.4.2).
func (b *Binlog) ReadFrom(after uint64, max int) ([]Event, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if after < b.base {
		return nil, true
	}
	idx := int(after - b.base)
	if idx >= len(b.events) {
		return nil, false
	}
	out := b.events[idx:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return append([]Event(nil), out...), false
}

// Reset discards all events and restarts the sequence space so the next
// append is assigned base+1. Recovery uses it after restoring a backup into
// a replica: the restored engine's future commits must continue the
// cluster's replication position space from the snapshot's position, not
// from whatever this engine's previous life had appended.
func (b *Binlog) Reset(base uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = nil
	b.base = base
}

// Subscribe returns a channel receiving every event appended after the call,
// plus an unsubscribe function. Events queue without bound between the
// append and the receiver; the returned channel carries them in order.
func (b *Binlog) Subscribe(buf int) (<-chan Event, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextSub
	b.nextSub++
	s := newSubscriber(buf)
	b.subs[id] = s
	return s.ch, func() {
		b.mu.Lock()
		sub, ok := b.subs[id]
		if ok {
			delete(b.subs, id)
		}
		b.mu.Unlock()
		if ok {
			sub.close()
		}
	}
}

// BacklogDepth reports the number of undelivered events across subscribers;
// used by lag probes in tests.
func (b *Binlog) BacklogDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, s := range b.subs {
		s.mu.Lock()
		n += len(s.queue) + len(s.ch)
		s.mu.Unlock()
	}
	return n
}

// emitDDLLocked records a DDL statement in the binlog with its own commit
// timestamp. Caller holds e.mu.
func (e *Engine) emitDDLLocked(sql string, s *Session) {
	e.clock++
	user, db := "", ""
	if s != nil {
		user, db = s.user, s.currentDB
	}
	e.binlog.append(Event{
		CommitTS: e.clock,
		Stmts:    []string{sql},
		WriteSet: &WriteSet{},
		DDL:      true,
		User:     user,
		Database: db,
	})
}
