package engine

import (
	"fmt"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// evalEnv is the expression evaluation context: the current row (if any),
// bound parameters, and the session for variables, sequences and
// non-deterministic functions.
type evalEnv struct {
	s    *Session
	tx   *Txn
	cols map[string]int // lower-cased column name -> row index (single-table envs share the table's map read-only)
	// qcols resolves "qualifier.column" for join envs, which merge two
	// tables. Single-table envs leave it nil: their qualifier check is a
	// string compare against alias/refName, so building an env per row
	// costs no map construction (rowEnv was 73% of all allocations on the
	// wire PK-lookup hot path before this split).
	qcols          map[string]int
	alias, refName string // lower-cased qualifiers a single-table env answers to
	row            sqltypes.Row
	args           []sqltypes.Value
}

// evalBool evaluates a predicate with SQL semantics: NULL counts as false.
func evalBool(env *evalEnv, e sqlparse.Expr) (bool, error) {
	v, err := evalExpr(env, e)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.Bool(), nil
}

// evalExpr evaluates an expression tree.
func evalExpr(env *evalEnv, e sqlparse.Expr) (sqltypes.Value, error) {
	switch e := e.(type) {
	case *sqlparse.Literal:
		return e.Val, nil
	case *sqlparse.ColumnRef:
		return env.lookupColumn(e)
	case *sqlparse.VarRef:
		if env.s != nil {
			if v, ok := env.s.vars[e.Name]; ok {
				return v.val, nil
			}
		}
		return sqltypes.Null, nil
	case *sqlparse.Param:
		if e.Index >= len(env.args) {
			return sqltypes.Null, fmt.Errorf("engine: parameter %d not bound", e.Index+1)
		}
		return env.args[e.Index], nil
	case *sqlparse.BinaryExpr:
		return evalBinary(env, e)
	case *sqlparse.UnaryExpr:
		v, err := evalExpr(env, e.Operand)
		if err != nil {
			return sqltypes.Null, err
		}
		switch e.Op {
		case "-":
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			if v.Kind() == sqltypes.KindFloat {
				return sqltypes.NewFloat(-v.Float()), nil
			}
			return sqltypes.NewInt(-v.Int()), nil
		case "NOT":
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(!v.Bool()), nil
		}
		return sqltypes.Null, fmt.Errorf("engine: unknown unary operator %q", e.Op)
	case *sqlparse.IsNullExpr:
		v, err := evalExpr(env, e.Operand)
		if err != nil {
			return sqltypes.Null, err
		}
		res := v.IsNull()
		if e.Negate {
			res = !res
		}
		return sqltypes.NewBool(res), nil
	case *sqlparse.BetweenExpr:
		v, err := evalExpr(env, e.Operand)
		if err != nil {
			return sqltypes.Null, err
		}
		lo, err := evalExpr(env, e.Lo)
		if err != nil {
			return sqltypes.Null, err
		}
		hi, err := evalExpr(env, e.Hi)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqltypes.Null, nil
		}
		in := sqltypes.Compare(v, lo) >= 0 && sqltypes.Compare(v, hi) <= 0
		if e.Negate {
			in = !in
		}
		return sqltypes.NewBool(in), nil
	case *sqlparse.InExpr:
		return evalIn(env, e)
	case *sqlparse.FuncExpr:
		return evalFunc(env, e)
	}
	return sqltypes.Null, fmt.Errorf("engine: cannot evaluate %T", e)
}

func (env *evalEnv) lookupColumn(cr *sqlparse.ColumnRef) (sqltypes.Value, error) {
	if env.row == nil {
		// Procedure parameters look like bare identifiers.
		if env.s != nil {
			if v, ok := env.s.lookupParam(cr.Name); ok && cr.Qualifier == "" {
				return v, nil
			}
		}
		return sqltypes.Null, fmt.Errorf("engine: column %q referenced outside row context", cr.SQL())
	}
	if cr.Qualifier != "" {
		if env.qcols != nil {
			if i, ok := env.qcols[toLower(cr.Qualifier)+"."+toLower(cr.Name)]; ok {
				return env.row[i], nil
			}
			return sqltypes.Null, fmt.Errorf("engine: unknown column %q", cr.SQL())
		}
		if q := toLower(cr.Qualifier); q == env.alias || q == env.refName {
			if i, ok := env.cols[toLower(cr.Name)]; ok {
				return env.row[i], nil
			}
		}
		return sqltypes.Null, fmt.Errorf("engine: unknown column %q", cr.SQL())
	}
	if i, ok := env.cols[toLower(cr.Name)]; ok {
		return env.row[i], nil
	}
	// Fall back to procedure parameters, then session vars.
	if env.s != nil {
		if v, ok := env.s.lookupParam(cr.Name); ok {
			return v, nil
		}
	}
	return sqltypes.Null, fmt.Errorf("engine: unknown column %q", cr.Name)
}

func evalBinary(env *evalEnv, e *sqlparse.BinaryExpr) (sqltypes.Value, error) {
	switch e.Op {
	case "AND":
		lv, err := evalBool(env, e.Left)
		if err != nil {
			return sqltypes.Null, err
		}
		if !lv {
			return sqltypes.NewBool(false), nil
		}
		rv, err := evalBool(env, e.Right)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(rv), nil
	case "OR":
		lv, err := evalBool(env, e.Left)
		if err != nil {
			return sqltypes.Null, err
		}
		if lv {
			return sqltypes.NewBool(true), nil
		}
		rv, err := evalBool(env, e.Right)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(rv), nil
	}
	l, err := evalExpr(env, e.Left)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := evalExpr(env, e.Right)
	if err != nil {
		return sqltypes.Null, err
	}
	switch e.Op {
	case "+", "-", "*", "/", "%":
		return sqltypes.Arith(e.Op, l, r)
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		c := sqltypes.Compare(l, r)
		var ok bool
		switch e.Op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return sqltypes.NewBool(ok), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(likeMatch(l.Str(), r.Str())), nil
	}
	return sqltypes.Null, fmt.Errorf("engine: unknown operator %q", e.Op)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func evalIn(env *evalEnv, e *sqlparse.InExpr) (sqltypes.Value, error) {
	v, err := evalExpr(env, e.Left)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	var found bool
	if e.Sub != nil {
		if env.s == nil || env.tx == nil {
			return sqltypes.Null, fmt.Errorf("engine: subquery not allowed in this context")
		}
		// Uncorrelated subqueries only: evaluated once per outer row for
		// simplicity (the engine is a substrate, not an optimizer).
		// lint:holds env.s.eng.mu — expression evaluation only runs inside execLocked
		res, err := env.s.execSelectLocked(env.tx, e.Sub, env.args)
		if err != nil {
			return sqltypes.Null, err
		}
		for _, row := range res.Rows {
			if len(row) > 0 && sqltypes.Equal(row[0], v) {
				found = true
				break
			}
		}
	} else {
		for _, item := range e.List {
			iv, err := evalExpr(env, item)
			if err != nil {
				return sqltypes.Null, err
			}
			if sqltypes.Equal(iv, v) {
				found = true
				break
			}
		}
	}
	if e.Negate {
		found = !found
	}
	return sqltypes.NewBool(found), nil
}

func evalFunc(env *evalEnv, e *sqlparse.FuncExpr) (sqltypes.Value, error) {
	name := strings.ToUpper(e.Name)
	argVal := func(i int) (sqltypes.Value, error) {
		if i >= len(e.Args) {
			return sqltypes.Null, fmt.Errorf("engine: %s: missing argument %d", name, i+1)
		}
		return evalExpr(env, e.Args[i])
	}
	switch name {
	case "NOW", "CURRENT_TIMESTAMP":
		// Engine-local clock: replicas may disagree (§4.3.2).
		if env.s == nil {
			return sqltypes.Null, fmt.Errorf("engine: %s needs a session", name)
		}
		return sqltypes.NewTime(env.s.eng.nowValue()), nil
	case "RAND", "RANDOM":
		if env.s == nil {
			return sqltypes.Null, fmt.Errorf("engine: %s needs a session", name)
		}
		// Engine-local PRNG: evaluated per call (and therefore per row in
		// UPDATE t SET x = rand()), the canonical statement-replication
		// divergence of §4.3.2.
		return sqltypes.NewFloat(env.s.eng.randFloat()), nil
	case "NEXTVAL":
		return evalNextval(env, e)
	case "ABS":
		v, err := argVal(0)
		if err != nil || v.IsNull() {
			return v, err
		}
		if v.Kind() == sqltypes.KindFloat {
			f := v.Float()
			if f < 0 {
				f = -f
			}
			return sqltypes.NewFloat(f), nil
		}
		n := v.Int()
		if n < 0 {
			n = -n
		}
		return sqltypes.NewInt(n), nil
	case "LOWER":
		v, err := argVal(0)
		if err != nil || v.IsNull() {
			return v, err
		}
		return sqltypes.NewString(strings.ToLower(v.Str())), nil
	case "UPPER":
		v, err := argVal(0)
		if err != nil || v.IsNull() {
			return v, err
		}
		return sqltypes.NewString(strings.ToUpper(v.Str())), nil
	case "LENGTH":
		v, err := argVal(0)
		if err != nil || v.IsNull() {
			return v, err
		}
		return sqltypes.NewInt(int64(len(v.Str()))), nil
	case "COALESCE":
		for i := range e.Args {
			v, err := argVal(i)
			if err != nil {
				return sqltypes.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return sqltypes.Null, nil
	case "MOD":
		a, err := argVal(0)
		if err != nil {
			return sqltypes.Null, err
		}
		b, err := argVal(1)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.Arith("%", a, b)
	case "BUCKET":
		// BUCKET(v, n) is the router's hash-bucket function (HashValue % n),
		// exposed to the engine so migration ownership predicates evaluate
		// with exactly the routing layer's arithmetic.
		v, err := argVal(0)
		if err != nil {
			return sqltypes.Null, err
		}
		n, err := argVal(1)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() || n.IsNull() {
			return sqltypes.Null, nil
		}
		if n.Int() <= 0 {
			return sqltypes.Null, fmt.Errorf("engine: BUCKET needs a positive bucket count, got %d", n.Int())
		}
		return sqltypes.NewInt(int64(sqltypes.HashValue(v) % uint64(n.Int()))), nil
	}
	return sqltypes.Null, fmt.Errorf("engine: unknown function %q", name)
}

// evalNextval advances a sequence. Sequences are non-transactional: the
// value is consumed immediately and never returned on rollback, producing
// holes (§4.2.3).
func evalNextval(env *evalEnv, e *sqlparse.FuncExpr) (sqltypes.Value, error) {
	if env.s == nil {
		return sqltypes.Null, fmt.Errorf("engine: nextval needs a session")
	}
	if len(e.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: nextval wants one argument")
	}
	nameV, err := evalExpr(env, e.Args[0])
	if err != nil {
		return sqltypes.Null, err
	}
	name := nameV.Str()
	dbName := env.s.currentDB
	if i := strings.IndexByte(name, '.'); i > 0 {
		dbName, name = name[:i], name[i+1:]
	}
	if dbName == "" {
		return sqltypes.Null, ErrNoDatabase
	}
	d, err := env.s.eng.database(dbName)
	if err != nil {
		return sqltypes.Null, err
	}
	seq, ok := d.sequences[name]
	if !ok {
		return sqltypes.Null, fmt.Errorf("engine: unknown sequence %q", name)
	}
	v := seq.Next
	seq.Next += seq.Increment
	return sqltypes.NewInt(v), nil
}
