// Package engine implements an in-memory multi-database SQL engine: the
// RDBMS substrate under the replication middleware.
//
// It deliberately models the engine-level behaviours §4.1–§4.2 of the paper
// identifies as replication hazards:
//
//   - multiple database instances per engine, with cross-database statements
//     and triggers (§4.1.1);
//   - several isolation levels — read committed (the production default),
//     snapshot isolation via MVCC, and serializable via table-level 2PL —
//     selectable per session (§4.1.2);
//   - vendor behaviour profiles: whether an error aborts the transaction
//     (PostgreSQL) or not (MySQL), whether snapshot isolation exists at all
//     (Sybase), temp-table rules (§4.1.2–§4.1.4);
//   - sequences and auto-increment counters that are non-transactional and
//     never roll back (§4.2.3);
//   - write-set capture with the documented blind spots: sequence and
//     auto-increment state is not part of the write set (§4.3.2);
//   - users/grants kept outside table data so naive backups miss them
//     (§4.1.5).
package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// IsolationLevel selects the concurrency control mode of a session.
type IsolationLevel int

// Supported isolation levels.
const (
	// ReadCommitted reads the latest committed state before each
	// statement. It is the default everywhere in production (§4.1.2).
	ReadCommitted IsolationLevel = iota
	// Snapshot gives each transaction a fixed MVCC snapshot with
	// first-committer-wins write conflicts.
	Snapshot
	// Serializable uses two-phase table-level locking.
	Serializable
)

func (l IsolationLevel) String() string {
	switch l {
	case ReadCommitted:
		return "READ COMMITTED"
	case Snapshot:
		return "SNAPSHOT"
	case Serializable:
		return "SERIALIZABLE"
	}
	return fmt.Sprintf("IsolationLevel(%d)", int(l))
}

// Profile captures the vendor-specific behaviours that §4.1 shows break
// "database-agnostic" middleware.
type Profile struct {
	// Name identifies the profile ("postgres", "mysql", "sybase", ...).
	Name string
	// AbortTxnOnError: when true (PostgreSQL), any statement error poisons
	// the transaction; further statements fail until ROLLBACK. When false
	// (MySQL), the transaction continues (§4.1.2).
	AbortTxnOnError bool
	// SupportsSnapshot: Sybase and older MySQL have no snapshot isolation;
	// SET ISOLATION LEVEL SNAPSHOT fails on such engines (§4.1.2).
	SupportsSnapshot bool
	// TempTablesInTxn: Sybase forbids temporary-table use inside explicit
	// transactions (§4.1.4).
	TempTablesInTxn bool
	// TempTablesDropOnCommit frees temp tables at commit instead of at
	// disconnect (§4.1.4: "other implementations free temporary tables at
	// commit time").
	TempTablesDropOnCommit bool
	// DefaultIsolation is the level a fresh session starts with.
	DefaultIsolation IsolationLevel
}

// Predefined vendor profiles.
var (
	// ProfilePostgres aborts transactions on error and supports SI.
	ProfilePostgres = Profile{Name: "postgres", AbortTxnOnError: true, SupportsSnapshot: true, TempTablesInTxn: true, DefaultIsolation: ReadCommitted}
	// ProfileMySQL continues transactions after errors.
	ProfileMySQL = Profile{Name: "mysql", AbortTxnOnError: false, SupportsSnapshot: true, TempTablesInTxn: true, DefaultIsolation: ReadCommitted}
	// ProfileSybase has no snapshot isolation and forbids temp tables in
	// transactions.
	ProfileSybase = Profile{Name: "sybase", AbortTxnOnError: false, SupportsSnapshot: false, TempTablesInTxn: false, DefaultIsolation: ReadCommitted}
)

// Config parameterizes an Engine.
type Config struct {
	// Profile selects vendor behaviour; zero value behaves like Postgres.
	Profile Profile
	// LockTimeout bounds how long a writer waits for a row lock before
	// giving up — the timeout-based deadlock resolution the paper
	// describes. Zero means 2 s.
	LockTimeout time.Duration
	// RandSeed seeds the engine-local RAND() source. Two replicas given
	// different seeds reproduce the §4.3.2 divergence; same seeds make
	// rand deterministic for tests.
	RandSeed int64
	// Now supplies the clock for now()/current_timestamp; nil means
	// time.Now. Injectable so replicas can disagree about time.
	Now func() time.Time
	// BinlogCapacity bounds the retained binlog; zero keeps everything.
	BinlogCapacity int
	// RequireAuth makes session creation demand a known user (§4.1.5).
	RequireAuth bool
	// ExecCost models per-statement service time spent inside the engine's
	// concurrency scope: shared for parallel read-only statements, exclusive
	// for writes. Zero (the default) executes at memory speed. Benchmarks
	// and tests set it to make lock-model scalability shapes reproducible on
	// a single machine, the same technique ReplicaConfig.ReadCost/WriteCost
	// use one layer up.
	ExecCost time.Duration
}

// Engine is a single replica's database engine: a set of database
// instances plus users, guarded by one reader/writer lock. Write statements
// (DML, DDL, commits, anything that touches lock tables) hold mu
// exclusively; read-only statements — plain SELECT and SHOW under
// non-serializable isolation — hold it shared, so MVCC snapshot scans from
// many sessions proceed in parallel. Serializable sessions stay on the
// exclusive path because their table-level 2PL mutates lock state even for
// reads. Statement execution is short (in-memory) unless Config.ExecCost
// models a service time; the replication layer models additional service
// time outside the engine.
type Engine struct {
	mu        sync.RWMutex
	cfg       Config
	databases map[string]*Database
	users     map[string]*User

	// clock is the logical commit timestamp, incremented at each commit.
	// It is written only under mu held exclusively and may be read under
	// either lock mode.
	clock uint64
	// nextTxnID and nextSess are atomics because transactions and sessions
	// begin on the shared read path too.
	nextTxnID atomic.Uint64
	nextSess  atomic.Int64

	lockWait *sync.Cond // broadcast when any lock is released; waiters hold mu exclusively

	// rngMu guards rng separately from mu: RAND() is legal in read-only
	// statements running on the shared path.
	rngMu  sync.Mutex
	rng    *rand.Rand
	binlog *Binlog
}

// User is an authentication principal with per-database grants (§4.1.5).
type User struct {
	Name     string
	Password string
	Grants   map[string]bool // database name -> allowed
}

// New creates an engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.Profile.Name == "" {
		cfg.Profile = ProfilePostgres
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{
		cfg:       cfg,
		databases: make(map[string]*Database),
		users:     make(map[string]*User),
		rng:       rand.New(rand.NewSource(cfg.RandSeed)),
		binlog:    newBinlog(cfg.BinlogCapacity),
	}
	e.lockWait = sync.NewCond(&e.mu)
	return e
}

// Profile returns the engine's vendor profile.
func (e *Engine) Profile() Profile { return e.cfg.Profile }

// Binlog returns the engine's committed-transaction log.
func (e *Engine) Binlog() *Binlog { return e.binlog }

// CommitTS returns the current logical commit timestamp (the number of
// committed write transactions).
func (e *Engine) CommitTS() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.clock
}

// CreateUser registers an authentication principal.
func (e *Engine) CreateUser(name, password string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.users[name]; ok {
		return fmt.Errorf("engine: user %q already exists", name)
	}
	e.users[name] = &User{Name: name, Password: password, Grants: make(map[string]bool)}
	return nil
}

// SetPassword replaces an existing user's password (operators re-keying a
// daemon principal; a checkpoint restore may have brought the user back
// with an older credential).
func (e *Engine) SetPassword(name, password string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.users[name]
	if !ok {
		return fmt.Errorf("engine: unknown user %q", name)
	}
	u.Password = password
	return nil
}

// Grant allows user access to database db.
func (e *Engine) Grant(db, user string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.users[user]
	if !ok {
		return fmt.Errorf("engine: unknown user %q", user)
	}
	u.Grants[db] = true
	return nil
}

// Users returns a copy of the user table (for backup tools that choose to
// capture access control, fixing the §4.1.5 gap).
func (e *Engine) Users() []User {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]User, 0, len(e.users))
	for _, u := range e.users {
		cu := *u
		cu.Grants = make(map[string]bool, len(u.Grants))
		for k, v := range u.Grants {
			cu.Grants[k] = v
		}
		out = append(out, cu)
	}
	return out
}

// Authenticate checks credentials; used by the wire server.
func (e *Engine) Authenticate(user, password string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.cfg.RequireAuth {
		return nil
	}
	u, ok := e.users[user]
	if !ok || u.Password != password {
		return fmt.Errorf("engine: authentication failed for %q", user)
	}
	return nil
}

// NewSession opens a session for user. When RequireAuth is set, the user
// must exist (the caller should have authenticated already). Sessions can
// be opened concurrently without taking the engine lock.
func (e *Engine) NewSession(user string) *Session {
	return &Session{
		eng:        e,
		id:         e.nextSess.Add(1),
		user:       user,
		iso:        e.cfg.Profile.DefaultIsolation,
		vars:       make(map[string]varEntry),
		tempTables: make(map[string]*Table),
	}
}

// DatabaseNames lists database instances in creation-independent (sorted by
// name at the caller's discretion) order.
func (e *Engine) DatabaseNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.databases))
	for name := range e.databases {
		out = append(out, name)
	}
	return out
}

func (e *Engine) database(name string) (*Database, error) {
	db, ok := e.databases[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown database %q", name)
	}
	return db, nil
}

// nowValue returns the engine clock reading.
func (e *Engine) nowValue() time.Time { return e.cfg.Now() }

// randFloat returns the next engine-local random number. Guarded by rngMu,
// not mu, so RAND() works on the shared read path.
func (e *Engine) randFloat() float64 {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return e.rng.Float64()
}
