package engine

import (
	"fmt"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// Stmt is a prepared statement: a parsed AST pinned to the session that
// prepared it. Exec binds ?-parameters and runs the statement without any
// parsing — the fastest path through the engine, used by drivers that
// prepare once and execute many times. Like the session itself, a Stmt is
// not safe for concurrent use.
type Stmt struct {
	s   *Session
	st  sqlparse.Statement
	sql string
}

// Prepare parses sql once (through the process-wide statement cache) and
// returns a statement handle whose Exec skips parsing entirely.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	if s.closed {
		return nil, fmt.Errorf("engine: session closed")
	}
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{s: s, st: st, sql: sql}, nil
}

// Exec runs the prepared statement with the given parameter bindings.
func (p *Stmt) Exec(args ...sqltypes.Value) (*Result, error) {
	return p.s.ExecStmtArgs(p.st, args...)
}

// SQL returns the statement text the handle was prepared from.
func (p *Stmt) SQL() string { return p.sql }

// Statement exposes the parsed AST (shared and immutable).
func (p *Stmt) Statement() sqlparse.Statement { return p.st }
