package engine

import (
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// This file implements the primary-key point-lookup fast path: a per-table
// hash index from primary-key value to internal rowIDs, plus the planner
// check that turns `WHERE pk = <constant|param>` SELECT/UPDATE/DELETE into
// an O(1) MVCC chain lookup instead of materializing the whole table.
//
// Index semantics. pkIndex maps HashValue(pk) -> rowIDs whose version chain
// has EVER committed a version carrying that pk. It is an over-approximate
// accelerator, not the truth: lookups always re-verify by walking the
// chain's visible-at-snapshot version and comparing the stored key with
// sqltypes.Equal. That makes the index trivially correct across MVCC:
//
//   - rollback / first-committer-wins aborts: nothing is indexed before
//     commit, so an aborted transaction leaves no trace;
//   - deletes: the chain stays indexed, the visibility check rules it out
//     (and rules it back in for snapshots that still see it);
//   - pk-changing updates: the rowID is indexed under both the old and the
//     new key; the Equal re-check picks the right one per snapshot;
//   - two different rows using the same pk at different times (delete +
//     re-insert) simply share a bucket.
//
// Buckets only grow (entries for keys a row no longer carries are skipped,
// never removed); with unique primary keys a bucket holds one entry per
// row identity that ever used the key, which stays tiny in practice.

// indexPK records that row (about to be committed, restored or — for temp
// tables — applied) carries its current primary-key value under rowID.
func (t *Table) indexPK(row sqltypes.Row, id int64) {
	if t.pkCol < 0 || row == nil {
		return
	}
	h := sqltypes.HashValue(row[t.pkCol])
	bucket := t.pkIndex[h]
	for _, x := range bucket {
		if x == id {
			return
		}
	}
	t.pkIndex[h] = append(bucket, id)
}

// indexOverlayPK records that the transaction's pending row id currently
// carries pk. Every overlay mutation that sets row data must call it, so the
// per-transaction index stays complete; stale entries (rows later moved or
// deleted) are ruled out by the per-probe re-check, exactly like
// Table.pkIndex.
func (tx *Txn) indexOverlayPK(key tableKey, id int64, pk sqltypes.Value) {
	if tx.pkOv == nil {
		tx.pkOv = make(map[tableKey]map[uint64][]int64)
	}
	m := tx.pkOv[key]
	if m == nil {
		m = make(map[uint64][]int64)
		tx.pkOv[key] = m
	}
	h := sqltypes.HashValue(pk)
	bucket := m[h]
	for _, x := range bucket {
		if x == id {
			return
		}
	}
	m[h] = append(bucket, id)
}

// unindexPK removes row's id from the bucket of its current primary key.
// Only temp-table deletes use it: they free the row chain outright, whereas
// MVCC tables keep deleted chains (and therefore their index entries) for
// older snapshots.
func (t *Table) unindexPK(row sqltypes.Row, id int64) {
	if t.pkCol < 0 || row == nil {
		return
	}
	h := sqltypes.HashValue(row[t.pkCol])
	bucket := t.pkIndex[h]
	for i, x := range bucket {
		if x == id {
			t.pkIndex[h] = append(bucket[:i], bucket[i+1:]...)
			if len(t.pkIndex[h]) == 0 {
				delete(t.pkIndex, h)
			}
			return
		}
	}
}

// pkLookupLocked returns the rows visible to tx whose primary key equals v —
// the point-lookup equivalent of scanLocked filtered by `pk = v`. It first
// consults the transaction's own overlay (pending inserts and updates,
// including updates that moved a row onto v) through the overlay pk index,
// then the table's pk index for committed chains the overlay does not
// shadow. Caller holds e.mu.
func (s *Session) pkLookupLocked(tx *Txn, key tableKey, t *Table, v sqltypes.Value) []scanRow {
	var out []scanRow
	ov := tx.overlay[key]
	h := sqltypes.HashValue(v)
	if len(ov) > 0 {
		for _, id := range tx.pkOv[key][h] {
			ent := ov[id]
			if ent == nil || ent.deleted || ent.data == nil {
				continue
			}
			if sqltypes.Equal(ent.data[t.pkCol], v) {
				out = append(out, scanRow{rowID: id, data: ent.data})
			}
		}
	}
	for _, id := range t.pkIndex[h] {
		if _, shadowed := ov[id]; shadowed {
			continue // overlay already decided this row's fate above
		}
		chain := t.rows[id]
		if chain == nil {
			continue // temp-table delete removed the chain; stale entry
		}
		if vis := chain.visible(tx.snapTS); vis != nil && sqltypes.Equal(vis.data[t.pkCol], v) {
			out = append(out, scanRow{rowID: id, data: vis.data})
		}
	}
	return out
}

// pkPointValue reports whether where is exactly `pk = <literal|param>` (in
// either operand order) against table t, returning the lookup key coerced to
// the primary-key column's kind. Only exact coercions are eligible — the
// index hashes stored (column-kind) values, so a lossy constant (1.5 against
// an INT key, a string against a numeric key) falls back to the scan path,
// which preserves the engine's cross-kind comparison semantics. A NULL
// constant is eligible and matches nothing (`pk = NULL` is never true).
func pkPointValue(t *Table, where sqlparse.Expr, args []sqltypes.Value, quals ...string) (sqltypes.Value, bool) {
	if t.pkCol < 0 {
		return sqltypes.Null, false
	}
	be, ok := where.(*sqlparse.BinaryExpr)
	if !ok || be.Op != "=" {
		return sqltypes.Null, false
	}
	cr, valExpr := matchColumnConst(be.Left, be.Right)
	if cr == nil {
		return sqltypes.Null, false
	}
	if !equalFold(cr.Name, t.Columns[t.pkCol].Name) {
		return sqltypes.Null, false
	}
	if cr.Qualifier != "" {
		match := false
		for _, q := range quals {
			if q != "" && equalFold(cr.Qualifier, q) {
				match = true
				break
			}
		}
		if !match {
			return sqltypes.Null, false
		}
	}
	var v sqltypes.Value
	switch e := valExpr.(type) {
	case *sqlparse.Literal:
		v = e.Val
	case *sqlparse.Param:
		if e.Index >= len(args) {
			return sqltypes.Null, false // let the slow path surface the binding error
		}
		v = args[e.Index]
	default:
		return sqltypes.Null, false
	}
	if v.IsNull() {
		return v, true
	}
	colKind := t.Columns[t.pkCol].Type
	if v.Kind() == colKind {
		return v, true
	}
	switch {
	case colKind == sqltypes.KindInt && v.Kind() == sqltypes.KindFloat:
		// The scan path compares int keys to float constants in float64,
		// where integers beyond 2^53 collapse onto shared values; an
		// int-coerced index probe would be exact and miss rows the scan
		// matched. Only coerce when float64 is still exact.
		const maxExactFloat = 1 << 53
		if f := v.Float(); f == float64(int64(f)) && f < maxExactFloat && f > -maxExactFloat {
			return sqltypes.NewInt(int64(f)), true
		}
	case colKind == sqltypes.KindFloat && v.Kind() == sqltypes.KindInt:
		return sqltypes.NewFloat(float64(v.Int())), true
	}
	return sqltypes.Null, false
}

// matchColumnConst splits an equality's operands into (column, constant) if
// one side is a column reference and the other a literal or parameter.
func matchColumnConst(a, b sqlparse.Expr) (*sqlparse.ColumnRef, sqlparse.Expr) {
	if cr, ok := a.(*sqlparse.ColumnRef); ok && isConstExpr(b) {
		return cr, b
	}
	if cr, ok := b.(*sqlparse.ColumnRef); ok && isConstExpr(a) {
		return cr, a
	}
	return nil, nil
}

func isConstExpr(e sqlparse.Expr) bool {
	switch e.(type) {
	case *sqlparse.Literal, *sqlparse.Param:
		return true
	}
	return false
}

// candidateRowsLocked returns the rows a single-table statement must
// consider: an O(1) index lookup when the WHERE clause is a primary-key
// point predicate, otherwise a full scan into a pooled per-session buffer.
// pooled reports whether the caller must hand the slice back via putScanBuf.
// Callers still evaluate WHERE per returned row, so the fast path only needs
// to return a superset-of-matches / subset-of-table row set.
func (s *Session) candidateRowsLocked(tx *Txn, key tableKey, t *Table, where sqlparse.Expr, args []sqltypes.Value, quals ...string) (rows []scanRow, pooled bool) {
	if v, ok := pkPointValue(t, where, args, quals...); ok {
		if v.IsNull() {
			return nil, false
		}
		return s.pkLookupLocked(tx, key, t, v), false
	}
	return s.scanInto(s.getScanBuf(), tx, key, t), true
}

// maxPooledScanBufs bounds the per-session scan buffer free list. Buffers
// nest (subqueries, joins, trigger bodies), so the pool holds a few; beyond
// that, extras are dropped for the GC.
const maxPooledScanBufs = 4

// maxPooledScanBufCap is the largest buffer (in rows) the pool retains.
// Sessions live as long as their connection, so pooling a one-off scan of a
// huge table would pin its backing array forever; big buffers go to the GC.
const maxPooledScanBufCap = 4096

// getScanBuf pops a scan buffer from the session's free list. Sessions are
// single-threaded (like driver connections), so no locking is needed.
func (s *Session) getScanBuf() []scanRow {
	if n := len(s.scanBufs); n > 0 {
		b := s.scanBufs[n-1]
		s.scanBufs = s.scanBufs[:n-1]
		return b[:0]
	}
	return nil
}

// putScanBuf returns a scan buffer to the free list once the caller is done
// iterating it. Only the slice header is recycled; row data is shared with
// the table and never owned by the buffer.
func (s *Session) putScanBuf(b []scanRow) {
	if cap(b) == 0 || cap(b) > maxPooledScanBufCap || len(s.scanBufs) >= maxPooledScanBufs {
		return
	}
	s.scanBufs = append(s.scanBufs, b[:0])
}
