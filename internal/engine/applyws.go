package engine

import (
	"fmt"

	"repro/internal/sqltypes"
)

// ApplyOptions tunes write-set application on a replica.
type ApplyOptions struct {
	// AdvanceCounters additionally bumps auto-increment counters past any
	// applied key values. Off by default, reproducing the §4.3.2 gap:
	// "writeset extraction does not capture changes like auto-incremented
	// keys [or] sequence values", so a later local insert on this replica
	// can collide with a remotely generated key.
	AdvanceCounters bool
}

// ApplyWriteSet applies a replicated transaction's row changes to this
// engine, identifying rows by primary key. The application is itself a
// transaction: it commits atomically, appears in the binlog, and bumps the
// commit clock.
func (e *Engine) ApplyWriteSet(ws *WriteSet, opts ApplyOptions) error {
	if ws == nil || len(ws.Ops) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyWriteSetLocked(ws, opts)
}

// ApplyWriteSets applies a batch of replicated transactions under a single
// engine lock acquisition — the group-commit form of the slave apply path.
// Each write-set still commits as its own transaction, with its own commit
// timestamp and binlog event, preserving the one-event-one-commit alignment
// that keeps binlog positions comparable across replicas.
//
// It returns how many write-sets of the batch were applied. On error the
// failing write-set is rolled back and application stops; write-sets before
// it remain committed, so the caller can advance its replication position
// to the last applied event before surfacing the error.
func (e *Engine) ApplyWriteSets(wss []*WriteSet, opts ApplyOptions) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, ws := range wss {
		if ws == nil || len(ws.Ops) == 0 {
			continue
		}
		if err := e.applyWriteSetLocked(ws, opts); err != nil {
			return i, err
		}
	}
	return len(wss), nil
}

// applyWriteSetLocked applies one write-set as one transaction. Caller
// holds e.mu exclusively.
func (e *Engine) applyWriteSetLocked(ws *WriteSet, opts ApplyOptions) error {
	tx := e.beginTxnLocked(ReadCommitted)
	for _, op := range ws.Ops {
		if err := e.applyOpLocked(tx, op, opts); err != nil {
			e.rollbackLocked(tx)
			return err
		}
	}
	_, _, err := e.commitLocked(tx, nil)
	return err
}

func (e *Engine) applyOpLocked(tx *Txn, op WriteOp, opts ApplyOptions) error {
	key := tableKey{db: op.Database, table: op.Table}
	t, err := e.resolveTableLocked(key)
	if err != nil {
		return err
	}
	locate := func() (int64, error) {
		if op.HasPK && t.pkCol >= 0 {
			// op.PK identifies the row by its after image; a pk-changing
			// UPDATE must find the row under the key it still has on this
			// replica — the before image's.
			pk := op.PK
			if op.Kind != WriteInsert && op.Before != nil {
				pk = op.Before[t.pkCol]
			}
			// Search overlay-aware current state through the overlay pk
			// index (linear overlay walks would make batch apply O(n²)).
			ov := tx.overlay[key]
			for _, id := range tx.pkOv[key][sqltypes.HashValue(pk)] {
				if ent := ov[id]; ent != nil && ent.data != nil && sqltypes.Equal(ent.data[t.pkCol], pk) {
					return id, nil
				}
			}
			if id := t.findByPK(pk, e.clock); id >= 0 {
				return id, nil
			}
			return -1, fmt.Errorf("engine: apply: row pk=%v not found in %s.%s", pk, op.Database, op.Table)
		}
		// No PK: match the full before image (fragile by design — the
		// paper's point about write-set replication needing keys).
		for _, id := range t.rowOrder {
			if v := t.rows[id].visible(e.clock); v != nil && rowsEqual(v.data, op.Before) {
				return id, nil
			}
		}
		return -1, fmt.Errorf("engine: apply: no row matching before-image in %s.%s", op.Database, op.Table)
	}
	switch op.Kind {
	case WriteInsert:
		if op.HasPK && t.pkCol >= 0 {
			// An earlier op of this same write-set may have deleted or
			// pk-moved the committed holder (delete-then-reinsert of one
			// key) — the same overlay-aware rule commit validation uses.
			if id := t.findByPK(op.PK, e.clock); id >= 0 &&
				tx.overlayStillHolds(key, id, t.pkCol, op.PK) {
				return fmt.Errorf("%w: apply insert %s.%s pk=%v", ErrDuplicateKey, op.Database, op.Table, op.PK)
			}
		}
		id := t.nextRowID
		t.nextRowID++
		tx.ov(key)[id] = &overlayEntry{data: op.After.Clone(), inserted: true}
		if t.pkCol >= 0 {
			tx.indexOverlayPK(key, id, op.After[t.pkCol])
		}
		tx.ops = append(tx.ops, pendingOp{key: key, rowID: id, kind: WriteInsert})
		if opts.AdvanceCounters {
			for i, c := range t.Columns {
				if c.AutoIncrement && op.After[i].Kind() == sqltypes.KindInt && op.After[i].Int() > t.autoInc {
					t.autoInc = op.After[i].Int()
				}
			}
		}
	case WriteUpdate:
		id, err := locate()
		if err != nil {
			return err
		}
		ent := tx.ov(key)[id]
		if ent == nil {
			ent = &overlayEntry{before: op.Before.Clone()}
			tx.ov(key)[id] = ent
		}
		ent.data = op.After.Clone()
		if t.pkCol >= 0 {
			tx.indexOverlayPK(key, id, op.After[t.pkCol])
		}
		if !ent.inserted && !ent.updateOpped {
			ent.updateOpped = true
			tx.ops = append(tx.ops, pendingOp{key: key, rowID: id, kind: WriteUpdate})
		}
	case WriteDelete:
		id, err := locate()
		if err != nil {
			return err
		}
		ent := tx.ov(key)[id]
		if ent == nil {
			ent = &overlayEntry{before: op.Before.Clone()}
			tx.ov(key)[id] = ent
		}
		wasInserted := ent.inserted
		ent.deleted = true
		ent.data = nil
		if !wasInserted {
			tx.ops = append(tx.ops, pendingOp{key: key, rowID: id, kind: WriteDelete})
		}
	}
	return nil
}

func rowsEqual(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
