package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// These benchmarks measure the PR-1 tentpole: read-only statements no
// longer serialize through one global engine mutex.
//
// The primary pair — BenchmarkSingleSessionReads vs BenchmarkParallelReads
// — models a per-statement engine service time (Config.ExecCost) the same
// way ReplicaConfig.ReadCost does one layer up: it is what makes
// lock-model scalability shapes reproducible on a single machine. Under
// the seed's global mutex the modeled costs serialize and 8 sessions equal
// 1; with the shared read path they overlap.
//
// The *CPU variants run at memory speed with no modeled cost. They show
// real-CPU scaling on multicore hosts; on a single-core host they stay
// flat by physics regardless of the lock model.

// newBenchEngine builds an engine with one database and a seeded table of
// `rows` rows, mirroring the read-mostly workloads of §2.1.
func newBenchEngine(b testing.TB, rows int, cost time.Duration) *Engine {
	b.Helper()
	eng := New(Config{ExecCost: cost})
	s := eng.NewSession("bench")
	defer s.Close()
	script := "CREATE DATABASE shop; USE shop;" +
		"CREATE TABLE items (id INT PRIMARY KEY, name VARCHAR, qty INT, price FLOAT);"
	if err := s.ExecScript(script); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		sql := fmt.Sprintf("INSERT INTO items (id, name, qty, price) VALUES (%d, 'item-%d', %d, %d.5)",
			i, i, i%97, i%13)
		if _, err := s.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// benchReadQuery is the statement each benchmark session runs: a filtered
// scan with a small aggregate, representative of the read side of the
// paper's read-one/write-all workloads.
const benchReadQuery = "SELECT COUNT(*), SUM(qty) FROM items WHERE qty > 48"

// runReaders drives b.N read-only statements split evenly over the given
// sessions.
func runReaders(b *testing.B, sess []*Session) {
	var wg sync.WaitGroup
	for i, s := range sess {
		n := b.N / len(sess)
		if i < b.N%len(sess) {
			n++
		}
		wg.Add(1)
		go func(s *Session, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := s.Exec(benchReadQuery); err != nil {
					b.Error(err)
					return
				}
			}
		}(s, n)
	}
	wg.Wait()
}

// benchConcurrentReads measures b.N reads over `sessions` concurrent
// sessions of one engine.
func benchConcurrentReads(b *testing.B, sessions, rows int, cost time.Duration) {
	eng := newBenchEngine(b, rows, cost)
	sess := make([]*Session, sessions)
	for i := range sess {
		s := eng.NewSession("bench")
		if _, err := s.Exec("USE shop"); err != nil {
			b.Fatal(err)
		}
		sess[i] = s
	}
	defer func() {
		for _, s := range sess {
			s.Close()
		}
	}()
	b.ResetTimer()
	runReaders(b, sess)
}

// benchCost is the modeled per-statement engine service time of the
// primary benchmark pair.
const benchCost = 500 * time.Microsecond

// BenchmarkSingleSessionReads is the serialized baseline: one session
// issuing read-only statements back to back.
func BenchmarkSingleSessionReads(b *testing.B) { benchConcurrentReads(b, 1, 128, benchCost) }

// BenchmarkParallelReads is the PR-1 acceptance benchmark: read-only
// throughput with 8 concurrent sessions must be at least 2× the
// single-session throughput (ns/op at most half of
// BenchmarkSingleSessionReads).
func BenchmarkParallelReads(b *testing.B) { benchConcurrentReads(b, 8, 128, benchCost) }

// BenchmarkSingleSessionReadsCPU / BenchmarkParallelReadsCPU run at memory
// speed; the parallel variant scales with physical cores.
func BenchmarkSingleSessionReadsCPU(b *testing.B) { benchConcurrentReads(b, 1, 256, 0) }
func BenchmarkParallelReadsCPU(b *testing.B)      { benchConcurrentReads(b, 8, 256, 0) }

// BenchmarkParallelReadsWithWriter adds one background writer session
// committing updates while 8 readers run, showing reads overlap each other
// even when a writer periodically takes the exclusive lock.
func BenchmarkParallelReadsWithWriter(b *testing.B) {
	eng := newBenchEngine(b, 128, benchCost)
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		w := eng.NewSession("writer")
		defer w.Close()
		if _, err := w.Exec("USE shop"); err != nil {
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = w.Exec(fmt.Sprintf("UPDATE items SET qty = %d WHERE id = %d", i%97, i%128))
		}
	}()

	const sessions = 8
	sess := make([]*Session, sessions)
	for i := range sess {
		s := eng.NewSession("bench")
		if _, err := s.Exec("USE shop"); err != nil {
			b.Fatal(err)
		}
		sess[i] = s
	}
	b.ResetTimer()
	runReaders(b, sess)
	b.StopTimer()
	close(stop)
	wwg.Wait()
	for _, s := range sess {
		s.Close()
	}
}
