package engine

import (
	"fmt"
	"sort"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// Database is one database instance inside an engine (CREATE DATABASE).
type Database struct {
	Name       string
	tables     map[string]*Table
	sequences  map[string]*Sequence
	triggers   map[string][]*Trigger // key: table name (lower-cased)
	procedures map[string]*Procedure
}

func newDatabase(name string) *Database {
	return &Database{
		Name:       name,
		tables:     make(map[string]*Table),
		sequences:  make(map[string]*Sequence),
		triggers:   make(map[string][]*Trigger),
		procedures: make(map[string]*Procedure),
	}
}

// TableNames returns the sorted table names of the database.
func (d *Database) TableNames() []string {
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Column describes one column of a table.
type Column struct {
	Name          string
	Type          sqltypes.Kind
	PrimaryKey    bool
	Unique        bool
	AutoIncrement bool
	NotNull       bool
	Default       sqlparse.Expr // evaluated at insert time; may be nil
}

// Sequence is a named, non-transactional number generator (§4.2.3). Values
// handed out are never reclaimed: rollback leaves holes.
type Sequence struct {
	Name      string
	Next      int64
	Increment int64
}

// Trigger fires a statement after row events on a table (§4.1.1: commonly
// used to update a different reporting database instance).
type Trigger struct {
	Name  string
	Event string // INSERT, UPDATE, DELETE
	Table string
	Body  sqlparse.Statement
}

// Procedure is a stored procedure: named parameters plus a statement list
// (§4.2.1). Deterministic marks procedures safe for statement replication;
// the default is false because no schema describes a procedure's behaviour.
type Procedure struct {
	Name          string
	Params        []string
	Body          []sqlparse.Statement
	Deterministic bool
}

// rowVersion is one MVCC version of a row. createdTS/deletedTS are logical
// commit timestamps; deletedTS == 0 means live.
type rowVersion struct {
	createdTS uint64
	deletedTS uint64
	data      sqltypes.Row
}

// rowChain is the version history of a single row identity.
type rowChain struct {
	versions []rowVersion // ascending createdTS
}

// visible returns the version of the chain visible at snapshot ts, or nil.
func (c *rowChain) visible(ts uint64) *rowVersion {
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := &c.versions[i]
		if v.createdTS <= ts {
			if v.deletedTS != 0 && v.deletedTS <= ts {
				return nil
			}
			return v
		}
	}
	return nil
}

// Table stores rows as MVCC version chains keyed by an internal rowID.
type Table struct {
	Name    string
	Columns []Column
	Temp    bool

	pkCol int // index of primary key column, -1 if none
	// uniqueCols lists the positions carrying PK/UNIQUE constraints, and
	// pkOnlyUnique marks the common case (the primary key is the only
	// one) whose per-insert check is an O(1) index probe.
	uniqueCols   []int
	pkOnlyUnique bool

	// colsLower maps lower-cased column name -> position. Built once at
	// table creation (Columns never changes afterwards) and shared
	// read-only by every evalEnv over this table, so per-row evaluation
	// allocates no per-call maps.
	colsLower map[string]int

	// pkIndex maps HashValue(pk) -> rowIDs whose chain ever committed a
	// version with that primary key; see pkindex.go for the semantics.
	pkIndex map[uint64][]int64

	rows       map[int64]*rowChain
	rowOrder   []int64 // insertion order, for stable scans
	nextRowID  int64
	autoInc    int64            // non-transactional (§4.3.2)
	lastWriter map[int64]uint64 // rowID -> commitTS of last committed writer

	// locks maps rowID -> owning txn id for row write locks.
	locks map[int64]uint64

	// table-level 2PL state for Serializable sessions.
	tlockOwner   uint64          // txn holding exclusive lock, 0 if none
	tlockReaders map[uint64]bool // txns holding shared locks
}

func newTable(name string, cols []Column, temp bool) *Table {
	pk := -1
	var unique []int
	for i, c := range cols {
		if c.PrimaryKey && pk < 0 {
			pk = i
		}
		if c.PrimaryKey || c.Unique {
			unique = append(unique, i)
		}
	}
	colsLower := make(map[string]int, len(cols))
	for i, c := range cols {
		lower := toLower(c.Name)
		if _, dup := colsLower[lower]; !dup {
			colsLower[lower] = i
		}
	}
	return &Table{
		Name:         name,
		Columns:      cols,
		Temp:         temp,
		pkCol:        pk,
		uniqueCols:   unique,
		pkOnlyUnique: pk >= 0 && len(unique) == 1 && unique[0] == pk,
		colsLower:    colsLower,
		pkIndex:      make(map[uint64][]int64),
		rows:         make(map[int64]*rowChain),
		lastWriter:   make(map[int64]uint64),
		locks:        make(map[int64]uint64),
		tlockReaders: make(map[uint64]bool),
	}
}

// colIndex returns the position of column name, or -1. Case-insensitive via
// the colsLower map — an O(1) probe instead of an equalFold scan, which
// per-row evaluation and per-insert binding hit hard.
func (t *Table) colIndex(name string) int {
	if i, ok := t.colsLower[toLower(name)]; ok {
		return i
	}
	return -1
}

// pkValue extracts the primary key value of a row, if the table has one.
func (t *Table) pkValue(row sqltypes.Row) (sqltypes.Value, bool) {
	if t.pkCol < 0 {
		return sqltypes.Null, false
	}
	return row[t.pkCol], true
}

// findByPK returns the rowID whose visible-at-ts version has the given
// primary key, or -1. It consults the pk index instead of scanning rowOrder,
// re-verifying each candidate against the visible version (pkindex.go).
func (t *Table) findByPK(pk sqltypes.Value, ts uint64) int64 {
	for _, id := range t.pkIndex[sqltypes.HashValue(pk)] {
		c := t.rows[id]
		if c == nil {
			continue
		}
		if v := c.visible(ts); v != nil && sqltypes.Equal(v.data[t.pkCol], pk) {
			return id
		}
	}
	return -1
}

// equalFold is a cheap ASCII case-insensitive compare (identifiers only).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// createDatabaseLocked adds a database instance. Caller holds e.mu.
func (e *Engine) createDatabaseLocked(name string, ifNotExists bool) error {
	if _, ok := e.databases[name]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("engine: database %q already exists", name)
	}
	e.databases[name] = newDatabase(name)
	return nil
}

// CreateDatabase adds a database instance to the engine.
func (e *Engine) CreateDatabase(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.createDatabaseLocked(name, false)
}

// TableChecksum returns a content checksum of a table: the XOR of row
// hashes of the latest committed state plus a hash of the row count. Used
// by the middleware's divergence detector.
func (e *Engine) TableChecksum(db, table string) (uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, err := e.database(db)
	if err != nil {
		return 0, err
	}
	t, ok := d.tables[table]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q.%q", db, table)
	}
	ts := e.clock
	var sum uint64
	var n uint64
	for _, id := range t.rowOrder {
		if v := t.rows[id].visible(ts); v != nil {
			sum ^= sqltypes.HashRow(v.data)
			n++
		}
	}
	return sum ^ (n * 0x9e3779b97f4a7c15), nil
}

// DatabaseChecksum folds all table checksums of a database together.
func (e *Engine) DatabaseChecksum(db string) (uint64, error) {
	e.mu.RLock()
	d, err := e.database(db)
	if err != nil {
		e.mu.RUnlock()
		return 0, err
	}
	names := d.TableNames()
	e.mu.RUnlock()
	var sum uint64
	for _, n := range names {
		c, err := e.TableChecksum(db, n)
		if err != nil {
			return 0, err
		}
		sum ^= c + sqltypes.HashValue(sqltypes.NewString(n))
	}
	return sum, nil
}

// RowCount returns the number of live rows in a table at the latest
// committed state.
func (e *Engine) RowCount(db, table string) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, err := e.database(db)
	if err != nil {
		return 0, err
	}
	t, ok := d.tables[table]
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q.%q", db, table)
	}
	n := 0
	for _, id := range t.rowOrder {
		if t.rows[id].visible(e.clock) != nil {
			n++
		}
	}
	return n, nil
}
