// Package admission implements overload protection for the replication
// middleware: per-cluster and per-user concurrency limits with a bounded
// priority wait queue, typed retryable errors, and slow-query accounting.
//
// The paper's thesis is that middleware replication fails in production for
// operational reasons; its flash-crowd discussion (the ticketbroker
// scenario) is the load shape this package defends against. A fixed number
// of slots bounds concurrent work; requests beyond that wait in a bounded
// queue whose per-class allowances form a graceful degradation ladder:
// ANY-consistency reads are shed first, SESSION reads queue longer, and
// writes are rejected last. Queue overflow surfaces as ErrOverloaded and
// wait-deadline expiry as ErrDeadlineExceeded — both typed and retryable,
// so the wire layer classifies them and pooled drivers back off and retry
// instead of hammering a saturated cluster.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Class orders request priorities for the degradation ladder: the lower the
// class, the earlier it is shed under overload.
type Class int

// Request classes, in shed-first order.
const (
	// ClassReadAny is a read with no freshness guarantee: the cheapest
	// work to shed — the client tolerates staleness, so it tolerates a
	// retry even better.
	ClassReadAny Class = iota
	// ClassReadSession is a read carrying a session guarantee
	// (read-your-writes / monotonic reads): queued under pressure.
	ClassReadSession
	// ClassWrite is a write or transaction statement: rejected last.
	ClassWrite

	// NumClasses is the number of request classes.
	NumClasses = int(ClassWrite) + 1
)

// String names the class for metrics output.
func (c Class) String() string {
	switch c {
	case ClassReadAny:
		return "read_any"
	case ClassReadSession:
		return "read_session"
	case ClassWrite:
		return "write"
	}
	return "unknown"
}

// ErrOverloaded is returned when a request cannot be admitted or queued:
// the slots are busy and the wait queue is past this class's allowance (or
// the user is past its per-user limit). It is retryable — the cluster may
// well admit a later attempt — and the wire layer carries that
// classification to pooled drivers.
var ErrOverloaded = errors.New("admission: overloaded — concurrency slots and wait queue are full (retryable)")

// ErrDeadlineExceeded is returned when a queued request's wait deadline
// expires before a slot frees. It wraps context.DeadlineExceeded so one
// errors.Is check classifies deadline expiry from every layer.
var ErrDeadlineExceeded = fmt.Errorf("admission: queue wait deadline exceeded: %w", context.DeadlineExceeded)

// Config sizes a Controller.
type Config struct {
	// Slots is the number of requests executing concurrently; must be > 0.
	Slots int
	// PerUser caps concurrently admitted requests per user; 0 = unlimited.
	PerUser int
	// Queue bounds the total number of waiting requests; 0 means 4×Slots.
	// Per-class allowances derive from it: a write may queue while fewer
	// than Queue requests wait, a SESSION read while fewer than Queue/2,
	// an ANY read while fewer than Queue/4 — the degradation ladder.
	Queue int
	// MaxWait bounds the queue wait of requests that carry no deadline of
	// their own; 0 means 1 s. A bounded wait is what turns a saturated
	// cluster into fast typed rejections instead of a convoy.
	MaxWait time.Duration
	// SlowThreshold classifies a statement as slow for the slow-query
	// counters; 0 means 100 ms. Latency is measured from Acquire entry
	// (queue wait included — that is what the client experienced).
	SlowThreshold time.Duration
	// HistCap bounds per-class histogram samples; 0 uses the metrics
	// package default.
	HistCap int
}

// waiter is one queued request.
type waiter struct {
	user    string
	class   Class
	ready   chan struct{} // closed on grant
	granted bool
}

// Controller is the admission gate a cluster routes every statement
// through. Safe for concurrent use. A nil *Controller is valid and admits
// everything (admission off).
type Controller struct {
	cfg Config

	mu           sync.Mutex
	active       int
	activeByUser map[string]int
	queues       [NumClasses][]*waiter // FIFO per class
	waiting      int

	admitted metrics.Counter
	queued   metrics.Counter
	expired  metrics.Counter
	shed     [NumClasses]metrics.Counter
	slow     [NumClasses]metrics.Counter
	hist     [NumClasses]*metrics.Histogram
}

// NewController builds a controller; cfg.Slots must be positive.
func NewController(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		cfg.Slots = 64
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Slots
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = time.Second
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	}
	c := &Controller{cfg: cfg, activeByUser: make(map[string]int)}
	for i := range c.hist {
		c.hist[i] = metrics.NewHistogram(cfg.HistCap)
	}
	return c
}

// allowance is the queue occupancy below which the class may still enqueue:
// the ladder. Writes use the whole queue, SESSION reads half, ANY reads a
// quarter (each at least 1, so a tiny queue still admits every class when
// idle).
func (c *Controller) allowance(class Class) int {
	var a int
	switch class {
	case ClassWrite:
		a = c.cfg.Queue
	case ClassReadSession:
		a = c.cfg.Queue / 2
	default:
		a = c.cfg.Queue / 4
	}
	if a < 1 {
		a = 1
	}
	return a
}

// Slot is one admitted request's hold on the controller. Release it exactly
// once via Done (or Release). A nil *Slot is valid and does nothing — the
// shape Acquire returns when admission is off.
type Slot struct {
	c     *Controller
	user  string
	class Class
	start time.Time
	once  sync.Once
}

// Acquire admits a request, queueing it (bounded, prioritized) when all
// slots are busy. deadline bounds the queue wait; zero falls back to the
// controller's MaxWait. Returns ErrOverloaded when the request is shed and
// ErrDeadlineExceeded when the wait deadline expires — in both cases no
// slot is held. Safe on a nil controller (admission off: returns a nil
// slot and no error).
func (c *Controller) Acquire(user string, class Class, deadline time.Time) (*Slot, error) {
	if c == nil {
		return nil, nil
	}
	start := time.Now()
	c.mu.Lock()
	if c.cfg.PerUser > 0 && c.activeByUser[user] >= c.cfg.PerUser {
		c.mu.Unlock()
		c.shed[class].Inc()
		return nil, fmt.Errorf("user %q at per-user limit %d: %w", user, c.cfg.PerUser, ErrOverloaded)
	}
	if c.active < c.cfg.Slots {
		c.active++
		c.activeByUser[user]++
		c.mu.Unlock()
		c.admitted.Inc()
		return &Slot{c: c, user: user, class: class, start: start}, nil
	}
	if c.waiting >= c.allowance(class) {
		c.mu.Unlock()
		c.shed[class].Inc()
		return nil, ErrOverloaded
	}
	w := &waiter{user: user, class: class, ready: make(chan struct{})}
	c.queues[class] = append(c.queues[class], w)
	c.waiting++
	c.mu.Unlock()
	c.queued.Inc()

	if deadline.IsZero() {
		deadline = start.Add(c.cfg.MaxWait)
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-w.ready:
		c.admitted.Inc()
		return &Slot{c: c, user: user, class: class, start: start}, nil
	case <-timer.C:
	}
	c.mu.Lock()
	if w.granted {
		// The grant raced the timer; the slot is ours — keep it. (The
		// releaser already transferred it, so dropping it here would leak.)
		c.mu.Unlock()
		c.admitted.Inc()
		return &Slot{c: c, user: user, class: class, start: start}, nil
	}
	c.removeWaiterLocked(w)
	c.mu.Unlock()
	c.expired.Inc()
	return nil, ErrDeadlineExceeded
}

// removeWaiterLocked takes an unexpired waiter out of its class queue.
func (c *Controller) removeWaiterLocked(w *waiter) {
	q := c.queues[w.class]
	for i, cand := range q {
		if cand == w {
			c.queues[w.class] = append(q[:i], q[i+1:]...)
			c.waiting--
			return
		}
	}
}

// release frees a slot, handing it to the highest-priority eligible waiter
// (writes first — they are rejected last, so they are served first when
// capacity frees). Waiters whose user is at its per-user limit are skipped,
// not dropped: a release by that user will reach them.
func (c *Controller) release(user string) {
	c.mu.Lock()
	if n := c.activeByUser[user]; n <= 1 {
		delete(c.activeByUser, user)
	} else {
		c.activeByUser[user] = n - 1
	}
	for class := Class(NumClasses - 1); class >= 0; class-- {
		for _, w := range c.queues[class] {
			if c.cfg.PerUser > 0 && c.activeByUser[w.user] >= c.cfg.PerUser {
				continue
			}
			c.removeWaiterLocked(w)
			w.granted = true
			c.activeByUser[w.user]++
			close(w.ready) // slot transfers: active count is unchanged
			c.mu.Unlock()
			return
		}
	}
	c.active--
	c.mu.Unlock()
}

// Done releases the slot and records the statement's latency (queue wait
// included) against its class, counting it as slow when it crossed the
// threshold. err is accepted for call-site symmetry; failed statements are
// observed too — a timeout is precisely the latency worth accounting.
func (s *Slot) Done(err error) {
	if s == nil {
		return
	}
	s.once.Do(func() {
		d := time.Since(s.start)
		s.c.release(s.user)
		s.c.hist[s.class].Observe(d)
		if d >= s.c.cfg.SlowThreshold {
			s.c.slow[s.class].Inc()
		}
		_ = err
	})
}

// Release frees the slot without an error to report.
func (s *Slot) Release() { s.Done(nil) }

// Shedding reports whether the controller is under enough pressure that
// ANY-consistency reads are being shed (queue occupancy at or past their
// allowance). Routers use it to degrade gracefully — relax freshness so
// lagging replicas and cache hits absorb reads the queue would reject.
func (c *Controller) Shedding() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active >= c.cfg.Slots && c.waiting >= c.allowance(ClassReadAny)
}

// Stats is a counters snapshot.
type Stats struct {
	// Active and Waiting are the instantaneous slot and queue occupancy.
	Active  int
	Waiting int
	// Admitted counts requests that got a slot (with or without waiting);
	// Queued counts those that waited; Expired counts wait-deadline
	// expiries; Shed counts rejections (per class, in Class order).
	Admitted uint64
	Queued   uint64
	Expired  uint64
	Shed     [NumClasses]uint64
	// Slow counts statements at or past the slow threshold, per class.
	Slow [NumClasses]uint64
}

// ShedTotal sums rejections across classes.
func (st Stats) ShedTotal() uint64 {
	var n uint64
	for _, s := range st.Shed {
		n += s
	}
	return n
}

// SlowTotal sums slow statements across classes.
func (st Stats) SlowTotal() uint64 {
	var n uint64
	for _, s := range st.Slow {
		n += s
	}
	return n
}

// Stats snapshots the controller's counters. Safe on nil (all zero).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	st := Stats{Active: c.active, Waiting: c.waiting}
	c.mu.Unlock()
	st.Admitted = c.admitted.Load()
	st.Queued = c.queued.Load()
	st.Expired = c.expired.Load()
	for i := 0; i < NumClasses; i++ {
		st.Shed[i] = c.shed[i].Load()
		st.Slow[i] = c.slow[i].Load()
	}
	return st
}

// Latency returns the class's latency histogram (nil on a nil controller).
func (c *Controller) Latency(class Class) *metrics.Histogram {
	if c == nil {
		return nil
	}
	return c.hist[class]
}

// Config returns the controller's effective configuration.
func (c *Controller) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}
