package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	slot, err := c.Acquire("u", ClassWrite, time.Time{})
	if err != nil {
		t.Fatalf("nil controller Acquire: %v", err)
	}
	slot.Done(nil) // nil slot must be safe
	if c.Shedding() {
		t.Fatal("nil controller reports shedding")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil controller stats = %+v", st)
	}
}

func TestAcquireReleaseBasic(t *testing.T) {
	c := NewController(Config{Slots: 2})
	s1, err := c.Acquire("a", ClassReadAny, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Acquire("a", ClassWrite, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Active != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	s1.Done(nil)
	s2.Release()
	s2.Release() // double release must be a no-op
	if st := c.Stats(); st.Active != 0 {
		t.Fatalf("active after release = %d", st.Active)
	}
}

func TestQueueGrantsInPriorityOrder(t *testing.T) {
	c := NewController(Config{Slots: 1, Queue: 8})
	hold, err := c.Acquire("h", ClassWrite, time.Time{})
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		class Class
		when  time.Time
	}
	order := make(chan res, 3)
	var wg sync.WaitGroup
	start := func(class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Acquire("w", class, time.Now().Add(5*time.Second))
			if err != nil {
				t.Errorf("class %v: %v", class, err)
				return
			}
			order <- res{class, time.Now()}
			time.Sleep(5 * time.Millisecond)
			s.Done(nil)
		}()
	}
	start(ClassReadAny)
	waitQueued(t, c, 1)
	start(ClassReadSession)
	waitQueued(t, c, 2)
	start(ClassWrite)
	waitQueued(t, c, 3)

	hold.Done(nil)
	wg.Wait()
	close(order)
	var got []Class
	for r := range order {
		got = append(got, r.class)
	}
	want := []Class{ClassWrite, ClassReadSession, ClassReadAny}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
	if st := c.Stats(); st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("end state = %+v", st)
	}
}

// waitQueued blocks until the controller reports n waiters.
func waitQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waiters (stats %+v)", n, c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDegradationLadderAllowances(t *testing.T) {
	// Queue=8: ANY reads may queue while waiting < 2, SESSION while < 4,
	// writes while < 8. Fill the queue with writes and check each class's
	// cutoff.
	c := NewController(Config{Slots: 1, Queue: 8})
	hold, _ := c.Acquire("h", ClassWrite, time.Time{})
	defer hold.Done(nil)

	enqueue := func(n int) {
		for i := 0; i < n; i++ {
			go func() {
				s, err := c.Acquire("w", ClassWrite, time.Now().Add(5*time.Second))
				if err == nil {
					defer s.Done(nil)
					time.Sleep(100 * time.Millisecond)
				}
			}()
		}
	}

	enqueue(2)
	waitQueued(t, c, 2)
	// waiting=2 ≥ ANY allowance (8/4=2): ANY sheds, SESSION still queues.
	if _, err := c.Acquire("x", ClassReadAny, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("ANY at waiting=2: err=%v, want ErrOverloaded", err)
	}
	if !c.Shedding() {
		t.Fatal("Shedding() false while ANY reads are being shed")
	}

	enqueue(2)
	waitQueued(t, c, 4)
	// waiting=4 ≥ SESSION allowance (8/2=4): SESSION sheds, writes queue.
	if _, err := c.Acquire("x", ClassReadSession, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("SESSION at waiting=4: err=%v, want ErrOverloaded", err)
	}

	enqueue(4)
	waitQueued(t, c, 8)
	// waiting=8 ≥ write allowance (8): even writes shed now.
	if _, err := c.Acquire("x", ClassWrite, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("WRITE at waiting=8: err=%v, want ErrOverloaded", err)
	}
	st := c.Stats()
	if st.Shed[ClassReadAny] != 1 || st.Shed[ClassReadSession] != 1 || st.Shed[ClassWrite] != 1 {
		t.Fatalf("shed counters = %v", st.Shed)
	}
}

func TestWaitDeadlineExpiryDoesNotLeakSlot(t *testing.T) {
	c := NewController(Config{Slots: 1, Queue: 8})
	hold, _ := c.Acquire("h", ClassWrite, time.Time{})

	_, err := c.Acquire("w", ClassReadSession, time.Now().Add(20*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded must wrap context.DeadlineExceeded")
	}
	if st := c.Stats(); st.Waiting != 0 || st.Expired != 1 {
		t.Fatalf("after expiry: %+v", st)
	}

	// The expired waiter must not have consumed the slot: releasing the
	// holder must leave capacity for a fresh request.
	hold.Done(nil)
	s, err := c.Acquire("w2", ClassReadAny, time.Time{})
	if err != nil {
		t.Fatalf("slot leaked: %v", err)
	}
	s.Done(nil)
	if st := c.Stats(); st.Active != 0 {
		t.Fatalf("end active = %d", st.Active)
	}
}

func TestDefaultMaxWaitBoundsQueueTime(t *testing.T) {
	c := NewController(Config{Slots: 1, Queue: 4, MaxWait: 25 * time.Millisecond})
	hold, _ := c.Acquire("h", ClassWrite, time.Time{})
	defer hold.Done(nil)
	start := time.Now()
	_, err := c.Acquire("w", ClassWrite, time.Time{}) // no deadline → MaxWait
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("waited %v, MaxWait bound not applied", waited)
	}
}

func TestPerUserLimit(t *testing.T) {
	c := NewController(Config{Slots: 8, PerUser: 2})
	s1, _ := c.Acquire("alice", ClassWrite, time.Time{})
	s2, _ := c.Acquire("alice", ClassWrite, time.Time{})
	if _, err := c.Acquire("alice", ClassWrite, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("3rd alice acquire: err=%v, want ErrOverloaded", err)
	}
	// Other users are unaffected.
	sb, err := c.Acquire("bob", ClassWrite, time.Time{})
	if err != nil {
		t.Fatalf("bob blocked by alice's limit: %v", err)
	}
	sb.Done(nil)
	s1.Done(nil)
	// Alice has a free per-user slot again.
	s3, err := c.Acquire("alice", ClassWrite, time.Time{})
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	s3.Done(nil)
	s2.Done(nil)
}

func TestPerUserLimitSkippedInHandoff(t *testing.T) {
	// Two global slots held by bob and carol; alice (PerUser=1) queues two
	// writes, dave queues an ANY read. The first release grants alice's
	// first write, putting her at her per-user limit — so the second
	// release must SKIP her remaining (higher-class) waiter and grant
	// dave's read instead. Alice's second write lands only once alice
	// herself releases.
	c := NewController(Config{Slots: 2, PerUser: 1, Queue: 16})
	hold1, _ := c.Acquire("bob", ClassWrite, time.Time{})
	hold2, _ := c.Acquire("carol", ClassWrite, time.Time{})

	granted := make(chan string, 3)
	aliceHold := make(chan chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			s, err := c.Acquire("alice", ClassWrite, time.Now().Add(5*time.Second))
			if err != nil {
				t.Errorf("alice: %v", err)
				return
			}
			granted <- "alice"
			release := make(chan struct{})
			aliceHold <- release
			<-release
			s.Done(nil)
		}()
		waitQueued(t, c, i+1)
	}
	go func() {
		s, err := c.Acquire("dave", ClassReadAny, time.Now().Add(5*time.Second))
		if err != nil {
			t.Errorf("dave read: %v", err)
			return
		}
		granted <- "dave"
		s.Done(nil)
	}()
	waitQueued(t, c, 3)

	hold1.Done(nil) // → alice's first write (highest class)
	if got := <-granted; got != "alice" {
		t.Fatalf("first grant = %s, want alice", got)
	}
	aliceRelease := <-aliceHold
	hold2.Done(nil) // alice at limit → her second write is skipped, dave's read wins
	if got := <-granted; got != "dave" {
		t.Fatalf("second grant = %s, want dave (alice over per-user limit)", got)
	}
	close(aliceRelease) // alice releases → her queued second write is granted
	if got := <-granted; got != "alice" {
		t.Fatalf("third grant should be alice's second write")
	}
	(<-aliceHold) <- struct{}{}
}

func TestSlowQueryAccounting(t *testing.T) {
	c := NewController(Config{Slots: 2, SlowThreshold: 10 * time.Millisecond})
	fast, _ := c.Acquire("u", ClassReadAny, time.Time{})
	fast.Done(nil)
	slow, _ := c.Acquire("u", ClassWrite, time.Time{})
	time.Sleep(15 * time.Millisecond)
	slow.Done(nil)
	st := c.Stats()
	if st.Slow[ClassWrite] != 1 {
		t.Fatalf("slow writes = %d, want 1", st.Slow[ClassWrite])
	}
	if st.SlowTotal() != 1 {
		t.Fatalf("slow total = %d", st.SlowTotal())
	}
	if c.Latency(ClassWrite).Count() != 1 || c.Latency(ClassReadAny).Count() != 1 {
		t.Fatal("latency histograms missed observations")
	}
	if c.Latency(ClassWrite).Max() < 10*time.Millisecond {
		t.Fatalf("write latency max = %v", c.Latency(ClassWrite).Max())
	}
}

func TestConcurrentChurnNoLeaks(t *testing.T) {
	c := NewController(Config{Slots: 4, PerUser: 3, Queue: 16, MaxWait: 50 * time.Millisecond})
	users := []string{"a", "b", "c"}
	classes := []Class{ClassReadAny, ClassReadSession, ClassWrite}
	var ops, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := c.Acquire(users[(g+i)%3], classes[(g*7+i)%3], time.Time{})
				if err != nil {
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("unexpected error: %v", err)
					}
					failures.Add(1)
					continue
				}
				ops.Add(1)
				if i%5 == 0 {
					time.Sleep(time.Millisecond)
				}
				s.Done(nil)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("leaked state after churn: %+v", st)
	}
	if ops.Load() == 0 {
		t.Fatal("no operations admitted")
	}
	if got := st.Admitted; got != uint64(ops.Load()) {
		t.Fatalf("admitted counter %d != successful ops %d", got, ops.Load())
	}
}
