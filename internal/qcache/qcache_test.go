package qcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqltypes"
)

func res(n int64) *engine.Result {
	return &engine.Result{Columns: []string{"c"}, Rows: []sqltypes.Row{{sqltypes.NewInt(n)}}}
}

func wsEvent(seq uint64, db, table string) engine.Event {
	return engine.Event{
		Seq: seq,
		WriteSet: &engine.WriteSet{Ops: []engine.WriteOp{
			{Database: db, Table: table, Kind: engine.WriteUpdate},
		}},
	}
}

func TestHitMissAndStats(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	if _, ok := s.Get("u", "shop", "SELECT 1", nil, 0); ok {
		t.Fatal("hit on empty cache")
	}
	s.Put("u", "shop", "SELECT 1", nil, []string{"items"}, 5, res(1))
	got, ok := s.Get("u", "shop", "SELECT 1", nil, 0)
	if !ok || got.Rows[0][0].Int() != 1 {
		t.Fatalf("expected hit, got %v %v", got, ok)
	}
	// Different database, different binds: distinct keys.
	if _, ok := s.Get("u", "other", "SELECT 1", nil, 0); ok {
		t.Fatal("cross-database hit")
	}
	if _, ok := s.Get("u", "shop", "SELECT 1", []sqltypes.Value{sqltypes.NewInt(7)}, 0); ok {
		t.Fatal("hit despite different bind values")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Puts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMinPosRejectsStaleEntry(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("u", "shop", "q", nil, []string{"items"}, 5, res(1))
	if _, ok := s.Get("u", "shop", "q", nil, 6); ok {
		t.Fatal("entry at pos 5 served to a session requiring pos 6")
	}
	// The entry survives for weaker sessions.
	if _, ok := s.Get("u", "shop", "q", nil, 5); !ok {
		t.Fatal("entry at pos 5 should satisfy minPos 5")
	}
}

func TestTableInvalidation(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("u", "shop", "q1", nil, []string{"items"}, 5, res(1))
	s.Put("u", "shop", "q2", nil, []string{"orders"}, 5, res(2))
	s.ApplyEvent(wsEvent(6, "shop", "items"))
	if _, ok := s.Get("u", "shop", "q1", nil, 0); ok {
		t.Fatal("entry survived invalidation of its table")
	}
	if _, ok := s.Get("u", "shop", "q2", nil, 0); !ok {
		t.Fatal("entry on an untouched table was invalidated")
	}
	st := c.Stats()
	if st.InvalidatedEntries != 1 || st.InvalidationEvents != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A result computed after the write (pos >= 6) is cacheable again.
	s.Put("u", "shop", "q1", nil, []string{"items"}, 6, res(3))
	if got, ok := s.Get("u", "shop", "q1", nil, 0); !ok || got.Rows[0][0].Int() != 3 {
		t.Fatal("post-write refill did not serve")
	}
}

func TestJoinEntryInvalidatedByEitherTable(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("u", "shop", "j", nil, []string{"items", "orders"}, 5, res(1))
	s.ApplyEvent(wsEvent(6, "shop", "orders"))
	if _, ok := s.Get("u", "shop", "j", nil, 0); ok {
		t.Fatal("join result survived a write to its second table")
	}
}

func TestDDLFlushesAffectedDatabase(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("u", "shop", "q1", nil, []string{"items"}, 5, res(1))
	s.Put("u", "crm", "q2", nil, []string{"leads"}, 5, res(2))
	// Table DDL in shop: only shop entries die.
	s.ApplyEvent(engine.Event{Seq: 6, DDL: true, Database: "shop",
		Stmts: []string{"CREATE TABLE extras (id INTEGER PRIMARY KEY)"}})
	if _, ok := s.Get("u", "shop", "q1", nil, 0); ok {
		t.Fatal("shop entry survived shop DDL")
	}
	if _, ok := s.Get("u", "crm", "q2", nil, 0); !ok {
		t.Fatal("crm entry flushed by shop DDL")
	}
	// DROP DATABASE names its victim explicitly, regardless of the
	// session's current database.
	s.Put("u", "crm", "q2", nil, []string{"leads"}, 7, res(3))
	s.ApplyEvent(engine.Event{Seq: 8, DDL: true, Database: "shop",
		Stmts: []string{"DROP DATABASE crm"}})
	if _, ok := s.Get("u", "crm", "q2", nil, 0); ok {
		t.Fatal("crm entry survived DROP DATABASE crm issued from shop")
	}
}

func TestUnknownFootprintFlushesDatabase(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("u", "shop", "q1", nil, []string{"items"}, 5, res(1))
	s.Put("u", "crm", "q2", nil, []string{"leads"}, 5, res(2))
	// A statement-shipped event with no captured write set and an
	// unparseable statement: footprint unknown — flush everything.
	s.ApplyEvent(engine.Event{Seq: 6, Database: "", Stmts: []string{"???"}})
	if _, ok := s.Get("u", "shop", "q1", nil, 0); ok {
		t.Fatal("entry survived an unknown-footprint flush")
	}
	if _, ok := s.Get("u", "crm", "q2", nil, 0); ok {
		t.Fatal("entry survived an unknown-footprint flush")
	}
}

func TestFillRaceRejected(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	// The write at seq 6 invalidates items; a read that computed its
	// result on a replica still at pos 5 must not be inserted afterwards.
	s.ApplyEvent(wsEvent(6, "shop", "items"))
	s.Put("u", "shop", "q", nil, []string{"items"}, 5, res(1))
	if _, ok := s.Get("u", "shop", "q", nil, 0); ok {
		t.Fatal("born-stale entry was inserted (fill race)")
	}
	if st := c.Stats(); st.RejectedPuts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFlushAll(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("u", "shop", "q", nil, []string{"items"}, 50, res(1))
	s.FlushAll()
	if _, ok := s.Get("u", "shop", "q", nil, 0); ok {
		t.Fatal("entry survived FlushAll")
	}
	// After the flush the position space restarts: low positions insert.
	s.Put("u", "shop", "q", nil, []string{"items"}, 1, res(2))
	if got, ok := s.Get("u", "shop", "q", nil, 0); !ok || got.Rows[0][0].Int() != 2 {
		t.Fatal("post-flush insert did not serve")
	}
}

func TestScopesIsolateClusters(t *testing.T) {
	c := New(Config{})
	p0, p1 := c.NewScope(), c.NewScope()
	// Two partitions of one table cache different results under the same
	// statement text.
	p0.Put("u", "shop", "q", nil, []string{"items"}, 5, res(10))
	p1.Put("u", "shop", "q", nil, []string{"items"}, 5, res(20))
	if got, _ := p0.Get("u", "shop", "q", nil, 0); got.Rows[0][0].Int() != 10 {
		t.Fatal("scope 0 served scope 1's result")
	}
	if got, _ := p1.Get("u", "shop", "q", nil, 0); got.Rows[0][0].Int() != 20 {
		t.Fatal("scope 1 served scope 0's result")
	}
	// Invalidation in one scope leaves the other alone.
	p0.ApplyEvent(wsEvent(6, "shop", "items"))
	if _, ok := p0.Get("u", "shop", "q", nil, 0); ok {
		t.Fatal("scope 0 entry survived its invalidation")
	}
	if _, ok := p1.Get("u", "shop", "q", nil, 0); !ok {
		t.Fatal("scope 1 entry hit by scope 0 invalidation")
	}
}

func TestLRUBound(t *testing.T) {
	c := New(Config{MaxEntries: shardCount}) // one entry per shard
	s := c.NewScope()
	for i := 0; i < 10*shardCount; i++ {
		s.Put("u", "shop", fmt.Sprintf("q%d", i), nil, []string{"items"}, 1, res(int64(i)))
	}
	if n := c.Len(); n > shardCount {
		t.Fatalf("cache exceeded its bound: %d entries", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}

func TestOversizedResultNotCached(t *testing.T) {
	c := New(Config{MaxRows: 2})
	s := c.NewScope()
	big := &engine.Result{Rows: []sqltypes.Row{{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}, {sqltypes.NewInt(3)}}}
	s.Put("u", "shop", "q", nil, []string{"items"}, 1, big)
	if _, ok := s.Get("u", "shop", "q", nil, 0); ok {
		t.Fatal("oversized result was cached")
	}
}

// TestConcurrentUse exercises gets, puts, invalidations and flushes from
// many goroutines; run under -race it is the cache's thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	c := New(Config{MaxEntries: 256})
	s := c.NewScope()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q%d", i%32)
				switch i % 5 {
				case 0:
					s.Put("u", "shop", key, nil, []string{"items"}, uint64(i), res(int64(i)))
				case 1, 2, 3:
					s.Get("u", "shop", key, nil, 0)
				case 4:
					if i%100 == 4 && g == 0 {
						s.FlushAll()
					} else {
						s.ApplyEvent(wsEvent(uint64(i), "shop", "items"))
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestUsersDoNotShareEntries: the user is part of the key, so a cache hit
// can never hand one user a result another user's authorization produced —
// a user without grants misses and pays the backend's access check.
func TestUsersDoNotShareEntries(t *testing.T) {
	c := New(Config{})
	s := c.NewScope()
	s.Put("alice", "shop", "q", nil, []string{"items"}, 5, res(1))
	if _, ok := s.Get("bob", "shop", "q", nil, 0); ok {
		t.Fatal("bob was served alice's cached result (authorization bypass)")
	}
	if _, ok := s.Get("alice", "shop", "q", nil, 0); !ok {
		t.Fatal("alice's own entry did not serve")
	}
}
