package qcache

import (
	"strings"

	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// eventDatabases names the databases an opaque event (DDL, or a write whose
// table footprint was not captured) can have touched. It parses the event's
// statements — CREATE/DROP DATABASE name their target explicitly, table DDL
// carries table references — and falls back to the event's session database.
// An empty result means "could be anything": the caller flushes everything.
func eventDatabases(ev engine.Event) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(db string) {
		db = strings.ToLower(db)
		if db != "" && !seen[db] {
			seen[db] = true
			out = append(out, db)
		}
	}
	known := true
	for _, sql := range ev.Stmts {
		st, err := sqlparse.ParseCached(sql)
		if err != nil {
			known = false
			continue
		}
		switch s := st.(type) {
		case *sqlparse.CreateDatabase:
			add(s.Name)
		case *sqlparse.DropDatabase:
			add(s.Name)
		case *sqlparse.UseDatabase, *sqlparse.CreateUser, *sqlparse.Grant:
			// No cached result can depend on these.
		default:
			named := false
			for _, t := range st.Tables() {
				if i := strings.IndexByte(t, '.'); i >= 0 {
					add(t[:i])
					named = true
				}
			}
			if !named {
				// Unqualified tables resolve against the session database.
				if ev.Database == "" {
					known = false
				} else {
					add(ev.Database)
				}
			}
		}
	}
	if len(ev.Stmts) == 0 {
		if ev.Database == "" {
			return nil
		}
		add(ev.Database)
	}
	if !known {
		return nil
	}
	return out
}
