// Package qcache is the middleware query result cache: the headline
// read-scaling feature of the C-JDBC/Sequoia lineage the paper describes.
// It stores immutable result sets keyed on (database, normalized read
// statement, bind values) and invalidates them at table granularity from the
// committed write stream (engine.Event.Tables()); DDL and writes whose table
// footprint is unknown flush the affected database.
//
// Consistency model. Every entry is tagged with the replication position the
// producing replica had applied when the result was computed. A lookup passes
// the minimum position its session's read guarantee demands (the session's
// last-write position for session consistency, the cluster head for strong
// consistency) and an entry older than that is a miss — the same rule the
// routers apply when re-validating a pinned replica. Invalidation is
// synchronous with respect to commit acknowledgement: the routers bump the
// affected tables' invalidation positions before a write returns to the
// writing session, so a surviving entry is never staler than the guarantee
// its reader asked for.
//
// Fill race. A read executed on a lagging replica can race a concurrent
// invalidation: the result is computed, the write invalidates, and only then
// does the reader try to insert the now-stale result. Put therefore
// re-validates the entry's position against the current invalidation
// positions and refuses the insert when the entry would be born stale.
//
// Scopes. One Cache (one memory budget) can back several clusters — e.g.
// every partition of a partitioned deployment — but results from different
// clusters must never collide: the partitions of one table hold different
// rows under the same statement text. Each cluster therefore attaches a
// Scope, which namespaces keys and owns the cluster's invalidation state.
package qcache

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sqltypes"
)

// Config sizes a Cache.
type Config struct {
	// MaxEntries bounds the number of cached result sets across all scopes
	// (rounded up to a multiple of the shard count); zero means 4096.
	MaxEntries int
	// MaxRows is the largest result set worth caching; bigger results are
	// not inserted (they would evict many small hot entries for one cold
	// scan). Zero means 4096.
	MaxRows int
}

// shardCount is the number of independent LRU shards, mirroring the
// statement cache: power of two so shard selection is a mask.
const shardCount = 16

// DefaultMaxEntries bounds a cache built from the zero Config.
const DefaultMaxEntries = 4096

// DefaultMaxRows is the per-result row bound of the zero Config.
const DefaultMaxRows = 4096

// Stats are the cache's cumulative counters.
type Stats struct {
	// Hits counts lookups served from the cache.
	Hits uint64
	// Misses counts lookups that went to a backend: absent entries plus
	// entries rejected for the caller's consistency requirement.
	Misses uint64
	// Puts counts inserted entries.
	Puts uint64
	// RejectedPuts counts inserts refused because the result was too large
	// or already stale (fill race with a concurrent invalidation).
	RejectedPuts uint64
	// InvalidationEvents counts committed write/DDL events applied to the
	// invalidation state.
	InvalidationEvents uint64
	// InvalidatedEntries counts entries dropped on lookup because a write
	// had invalidated their tables.
	InvalidatedEntries uint64
	// Evictions counts LRU evictions.
	Evictions uint64
	// Flushes counts whole-scope flushes (epoch bumps).
	Flushes uint64
}

// Cache is a sharded, bounded query result cache. Safe for concurrent use.
// Cached *engine.Result values are shared across sessions: they are
// immutable by convention, exactly like the parsed statements the statement
// cache shares.
type Cache struct {
	shards   []qshard
	mask     uint64
	perShard int
	maxRows  int
	scopeIDs atomic.Uint64

	hits         metrics.Counter
	misses       metrics.Counter
	puts         metrics.Counter
	rejectedPuts metrics.Counter
	invalEvents  metrics.Counter
	invalEntries metrics.Counter
	evictions    metrics.Counter
	flushes      metrics.Counter
}

type qshard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recently used
}

// qentry is one cached result set.
type qentry struct {
	key string
	// tables are the lowercased db-qualified tables the result read.
	tables []string
	// dbs are the distinct lowercased databases of those tables.
	dbs []string
	// pos is the replication position the producing replica had applied
	// when the result was computed (a lower bound on its freshness).
	pos uint64
	// posHi is the producing replica's applied position observed AFTER the
	// result was computed: an upper bound on the state the result reflects.
	// Sessions enforcing monotonic reads advance their read floor to it on
	// a hit, so a later read can never be routed behind this result.
	posHi uint64
	res   *engine.Result
}

// New builds a cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxEntries < shardCount {
		cfg.MaxEntries = shardCount
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = DefaultMaxRows
	}
	c := &Cache{
		shards:   make([]qshard, shardCount),
		mask:     shardCount - 1,
		perShard: (cfg.MaxEntries + shardCount - 1) / shardCount,
		maxRows:  cfg.MaxRows,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
	}
	return c
}

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Puts:               c.puts.Load(),
		RejectedPuts:       c.rejectedPuts.Load(),
		InvalidationEvents: c.invalEvents.Load(),
		InvalidatedEntries: c.invalEntries.Load(),
		Evictions:          c.evictions.Load(),
		Flushes:            c.flushes.Load(),
	}
}

// Len returns the number of cached entries (including entries orphaned by a
// scope flush that the LRU has not recycled yet).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// NewScope attaches a cluster to the cache: an isolated key namespace with
// its own invalidation state sharing the cache's memory budget.
func (c *Cache) NewScope() *Scope {
	return &Scope{
		c:        c,
		id:       c.scopeIDs.Add(1),
		tableSeq: make(map[string]uint64),
		dbSeq:    make(map[string]uint64),
	}
}

// Scope is one cluster's view of a Cache. Safe for concurrent use.
type Scope struct {
	c  *Cache
	id uint64

	mu sync.RWMutex
	// epoch namespaces keys; FlushAll bumps it, instantly orphaning every
	// entry of this scope (the LRU recycles them).
	epoch uint64
	// tableSeq / dbSeq / allSeq record the highest committed write position
	// known to have touched a table, a whole database, or anything at all.
	// An entry is valid only if its position is at least as fresh as every
	// one that applies to it.
	tableSeq map[string]uint64
	dbSeq    map[string]uint64
	allSeq   uint64
}

// key builds the cache key. The statement text is the normalized rendering
// of the parsed AST, so textual variants of one statement share an entry.
// The user is part of the key: an entry is only ever served to the user
// whose own (authorized) backend execution produced it, so a cache hit can
// never bypass the engine's access checks — grants are only ever added, so
// fill-time authorization stays valid for the entry's lifetime.
func (s *Scope) key(epoch uint64, user, db, stmt string, binds []sqltypes.Value) string {
	var b strings.Builder
	b.Grow(len(user) + len(db) + len(stmt) + 32)
	b.WriteString("s")
	b.WriteString(strconv.FormatUint(s.id, 10))
	b.WriteString(".e")
	b.WriteString(strconv.FormatUint(epoch, 10))
	b.WriteString("|")
	b.WriteString(user)
	b.WriteString("|")
	b.WriteString(strings.ToLower(db))
	b.WriteString("|")
	b.WriteString(stmt)
	for _, v := range binds {
		b.WriteString("|")
		b.WriteString(v.String())
	}
	return b.String()
}

// staleLocked reports whether an entry at pos with the given tables/dbs has
// been invalidated. Caller holds s.mu (read or write).
func (s *Scope) staleLocked(pos uint64, tables, dbs []string) bool {
	if pos < s.allSeq {
		return true
	}
	for _, db := range dbs {
		if pos < s.dbSeq[db] {
			return true
		}
	}
	for _, t := range tables {
		if pos < s.tableSeq[t] {
			return true
		}
	}
	return false
}

// Get looks up a cached result for the given user. minPos is the lowest
// replication position the caller's read guarantee accepts: entries
// produced before it are misses. The returned result is shared and must be
// treated as immutable.
func (s *Scope) Get(user, db, stmt string, binds []sqltypes.Value, minPos uint64) (*engine.Result, bool) {
	res, _, ok := s.GetPos(user, db, stmt, binds, minPos)
	return res, ok
}

// GetPos is Get, additionally returning the upper bound on the replication
// position the cached result reflects (the serving replica's applied
// position right after the fill read). Sessions that guarantee monotonic
// reads advance their read floor to it.
func (s *Scope) GetPos(user, db, stmt string, binds []sqltypes.Value, minPos uint64) (*engine.Result, uint64, bool) {
	s.mu.RLock()
	epoch := s.epoch
	s.mu.RUnlock()
	key := s.key(epoch, user, db, stmt, binds)
	c := s.c
	sh := &c.shards[sqltypes.HashString(key)&c.mask]

	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Inc()
		return nil, 0, false
	}
	e := el.Value.(*qentry)
	sh.mu.Unlock()

	s.mu.RLock()
	stale := s.staleLocked(e.pos, e.tables, e.dbs)
	s.mu.RUnlock()
	if stale {
		sh.mu.Lock()
		if cur, ok := sh.entries[key]; ok && cur == el {
			sh.lru.Remove(el)
			delete(sh.entries, key)
			c.invalEntries.Inc()
		}
		sh.mu.Unlock()
		c.misses.Inc()
		return nil, 0, false
	}
	if e.pos < minPos {
		// Too old for this session's guarantee, but still the freshest
		// committed state for the entry's tables — keep it for sessions
		// with weaker requirements.
		c.misses.Inc()
		return nil, 0, false
	}
	sh.mu.Lock()
	if cur, ok := sh.entries[key]; ok && cur == el {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	c.hits.Inc()
	return e.res, e.posHi, true
}

// Put inserts a result the given user's session produced at replication
// position pos from the given db-qualified tables. The insert is refused
// when the result is too large or when a concurrent invalidation has
// already outpaced pos (fill race).
func (s *Scope) Put(user, db, stmt string, binds []sqltypes.Value, tables []string, pos uint64, res *engine.Result) {
	s.PutAt(user, db, stmt, binds, tables, pos, pos, res)
}

// PutAt is Put with the freshness bounds split: pos is the sound lower
// bound used for invalidation and minimum-position checks (the replica's
// applied position BEFORE the fill read), posHi the upper bound on the
// state the result can reflect (applied position AFTER it), handed back by
// GetPos for monotonic-read floors.
func (s *Scope) PutAt(user, db, stmt string, binds []sqltypes.Value, tables []string, pos, posHi uint64, res *engine.Result) {
	c := s.c
	if res == nil || len(res.Rows) > c.maxRows {
		c.rejectedPuts.Inc()
		return
	}
	if posHi < pos {
		posHi = pos
	}
	qt := qualifyTables(db, tables)
	dbs := distinctDBs(qt)

	s.mu.RLock()
	epoch := s.epoch
	stale := s.staleLocked(pos, qt, dbs)
	s.mu.RUnlock()
	if stale {
		c.rejectedPuts.Inc()
		return
	}
	key := s.key(epoch, user, db, stmt, binds)
	e := &qentry{key: key, tables: qt, dbs: dbs, pos: pos, posHi: posHi, res: res}

	sh := &c.shards[sqltypes.HashString(key)&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		// Keep the freshest result for the key.
		if el.Value.(*qentry).pos <= pos {
			el.Value = e
		}
		sh.lru.MoveToFront(el)
		c.puts.Inc()
		return
	}
	sh.entries[key] = sh.lru.PushFront(e)
	c.puts.Inc()
	if sh.lru.Len() > c.perShard {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*qentry).key)
		c.evictions.Inc()
	}
}

// ApplyEvent folds one committed binlog event into the invalidation state.
// Events with a captured write set invalidate exactly the tables written;
// DDL and writes with an unknown table footprint flush the affected
// database(s) — or everything, when no database can be named.
func (s *Scope) ApplyEvent(ev engine.Event) {
	tables := ev.Tables()
	if ev.DDL || len(tables) == 0 {
		s.flushEventDBs(ev)
	} else {
		s.InvalidateTables(tables, ev.Seq)
		return
	}
	s.c.invalEvents.Inc()
}

// flushEventDBs flushes the databases an opaque (DDL or footprint-unknown)
// event can have touched: the statement's own tables and named databases
// when they parse, the session database otherwise.
func (s *Scope) flushEventDBs(ev engine.Event) {
	dbs := eventDatabases(ev)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(dbs) == 0 {
		if ev.Seq > s.allSeq {
			s.allSeq = ev.Seq
		}
		return
	}
	for _, db := range dbs {
		if ev.Seq > s.dbSeq[db] {
			s.dbSeq[db] = ev.Seq
		}
	}
}

// InvalidateTables records that the given db-qualified tables were written
// at position seq. Tables without a database qualifier invalidate across
// every database (conservative).
func (s *Scope) InvalidateTables(tables []string, seq uint64) {
	s.mu.Lock()
	for _, t := range tables {
		t = strings.ToLower(t)
		if !strings.Contains(t, ".") {
			if seq > s.allSeq {
				s.allSeq = seq
			}
			continue
		}
		if seq > s.tableSeq[t] {
			s.tableSeq[t] = seq
		}
	}
	s.mu.Unlock()
	s.c.invalEvents.Inc()
}

// FlushDatabase invalidates everything cached from one database as of seq;
// an empty database name flushes the whole scope's contents as of seq.
func (s *Scope) FlushDatabase(db string, seq uint64) {
	s.mu.Lock()
	if db == "" {
		if seq > s.allSeq {
			s.allSeq = seq
		}
	} else {
		db = strings.ToLower(db)
		if seq > s.dbSeq[db] {
			s.dbSeq[db] = seq
		}
	}
	s.mu.Unlock()
	s.c.invalEvents.Inc()
}

// FlushAll instantly orphans every entry of this scope, independent of
// position — used at failover, where the replication position space is
// re-aligned and position comparisons stop being meaningful.
func (s *Scope) FlushAll() {
	s.mu.Lock()
	s.epoch++
	s.tableSeq = make(map[string]uint64)
	s.dbSeq = make(map[string]uint64)
	s.allSeq = 0
	s.mu.Unlock()
	s.c.flushes.Inc()
}

// Cache returns the backing cache (for stats).
func (s *Scope) Cache() *Cache { return s.c }

// qualifyTables lowercases table names and qualifies unqualified ones with
// the session database.
func qualifyTables(db string, tables []string) []string {
	out := make([]string, 0, len(tables))
	for _, t := range tables {
		t = strings.ToLower(t)
		if !strings.Contains(t, ".") && db != "" {
			t = strings.ToLower(db) + "." + t
		}
		out = append(out, t)
	}
	return out
}

// distinctDBs extracts the distinct database prefixes of qualified tables.
func distinctDBs(tables []string) []string {
	var out []string
	for _, t := range tables {
		i := strings.IndexByte(t, '.')
		if i < 0 {
			continue
		}
		db := t[:i]
		dup := false
		for _, d := range out {
			if d == db {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, db)
		}
	}
	return out
}
