package recoverylog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := from + i
		if _, err := l.AppendEntry(
			[]string{fmt.Sprintf("UPDATE t SET v = %d WHERE id = %d", id, id)},
			[]string{"d.t"}, false); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
}

func TestDiskLogReloadsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEntries: 10, FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 25)
	l.CheckpointAt("mark", 7)
	if err := l.AddCheckpoint("snap", 20, []byte("backup-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Head() != 25 || l2.Len() != 25 {
		t.Fatalf("reload: head=%d len=%d, want 25/25", l2.Head(), l2.Len())
	}
	if seq, ok := l2.CheckpointSeq("mark"); !ok || seq != 7 {
		t.Fatalf("checkpoint mark: %d %v", seq, ok)
	}
	if payload, ok := l2.CheckpointPayload("snap"); !ok || string(payload) != "backup-bytes" {
		t.Fatalf("checkpoint payload lost: %q %v", payload, ok)
	}
	// Appends continue in the same sequence space.
	appendN(t, l2, 26, 5)
	if l2.Head() != 30 {
		t.Fatalf("head after continued appends = %d, want 30", l2.Head())
	}
	entries := l2.ReadFrom(24, 0)
	if len(entries) != 6 || entries[0].Seq != 25 || entries[5].Seq != 30 {
		t.Fatalf("ReadFrom(24): %v", entries)
	}
}

func TestDiskLogHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEntries: 100, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the segment tail.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reload after torn tail must heal, got %v", err)
	}
	defer l2.Close()
	if l2.Head() != 9 {
		t.Fatalf("head after heal = %d, want 9 (torn entry dropped)", l2.Head())
	}
	// The healed log accepts new appends at the healed position.
	appendN(t, l2, 10, 1)
	if l2.Head() != 10 {
		t.Fatalf("head after re-append = %d", l2.Head())
	}
}

func TestDiskLogCorruptMiddleSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEntries: 5, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 12) // three segments: 1-5, 6-10, 11-12
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %v", segs)
	}
	// Flip a byte in the middle segment: that is corruption, not a torn
	// tail — reload must refuse, not silently drop committed entries.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt middle segment must fail reload")
	}
}

func TestCompactionBoundsLogAndDisk(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEntries: 10, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 95)
	if err := l.AddCheckpoint("snap-80", 80, []byte("b")); err != nil {
		t.Fatal(err)
	}
	l.Register("slave-1", 90)
	segsBefore, lenBefore := l.Segments(), l.Len()

	dropped, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("compaction dropped nothing")
	}
	// Slave at 90 restores from snap-80, replaying from 81: segments whose
	// entries all sit at or below 80 are dead — 1..80 (8 whole segments).
	if got := l.CompactedThrough(); got != 80 {
		t.Fatalf("compacted through %d, want 80", got)
	}
	if l.Segments() >= segsBefore || l.Len() >= lenBefore {
		t.Fatalf("compaction did not shrink: segs %d->%d len %d->%d",
			segsBefore, l.Segments(), lenBefore, l.Len())
	}
	if l.Head() != 95 {
		t.Fatalf("head changed by compaction: %d", l.Head())
	}
	// Replay below the horizon must fail loudly, not silently skip.
	if _, err := l.ReplaySerial(0, 95, func(Entry) error { return nil }); err == nil {
		t.Fatal("replay below compaction horizon must error")
	}
	// A registered replica below every checkpoint does not block compaction
	// (it will clone the latest checkpoint), and the bound survives reload.
	l2, err := Open(dir, Options{SegmentEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.CompactedThrough() != 80 || l2.Head() != 95 {
		t.Fatalf("reload after compaction: base=%d head=%d", l2.CompactedThrough(), l2.Head())
	}
}

func TestCompactionWithoutCheckpointKeepsEverything(t *testing.T) {
	l := New()
	appendN(t, l, 1, 50)
	l.Register("r", 50)
	if dropped, _ := l.Compact(); dropped != 0 {
		t.Fatalf("compaction without a payload checkpoint dropped %d entries", dropped)
	}
}

func TestCompactionHonorsStalestRegisteredReplica(t *testing.T) {
	l := New()
	appendN(t, l, 1, 100)
	if err := l.AddCheckpoint("c40", 40, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.AddCheckpoint("c90", 90, []byte("b")); err != nil {
		t.Fatal(err)
	}
	l.Register("fresh", 100)
	l.Register("laggard", 55) // needs c40 + tail
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := l.CompactedThrough(); got != 40 {
		t.Fatalf("compacted through %d, want 40 (laggard pins c40)", got)
	}
	// Once the laggard advances past c90, the floor moves with it.
	l.Register("laggard", 95)
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := l.CompactedThrough(); got != 90 {
		t.Fatalf("compacted through %d, want 90", got)
	}
}

func TestCompactionRespectsReplayPins(t *testing.T) {
	l := New()
	appendN(t, l, 1, 100)
	if err := l.AddCheckpoint("c90", 90, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// An in-flight tail replay from 40 sits below every checkpoint: its
	// registration does not hold the floor, but its pin must.
	l.Register("resyncer", 40)
	l.PinReplay("resyncer", 40)
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := l.CompactedThrough(); got != 40 {
		t.Fatalf("compacted through %d with replay pinned at 40", got)
	}
	// Replay from the pinned position still works mid-compaction.
	if _, err := l.ReplaySerial(40, 100, func(Entry) error { return nil }); err != nil {
		t.Fatal(err)
	}
	l.Unpin("resyncer")
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := l.CompactedThrough(); got != 90 {
		t.Fatalf("compacted through %d after unpin, want 90", got)
	}
}

func TestTruncateTailDropsLostSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEntries: 5, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 13)
	l.CheckpointAt("above", 12)
	l.CheckpointAt("below", 6)
	if err := l.TruncateTail(8); err != nil {
		t.Fatal(err)
	}
	if l.Head() != 8 {
		t.Fatalf("head after truncate = %d, want 8", l.Head())
	}
	if _, ok := l.CheckpointSeq("above"); ok {
		t.Fatal("checkpoint above the truncation survived")
	}
	if seq, ok := l.CheckpointSeq("below"); !ok || seq != 6 {
		t.Fatal("checkpoint below the truncation lost")
	}
	// New appends continue at 9, and the whole state survives reload.
	appendN(t, l, 9, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Head() != 12 {
		t.Fatalf("head after reload = %d, want 12", l2.Head())
	}
	for i, e := range l2.ReadFrom(0, 0) {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

func TestResetToRebasesLogAndSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentEntries: 5, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 40)
	if err := l.AddCheckpoint("old", 35, []byte("old-lineage")); err != nil {
		t.Fatal(err)
	}
	// Failover landed below the compaction horizon: reset to the promoted
	// position and re-anchor with a fresh checkpoint.
	if err := l.ResetTo(12); err != nil {
		t.Fatal(err)
	}
	if l.Head() != 12 || l.Len() != 0 {
		t.Fatalf("after reset: head=%d len=%d, want 12/0", l.Head(), l.Len())
	}
	if _, ok := l.CheckpointSeq("old"); ok {
		t.Fatal("old-lineage checkpoint survived the reset")
	}
	if err := l.AddCheckpoint("anchor", 12, []byte("new-lineage")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 13, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 15 || l2.CompactedThrough() != 12 {
		t.Fatalf("reload after reset: head=%d base=%d, want 15/12", l2.Head(), l2.CompactedThrough())
	}
	l2.Close()

	// Crash immediately after a reset (before any append): the checkpoint
	// alone must re-base the log on reload instead of being dropped.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l3, 1, 4)
	if err := l3.ResetTo(9); err != nil {
		t.Fatal(err)
	}
	if err := l3.AddCheckpoint("anchor", 9, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l3.Close(); err != nil { // crash point: no appends since reset
		t.Fatal(err)
	}
	l4, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Close()
	if l4.Head() != 9 || l4.CompactedThrough() != 9 {
		t.Fatalf("checkpoint-only reload: head=%d base=%d, want 9/9", l4.Head(), l4.CompactedThrough())
	}
	if _, seq, ok := l4.LatestCheckpoint(); !ok || seq != 9 {
		t.Fatalf("anchor checkpoint lost: %d %v", seq, ok)
	}
	appendN(t, l4, 10, 2)
	if l4.Head() != 11 {
		t.Fatalf("appends after rebase: head=%d, want 11", l4.Head())
	}
}

func TestDiskLogSurvivesManyReopenCycles(t *testing.T) {
	dir := t.TempDir()
	for cycle := 0; cycle < 5; cycle++ {
		l, err := Open(dir, Options{SegmentEntries: 7, FsyncEvery: 3})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if got := l.Head(); got != uint64(cycle*10) {
			t.Fatalf("cycle %d: head %d, want %d", cycle, got, cycle*10)
		}
		appendN(t, l, cycle*10+1, 10)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
