package recoverylog

import (
	"os"
	"path/filepath"
	"testing"
)

// validSegments builds a well-formed two-segment log (entries 1..3 and
// 4..5) and returns both segment files' bytes for seeding and for the
// shape-2 continuation below.
func validSegments(t interface{ Fatal(...any) }) (first, second []byte) {
	dir, err := os.MkdirTemp("", "rlseed")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := Open(dir, Options{SegmentEntries: 3, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]string{"UPDATE t SET v = 1"}, []string{"d.t"}, false)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 2 {
		t.Fatal("expected two segments")
	}
	first, err = os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err = os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	return first, second
}

// FuzzRecoveryLogReload feeds arbitrary bytes to the segment reloader in
// both positions a crash can leave them:
//
//  1. as the final segment — a torn tail there must heal (truncate to the
//     good prefix) or error, never panic, and the healed log must accept
//     appends and reload cleanly a second time;
//  2. as a non-final segment (a valid segment follows) — corruption there
//     must be reported as an error, never repaired by silently dropping
//     committed entries.
func FuzzRecoveryLogReload(f *testing.F) {
	valid, tail := validSegments(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                       // torn tail
	f.Add(valid[:7])                                  // torn header
	f.Add([]byte{})                                   // empty segment file
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x5a
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Shape 1: fuzz bytes are the only (final) segment.
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{FsyncEvery: 1}) // must not panic
		if err == nil {
			head := l.Head()
			l.Append([]string{"INSERT INTO t (id) VALUES (1)"}, []string{"d.t"}, false)
			if got := l.Head(); got != head+1 {
				t.Fatalf("append after heal: head %d -> %d", head, got)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close after heal: %v", err)
			}
			if l2, err := Open(dir, Options{}); err != nil {
				t.Fatalf("healed log does not reload: %v", err)
			} else {
				if l2.Head() != head+1 {
					t.Fatalf("reload after heal: head %d, want %d", l2.Head(), head+1)
				}
				l2.Close()
			}
		}

		// Shape 2: fuzz bytes followed by a valid segment. Whatever the
		// loader decides (error or success), it must not panic, and it must
		// never succeed by dropping the valid later segment while keeping a
		// contiguity gap.
		dir2 := t.TempDir()
		if err := os.WriteFile(segPath(dir2, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(dir2, 4), tail, 0o644); err != nil {
			t.Fatal(err)
		}
		if l2, err := Open(dir2, Options{}); err == nil {
			// Load succeeded: the first segment must have decoded to exactly
			// entries 1..3 (anything shorter is a mid-log hole the loader
			// must reject) and the valid continuation 4..5 must be intact.
			if l2.Head() != 5 || l2.Len() != 5 {
				t.Fatalf("non-final segment healed silently: head=%d len=%d", l2.Head(), l2.Len())
			}
			l2.Close()
		}
	})
}
