package recoverylog

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAndRead(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		seq := l.Append([]string{fmt.Sprintf("stmt-%d", i)}, []string{"d.t"}, false)
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d", seq)
		}
	}
	if l.Head() != 5 || l.Len() != 5 {
		t.Fatalf("head=%d len=%d", l.Head(), l.Len())
	}
	out := l.ReadFrom(2, 2)
	if len(out) != 2 || out[0].Seq != 3 || out[1].Seq != 4 {
		t.Fatalf("read: %+v", out)
	}
	if got := l.ReadFrom(5, 0); got != nil {
		t.Fatalf("read past head: %v", got)
	}
}

func TestCheckpoints(t *testing.T) {
	l := New()
	l.Append([]string{"a"}, nil, false)
	seq := l.Checkpoint("backup-1")
	if seq != 1 {
		t.Fatalf("checkpoint seq = %d", seq)
	}
	l.Append([]string{"b"}, nil, false)
	l.CheckpointAt("manual", 0)
	got, ok := l.CheckpointSeq("backup-1")
	if !ok || got != 1 {
		t.Fatalf("lookup: %d %v", got, ok)
	}
	names := l.Checkpoints()
	if len(names) != 2 || names[0] != "manual" || names[1] != "backup-1" {
		t.Fatalf("names: %v", names)
	}
}

func TestReplaySerialOrder(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append([]string{fmt.Sprintf("%d", i)}, []string{"d.t"}, false)
	}
	var got []string
	n, err := l.ReplaySerial(3, 8, func(e Entry) error {
		got = append(got, e.Stmts[0])
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	want := []string{"3", "4", "5", "6", "7"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestReplayParallelPreservesPerTableOrder(t *testing.T) {
	l := New()
	// Interleaved entries on two tables.
	for i := 0; i < 50; i++ {
		table := "d.a"
		if i%2 == 1 {
			table = "d.b"
		}
		l.Append([]string{fmt.Sprintf("%d", i)}, []string{table}, false)
	}
	var mu sync.Mutex
	perTable := map[string][]int{}
	n, err := l.ReplayParallel(0, l.Head(), 8, func(e Entry) error {
		mu.Lock()
		defer mu.Unlock()
		var v int
		fmt.Sscanf(e.Stmts[0], "%d", &v)
		perTable[e.Tables[0]] = append(perTable[e.Tables[0]], v)
		return nil
	})
	if err != nil || n != 50 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for table, seq := range perTable {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("table %s out of order: %v", table, seq)
			}
		}
	}
}

func TestReplayParallelBarriers(t *testing.T) {
	l := New()
	l.Append([]string{"a1"}, []string{"d.a"}, false)
	l.Append([]string{"ddl"}, nil, true) // barrier
	l.Append([]string{"a2"}, []string{"d.a"}, false)
	var mu sync.Mutex
	var got []string
	_, err := l.ReplayParallel(0, 3, 4, func(e Entry) error {
		mu.Lock()
		got = append(got, e.Stmts[0])
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a1" || got[1] != "ddl" || got[2] != "a2" {
		t.Fatalf("barrier order: %v", got)
	}
}

func TestReplayParallelStopsOnError(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append([]string{fmt.Sprintf("%d", i)}, []string{"d.t"}, false)
	}
	_, err := l.ReplayParallel(0, 10, 4, func(e Entry) error {
		if e.Seq == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestReplayEquivalenceProperty(t *testing.T) {
	// Property: for any assignment of entries to tables, serial and
	// parallel replay apply the same multiset of entries, and per-table
	// subsequences are in log order.
	f := func(assignment []uint8) bool {
		if len(assignment) == 0 || len(assignment) > 60 {
			return true
		}
		l := New()
		for i, a := range assignment {
			l.Append([]string{fmt.Sprintf("%d", i)}, []string{fmt.Sprintf("d.t%d", a%4)}, false)
		}
		var mu sync.Mutex
		serial := map[string]int{}
		parallel := map[string]int{}
		if _, err := l.ReplaySerial(0, l.Head(), func(e Entry) error {
			serial[e.Stmts[0]]++
			return nil
		}); err != nil {
			return false
		}
		if _, err := l.ReplayParallel(0, l.Head(), 6, func(e Entry) error {
			mu.Lock()
			parallel[e.Stmts[0]]++
			mu.Unlock()
			return nil
		}); err != nil {
			return false
		}
		if len(serial) != len(parallel) {
			return false
		}
		for k, v := range serial {
			if parallel[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
