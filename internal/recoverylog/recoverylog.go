// Package recoverylog implements a Sequoia-style recovery log (§4.4.2): a
// totally-ordered record of every update the cluster executed, with named
// checkpoints. A removed replica is checkpointed at the last entry it
// executed; re-adding it replays the log from that checkpoint. Replay can be
// serial (the mode whose catch-up time the paper criticizes) or parallel
// with table-conflict scheduling.
package recoverylog

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one logged update: the statements of a committed transaction (or
// one DDL statement) plus the tables it touches, for conflict scheduling.
type Entry struct {
	Seq    uint64 // dense, 1-based
	Stmts  []string
	Tables []string // db-qualified; empty means "conflicts with everything"
	DDL    bool
}

// Log is an in-memory recovery log. Safe for concurrent use.
type Log struct {
	mu          sync.Mutex
	entries     []Entry
	checkpoints map[string]uint64
}

// New creates an empty log.
func New() *Log {
	return &Log{checkpoints: make(map[string]uint64)}
}

// Append records an update and returns its sequence number.
func (l *Log) Append(stmts []string, tables []string, ddl bool) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := uint64(len(l.entries)) + 1
	l.entries = append(l.entries, Entry{
		Seq:    seq,
		Stmts:  append([]string(nil), stmts...),
		Tables: append([]string(nil), tables...),
		DDL:    ddl,
	})
	return seq
}

// Head returns the last assigned sequence number (0 when empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Checkpoint names the current head ("insert a checkpoint pointing to the
// last update statement executed by the removed node").
func (l *Log) Checkpoint(name string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := uint64(len(l.entries))
	l.checkpoints[name] = seq
	return seq
}

// CheckpointAt names an explicit position.
func (l *Log) CheckpointAt(name string, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkpoints[name] = seq
}

// CheckpointSeq resolves a checkpoint name.
func (l *Log) CheckpointSeq(name string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, ok := l.checkpoints[name]
	return seq, ok
}

// Checkpoints lists checkpoint names sorted by position.
func (l *Log) Checkpoints() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.checkpoints))
	for n := range l.checkpoints {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if l.checkpoints[names[i]] == l.checkpoints[names[j]] {
			return names[i] < names[j]
		}
		return l.checkpoints[names[i]] < l.checkpoints[names[j]]
	})
	return names
}

// ReadFrom returns entries with Seq > after, up to max (0 = all).
func (l *Log) ReadFrom(after uint64, max int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after >= uint64(len(l.entries)) {
		return nil
	}
	out := l.entries[after:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return append([]Entry(nil), out...)
}

// Apply is the callback replay uses to execute one entry on the recovering
// replica.
type Apply func(Entry) error

// ReplaySerial replays entries (after, to] one at a time — the mode in
// which "a new replica may never catch up if the workload is update-heavy".
// It returns how many entries applied before stopping; on error that count
// is the contiguous applied prefix, so after+n is the exact resume position.
func (l *Log) ReplaySerial(after, to uint64, apply Apply) (int, error) {
	n := 0
	for _, e := range l.ReadFrom(after, 0) {
		if e.Seq > to {
			break
		}
		if err := apply(e); err != nil {
			return n, fmt.Errorf("recoverylog: replay of entry %d: %w", e.Seq, err)
		}
		n++
	}
	return n, nil
}

// ReplayParallel replays entries (after, to] extracting parallelism from the
// log (§4.4.2): entries run concurrently on up to workers goroutines unless
// they share a table, in which case log order is preserved. DDL and
// unknown-footprint entries act as barriers.
//
// Like ReplaySerial, the returned count is the contiguous applied prefix
// from `after`: after+n is a position every entry at or below which has
// applied, so a resumption from it never skips work. On error, entries
// beyond the prefix may also have applied out of order (the concurrent
// in-flight ones); a resumption re-applies them, which is the same
// re-execution exposure a mid-transaction crash already has.
func (l *Log) ReplayParallel(after, to uint64, workers int, apply Apply) (int, error) {
	if workers < 1 {
		workers = 1
	}
	entries := l.ReadFrom(after, 0)
	var batch []Entry
	for _, e := range entries {
		if e.Seq > to {
			break
		}
		batch = append(batch, e)
	}
	sem := make(chan struct{}, workers)
	// lastWriter maps a table to the completion channel of the latest
	// entry that touches it; an entry waits on all its tables' channels.
	lastWriter := make(map[string]chan struct{})
	var barrier chan struct{} // completion of the last DDL/unknown entry
	var allDone []chan struct{}

	var mu sync.Mutex
	var firstErr error
	applied := make([]bool, len(batch))

	for i, e := range batch {
		deps := make([]chan struct{}, 0, len(e.Tables)+1)
		if barrier != nil {
			deps = append(deps, barrier)
		}
		isBarrier := e.DDL || len(e.Tables) == 0
		if isBarrier {
			// Wait for everything in flight.
			deps = append(deps, allDone...)
		} else {
			for _, tab := range e.Tables {
				if ch, ok := lastWriter[tab]; ok {
					deps = append(deps, ch)
				}
			}
		}
		done := make(chan struct{})
		for _, tab := range e.Tables {
			lastWriter[tab] = done
		}
		if isBarrier {
			barrier = done
			lastWriter = make(map[string]chan struct{})
			allDone = nil
		}
		allDone = append(allDone, done)

		entry := e
		idx := i
		go func(deps []chan struct{}, done chan struct{}) {
			defer close(done)
			for _, d := range deps {
				<-d
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			if err := apply(entry); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("recoverylog: replay of entry %d: %w", entry.Seq, err)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			applied[idx] = true
			mu.Unlock()
		}(deps, done)
	}
	for _, d := range allDone {
		<-d
	}
	if barrier != nil {
		<-barrier
	}
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for n < len(applied) && applied[n] {
		n++
	}
	return n, firstErr
}
