// Package recoverylog implements a Sequoia-style recovery log (§4.4.2): a
// totally-ordered record of every update the cluster executed, with named
// checkpoints. A removed replica is checkpointed at the last entry it
// executed; re-adding it replays the log from that checkpoint. Replay can be
// serial (the mode whose catch-up time the paper criticizes) or parallel
// with table-conflict scheduling.
//
// The log runs in two modes. New() is purely in-memory (the seed behaviour,
// still what unit tests and single-run benchmarks want). Open(dir, opts)
// backs the same API with segmented on-disk storage: appends stream into
// segment files with batched fsync, checkpoints persist with an optional
// payload (an encoded engine backup), and a crash-interrupted append is
// healed on reload by truncating the torn tail. In both modes the footprint
// is bounded for the first time: Compact drops whole segments (and their
// in-memory entries) below the oldest checkpoint still needed by any
// registered replica.
package recoverylog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Entry is one logged update: the statements of a committed transaction (or
// one DDL statement) plus the tables it touches, for conflict scheduling.
type Entry struct {
	Seq    uint64 // dense, 1-based
	Stmts  []string
	Tables []string // db-qualified; empty means "conflicts with everything"
	DDL    bool
}

// checkpointRec is a named log position, optionally carrying the encoded
// backup snapshot taken at that position (the clone base for replicas too
// stale for tail replay).
type checkpointRec struct {
	Name    string
	Seq     uint64
	Payload []byte
}

// ErrCompacted is returned when a replay or read references entries that
// compaction has already dropped; the caller must clone a checkpoint backup
// instead (Provisioner.ResyncAuto does exactly that).
var ErrCompacted = errors.New("recoverylog: position below compaction horizon")

// Log is a recovery log, in-memory or disk-backed. Safe for concurrent use.
type Log struct {
	mu          sync.Mutex
	entries     []Entry // retained entries; entries[0].Seq == base+1
	base        uint64  // entries at or below base were compacted away
	checkpoints map[string]*checkpointRec
	replicas    map[string]uint64 // registered replica -> applied position
	pins        map[string]uint64 // in-flight replays -> replay position
	store       *diskStore        // nil in memory-only mode
	ioErr       error             // first storage failure, sticky
}

// New creates an empty in-memory log.
func New() *Log {
	return &Log{
		checkpoints: make(map[string]*checkpointRec),
		replicas:    make(map[string]uint64),
		pins:        make(map[string]uint64),
	}
}

// Open creates (or reloads) a disk-backed log in dir. An interrupted append
// leaves a torn record at the tail of the last segment; reload truncates it
// — committed entries before it survive, the torn one is gone, matching what
// its commit acknowledgement (never sent) promised. Corruption anywhere
// else is reported as an error, never a panic.
func Open(dir string, opts Options) (*Log, error) {
	store, entries, base, ckpts, err := openStore(dir, opts)
	if err != nil {
		return nil, err
	}
	l := New()
	l.entries = entries
	l.base = base
	l.checkpoints = ckpts
	l.store = store
	return l, nil
}

// Close flushes and closes the backing store (no-op in memory mode).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return l.ioErr
	}
	err := l.store.close()
	if l.ioErr == nil {
		l.ioErr = err
	}
	return err
}

// Sync forces pending appends to disk (no-op in memory mode).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.store == nil {
		return nil
	}
	if err := l.store.sync(); err != nil && l.ioErr == nil {
		l.ioErr = err
	}
	return l.ioErr
}

// SyncCount returns how many fsyncs the backing store has actually issued
// (0 in memory mode). Group-commit amortization is measured against it:
// commits acknowledged divided by fsyncs issued.
func (l *Log) SyncCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return 0
	}
	return l.store.syncs
}

// Err returns the first storage error the log has hit (nil when healthy).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ioErr
}

// Append records an update and returns its sequence number. Storage errors
// are sticky and reported by Err; callers that must not lose acknowledged
// durability use AppendEntry.
func (l *Log) Append(stmts []string, tables []string, ddl bool) uint64 {
	seq, _ := l.AppendEntry(stmts, tables, ddl)
	return seq
}

// AppendEntry records an update, returning its sequence number and any
// storage error (the entry is always retained in memory).
func (l *Log) AppendEntry(stmts []string, tables []string, ddl bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.base + uint64(len(l.entries)) + 1
	e := Entry{
		Seq:    seq,
		Stmts:  append([]string(nil), stmts...),
		Tables: append([]string(nil), tables...),
		DDL:    ddl,
	}
	l.entries = append(l.entries, e)
	if l.store != nil {
		if err := l.store.appendEntry(e); err != nil && l.ioErr == nil {
			l.ioErr = err
		}
	}
	return seq, l.ioErr
}

// Head returns the last assigned sequence number (0 when empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.entries))
}

// Len returns the number of retained entries (compacted entries excluded).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// CompactedThrough returns the highest sequence number dropped by
// compaction; entries at or below it are gone (0 = nothing dropped).
func (l *Log) CompactedThrough() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Segments reports how many on-disk segment files back the log (0 in
// memory mode); compaction tests assert it shrinks.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return 0
	}
	return len(l.store.segs)
}

// Checkpoint names the current head ("insert a checkpoint pointing to the
// last update statement executed by the removed node").
func (l *Log) Checkpoint(name string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.base + uint64(len(l.entries))
	l.addCheckpointLocked(&checkpointRec{Name: name, Seq: seq})
	return seq
}

// CheckpointAt names an explicit position.
func (l *Log) CheckpointAt(name string, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addCheckpointLocked(&checkpointRec{Name: name, Seq: seq})
}

// AddCheckpoint records a named position together with its snapshot payload
// (an encoded engine backup). Payload checkpoints are the clone bases
// compaction retains and ResyncAuto restores from.
func (l *Log) AddCheckpoint(name string, seq uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addCheckpointLocked(&checkpointRec{
		Name: name, Seq: seq, Payload: append([]byte(nil), payload...),
	})
	return l.ioErr
}

func (l *Log) addCheckpointLocked(c *checkpointRec) {
	l.checkpoints[c.Name] = c
	if l.store != nil {
		if err := l.store.saveCheckpoints(l.checkpoints); err != nil && l.ioErr == nil {
			l.ioErr = err
		}
	}
}

// CheckpointSeq resolves a checkpoint name.
func (l *Log) CheckpointSeq(name string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.checkpoints[name]
	if !ok {
		return 0, false
	}
	return c.Seq, true
}

// CheckpointPayload returns the snapshot payload stored with a checkpoint
// (nil, false when the checkpoint is position-only or unknown).
func (l *Log) CheckpointPayload(name string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.checkpoints[name]
	if !ok || c.Payload == nil {
		return nil, false
	}
	return append([]byte(nil), c.Payload...), true
}

// Checkpoints lists checkpoint names sorted by position.
func (l *Log) Checkpoints() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.checkpoints))
	for n := range l.checkpoints {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if l.checkpoints[names[i]].Seq == l.checkpoints[names[j]].Seq {
			return names[i] < names[j]
		}
		return l.checkpoints[names[i]].Seq < l.checkpoints[names[j]].Seq
	})
	return names
}

// NearestCheckpoint returns the newest payload-bearing checkpoint at or
// below pos — the cheapest clone base for a replica whose applied position
// is pos. ok is false when no payload checkpoint qualifies.
func (l *Log) NearestCheckpoint(pos uint64) (name string, seq uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pickCheckpointLocked(pos)
}

// LatestCheckpoint returns the newest payload-bearing checkpoint.
func (l *Log) LatestCheckpoint() (name string, seq uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pickCheckpointLocked(^uint64(0))
}

func (l *Log) pickCheckpointLocked(pos uint64) (string, uint64, bool) {
	var bestName string
	var bestSeq uint64
	found := false
	for n, c := range l.checkpoints {
		if c.Payload == nil || c.Seq > pos {
			continue
		}
		if !found || c.Seq > bestSeq || (c.Seq == bestSeq && n < bestName) {
			bestName, bestSeq, found = n, c.Seq, true
		}
	}
	return bestName, bestSeq, found
}

// Register records a replica's applied position. Compaction never drops the
// checkpoint a registered replica would restore from, so a registered
// replica can always resync via checkpoint + tail instead of a cold clone.
func (l *Log) Register(replica string, pos uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.replicas[replica] = pos
}

// Deregister forgets a replica; its positions no longer pin segments.
func (l *Log) Deregister(replica string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.replicas, replica)
}

// PinReplay marks an in-flight replay at pos: compaction will not drop any
// entry above pos until Unpin, regardless of checkpoints. Registration
// alone cannot give that guarantee — a replica positioned below every
// payload checkpoint does not hold the floor (by design, or stale replicas
// would make the log unbounded again), but a replay actively running there
// must not have its entries dropped mid-stream. Pins are transient: they
// live for one resync, advancing as it advances.
func (l *Log) PinReplay(name string, pos uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pins[name] = pos
}

// Unpin removes a replay pin.
func (l *Log) Unpin(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.pins, name)
}

// Registered returns the known replica positions.
func (l *Log) Registered() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.replicas))
	for k, v := range l.replicas {
		out[k] = v
	}
	return out
}

// Compact drops entries (and, on disk, whole segments) no resync can ever
// need: everything at or below the oldest checkpoint still needed by a
// registered replica. A replica at position p restores from the newest
// payload checkpoint ≤ p (or clones the latest checkpoint outright when it
// is older than every checkpoint), so entries below that floor are dead.
// Without a payload checkpoint nothing is dropped — the log is the only
// recovery source. Returns how many entries were dropped.
func (l *Log) Compact() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, latest, ok := l.pickCheckpointLocked(^uint64(0))
	if !ok {
		return 0, nil
	}
	floor := latest
	for _, pos := range l.replicas {
		if _, seq, ok := l.pickCheckpointLocked(pos); ok {
			if seq < floor {
				floor = seq
			}
		}
		// A replica below every checkpoint will clone the latest one; its
		// position holds nothing.
	}
	// In-flight replays pin their position absolutely: dropping entries out
	// from under a running tail replay would abort it with ErrCompacted.
	for _, pos := range l.pins {
		if pos < floor {
			floor = pos
		}
	}
	if floor <= l.base {
		return 0, nil
	}
	if l.store != nil {
		// Segment granularity: drop only segments entirely below the floor.
		newBase, err := l.store.compactBelow(floor)
		if err != nil {
			if l.ioErr == nil {
				l.ioErr = err
			}
			return 0, err
		}
		floor = newBase
		if floor <= l.base {
			return 0, nil
		}
	}
	dropped := int(floor - l.base)
	if dropped > len(l.entries) {
		dropped = len(l.entries)
	}
	l.entries = append([]Entry(nil), l.entries[dropped:]...)
	l.base = floor
	return dropped, nil
}

// TruncateTail discards every entry above `to` — the lost-suffix repair a
// failover needs: transactions the old master logged but the promoted slave
// never applied "never happened" in the new position space. Checkpoints
// above the new head are dropped with them.
func (l *Log) TruncateTail(to uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	head := l.base + uint64(len(l.entries))
	if to >= head {
		return nil
	}
	if to < l.base {
		return fmt.Errorf("%w: truncate to %d, compacted through %d", ErrCompacted, to, l.base)
	}
	l.entries = append([]Entry(nil), l.entries[:to-l.base]...)
	changedCkpt := false
	for name, c := range l.checkpoints {
		if c.Seq > to {
			delete(l.checkpoints, name)
			changedCkpt = true
		}
	}
	if l.store != nil {
		if err := l.store.truncateTail(to, l.entries); err != nil {
			if l.ioErr == nil {
				l.ioErr = err
			}
			return err
		}
		if changedCkpt {
			if err := l.store.saveCheckpoints(l.checkpoints); err != nil {
				if l.ioErr == nil {
					l.ioErr = err
				}
				return err
			}
		}
	}
	return nil
}

// ResetTo discards every entry and checkpoint and restarts the log at the
// given base (the next append is assigned base+1). Failover uses it when
// the retained log cannot be truncated back to the promoted position
// (compaction already advanced past it): everything retained belongs to the
// lost lineage, so the only sound log is an empty one re-based at the new
// master's position — immediately followed by a fresh checkpoint backup so
// the log has a clone base again.
func (l *Log) ResetTo(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
	l.base = base
	l.checkpoints = make(map[string]*checkpointRec)
	if l.store != nil {
		if err := l.store.reset(); err != nil {
			if l.ioErr == nil {
				l.ioErr = err
			}
			return err
		}
		if err := l.store.saveCheckpoints(l.checkpoints); err != nil {
			if l.ioErr == nil {
				l.ioErr = err
			}
			return err
		}
	}
	return nil
}

// ReadFrom returns entries with Seq > after, up to max (0 = all). Positions
// below the compaction horizon return nothing; check CompactedThrough when
// an expected backlog comes back empty.
func (l *Log) ReadFrom(after uint64, max int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.base {
		return nil
	}
	idx := int(after - l.base)
	if idx >= len(l.entries) {
		return nil
	}
	out := l.entries[idx:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return append([]Entry(nil), out...)
}

// Apply is the callback replay uses to execute one entry on the recovering
// replica.
type Apply func(Entry) error

// ReplaySerial replays entries (after, to] one at a time — the mode in
// which "a new replica may never catch up if the workload is update-heavy".
// It returns how many entries applied before stopping; on error that count
// is the contiguous applied prefix, so after+n is the exact resume position.
// Replaying from below the compaction horizon fails with ErrCompacted.
func (l *Log) ReplaySerial(after, to uint64, apply Apply) (int, error) {
	if c := l.CompactedThrough(); after < c {
		return 0, fmt.Errorf("%w: replay from %d, compacted through %d", ErrCompacted, after, c)
	}
	n := 0
	for _, e := range l.ReadFrom(after, 0) {
		if e.Seq > to {
			break
		}
		if err := apply(e); err != nil {
			return n, fmt.Errorf("recoverylog: replay of entry %d: %w", e.Seq, err)
		}
		n++
	}
	return n, nil
}

// ReplayParallel replays entries (after, to] extracting parallelism from the
// log (§4.4.2): entries run concurrently on up to workers goroutines unless
// they share a table, in which case log order is preserved. DDL and
// unknown-footprint entries act as barriers.
//
// Like ReplaySerial, the returned count is the contiguous applied prefix
// from `after`: after+n is a position every entry at or below which has
// applied, so a resumption from it never skips work. On error, entries
// beyond the prefix may also have applied out of order (the concurrent
// in-flight ones); a resumption re-applies them, which is the same
// re-execution exposure a mid-transaction crash already has.
func (l *Log) ReplayParallel(after, to uint64, workers int, apply Apply) (int, error) {
	if c := l.CompactedThrough(); after < c {
		return 0, fmt.Errorf("%w: replay from %d, compacted through %d", ErrCompacted, after, c)
	}
	if workers < 1 {
		workers = 1
	}
	entries := l.ReadFrom(after, 0)
	var batch []Entry
	for _, e := range entries {
		if e.Seq > to {
			break
		}
		batch = append(batch, e)
	}
	sem := make(chan struct{}, workers)
	// lastWriter maps a table to the completion channel of the latest
	// entry that touches it; an entry waits on all its tables' channels.
	lastWriter := make(map[string]chan struct{})
	var barrier chan struct{} // completion of the last DDL/unknown entry
	var allDone []chan struct{}

	var mu sync.Mutex
	var firstErr error
	applied := make([]bool, len(batch))

	for i, e := range batch {
		deps := make([]chan struct{}, 0, len(e.Tables)+1)
		if barrier != nil {
			deps = append(deps, barrier)
		}
		isBarrier := e.DDL || len(e.Tables) == 0
		if isBarrier {
			// Wait for everything in flight.
			deps = append(deps, allDone...)
		} else {
			for _, tab := range e.Tables {
				if ch, ok := lastWriter[tab]; ok {
					deps = append(deps, ch)
				}
			}
		}
		done := make(chan struct{})
		for _, tab := range e.Tables {
			lastWriter[tab] = done
		}
		if isBarrier {
			barrier = done
			lastWriter = make(map[string]chan struct{})
			allDone = nil
		}
		allDone = append(allDone, done)

		entry := e
		idx := i
		go func(deps []chan struct{}, done chan struct{}) {
			defer close(done)
			for _, d := range deps {
				<-d
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return
			}
			if err := apply(entry); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("recoverylog: replay of entry %d: %w", entry.Seq, err)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			applied[idx] = true
			mu.Unlock()
		}(deps, done)
	}
	for _, d := range allDone {
		<-d
	}
	if barrier != nil {
		<-barrier
	}
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for n < len(applied) && applied[n] {
		n++
	}
	return n, firstErr
}
