package recoverylog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Options tunes a disk-backed log opened with Open.
type Options struct {
	// SegmentEntries is how many entries one segment file holds before the
	// log rotates to a new one; compaction drops whole segments, so smaller
	// segments bound the footprint tighter at the cost of more files.
	// Zero means 1024.
	SegmentEntries int
	// FsyncEvery batches durability: fsync after this many appends (and on
	// Sync/rotate/Close). 1 syncs every append; zero means 64. Entries
	// between the crash and the last fsync can be lost — the same window a
	// group-committed database WAL has.
	FsyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentEntries <= 0 {
		o.SegmentEntries = 1024
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 64
	}
	return o
}

const (
	segPrefix = "seg-"
	segSuffix = ".wal"
	ckptFile  = "checkpoints.dat"
	recHeader = 8        // uint32 length + uint32 crc32 of the payload
	maxRecord = 64 << 20 // sanity bound; a longer length prefix is corruption
)

// segMeta describes one on-disk segment file.
type segMeta struct {
	first uint64 // seq of the segment's first entry
	count int    // entries currently in the segment
	path  string
}

func (s segMeta) last() uint64 { return s.first + uint64(s.count) - 1 }

// diskStore is the segmented file backend. All methods are called with the
// owning Log's mutex held.
type diskStore struct {
	dir     string
	opts    Options
	segs    []segMeta
	active  *os.File // last segment, open for append; nil until first write
	pending int      // appends since the last fsync
	syncs   uint64   // fsyncs actually issued (group-commit accounting)
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix))
}

// openStore loads (or initializes) a log directory. It returns the retained
// entries, the compaction base, and the checkpoint set. A torn record at the
// tail of the last segment is truncated away; corruption anywhere else is an
// error.
func openStore(dir string, opts Options) (*diskStore, []Entry, uint64, map[string]*checkpointRec, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, nil, fmt.Errorf("recoverylog: open %s: %w", dir, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, nil, fmt.Errorf("recoverylog: open %s: %w", dir, err)
	}
	var segFiles []string
	for _, de := range names {
		n := de.Name()
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			segFiles = append(segFiles, n)
		}
	}
	sort.Strings(segFiles)

	st := &diskStore{dir: dir, opts: opts}
	var entries []Entry
	var base uint64
	baseSet := false
	for i, name := range segFiles {
		path := filepath.Join(dir, name)
		first, perr := parseSegName(name)
		if perr != nil {
			return nil, nil, 0, nil, perr
		}
		segEntries, goodBytes, rerr := readSegment(path)
		last := i == len(segFiles)-1
		if rerr != nil {
			if !last {
				return nil, nil, 0, nil, fmt.Errorf("recoverylog: segment %s: %w", name, rerr)
			}
			// Torn tail of the final segment: keep the good prefix, drop the
			// rest. The entries beyond it were never acknowledged as synced.
			if terr := os.Truncate(path, goodBytes); terr != nil {
				return nil, nil, 0, nil, fmt.Errorf("recoverylog: heal %s: %w", name, terr)
			}
		}
		if len(segEntries) > 0 && segEntries[0].Seq != first {
			return nil, nil, 0, nil, fmt.Errorf("recoverylog: segment %s starts at seq %d, want %d",
				name, segEntries[0].Seq, first)
		}
		if !baseSet {
			base = first - 1
			baseSet = true
		}
		want := base + uint64(len(entries)) + 1
		for _, e := range segEntries {
			if e.Seq != want {
				return nil, nil, 0, nil, fmt.Errorf("recoverylog: segment %s: seq %d breaks contiguity (want %d)",
					name, e.Seq, want)
			}
			want++
		}
		entries = append(entries, segEntries...)
		st.segs = append(st.segs, segMeta{first: first, count: len(segEntries), path: path})
	}
	// Drop empty trailing segments left by a crash between create and write.
	for len(st.segs) > 0 && st.segs[len(st.segs)-1].count == 0 {
		s := st.segs[len(st.segs)-1]
		if err := os.Remove(s.path); err != nil {
			return nil, nil, 0, nil, fmt.Errorf("recoverylog: remove empty %s: %w", s.path, err)
		}
		st.segs = st.segs[:len(st.segs)-1]
	}
	ckpts, err := loadCheckpoints(filepath.Join(dir, ckptFile))
	if err != nil {
		return nil, nil, 0, nil, err
	}
	head := base + uint64(len(entries))
	// A payload checkpoint ahead of every surviving entry means the entry
	// suffix was lost (crash inside the fsync window, or a failover reset
	// that crashed before its first append). The checkpoint is a complete
	// fsynced snapshot, so re-base the log on it instead of discarding it:
	// recovery clones the checkpoint with an empty tail.
	var rebase *checkpointRec
	for _, c := range ckpts {
		if c.Seq > head && c.Payload != nil && (rebase == nil || c.Seq > rebase.Seq) {
			rebase = c
		}
	}
	if rebase != nil {
		if err := st.reset(); err != nil {
			return nil, nil, 0, nil, err
		}
		entries = nil
		base = rebase.Seq
		head = base
	}
	// Position-only checkpoints past the head are unusable for tail replay;
	// drop them rather than resync from a future that no longer exists.
	for name, c := range ckpts {
		if c.Seq > head {
			delete(ckpts, name)
		}
	}
	return st, entries, base, ckpts, nil
}

func parseSegName(name string) (uint64, error) {
	num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	first, err := strconv.ParseUint(num, 10, 64)
	if err != nil || first == 0 {
		return 0, fmt.Errorf("recoverylog: bad segment name %q", name)
	}
	return first, nil
}

// readSegment decodes a segment file. It returns the entries decoded, the
// byte offset of the end of the last good record, and an error when the file
// ends in (or contains) a record that does not check out.
func readSegment(path string) ([]Entry, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var entries []Entry
	var off int64
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < recHeader {
			return entries, off, fmt.Errorf("torn record header at offset %d", off)
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length == 0 || length > maxRecord || int(length) > len(rest)-recHeader {
			return entries, off, fmt.Errorf("torn or oversized record (%d bytes) at offset %d", length, off)
		}
		payload := rest[recHeader : recHeader+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return entries, off, fmt.Errorf("checksum mismatch at offset %d", off)
		}
		var e Entry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return entries, off, fmt.Errorf("undecodable record at offset %d: %v", off, err)
		}
		entries = append(entries, e)
		off += recHeader + int64(length)
	}
	return entries, off, nil
}

func encodeRecord(e Entry) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return nil, err
	}
	rec := make([]byte, recHeader+payload.Len())
	binary.LittleEndian.PutUint32(rec[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	copy(rec[recHeader:], payload.Bytes())
	return rec, nil
}

// appendEntry writes one entry, rotating segments as configured and
// fsyncing every opts.FsyncEvery appends.
func (st *diskStore) appendEntry(e Entry) error {
	if st.active == nil || st.segs[len(st.segs)-1].count >= st.opts.SegmentEntries {
		if err := st.rotate(e.Seq); err != nil {
			return err
		}
	}
	rec, err := encodeRecord(e)
	if err != nil {
		return fmt.Errorf("recoverylog: encode entry %d: %w", e.Seq, err)
	}
	if _, err := st.active.Write(rec); err != nil {
		return fmt.Errorf("recoverylog: append entry %d: %w", e.Seq, err)
	}
	st.segs[len(st.segs)-1].count++
	st.pending++
	if st.pending >= st.opts.FsyncEvery {
		return st.sync()
	}
	return nil
}

// rotate syncs and closes the active segment and opens a new one whose
// first entry will be seq.
func (st *diskStore) rotate(seq uint64) error {
	if st.active != nil {
		if err := st.sync(); err != nil {
			return err
		}
		if err := st.active.Close(); err != nil {
			return err
		}
		st.active = nil
	}
	// Reuse the last loaded segment when it still has room (first append
	// after reload).
	if len(st.segs) > 0 {
		s := st.segs[len(st.segs)-1]
		if s.count < st.opts.SegmentEntries && s.last()+1 == seq {
			f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			st.active = f
			return nil
		}
	}
	path := segPath(st.dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st.active = f
	st.segs = append(st.segs, segMeta{first: seq, count: 0, path: path})
	return nil
}

func (st *diskStore) sync() error {
	if st.active == nil || st.pending == 0 {
		st.pending = 0
		return nil
	}
	if err := st.active.Sync(); err != nil {
		return err
	}
	st.syncs++
	st.pending = 0
	return nil
}

func (st *diskStore) close() error {
	if st.active == nil {
		return nil
	}
	err := st.sync()
	if cerr := st.active.Close(); err == nil {
		err = cerr
	}
	st.active = nil
	return err
}

// reset deletes every segment file (the log restarts at a new base; the
// first append after it names the new first segment).
func (st *diskStore) reset() error {
	if st.active != nil {
		_ = st.active.Close()
		st.active = nil
	}
	for _, s := range st.segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("recoverylog: reset: %w", err)
		}
	}
	st.segs = nil
	st.pending = 0
	return nil
}

// compactBelow deletes whole segments whose entries all sit at or below
// floor, returning the new compaction base (the last seq actually dropped).
// The active (final) segment is never deleted.
func (st *diskStore) compactBelow(floor uint64) (uint64, error) {
	var newBase uint64
	drop := 0
	for i, s := range st.segs {
		if i == len(st.segs)-1 {
			break // keep the active segment
		}
		if s.count > 0 && s.last() <= floor {
			drop = i + 1
			newBase = s.last()
		} else {
			break
		}
	}
	for _, s := range st.segs[:drop] {
		if err := os.Remove(s.path); err != nil {
			return 0, fmt.Errorf("recoverylog: compact: %w", err)
		}
	}
	st.segs = append([]segMeta(nil), st.segs[drop:]...)
	return newBase, nil
}

// truncateTail rewrites storage so the log ends at `to`. retained is the
// full in-memory entry set after truncation (authoritative); segments above
// `to` are deleted and the one containing `to` is rewritten.
func (st *diskStore) truncateTail(to uint64, retained []Entry) error {
	if st.active != nil {
		_ = st.sync()
		_ = st.active.Close()
		st.active = nil
	}
	keep := 0
	for _, s := range st.segs {
		if s.first > to {
			break
		}
		keep++
	}
	for _, s := range st.segs[keep:] {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("recoverylog: truncate: %w", err)
		}
	}
	st.segs = append([]segMeta(nil), st.segs[:keep]...)
	if keep == 0 {
		return nil
	}
	// Rewrite the final kept segment with only its retained entries.
	s := &st.segs[keep-1]
	if s.last() <= to {
		s.count = int(to - s.first + 1) // unchanged; nothing to rewrite
		return nil
	}
	var buf bytes.Buffer
	n := 0
	for _, e := range retained {
		if e.Seq >= s.first && e.Seq <= to {
			rec, err := encodeRecord(e)
			if err != nil {
				return err
			}
			buf.Write(rec)
			n++
		}
	}
	if err := atomicWrite(s.path, buf.Bytes()); err != nil {
		return fmt.Errorf("recoverylog: truncate rewrite: %w", err)
	}
	s.count = n
	st.pending = 0
	return nil
}

// saveCheckpoints rewrites the checkpoint file atomically (small file, few
// records; payloads are engine backups).
func (st *diskStore) saveCheckpoints(ckpts map[string]*checkpointRec) error {
	names := make([]string, 0, len(ckpts))
	for n := range ckpts {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, n := range names {
		if err := enc.Encode(ckpts[n]); err != nil {
			return fmt.Errorf("recoverylog: encode checkpoint %s: %w", n, err)
		}
	}
	return atomicWrite(filepath.Join(st.dir, ckptFile), buf.Bytes())
}

func loadCheckpoints(path string) (map[string]*checkpointRec, error) {
	out := make(map[string]*checkpointRec)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("recoverylog: checkpoints: %w", err)
	}
	dec := gob.NewDecoder(bytes.NewReader(data))
	for {
		var c checkpointRec
		if err := dec.Decode(&c); err != nil {
			if err == io.EOF {
				break
			}
			// The file is written atomically, so a bad record means real
			// corruption, not a torn write.
			return nil, fmt.Errorf("recoverylog: corrupt checkpoint file: %v", err)
		}
		cc := c
		out[c.Name] = &cc
	}
	return out, nil
}

// atomicWrite writes data to path via a temp file + rename + dir best-effort
// sync, so readers never observe a half-written file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
