// Package sqltypes defines the dynamically typed SQL value used throughout
// the engine, the wire protocol and the replication middleware.
//
// Values are small immutable structs. They deliberately support only the
// types the paper's workloads need: NULL, 64-bit integers, floats, strings,
// booleans and timestamps (stored as Unix nanoseconds).
package sqltypes

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero value is NULL.
//
// Fields are exported so that encoding/gob can move values across the wire
// protocol; user code should treat Value as immutable and use the accessors.
type Value struct {
	K Kind
	I int64   // KindInt, KindTime (Unix nanoseconds)
	F float64 // KindFloat
	S string  // KindString
	B bool    // KindBool
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{K: KindBool, B: b} }

// NewTime returns a timestamp value.
func NewTime(t time.Time) Value { return Value{K: KindTime, I: t.UnixNano()} }

// Kind returns the runtime type of v.
func (v Value) Kind() Kind { return v.K }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Int returns the value as an int64, coercing floats and booleans.
func (v Value) Int() int64 {
	switch v.K {
	case KindInt, KindTime:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	case KindString:
		n, _ := strconv.ParseInt(v.S, 10, 64)
		return n
	}
	return 0
}

// Float returns the value as a float64, coercing integers and booleans.
func (v Value) Float() float64 {
	switch v.K {
	case KindFloat:
		return v.F
	case KindInt, KindTime:
		return float64(v.I)
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	case KindString:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
	return 0
}

// Str returns the value as a string using SQL literal formatting.
func (v Value) Str() string {
	switch v.K {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindTime:
		return v.Time().UTC().Format(time.RFC3339Nano)
	}
	return "NULL"
}

// Bool returns the SQL truthiness of the value. NULL is false.
func (v Value) Bool() bool {
	switch v.K {
	case KindBool:
		return v.B
	case KindInt, KindTime:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	}
	return false
}

// Time returns the value as a time.Time. Only meaningful for KindTime.
func (v Value) Time() time.Time { return time.Unix(0, v.I) }

// String implements fmt.Stringer; strings are quoted like SQL literals and
// timestamps render as TIMESTAMP '...' so the output re-parses.
func (v Value) String() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindTime:
		return "TIMESTAMP '" + v.Str() + "'"
	}
	return v.Str()
}

// numericKind reports whether k participates in numeric coercion.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool || k == KindTime
}

// Compare orders two values: -1 if a < b, 0 if equal, +1 if a > b.
// NULL sorts before everything and equals only NULL. Numeric kinds are
// mutually comparable; everything else compares as strings when kinds differ.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.K) && numericKind(b.K) {
		if a.K == KindFloat || b.K == KindFloat {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
		ai, bi := a.Int(), b.Int()
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	}
	as, bs := a.Str(), b.Str()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

// Equal reports whether a and b compare equal (NULL equals NULL here;
// three-valued logic is applied by the expression evaluator, not Compare).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Arith applies the binary arithmetic operator op ("+", "-", "*", "/", "%")
// and returns the result. Any NULL operand yields NULL. Division by zero
// returns an error, matching typical engine behaviour.
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == "+" && (a.K == KindString || b.K == KindString) {
		return NewString(a.Str() + b.Str()), nil
	}
	if a.K == KindFloat || b.K == KindFloat {
		af, bf := a.Float(), b.Float()
		switch op {
		case "+":
			return NewFloat(af + bf), nil
		case "-":
			return NewFloat(af - bf), nil
		case "*":
			return NewFloat(af * bf), nil
		case "/":
			if bf == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewFloat(af / bf), nil
		case "%":
			if bf == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewFloat(float64(int64(af) % int64(bf))), nil
		}
		return Null, fmt.Errorf("sqltypes: unknown operator %q", op)
	}
	ai, bi := a.Int(), b.Int()
	switch op {
	case "+":
		return NewInt(ai + bi), nil
	case "-":
		return NewInt(ai - bi), nil
	case "*":
		return NewInt(ai * bi), nil
	case "/":
		if bi == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewInt(ai / bi), nil
	case "%":
		if bi == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewInt(ai % bi), nil
	}
	return Null, fmt.Errorf("sqltypes: unknown operator %q", op)
}

// Row is a tuple of values.
type Row []Value

// Clone returns a deep copy of the row (values are immutable, so a shallow
// copy of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// FNV-1a, inlined: hashing sits on the engine's pk-index hot path (every
// point lookup, every per-insert uniqueness probe), so it must not allocate
// the way hash/fnv's interface-backed hasher does.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashRow mixes a row into a 64-bit hash; used for divergence checksums and
// hash partitioning.
func HashRow(r Row) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range r {
		h = hashValue(h, v)
	}
	return h
}

// HashValue returns a 64-bit hash of a single value.
func HashValue(v Value) uint64 {
	return hashValue(fnvOffset64, v)
}

// HashString hashes a string with the same allocation-free FNV-1a; the
// statement cache uses it for shard selection.
func HashString(s string) uint64 {
	return fnvString(fnvOffset64, s)
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func hashValue(h uint64, v Value) uint64 {
	h = (h ^ uint64(v.K)) * fnvPrime64
	switch v.K {
	case KindInt, KindTime:
		h = fnvUint64(h, uint64(v.I))
	case KindFloat:
		h = fnvUint64(h, uint64(v.Float()*1e6))
	case KindBool:
		var b byte
		if v.B {
			b = 1
		}
		h = (h ^ uint64(b)) * fnvPrime64
	case KindString:
		h = fnvString(h, v.S)
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v >> (8 * i) & 0xff)) * fnvPrime64
	}
	return h
}
