package sqltypes

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "TEXT", KindBool: "BOOLEAN", KindTime: "TIMESTAMP",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
	if v.Bool() {
		t.Error("NULL should be falsy")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("NewInt(42).Int() = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("NewFloat(2.5).Float() = %v", got)
	}
	if got := NewString("x").Str(); got != "x" {
		t.Errorf("NewString(x).Str() = %q", got)
	}
	if !NewBool(true).Bool() {
		t.Error("NewBool(true).Bool() = false")
	}
	now := time.Unix(100, 25)
	if got := NewTime(now).Time(); !got.Equal(now) {
		t.Errorf("NewTime round trip = %v, want %v", got, now)
	}
}

func TestCoercions(t *testing.T) {
	if got := NewFloat(3.9).Int(); got != 3 {
		t.Errorf("float->int = %d, want 3", got)
	}
	if got := NewBool(true).Int(); got != 1 {
		t.Errorf("bool->int = %d, want 1", got)
	}
	if got := NewString("17").Int(); got != 17 {
		t.Errorf("string->int = %d, want 17", got)
	}
	if got := NewString("2.5").Float(); got != 2.5 {
		t.Errorf("string->float = %v, want 2.5", got)
	}
	if got := NewInt(7).Float(); got != 7 {
		t.Errorf("int->float = %v, want 7", got)
	}
	if got := NewInt(123).Str(); got != "123" {
		t.Errorf("int->string = %q", got)
	}
}

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewBool(true), NewInt(1), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNull(t *testing.T) {
	if Compare(Null, Null) != 0 {
		t.Error("NULL should equal NULL in Compare")
	}
	if Compare(Null, NewInt(0)) != -1 {
		t.Error("NULL should sort before values")
	}
	if Compare(NewInt(0), Null) != 1 {
		t.Error("values should sort after NULL")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(NewInt(a), NewInt(b)) == -Compare(NewInt(b), NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithInt(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"+", 2, 3, 5}, {"-", 2, 3, -1}, {"*", 4, 3, 12}, {"/", 7, 2, 3}, {"%", 7, 2, 1},
	}
	for _, c := range cases {
		got, err := Arith(c.op, NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("Arith(%q): %v", c.op, err)
		}
		if got.Int() != c.want {
			t.Errorf("%d %s %d = %d, want %d", c.a, c.op, c.b, got.Int(), c.want)
		}
	}
}

func TestArithFloatPromotion(t *testing.T) {
	got, err := Arith("+", NewInt(1), NewFloat(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != KindFloat || got.Float() != 1.5 {
		t.Errorf("1 + 0.5 = %v, want 1.5 float", got)
	}
}

func TestArithStringConcat(t *testing.T) {
	got, err := Arith("+", NewString("a"), NewString("b"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Str() != "ab" {
		t.Errorf("'a' + 'b' = %q", got.Str())
	}
}

func TestArithNullPropagates(t *testing.T) {
	got, err := Arith("+", Null, NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
}

func TestArithDivZero(t *testing.T) {
	if _, err := Arith("/", NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Arith("%", NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float modulo by zero should error")
	}
}

func TestStringQuoting(t *testing.T) {
	v := NewString("it's")
	if got := v.String(); got != "'it''s'" {
		t.Errorf("String() = %q, want quoted with escape", got)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone should not share backing array")
	}
}

func TestHashRowDeterministic(t *testing.T) {
	r1 := Row{NewInt(1), NewString("x"), NewBool(true), Null}
	r2 := Row{NewInt(1), NewString("x"), NewBool(true), Null}
	if HashRow(r1) != HashRow(r2) {
		t.Error("equal rows must hash equal")
	}
	r3 := Row{NewInt(2), NewString("x"), NewBool(true), Null}
	if HashRow(r1) == HashRow(r3) {
		t.Error("different rows should (almost surely) hash differently")
	}
}

func TestHashValueKindSensitive(t *testing.T) {
	if HashValue(NewInt(0)) == HashValue(Null) {
		t.Error("0 and NULL should hash differently")
	}
	if HashValue(NewString("1")) == HashValue(NewInt(1)) {
		t.Error("'1' and 1 should hash differently")
	}
}

func TestBoolTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NewInt(0), false}, {NewInt(5), true},
		{NewFloat(0), false}, {NewFloat(0.1), true},
		{NewString(""), false}, {NewString("x"), true},
		{Null, false},
	}
	for _, c := range cases {
		if got := c.v.Bool(); got != c.want {
			t.Errorf("%v.Bool() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Transitivity on a random triple of mixed ints/floats.
	f := func(a, b, c int32, fa, fb, fc bool) bool {
		mk := func(n int32, float bool) Value {
			if float {
				return NewFloat(float64(n) / 2)
			}
			return NewInt(int64(n))
		}
		x, y, z := mk(a, fa), mk(b, fb), mk(c, fc)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
