package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramCapped(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Percentile(50) != time.Millisecond {
		t.Fatal("capped percentile wrong")
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(10)
	tp.Add(5)
	if tp.Count() != 15 {
		t.Fatalf("count = %d", tp.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if tp.PerSecond() <= 0 {
		t.Fatal("rate should be positive")
	}
}

func TestAvailabilityAccounting(t *testing.T) {
	a := NewAvailability()
	time.Sleep(20 * time.Millisecond)
	a.MarkDown()
	time.Sleep(10 * time.Millisecond)
	a.MarkUp()
	time.Sleep(5 * time.Millisecond)

	if a.Downtime() < 9*time.Millisecond {
		t.Fatalf("downtime = %v", a.Downtime())
	}
	if a.Uptime() < 24*time.Millisecond {
		t.Fatalf("uptime = %v", a.Uptime())
	}
	if a.MTTR() < 9*time.Millisecond {
		t.Fatalf("mttr = %v", a.MTTR())
	}
	if a.MTTF() == 0 {
		t.Fatal("mttf should be recorded after a failure")
	}
	if r := a.Ratio(); r <= 0.5 || r >= 1 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestAvailabilityIdempotentMarks(t *testing.T) {
	a := NewAvailability()
	a.MarkUp() // already up: no-op
	a.MarkDown()
	a.MarkDown() // already down: no-op
	a.MarkUp()
	if a.MTTR() < 0 {
		t.Fatal("negative mttr")
	}
}

func TestNines(t *testing.T) {
	a := NewAvailability()
	if a.Nines() != 9 {
		t.Fatalf("all-up should report max nines, got %d", a.Nines())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8005 {
		t.Fatalf("count = %d, want 8005", got)
	}
}
