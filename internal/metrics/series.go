package metrics

import (
	"sync"
	"time"
)

// Sample is one time-stamped observation in a Series.
type Sample struct {
	At time.Time
	V  float64
}

// Series is a fixed-capacity ring buffer of time-stamped samples: the
// cheap time-series the operability surface exports (per-replica lag,
// autoscaler signals). Old samples are overwritten; readers get a
// chronological copy. Safe for concurrent use; the zero value is unusable —
// construct with NewSeries.
type Series struct {
	mu   sync.Mutex
	buf  []Sample
	next int
	full bool
}

// NewSeries creates a series keeping at most capSamples samples (0 means
// 1024).
func NewSeries(capSamples int) *Series {
	if capSamples <= 0 {
		capSamples = 1024
	}
	return &Series{buf: make([]Sample, capSamples)}
}

// Add records v at time now.
func (s *Series) Add(v float64) { s.AddAt(time.Now(), v) }

// AddAt records v at an explicit time.
func (s *Series) AddAt(at time.Time, v float64) {
	s.mu.Lock()
	s.buf[s.next] = Sample{At: at, V: v}
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Len returns how many samples the series currently holds.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Samples returns the retained samples in chronological order.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]Sample(nil), s.buf[:s.next]...)
	}
	out := make([]Sample, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Last returns the most recent sample, if any.
func (s *Series) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next == 0 && !s.full {
		return Sample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.buf) - 1
	}
	return s.buf[i], true
}
