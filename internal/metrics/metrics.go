// Package metrics provides the measurement vocabulary §3.4/§5.1 of the
// paper says replication evaluations need: latency distributions,
// throughput, and availability accounting (MTTF, MTTR, downtime against the
// five-nines budget).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter. Safe for concurrent
// use; the zero value is ready. The query result cache uses it for its
// hit/miss/invalidation accounting.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Histogram records durations and reports percentiles. Safe for concurrent
// use. It keeps raw samples (bounded by Cap) — fidelity over memory, which
// is the right trade for benchmarks.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	cap     int
}

// NewHistogram creates a histogram keeping at most capSamples raw samples
// (0 means 1<<20).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 1 << 20
	}
	return &Histogram{cap: capSamples}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
	} else {
		// Reservoir-ish: overwrite pseudo-randomly based on count.
		h.samples[int(h.count)%h.cap] = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary renders mean/P50/P95/P99/max.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p95=%v p99=%v max=%v n=%d",
		h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(95).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond),
		h.Count())
}

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	mu    sync.Mutex
	n     int64
	start time.Time
}

// NewThroughput starts a measurement window now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n completed operations.
func (t *Throughput) Add(n int64) {
	t.mu.Lock()
	t.n += n
	t.mu.Unlock()
}

// Count returns operations recorded.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// PerSecond returns the rate since the window started.
func (t *Throughput) PerSecond() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	secs := time.Since(t.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(t.n) / secs
}

// Availability tracks up/down intervals and computes MTTF/MTTR — the
// metrics the paper complains are "practically never measured" (§3.4).
type Availability struct {
	mu        sync.Mutex
	up        bool
	since     time.Time
	upTotal   time.Duration
	downTotal time.Duration
	failures  int
	repairs   int
}

// NewAvailability starts tracking with the system up.
func NewAvailability() *Availability {
	return &Availability{up: true, since: time.Now()}
}

// MarkDown records a failure at time now.
func (a *Availability) MarkDown() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.up {
		return
	}
	now := time.Now()
	a.upTotal += now.Sub(a.since)
	a.up = false
	a.since = now
	a.failures++
}

// MarkUp records a repair.
func (a *Availability) MarkUp() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.up {
		return
	}
	now := time.Now()
	a.downTotal += now.Sub(a.since)
	a.up = true
	a.since = now
	a.repairs++
}

// snapshot folds the open interval into the totals.
func (a *Availability) snapshot() (up, down time.Duration, failures, repairs int) {
	now := time.Now()
	up, down = a.upTotal, a.downTotal
	if a.up {
		up += now.Sub(a.since)
	} else {
		down += now.Sub(a.since)
	}
	return up, down, a.failures, a.repairs
}

// Uptime returns accumulated uptime.
func (a *Availability) Uptime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	up, _, _, _ := a.snapshot()
	return up
}

// Downtime returns accumulated downtime.
func (a *Availability) Downtime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, down, _, _ := a.snapshot()
	return down
}

// MTTF is mean time to failure (uptime / failures); 0 if no failures.
func (a *Availability) MTTF() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	up, _, failures, _ := a.snapshot()
	if failures == 0 {
		return 0
	}
	return up / time.Duration(failures)
}

// MTTR is mean time to repair (downtime / repairs); 0 if no repairs.
func (a *Availability) MTTR() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, down, _, repairs := a.snapshot()
	if repairs == 0 {
		return 0
	}
	return down / time.Duration(repairs)
}

// Ratio returns availability = MTTF/(MTTF+MTTR) computed over the
// accumulated intervals (uptime / total), per §2.2.
func (a *Availability) Ratio() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	up, down, _, _ := a.snapshot()
	total := up + down
	if total == 0 {
		return 1
	}
	return float64(up) / float64(total)
}

// Nines returns the number of leading nines in the availability ratio
// (0.9995 → 3), the operator shorthand of §4.4.
func (a *Availability) Nines() int {
	r := a.Ratio()
	if r >= 1 {
		return 9
	}
	return int(-math.Log10(1 - r))
}

// FiveNinesBudget is the §5.1 yearly downtime budget: 5.26 minutes.
const FiveNinesBudget = 5*time.Minute + 16*time.Second

// String summarizes the availability record.
func (a *Availability) String() string {
	return fmt.Sprintf("availability=%.5f mttf=%v mttr=%v downtime=%v",
		a.Ratio(), a.MTTF().Round(time.Millisecond), a.MTTR().Round(time.Millisecond),
		a.Downtime().Round(time.Millisecond))
}
