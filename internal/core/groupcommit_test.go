package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/recoverylog"
)

// durableMS builds a master-slave cluster whose commit acks wait on a
// GroupCommitter over a disk-backed recovery log. FsyncEvery is set huge so
// the only fsyncs are the ones group commit issues — the test can then count
// them exactly.
func durableMS(tb testing.TB, window time.Duration) (*MasterSlave, *GroupCommitter, *recoverylog.Log) {
	tb.Helper()
	rlog, err := recoverylog.Open(tb.TempDir(), recoverylog.Options{FsyncEvery: 1 << 20})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { rlog.Close() })
	prov := NewProvisioner(rlog)
	master := NewReplica(ReplicaConfig{Name: "master"})
	ms := NewMasterSlave(master, nil, MasterSlaveConfig{})
	tb.Cleanup(ms.Close)
	sess := ms.NewSession("setup")
	defer sess.Close()
	for _, sql := range []string{
		"CREATE DATABASE shop",
		"USE shop",
		"CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, price FLOAT DEFAULT 0, stock INTEGER DEFAULT 0)",
	} {
		if _, err := sess.Exec(sql); err != nil {
			tb.Fatalf("bootstrap %q: %v", sql, err)
		}
	}
	gc := NewGroupCommitter(prov, ms.Master, window)
	ms.SetDurability(gc)
	return ms, gc, rlog
}

// TestGroupCommitAmortization is the PR-9 acceptance floor for the commit
// path: with concurrent writers, commits must share recovery-log fsyncs —
// at least 4 acknowledged commits per fsync — while every acknowledged
// commit is actually on disk (the log head covers the binlog head).
func TestGroupCommitAmortization(t *testing.T) {
	ms, gc, rlog := durableMS(t, 500*time.Microsecond)

	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := ms.NewSession(fmt.Sprintf("w%d", w))
			defer sess.Close()
			if _, err := sess.Exec("USE shop"); err != nil {
				errCh <- err
				return
			}
			<-start
			for i := 0; i < perWriter; i++ {
				sql := fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'w%d-%d')", w*1000+i, w, i)
				if _, err := sess.Exec(sql); err != nil {
					errCh <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Durability: every acknowledged commit must be in the synced log. No
	// recorder runs in this test, so the group committer alone carried the
	// binlog into the log.
	if head, bl := rlog.Head(), ms.MasterSeq(); head < bl {
		t.Fatalf("recovery log head %d behind binlog head %d: acked commits not durable", head, bl)
	}
	commits, syncs := gc.Stats()
	fsyncs := rlog.SyncCount()
	if syncs == 0 || fsyncs == 0 {
		t.Fatalf("no sync batches recorded (batches=%d fsyncs=%d)", syncs, fsyncs)
	}
	ratio := float64(commits) / float64(syncs)
	t.Logf("%d writers x %d commits: %d commits / %d sync batches (%d disk fsyncs) = %.1f commits per fsync (floor 4)",
		writers, perWriter, commits, syncs, fsyncs, ratio)
	if ratio < 4 {
		t.Fatalf("group commit amortization %.1f commits/fsync below the 4x floor (commits=%d syncs=%d)",
			ratio, commits, syncs)
	}
}

// TestGroupCommitWatermarkSkipsFlushedPositions checks the fast path: a
// commit whose position an earlier batch already flushed returns without
// issuing a new sync batch.
func TestGroupCommitWatermarkSkipsFlushedPositions(t *testing.T) {
	ms, gc, _ := durableMS(t, 0)
	sess := ms.NewSession("solo")
	defer sess.Close()
	if _, err := sess.Exec("USE shop"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO items (id, name) VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	_, syncsBefore := gc.Stats()
	// Re-waiting on an already-durable position must not flush again.
	if err := gc.WaitDurable(1); err != nil {
		t.Fatal(err)
	}
	if _, syncsAfter := gc.Stats(); syncsAfter != syncsBefore {
		t.Fatalf("durable position re-wait issued a sync batch (%d -> %d)", syncsBefore, syncsAfter)
	}
}

// TestGroupCommitClosed checks the shutdown contract: WaitDurable after
// Close fails with the typed error instead of hanging or panicking.
func TestGroupCommitClosed(t *testing.T) {
	_, gc, _ := durableMS(t, 0)
	gc.Close()
	if err := gc.WaitDurable(99); !errors.Is(err, ErrGroupCommitClosed) {
		t.Fatalf("WaitDurable after Close = %v, want ErrGroupCommitClosed", err)
	}
}

// BenchmarkGroupCommit compares the two durable-commit disciplines on the
// same INSERT workload: fsync-per-commit (each commit flushes alone, the
// serial discipline group commit replaces) against group commit under 16
// concurrent writers sharing flushes. The reported syncs/op metric is the
// amortization BENCH_9.json tracks.
func BenchmarkGroupCommit(b *testing.B) {
	var nextID atomic.Int64
	nextID.Store(1 << 20) // clear of any setup rows

	b.Run("fsync-per-commit", func(b *testing.B) {
		ms, gc, rlog := durableMS(b, 0)
		sess := ms.NewSession("bench")
		defer sess.Close()
		if _, err := sess.Exec("USE shop"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sql := fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", nextID.Add(1))
			if _, err := sess.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportSyncsPerOp(b, gc, rlog)
	})
	b.Run("group-commit", func(b *testing.B) {
		ms, gc, rlog := durableMS(b, 200*time.Microsecond)
		b.SetParallelism(16)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			sess := ms.NewSession("bench")
			defer sess.Close()
			if _, err := sess.Exec("USE shop"); err != nil {
				b.Fatal(err)
			}
			for pb.Next() {
				sql := fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", nextID.Add(1))
				if _, err := sess.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		reportSyncsPerOp(b, gc, rlog)
	})
}

func reportSyncsPerOp(b *testing.B, gc *GroupCommitter, rlog *recoverylog.Log) {
	commits, syncs := gc.Stats()
	if commits > 0 {
		b.ReportMetric(float64(syncs)/float64(commits), "syncs/op")
	}
	_ = rlog
}
