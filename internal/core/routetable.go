package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// ErrPartitionConfig is wrapped by every partition-rule / routing-table
// validation failure: overlapping or gapped range bounds, a key value listed
// in two partitions, a bucket assigned to no partition. It is returned both
// at construction (NewPartitioned / NewElasticPartitioned) and at every
// routing-table epoch install, so a bad reshape can never be published.
var ErrPartitionConfig = errors.New("core: invalid partition configuration")

// ErrRangeMoved is wrapped when a statement (or an in-flight transaction)
// loses its key range to a concurrent partition migration. It is RETRYABLE
// by contract: the routing table has already cut over, so the identical
// statement re-routed through a fresh snapshot lands on the new owner. The
// wire layer maps it to the retryable error code and pooled drivers retry
// with backoff.
var ErrRangeMoved = errors.New("core: key range moved by partition migration; retry")

// RouteTable is one immutable, epoch-stamped version of the partition
// routing state: which sub-cluster owns which of the nbuckets virtual
// buckets. Sessions pin a snapshot per statement (and per transaction);
// migrations publish a successor table under the routing lock. Keys map to
// buckets by rule, buckets to partitions by the assignment vector — moving
// data is a bucket reassignment, never a rule rewrite, which is what makes
// split/merge/migrate a constant-size routing change.
type RouteTable struct {
	epoch    uint64
	parts    []*MasterSlave
	nbuckets int
	assign   []int // bucket -> index into parts
	rules    map[string]*PartitionRule
	refs     refCount
}

// refCount tracks how many in-flight statements still route through a
// superseded table; migrations wait for it to drain before scavenging moved
// rows out of the source (a reader holding the old snapshot may still be
// mid-scatter against it).
type refCount struct {
	mu sync.Mutex
	n  int64
}

func (rc *refCount) add(d int64) int64 {
	rc.mu.Lock()
	rc.n += d
	n := rc.n
	rc.mu.Unlock()
	return n
}

func (rc *refCount) load() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.n
}

// Epoch identifies this routing-table version. (Bare Epoch accessors and
// RouteTable receivers are exempt from the lockedcall *Epoch convention:
// an immutable snapshot needs no lock.)
func (rt *RouteTable) Epoch() uint64 { return rt.epoch }

// NumBuckets returns the virtual bucket count (fixed for the table's life).
func (rt *RouteTable) NumBuckets() int { return rt.nbuckets }

// Partitions returns the member sub-clusters.
func (rt *RouteTable) Partitions() []*MasterSlave {
	return append([]*MasterSlave(nil), rt.parts...)
}

// Rule returns the partitioning rule for a table (nil when the table is
// fully replicated).
func (rt *RouteTable) Rule(table string) *PartitionRule { return rt.rules[table] }

// bucketOf maps a key value to its bucket under rule.
func (rt *RouteTable) bucketOf(rule *PartitionRule, v sqltypes.Value) (int, error) {
	return rule.partitionFor(v, rt.nbuckets)
}

// Owner returns the sub-cluster owning a bucket.
func (rt *RouteTable) Owner(bucket int) *MasterSlave { return rt.parts[rt.assign[bucket]] }

// OwnerIndex returns the partition index owning a bucket.
func (rt *RouteTable) OwnerIndex(bucket int) int { return rt.assign[bucket] }

// PartIndex returns ms's index in the table, or -1.
func (rt *RouteTable) PartIndex(ms *MasterSlave) int {
	for i, p := range rt.parts {
		if p == ms {
			return i
		}
	}
	return -1
}

// OwnedBuckets returns the buckets assigned to partition idx, ascending.
func (rt *RouteTable) OwnedBuckets(idx int) []int {
	var out []int
	for b, p := range rt.assign {
		if p == idx {
			out = append(out, b)
		}
	}
	return out
}

// WithReassign returns a successor table moving the given buckets to dest.
// A dest not yet in the table is appended; when dropEmpty is set, partitions
// left owning nothing are removed (the merge path). The successor's epoch is
// stamped at install time, and InstallRouting re-validates it.
func (rt *RouteTable) WithReassign(buckets []int, dest *MasterSlave, dropEmpty bool) (*RouteTable, error) {
	parts := append([]*MasterSlave(nil), rt.parts...)
	di := -1
	for i, p := range parts {
		if p == dest {
			di = i
		}
	}
	if di < 0 {
		parts = append(parts, dest)
		di = len(parts) - 1
	}
	assign := append([]int(nil), rt.assign...)
	for _, b := range buckets {
		if b < 0 || b >= len(assign) {
			return nil, fmt.Errorf("%w: bucket %d out of range [0,%d)", ErrPartitionConfig, b, len(assign))
		}
		assign[b] = di
	}
	if dropEmpty {
		owned := make([]int, len(parts))
		for _, p := range assign {
			owned[p]++
		}
		keep := make([]*MasterSlave, 0, len(parts))
		remap := make([]int, len(parts))
		for i, p := range parts {
			if owned[i] > 0 {
				remap[i] = len(keep)
				keep = append(keep, p)
			} else {
				remap[i] = -1
			}
		}
		for b := range assign {
			assign[b] = remap[assign[b]]
		}
		parts = keep
	}
	next := &RouteTable{parts: parts, nbuckets: rt.nbuckets, assign: assign, rules: rt.rules}
	return next, next.validate()
}

// validate checks the table's internal consistency; every failure wraps
// ErrPartitionConfig. This runs at construction AND at every epoch install,
// so an overlapping range rule or an orphaned bucket can never route a
// single statement.
func (rt *RouteTable) validate() error {
	if len(rt.parts) == 0 {
		return fmt.Errorf("%w: no partitions", ErrPartitionConfig)
	}
	seen := make(map[*MasterSlave]bool, len(rt.parts))
	for i, p := range rt.parts {
		if p == nil {
			return fmt.Errorf("%w: partition %d is nil", ErrPartitionConfig, i)
		}
		if seen[p] {
			return fmt.Errorf("%w: partition %d appears twice", ErrPartitionConfig, i)
		}
		seen[p] = true
	}
	if rt.nbuckets < 1 {
		return fmt.Errorf("%w: need at least one bucket", ErrPartitionConfig)
	}
	if len(rt.assign) != rt.nbuckets {
		return fmt.Errorf("%w: %d bucket assignments for %d buckets", ErrPartitionConfig, len(rt.assign), rt.nbuckets)
	}
	owned := make([]int, len(rt.parts))
	for b, p := range rt.assign {
		if p < 0 || p >= len(rt.parts) {
			return fmt.Errorf("%w: bucket %d assigned to partition %d of %d", ErrPartitionConfig, b, p, len(rt.parts))
		}
		owned[p]++
	}
	for i, n := range owned {
		if n == 0 {
			return fmt.Errorf("%w: partition %d owns no buckets", ErrPartitionConfig, i)
		}
	}
	for table, r := range rt.rules {
		if err := validateRule(r, rt.nbuckets); err != nil {
			return fmt.Errorf("%w: table %s: %v", ErrPartitionConfig, table, err)
		}
	}
	return nil
}

// validateRule checks one partition rule against the bucket count. The
// strictly-ascending bounds check is the fix for silently accepted
// overlapping/gapped range rules: with unsorted bounds, partitionFor's
// first-match scan sent overlapping key ranges to the lower partition and
// made the intended one unreachable.
func validateRule(r *PartitionRule, nbuckets int) error {
	if r.Table == "" || r.Column == "" {
		return fmt.Errorf("rule needs a table and key column")
	}
	switch r.Strategy {
	case HashPartition:
		return nil
	case RangePartition:
		if len(r.Bounds) != nbuckets-1 {
			return fmt.Errorf("need %d range bounds for %d buckets, have %d", nbuckets-1, nbuckets, len(r.Bounds))
		}
		for i := 1; i < len(r.Bounds); i++ {
			if sqltypes.Compare(r.Bounds[i-1], r.Bounds[i]) >= 0 {
				return fmt.Errorf("range bounds must be strictly ascending: bound %d (%v) >= bound %d (%v) overlaps or gaps the ranges",
					i-1, r.Bounds[i-1], i, r.Bounds[i])
			}
		}
		return nil
	case ListPartition:
		if len(r.Lists) != nbuckets {
			return fmt.Errorf("need %d lists for %d buckets, have %d", nbuckets, nbuckets, len(r.Lists))
		}
		type slot struct {
			v      sqltypes.Value
			bucket int
		}
		byHash := make(map[uint64][]slot)
		for b, list := range r.Lists {
			for _, v := range list {
				h := sqltypes.HashValue(v)
				for _, s := range byHash[h] {
					if sqltypes.Equal(s.v, v) {
						return fmt.Errorf("key %v listed for both bucket %d and bucket %d", v, s.bucket, b)
					}
				}
				byHash[h] = append(byHash[h], slot{v: v, bucket: b})
			}
		}
		return nil
	}
	return fmt.Errorf("unknown partition strategy %d", r.Strategy)
}

// ---- routing snapshot lifecycle ----

// RouteTable returns the current routing table WITHOUT pinning it — for
// metrics and coordination. Statements route through snapshotTable.
func (pc *Partitioned) RouteTable() *RouteTable { return pc.table.Load() }

// snapshotTable pins the current routing table for one statement. The
// pin/re-check loop closes the race with a concurrent install: a snapshot
// that pinned a table which was superseded mid-pin releases and retries, so
// quiesce counts never go negative and never miss a reader.
func (pc *Partitioned) snapshotTable() *RouteTable {
	for {
		rt := pc.table.Load()
		rt.refs.add(1)
		if pc.table.Load() == rt {
			return rt
		}
		rt.refs.add(-1)
	}
}

// release un-pins a snapshot taken with snapshotTable.
func (rt *RouteTable) release() { rt.refs.add(-1) }

// WaitQuiesce blocks until no in-flight statement still routes through rt
// (a superseded table). Scavenging moved rows out of the source before the
// old table quiesces would make a reader that snapshotted before the
// cutover miss rows on both sides.
func (pc *Partitioned) WaitQuiesce(rt *RouteTable, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for rt.refs.load() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("core: routing epoch %d did not quiesce within %v (%d refs)", rt.Epoch(), timeout, rt.refs.load())
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// gate returns the per-partition write fence. Binlog-producing operations
// hold it shared; a migration cutover holds it exclusively for the final
// drain, which is the ONLY moment writes to the moving range block.
func (pc *Partitioned) gate(p *MasterSlave) *sync.RWMutex {
	pc.gateMu.Lock()
	defer pc.gateMu.Unlock()
	g := pc.gates[p]
	if g == nil {
		g = &sync.RWMutex{}
		pc.gates[p] = g
	}
	return g
}

// SetContaminated marks (or clears) a partition as physically holding rows
// of buckets it does not own — a migration destination during the copy, or
// a source between cutover and scavenge. Scatter reads push an ownership
// predicate down to contaminated partitions so no row is double-counted.
func (pc *Partitioned) SetContaminated(p *MasterSlave, on bool) {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	if on && !pc.marks[p] {
		pc.marks[p] = true
		pc.markCount++
	} else if !on && pc.marks[p] {
		delete(pc.marks, p)
		pc.markCount--
	}
}

// contaminatedAny reports whether any contamination mark is set (fast-path
// check before per-partition lookups).
func (pc *Partitioned) contaminatedAny() bool {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.markCount > 0
}

func (pc *Partitioned) contaminated(p *MasterSlave) bool {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.marks[p]
}

// BeginMigration/EndMigration bracket a live migration. While one is
// active, scatter (unkeyed) writes to ruled tables are rejected with the
// retryable ErrRangeMoved: a broadcast write racing the tail stream would
// be applied twice on the destination (once directly, once via the tail).
// Keyed writes and all reads continue throughout.
func (pc *Partitioned) BeginMigration() { pc.stateMu.Lock(); pc.migrating++; pc.stateMu.Unlock() }

// EndMigration closes the bracket opened by BeginMigration.
func (pc *Partitioned) EndMigration() { pc.stateMu.Lock(); pc.migrating--; pc.stateMu.Unlock() }

// Migrating reports whether a live migration is in progress.
func (pc *Partitioned) Migrating() bool {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	return pc.migrating > 0
}

// InstallRouting atomically publishes a successor routing table, built by
// build from the current one and validated before anything blocks. When
// fence is non-nil, its write gate is held exclusively across the install:
// the gate freezes the fenced partition's binlog head, drain(frozenHead) is
// called to finish whatever replication the cutover needs (the migration
// tail + destination catch-up), and only if drain succeeds is the new
// epoch stored. A drain error aborts with the routing UNCHANGED — the
// invariant the chaos tests pin down: a destination dying mid-migration
// never advances the epoch.
//
// It returns the superseded table (for WaitQuiesce) and the installed one.
func (pc *Partitioned) InstallRouting(build func(cur *RouteTable) (*RouteTable, error), fence *MasterSlave, drain func(frozenHead uint64) error) (prev, installed *RouteTable, err error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	cur := pc.table.Load()
	next, err := build(cur)
	if err != nil {
		return nil, nil, err
	}
	next.epoch = cur.Epoch() + 1
	if err := next.validate(); err != nil {
		return nil, nil, err
	}
	if fence != nil {
		g := pc.gate(fence)
		g.Lock()
		defer g.Unlock()
	}
	var head uint64
	if fence != nil {
		head = fence.MasterSeq()
	}
	if drain != nil {
		if err := drain(head); err != nil {
			return nil, nil, err
		}
	}
	pc.registerParts(next)
	pc.installEpoch(next)
	return cur, next, nil
}

// installEpoch publishes the next routing table. Callers must hold pc.mu —
// the repllint lockedcall *Epoch convention enforces it mechanically.
func (pc *Partitioned) installEpoch(next *RouteTable) {
	pc.table.Store(next)
}

// registerParts remembers every sub-cluster that was ever a member, so
// Close shuts down retired partitions too.
func (pc *Partitioned) registerParts(rt *RouteTable) {
	pc.stateMu.Lock()
	defer pc.stateMu.Unlock()
	for _, p := range rt.parts {
		pc.allParts[p] = true
	}
}

// ---- ownership predicates ----

// ownershipExpr builds an expression selecting exactly the rows of rule's
// table whose bucket falls in buckets — the predicate pushed into scatter
// fragments against contaminated partitions, and (complemented) the
// scavenge DELETE's WHERE clause. nil means "all rows" (no filtering
// needed); a constant-false literal means "no rows".
func ownershipExpr(rule *PartitionRule, nbuckets int, buckets []int) sqlparse.Expr {
	if len(buckets) >= nbuckets {
		return nil
	}
	if len(buckets) == 0 {
		return &sqlparse.Literal{Val: sqltypes.NewBool(false)}
	}
	sorted := append([]int(nil), buckets...)
	sort.Ints(sorted)
	col := &sqlparse.ColumnRef{Name: rule.Column}
	switch rule.Strategy {
	case HashPartition:
		// BUCKET(col, n) IN (b0, b1, ...): the engine-side BUCKET builtin
		// is the same HashValue % n the router uses, so the predicate and
		// the routing can never disagree.
		list := make([]sqlparse.Expr, len(sorted))
		for i, b := range sorted {
			list[i] = &sqlparse.Literal{Val: sqltypes.NewInt(int64(b))}
		}
		return &sqlparse.InExpr{
			Left: &sqlparse.FuncExpr{Name: "BUCKET", Args: []sqlparse.Expr{
				col, &sqlparse.Literal{Val: sqltypes.NewInt(int64(nbuckets))},
			}},
			List: list,
		}
	case RangePartition:
		// Bucket b covers [Bounds[b-1], Bounds[b]); OR the intervals.
		var out sqlparse.Expr
		for _, b := range sorted {
			var iv sqlparse.Expr
			if b > 0 {
				iv = &sqlparse.BinaryExpr{Op: ">=", Left: col, Right: &sqlparse.Literal{Val: rule.Bounds[b-1]}}
			}
			if b < nbuckets-1 {
				hi := &sqlparse.BinaryExpr{Op: "<", Left: col, Right: &sqlparse.Literal{Val: rule.Bounds[b]}}
				if iv == nil {
					iv = hi
				} else {
					iv = &sqlparse.BinaryExpr{Op: "AND", Left: iv, Right: hi}
				}
			}
			if iv == nil {
				return nil // single bucket covering everything
			}
			if out == nil {
				out = iv
			} else {
				out = &sqlparse.BinaryExpr{Op: "OR", Left: out, Right: iv}
			}
		}
		return out
	case ListPartition:
		var list []sqlparse.Expr
		for _, b := range sorted {
			for _, v := range rule.Lists[b] {
				list = append(list, &sqlparse.Literal{Val: v})
			}
		}
		if len(list) == 0 {
			return &sqlparse.Literal{Val: sqltypes.NewBool(false)}
		}
		return &sqlparse.InExpr{Left: col, List: list}
	}
	return nil
}

// complementBuckets returns [0,nbuckets) minus buckets.
func complementBuckets(nbuckets int, buckets []int) []int {
	in := make([]bool, nbuckets)
	for _, b := range buckets {
		if b >= 0 && b < nbuckets {
			in[b] = true
		}
	}
	var out []int
	for b := 0; b < nbuckets; b++ {
		if !in[b] {
			out = append(out, b)
		}
	}
	return out
}

// OwnershipPredicate exposes ownershipExpr for the rebalancer's scavenge
// statements: an expression matching rows of rule's table in the given
// buckets (nil = all rows).
func OwnershipPredicate(rule *PartitionRule, nbuckets int, buckets []int) sqlparse.Expr {
	return ownershipExpr(rule, nbuckets, buckets)
}

// andExpr conjoins two expressions, tolerating nil on either side.
func andExpr(a, b sqlparse.Expr) sqlparse.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &sqlparse.BinaryExpr{Op: "AND", Left: a, Right: b}
}
