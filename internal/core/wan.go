package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// wanUser tags replication-applied events so shippers do not re-ship them
// (breaking the multi-way replication cycle).
const wanUser = "wan-replication"

// SiteConfig describes one geographical site (Figure 4).
type SiteConfig struct {
	Name string
	// Cluster is the site's local replicated database.
	Cluster *MasterSlave
	// OwnedKeys lists the partition-key values this site is master for
	// (multi-way master/slave: "each site is master for its local
	// geographical data").
	OwnedKeys []sqltypes.Value
}

// WANConfig configures the multi-site deployment.
type WANConfig struct {
	// Table and Column identify the geographically partitioned table and
	// its routing key (e.g. bookings.region).
	Table  string
	Column string
	// Latency is the symmetric one-way inter-site delay; per-pair
	// overrides go in PairLatency keyed "a->b".
	Latency     time.Duration
	PairLatency map[string]time.Duration
	// SyncForward makes remote-owner writes synchronous (wait for the
	// owner's commit over the WAN); asynchronous forwarding is not
	// offered because it would silently lose conflicts — the paper's
	// point that "asynchronous replication is preferred ... applications
	// are usually partitioned" (§4.3.4.1), which is exactly this design.
	SyncForward bool
}

// WAN interconnects site clusters with asynchronous replication of owned
// updates and synchronous forwarding of remote-owner writes.
type WAN struct {
	cfg   WANConfig
	sites []*SiteConfig

	mu       sync.Mutex
	shippers []func() // cancel functions
	shipped  map[string]uint64
}

// NewWAN wires the sites and starts cross-site shipping.
func NewWAN(sites []*SiteConfig, cfg WANConfig) (*WAN, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("core: a WAN needs at least 2 sites")
	}
	w := &WAN{cfg: cfg, sites: sites, shipped: make(map[string]uint64)}
	for _, from := range sites {
		for _, to := range sites {
			if from == to {
				continue
			}
			w.startShipper(from, to)
		}
	}
	return w, nil
}

// latency returns the one-way delay from site a to site b.
func (w *WAN) latency(a, b string) time.Duration {
	if d, ok := w.cfg.PairLatency[a+"->"+b]; ok {
		return d
	}
	return w.cfg.Latency
}

// startShipper asynchronously replays `from`'s locally-originated commits
// at `to`, delayed by the inter-site latency.
func (w *WAN) startShipper(from, to *SiteConfig) {
	ch, cancel := from.Cluster.Master().Engine().Binlog().Subscribe(1024)
	session := to.Cluster.Master().Engine().NewSession(wanUser)
	stop := make(chan struct{})
	go func() {
		defer session.Close()
		for {
			select {
			case <-stop:
				return
			case ev, ok := <-ch:
				if !ok {
					return
				}
				if ev.User == wanUser {
					continue // applied here by another site: don't cycle
				}
				time.Sleep(w.latency(from.Name, to.Name))
				// Async apply at the destination master; its local slaves
				// pick the event up via normal intra-site shipping.
				_ = applyEvent(session, to.Cluster.Master().Engine(), ev, ShipStatements)
			}
		}
	}()
	w.mu.Lock()
	w.shippers = append(w.shippers, func() { close(stop); cancel() })
	w.mu.Unlock()
}

// Close stops cross-site shipping (site clusters remain running).
func (w *WAN) Close() {
	w.mu.Lock()
	shippers := w.shippers
	w.shippers = nil
	w.mu.Unlock()
	for _, cancel := range shippers {
		cancel()
	}
}

// ownerOf returns the site owning a key, or nil.
func (w *WAN) ownerOf(key sqltypes.Value) *SiteConfig {
	for _, s := range w.sites {
		for _, k := range s.OwnedKeys {
			if sqltypes.Equal(k, key) {
				return s
			}
		}
	}
	return nil
}

// site returns a site by name.
func (w *WAN) site(name string) *SiteConfig {
	for _, s := range w.sites {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WSession is a client session attached to one site.
type WSession struct {
	w     *WAN
	local *SiteConfig
	// sessions per site (local + forwarding targets).
	subs map[string]*MSSession
	user string
	db   string
}

// NewSession opens a session homed at the named site.
func (w *WAN) NewSession(site, user string) (*WSession, error) {
	s := w.site(site)
	if s == nil {
		return nil, fmt.Errorf("core: unknown site %q", site)
	}
	return &WSession{w: w, local: s, subs: make(map[string]*MSSession), user: user}, nil
}

// Close releases all site sessions.
func (ws *WSession) Close() {
	for _, s := range ws.subs {
		s.Close()
	}
}

func (ws *WSession) sessionAt(site *SiteConfig) (*MSSession, error) {
	s, ok := ws.subs[site.Name]
	if !ok {
		s = site.Cluster.NewSession(ws.user)
		if ws.db != "" {
			if _, err := s.Exec("USE " + ws.db); err != nil {
				s.Close()
				return nil, err
			}
		}
		ws.subs[site.Name] = s
	}
	return s, nil
}

// Exec routes one statement: reads and un-keyed statements go to the local
// site; keyed writes go to the owning site (paying the WAN round trip when
// remote).
func (ws *WSession) Exec(sql string) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return ws.ExecStmt(st)
}

// ExecStmt routes a pre-parsed statement.
func (ws *WSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	if use, ok := st.(*sqlparse.UseDatabase); ok {
		ws.db = use.Name
		for _, s := range ws.subs {
			if _, err := s.ExecStmt(st); err != nil {
				return nil, err
			}
		}
		return &engine.Result{}, nil
	}
	if st.IsRead() {
		// "Reads are always local" — possibly stale, by design.
		s, err := ws.sessionAt(ws.local)
		if err != nil {
			return nil, err
		}
		return s.ExecStmt(st)
	}
	owner := ws.local
	if key, ok := ws.writeKey(st); ok {
		if o := ws.w.ownerOf(key); o != nil {
			owner = o
		}
	}
	s, err := ws.sessionAt(owner)
	if err != nil {
		return nil, err
	}
	if owner == ws.local {
		return s.ExecStmt(st)
	}
	// Remote-owner write: synchronous forward over the WAN (round trip).
	time.Sleep(ws.w.latency(ws.local.Name, owner.Name))
	res, err := s.ExecStmt(st)
	time.Sleep(ws.w.latency(owner.Name, ws.local.Name))
	return res, err
}

// writeKey extracts the geo-partition key from a write statement.
func (ws *WSession) writeKey(st sqlparse.Statement) (sqltypes.Value, bool) {
	cfg := ws.w.cfg
	switch s := st.(type) {
	case *sqlparse.Insert:
		if !equalFoldASCII(s.Table.Name, cfg.Table) {
			return sqltypes.Null, false
		}
		for i, c := range s.Columns {
			if equalFoldASCII(c, cfg.Column) && len(s.Rows) > 0 {
				if lit, ok := s.Rows[0][i].(*sqlparse.Literal); ok {
					return lit.Val, true
				}
			}
		}
	case *sqlparse.Update:
		if equalFoldASCII(s.Table.Name, cfg.Table) {
			return extractKeyEquality(s.Where, cfg.Column)
		}
	case *sqlparse.Delete:
		if equalFoldASCII(s.Table.Name, cfg.Table) {
			return extractKeyEquality(s.Where, cfg.Column)
		}
	}
	return sqltypes.Null, false
}
