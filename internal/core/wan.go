package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// wanUser tags replication-applied events so shippers do not re-ship them
// (breaking the multi-way replication cycle).
const wanUser = "wan-replication"

// SiteConfig describes one geographical site (Figure 4).
type SiteConfig struct {
	Name string
	// Cluster is the site's local replicated database.
	Cluster *MasterSlave
	// OwnedKeys lists the partition-key values this site is master for
	// (multi-way master/slave: "each site is master for its local
	// geographical data").
	OwnedKeys []sqltypes.Value
}

// WANConfig configures the multi-site deployment.
type WANConfig struct {
	// Table and Column identify the geographically partitioned table and
	// its routing key (e.g. bookings.region).
	Table  string
	Column string
	// Latency is the symmetric one-way inter-site delay; per-pair
	// overrides go in PairLatency keyed "a->b".
	Latency     time.Duration
	PairLatency map[string]time.Duration
	// SyncForward makes remote-owner writes synchronous (wait for the
	// owner's commit over the WAN); asynchronous forwarding is not
	// offered because it would silently lose conflicts — the paper's
	// point that "asynchronous replication is preferred ... applications
	// are usually partitioned" (§4.3.4.1), which is exactly this design.
	SyncForward bool
}

// WAN interconnects site clusters with asynchronous replication of owned
// updates and synchronous forwarding of remote-owner writes.
type WAN struct {
	cfg   WANConfig
	sites []*SiteConfig
	// adm gates statements at the geo router; in layered deployments attach
	// the controller HERE and leave the site clusters unguarded, or every
	// statement pays admission twice.
	adm *admission.Controller

	mu       sync.Mutex
	shippers []func() // cancel functions
	shipped  map[string]uint64
}

// SetAdmission attaches an overload controller to the geo router. Call it
// before serving traffic (it is not synchronized with sessions).
func (w *WAN) SetAdmission(c *admission.Controller) { w.adm = c }

// Admission returns the router's admission controller (nil when off).
func (w *WAN) Admission() *admission.Controller { return w.adm }

// NewWAN wires the sites and starts cross-site shipping.
func NewWAN(sites []*SiteConfig, cfg WANConfig) (*WAN, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("core: a WAN needs at least 2 sites")
	}
	w := &WAN{cfg: cfg, sites: sites, shipped: make(map[string]uint64)}
	for _, from := range sites {
		for _, to := range sites {
			if from == to {
				continue
			}
			w.startShipper(from, to)
		}
	}
	return w, nil
}

// latency returns the one-way delay from site a to site b.
func (w *WAN) latency(a, b string) time.Duration {
	if d, ok := w.cfg.PairLatency[a+"->"+b]; ok {
		return d
	}
	return w.cfg.Latency
}

// startShipper asynchronously replays `from`'s locally-originated commits
// at `to`, delayed by the inter-site latency.
func (w *WAN) startShipper(from, to *SiteConfig) {
	ch, cancel := from.Cluster.Master().Engine().Binlog().Subscribe(1024)
	session := to.Cluster.Master().Engine().NewSession(wanUser)
	stop := make(chan struct{})
	go func() {
		defer session.Close()
		for {
			select {
			case <-stop:
				return
			case ev, ok := <-ch:
				if !ok {
					return
				}
				if ev.User == wanUser {
					continue // applied here by another site: don't cycle
				}
				time.Sleep(w.latency(from.Name, to.Name))
				// Async apply at the destination master; its local slaves
				// pick the event up via normal intra-site shipping.
				_ = applyEvent(session, to.Cluster.Master().Engine(), ev, ShipStatements)
			}
		}
	}()
	w.mu.Lock()
	w.shippers = append(w.shippers, func() { close(stop); cancel() })
	w.mu.Unlock()
}

// Close stops cross-site shipping (site clusters remain running).
func (w *WAN) Close() {
	w.mu.Lock()
	shippers := w.shippers
	w.shippers = nil
	w.mu.Unlock()
	for _, cancel := range shippers {
		cancel()
	}
}

// ownerOf returns the site owning a key, or nil.
func (w *WAN) ownerOf(key sqltypes.Value) *SiteConfig {
	for _, s := range w.sites {
		for _, k := range s.OwnedKeys {
			if sqltypes.Equal(k, key) {
				return s
			}
		}
	}
	return nil
}

// site returns a site by name.
func (w *WAN) site(name string) *SiteConfig {
	for _, s := range w.sites {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// NewConn implements Cluster: the connection is homed at the first
// configured site. Use NewSession to home a connection elsewhere.
func (w *WAN) NewConn(user string) (Conn, error) {
	return w.NewSession(w.sites[0].Name, user)
}

// Authenticate implements Cluster against the first site's cluster.
func (w *WAN) Authenticate(user, password string) error {
	return w.sites[0].Cluster.Authenticate(user, password)
}

// Health implements Cluster, aggregated over every site.
func (w *WAN) Health() Health {
	h := Health{Topology: "wan"}
	for _, s := range w.sites {
		sh := s.Cluster.Health()
		h.Replicas += sh.Replicas
		h.HealthyReplicas += sh.HealthyReplicas
		if sh.Head > h.Head {
			h.Head = sh.Head
		}
		if sh.MaxLag > h.MaxLag {
			h.MaxLag = sh.MaxLag
		}
	}
	return h
}

// WSession is a client session attached to one site.
type WSession struct {
	w     *WAN
	local *SiteConfig
	// sessions per site (local + forwarding targets).
	subs map[string]*MSSession
	user string
	db   string
	// iso / cons / deadline are the announced isolation, consistency, and
	// statement-timeout settings, replayed onto site sessions opened later.
	iso      string
	cons     *Consistency
	deadline *time.Duration
	// inTxn tracks the explicit transaction open on the LOCAL site's
	// session: remote-owner writes must be refused while it is set, or
	// they would silently autocommit at the owning site outside the
	// transaction (unrollbackable).
	inTxn bool
}

// NewSession opens a session homed at the named site.
func (w *WAN) NewSession(site, user string) (*WSession, error) {
	s := w.site(site)
	if s == nil {
		return nil, fmt.Errorf("core: unknown site %q", site)
	}
	return &WSession{w: w, local: s, subs: make(map[string]*MSSession), user: user}, nil
}

// Close releases all site sessions.
func (ws *WSession) Close() {
	for _, s := range ws.subs {
		s.Close()
	}
}

func (ws *WSession) sessionAt(site *SiteConfig) (*MSSession, error) {
	s, ok := ws.subs[site.Name]
	if !ok {
		s = site.Cluster.NewSession(ws.user)
		if ws.db != "" {
			if _, err := s.Exec("USE " + ws.db); err != nil {
				s.Close()
				return nil, err
			}
		}
		if ws.iso != "" {
			if err := s.SetIsolation(ws.iso); err != nil {
				s.Close()
				return nil, err
			}
		}
		if ws.cons != nil {
			if err := s.SetConsistency(*ws.cons); err != nil {
				s.Close()
				return nil, err
			}
		}
		if ws.deadline != nil {
			if _, err := s.ExecStmt(&sqlparse.SetDeadline{D: *ws.deadline}); err != nil {
				s.Close()
				return nil, err
			}
		}
		ws.subs[site.Name] = s
	}
	return s, nil
}

// Exec routes one statement with optional ? bind arguments: reads and
// un-keyed statements go to the local site; keyed writes go to the owning
// site (paying the WAN round trip when remote). The geo router inspects
// literal key values, so arguments are inlined into the AST up front.
func (ws *WSession) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return ws.ExecStmtArgs(st, args...)
}

// Query implements Conn; routing is decided by the statement itself.
func (ws *WSession) Query(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return ws.Exec(sql, args...)
}

// ExecStmtArgs routes a pre-parsed statement with bind arguments.
func (ws *WSession) ExecStmtArgs(st sqlparse.Statement, args ...sqltypes.Value) (*engine.Result, error) {
	if len(args) > 0 {
		bound, err := sqlparse.BindParams(st, args)
		if err != nil {
			return nil, err
		}
		st = bound
	}
	return ws.ExecStmt(st)
}

// ExecStmt routes a pre-parsed statement.
func (ws *WSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	switch s := st.(type) {
	case *sqlparse.UseDatabase:
		ws.db = s.Name
		for _, sub := range ws.subs {
			if _, err := sub.ExecStmt(st); err != nil {
				return nil, err
			}
		}
		return &engine.Result{}, nil
	case *sqlparse.SetIsolation:
		// Propagate across every site session, current and future: a
		// forwarded write must run at the level the client announced.
		ws.iso = s.Level
		for _, sub := range ws.subs {
			if _, err := sub.ExecStmt(st); err != nil {
				return nil, err
			}
		}
		return &engine.Result{}, nil
	case *sqlparse.SetConsistency:
		c, err := ParseConsistency(s.Level)
		if err != nil {
			return nil, err
		}
		return &engine.Result{}, ws.SetConsistency(c)
	case *sqlparse.SetDeadline:
		// Record (for router-level admission and future site sessions) and
		// forward so open site sessions bound execution with the budget.
		d := s.D
		ws.deadline = &d
		for _, sub := range ws.subs {
			if _, err := sub.ExecStmt(st); err != nil {
				return nil, err
			}
		}
		return &engine.Result{}, nil
	case *sqlparse.BeginTxn, *sqlparse.CommitTxn, *sqlparse.RollbackTxn:
		// Transactions run on the local site's cluster. Track the bracket
		// so remote-owner writes can be refused while one is open; a
		// failed COMMIT still ends it (the engine terminated its txn).
		sub, err := ws.sessionAt(ws.local)
		if err != nil {
			return nil, err
		}
		res, err := sub.ExecStmt(st)
		if _, isBegin := st.(*sqlparse.BeginTxn); isBegin {
			ws.inTxn = err == nil
		} else {
			ws.inTxn = false
		}
		return res, err
	}
	// Real work from here on: gate it through the geo router's admission
	// controller (in-transaction statements count as writes — they hold
	// locks on the local site).
	class := admission.ClassWrite
	if st.IsRead() && !ws.inTxn {
		cons := ws.local.Cluster.cfg.Consistency
		if ws.cons != nil {
			cons = *ws.cons
		}
		if cons == ReadAny {
			class = admission.ClassReadAny
		} else {
			class = admission.ClassReadSession
		}
	}
	slot, err := ws.w.adm.Acquire(ws.user, class, ws.stmtDeadline())
	if err != nil {
		return nil, err
	}
	res, err := ws.execRouted(st)
	slot.Done(err)
	return res, err
}

// stmtDeadline converts the session's statement-timeout budget (SET
// DEADLINE, defaulting to the local site's configured timeout) into an
// absolute deadline starting now; zero means unbounded.
func (ws *WSession) stmtDeadline() time.Time {
	d := ws.local.Cluster.cfg.StatementTimeout
	if ws.deadline != nil {
		d = *ws.deadline
	}
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// execRouted dispatches an admitted statement to the owning site.
func (ws *WSession) execRouted(st sqlparse.Statement) (*engine.Result, error) {
	if st.IsRead() {
		// "Reads are always local" — possibly stale, by design.
		s, err := ws.sessionAt(ws.local)
		if err != nil {
			return nil, err
		}
		return s.ExecStmt(st)
	}
	owner := ws.local
	if key, ok := ws.writeKey(st); ok {
		if o := ws.w.ownerOf(key); o != nil {
			owner = o
		}
	}
	if ws.inTxn && owner != ws.local {
		// The open transaction lives on the local site; forwarding this
		// write would autocommit it at the owner, outside the transaction
		// — a rollback could never undo it. Refuse, like the partition
		// router refuses cross-partition statements.
		return nil, fmt.Errorf("%w: transaction is local to site %s; write for key owned by %s cannot join it (no cross-site 2PC)",
			ErrUnsupportedStatement, ws.local.Name, owner.Name)
	}
	s, err := ws.sessionAt(owner)
	if err != nil {
		return nil, err
	}
	if owner == ws.local {
		return s.ExecStmt(st)
	}
	// Remote-owner write: synchronous forward over the WAN (round trip).
	time.Sleep(ws.w.latency(ws.local.Name, owner.Name))
	res, err := s.ExecStmt(st)
	time.Sleep(ws.w.latency(owner.Name, ws.local.Name))
	return res, err
}

// Prepare implements Conn: parse once, execute many with fresh bindings.
func (ws *WSession) Prepare(sql string) (*Stmt, error) { return newStmt(ws, sql) }

// Begin implements Conn: the transaction runs on the local site's cluster.
func (ws *WSession) Begin() error {
	_, err := ws.ExecStmt(&sqlparse.BeginTxn{})
	return err
}

// Commit implements Conn.
func (ws *WSession) Commit() error {
	_, err := ws.ExecStmt(&sqlparse.CommitTxn{})
	return err
}

// Rollback implements Conn.
func (ws *WSession) Rollback() error {
	_, err := ws.ExecStmt(&sqlparse.RollbackTxn{})
	return err
}

// SetIsolation implements Conn across every site session.
func (ws *WSession) SetIsolation(level string) error {
	lv, err := normalizeIsolation(level)
	if err != nil {
		return err
	}
	_, err = ws.ExecStmt(&sqlparse.SetIsolation{Level: lv})
	return err
}

// SetConsistency implements Conn. The guarantee applies within each site's
// cluster; cross-site replication stays asynchronous by design ("reads are
// always local", §4.3.4.1).
func (ws *WSession) SetConsistency(c Consistency) error {
	ws.cons = &c
	for _, sub := range ws.subs {
		if err := sub.SetConsistency(c); err != nil {
			return err
		}
	}
	return nil
}

// writeKey extracts the geo-partition key from a write statement.
func (ws *WSession) writeKey(st sqlparse.Statement) (sqltypes.Value, bool) {
	cfg := ws.w.cfg
	switch s := st.(type) {
	case *sqlparse.Insert:
		if !equalFoldASCII(s.Table.Name, cfg.Table) {
			return sqltypes.Null, false
		}
		for i, c := range s.Columns {
			if equalFoldASCII(c, cfg.Column) && len(s.Rows) > 0 {
				if lit, ok := s.Rows[0][i].(*sqlparse.Literal); ok {
					return lit.Val, true
				}
			}
		}
	case *sqlparse.Update:
		if equalFoldASCII(s.Table.Name, cfg.Table) {
			return extractKeyEquality(s.Where, cfg.Column)
		}
	case *sqlparse.Delete:
		if equalFoldASCII(s.Table.Name, cfg.Table) {
			return extractKeyEquality(s.Where, cfg.Column)
		}
	}
	return sqltypes.Null, false
}
