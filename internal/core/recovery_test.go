package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/recoverylog"
)

// waitRecorded waits until the provisioner's recorder has copied the
// master's whole binlog into the recovery log.
func waitRecorded(t *testing.T, prov *Provisioner, master *Replica) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := prov.RecorderErr(); err != nil {
			t.Fatalf("recorder failed: %v", err)
		}
		if prov.Log().Head() >= master.Engine().Binlog().Head() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("recorder never caught up: log %d, binlog %d",
		prov.Log().Head(), master.Engine().Binlog().Head())
}

// newRecordedCluster boots a master-only cluster whose binlog is followed
// into a fresh in-memory recovery log.
func newRecordedCluster(t *testing.T, fopts FollowOptions) (*MasterSlave, *MSSession, *Provisioner) {
	t.Helper()
	ms, sess := newMSCluster(t, 0, MasterSlaveConfig{ReadFromMaster: true})
	prov := NewProvisioner(recoverylog.New())
	prov.Follow(ms.Master(), fopts)
	t.Cleanup(prov.Unfollow)
	return ms, sess, prov
}

// TestResyncAutoCheckpointTailReplaysFewer is the PR-4 acceptance check: a
// fresh replica initialized from a checkpoint backup replays strictly fewer
// entries than a full-log replay, and converges to the same state.
func TestResyncAutoCheckpointTailReplaysFewer(t *testing.T) {
	ms, sess, prov := newRecordedCluster(t, FollowOptions{})
	for i := 1; i <= 40; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'pre')", i))
	}
	waitRecorded(t, prov, ms.Master())
	ckptSeq, err := prov.CheckpointBackup("snap", ms.Master(), FaithfulBackup)
	if err != nil {
		t.Fatal(err)
	}
	for i := 41; i <= 60; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'post')", i))
	}
	waitRecorded(t, prov, ms.Master())
	fullHead := prov.Log().Head()

	// Full-log replay: the §4.4.2 slow path.
	cold := NewReplica(ReplicaConfig{Name: "cold"})
	resCold, err := prov.Resync(cold, 0, ResyncOptions{BatchWait: 5 * time.Millisecond}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resCold.Replayed != int(fullHead) {
		t.Fatalf("full replay applied %d of %d entries", resCold.Replayed, fullHead)
	}

	// Checkpoint + tail.
	fresh := NewReplica(ReplicaConfig{Name: "fresh"})
	res, err := prov.ResyncAuto(fresh, ResyncOptions{BatchWait: 5 * time.Millisecond}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cloned || res.CheckpointSeq != ckptSeq {
		t.Fatalf("expected clone from checkpoint %d, got %+v", ckptSeq, res)
	}
	if res.Replayed != int(fullHead-ckptSeq) {
		t.Fatalf("tail replay applied %d entries, want %d", res.Replayed, fullHead-ckptSeq)
	}
	if res.Replayed >= resCold.Replayed {
		t.Fatalf("checkpoint+tail (%d) must replay strictly fewer than full replay (%d)",
			res.Replayed, resCold.Replayed)
	}
	if fresh.Engine().Binlog().Head() != fullHead {
		t.Fatalf("cloned replica's binlog head %d, want %d (position space aligned)",
			fresh.Engine().Binlog().Head(), fullHead)
	}
	checkConverged(t, []*Replica{ms.Master(), cold, fresh}, "shop")
}

// TestResyncAutoClonesStaleReplicaAfterCompaction: once compaction drops
// the early log, a replica below the horizon cannot tail-replay; ResyncAuto
// must fall back to the checkpoint clone while plain Resync fails loudly.
func TestResyncAutoClonesStaleReplicaAfterCompaction(t *testing.T) {
	ms, sess, prov := newRecordedCluster(t, FollowOptions{})
	for i := 1; i <= 30; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i))
	}
	waitRecorded(t, prov, ms.Master())
	if _, err := prov.CheckpointBackup("snap", ms.Master(), FaithfulBackup); err != nil {
		t.Fatal(err)
	}
	for i := 31; i <= 45; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'y')", i))
	}
	waitRecorded(t, prov, ms.Master())
	lenBefore := prov.Log().Len()
	dropped, err := prov.Log().Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || prov.Log().Len() >= lenBefore {
		t.Fatalf("compaction did not bound the log: dropped=%d len %d->%d",
			dropped, lenBefore, prov.Log().Len())
	}

	// A replica whose position predates the horizon: plain Resync refuses.
	stale := NewReplica(ReplicaConfig{Name: "stale"})
	if _, err := prov.Resync(stale, 1, ResyncOptions{BatchWait: 5 * time.Millisecond}, time.Second); !errors.Is(err, recoverylog.ErrCompacted) {
		t.Fatalf("resync below horizon: err = %v, want ErrCompacted", err)
	}
	// ResyncAuto clones the checkpoint instead.
	res, err := prov.ResyncAuto(stale, ResyncOptions{BatchWait: 5 * time.Millisecond}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cloned {
		t.Fatalf("stale replica was not cloned: %+v", res)
	}
	checkConverged(t, []*Replica{ms.Master(), stale}, "shop")
}

// TestResyncAutoResumesAfterFailureDuringRecovery drives the scenario the
// paper says is hardest: a second failure in the middle of recovery. The
// first ResyncAuto clones a checkpoint and dies mid-tail; the retry must
// resume from the contiguous applied prefix — no re-clone, no re-replay of
// entries already applied, no skipped entries.
func TestResyncAutoResumesAfterFailureDuringRecovery(t *testing.T) {
	ms, sess, prov := newRecordedCluster(t, FollowOptions{})
	for i := 1; i <= 20; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i))
	}
	waitRecorded(t, prov, ms.Master())
	ckptSeq, err := prov.CheckpointBackup("snap", ms.Master(), FaithfulBackup)
	if err != nil {
		t.Fatal(err)
	}
	for i := 21; i <= 40; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'y')", i))
	}
	waitRecorded(t, prov, ms.Master())
	head := prov.Log().Head()

	fresh := NewReplica(ReplicaConfig{Name: "fresh"})
	crashAt := ckptSeq + 7
	injected := errors.New("injected crash during recovery")
	opts := ResyncOptions{BatchWait: 5 * time.Millisecond, BeforeApply: func(e recoverylog.Entry) error {
		if e.Seq == crashAt {
			return injected
		}
		return nil
	}}
	if _, err := prov.ResyncAuto(fresh, opts, 30*time.Second); !errors.Is(err, injected) {
		t.Fatalf("first resync: err = %v, want injected crash", err)
	}
	if got := fresh.AppliedSeq(); got != crashAt-1 {
		t.Fatalf("applied prefix after crash = %d, want %d", got, crashAt-1)
	}

	// Retry: position is intact and above the horizon, so no clone.
	res, err := prov.ResyncAuto(fresh, ResyncOptions{BatchWait: 5 * time.Millisecond}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cloned {
		t.Fatalf("resumed resync re-cloned: %+v", res)
	}
	if res.Replayed != int(head-(crashAt-1)) {
		t.Fatalf("resumed resync replayed %d entries, want %d", res.Replayed, head-(crashAt-1))
	}
	checkConverged(t, []*Replica{ms.Master(), fresh}, "shop")
}

// TestFollowAutoCheckpointsAndCompacts: the recorder takes periodic
// checkpoint backups and compacts, keeping the retained log bounded while
// the binlog (and history) keeps growing.
func TestFollowAutoCheckpointsAndCompacts(t *testing.T) {
	ms, sess, prov := newRecordedCluster(t, FollowOptions{CheckpointEvery: 10})
	for i := 1; i <= 80; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i))
	}
	waitRecorded(t, prov, ms.Master())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, ok := prov.Log().LatestCheckpoint(); ok && prov.Log().CompactedThrough() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, ok := prov.Log().LatestCheckpoint(); !ok {
		t.Fatal("recorder never took an automatic checkpoint")
	}
	if prov.Log().CompactedThrough() == 0 {
		t.Fatal("recorder never compacted")
	}
	if prov.Log().Len() >= int(prov.Log().Head()) {
		t.Fatalf("log not bounded: %d entries retained of %d total",
			prov.Log().Len(), prov.Log().Head())
	}
	// The bounded log still recovers a fresh replica (clone + tail).
	fresh := NewReplica(ReplicaConfig{Name: "fresh"})
	res, err := prov.ResyncAuto(fresh, ResyncOptions{BatchWait: 5 * time.Millisecond}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cloned {
		t.Fatalf("fresh replica should clone the auto checkpoint: %+v", res)
	}
	checkConverged(t, []*Replica{ms.Master(), fresh}, "shop")
}

// TestMonitorAutoFailoverAndRejoin closes the loop: the monitor detects the
// dead master, promotes a slave, repairs the recovery log (lost suffix
// truncated), and when the old master comes back it is rolled back via
// checkpoint clone and re-attached as a slave — all without operator calls.
func TestMonitorAutoFailoverAndRejoin(t *testing.T) {
	reps := newReplicas(t, 3, ReplicaConfig{})
	ms := NewMasterSlave(reps[0], reps[1:], MasterSlaveConfig{
		Consistency: SessionConsistent, FailoverTimeout: 2 * time.Second,
	})
	t.Cleanup(ms.Close)
	prov := NewProvisioner(recoverylog.New())
	prov.Follow(reps[0], FollowOptions{})
	t.Cleanup(prov.Unfollow)

	sess := ms.NewSession("test")
	t.Cleanup(sess.Close)
	for _, sql := range []string{
		"CREATE DATABASE shop", "USE shop",
		"CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)",
	} {
		mustExecC(t, sess.Exec, sql)
	}
	for i := 1; i <= 20; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'a')", i))
	}
	waitCaughtUp(t, ms)
	waitRecorded(t, prov, ms.Master())
	if _, err := prov.CheckpointBackup("pre-crash", ms.Master(), FaithfulBackup); err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(ms, time.Millisecond)
	mon.EnableAutoRejoin(prov, ResyncOptions{BatchWait: 5 * time.Millisecond})
	mon.Start()
	t.Cleanup(mon.Stop)

	// Kill the master. The monitor must promote without help.
	old := ms.Master()
	old.Fail()
	deadline := time.Now().Add(3 * time.Second)
	for ms.Master() == old && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	promoted := ms.Master()
	if promoted == old {
		t.Fatal("monitor never failed over")
	}
	// The log was repaired: its head matches the promoted master's position
	// and the recorder now follows the new master.
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if prov.Followed() == promoted && prov.Log().Head() <= promoted.Engine().Binlog().Head() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if prov.Followed() != promoted {
		t.Fatalf("recorder still follows the dead master")
	}

	// Writes continue against the new master.
	for i := 21; i <= 30; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'b')", i))
	}

	// The old master comes back; the monitor rejoins it as a slave.
	old.Recover()
	deadline = time.Now().Add(5 * time.Second)
	for mon.Rejoins() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if mon.Rejoins() != 1 {
		t.Fatal("monitor never rejoined the recovered master")
	}
	if len(ms.Slaves()) != 2 {
		t.Fatalf("slave set after rejoin: %d, want 2", len(ms.Slaves()))
	}
	waitCaughtUp(t, ms)
	all := append([]*Replica{ms.Master()}, ms.Slaves()...)
	checkConverged(t, all, "shop")
	// A session-consistent read after the dust settles sees every write.
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("rows after failover+rejoin = %v, want 30", res.Rows[0][0])
	}
}

// TestFailoverToTruncatesLostSuffix: events the old master logged but the
// promoted slave never applied must vanish from the recovery log, or a
// later resync would replay transactions the cluster does not contain.
func TestFailoverToTruncatesLostSuffix(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{ApplyDelay: 5 * time.Millisecond})
	prov := NewProvisioner(recoverylog.New())
	prov.Follow(ms.Master(), FollowOptions{})
	t.Cleanup(prov.Unfollow)

	waitCaughtUp(t, ms)
	// Burst writes so the slave lags, then kill the master immediately.
	for i := 1; i <= 10; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i))
	}
	waitRecorded(t, prov, ms.Master())
	oldHead := prov.Log().Head()
	ms.Master().Fail()
	promoted, err := ms.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if err := prov.FailoverTo(promoted); err != nil {
		t.Fatal(err)
	}
	newHead := promoted.Engine().Binlog().Head()
	if got := prov.Log().Head(); got != newHead {
		t.Fatalf("log head after repair = %d, want promoted position %d (was %d)",
			got, newHead, oldHead)
	}
	if lost := ms.LostTransactions(); oldHead-newHead != lost {
		t.Fatalf("truncated %d entries, cluster reports %d lost", oldHead-newHead, lost)
	}
	if prov.Followed() != promoted {
		t.Fatal("recorder not re-pointed at the promoted master")
	}
	// New commits record cleanly at the repaired positions.
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (100, 'after')")
	waitRecorded(t, prov, promoted)
	if err := prov.RecorderErr(); err != nil {
		t.Fatal(err)
	}
}
