package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/qcache"
)

// qcacheBenchReadCost models the backend round-trip a cache hit avoids. The
// threshold test measures the cached-vs-uncached ratio at this cost, which
// is tiny compared to a real DBMS network round-trip — the measured speedup
// is therefore a lower bound on the field win.
const qcacheBenchReadCost = 100 * time.Microsecond

// newQCBenchCluster builds a 1-master/2-slave cluster with modelled read
// cost, a small catalog, and (optionally) the query result cache.
func newQCBenchCluster(tb testing.TB, cached bool) (*MasterSlave, *MSSession, *qcache.Cache) {
	tb.Helper()
	reps := make([]*Replica, 3)
	for i := range reps {
		reps[i] = NewReplica(ReplicaConfig{
			Name:     fmt.Sprintf("b%d", i+1),
			ReadCost: qcacheBenchReadCost,
		})
	}
	cfg := MasterSlaveConfig{Consistency: SessionConsistent}
	var qc *qcache.Cache
	if cached {
		qc = qcache.New(qcache.Config{})
		cfg.QueryCache = qc
	}
	ms := NewMasterSlave(reps[0], reps[1:], cfg)
	tb.Cleanup(ms.Close)
	sess := ms.NewSession("bench")
	tb.Cleanup(sess.Close)
	for _, sql := range []string{
		"CREATE DATABASE shop",
		"USE shop",
		"CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, stock INTEGER DEFAULT 0)",
		"INSERT INTO items (id, name, stock) VALUES (1,'a',10), (2,'b',20), (3,'c',30), (4,'d',40)",
	} {
		if _, err := sess.Exec(sql); err != nil {
			tb.Fatalf("bootstrap %q: %v", sql, err)
		}
	}
	waitBenchCaughtUp(tb, ms)
	return ms, sess, qc
}

func waitBenchCaughtUp(tb testing.TB, ms *MasterSlave) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		max := uint64(0)
		for _, l := range ms.SlaveLag() {
			if l > max {
				max = l
			}
		}
		if max == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	tb.Fatal("bench slaves never caught up")
}

// qcacheWorkload runs a read-mostly loop: 19 reads (over 4 distinct
// statements) per write. Each write invalidates the read set, so the cached
// variant pays a refill after every write and hits in between.
func qcacheWorkload(tb testing.TB, ms *MasterSlave, sess *MSSession, ops int) {
	tb.Helper()
	reads := []string{
		"SELECT COUNT(*) FROM items",
		"SELECT SUM(stock) FROM items",
		"SELECT name FROM items WHERE id = 2",
		"SELECT id, name FROM items ORDER BY id",
	}
	for i := 0; i < ops; i++ {
		if i%20 == 19 {
			sql := fmt.Sprintf("UPDATE items SET stock = stock + 1 WHERE id = %d", 1+i%4)
			if _, err := sess.Exec(sql); err != nil {
				tb.Fatalf("%s: %v", sql, err)
			}
			continue
		}
		sql := reads[i%len(reads)]
		if _, err := sess.Exec(sql); err != nil {
			tb.Fatalf("%s: %v", sql, err)
		}
	}
}

// BenchmarkCachedReads compares the read-mostly workload with and without
// the query result cache. See docs/BENCHMARKS.md for reference numbers.
func BenchmarkCachedReads(b *testing.B) {
	b.Run("uncached", func(b *testing.B) {
		ms, sess, _ := newQCBenchCluster(b, false)
		b.ResetTimer()
		qcacheWorkload(b, ms, sess, b.N)
	})
	b.Run("cached", func(b *testing.B) {
		ms, sess, _ := newQCBenchCluster(b, true)
		b.ResetTimer()
		qcacheWorkload(b, ms, sess, b.N)
	})
}

// TestCachedReadsThreshold enforces the PR's acceptance criteria: the
// cached read-mostly workload must run at least 3x faster than uncached,
// and a cache hit must execute on zero backends.
func TestCachedReadsThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold measurement skipped in -short")
	}
	const ops = 400

	msU, sessU, _ := newQCBenchCluster(t, false)
	startU := time.Now()
	qcacheWorkload(t, msU, sessU, ops)
	uncached := time.Since(startU)

	msC, sessC, qc := newQCBenchCluster(t, true)
	startC := time.Now()
	qcacheWorkload(t, msC, sessC, ops)
	cached := time.Since(startC)

	ratio := float64(uncached) / float64(cached)
	t.Logf("read-mostly workload: uncached=%v cached=%v speedup=%.1fx stats=%+v",
		uncached, cached, ratio, qc.Stats())
	if ratio < 3 {
		t.Fatalf("cached workload speedup %.2fx, want >= 3x (uncached=%v cached=%v)", ratio, uncached, cached)
	}

	// Hit = zero backend executions: warm one statement, then count
	// replica executions across a burst of repeats.
	const q = "SELECT SUM(stock) FROM items"
	if _, err := sessC.Exec(q); err != nil {
		t.Fatal(err)
	}
	execsBefore := uint64(0)
	for _, r := range append(msC.Slaves(), msC.Master()) {
		execsBefore += r.Execs()
	}
	hitsBefore := qc.Stats().Hits
	for i := 0; i < 50; i++ {
		if _, err := sessC.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	execsAfter := uint64(0)
	for _, r := range append(msC.Slaves(), msC.Master()) {
		execsAfter += r.Execs()
	}
	if execsAfter != execsBefore {
		t.Fatalf("cache hits executed on a backend: %d -> %d", execsBefore, execsAfter)
	}
	if qc.Stats().Hits-hitsBefore != 50 {
		t.Fatalf("expected 50 hits, got %d", qc.Stats().Hits-hitsBefore)
	}
}
