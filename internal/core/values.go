package core

import "repro/internal/sqltypes"

// Value re-exports the SQL value type so middleware users configuring
// partition rules and site ownership need not import the types package.
type Value = sqltypes.Value

// NewStringValue builds a string Value.
func NewStringValue(s string) Value { return sqltypes.NewString(s) }

// NewIntValue builds an integer Value.
func NewIntValue(i int64) Value { return sqltypes.NewInt(i) }
