package core

import (
	"repro/internal/recoverylog"
	"repro/internal/sqltypes"
)

// Aliases keeping test tables readable.
type sqltypesValue = sqltypes.Value

func sqlInt(i int64) sqltypes.Value  { return sqltypes.NewInt(i) }
func sqlStr(s string) sqltypes.Value { return sqltypes.NewString(s) }

func newRecoveryLog() *recoverylog.Log { return recoverylog.New() }
