package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/recoverylog"
)

// errMonitorStopped aborts an in-flight rejoin resync when the monitor is
// shut down; the contiguous applied prefix stays recorded, so a later
// resync resumes instead of restarting.
var errMonitorStopped = errors.New("core: monitor stopped")

// Monitor watches replica health and drives automatic failover of a
// master-slave cluster, recording availability (MTTF/MTTR) as it goes —
// the measurement discipline §3.4 asks for.
//
// With EnableAutoRejoin it also closes the recovery loop the paper says is
// left to 3 a.m. manual procedure (§2.2): after promoting a slave it
// repairs the recovery log (truncating the old master's lost suffix and
// re-pointing the recorder), and when the failed old master comes back it
// is automatically rolled back via checkpoint clone and re-attached as a
// slave.
type Monitor struct {
	ms       *MasterSlave
	interval time.Duration

	mu           sync.Mutex
	avail        *metrics.Availability
	lastFailover time.Duration // how long the last failover took
	failovers    int
	rejoins      int
	prov         *Provisioner
	rejoinOpts   ResyncOptions
	rejoinLimit  time.Duration
	detached     map[*Replica]bool // failed old masters awaiting recovery
	rejoining    map[*Replica]bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup // in-flight rejoin goroutines
}

// NewMonitor creates (but does not start) a monitor polling at the given
// interval. The interval is the failure detection bound: halving it halves
// worst-case detection latency, at the cost of more probe traffic — the
// §4.3.4 trade-off.
func NewMonitor(ms *MasterSlave, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Monitor{
		ms:        ms,
		interval:  interval,
		avail:     metrics.NewAvailability(),
		detached:  make(map[*Replica]bool),
		rejoining: make(map[*Replica]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// EnableAutoRejoin arms the recovery side of the monitor. After every
// automatic failover the provisioner's log is repaired and its recorder
// re-pointed at the new master; a recovered old master is resynchronized
// (checkpoint clone + tail replay — its diverged suffix is rolled back with
// the restore) and re-attached as a slave. opts tunes the rejoin resync;
// ForceClone is implied. Call before Start.
func (m *Monitor) EnableAutoRejoin(p *Provisioner, opts ResyncOptions) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.prov = p
	m.rejoinOpts = opts
	if m.rejoinLimit == 0 {
		m.rejoinLimit = 30 * time.Second
	}
}

// Start launches the health loop.
func (m *Monitor) Start() {
	go m.run()
}

// Stop terminates the monitor and waits for its loop (and any in-flight
// rejoin) to exit. Safe to call concurrently and repeatedly: the old
// select-then-close could race another Stop into a double close of m.stop
// (both callers taking the default branch before either closed),
// panicking; sync.Once closes exactly once.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.wg.Wait()
}

// Availability returns the availability record (master writability).
func (m *Monitor) Availability() *metrics.Availability { return m.avail }

// LastFailoverDuration returns how long the most recent failover took from
// detection to promotion.
func (m *Monitor) LastFailoverDuration() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastFailover
}

// Failovers returns how many promotions the monitor has performed.
func (m *Monitor) Failovers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// Rejoins returns how many recovered replicas the monitor has
// resynchronized and re-attached as slaves.
func (m *Monitor) Rejoins() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejoins
}

func (m *Monitor) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.updateRegistry()
		m.tryRejoins()
		master := m.ms.Master()
		if master.Healthy() {
			continue
		}
		// Detected a dead master: the system is down for writes until a
		// slave is promoted.
		m.avail.MarkDown()
		start := time.Now()
		promoted, err := m.ms.Failover()
		if err != nil {
			// No promotable slave: remain down; keep polling for one.
			continue
		}
		m.mu.Lock()
		prov := m.prov
		m.mu.Unlock()
		if prov != nil {
			// Repair the shared log before anything resyncs against it:
			// truncate the lost suffix, resume recording from the new
			// master.
			_ = prov.FailoverTo(promoted)
		}
		m.avail.MarkUp()
		m.mu.Lock()
		m.lastFailover = time.Since(start)
		m.failovers++
		if m.prov != nil {
			m.detached[master] = true
		}
		m.mu.Unlock()
	}
}

// updateRegistry records live replica positions in the recovery log so
// compaction never drops the checkpoint a lagging slave would restore from.
func (m *Monitor) updateRegistry() {
	m.mu.Lock()
	prov := m.prov
	m.mu.Unlock()
	if prov == nil {
		return
	}
	log := prov.Log()
	master := m.ms.Master()
	log.Register(master.Name(), master.Engine().Binlog().Head())
	for _, sl := range m.ms.Slaves() {
		log.Register(sl.Name(), sl.AppliedSeq())
	}
}

// tryRejoins launches a rejoin for every detached replica that has come
// back to life. Rejoin runs off the monitor loop so a long tail replay
// never blocks failure detection.
func (m *Monitor) tryRejoins() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prov == nil {
		return
	}
	for rep := range m.detached {
		if !rep.Healthy() || m.rejoining[rep] {
			continue
		}
		m.rejoining[rep] = true
		m.wg.Add(1)
		go m.rejoin(rep)
	}
}

func (m *Monitor) rejoin(rep *Replica) {
	defer m.wg.Done()
	m.mu.Lock()
	prov := m.prov
	opts := m.rejoinOpts
	limit := m.rejoinLimit
	m.mu.Unlock()

	// The old master's state carries a diverged suffix the surviving
	// cluster never saw; build on a checkpoint instead of on it.
	opts.ForceClone = true
	userBefore := opts.BeforeApply
	opts.BeforeApply = func(e recoverylog.Entry) error {
		select {
		case <-m.stop:
			return errMonitorStopped
		default:
		}
		if userBefore != nil {
			return userBefore(e)
		}
		return nil
	}

	ok := false
	if res, err := prov.ResyncAuto(rep, opts, limit); err == nil {
		ok = m.ms.Failback(rep, res.To) == nil
	} else if !errors.Is(err, errMonitorStopped) {
		// No usable checkpoint (or the clone failed): cold-clone the live
		// master. Slower — it consumes master resources, the very thing
		// §4.4.2 checkpointed backups exist to avoid — but always sound.
		master := m.ms.Master()
		if b, derr := master.Engine().Dump(FaithfulBackup); derr == nil {
			if rerr := rep.Engine().Restore(b); rerr == nil {
				rep.Engine().Binlog().Reset(b.AtSeq)
				ok = m.ms.Failback(rep, b.AtSeq) == nil
			}
		}
	}

	m.mu.Lock()
	delete(m.rejoining, rep)
	if ok {
		delete(m.detached, rep)
		m.rejoins++
	}
	m.mu.Unlock()
}
