package core

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Monitor watches replica health and drives automatic failover of a
// master-slave cluster, recording availability (MTTF/MTTR) as it goes —
// the measurement discipline §3.4 asks for.
type Monitor struct {
	ms       *MasterSlave
	interval time.Duration

	mu           sync.Mutex
	avail        *metrics.Availability
	lastFailover time.Duration // how long the last failover took
	failovers    int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewMonitor creates (but does not start) a monitor polling at the given
// interval. The interval is the failure detection bound: halving it halves
// worst-case detection latency, at the cost of more probe traffic — the
// §4.3.4 trade-off.
func NewMonitor(ms *MasterSlave, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &Monitor{
		ms:       ms,
		interval: interval,
		avail:    metrics.NewAvailability(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the health loop.
func (m *Monitor) Start() {
	go m.run()
}

// Stop terminates the monitor and waits for its loop to exit. Safe to call
// concurrently and repeatedly: the old select-then-close could race another
// Stop into a double close of m.stop (both callers taking the default
// branch before either closed), panicking; sync.Once closes exactly once.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Availability returns the availability record (master writability).
func (m *Monitor) Availability() *metrics.Availability { return m.avail }

// LastFailoverDuration returns how long the most recent failover took from
// detection to promotion.
func (m *Monitor) LastFailoverDuration() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastFailover
}

// Failovers returns how many promotions the monitor has performed.
func (m *Monitor) Failovers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

func (m *Monitor) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		master := m.ms.Master()
		if master.Healthy() {
			continue
		}
		// Detected a dead master: the system is down for writes until a
		// slave is promoted.
		m.avail.MarkDown()
		start := time.Now()
		if _, err := m.ms.Failover(); err != nil {
			// No promotable slave: remain down; keep polling for one.
			continue
		}
		m.avail.MarkUp()
		m.mu.Lock()
		m.lastFailover = time.Since(start)
		m.failovers++
		m.mu.Unlock()
	}
}
