package core

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/lb"
	"repro/internal/sqlparse"
)

// MMSession is a client session on a multi-master cluster. Reads execute on
// a load-balanced replica; writes go through total order. Transactions run
// interactively on the session's home replica as a dry run (so reads see
// the transaction's own writes), then are rolled back and re-executed in
// total order at commit — the conservative re-execution that makes
// statement replication 1-copy-serializable when statements are
// deterministic.
type MMSession struct {
	mm   *MultiMaster
	pool *sessionPool
	user string

	home         *Replica
	db           string
	lastWriteSeq uint64
	pinnedRead   *Replica

	inTxn   bool
	txnSQL  []string // rewritten scripts for replay
	dryRun  *engine.Session
	snapSeq uint64 // certification: home position at BEGIN
	// serializable tracks the announced isolation level; serializable
	// reads take 2PL locks and must bypass the result cache.
	serializable bool
}

// NewSession opens a session. The home replica (where transactions execute
// before ordering) is picked by the balancing policy.
func (mm *MultiMaster) NewSession(user string) (*MMSession, error) {
	home, err := mm.pickHome()
	if err != nil {
		return nil, err
	}
	return &MMSession{
		mm: mm, pool: newSessionPool(user), user: user, home: home,
		serializable: home.Engine().Profile().DefaultIsolation == engine.Serializable,
	}, nil
}

// Home returns the session's home replica.
func (s *MMSession) Home() *Replica { return s.home }

// Close releases the session.
func (s *MMSession) Close() {
	if s.dryRun != nil {
		s.dryRun.Rollback()
		s.dryRun = nil
	}
	s.pool.closeAll()
}

// Exec parses and routes one statement (through the statement cache).
func (s *MMSession) Exec(sql string) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(st)
}

// ExecStmt routes a pre-parsed statement.
func (s *MMSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	switch stmt := st.(type) {
	case *sqlparse.UseDatabase:
		s.db = stmt.Name
		if err := s.pool.setDB(stmt.Name); err != nil {
			return nil, err
		}
		return &engine.Result{}, nil
	case *sqlparse.BeginTxn:
		return s.begin()
	case *sqlparse.CommitTxn:
		return s.commit()
	case *sqlparse.RollbackTxn:
		return s.rollback()
	case *sqlparse.SetIsolation:
		// Track and propagate, as in the master-slave router: the level
		// must hold on whichever replica serves this session's reads.
		if !s.inTxn {
			s.serializable = stmt.Level == "SERIALIZABLE"
			if err := s.pool.setIsolation(stmt); err != nil {
				return nil, err
			}
			return &engine.Result{}, nil
		}
	}
	if s.inTxn {
		return s.execInTxn(st)
	}
	if st.IsRead() {
		return s.execRead(st)
	}
	return s.execAutocommitWrite(st)
}

func (s *MMSession) begin() (*engine.Result, error) {
	if s.inTxn {
		return nil, fmt.Errorf("core: transaction already in progress")
	}
	sess, err := s.pool.get(s.home)
	if err != nil {
		return nil, err
	}
	if s.mm.cfg.Mode == CertificationMode {
		if !sess.InTxn() && sess.Isolation() != engine.Snapshot {
			if _, err := sess.Exec("SET ISOLATION LEVEL SNAPSHOT"); err != nil {
				return nil, err
			}
		}
	}
	s.snapSeq = s.home.AppliedSeq()
	if _, err := sess.Exec("BEGIN"); err != nil {
		return nil, err
	}
	s.inTxn = true
	s.dryRun = sess
	s.txnSQL = s.txnSQL[:0]
	return &engine.Result{}, nil
}

// isDDL reports whether the statement changes schema/catalog objects.
func isDDL(st sqlparse.Statement) bool {
	switch st.(type) {
	case *sqlparse.CreateDatabase, *sqlparse.DropDatabase,
		*sqlparse.CreateTable, *sqlparse.DropTable,
		*sqlparse.CreateSequence, *sqlparse.DropSequence,
		*sqlparse.CreateTrigger, *sqlparse.DropTrigger,
		*sqlparse.CreateProcedure, *sqlparse.DropProcedure,
		*sqlparse.CreateUser, *sqlparse.Grant:
		return true
	}
	return false
}

// execInTxn runs a statement inside the interactive transaction.
func (s *MMSession) execInTxn(st sqlparse.Statement) (*engine.Result, error) {
	if isDDL(st) {
		// DDL is non-transactional (§4.1.2) and would double-execute on
		// the home replica during script replay.
		return nil, fmt.Errorf("core: DDL inside explicit transactions is not supported on multi-master clusters")
	}
	exec := st
	if !st.IsRead() && s.mm.cfg.Mode == StatementMode {
		rewritten, err := s.prepareStatement(st)
		if err != nil {
			return nil, err
		}
		exec = rewritten
		// The broadcast script needs SQL text (it crosses the ordering
		// channel), but the local dry run executes the rewritten AST
		// directly — no re-parse.
		s.txnSQL = append(s.txnSQL, rewritten.SQL())
	}
	res, err := s.home.ExecStmtOn(s.dryRun, exec, st.IsRead())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// prepareStatement applies the non-determinism policy (§4.3.2): time macros
// are pinned, unsafe statements are rejected or (dangerously) allowed. The
// returned statement is the (possibly rewritten) AST to execute and ship.
func (s *MMSession) prepareStatement(st sqlparse.Statement) (sqlparse.Statement, error) {
	switch sqlparse.Classify(st) {
	case sqlparse.Deterministic:
		return st, nil
	case sqlparse.RewritableNonDeterministic:
		rewritten, _ := sqlparse.RewriteTimeFuncs(st, time.Now())
		return rewritten, nil
	default:
		if s.mm.cfg.NonDeterminism == RewriteAndAllow {
			rewritten, _ := sqlparse.RewriteTimeFuncs(st, time.Now())
			return rewritten, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNonDeterministic, st.SQL())
	}
}

func (s *MMSession) commit() (*engine.Result, error) {
	if !s.inTxn {
		return nil, fmt.Errorf("core: no transaction in progress")
	}
	defer func() {
		s.inTxn = false
		s.dryRun = nil
		s.txnSQL = nil
	}()
	switch s.mm.cfg.Mode {
	case StatementMode:
		// Discard the dry run; re-execute the script in total order.
		s.dryRun.Rollback()
		if len(s.txnSQL) == 0 {
			return &engine.Result{}, nil // read-only transaction
		}
		return s.submitScript(s.txnSQL)
	default: // CertificationMode
		ws, _, err := s.dryRun.PendingWriteSet()
		if err != nil {
			s.dryRun.Rollback()
			return nil, err
		}
		s.dryRun.Rollback()
		if len(ws.Ops) == 0 {
			return &engine.Result{}, nil
		}
		txn := mmTxn{
			ID:       s.mm.nextTxn.Add(1),
			Origin:   s.home.Name(),
			Database: s.db,
			WS:       ws,
			Snapshot: s.snapSeq,
			User:     s.user,
		}
		res, err := s.mm.submitAndWait(s.mm.ordererFor(s.home), s.home, txn)
		if err == nil {
			s.lastWriteSeq = s.home.AppliedSeq()
		}
		return res, err
	}
}

func (s *MMSession) rollback() (*engine.Result, error) {
	if !s.inTxn {
		return nil, fmt.Errorf("core: no transaction in progress")
	}
	s.dryRun.Rollback()
	s.inTxn = false
	s.dryRun = nil
	s.txnSQL = nil
	return &engine.Result{}, nil
}

// execAutocommitWrite orders a single write statement.
func (s *MMSession) execAutocommitWrite(st sqlparse.Statement) (*engine.Result, error) {
	if isDDL(st) {
		// Schema changes replicate as ordered statements in either mode:
		// write sets cannot carry DDL (§4.3.2).
		return s.submitScript([]string{st.SQL()})
	}
	if s.mm.cfg.Mode == CertificationMode {
		// An autocommit write is a one-statement transaction.
		if _, err := s.begin(); err != nil {
			return nil, err
		}
		if _, err := s.execInTxn(st); err != nil {
			_, _ = s.rollback()
			return nil, err
		}
		return s.commit()
	}
	prepared, err := s.prepareStatement(st)
	if err != nil {
		return nil, err
	}
	return s.submitScript([]string{prepared.SQL()})
}

func (s *MMSession) submitScript(stmts []string) (*engine.Result, error) {
	txn := mmTxn{
		ID:       s.mm.nextTxn.Add(1),
		Origin:   s.home.Name(),
		Database: s.db,
		Stmts:    append([]string(nil), stmts...),
		User:     s.user,
	}
	res, err := s.mm.submitAndWait(s.mm.ordererFor(s.home), s.home, txn)
	if err == nil {
		s.lastWriteSeq = s.home.AppliedSeq()
	}
	return res, err
}

// execRead balances a read per level/policy/consistency, serving
// cache-eligible statements from the cluster's query result cache when one
// is configured (entries are tagged with the serving replica's applied
// position, so the session-consistency re-validation below applies to
// cached results exactly as it does to replicas).
func (s *MMSession) execRead(st sqlparse.Statement) (*engine.Result, error) {
	qc := s.mm.qc
	if qc == nil || s.serializable || !engine.CacheableRead(st) {
		return s.execReadRouted(st)
	}
	user := s.user
	db := s.db
	text := st.SQL()
	if res, ok := qc.Get(user, db, text, nil, s.mm.cacheMinPos(s.lastWriteSeq)); ok {
		return res, nil
	}
	target, err := s.routeRead()
	if err != nil {
		return nil, err
	}
	sess, err := s.pool.get(target)
	if err != nil {
		return nil, err
	}
	pos := target.AppliedSeq()
	res, err := target.ExecStmtOn(sess, st, true)
	if err != nil {
		return nil, err
	}
	qc.Put(user, db, text, nil, st.Tables(), pos, res)
	return res, nil
}

// execReadRouted executes a read on a routed replica with no caching.
func (s *MMSession) execReadRouted(st sqlparse.Statement) (*engine.Result, error) {
	target, err := s.routeRead()
	if err != nil {
		return nil, err
	}
	sess, err := s.pool.get(target)
	if err != nil {
		return nil, err
	}
	return target.ExecStmtOn(sess, st, true)
}

// routeRead picks the replica for a read. As in the master-slave router, a
// connection-level pin is only honored while the pinned replica still
// satisfies the session's consistency guarantee.
func (s *MMSession) routeRead() (*Replica, error) {
	if s.mm.cfg.ReadLevel == lb.ConnectionLevel && s.pinnedRead != nil && s.pinnedRead.Healthy() &&
		s.mm.replicaFresh(s.pinnedRead, s.lastWriteSeq) {
		return s.pinnedRead, nil
	}
	target, err := s.mm.pickRead(s.lastWriteSeq)
	if err != nil {
		return nil, err
	}
	if s.mm.cfg.ReadLevel == lb.ConnectionLevel {
		s.pinnedRead = target
	}
	return target, nil
}
