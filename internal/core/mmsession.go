package core

import (
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/lb"
	"repro/internal/qcache"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// MMSession is a client session on a multi-master cluster. Reads execute on
// a load-balanced replica; writes go through total order. Transactions run
// interactively on the session's home replica as a dry run (so reads see
// the transaction's own writes), then are rolled back and re-executed in
// total order at commit — the conservative re-execution that makes
// statement replication 1-copy-serializable when statements are
// deterministic.
type MMSession struct {
	mm   *MultiMaster
	pool *sessionPool
	user string

	home         *Replica
	db           string
	lastWriteSeq uint64
	// lastReadSeq is the monotonic-reads floor: the highest ordered
	// position any state this session already observed could reflect.
	// Mirrors MSSession.lastReadSeq — lastWriteSeq alone gives
	// read-your-writes but lets a re-routed read go backward.
	lastReadSeq uint64
	pinnedRead  *Replica
	// cons is the session's read guarantee; it defaults to the cluster
	// configuration and can be overridden per session (SET CONSISTENCY).
	cons Consistency

	// stmtTimeout is the per-statement deadline budget (SET DEADLINE); it
	// bounds admission wait, replica queueing, and read/dry-run execution.
	// Ordered commits stay bounded by CommitTimeout: aborting a transaction
	// after it has been ordered would be unsafe.
	stmtTimeout time.Duration

	inTxn   bool
	txnSQL  []string // rewritten scripts for replay
	dryRun  *engine.Session
	snapSeq uint64 // certification: home position at BEGIN
	// serializable tracks the announced isolation level; serializable
	// reads take 2PL locks and must bypass the result cache.
	serializable bool
}

// NewSession opens a session. The home replica (where transactions execute
// before ordering) is picked by the balancing policy.
func (mm *MultiMaster) NewSession(user string) (*MMSession, error) {
	home, err := mm.pickHome()
	if err != nil {
		return nil, err
	}
	return &MMSession{
		mm: mm, pool: newSessionPool(user), user: user, home: home,
		cons:         mm.cfg.Consistency,
		stmtTimeout:  mm.cfg.StatementTimeout,
		serializable: home.Engine().Profile().DefaultIsolation == engine.Serializable,
	}, nil
}

// stmtDeadline converts the session's statement-timeout budget into an
// absolute deadline for the statement starting now; zero means unbounded.
func (s *MMSession) stmtDeadline() time.Time {
	if s.stmtTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.stmtTimeout)
}

// readClass maps the session's read guarantee onto an admission class: ANY
// reads are shed first under the degradation ladder, SESSION/STRONG reads
// queue longer.
func (s *MMSession) readClass() admission.Class {
	if s.cons == ReadAny {
		return admission.ClassReadAny
	}
	return admission.ClassReadSession
}

// admit acquires an admission slot (nil slot when admission is off).
func (s *MMSession) admit(class admission.Class, deadline time.Time) (*admission.Slot, error) {
	return s.mm.cfg.Admission.Acquire(s.user, class, deadline)
}

// Home returns the session's home replica.
func (s *MMSession) Home() *Replica { return s.home }

// Close releases the session.
func (s *MMSession) Close() {
	if s.dryRun != nil {
		s.dryRun.Rollback()
		s.dryRun = nil
	}
	s.pool.closeAll()
}

// Exec parses and routes one statement with optional ? bind arguments
// (through the statement cache).
func (s *MMSession) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmtArgs(st, args...)
}

// Query implements Conn; routing is decided by the statement itself.
func (s *MMSession) Query(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return s.Exec(sql, args...)
}

// ExecStmt routes a pre-parsed statement.
func (s *MMSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	return s.ExecStmtArgs(st)
}

// ExecStmtArgs routes a pre-parsed statement with bind arguments. Writes
// that cross the ordering channel as SQL text (statement mode) have their
// arguments inlined as literals first: the broadcast script is re-executed
// on every replica with no access to this call's argument vector.
func (s *MMSession) ExecStmtArgs(st sqlparse.Statement, args ...sqltypes.Value) (*engine.Result, error) {
	switch stmt := st.(type) {
	case *sqlparse.UseDatabase:
		s.db = stmt.Name
		if err := s.pool.setDB(stmt.Name); err != nil {
			return nil, err
		}
		return &engine.Result{}, nil
	case *sqlparse.BeginTxn:
		// Transaction brackets hold write-class admission for their own
		// duration only; the statements inside admit individually (a slot
		// held across an interactive transaction would let one slow client
		// starve the cluster).
		slot, err := s.admit(admission.ClassWrite, s.stmtDeadline())
		if err != nil {
			return nil, err
		}
		res, err := s.begin()
		slot.Done(err)
		return res, err
	case *sqlparse.CommitTxn:
		slot, err := s.admit(admission.ClassWrite, s.stmtDeadline())
		if err != nil {
			return nil, err
		}
		res, err := s.commit()
		slot.Done(err)
		return res, err
	case *sqlparse.RollbackTxn:
		// Rollback discards local state only — never shed it: refusing a
		// rollback under overload would strand open transactions.
		return s.rollback()
	case *sqlparse.SetDeadline:
		s.stmtTimeout = stmt.D
		return &engine.Result{}, nil
	case *sqlparse.SetConsistency:
		c, err := ParseConsistency(stmt.Level)
		if err != nil {
			return nil, err
		}
		s.cons = c
		return &engine.Result{}, nil
	case *sqlparse.SetIsolation:
		// Track and propagate, as in the master-slave router: the level
		// must hold on whichever replica serves this session's reads.
		if !s.inTxn {
			s.serializable = stmt.Level == "SERIALIZABLE"
			if err := s.pool.setIsolation(stmt); err != nil {
				return nil, err
			}
			return &engine.Result{}, nil
		}
	}
	if s.inTxn {
		deadline := s.stmtDeadline()
		slot, err := s.admit(admission.ClassWrite, deadline)
		if err != nil {
			return nil, err
		}
		res, err := s.execInTxn(st, args, deadline)
		slot.Done(err)
		return res, err
	}
	if st.IsRead() {
		return s.execRead(st, args)
	}
	deadline := s.stmtDeadline()
	slot, err := s.admit(admission.ClassWrite, deadline)
	if err != nil {
		return nil, err
	}
	res, err := s.execAutocommitWrite(st, args, deadline)
	slot.Done(err)
	return res, err
}

func (s *MMSession) begin() (*engine.Result, error) {
	if s.inTxn {
		return nil, fmt.Errorf("%w: transaction already in progress", ErrTxnState)
	}
	if !s.home.Healthy() {
		// The home replica executes this session's transactions; starting
		// one against a dead home would only fail later, at first write.
		// Failing BEGIN lets pooled drivers discard the connection and
		// retry on a fresh one (homed on a healthy replica).
		return nil, ErrReplicaDown
	}
	sess, err := s.pool.get(s.home)
	if err != nil {
		return nil, err
	}
	if s.mm.cfg.Mode == CertificationMode {
		if !sess.InTxn() && sess.Isolation() != engine.Snapshot {
			if _, err := sess.Exec("SET ISOLATION LEVEL SNAPSHOT"); err != nil {
				return nil, err
			}
		}
	}
	// Session/strong guarantees extend into explicit transactions, but the
	// dry run's snapshot is taken on the home engine with no routing in
	// between — so the home must first catch up to the session's floors
	// (own writes + previously observed state). Without this wait a
	// version the session just observed through a routed read can vanish
	// inside the next BEGIN: a monotonic-reads anomaly.
	if err := s.waitHomeFloor(); err != nil {
		return nil, err
	}
	// {BEGIN, sample} under snapMu pins snapSeq to exactly the snapshot's
	// position: nothing past it is in the snapshot (certification stays
	// sound) and everything up to it is (no spurious conflict aborts, and
	// the position doubles as the session's observed floor).
	s.home.snapMu.Lock()
	_, err = sess.Exec("BEGIN")
	pos := s.home.AppliedSeq()
	s.home.snapMu.Unlock()
	if err != nil {
		return nil, err
	}
	s.snapSeq = pos
	s.bumpReadSeq(pos)
	s.inTxn = true
	s.dryRun = sess
	s.txnSQL = s.txnSQL[:0]
	return &engine.Result{}, nil
}

// isDDL reports whether the statement changes schema/catalog objects.
func isDDL(st sqlparse.Statement) bool {
	switch st.(type) {
	case *sqlparse.CreateDatabase, *sqlparse.DropDatabase,
		*sqlparse.CreateTable, *sqlparse.DropTable,
		*sqlparse.CreateSequence, *sqlparse.DropSequence,
		*sqlparse.CreateTrigger, *sqlparse.DropTrigger,
		*sqlparse.CreateProcedure, *sqlparse.DropProcedure,
		*sqlparse.CreateUser, *sqlparse.Grant:
		return true
	}
	return false
}

// execInTxn runs a statement inside the interactive transaction. In
// statement mode the write's ? arguments are inlined right here, where the
// statement text is recorded for the ordering channel, so the script is
// standalone by construction; in certification mode the argument vector
// binds at the dry run and the captured write set carries row images.
func (s *MMSession) execInTxn(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time) (*engine.Result, error) {
	if isDDL(st) {
		// DDL is non-transactional (§4.1.2) and would double-execute on
		// the home replica during script replay.
		return nil, fmt.Errorf("%w: DDL inside explicit transactions on multi-master clusters", ErrUnsupportedStatement)
	}
	exec := st
	if !st.IsRead() && s.mm.cfg.Mode == StatementMode {
		rewritten, err := s.prepareStatement(st)
		if err != nil {
			return nil, err
		}
		// The broadcast script crosses the ordering channel as SQL text and
		// re-executes standalone on every replica, which has no access to
		// this call's argument vector: bind ? placeholders before rendering.
		// The local dry run executes the same bound AST directly (no
		// re-parse), so dry run and replay see identical statements.
		bound, err := sqlparse.BindParams(rewritten, args)
		if err != nil {
			return nil, err
		}
		exec, args = bound, nil
		s.txnSQL = append(s.txnSQL, bound.SQL())
	}
	res, err := s.home.ExecStmtArgsDeadlineOn(s.dryRun, exec, st.IsRead(), args, deadline)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// prepareStatement applies the non-determinism policy (§4.3.2): time macros
// are pinned, unsafe statements are rejected or (dangerously) allowed. The
// returned statement is the (possibly rewritten) AST to execute and ship.
func (s *MMSession) prepareStatement(st sqlparse.Statement) (sqlparse.Statement, error) {
	switch sqlparse.Classify(st) {
	case sqlparse.Deterministic:
		return st, nil
	case sqlparse.RewritableNonDeterministic:
		rewritten, _ := sqlparse.RewriteTimeFuncs(st, time.Now())
		return rewritten, nil
	default:
		if s.mm.cfg.NonDeterminism == RewriteAndAllow {
			rewritten, _ := sqlparse.RewriteTimeFuncs(st, time.Now())
			return rewritten, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNonDeterministic, st.SQL()) // lint:rawsql-ok error-message rendering; text never reaches the ordering channel
	}
}

func (s *MMSession) commit() (*engine.Result, error) {
	if !s.inTxn {
		return nil, fmt.Errorf("%w: no transaction in progress", ErrTxnState)
	}
	defer func() {
		s.inTxn = false
		s.dryRun = nil
		s.txnSQL = nil
	}()
	switch s.mm.cfg.Mode {
	case StatementMode:
		// Discard the dry run; re-execute the script in total order.
		s.dryRun.Rollback()
		if len(s.txnSQL) == 0 {
			return &engine.Result{}, nil // read-only transaction
		}
		return s.submitScript(s.txnSQL)
	default: // CertificationMode
		ws, _, err := s.dryRun.PendingWriteSet()
		if err != nil {
			s.dryRun.Rollback()
			return nil, err
		}
		s.dryRun.Rollback()
		if len(ws.Ops) == 0 {
			return &engine.Result{}, nil
		}
		if !s.home.Healthy() {
			// Same pre-ordering refusal as submitScript: an ordered write
			// set would commit cluster-wide while this session errors.
			return nil, ErrReplicaDown
		}
		txn := mmTxn{
			ID:       s.mm.nextTxn.Add(1),
			Origin:   s.home.Name(),
			Database: s.db,
			WS:       ws,
			Snapshot: s.snapSeq,
			User:     s.user,
		}
		res, err := s.mm.submitAndWait(s.mm.ordererFor(s.home), s.home, txn)
		if err == nil {
			s.lastWriteSeq = s.home.AppliedSeq()
			if res != nil && res.AtSeq == 0 {
				res.AtSeq = s.lastWriteSeq
			}
		}
		return res, err
	}
}

func (s *MMSession) rollback() (*engine.Result, error) {
	if !s.inTxn {
		return nil, fmt.Errorf("%w: no transaction in progress", ErrTxnState)
	}
	s.dryRun.Rollback()
	s.inTxn = false
	s.dryRun = nil
	s.txnSQL = nil
	return &engine.Result{}, nil
}

// execAutocommitWrite orders a single write statement (? arguments are
// inlined below in statement mode; bound at the dry run in certification
// mode).
func (s *MMSession) execAutocommitWrite(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time) (*engine.Result, error) {
	if isDDL(st) {
		// Schema changes replicate as ordered statements in either mode:
		// write sets cannot carry DDL (§4.3.2).
		return s.submitScript([]string{st.SQL()}) // lint:rawsql-ok isDDL-guarded: DDL statements cannot carry ? placeholders (see sqlparse/bind.go)
	}
	if s.mm.cfg.Mode == CertificationMode {
		// An autocommit write is a one-statement transaction; the caller's
		// admission slot covers the whole begin/execute/commit composition.
		if _, err := s.begin(); err != nil {
			return nil, err
		}
		if _, err := s.execInTxn(st, args, deadline); err != nil {
			_, _ = s.rollback()
			return nil, err
		}
		return s.commit()
	}
	prepared, err := s.prepareStatement(st)
	if err != nil {
		return nil, err
	}
	// The ordered script re-executes standalone on every replica: inline the
	// ? arguments at the ship site so the text can never leave with unbound
	// placeholders.
	bound, err := sqlparse.BindParams(prepared, args)
	if err != nil {
		return nil, err
	}
	return s.submitScript([]string{bound.SQL()})
}

func (s *MMSession) submitScript(stmts []string) (*engine.Result, error) {
	if !s.home.Healthy() {
		// Refuse BEFORE ordering: once submitted, the script commits
		// cluster-wide even though this session (whose dead home applier
		// can never acknowledge it) would report failure — and a pooled
		// driver's retry would then double-apply a non-idempotent write.
		return nil, ErrReplicaDown
	}
	txn := mmTxn{
		ID:       s.mm.nextTxn.Add(1),
		Origin:   s.home.Name(),
		Database: s.db,
		Stmts:    append([]string(nil), stmts...),
		User:     s.user,
	}
	res, err := s.mm.submitAndWait(s.mm.ordererFor(s.home), s.home, txn)
	if err == nil {
		s.lastWriteSeq = s.home.AppliedSeq()
		if res != nil && res.AtSeq == 0 {
			res.AtSeq = s.lastWriteSeq
		}
	}
	return res, err
}

// execRead balances a read per level/policy/consistency, serving
// cache-eligible statements from the cluster's query result cache when one
// is configured (entries are tagged with the serving replica's applied
// position, so the session-consistency re-validation below applies to
// cached results exactly as it does to replicas).
// readFloor is the lowest ordered position a read may be served from;
// session consistency covers own writes and previously observed state.
func (s *MMSession) readFloor() uint64 {
	if s.cons == SessionConsistent && s.lastReadSeq > s.lastWriteSeq {
		return s.lastReadSeq
	}
	return s.lastWriteSeq
}

// bumpReadSeq advances the monotonic-reads floor to pos.
func (s *MMSession) bumpReadSeq(pos uint64) {
	if pos > s.lastReadSeq {
		s.lastReadSeq = pos
	}
}

// waitHomeFloor blocks until the home replica's applied position reaches
// the freshness floor the session's consistency level demands of a BEGIN,
// bounded by the commit timeout (a lagging or partitioned home fails the
// BEGIN so pooled drivers retry on a fresh connection).
func (s *MMSession) waitHomeFloor() error {
	var floor uint64
	switch s.cons {
	case StrongConsistent:
		floor = s.mm.head.Load()
	case SessionConsistent:
		floor = s.readFloor()
	default:
		return nil
	}
	if s.home.AppliedSeq() >= floor {
		return nil
	}
	deadline := time.Now().Add(s.mm.cfg.CommitTimeout)
	for s.home.AppliedSeq() < floor {
		if !s.home.Healthy() {
			return ErrReplicaDown
		}
		if time.Now().After(deadline) {
			// A stuck freshness wait is a deadline, not a hard failure: the
			// read never executed, so wrapping the deadline sentinel lets
			// pooled drivers back off and retry on a fresh connection
			// (likely homed on a replica that has caught up).
			return fmt.Errorf("%w: home %s stuck at position %d, session requires %d",
				ErrDeadlineExceeded, s.home.Name(), s.home.AppliedSeq(), floor)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

func (s *MMSession) execRead(st sqlparse.Statement, args []sqltypes.Value) (*engine.Result, error) {
	deadline := s.stmtDeadline()
	// Under sustained overload ANY-consistency reads shed first (ladder
	// rung 1): serve them from the cache or any healthy replica, however
	// stale, before spending a slot.
	relaxed := s.cons == ReadAny && s.mm.cfg.Admission.Shedding()
	qc := s.mm.qc
	if qc == nil || s.serializable || !engine.CacheableRead(st) {
		slot, err := s.admit(s.readClass(), deadline)
		if err != nil {
			return nil, err
		}
		res, err := s.execReadRouted(st, args, deadline, relaxed)
		slot.Done(err)
		return res, err
	}
	user := s.user
	db := s.db
	text := st.SQL() // lint:rawsql-ok process-local query-cache key; never crosses a replica boundary
	minPos := s.mm.cacheMinPos(s.cons, s.readFloor())
	if relaxed {
		minPos = 0 // shedding: any cached result beats queueing for a slot
	}
	// Probe the cache BEFORE admission: hits cost no slot, so under
	// overload the cache keeps absorbing read traffic at full speed.
	if res, posHi, ok := qc.GetPos(user, db, text, args, minPos); ok {
		s.bumpReadSeq(posHi)
		return res, nil
	}
	slot, err := s.admit(s.readClass(), deadline)
	if err != nil {
		return nil, err
	}
	res, err := s.execReadCacheFill(st, args, deadline, relaxed, qc, user, db, text)
	slot.Done(err)
	return res, err
}

// execReadCacheFill routes a cache-miss read and installs the result.
func (s *MMSession) execReadCacheFill(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time, relaxed bool, qc *qcache.Scope, user, db, text string) (*engine.Result, error) {
	target, err := s.routeRead(relaxed)
	if err != nil {
		return nil, err
	}
	sess, err := s.pool.get(target)
	if err != nil {
		return nil, err
	}
	pos := target.AppliedSeq()
	res, err := target.ExecStmtArgsDeadlineOn(sess, st, true, args, deadline)
	if err != nil {
		return nil, err
	}
	posHi := sampleApplied(target)
	s.bumpReadSeq(posHi)
	qc.PutAt(user, db, text, args, st.Tables(), pos, posHi, res)
	return res, nil
}

// sampleApplied reads the replica's applied position under snapMu so it is
// an exact ceiling for state a read just observed: if an applier has made a
// write set visible but not yet stored its position, the sample waits out
// the store instead of running a hair behind what was read.
func sampleApplied(r *Replica) uint64 {
	r.snapMu.Lock()
	pos := r.AppliedSeq()
	r.snapMu.Unlock()
	return pos
}

// execReadRouted executes a read on a routed replica with no caching.
func (s *MMSession) execReadRouted(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time, relaxed bool) (*engine.Result, error) {
	target, err := s.routeRead(relaxed)
	if err != nil {
		return nil, err
	}
	sess, err := s.pool.get(target)
	if err != nil {
		return nil, err
	}
	res, err := target.ExecStmtArgsDeadlineOn(sess, st, true, args, deadline)
	if err != nil {
		return nil, err
	}
	s.bumpReadSeq(sampleApplied(target))
	return res, nil
}

// routeRead picks the replica for a read. As in the master-slave router, a
// connection-level pin is only honored while the pinned replica still
// satisfies the session's consistency guarantee (or the read is relaxed by
// overload shedding, which waives freshness).
func (s *MMSession) routeRead(relaxed bool) (*Replica, error) {
	floor := s.readFloor()
	if s.mm.cfg.ReadLevel == lb.ConnectionLevel && s.pinnedRead != nil && s.pinnedRead.Healthy() &&
		(relaxed || s.mm.replicaFresh(s.pinnedRead, s.cons, floor)) {
		return s.pinnedRead, nil
	}
	target, err := s.mm.pickRead(s.cons, floor, relaxed)
	if err != nil {
		return nil, err
	}
	if s.mm.cfg.ReadLevel == lb.ConnectionLevel {
		s.pinnedRead = target
	}
	return target, nil
}

// Prepare implements Conn: parse once, execute many with fresh bindings.
func (s *MMSession) Prepare(sql string) (*Stmt, error) { return newStmt(s, sql) }

// Begin implements Conn. It routes through ExecStmt so transaction
// brackets pass admission control exactly like their SQL-text form.
func (s *MMSession) Begin() error {
	_, err := s.ExecStmt(&sqlparse.BeginTxn{})
	return err
}

// Commit implements Conn.
func (s *MMSession) Commit() error {
	_, err := s.ExecStmt(&sqlparse.CommitTxn{})
	return err
}

// Rollback implements Conn.
func (s *MMSession) Rollback() error {
	_, err := s.ExecStmt(&sqlparse.RollbackTxn{})
	return err
}

// SetIsolation implements Conn, propagating the level across the session's
// whole backend pool.
func (s *MMSession) SetIsolation(level string) error {
	lv, err := normalizeIsolation(level)
	if err != nil {
		return err
	}
	_, err = s.ExecStmt(&sqlparse.SetIsolation{Level: lv})
	return err
}

// SetConsistency implements Conn: a per-session read-guarantee override.
func (s *MMSession) SetConsistency(c Consistency) error {
	s.cons = c
	return nil
}
