package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/recoverylog"
)

// benchRecoverySetup builds a master with `total` committed inserts, a
// recovery log mirroring its binlog, and a payload checkpoint at `ckptAt`.
func benchRecoverySetup(b *testing.B, total, ckptAt int) (*MasterSlave, *Provisioner, uint64) {
	b.Helper()
	master := NewReplica(ReplicaConfig{Name: "m"})
	ms := NewMasterSlave(master, nil, MasterSlaveConfig{ReadFromMaster: true})
	b.Cleanup(ms.Close)
	sess := ms.NewSession("bench")
	b.Cleanup(sess.Close)
	for _, sql := range []string{
		"CREATE DATABASE shop", "USE shop",
		"CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)",
	} {
		if _, err := sess.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	prov := NewProvisioner(recoverylog.New())
	record := func() {
		events, _ := master.Engine().Binlog().ReadFrom(prov.Log().Head(), 0)
		for _, ev := range events {
			prov.RecordEvent(ev)
		}
	}
	insert := func(from, to int) {
		for i := from; i <= to; i++ {
			if _, err := sess.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	insert(1, ckptAt)
	record()
	if _, err := prov.CheckpointBackup("snap", master, FaithfulBackup); err != nil {
		b.Fatal(err)
	}
	insert(ckptAt+1, total)
	record()
	return ms, prov, prov.Log().Head()
}

// BenchmarkRecoveryResync compares the three ways a replacement replica can
// be brought online (§4.4.2): full-log replay (the seed's only mode), cold
// clone of a head backup (no tail, but the dump is taken from — and paid
// for by — a live replica), and checkpoint + tail (restore the newest
// checkpoint backup, replay only the suffix).
func BenchmarkRecoveryResync(b *testing.B) {
	const total, ckptAt = 2000, 1800
	opts := ResyncOptions{BatchWait: time.Millisecond}

	b.Run("full-log-replay", func(b *testing.B) {
		_, prov, _ := benchRecoverySetup(b, total, ckptAt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := NewReplica(ReplicaConfig{Name: "r"})
			if _, err := prov.Resync(rep, 0, opts, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkpoint-tail", func(b *testing.B) {
		_, prov, _ := benchRecoverySetup(b, total, ckptAt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := NewReplica(ReplicaConfig{Name: "r"})
			res, err := prov.ResyncAuto(rep, opts, time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cloned {
				b.Fatal("expected checkpoint clone")
			}
		}
	})
	b.Run("cold-clone", func(b *testing.B) {
		ms, _, head := benchRecoverySetup(b, total, ckptAt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// What the monitor's no-checkpoint fallback does: dump the live
			// master (consuming its resources — the cost §4.4.2 checkpointed
			// backups exist to avoid) and restore wholesale.
			dump, err := ms.Master().Engine().Dump(engine.BackupOptions{
				IncludeUsers: true, IncludeCode: true, IncludeSequences: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep := NewReplica(ReplicaConfig{Name: "r"})
			if err := rep.Engine().Restore(dump); err != nil {
				b.Fatal(err)
			}
			rep.Engine().Binlog().Reset(head)
		}
	})
}
