package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/lb"
	"repro/internal/qcache"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// SafetyMode is the commit durability contract of §2.2.
type SafetyMode int

// Safety modes.
const (
	// OneSafe commits at the master without consulting slaves: fast, but
	// transactions can be lost on failover.
	OneSafe SafetyMode = iota
	// TwoSafe delays commit acknowledgement until the required number of
	// slaves confirmed *receipt* of the update (they need not have
	// applied or persisted it) — "avoids transaction loss, but increases
	// latency".
	TwoSafe
)

// ShipMode selects what the master ships to slaves (§4.3.2).
type ShipMode int

// Shipping modes.
const (
	// ShipStatements re-executes the SQL on each slave.
	ShipStatements ShipMode = iota
	// ShipWriteSets applies captured row changes.
	ShipWriteSets
)

// Consistency is the read routing guarantee (§3.3).
type Consistency int

// Read consistency levels.
const (
	// ReadAny routes reads to any healthy replica regardless of lag
	// (loose consistency with no freshness guarantee).
	ReadAny Consistency = iota
	// SessionConsistent guarantees read-your-writes: reads go to replicas
	// that have applied this session's last write (strong session SI).
	SessionConsistent
	// StrongConsistent guarantees reads observe the globally latest
	// commit (global strong SI / RSI-PC): only fully caught-up slaves or
	// the master qualify.
	StrongConsistent
)

// MasterSlaveConfig configures a master-slave (hot standby / scale-out)
// cluster.
type MasterSlaveConfig struct {
	Safety SafetyMode
	Ship   ShipMode
	// TwoSafeAcks is how many slaves must confirm receipt before a commit
	// returns under TwoSafe; zero means all slaves.
	TwoSafeAcks int
	// ApplyDelay adds per-event latency at slaves (models the apply lag
	// whose consequences §2.2 describes).
	ApplyDelay time.Duration
	// ApplyBatch caps how many queued write-set events a slave applies per
	// engine lock acquisition (group commit): a lagging slave drains its
	// backlog with one lock round-trip per batch instead of one per
	// transaction. Zero means 32; 1 disables batching. Statement-shipped
	// and DDL events always apply one at a time.
	ApplyBatch int
	// ReadPolicy balances reads over slaves; nil means LPRF.
	ReadPolicy lb.Policy
	// ReadLevel is the balancing granularity. The zero value is
	// ConnectionLevel: a session's reads stick to one replica for as long
	// as it stays healthy AND keeps satisfying the session's consistency
	// guarantee (a pinned-but-lagging replica is re-picked, never served
	// stale). QueryLevel rebalances every read.
	ReadLevel lb.Level
	// ReadFromMaster additionally allows routing reads to the master.
	ReadFromMaster bool
	// Consistency is the default read guarantee for sessions.
	Consistency Consistency
	// FreshnessBound, when > 0 and Consistency is ReadAny, restricts
	// reads to slaves lagging at most this many events ("a freshness
	// guarantee", §2.1).
	FreshnessBound uint64
	// TransparentFailover replays the in-flight transaction on the new
	// master after failover (Sequoia-style, §4.3.3). Only sound with
	// deterministic statements.
	TransparentFailover bool
	// FailoverTimeout bounds how long sessions wait for a promotion
	// before giving up; zero means 5 s.
	FailoverTimeout time.Duration
	// QueryCache, when non-nil, serves eligible reads (deterministic
	// SELECTs under read-committed/snapshot isolation) from a middleware
	// result cache with table-granularity invalidation. The cluster
	// attaches its own scope, so one Cache may back several clusters
	// (e.g. every partition of a partitioned deployment) without result
	// collisions. Entries are position-tagged: a session-consistent read
	// is never served a result older than the session's last write.
	QueryCache *qcache.Cache
	// Admission, when non-nil, gates every routed statement through the
	// cluster's overload-protection controller: bounded concurrency, a
	// prioritized wait queue (writes rejected last), per-user limits, and
	// slow-query accounting. Nil means no admission control. In layered
	// deployments (partitioned, WAN) attach the controller to the TOP
	// cluster only, or statements pay admission twice.
	Admission *admission.Controller
	// StatementTimeout is the default per-statement budget for new
	// sessions (admission-queue wait + replica wait + execution). Zero
	// means none; sessions override it with SET DEADLINE.
	StatementTimeout time.Duration
}

// ErrTxnLost is wrapped when a master failover destroys an in-flight
// transaction and TransparentFailover is off (§4.3.3: session failover
// only). Deliberately not retryable — the application must restart the
// transaction from BEGIN; replaying just the failed statement would apply
// it outside any transaction.
var ErrTxnLost = errors.New("core: transaction lost by master failover")

// MasterSlave is a master-slave replication controller (Figures 1 and 3).
type MasterSlave struct {
	cfg MasterSlaveConfig

	mu       sync.Mutex
	master   *Replica
	slaves   []*Replica
	appliers map[string]*slaveApplier
	policy   lb.Policy
	// failingOver blocks Failback while Failover is between its two locked
	// sections: an applier attached in that window would ship from the
	// dying master and never be halted.
	failingOver bool
	// epoch is bumped at each failover. Atomic so the read hot path can
	// detect promotions without taking ms.mu.
	epoch atomic.Uint64

	// qc is the cluster's scope on the configured query result cache (nil
	// when caching is off). invalMu serializes draining the master binlog
	// into the scope's invalidation state; invalCursor is the last binlog
	// position folded in. Writers drain up to their own commit position
	// before acknowledging, so invalidation is never later than the ack.
	qc          *qcache.Scope
	invalMu     sync.Mutex
	invalCursor uint64
	// skipInval disables write-side cache invalidation. Fault injection for
	// the consistency certification harness ONLY: with it set, an acked
	// write leaves stale results cached, and the history checker must catch
	// the resulting read-your-writes violation.
	skipInval atomic.Bool

	// durab, when set, is awaited before any committed write is
	// acknowledged: the commit's position must be flushed to the recovery
	// log first (cross-connection group commit, PR 9). Atomic holder so the
	// write hot path never takes ms.mu for it.
	durab atomic.Value // holds durabHolder

	lostOnLastFailover uint64
	// failoverHist records every promotion this cluster performed, newest
	// last: the operability surface exports it, and post-mortems need the
	// exact lost-transaction count per event, not just the last one.
	failoverHist []FailoverRecord
}

// FailoverRecord is one completed promotion: when it happened, which master
// died, which slave was promoted, and how many committed-but-unshipped
// transactions the 1-safe window lost.
type FailoverRecord struct {
	At        time.Time
	Lost      uint64
	OldMaster string
	NewMaster string
}

// FailoverHistory returns every failover this cluster performed, oldest
// first.
func (ms *MasterSlave) FailoverHistory() []FailoverRecord {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return append([]FailoverRecord(nil), ms.failoverHist...)
}

// durabHolder wraps the DurabilityWaiter for atomic.Value (which requires a
// single concrete stored type).
type durabHolder struct{ w DurabilityWaiter }

// SetDurability installs (or, with nil, removes) the durability gate awaited
// before commit acknowledgements. DurableCluster wires a GroupCommitter here
// when a group-commit window is configured.
func (ms *MasterSlave) SetDurability(w DurabilityWaiter) {
	ms.durab.Store(durabHolder{w: w})
}

func (ms *MasterSlave) durability() DurabilityWaiter {
	if h, ok := ms.durab.Load().(durabHolder); ok {
		return h.w
	}
	return nil
}

// slaveApplier consumes the master binlog serially into one slave.
type slaveApplier struct {
	slave   *Replica
	session *engine.Session
	delay   time.Duration
	ship    ShipMode
	batch   int // max write-set events group-committed per lock acquisition
	stop    chan struct{}
	done    chan struct{}
}

// NewMasterSlave wires a master and its slaves and starts binlog shipping.
func NewMasterSlave(master *Replica, slaves []*Replica, cfg MasterSlaveConfig) *MasterSlave {
	if cfg.ReadPolicy == nil {
		cfg.ReadPolicy = lb.NewLPRF()
	}
	if cfg.FailoverTimeout == 0 {
		cfg.FailoverTimeout = 5 * time.Second
	}
	ms := &MasterSlave{
		cfg:      cfg,
		master:   master,
		slaves:   append([]*Replica(nil), slaves...),
		appliers: make(map[string]*slaveApplier),
		policy:   cfg.ReadPolicy,
	}
	if cfg.QueryCache != nil {
		ms.qc = cfg.QueryCache.NewScope()
		// Events before attachment cannot have cached results; start the
		// invalidation cursor at the current head instead of replaying.
		ms.invalCursor = master.Engine().Binlog().Head()
	}
	for _, sl := range ms.slaves {
		ms.startApplier(sl, 0)
	}
	return ms
}

// Master returns the current master replica.
func (ms *MasterSlave) Master() *Replica {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.master
}

// Slaves returns the current slave set.
func (ms *MasterSlave) Slaves() []*Replica {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return append([]*Replica(nil), ms.slaves...)
}

// MasterSeq returns the master's current binlog head.
func (ms *MasterSlave) MasterSeq() uint64 {
	return ms.Master().Engine().Binlog().Head()
}

// SlaveLag returns how many events each slave still has to apply.
func (ms *MasterSlave) SlaveLag() map[string]uint64 {
	head := ms.MasterSeq()
	out := make(map[string]uint64)
	for _, sl := range ms.Slaves() {
		applied := sl.AppliedSeq()
		if head > applied {
			out[sl.Name()] = head - applied
		} else {
			out[sl.Name()] = 0
		}
	}
	return out
}

// startApplier begins shipping the master binlog into a slave from position
// `from`. Caller must not hold ms.mu... it only reads ms.master once.
func (ms *MasterSlave) startApplier(sl *Replica, from uint64) {
	batch := ms.cfg.ApplyBatch
	if batch == 0 {
		batch = 32
	}
	if batch < 1 {
		batch = 1
	}
	ms.mu.Lock()
	master := ms.master
	a := &slaveApplier{
		slave:   sl,
		session: sl.Engine().NewSession("replication"),
		delay:   ms.cfg.ApplyDelay,
		ship:    ms.cfg.Ship,
		batch:   batch,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	ms.appliers[sl.Name()] = a
	ms.mu.Unlock()
	go a.run(master.Engine(), from)
}

// run ships events serially: receive (ack position), then apply with the
// slave's write service cost. Application stays serial — one event stream,
// in commit order, which is exactly why a loaded slave lags a parallel
// master (§2.2, experiment C3) — but in write-set mode a backlog drains in
// group-commit batches: one engine lock acquisition applies up to a.batch
// queued transactions, each still committing individually so binlog
// positions stay aligned one-event-one-commit across replicas.
func (a *slaveApplier) run(masterEng *engine.Engine, from uint64) {
	defer close(a.done)
	pos := from
	if pos == 0 {
		pos = a.slave.AppliedSeq()
	}
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		events, trimmed := masterEng.Binlog().ReadFrom(pos, 64)
		if trimmed {
			return // needs full resync from backup (§4.4.2)
		}
		if len(events) == 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		for len(events) > 0 {
			select {
			case <-a.stop:
				return
			default:
			}
			if n := a.batchable(events); n > 1 {
				batch := events[:n]
				events = events[n:]
				// Receive and service each event, honoring halt between
				// events like the single-event path does; a stop request
				// shrinks the batch to the events already serviced.
				stopped := false
				wss := make([]*engine.WriteSet, 0, len(batch))
				for _, ev := range batch {
					select {
					case <-a.stop:
						stopped = true
					default:
					}
					if stopped {
						break
					}
					wss = append(wss, ev.WriteSet)
					a.slave.receivedSeq.Store(ev.Seq)
					if a.delay > 0 {
						time.Sleep(a.delay)
					}
					a.slave.serviceSleep(false)
				}
				applied, err := a.slave.Engine().ApplyWriteSets(wss, engine.ApplyOptions{})
				if applied > 0 {
					pos = batch[applied-1].Seq
					a.slave.appliedSeq.Store(pos)
					a.slave.noteApplied(applied, 1)
				}
				if err != nil || stopped {
					// Apply errors stall the slave (like a broken
					// replica); operators must intervene — matching
					// field behaviour.
					return
				}
				continue
			}
			ev := events[0]
			events = events[1:]
			a.slave.receivedSeq.Store(ev.Seq)
			if a.delay > 0 {
				time.Sleep(a.delay)
			}
			a.slave.serviceSleep(false)
			if err := applyEvent(a.session, a.slave.Engine(), ev, a.ship); err != nil {
				return
			}
			pos = ev.Seq
			a.slave.appliedSeq.Store(ev.Seq)
			// ApplyStats tracks write-set apply amortization only:
			// statement-shipped and DDL events take several engine lock
			// acquisitions inside applyEvent, so counting them as one
			// round-trip would overstate the batching win.
			if a.ship == ShipWriteSets && !ev.DDL && ev.WriteSet != nil {
				a.slave.noteApplied(1, 1)
			}
		}
	}
}

// batchable returns how many leading events of the queue can be applied as
// one group-commit batch: consecutive write-set (non-DDL) events, capped at
// the configured batch size. Returns 0 or 1 when batching does not apply.
func (a *slaveApplier) batchable(events []engine.Event) int {
	if a.ship != ShipWriteSets || a.batch <= 1 {
		return 0
	}
	n := 0
	for n < len(events) && n < a.batch && !events[n].DDL && events[n].WriteSet != nil {
		n++
	}
	return n
}

func (a *slaveApplier) halt() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
	a.session.Close()
}

// applyEvent applies one binlog event to a replica engine, preserving the
// one-event-one-commit alignment that keeps binlog positions comparable
// across replicas.
//
// Statement-shipped SQL is parsed through the process-wide statement cache,
// so each distinct event text is parsed once and the resulting AST is reused
// across every slave applying that event (the seed parsed every event on
// every slave). Transaction brackets and USE are constructed as AST nodes
// directly — they never touch the parser at all.
func applyEvent(s *engine.Session, eng *engine.Engine, ev engine.Event, ship ShipMode) error {
	if ev.DDL {
		if ev.Database != "" {
			if _, err := s.ExecStmt(&sqlparse.UseDatabase{Name: ev.Database}); err != nil && !isUnknownDB(err) {
				return err
			}
		}
		st, err := sqlparse.ParseCached(ev.Stmts[0])
		if err != nil {
			return err
		}
		_, err = s.ExecStmt(st)
		return err
	}
	if ship == ShipWriteSets && ev.WriteSet != nil {
		return eng.ApplyWriteSet(ev.WriteSet, engine.ApplyOptions{})
	}
	if len(ev.Stmts) == 0 {
		// Statement-less events exist only as direct write-set applies (a
		// migration seeding or tailing rows into this lineage); statement
		// shipping must still apply them by write-set or the slave would
		// silently skip the commit and diverge from its master.
		if ev.WriteSet != nil {
			return eng.ApplyWriteSet(ev.WriteSet, engine.ApplyOptions{})
		}
		return nil
	}
	if ev.Database != "" {
		if _, err := s.ExecStmt(&sqlparse.UseDatabase{Name: ev.Database}); err != nil {
			return err
		}
	}
	if len(ev.Stmts) == 1 {
		st, err := sqlparse.ParseCached(ev.Stmts[0])
		if err != nil {
			return err
		}
		_, err = s.ExecStmt(st)
		return err
	}
	if _, err := s.ExecStmt(&sqlparse.BeginTxn{}); err != nil {
		return err
	}
	for _, sql := range ev.Stmts {
		st, err := sqlparse.ParseCached(sql)
		if err != nil {
			_, _ = s.ExecStmt(&sqlparse.RollbackTxn{})
			return err
		}
		if _, err := s.ExecStmt(st); err != nil {
			_, _ = s.ExecStmt(&sqlparse.RollbackTxn{})
			return err
		}
	}
	_, err := s.ExecStmt(&sqlparse.CommitTxn{})
	return err
}

func isUnknownDB(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown database")
}

// waitTwoSafe blocks until enough slaves confirmed receipt of seq.
func (ms *MasterSlave) waitTwoSafe(seq uint64) error {
	need := ms.cfg.TwoSafeAcks
	slaves := ms.Slaves()
	if need <= 0 || need > len(slaves) {
		need = len(slaves)
	}
	deadline := time.Now().Add(ms.cfg.FailoverTimeout)
	for {
		acked := 0
		for _, sl := range slaves {
			if sl.ReceivedSeq() >= seq {
				acked++
			}
		}
		if acked >= need {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: 2-safe commit timed out waiting for %d acks at seq %d", need, seq)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// freshAt reports whether a slave at applied position satisfies the given
// read guarantee against the given binlog head and the session's last write.
func (ms *MasterSlave) freshAt(cons Consistency, applied, head, lastWriteSeq uint64) bool {
	switch cons {
	case ReadAny:
		return ms.cfg.FreshnessBound == 0 || head-min64(applied, head) <= ms.cfg.FreshnessBound
	case SessionConsistent:
		return applied >= lastWriteSeq
	case StrongConsistent:
		return applied >= head
	}
	return true
}

// replicaFresh reports whether r currently satisfies the session's read
// guarantee. The master always does. It runs on every pinned read, so the
// common modes (unbounded ReadAny; SessionConsistent with a caught-up
// replica) answer from r's atomics alone without touching ms.mu or the
// master's binlog mutex.
func (ms *MasterSlave) replicaFresh(r *Replica, cons Consistency, lastWriteSeq uint64) bool {
	switch cons {
	case ReadAny:
		if ms.cfg.FreshnessBound == 0 {
			return true
		}
	case SessionConsistent:
		if r.AppliedSeq() >= lastWriteSeq {
			return true
		}
	}
	ms.mu.Lock()
	master := ms.master
	ms.mu.Unlock()
	if r == master {
		return true
	}
	return ms.freshAt(cons, r.AppliedSeq(), master.Engine().Binlog().Head(), lastWriteSeq)
}

// pickReadReplica selects a replica for a read under the session's
// consistency requirement. relaxed (overload shedding, ReadAny only) admits
// every healthy slave regardless of freshness bound, spreading reads onto
// lagging replicas the bound would normally exclude.
func (ms *MasterSlave) pickReadReplica(cons Consistency, lastWriteSeq uint64, relaxed bool) (*Replica, error) {
	ms.mu.Lock()
	master := ms.master
	slaves := append([]*Replica(nil), ms.slaves...)
	ms.mu.Unlock()

	head := master.Engine().Binlog().Head()
	var candidates []lb.Target
	for _, sl := range slaves {
		if !sl.Healthy() {
			continue
		}
		if relaxed || ms.freshAt(cons, sl.AppliedSeq(), head, lastWriteSeq) {
			candidates = append(candidates, sl)
		}
	}
	if ms.cfg.ReadFromMaster && master.Healthy() {
		candidates = append(candidates, master)
	}
	if len(candidates) == 0 {
		// Fall back to the master: it always satisfies every guarantee.
		if master.Healthy() {
			return master, nil
		}
		return nil, ErrReplicaDown
	}
	t := ms.policy.Pick(candidates)
	if t == nil {
		return nil, ErrReplicaDown
	}
	return t.(*Replica), nil
}

// QueryCacheScope exposes the cluster's result cache scope (nil when
// caching is off); tests and operators use it to probe entries directly.
func (ms *MasterSlave) QueryCacheScope() *qcache.Scope { return ms.qc }

// Admission exposes the cluster's admission controller (nil when admission
// control is off); the metrics endpoint and tests read its counters.
func (ms *MasterSlave) Admission() *admission.Controller { return ms.cfg.Admission }

// cacheMinPos is the lowest replication position a cached result must carry
// to satisfy the given read guarantee for a session whose last write
// committed at lastWriteSeq — the cache-side mirror of freshAt.
func (ms *MasterSlave) cacheMinPos(cons Consistency, lastWriteSeq uint64) uint64 {
	switch cons {
	case SessionConsistent:
		return lastWriteSeq
	case StrongConsistent:
		return ms.MasterSeq()
	default: // ReadAny
		if ms.cfg.FreshnessBound == 0 {
			return 0
		}
		head := ms.MasterSeq()
		if head > ms.cfg.FreshnessBound {
			return head - ms.cfg.FreshnessBound
		}
		return 0
	}
}

// readPos is the replication position a read routed to r can be tagged
// with: what r had durably applied (or, for the master, committed) before
// the read ran — a sound lower bound on the state the result reflects.
func (ms *MasterSlave) readPos(r *Replica) uint64 {
	ms.mu.Lock()
	master := ms.master
	ms.mu.Unlock()
	if r == master {
		return master.Engine().Binlog().Head()
	}
	return r.AppliedSeq()
}

// invalidateThrough folds master binlog events up to seq into the query
// cache's invalidation state. Writers call it after committing and before
// acknowledging, so no write is ever acked with its tables still cached.
func (ms *MasterSlave) invalidateThrough(master *Replica, seq uint64) {
	if ms.qc == nil || ms.skipInval.Load() {
		return
	}
	ms.invalMu.Lock()
	defer ms.invalMu.Unlock()
	for ms.invalCursor < seq {
		events, trimmed := master.Engine().Binlog().ReadFrom(ms.invalCursor, 256)
		if trimmed {
			// The events between cursor and seq are gone; their table
			// footprints are unknowable. Flush everything.
			ms.qc.FlushAll()
			ms.invalCursor = seq
			return
		}
		if len(events) == 0 {
			return
		}
		for _, ev := range events {
			ms.qc.ApplyEvent(ev)
			ms.invalCursor = ev.Seq
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// InjectSkipCacheInvalidation toggles the harness's fault injection: while
// set, writes are acknowledged WITHOUT invalidating the query result cache.
// This deliberately breaks read-your-writes so the certification checker can
// prove it detects real anomalies. Never use outside tests.
func (ms *MasterSlave) InjectSkipCacheInvalidation(v bool) { ms.skipInval.Store(v) }

// LostTransactions reports how many committed-but-unshipped events the last
// failover lost (1-safe's exposure, §2.2).
func (ms *MasterSlave) LostTransactions() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.lostOnLastFailover
}

// Epoch identifies the current master incarnation.
func (ms *MasterSlave) Epoch() uint64 {
	return ms.epoch.Load()
}

// Failover promotes the most-up-to-date healthy slave to master and rewires
// shipping. It returns the new master. The failed master's unshipped suffix
// is counted as lost transactions.
//
// Shipping from the dead master is halted BEFORE roles swap: appliers are
// mid-stream, and every event a slave drains from the dead binlog after the
// promotion decision would falsify the lost-transaction count (the seed
// computed it from a still-moving position) and, worse, smuggle lost
// transactions into a slave that the promoted lineage never saw.
func (ms *MasterSlave) Failover() (*Replica, error) {
	ms.mu.Lock()
	oldMaster := ms.master
	anyHealthy := false
	for _, sl := range ms.slaves {
		if sl.Healthy() {
			anyHealthy = true
			break
		}
	}
	if !anyHealthy {
		ms.mu.Unlock()
		return nil, fmt.Errorf("core: no healthy slave to promote")
	}
	appliers := ms.appliers
	ms.appliers = make(map[string]*slaveApplier)
	ms.failingOver = true
	ms.mu.Unlock()
	// Freeze every position before measuring anything.
	for _, a := range appliers {
		a.halt()
	}

	ms.mu.Lock()
	ms.failingOver = false
	if ms.master != oldMaster {
		// A concurrent failover won; keep its outcome.
		m := ms.master
		ms.mu.Unlock()
		return m, nil
	}
	// Select the promotee only now that positions are frozen: a slave that
	// drained more of the dead master's binlog during the halt would
	// otherwise be passed over, its extra committed transactions counted
	// as lost and wiped by the re-seed below.
	var best *Replica
	for _, sl := range ms.slaves {
		if !sl.Healthy() {
			continue
		}
		if best == nil || sl.AppliedSeq() > best.AppliedSeq() {
			best = sl
		}
	}
	if best == nil {
		// Every slave died during the halt window. Re-attach appliers so a
		// later failover (or recovery) starts from a consistent state and
		// report the outage.
		slaves := append([]*Replica(nil), ms.slaves...)
		ms.mu.Unlock()
		for _, sl := range slaves {
			ms.startApplier(sl, sl.AppliedSeq())
		}
		return nil, fmt.Errorf("core: no healthy slave to promote")
	}
	remaining := make([]*Replica, 0, len(ms.slaves))
	for _, sl := range ms.slaves {
		if sl != best {
			remaining = append(remaining, sl)
		}
	}
	ms.master = best
	ms.slaves = remaining
	ms.epoch.Add(1)
	// Lost transactions: committed on the old master but never applied by
	// the promoted slave. (We can inspect the in-memory binlog; in the
	// field this is "a manual procedure requiring careful inspection of
	// the master's transaction log", §2.2.) Positions are frozen, so the
	// count is exact.
	oldHead := oldMaster.Engine().Binlog().Head()
	applied := best.AppliedSeq()
	if oldHead > applied {
		ms.lostOnLastFailover = oldHead - applied
	} else {
		ms.lostOnLastFailover = 0
	}
	ms.failoverHist = append(ms.failoverHist, FailoverRecord{
		At:        time.Now(),
		Lost:      ms.lostOnLastFailover,
		OldMaster: oldMaster.Name(),
		NewMaster: best.Name(),
	})
	// A slave that drained the dead master's backlog past the promoted
	// position contains transactions the new lineage lost: its state is
	// diverged, not merely ahead, and its freshness counter would lie to
	// the read router. Take it out of routing under the same lock that
	// installs the new master; it is re-seeded below.
	var reseed []*Replica
	for _, sl := range remaining {
		if sl.AppliedSeq() > applied {
			sl.Fail()
			reseed = append(reseed, sl)
		}
	}
	// Failover re-aligns the replication position space (the lost suffix
	// never happened); cached positions stop being comparable, so drop
	// everything and restart invalidation from the new master's head.
	//
	// This must happen INSIDE the critical section that installs the new
	// master. When it ran after the unlock, a writer could commit on the
	// already-visible new master, find invalCursor still pointing into the
	// old position space (so invalidateThrough was a no-op), and acknowledge
	// — leaving a pre-failover cached result tagged with an old-space
	// position high enough to satisfy the session's minPos. The session's
	// next read would then be served pre-write state: a read-your-writes
	// violation the certification harness catches. Lock order ms.mu →
	// invalMu is safe: no path acquires them in the opposite order.
	if ms.qc != nil {
		ms.invalMu.Lock()
		ms.qc.FlushAll()
		ms.invalCursor = best.Engine().Binlog().Head()
		ms.invalMu.Unlock()
	}
	ms.mu.Unlock()

	// Re-seed overshot slaves from the new master: the seed's position
	// clamp left the lost rows in their engines (a session-consistent read
	// could then be served data the cluster never committed, or miss data
	// it did).
	var dump *engine.Backup
	for _, sl := range reseed {
		if dump == nil {
			b, err := best.Engine().Dump(FaithfulBackup)
			if err != nil {
				break // leave them failed; a monitor rejoin can repair later
			}
			dump = b
		}
		if err := sl.Engine().Restore(dump); err != nil {
			continue
		}
		sl.Engine().Binlog().Reset(dump.AtSeq)
		sl.appliedSeq.Store(dump.AtSeq)
		sl.receivedSeq.Store(dump.AtSeq)
		sl.Recover()
	}
	// Re-point remaining slaves at the new master, resuming from their own
	// positions (binlog positions are aligned one-event-one-commit).
	for _, sl := range remaining {
		ms.startApplier(sl, sl.AppliedSeq())
	}
	return best, nil
}

// Failback re-adds a recovered replica as a slave, resynchronizing it from
// the current master's binlog (or reporting that a backup-based resync is
// required when the binlog was trimmed, §4.4.2).
func (ms *MasterSlave) Failback(rep *Replica, from uint64) error {
	if head := ms.MasterSeq(); from > head {
		// A replica claiming a position the master has not reached holds
		// state from a lost lineage; attaching it would let the read router
		// treat diverged data as maximally fresh. It needs a resync
		// (checkpoint clone), not a failback.
		return fmt.Errorf("core: failback of %s at %d is ahead of master head %d: diverged, resync required",
			rep.Name(), from, head)
	}
	// Counters must be truthful BEFORE the replica becomes routable: a
	// rejoining old master still carries its dead lineage's (higher)
	// positions, and a session-consistent read racing the attach would
	// trust them.
	rep.appliedSeq.Store(from)
	rep.receivedSeq.Store(from)
	rep.Recover()
	ms.mu.Lock()
	if ms.failingOver {
		ms.mu.Unlock()
		return fmt.Errorf("core: failover in progress; retry failback of %s", rep.Name())
	}
	for _, sl := range ms.slaves {
		if sl == rep {
			ms.mu.Unlock()
			return fmt.Errorf("core: replica %s already attached", rep.Name())
		}
	}
	ms.slaves = append(ms.slaves, rep)
	ms.mu.Unlock()
	ms.startApplier(rep, from)
	return nil
}

// Retire detaches the named slave from the cluster: its applier halts and
// it leaves read routing. The replica itself is returned alive (the
// autoscaler keeps retired replicas as warm spares). The epoch bump drops
// connection-level read pins, so no session keeps reading a replica that
// will never advance again — safe, because retiring changes no positions
// and routeRead's epoch handling only ever clamps floors downward to the
// (unchanged) master head.
func (ms *MasterSlave) Retire(name string) (*Replica, error) {
	ms.mu.Lock()
	if ms.failingOver {
		ms.mu.Unlock()
		return nil, fmt.Errorf("core: failover in progress; retry retire of %s", name)
	}
	var target *Replica
	remaining := make([]*Replica, 0, len(ms.slaves))
	for _, sl := range ms.slaves {
		if sl.Name() == name && target == nil {
			target = sl
			continue
		}
		remaining = append(remaining, sl)
	}
	if target == nil {
		ms.mu.Unlock()
		return nil, fmt.Errorf("core: no slave named %s to retire", name)
	}
	ms.slaves = remaining
	a := ms.appliers[name]
	delete(ms.appliers, name)
	ms.epoch.Add(1)
	ms.mu.Unlock()
	if a != nil {
		a.halt()
	}
	return target, nil
}

// SeedFrom overwrites every replica of this cluster — master and slaves —
// with the given backup and restarts shipping from the backup's position.
// This is the first phase of a live partition migration: the destination
// sub-cluster becomes a faithful clone of the source at AtSeq, its binlog
// reset so that applying the source's tail events one-for-one keeps the
// destination head equal to the last applied source position (the
// migration's resume cursor). Only sound on a cluster not yet serving
// client traffic.
func (ms *MasterSlave) SeedFrom(b *engine.Backup) error {
	ms.mu.Lock()
	appliers := ms.appliers
	ms.appliers = make(map[string]*slaveApplier)
	master := ms.master
	slaves := append([]*Replica(nil), ms.slaves...)
	ms.mu.Unlock()
	for _, a := range appliers {
		a.halt()
	}
	for _, rep := range append([]*Replica{master}, slaves...) {
		if err := rep.Engine().Restore(b); err != nil {
			return fmt.Errorf("core: seed of %s failed: %w", rep.Name(), err)
		}
		rep.Engine().Binlog().Reset(b.AtSeq)
		rep.appliedSeq.Store(b.AtSeq)
		rep.receivedSeq.Store(b.AtSeq)
	}
	if ms.qc != nil {
		ms.invalMu.Lock()
		ms.qc.FlushAll()
		ms.invalCursor = b.AtSeq
		ms.invalMu.Unlock()
	}
	for _, sl := range slaves {
		ms.startApplier(sl, b.AtSeq)
	}
	return nil
}

// ApplyForeignEvents applies committed binlog events from ANOTHER cluster's
// lineage to this cluster's master, one event per commit, so the master's
// own binlog (and therefore its slaves) tracks the foreign stream position
// — the destination head doubles as the migration's resume cursor after a
// seed via SeedFrom. It returns how many
// of the events were applied; on error the prefix before the failing event
// is committed.
func (ms *MasterSlave) ApplyForeignEvents(events []engine.Event) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	master := ms.Master()
	sess := master.Engine().NewSession("rebalance")
	defer sess.Close()
	for i, ev := range events {
		if err := applyEvent(sess, master.Engine(), ev, ShipWriteSets); err != nil {
			return i, err
		}
	}
	return len(events), nil
}

// SurvivableSeq returns the highest source position guaranteed to exist in
// ANY lineage this cluster can fail over to: the max applied position over
// healthy slaves (promotion always picks the max-applied slave, so events
// at or below it survive a master kill). A migration tail that never
// applies beyond this can resume from its contiguous prefix after a source
// failover without re-cloning. With no healthy slave it falls back to the
// master head.
func (ms *MasterSlave) SurvivableSeq() uint64 {
	var best uint64
	any := false
	for _, sl := range ms.Slaves() {
		if !sl.Healthy() {
			continue
		}
		if a := sl.AppliedSeq(); !any || a > best {
			best, any = a, true
		}
	}
	if !any {
		return ms.MasterSeq()
	}
	return best
}

// Close stops all shipping.
func (ms *MasterSlave) Close() {
	ms.mu.Lock()
	appliers := ms.appliers
	ms.appliers = make(map[string]*slaveApplier)
	ms.mu.Unlock()
	for _, a := range appliers {
		a.halt()
	}
}

// ---- client sessions ----

// boundStmt is a statement with its bind arguments: the unit of the
// transparent-failover replay log (a replay must re-bind the original
// argument vector, not just re-execute the text).
type boundStmt struct {
	st   sqlparse.Statement
	args []sqltypes.Value
}

// MSSession is a client session against a master-slave cluster. It
// implements the unified Conn contract.
type MSSession struct {
	ms   *MasterSlave
	pool *sessionPool

	mu           sync.Mutex
	lastWriteSeq uint64
	// lastReadSeq is the highest replication position any state this
	// session has already observed could reflect. Under session
	// consistency, reads are only routed to replicas at or past
	// max(lastWriteSeq, lastReadSeq): lastWriteSeq alone gives
	// read-your-writes but not monotonic reads — after a failover (or a
	// pinned slave dying) the session would be re-routed to any replica
	// that merely covered its own writes, and could observe a version
	// OLDER than one it already read. The certification harness caught
	// exactly that regression.
	lastReadSeq uint64
	pinned      *Replica // connection-level read pinning
	epoch       uint64
	// cons is the session's read guarantee; it defaults to the cluster
	// configuration and can be overridden per session (SET CONSISTENCY).
	cons Consistency
	// txnLog keeps the in-flight transaction's parsed statements (with
	// their bind arguments) for transparent failover replay — ASTs, not
	// SQL text, so a replay does not re-parse.
	txnLog []boundStmt
	inTxn  bool
	// serializable tracks the isolation level this session has announced:
	// serializable reads take 2PL table locks, which a result-cache hit
	// would silently skip, so they bypass the cache.
	serializable bool
	// stmtTimeout is the session's SET DEADLINE budget (0 = none): each
	// statement gets now+stmtTimeout as its absolute deadline, covering
	// admission-queue wait, replica worker wait, modelled service time and
	// engine execution together.
	stmtTimeout time.Duration
}

// NewSession opens a client session on the cluster.
func (ms *MasterSlave) NewSession(user string) *MSSession {
	return &MSSession{
		ms: ms, pool: newSessionPool(user), epoch: ms.Epoch(),
		cons:         ms.cfg.Consistency,
		serializable: ms.Master().Engine().Profile().DefaultIsolation == engine.Serializable,
		stmtTimeout:  ms.cfg.StatementTimeout,
	}
}

// NewConn implements Cluster.
func (ms *MasterSlave) NewConn(user string) (Conn, error) {
	return ms.NewSession(user), nil
}

// Authenticate implements Cluster: credentials are checked against the
// current master's engine (access control is engine state, §4.1.5).
func (ms *MasterSlave) Authenticate(user, password string) error {
	return ms.Master().Engine().Authenticate(user, password)
}

// Health implements Cluster.
func (ms *MasterSlave) Health() Health {
	ms.mu.Lock()
	master := ms.master
	slaves := append([]*Replica(nil), ms.slaves...)
	ms.mu.Unlock()
	h := Health{Topology: "master-slave", Replicas: 1 + len(slaves)}
	if master.Healthy() {
		h.HealthyReplicas++
	}
	h.Head = master.Engine().Binlog().Head()
	for _, sl := range slaves {
		if sl.Healthy() {
			h.HealthyReplicas++
		}
		if applied := sl.AppliedSeq(); h.Head > applied && h.Head-applied > h.MaxLag {
			h.MaxLag = h.Head - applied
		}
	}
	return h
}

// Close releases the session.
func (cs *MSSession) Close() { cs.pool.closeAll() }

// Exec routes one statement with optional ? bind arguments. Parsing goes
// through the process-wide statement cache, so the router sees each distinct
// text's AST once; the same AST is then handed to the backend engine without
// re-serializing.
func (cs *MSSession) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return cs.ExecStmtArgs(st, args...)
}

// Query implements Conn; routing is decided by the statement itself.
func (cs *MSSession) Query(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return cs.Exec(sql, args...)
}

// ExecStmt routes a pre-parsed statement.
func (cs *MSSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	return cs.ExecStmtArgs(st)
}

// ExecStmtArgs routes a pre-parsed statement with bind arguments.
func (cs *MSSession) ExecStmtArgs(st sqlparse.Statement, args ...sqltypes.Value) (*engine.Result, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	switch s := st.(type) {
	case *sqlparse.UseDatabase:
		if err := cs.pool.setDB(s.Name); err != nil {
			return nil, err
		}
		return &engine.Result{}, nil
	case *sqlparse.SetConsistency:
		// Per-session read-guarantee override; never routed to a backend.
		c, err := ParseConsistency(s.Level)
		if err != nil {
			return nil, err
		}
		cs.cons = c
		return &engine.Result{}, nil
	case *sqlparse.SetDeadline:
		// Per-session statement budget; intercepted here (not routed) so
		// the deadline also covers admission-queue and replica waits.
		cs.stmtTimeout = s.D
		return &engine.Result{}, nil
	case *sqlparse.SetIsolation:
		// Track and propagate the level across every pooled backend
		// session: the seed routed SET ISOLATION like a read, changing
		// only whichever replica happened to serve it — a session could
		// read serializable on its pinned slave and read-committed
		// everywhere else. Inside a transaction it falls through so the
		// master session rejects it like the engine would.
		if !cs.inTxn {
			cs.serializable = s.Level == "SERIALIZABLE"
			if err := cs.pool.setIsolation(s); err != nil {
				return nil, err
			}
			return &engine.Result{}, nil
		}
	case *sqlparse.BeginTxn:
		// BEGIN must open the transaction on the master. Its IsRead() is
		// true (it takes no locks), but routing it like a read opened the
		// transaction on whatever replica served this session's reads
		// while the transaction's writes autocommitted on the master:
		// trackTxn never engaged and COMMIT failed — or, worse, committed
		// a slave-local transaction.
		return cs.execWrite(st, args)
	}
	if st.IsRead() && !cs.inTxn {
		return cs.execRead(st, args)
	}
	return cs.execWrite(st, args)
}

// stmtDeadline is the absolute deadline for a statement starting now under
// the session's SET DEADLINE budget (zero when none).
func (cs *MSSession) stmtDeadline() time.Time {
	if cs.stmtTimeout > 0 {
		return time.Now().Add(cs.stmtTimeout)
	}
	return time.Time{}
}

// readClass maps the session's read guarantee to its admission class: an
// ANY-consistency read is the first work shed under overload.
func (cs *MSSession) readClass() admission.Class {
	if cs.cons == ReadAny {
		return admission.ClassReadAny
	}
	return admission.ClassReadSession
}

// admit takes an admission slot (nil controller = admission off, nil slot).
func (cs *MSSession) admit(class admission.Class, deadline time.Time) (*admission.Slot, error) {
	return cs.ms.cfg.Admission.Acquire(cs.pool.user, class, deadline)
}

// readFloor is the lowest replication position a read may be served from.
// Session consistency covers both the session's own writes
// (read-your-writes) and the freshest state it has already observed
// (monotonic reads); the other levels derive their bound from
// lastWriteSeq / the master head alone.
func (cs *MSSession) readFloor() uint64 {
	if cs.cons == SessionConsistent && cs.lastReadSeq > cs.lastWriteSeq {
		return cs.lastReadSeq
	}
	return cs.lastWriteSeq
}

// bumpReadSeq advances the monotonic-reads floor to pos.
func (cs *MSSession) bumpReadSeq(pos uint64) {
	if pos > cs.lastReadSeq {
		cs.lastReadSeq = pos
	}
}

// execRead routes a read per the configured level/policy/consistency,
// serving cache-eligible statements from the cluster's query result cache
// when one is configured. A hit skips the backend entirely; a miss routes
// normally and fills the cache with the result, tagged with the replication
// position the serving replica had applied before the read. Bind arguments
// are part of the cache key.
func (cs *MSSession) execRead(st sqlparse.Statement, args []sqltypes.Value) (*engine.Result, error) {
	deadline := cs.stmtDeadline()
	// Degradation ladder, first rung: under sustained overload ANY-
	// consistency reads relax freshness entirely — any cached result and
	// any healthy (however lagging) replica qualifies. A stale answer the
	// client already accepted the staleness contract for beats a typed
	// rejection, and a cache hit costs no admission slot at all.
	relaxed := cs.cons == ReadAny && cs.ms.cfg.Admission.Shedding()
	qc := cs.ms.qc
	if qc == nil || cs.serializable || !engine.CacheableRead(st) {
		slot, err := cs.admit(cs.readClass(), deadline)
		if err != nil {
			return nil, err
		}
		res, err := cs.execReadRouted(st, args, deadline, relaxed)
		slot.Done(err)
		return res, err
	}
	user := cs.pool.user
	db := cs.pool.currentDB()
	text := st.SQL() // lint:rawsql-ok process-local query-cache key; never crosses a replica boundary
	minPos := cs.ms.cacheMinPos(cs.cons, cs.readFloor())
	if relaxed {
		minPos = 0
	}
	if cs.ms.skipInval.Load() {
		// Fault injection (InjectSkipCacheInvalidation): with write-side
		// invalidation off, also stop honoring the session's position
		// floor, so an acked write can be followed by a stale cached read
		// — the anomaly the certification harness must catch.
		minPos = 0
	}
	// The cache probe runs BEFORE admission: a hit consumes no backend
	// capacity, so it must not consume (or be rejected for) a slot either.
	if res, posHi, ok := qc.GetPos(user, db, text, args, minPos); ok {
		cs.bumpReadSeq(posHi)
		return res, nil
	}
	slot, err := cs.admit(cs.readClass(), deadline)
	if err != nil {
		return nil, err
	}
	res, err := cs.execReadCacheFill(st, args, deadline, relaxed, qc, user, db, text)
	slot.Done(err)
	return res, err
}

// execReadCacheFill routes a cache-miss read and fills the cache with the
// result, tagged with the serving replica's applied position.
func (cs *MSSession) execReadCacheFill(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time, relaxed bool, qc *qcache.Scope, user, db, text string) (*engine.Result, error) {
	target, err := cs.routeRead(relaxed)
	if err != nil {
		return nil, err
	}
	sess, err := cs.pool.get(target)
	if err != nil {
		return nil, err
	}
	pos := cs.ms.readPos(target)
	res, err := target.ExecStmtArgsDeadlineOn(sess, st, true, args, deadline)
	if err != nil {
		return nil, err
	}
	posHi := cs.ms.readPos(target)
	cs.bumpReadSeq(posHi)
	qc.PutAt(user, db, text, args, st.Tables(), pos, posHi, res)
	return res, nil
}

// execReadRouted executes a read on a routed replica with no caching.
func (cs *MSSession) execReadRouted(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time, relaxed bool) (*engine.Result, error) {
	target, err := cs.routeRead(relaxed)
	if err != nil {
		return nil, err
	}
	sess, err := cs.pool.get(target)
	if err != nil {
		return nil, err
	}
	// Hand the already-parsed AST to the backend: the seed re-serialized
	// with st.SQL() here and the engine parsed the text again — a full
	// parse round-trip on every routed read.
	res, err := target.ExecStmtArgsDeadlineOn(sess, st, true, args, deadline)
	if err != nil {
		return nil, err
	}
	cs.bumpReadSeq(cs.ms.readPos(target))
	return res, nil
}

// routeRead picks the replica for a read. A connection-level pin is honored
// only while the pinned replica still satisfies the session's consistency
// guarantee — serving a pinned but lagging replica would silently break
// read-your-writes (this bit the wire path once statements got fast enough
// to outrun the appliers).
func (cs *MSSession) routeRead(relaxed bool) (*Replica, error) {
	// A failover may have promoted the pinned slave to master; drop the pin
	// on any epoch change so the session stops absorbing reads on the new
	// master. The epoch load is atomic — no cluster mutex on the hot path.
	if e := cs.ms.Epoch(); e != cs.epoch {
		cs.epoch = e
		cs.pinned = nil
		// The failover truncated the lost suffix and re-aligned the
		// position space; a read floor pointing into the lost region would
		// pin this session to the master forever (no replica can ever reach
		// a position that no longer exists). State observed beyond the new
		// head was lost with the old master — clamp to what the new lineage
		// has. (1-safe loss is the paper's accepted exposure, §2.2.)
		if head := cs.ms.MasterSeq(); cs.lastReadSeq > head {
			cs.lastReadSeq = head
		}
	}
	floor := cs.readFloor()
	if cs.ms.cfg.ReadLevel == lb.ConnectionLevel && cs.pinned != nil && cs.pinned.Healthy() &&
		(relaxed || cs.ms.replicaFresh(cs.pinned, cs.cons, floor)) {
		return cs.pinned, nil
	}
	target, err := cs.ms.pickReadReplica(cs.cons, floor, relaxed)
	if err != nil {
		return nil, err
	}
	// Pin slaves only: a master fallback (no slave was fresh enough)
	// must stay temporary, or write-then-read sessions would migrate
	// to the master forever and collapse read-one/write-all scaling.
	if cs.ms.cfg.ReadLevel == lb.ConnectionLevel && target != cs.ms.Master() {
		cs.pinned = target
	}
	return target, nil
}

// execWrite sends the statement to the master, handling safety mode and
// (optionally) transparent failover. Writes are the LAST class the
// admission ladder rejects; once admitted, the slot is held across a
// failover retry (the cluster is doing real work for this statement the
// whole time).
func (cs *MSSession) execWrite(st sqlparse.Statement, args []sqltypes.Value) (*engine.Result, error) {
	deadline := cs.stmtDeadline()
	slot, err := cs.admit(admission.ClassWrite, deadline)
	if err != nil {
		return nil, err
	}
	res, err := cs.execWriteAdmitted(st, args, deadline)
	slot.Done(err)
	return res, err
}

func (cs *MSSession) execWriteAdmitted(st sqlparse.Statement, args []sqltypes.Value, deadline time.Time) (*engine.Result, error) {
	for attempt := 0; ; attempt++ {
		master := cs.ms.Master()
		sess, err := cs.pool.get(master)
		if err != nil {
			return nil, err
		}
		res, err := master.ExecStmtArgsDeadlineOn(sess, st, false, args, deadline)
		if err != nil {
			if errors.Is(err, ErrReplicaDown) && attempt == 0 {
				if rerr := cs.recoverFromMasterFailure(master); rerr == nil {
					continue
				}
			}
			// A failed COMMIT/ROLLBACK still ends the transaction: the
			// engine terminates its txn before reporting (a conflicting
			// commit is rolled back, §4.1.2). Tracking it as still open
			// would wedge the session — later autocommit writes would pile
			// into txnLog, skip lastWriteSeq, and a failover could replay
			// already-settled statements.
			switch st.(type) {
			case *sqlparse.CommitTxn, *sqlparse.RollbackTxn:
				cs.inTxn = false
				cs.txnLog = nil
			}
			return nil, err
		}
		cs.trackTxn(st, args)
		if !cs.inTxn && !st.IsRead() {
			// Prefer the commit's own binlog position over the head: the
			// head may already include later commits from concurrent
			// sessions, which would over-constrain this session's reads
			// (and mis-tag its history). Statements that committed nothing
			// (read-only COMMIT, DDL without an AtSeq) fall back to head.
			seq := res.AtSeq
			if seq == 0 {
				seq = master.Engine().Binlog().Head()
			}
			cs.lastWriteSeq = seq
			// Invalidate cached results for the tables this write (or
			// anything committed before it) touched BEFORE acknowledging:
			// once the client sees the commit, no read — from any session
			// the ack is relayed to — may be served the pre-write result.
			cs.ms.invalidateThrough(master, seq)
			// Group commit: hold the acknowledgement until this commit's
			// position is on disk, sharing the fsync with every commit that
			// lands in the same window. Rollbacks made nothing durable and
			// skip the wait. A durability failure is reported even though
			// the commit executed — the caller cannot be told "durable" when
			// the log could not confirm it.
			if w := cs.ms.durability(); w != nil {
				if _, rollback := st.(*sqlparse.RollbackTxn); !rollback {
					if err := w.WaitDurable(seq); err != nil {
						return nil, err
					}
				}
			}
			if cs.ms.cfg.Safety == TwoSafe {
				if err := cs.ms.waitTwoSafe(seq); err != nil {
					return nil, err
				}
			}
		}
		return res, nil
	}
}

// trackTxn maintains explicit-transaction state and the replay log.
func (cs *MSSession) trackTxn(st sqlparse.Statement, args []sqltypes.Value) {
	switch st.(type) {
	case *sqlparse.BeginTxn:
		cs.inTxn = true
		cs.txnLog = cs.txnLog[:0]
		cs.txnLog = append(cs.txnLog, boundStmt{st: st})
	case *sqlparse.CommitTxn:
		cs.inTxn = false
		cs.txnLog = nil
		master := cs.ms.Master()
		cs.lastWriteSeq = master.Engine().Binlog().Head()
		if cs.ms.cfg.Safety == TwoSafe {
			_ = cs.ms.waitTwoSafe(cs.lastWriteSeq)
		}
	case *sqlparse.RollbackTxn:
		cs.inTxn = false
		cs.txnLog = nil
	default:
		if cs.inTxn {
			cs.txnLog = append(cs.txnLog, boundStmt{st: st, args: args})
		}
	}
}

// recoverFromMasterFailure waits for a promotion and, when configured,
// replays the in-flight transaction on the new master (§4.3.3: without this
// cooperation "the entire transaction has to be replayed ... which cannot
// succeed without the cooperation of the application").
func (cs *MSSession) recoverFromMasterFailure(failed *Replica) error {
	deadline := time.Now().Add(cs.ms.cfg.FailoverTimeout)
	for {
		m := cs.ms.Master()
		if m != failed && m.Healthy() {
			break
		}
		if time.Now().After(deadline) {
			// No replica was promoted in time: the cluster currently has no
			// master. Wrapping ErrReplicaDown keeps the session-failover
			// contract — pooled drivers discard the connection and retry,
			// and a later attempt may find a promoted master.
			return fmt.Errorf("%w: no failover within %v", ErrReplicaDown, cs.ms.cfg.FailoverTimeout)
		}
		time.Sleep(time.Millisecond)
	}
	cs.pool.drop(failed.Name())
	if !cs.inTxn {
		return nil
	}
	if !cs.ms.cfg.TransparentFailover {
		cs.inTxn = false
		cs.txnLog = nil
		return fmt.Errorf("%w: session failover only, §4.3.3", ErrTxnLost)
	}
	// Replay the transaction context on the new master.
	master := cs.ms.Master()
	sess, err := cs.pool.get(master)
	if err != nil {
		return err
	}
	for _, b := range cs.txnLog {
		if _, err := master.ExecStmtArgsOn(sess, b.st, false, b.args); err != nil {
			cs.inTxn = false
			cs.txnLog = nil
			return fmt.Errorf("core: transparent failover replay failed: %w", err)
		}
	}
	return nil
}

// Prepare implements Conn: parse once, execute many with fresh bindings.
func (cs *MSSession) Prepare(sql string) (*Stmt, error) { return newStmt(cs, sql) }

// Begin implements Conn.
func (cs *MSSession) Begin() error {
	_, err := cs.ExecStmt(&sqlparse.BeginTxn{})
	return err
}

// Commit implements Conn.
func (cs *MSSession) Commit() error {
	_, err := cs.ExecStmt(&sqlparse.CommitTxn{})
	return err
}

// Rollback implements Conn.
func (cs *MSSession) Rollback() error {
	_, err := cs.ExecStmt(&sqlparse.RollbackTxn{})
	return err
}

// SetIsolation implements Conn, propagating the level across the session's
// whole backend pool.
func (cs *MSSession) SetIsolation(level string) error {
	lv, err := normalizeIsolation(level)
	if err != nil {
		return err
	}
	_, err = cs.ExecStmt(&sqlparse.SetIsolation{Level: lv})
	return err
}

// SetConsistency implements Conn: a per-session read-guarantee override.
func (cs *MSSession) SetConsistency(c Consistency) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.cons = c
	return nil
}
