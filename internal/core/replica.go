// Package core is the replication middleware itself: the software layer
// between applications and database replicas (§1, footnote 1). It provides
// master-slave replication with 1-safe/2-safe commit, hot standby failover,
// multi-master replication in both statement-based and certification
// (write-set) modes on top of totally-ordered broadcast, partitioned
// replication, WAN multi-way master/slave, pluggable load balancing levels
// and policies, a Sequoia-style recovery log with online replica
// provisioning, cluster-consistent backup, and a divergence detector.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/lb"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// ReplicaConfig describes one backend replica.
type ReplicaConfig struct {
	// Name identifies the replica in logs and balancing decisions.
	Name string
	// Engine configures the underlying database engine.
	Engine engine.Config
	// Concurrency is the number of statements the replica executes at
	// once (worker slots); zero means 8.
	Concurrency int
	// ReadCost and WriteCost model per-statement service time. They are
	// what makes scalability shapes reproducible on one machine: a replica
	// is a concurrent server whose capacity is Concurrency/cost.
	ReadCost  time.Duration
	WriteCost time.Duration
	// Weight is the load balancing weight (0 means 1).
	Weight float64
}

// Replica wraps an engine with a bounded worker pool, modelled service
// times, health state, and replication progress counters.
type Replica struct {
	name   string
	eng    *engine.Engine
	cfg    ReplicaConfig
	sem    chan struct{}
	queued lb.Counter

	healthy atomic.Bool
	// slowFactor scales service time; fault injection uses it for the
	// "RAID controller loses its battery" scenario (§4.1.3).
	slowFactor atomic.Value // float64

	// stallCh gates client statements while the replica is stalled
	// (responding to nothing, crashed for nobody — the gray failure the
	// Stall injector models). Non-nil while stalled; closed on unstall so
	// every parked statement wakes at once.
	stallMu sync.Mutex
	stallCh chan struct{}

	// snapMu makes a sampled position exact with respect to engine state:
	// appliers hold it across {apply, appliedSeq.Store} and sessions hold
	// it across {BEGIN/read, AppliedSeq sample}, so a sample can never run
	// behind state the engine already showed the session (the store would
	// otherwise race the sample by a hair — enough for a certification
	// snapshot to overstate what it read, or for a session's observed-
	// version floor to understate it).
	snapMu sync.Mutex
	// appliedSeq is the last replication-stream position applied here.
	appliedSeq atomic.Uint64
	// receivedSeq is the last position received (≥ appliedSeq); 2-safe
	// commits wait on it.
	receivedSeq atomic.Uint64

	// execs counts statements executed on this replica through the router
	// hot path (ExecStmtOn); the query-cache threshold test uses it to
	// prove a cache hit costs zero backend executions.
	execs atomic.Uint64

	// applyEvents and applyBatches count write-set apply work: events
	// applied and engine lock round-trips used for them. Their ratio is the
	// group-commit amortization a lagging slave achieved while draining
	// backlog. Statement-shipped and DDL events are not counted — they take
	// several lock acquisitions each inside the session.
	applyEvents  atomic.Uint64
	applyBatches atomic.Uint64
}

// NewReplica builds a replica from its configuration.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	r := &Replica{
		name: cfg.Name,
		eng:  engine.New(cfg.Engine),
		cfg:  cfg,
		sem:  make(chan struct{}, cfg.Concurrency),
	}
	r.healthy.Store(true)
	r.slowFactor.Store(1.0)
	return r
}

// Name implements lb.Target.
func (r *Replica) Name() string { return r.name }

// Pending implements lb.Target.
func (r *Replica) Pending() int { return r.queued.Load() }

// Weight implements lb.Target.
func (r *Replica) Weight() float64 { return r.cfg.Weight }

// Healthy implements lb.Target.
func (r *Replica) Healthy() bool { return r.healthy.Load() }

// Engine exposes the underlying engine (management operations need it).
func (r *Replica) Engine() *engine.Engine { return r.eng }

// AppliedSeq returns the replication position applied on this replica.
func (r *Replica) AppliedSeq() uint64 { return r.appliedSeq.Load() }

// ReceivedSeq returns the replication position received by this replica.
func (r *Replica) ReceivedSeq() uint64 { return r.receivedSeq.Load() }

// noteApplied records replication apply progress: events applied and the
// number of engine lock acquisitions they cost.
func (r *Replica) noteApplied(events, batches int) {
	if events <= 0 {
		return
	}
	r.applyEvents.Add(uint64(events))
	r.applyBatches.Add(uint64(batches))
}

// ApplyStats returns how many write-set replication events this replica
// has applied and how many engine lock round-trips (group-commit batches)
// they took. events/batches > 1 means backlog was drained in batches.
// Statement-shipped and DDL events are excluded.
func (r *Replica) ApplyStats() (events, batches uint64) {
	return r.applyEvents.Load(), r.applyBatches.Load()
}

// Fail marks the replica down (crash injection).
func (r *Replica) Fail() { r.healthy.Store(false) }

// Recover marks the replica healthy again (and clears any stall — a
// restarted process is by definition responding again).
func (r *Replica) Recover() {
	r.SetStalled(false)
	r.healthy.Store(true)
}

// SetStalled makes the replica stop serving client statements without
// reporting unhealthy (on=true), or resume (on=false). Unlike Fail, health
// checks still pass — this is the gray-failure mode where only a request
// deadline saves the client.
func (r *Replica) SetStalled(on bool) {
	r.stallMu.Lock()
	defer r.stallMu.Unlock()
	if on && r.stallCh == nil {
		r.stallCh = make(chan struct{})
	} else if !on && r.stallCh != nil {
		close(r.stallCh)
		r.stallCh = nil
	}
}

// Stalled reports whether the replica is currently stalled.
func (r *Replica) Stalled() bool { return r.stallGate() != nil }

func (r *Replica) stallGate() chan struct{} {
	r.stallMu.Lock()
	defer r.stallMu.Unlock()
	return r.stallCh
}

// SetSlowFactor scales the replica's service time (1 = nominal, 2 = half
// speed). Models degraded hardware (§4.1.3).
func (r *Replica) SetSlowFactor(f float64) {
	if f < 1 {
		f = 1
	}
	r.slowFactor.Store(f)
}

// ErrReplicaDown is returned when executing against a failed replica.
var ErrReplicaDown = fmt.Errorf("core: replica is down")

// ErrDeadlineExceeded is returned when a statement's deadline expires while
// waiting for a worker slot or during its modelled service time. It wraps
// context.DeadlineExceeded so one errors.Is check classifies deadline
// expiry from every layer of the stack.
var ErrDeadlineExceeded = fmt.Errorf("core: replica wait deadline exceeded: %w", context.DeadlineExceeded)

// acquire takes a worker slot, counting queue depth for LPRF.
func (r *Replica) acquire() error {
	if !r.healthy.Load() {
		return ErrReplicaDown
	}
	r.queued.Inc()
	r.sem <- struct{}{}
	if !r.healthy.Load() {
		<-r.sem
		r.queued.Dec()
		return ErrReplicaDown
	}
	return nil
}

// acquireDeadline is acquire with a bound on the wait: a statement that
// cannot get a worker slot before its deadline gives up without the slot —
// no leak to release later.
func (r *Replica) acquireDeadline(deadline time.Time) error {
	if deadline.IsZero() {
		return r.acquire()
	}
	if !r.healthy.Load() {
		return ErrReplicaDown
	}
	r.queued.Inc()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case r.sem <- struct{}{}:
	case <-timer.C:
		r.queued.Dec()
		return ErrDeadlineExceeded
	}
	if !r.healthy.Load() {
		<-r.sem
		r.queued.Dec()
		return ErrReplicaDown
	}
	return nil
}

func (r *Replica) release() {
	<-r.sem
	r.queued.Dec()
}

// serviceSleep models the statement's service time. Used by appliers,
// which have no deadline and ignore stalls (a stalled replica stops
// answering clients; its replication stream keeps draining).
func (r *Replica) serviceSleep(isRead bool) {
	cost := r.cfg.WriteCost
	if isRead {
		cost = r.cfg.ReadCost
	}
	if cost <= 0 {
		return
	}
	f := r.slowFactor.Load().(float64)
	time.Sleep(time.Duration(float64(cost) * f))
}

// serviceWait is serviceSleep for the client path: it parks while the
// replica is stalled and truncates the service time at the statement's
// deadline (zero deadline = unbounded).
func (r *Replica) serviceWait(isRead bool, deadline time.Time) error {
	for stall := r.stallGate(); stall != nil; stall = r.stallGate() {
		if deadline.IsZero() {
			<-stall
			continue
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-stall:
			timer.Stop()
		case <-timer.C:
			return ErrDeadlineExceeded
		}
	}
	cost := r.cfg.WriteCost
	if isRead {
		cost = r.cfg.ReadCost
	}
	if cost <= 0 {
		return nil
	}
	f := r.slowFactor.Load().(float64)
	d := time.Duration(float64(cost) * f)
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < d {
			// The statement cannot finish inside its budget: pay only the
			// remaining budget, then time out.
			if rem > 0 {
				time.Sleep(rem)
			}
			return ErrDeadlineExceeded
		}
	}
	time.Sleep(d)
	return nil
}

// ExecOn runs one SQL-text statement on the given session with the
// replica's service model applied: a convenience wrapper over ExecStmtOn,
// which every router uses directly with its already-parsed AST.
func (r *Replica) ExecOn(s *engine.Session, sql string, isRead bool) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return r.ExecStmtOn(s, st, isRead)
}

// ExecStmtOn runs a pre-parsed statement on the given session with the
// replica's service model applied. This is the router hot path: the
// middleware parses (or cache-hits) once and the backend executes the same
// AST, instead of re-serializing to SQL text and parsing again.
func (r *Replica) ExecStmtOn(s *engine.Session, st sqlparse.Statement, isRead bool) (*engine.Result, error) {
	return r.ExecStmtArgsOn(s, st, isRead, nil)
}

// ExecStmtArgsOn is ExecStmtOn with ? bind arguments: the prepared-statement
// hot path, where the shared AST never changes and only the argument vector
// varies per call.
func (r *Replica) ExecStmtArgsOn(s *engine.Session, st sqlparse.Statement, isRead bool, args []sqltypes.Value) (*engine.Result, error) {
	return r.ExecStmtArgsDeadlineOn(s, st, isRead, args, time.Time{})
}

// ExecStmtArgsDeadlineOn is the deadline-aware hot path: the absolute
// deadline bounds the worker-slot wait, the modelled service time (stall
// included), and — via Session.SetDeadline — the engine execution itself,
// so one budget covers the whole statement no matter where it spends it.
func (r *Replica) ExecStmtArgsDeadlineOn(s *engine.Session, st sqlparse.Statement, isRead bool, args []sqltypes.Value, deadline time.Time) (*engine.Result, error) {
	if err := r.acquireDeadline(deadline); err != nil {
		return nil, err
	}
	defer r.release()
	r.execs.Add(1)
	if err := r.serviceWait(isRead, deadline); err != nil {
		return nil, err
	}
	s.SetDeadline(deadline)
	defer s.SetDeadline(time.Time{})
	return s.ExecStmtArgs(st, args...)
}

// Execs returns how many statements the routers have executed on this
// replica. A query-cache hit leaves it untouched.
func (r *Replica) Execs() uint64 { return r.execs.Load() }

// sessionPool hands out per-replica engine sessions for middleware client
// sessions, keeping USE state in sync lazily.
type sessionPool struct {
	mu       sync.Mutex
	sessions map[string]*engine.Session // replica name -> session
	db       string
	iso      *sqlparse.SetIsolation // announced level, applied to every session
	user     string
}

func newSessionPool(user string) *sessionPool {
	return &sessionPool{sessions: make(map[string]*engine.Session), user: user}
}

// get returns (creating if needed) this client's session on the replica.
func (p *sessionPool) get(r *Replica) (*engine.Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sessions[r.name]
	if !ok {
		s = r.eng.NewSession(p.user)
		if p.db != "" {
			if _, err := s.ExecStmt(&sqlparse.UseDatabase{Name: p.db}); err != nil {
				s.Close()
				return nil, err
			}
		}
		if p.iso != nil {
			if _, err := s.ExecStmt(p.iso); err != nil {
				s.Close()
				return nil, err
			}
		}
		p.sessions[r.name] = s
	}
	return s, nil
}

// currentDB returns the session's current database ("" when none).
func (p *sessionPool) currentDB() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db
}

// setDB records (and propagates) the session's current database.
func (p *sessionPool) setDB(db string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.db = db
	for name, s := range p.sessions {
		if _, err := s.ExecStmt(&sqlparse.UseDatabase{Name: db}); err != nil {
			return fmt.Errorf("core: USE on replica %s: %w", name, err)
		}
	}
	return nil
}

// setIsolation records (and propagates) the session's isolation level, so
// a re-routed read runs at the level the client announced no matter which
// replica serves it.
func (p *sessionPool) setIsolation(st *sqlparse.SetIsolation) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, s := range p.sessions {
		if _, err := s.ExecStmt(st); err != nil {
			return fmt.Errorf("core: SET ISOLATION on replica %s: %w", name, err)
		}
	}
	p.iso = st
	return nil
}

// drop discards the session for a replica (after failover).
func (p *sessionPool) drop(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.sessions[name]; ok {
		s.Close()
		delete(p.sessions, name)
	}
}

// closeAll releases every session.
func (p *sessionPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sessions {
		s.Close()
	}
	p.sessions = make(map[string]*engine.Session)
}
