package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/recoverylog"
)

// Provisioner implements the Sequoia-style online replica lifecycle of
// §4.4.2 on top of a recovery log: checkpoint a replica out, back it up
// without touching active replicas, initialize new replicas from the dump,
// and resynchronize them by (serial or parallel) log replay until they
// catch up with the live stream.
//
// PR 4 makes the lifecycle durable and automatic: Follow records the
// master's binlog into the (optionally disk-backed) log and takes periodic
// checkpoint backups, ResyncAuto restores the cheapest checkpoint and
// replays only the tail, and FailoverTo repairs the log after a promotion
// by truncating the lost suffix and re-pointing the recorder.
type Provisioner struct {
	log *recoverylog.Log

	// appendMu serializes everyone who copies binlog events into the log
	// (the recorder's copyBatch and CheckpointBackup's catch-up), so two
	// copiers can never interleave duplicate appends.
	appendMu sync.Mutex

	mu       sync.Mutex
	followed *Replica
	fopts    FollowOptions
	stop     chan struct{}
	done     chan struct{}
	recErr   error
	// finalCkpt tells a stopping recorder whether to take a last
	// threshold-crossed checkpoint. True for graceful Unfollow (so a
	// restart recovers checkpoint+tail, not full replay); false when
	// FailoverTo discards the dead master's recorder — a parting snapshot
	// of the dead lineage would poison the repaired log.
	finalCkpt bool
}

// NewProvisioner wraps a recovery log.
func NewProvisioner(log *recoverylog.Log) *Provisioner {
	return &Provisioner{log: log}
}

// Log exposes the underlying recovery log.
func (p *Provisioner) Log() *recoverylog.Log { return p.log }

// FaithfulBackup captures everything a replacement replica needs — users,
// code objects and sequence positions, not just data. The zero
// BackupOptions reproduce the incomplete-dump problem of §4.1.5/§4.2.3;
// recovery checkpoints must not.
var FaithfulBackup = engine.BackupOptions{
	IncludeUsers: true, IncludeCode: true, IncludeSequences: true,
}

// RecordEvent appends a committed binlog event to the recovery log. Wire it
// to the master's binlog subscription. The originating database travels as
// a leading USE so entries are self-contained for replay on fresh sessions.
func (p *Provisioner) RecordEvent(ev engine.Event) uint64 {
	seq, _ := p.recordEvent(ev)
	return seq
}

func (p *Provisioner) recordEvent(ev engine.Event) (uint64, error) {
	stmts := ev.Stmts
	if ev.Database != "" {
		stmts = append([]string{"USE " + ev.Database}, stmts...)
	}
	return p.log.AppendEntry(stmts, ev.Tables(), ev.DDL)
}

// CheckpointRemove marks a replica's departure position ("when a node is
// removed from the cluster, a checkpoint is inserted").
func (p *Provisioner) CheckpointRemove(name string, position uint64) {
	p.log.CheckpointAt("remove:"+name, position)
}

// CheckpointBackup snapshots a replica (normally the master) and records a
// payload checkpoint at the snapshot's replication position. The checkpoint
// is the clone base compaction retains: once it exists, every entry below
// it (or below an older checkpoint a registered replica still needs) is
// droppable, which is what finally bounds the log.
func (p *Provisioner) CheckpointBackup(name string, rep *Replica, opts engine.BackupOptions) (uint64, error) {
	b, err := rep.Engine().Dump(opts)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint backup: %w", err)
	}
	payload, err := b.Encode()
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint backup: %w", err)
	}
	// The snapshot may be ahead of the log (commits landed since the last
	// recorder pass — and when the recorder itself is the caller, nobody
	// else will ever close that gap). Copy the missing events in directly;
	// appendMu keeps this from interleaving with a concurrent recorder.
	p.appendMu.Lock()
	for p.log.Head() < b.AtSeq {
		if n, cerr := p.copyBatchLocked(rep); cerr != nil || n == 0 {
			p.appendMu.Unlock()
			if cerr == nil {
				cerr = fmt.Errorf("binlog has no events between log head %d and snapshot position %d", p.log.Head(), b.AtSeq)
			}
			return 0, fmt.Errorf("core: checkpoint backup: %w", cerr)
		}
	}
	p.appendMu.Unlock()
	if err := p.log.AddCheckpoint(name, b.AtSeq, payload); err != nil {
		return 0, fmt.Errorf("core: checkpoint backup: %w", err)
	}
	if err := p.log.Sync(); err != nil {
		return 0, fmt.Errorf("core: checkpoint backup: %w", err)
	}
	return b.AtSeq, nil
}

// FollowOptions tunes the binlog recorder started by Follow.
type FollowOptions struct {
	// Poll is the recorder's binlog poll interval; zero means 200µs.
	Poll time.Duration
	// CheckpointEvery takes an automatic checkpoint backup (and compacts
	// the log) every N recorded entries; zero disables automatic
	// checkpoints, leaving the log unbounded until CheckpointBackup is
	// called manually.
	CheckpointEvery uint64
	// Backup selects what automatic checkpoints capture; the zero value is
	// upgraded to FaithfulBackup (recovery must clone users, code and
	// sequences, §4.1.5).
	Backup engine.BackupOptions
}

// Follow starts (or re-points) the recorder: a goroutine that copies rep's
// committed binlog events into the recovery log, resuming at the log head.
// Binlog and log sequence spaces must be aligned — true when the log was
// fed from this cluster's event stream from the start, and re-established
// across restarts by ResyncAuto's binlog reset.
func (p *Provisioner) Follow(rep *Replica, opts FollowOptions) {
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Microsecond
	}
	if len(opts.Backup.Databases) == 0 && !opts.Backup.IncludeUsers &&
		!opts.Backup.IncludeCode && !opts.Backup.IncludeSequences {
		opts.Backup = FaithfulBackup
	}
	p.Unfollow()
	p.mu.Lock()
	p.followed = rep
	p.fopts = opts
	p.recErr = nil // fresh recorder incarnation, fresh slate
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stop, done := p.stop, p.done
	p.mu.Unlock()
	go p.record(rep, opts, stop, done)
}

// Unfollow stops the recorder (no-op when none is running), draining the
// binlog and taking a final checkpoint when the automatic threshold was
// crossed, so a graceful shutdown restarts via checkpoint + tail.
func (p *Provisioner) Unfollow() { p.unfollow(true) }

func (p *Provisioner) unfollow(finalCkpt bool) {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.followed = nil
	p.finalCkpt = finalCkpt
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Followed reports which replica the recorder is copying (nil when idle).
func (p *Provisioner) Followed() *Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.followed
}

// RecorderErr returns the first error that stopped the recorder (nil while
// healthy). Misalignment between binlog and log positions and storage
// failures both land here.
func (p *Provisioner) RecorderErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recErr
}

func (p *Provisioner) setRecErr(err error) {
	p.mu.Lock()
	if p.recErr == nil {
		p.recErr = err
	}
	p.mu.Unlock()
}

// copyBatch copies one batch of committed binlog events into the log,
// returning how many it recorded. Errors are sticky via RecorderErr.
func (p *Provisioner) copyBatch(rep *Replica) (int, error) {
	p.appendMu.Lock()
	defer p.appendMu.Unlock()
	return p.copyBatchLocked(rep)
}

func (p *Provisioner) copyBatchLocked(rep *Replica) (int, error) {
	pos := p.log.Head()
	events, trimmed := rep.Engine().Binlog().ReadFrom(pos, 64)
	if trimmed {
		err := fmt.Errorf("core: recorder: binlog trimmed below log head %d", pos)
		p.setRecErr(err)
		return 0, err
	}
	for _, ev := range events {
		seq, err := p.recordEvent(ev)
		if err != nil {
			err = fmt.Errorf("core: recorder: %w", err)
			p.setRecErr(err)
			return 0, err
		}
		if seq != ev.Seq {
			err = fmt.Errorf("core: recorder: log seq %d diverged from binlog seq %d", seq, ev.Seq)
			p.setRecErr(err)
			return 0, err
		}
	}
	return len(events), nil
}

func (p *Provisioner) record(rep *Replica, opts FollowOptions, stop, done chan struct{}) {
	defer close(done)
	lastCkpt := uint64(0)
	if _, seq, ok := p.log.LatestCheckpoint(); ok {
		lastCkpt = seq
	}
	// drain copies everything the binlog has already committed; every stop
	// path runs it, so a graceful stop never loses the tail between the
	// last poll and the stop signal (a restart would then serve fewer rows
	// than were acknowledged).
	drain := func() {
		for {
			if n, err := p.copyBatch(rep); err != nil || n == 0 {
				return
			}
		}
	}
	// checkpoint takes an automatic checkpoint backup (and compacts) when
	// the configured threshold has been crossed.
	checkpoint := func() bool {
		head := p.log.Head()
		if opts.CheckpointEvery == 0 || head-lastCkpt < opts.CheckpointEvery {
			return true
		}
		if _, err := p.CheckpointBackup(fmt.Sprintf("auto-%d", head), rep, opts.Backup); err != nil {
			p.setRecErr(err)
			return false
		}
		lastCkpt = head
		if _, err := p.log.Compact(); err != nil {
			p.setRecErr(err)
			return false
		}
		return true
	}
	finish := func() {
		drain()
		p.mu.Lock()
		final := p.finalCkpt
		p.mu.Unlock()
		if final {
			_ = checkpoint()
		}
		_ = p.log.Sync()
	}
	for {
		select {
		case <-stop:
			finish()
			return
		default:
		}
		n, err := p.copyBatch(rep)
		if err != nil {
			return
		}
		if n == 0 {
			select {
			case <-stop:
				finish()
				return
			case <-time.After(opts.Poll):
			}
			continue
		}
		if !checkpoint() {
			return
		}
	}
}

// FailoverTo repairs the recovery log after a promotion and re-points the
// recorder at the new master. The old master's unreplicated suffix — logged
// but never applied by the promoted slave — "never happened" in the new
// position space, so the log tail above the new master's position is
// truncated (checkpoints above it included) before recording resumes.
func (p *Provisioner) FailoverTo(newMaster *Replica) error {
	p.mu.Lock()
	wasFollowing := p.followed != nil
	opts := p.fopts
	p.mu.Unlock()
	if wasFollowing {
		// No parting checkpoint: a snapshot of the dead master's lineage
		// would be above (or interleaved past) the promoted position.
		p.unfollow(false)
	}
	to := newMaster.Engine().Binlog().Head()
	var rebased bool
	if err := p.log.TruncateTail(to); err != nil {
		if !errors.Is(err, recoverylog.ErrCompacted) {
			// The log could not be repaired and recording stays stopped:
			// make that loud through RecorderErr — callers like the monitor
			// run in loops with nowhere to return an error to, and a
			// silently dead recorder means a restart would lose everything
			// after this point.
			err = fmt.Errorf("core: failover log repair: %w", err)
			p.setRecErr(err)
			return err
		}
		// Compaction already advanced past the promoted position: every
		// retained entry and checkpoint belongs to the lost lineage, and a
		// resync from them would faithfully rebuild transactions the
		// cluster lost (this bit the chaos tests before the reset existed).
		// The only sound log is an empty one re-based at the promoted
		// position, re-anchored below by a fresh checkpoint of the new
		// master.
		if err := p.log.ResetTo(to); err != nil {
			err = fmt.Errorf("core: failover log reset: %w", err)
			p.setRecErr(err)
			return err
		}
		rebased = true
	}
	if wasFollowing {
		p.Follow(newMaster, opts)
	}
	if rebased {
		if _, err := p.CheckpointBackup(fmt.Sprintf("failover-%d", to), newMaster, FaithfulBackup); err != nil {
			err = fmt.Errorf("core: failover re-anchor: %w", err)
			p.setRecErr(err)
			return err
		}
	}
	return nil
}

// ResyncOptions controls replica resynchronization.
type ResyncOptions struct {
	// Parallel extracts parallelism from the log via table-conflict
	// scheduling; serial replay is the default (and the §4.4.2 problem).
	Parallel bool
	// Workers bounds parallel replay concurrency; zero means 8.
	Workers int
	// BatchWait is how long to wait for new log entries before declaring
	// the replica caught up; zero means 50 ms.
	BatchWait time.Duration
	// ApplyCost adds per-entry service time on the recovering replica
	// (the replica still pays execution cost during catch-up).
	ApplyCost time.Duration
	// BeforeApply, when non-nil, runs before each entry is applied; an
	// error aborts the resync at that entry. Operators use it for
	// throttling, tests for fault injection.
	BeforeApply func(recoverylog.Entry) error
	// ForceClone makes ResyncAuto restore a checkpoint backup even when
	// tail replay from the replica's position would be possible. Rejoining
	// a failed old master uses it: the replica's state contains a diverged
	// unreplicated suffix that must be rolled back, not built upon.
	ForceClone bool
}

// ResyncResult summarizes a resynchronization.
type ResyncResult struct {
	Replayed int
	From, To uint64
	Duration time.Duration
	CaughtUp bool
	// Cloned reports that the replica was initialized from a checkpoint
	// backup before tail replay; Checkpoint/CheckpointSeq identify it.
	Cloned        bool
	Checkpoint    string
	CheckpointSeq uint64
	FinalHead     uint64
}

// Resync replays the recovery log into a replica from the given position
// until it reaches the (moving) head. It returns when the replica has
// caught up — or reports CaughtUp=false if MaxDuration elapsed first.
// Replaying from below the compaction horizon fails with
// recoverylog.ErrCompacted; use ResyncAuto to fall back to a checkpoint
// clone automatically.
func (p *Provisioner) Resync(rep *Replica, from uint64, opts ResyncOptions, maxDuration time.Duration) (*ResyncResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.BatchWait == 0 {
		opts.BatchWait = 50 * time.Millisecond
	}
	if c := p.log.CompactedThrough(); from < c {
		return nil, fmt.Errorf("%w: resync of %s from %d, compacted through %d (use ResyncAuto)",
			recoverylog.ErrCompacted, rep.Name(), from, c)
	}
	session := rep.Engine().NewSession("resync")
	defer session.Close()

	apply := func(e recoverylog.Entry) error {
		if opts.BeforeApply != nil {
			if err := opts.BeforeApply(e); err != nil {
				return err
			}
		}
		if opts.ApplyCost > 0 {
			time.Sleep(opts.ApplyCost)
		}
		return applyLogEntry(session, e)
	}
	applyParallel := func(e recoverylog.Entry) error {
		// Parallel replay needs its own session per call; sessions are
		// not concurrency-safe.
		if opts.BeforeApply != nil {
			if err := opts.BeforeApply(e); err != nil {
				return err
			}
		}
		if opts.ApplyCost > 0 {
			time.Sleep(opts.ApplyCost)
		}
		s := rep.Engine().NewSession("resync")
		defer s.Close()
		return applyLogEntry(s, e)
	}

	start := time.Now()
	pos := from
	total := 0
	deadline := start.Add(maxDuration)
	// Pin the replay position for the duration of the resync: a concurrent
	// Compact must never drop entries out from under an in-flight replay
	// (registration alone has checkpoint granularity and cannot protect a
	// replica replaying from below every checkpoint). The registration
	// keeps the replica's checkpoint retained for later resyncs.
	p.log.PinReplay(rep.Name(), pos)
	defer p.log.Unpin(rep.Name())
	p.log.Register(rep.Name(), pos)
	for {
		head := p.log.Head()
		if pos >= head {
			// Nothing pending: wait briefly for more, then declare done.
			time.Sleep(opts.BatchWait)
			if p.log.Head() == head {
				rep.appliedSeq.Store(pos)
				rep.receivedSeq.Store(pos)
				return &ResyncResult{
					Replayed: total, From: from, To: pos,
					Duration: time.Since(start), CaughtUp: true, FinalHead: head,
				}, nil
			}
			continue
		}
		var n int
		var err error
		if opts.Parallel {
			n, err = p.log.ReplayParallel(pos, head, opts.Workers, applyParallel)
		} else {
			n, err = p.log.ReplaySerial(pos, head, apply)
		}
		total += n
		// Advance only by what actually applied (both replay modes return
		// the contiguous applied prefix). The old code recorded pos = head
		// before checking err, so a mid-stream replay failure marked the
		// replica caught up through head and a resumed resync silently
		// skipped every entry the failed pass never applied.
		pos += uint64(n)
		rep.appliedSeq.Store(pos)
		rep.receivedSeq.Store(pos)
		p.log.PinReplay(rep.Name(), pos)
		p.log.Register(rep.Name(), pos)
		if err != nil {
			return nil, err
		}
		if maxDuration > 0 && time.Now().After(deadline) {
			return &ResyncResult{
				Replayed: total, From: from, To: pos,
				Duration: time.Since(start), CaughtUp: false, FinalHead: p.log.Head(),
			}, nil
		}
	}
}

// ResyncAuto resynchronizes a replica choosing the cheapest sound plan:
//
//   - a replica whose applied position is still covered by retained log
//     entries replays only the tail from that position;
//   - an empty replica, one below the compaction horizon, or one whose
//     state must be discarded (ForceClone — e.g. a failed master with a
//     diverged suffix) restores the newest payload checkpoint at or below
//     its position (falling back to the latest checkpoint), resets its
//     binlog to the checkpoint position so the replication position space
//     stays aligned, and replays the tail from there.
//
// Either way the tail is strictly shorter than a full-log replay whenever a
// checkpoint exists — the §4.4.2 catch-up-time fix.
func (p *Provisioner) ResyncAuto(rep *Replica, opts ResyncOptions, maxDuration time.Duration) (*ResyncResult, error) {
	pos := rep.AppliedSeq()
	compacted := p.log.CompactedThrough()
	_, _, haveCkpt := p.log.LatestCheckpoint()

	clone := opts.ForceClone || pos < compacted || (pos == 0 && haveCkpt)
	var ckptName string
	var ckptSeq uint64
	if clone {
		name, seq, ok := p.log.NearestCheckpoint(pos)
		if !ok || seq < compacted {
			// No usable checkpoint at or below the replica's position (or it
			// can no longer be tail-replayed forward): clone the latest.
			name, seq, ok = p.log.LatestCheckpoint()
		}
		if !ok {
			if pos < compacted || opts.ForceClone {
				return nil, fmt.Errorf("core: resync of %s needs a checkpoint backup and none exists", rep.Name())
			}
			// Empty log, empty replica: nothing to clone, nothing to replay.
			clone = false
		} else {
			payload, okp := p.log.CheckpointPayload(name)
			if !okp {
				return nil, fmt.Errorf("core: checkpoint %s has no payload", name)
			}
			b, err := engine.DecodeBackup(payload)
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint %s: %w", name, err)
			}
			if err := rep.Engine().Restore(b); err != nil {
				return nil, fmt.Errorf("core: clone %s from checkpoint %s: %w", rep.Name(), name, err)
			}
			// The restored engine continues the cluster's position space
			// from the checkpoint; whatever its previous life had appended
			// (including a diverged suffix) is rolled back with the state.
			rep.Engine().Binlog().Reset(seq)
			rep.appliedSeq.Store(seq)
			rep.receivedSeq.Store(seq)
			pos = seq
			ckptName, ckptSeq = name, seq
		}
	}
	res, err := p.Resync(rep, pos, opts, maxDuration)
	if err != nil {
		return nil, err
	}
	res.Cloned = clone
	res.Checkpoint = ckptName
	res.CheckpointSeq = ckptSeq
	return res, nil
}

// applyLogEntry executes one recovery log entry on a session. Multi-
// statement entries re-execute as one transaction, keeping replayed
// positions aligned with the original commit stream.
func applyLogEntry(s *engine.Session, e recoverylog.Entry) error {
	stmts := e.Stmts
	if len(stmts) > 1 && !e.DDL {
		if _, err := s.Exec("BEGIN"); err != nil {
			return err
		}
		for _, sql := range stmts {
			if _, err := s.Exec(sql); err != nil {
				s.Rollback()
				return err
			}
		}
		_, err := s.Exec("COMMIT")
		return err
	}
	for _, sql := range stmts {
		if _, err := s.Exec(sql); err != nil {
			return err
		}
	}
	return nil
}

// CloneFromBackup initializes a fresh replica from a backup of a
// checkpointed replica (the "offline nodes that have been properly
// checkpointed can also be backed up; the resulting dump can initialize new
// replicas without using resources of active replicas" flow, §4.4.2).
func CloneFromBackup(b *engine.Backup, rep *Replica) error {
	if err := rep.Engine().Restore(b); err != nil {
		return fmt.Errorf("core: clone: %w", err)
	}
	return nil
}
