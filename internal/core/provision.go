package core

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/recoverylog"
)

// Provisioner implements the Sequoia-style online replica lifecycle of
// §4.4.2 on top of a recovery log: checkpoint a replica out, back it up
// without touching active replicas, initialize new replicas from the dump,
// and resynchronize them by (serial or parallel) log replay until they
// catch up with the live stream.
type Provisioner struct {
	log *recoverylog.Log
}

// NewProvisioner wraps a recovery log.
func NewProvisioner(log *recoverylog.Log) *Provisioner {
	return &Provisioner{log: log}
}

// Log exposes the underlying recovery log.
func (p *Provisioner) Log() *recoverylog.Log { return p.log }

// RecordEvent appends a committed binlog event to the recovery log. Wire it
// to the master's binlog subscription. The originating database travels as
// a leading USE so entries are self-contained for replay on fresh sessions.
func (p *Provisioner) RecordEvent(ev engine.Event) uint64 {
	stmts := ev.Stmts
	if ev.Database != "" {
		stmts = append([]string{"USE " + ev.Database}, stmts...)
	}
	return p.log.Append(stmts, ev.Tables(), ev.DDL)
}

// CheckpointRemove marks a replica's departure position ("when a node is
// removed from the cluster, a checkpoint is inserted").
func (p *Provisioner) CheckpointRemove(name string, position uint64) {
	p.log.CheckpointAt("remove:"+name, position)
}

// ResyncOptions controls replica resynchronization.
type ResyncOptions struct {
	// Parallel extracts parallelism from the log via table-conflict
	// scheduling; serial replay is the default (and the §4.4.2 problem).
	Parallel bool
	// Workers bounds parallel replay concurrency; zero means 8.
	Workers int
	// BatchWait is how long to wait for new log entries before declaring
	// the replica caught up; zero means 50 ms.
	BatchWait time.Duration
	// ApplyCost adds per-entry service time on the recovering replica
	// (the replica still pays execution cost during catch-up).
	ApplyCost time.Duration
	// BeforeApply, when non-nil, runs before each entry is applied; an
	// error aborts the resync at that entry. Operators use it for
	// throttling, tests for fault injection.
	BeforeApply func(recoverylog.Entry) error
}

// ResyncResult summarizes a resynchronization.
type ResyncResult struct {
	Replayed  int
	From, To  uint64
	Duration  time.Duration
	CaughtUp  bool
	FinalHead uint64
}

// Resync replays the recovery log into a replica from the given position
// until it reaches the (moving) head. It returns when the replica has
// caught up — or reports CaughtUp=false if MaxDuration elapsed first.
func (p *Provisioner) Resync(rep *Replica, from uint64, opts ResyncOptions, maxDuration time.Duration) (*ResyncResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.BatchWait == 0 {
		opts.BatchWait = 50 * time.Millisecond
	}
	session := rep.Engine().NewSession("resync")
	defer session.Close()

	apply := func(e recoverylog.Entry) error {
		if opts.BeforeApply != nil {
			if err := opts.BeforeApply(e); err != nil {
				return err
			}
		}
		if opts.ApplyCost > 0 {
			time.Sleep(opts.ApplyCost)
		}
		return applyLogEntry(session, e)
	}
	applyParallel := func(e recoverylog.Entry) error {
		// Parallel replay needs its own session per call; sessions are
		// not concurrency-safe.
		if opts.BeforeApply != nil {
			if err := opts.BeforeApply(e); err != nil {
				return err
			}
		}
		if opts.ApplyCost > 0 {
			time.Sleep(opts.ApplyCost)
		}
		s := rep.Engine().NewSession("resync")
		defer s.Close()
		return applyLogEntry(s, e)
	}

	start := time.Now()
	pos := from
	total := 0
	deadline := start.Add(maxDuration)
	for {
		head := p.log.Head()
		if pos >= head {
			// Nothing pending: wait briefly for more, then declare done.
			time.Sleep(opts.BatchWait)
			if p.log.Head() == head {
				rep.appliedSeq.Store(pos)
				rep.receivedSeq.Store(pos)
				return &ResyncResult{
					Replayed: total, From: from, To: pos,
					Duration: time.Since(start), CaughtUp: true, FinalHead: head,
				}, nil
			}
			continue
		}
		var n int
		var err error
		if opts.Parallel {
			n, err = p.log.ReplayParallel(pos, head, opts.Workers, applyParallel)
		} else {
			n, err = p.log.ReplaySerial(pos, head, apply)
		}
		total += n
		// Advance only by what actually applied (both replay modes return
		// the contiguous applied prefix). The old code recorded pos = head
		// before checking err, so a mid-stream replay failure marked the
		// replica caught up through head and a resumed resync silently
		// skipped every entry the failed pass never applied.
		pos += uint64(n)
		rep.appliedSeq.Store(pos)
		rep.receivedSeq.Store(pos)
		if err != nil {
			return nil, err
		}
		if maxDuration > 0 && time.Now().After(deadline) {
			return &ResyncResult{
				Replayed: total, From: from, To: pos,
				Duration: time.Since(start), CaughtUp: false, FinalHead: p.log.Head(),
			}, nil
		}
	}
}

// applyLogEntry executes one recovery log entry on a session. Multi-
// statement entries re-execute as one transaction, keeping replayed
// positions aligned with the original commit stream.
func applyLogEntry(s *engine.Session, e recoverylog.Entry) error {
	stmts := e.Stmts
	if len(stmts) > 1 && !e.DDL {
		if _, err := s.Exec("BEGIN"); err != nil {
			return err
		}
		for _, sql := range stmts {
			if _, err := s.Exec(sql); err != nil {
				s.Rollback()
				return err
			}
		}
		_, err := s.Exec("COMMIT")
		return err
	}
	for _, sql := range stmts {
		if _, err := s.Exec(sql); err != nil {
			return err
		}
	}
	return nil
}

// CloneFromBackup initializes a fresh replica from a backup of a
// checkpointed replica (the "offline nodes that have been properly
// checkpointed can also be backed up; the resulting dump can initialize new
// replicas without using resources of active replicas" flow, §4.4.2).
func CloneFromBackup(b *engine.Backup, rep *Replica) error {
	if err := rep.Engine().Restore(b); err != nil {
		return fmt.Errorf("core: clone: %w", err)
	}
	return nil
}
