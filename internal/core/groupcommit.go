package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Cross-connection group commit (PR 9). A durable cluster that fsyncs the
// recovery log once per commit spends almost all of its write latency in the
// disk flush; under concurrent writers those flushes carry one transaction
// each while the others queue behind the log mutex. The GroupCommitter
// coalesces them: commits that arrive while a flush window is open ride the
// same binlog copy and the same fsync, so N concurrent writers cost one disk
// round-trip instead of N. This is the classical WAL group commit, applied
// at the middleware layer the paper's Figure 3 runs the log in.
//
// The protocol is leader/follower. The first commit that finds no batch open
// becomes the leader: it opens a batch, sleeps the coalescing window (the
// bounded latency the -group-commit-window knob buys throughput with),
// closes enrollment, copies the master binlog into the recovery log up to
// the highest position enrolled, issues ONE Sync, and wakes every follower.
// Commits that arrive mid-window enroll and just wait. Commits whose
// position is already at or below the durable watermark return immediately
// — the previous batch flushed on their behalf.

// DurabilityWaiter is what the cluster write path blocks on before
// acknowledging a commit: WaitDurable returns once the given replication
// position is safely on disk.
type DurabilityWaiter interface {
	WaitDurable(seq uint64) error
}

// ErrGroupCommitClosed is returned by WaitDurable after Close: the commit
// executed but its durability could not be confirmed.
var ErrGroupCommitClosed = errors.New("core: group committer closed")

// syncBatch is one in-flight flush: everyone enrolled waits on done, the
// leader flushes through high and reports err to all.
type syncBatch struct {
	done chan struct{}
	high uint64
	err  error
}

// GroupCommitter batches recovery-log fsyncs across concurrently-committing
// sessions. Safe for concurrent use.
type GroupCommitter struct {
	prov   *Provisioner
	source func() *Replica // current master (tracks failovers)
	window time.Duration

	mu      sync.Mutex
	cur     *syncBatch // open batch enrolling commits, nil if none
	durable uint64     // highest position known flushed
	commits uint64     // WaitDurable calls acknowledged
	syncs   uint64     // batches flushed (one fsync each)
	closed  bool
}

// NewGroupCommitter builds a committer over prov's recovery log. source
// returns the replica whose binlog holds the committed events — normally the
// cluster's current master, so pass MasterSlave.Master to track failovers.
// window is how long a batch leader waits for company before flushing;
// larger windows trade commit latency for fewer fsyncs. Zero still
// coalesces whatever arrived concurrently, it just never waits.
func NewGroupCommitter(prov *Provisioner, source func() *Replica, window time.Duration) *GroupCommitter {
	return &GroupCommitter{prov: prov, source: source, window: window}
}

// WaitDurable blocks until the recovery log has flushed position seq,
// joining (or leading) a batch so concurrent callers share one fsync.
func (g *GroupCommitter) WaitDurable(seq uint64) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrGroupCommitClosed
	}
	g.commits++
	if seq <= g.durable {
		g.mu.Unlock()
		return nil
	}
	if b := g.cur; b != nil {
		// A leader is collecting: enroll and wait for its flush.
		if seq > b.high {
			b.high = seq
		}
		g.mu.Unlock()
		<-b.done
		return b.err
	}
	b := &syncBatch{done: make(chan struct{}), high: seq}
	g.cur = b
	g.mu.Unlock()

	if g.window > 0 {
		time.Sleep(g.window)
	}

	g.mu.Lock()
	g.cur = nil // close enrollment; the next commit leads the next batch
	high := b.high
	g.syncs++
	g.mu.Unlock()

	var synced uint64
	synced, b.err = g.flush(high)

	g.mu.Lock()
	if b.err == nil && synced > g.durable {
		g.durable = synced
	}
	g.mu.Unlock()
	close(b.done)
	return b.err
}

// flush copies the master binlog into the recovery log through at least
// `high` and issues one Sync, returning the position the sync covered (a
// copy batch may overshoot high; everything appended is flushed, so later
// commits at or below it ride for free). appendMu keeps the copy from
// interleaving with the Provisioner's recorder, which covers the same
// ground.
func (g *GroupCommitter) flush(high uint64) (uint64, error) {
	log := g.prov.Log()
	g.prov.appendMu.Lock()
	for log.Head() < high {
		rep := g.source()
		if rep == nil {
			g.prov.appendMu.Unlock()
			return 0, fmt.Errorf("core: group commit: no master to copy binlog from (position %d)", high)
		}
		n, err := g.prov.copyBatchLocked(rep)
		if err != nil {
			g.prov.appendMu.Unlock()
			return 0, fmt.Errorf("core: group commit: %w", err)
		}
		if n == 0 {
			// The committed event is not in this replica's binlog: a
			// failover replaced the lineage mid-wait. The position the
			// caller holds may no longer exist; surface that rather than
			// spin.
			g.prov.appendMu.Unlock()
			return 0, fmt.Errorf("core: group commit: binlog exhausted at %d before position %d", log.Head(), high)
		}
	}
	synced := log.Head()
	g.prov.appendMu.Unlock()
	if err := log.Sync(); err != nil {
		return 0, fmt.Errorf("core: group commit: %w", err)
	}
	return synced, nil
}

// Stats reports commits acknowledged and fsync batches issued; their ratio
// is the amortization factor (1.0 = no grouping, higher is better).
func (g *GroupCommitter) Stats() (commits, syncs uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commits, g.syncs
}

// Close fails future WaitDurable calls. An open batch still completes: its
// leader holds no lock while flushing and reports to its followers normally.
func (g *GroupCommitter) Close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
}
