package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/lb"
	"repro/internal/qcache"
)

// MMMode selects between the two multi-master replication designs of
// §4.3.2.
type MMMode int

// Multi-master modes.
const (
	// StatementMode multicasts every update (or transaction script) in
	// total order; every replica executes every write.
	StatementMode MMMode = iota
	// CertificationMode executes a transaction at one replica, then
	// broadcasts its write set for certification (first-committer-wins
	// against concurrent certified transactions) and remote application.
	CertificationMode
)

// NonDetPolicy is what statement replication does with non-deterministic
// statements (§4.3.2).
type NonDetPolicy int

// Non-determinism handling policies.
const (
	// RewriteAndReject pins now()/current_timestamp to a constant and
	// rejects statements that cannot be fixed by rewriting (rand(),
	// LIMIT without ORDER BY feeding updates): the safe configuration.
	RewriteAndReject NonDetPolicy = iota
	// RewriteAndAllow rewrites what it can and broadcasts the rest
	// verbatim — the configuration that diverges clusters in the field,
	// kept so experiment C6 can measure exactly that.
	RewriteAndAllow
)

// ErrNonDeterministic is returned when a statement is rejected under
// RewriteAndReject.
var ErrNonDeterministic = errors.New("core: statement is not deterministic under statement replication (§4.3.2)")

// ErrCertificationAbort is returned when certification detects a
// write-write conflict with a concurrently committed transaction.
var ErrCertificationAbort = errors.New("core: transaction aborted by certification (first-committer-wins)")

// ErrNoQuorum is returned for writes submitted from a minority partition
// (the replicated database "must favor C and A over P", §4.3.4.3).
var ErrNoQuorum = errors.New("core: no quorum — writes refused in minority partition")

// ErrCommitUncertain is wrapped when a commit was submitted for total-order
// delivery but no decision arrived within CommitTimeout. The outcome is
// unknown: the script may yet commit cluster-wide. Deliberately NOT a
// deadline sentinel (it must not wrap context.DeadlineExceeded): a pooled
// driver that classified this as retryable would re-submit and could
// double-apply a non-idempotent write after the original commits.
var ErrCommitUncertain = errors.New("core: commit outcome uncertain — ordered but unacknowledged")

// MultiMasterConfig configures a multi-master cluster.
type MultiMasterConfig struct {
	Mode MMMode
	// NonDeterminism only applies in StatementMode.
	NonDeterminism NonDetPolicy
	// ReadPolicy balances reads; nil means LPRF.
	ReadPolicy lb.Policy
	// ReadLevel is the balancing granularity for reads.
	ReadLevel lb.Level
	// Consistency is the read guarantee.
	Consistency Consistency
	// Certifier handles CertificationMode conflicts; nil means a
	// replicated certifier (one deterministic instance per replica, no
	// SPOF). Set a shared *Certifier for the centralized variant whose
	// SPOF behaviour C5 measures.
	Certifier *Certifier
	// CommitTimeout bounds how long a session waits for its transaction
	// to come back ordered and applied; zero means 10 s.
	CommitTimeout time.Duration
	// QuorumOf, when > 0, is the total group size; writes require a
	// majority view (only meaningful with GCS orderers).
	QuorumOf int
	// QueryCache, when non-nil, serves eligible reads from a middleware
	// result cache (see MasterSlaveConfig.QueryCache). Certification-mode
	// writes invalidate exactly the tables of their write set; statement-
	// mode scripts have an unknown footprint and flush their database.
	QueryCache *qcache.Cache
	// Admission, when non-nil, gates every statement through the overload
	// controller (see MasterSlaveConfig.Admission). In layered deployments
	// attach a controller to the TOP-level cluster only.
	Admission *admission.Controller
	// StatementTimeout is the default per-statement deadline applied to
	// every session (overridable per session with SET DEADLINE). Zero means
	// no deadline. It bounds admission wait, replica queueing, and read /
	// dry-run execution; ordered commits stay bounded by CommitTimeout
	// (aborting after ordering would be unsafe).
	StatementTimeout time.Duration
}

// mmTxn is the ordered payload: either a statement script or a write set.
type mmTxn struct {
	ID       uint64
	Origin   string // home replica name
	Database string
	Stmts    []string         // StatementMode
	WS       *engine.WriteSet // CertificationMode
	Snapshot uint64           // certification: position the txn read at
	User     string
}

// txnOutcome reports a transaction's fate back to the waiting session.
type txnOutcome struct {
	res *engine.Result
	err error
}

// MultiMaster is a multi-master replication controller (§2.1).
type MultiMaster struct {
	cfg      MultiMasterConfig
	replicas []*Replica
	orderers []Orderer // one per replica, or a single shared local orderer
	policy   lb.Policy

	// certifiers: one per replica in replicated mode; all pointing at
	// cfg.Certifier in centralized mode.
	certifiers []*Certifier

	// qc is the cluster's scope on the configured query result cache (nil
	// when caching is off).
	qc *qcache.Scope

	mu      sync.Mutex
	waiters map[uint64]*txnWaiter
	nextTxn atomic.Uint64
	head    atomic.Uint64 // highest ordered seq seen by any applier

	stopped bool
	stops   []chan struct{}
	wg      sync.WaitGroup

	// aborts counts certification aborts (for Gray's-law experiments).
	aborts atomic.Uint64
	// commits counts certified/applied transactions.
	commits atomic.Uint64
}

type txnWaiter struct {
	home string
	ch   chan txnOutcome
}

// NewMultiMaster builds a multi-master cluster. orderers must be either a
// single shared Orderer (in-process deployment) or exactly one per replica
// (distributed deployment over gcs).
func NewMultiMaster(replicas []*Replica, orderers []Orderer, cfg MultiMasterConfig) (*MultiMaster, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("core: no replicas")
	}
	if len(orderers) != 1 && len(orderers) != len(replicas) {
		return nil, fmt.Errorf("core: need 1 shared orderer or one per replica (%d replicas, %d orderers)", len(replicas), len(orderers))
	}
	if cfg.ReadPolicy == nil {
		cfg.ReadPolicy = lb.NewLPRF()
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = 10 * time.Second
	}
	mm := &MultiMaster{
		cfg:      cfg,
		replicas: append([]*Replica(nil), replicas...),
		orderers: orderers,
		policy:   cfg.ReadPolicy,
		waiters:  make(map[uint64]*txnWaiter),
	}
	if cfg.QueryCache != nil {
		mm.qc = cfg.QueryCache.NewScope()
	}
	mm.certifiers = make([]*Certifier, len(replicas))
	for i := range replicas {
		if cfg.Certifier != nil {
			mm.certifiers[i] = cfg.Certifier
		} else {
			mm.certifiers[i] = NewCertifier()
		}
	}
	for i, r := range mm.replicas {
		ord := orderers[0]
		if len(orderers) > 1 {
			ord = orderers[i]
		}
		stop := make(chan struct{})
		mm.stops = append(mm.stops, stop)
		mm.wg.Add(1)
		go mm.applier(r, ord.Subscribe(), mm.certifiers[i], stop)
	}
	return mm, nil
}

// Replicas returns the cluster members.
func (mm *MultiMaster) Replicas() []*Replica {
	return append([]*Replica(nil), mm.replicas...)
}

// Head returns the highest ordered position any replica has applied.
func (mm *MultiMaster) Head() uint64 { return mm.head.Load() }

// Commits returns the number of transactions committed cluster-wide.
func (mm *MultiMaster) Commits() uint64 { return mm.commits.Load() }

// Aborts returns the number of certification aborts.
func (mm *MultiMaster) Aborts() uint64 { return mm.aborts.Load() }

// Close stops the appliers (orderers are owned by the caller).
func (mm *MultiMaster) Close() {
	mm.mu.Lock()
	if mm.stopped {
		mm.mu.Unlock()
		return
	}
	mm.stopped = true
	stops := mm.stops
	mm.mu.Unlock()
	for _, st := range stops {
		close(st)
	}
	mm.wg.Wait()
}

// applier consumes the totally-ordered stream into one replica. In
// certification mode it also runs the (replicated or centralized) certifier.
func (mm *MultiMaster) applier(r *Replica, in <-chan Ordered, cert *Certifier, stop chan struct{}) {
	defer mm.wg.Done()
	session := r.Engine().NewSession("replication")
	defer session.Close()
	curDB := ""
	for {
		select {
		case <-stop:
			return
		case ord, ok := <-in:
			if !ok {
				return
			}
			txn, isTxn := ord.Payload.(mmTxn)
			if !isTxn {
				continue
			}
			var outcome txnOutcome
			// Cluster-wide counters tick once per transaction: at the
			// origin replica only.
			count := r.Name() == txn.Origin
			r.snapMu.Lock()
			if txn.WS != nil {
				outcome = mm.applyCertified(r, cert, ord.Seq, txn, count)
			} else {
				outcome = mm.applyScript(r, session, &curDB, txn, count)
			}
			r.receivedSeq.Store(ord.Seq)
			r.appliedSeq.Store(ord.Seq)
			r.snapMu.Unlock()
			for {
				h := mm.head.Load()
				if ord.Seq <= h || mm.head.CompareAndSwap(h, ord.Seq) {
					break
				}
			}
			// Invalidate cached results BEFORE notify: the origin applier's
			// notify is what acknowledges the commit to the writing session,
			// and no ack may race its own invalidation. Certified write sets
			// name their tables exactly; statement scripts are opaque and
			// flush their database (empty database: flush everything).
			if mm.qc != nil && count && outcome.err == nil {
				if txn.WS != nil {
					mm.qc.InvalidateTables(txn.WS.Tables(), ord.Seq)
				} else {
					mm.qc.ApplyEvent(engine.Event{
						Seq: ord.Seq, Stmts: txn.Stmts, Database: txn.Database,
					})
				}
			}
			// Stamp the outcome with the transaction's own ordered position.
			// The session must not substitute AppliedSeq() sampled after the
			// ack: the applier may have applied later transactions by then,
			// and an inflated position makes the client believe its write is
			// newer than a subsequent writer's — a phantom session-guarantee
			// violation in recorded histories.
			if outcome.err == nil && outcome.res != nil && outcome.res.AtSeq == 0 {
				outcome.res.AtSeq = ord.Seq
			}
			mm.notify(r, txn.ID, outcome)
		}
	}
}

// applyScript executes a statement-mode transaction script.
func (mm *MultiMaster) applyScript(r *Replica, s *engine.Session, curDB *string, txn mmTxn, count bool) txnOutcome {
	if err := r.acquire(); err != nil {
		return txnOutcome{err: err}
	}
	defer r.release()
	if txn.Database != "" && txn.Database != *curDB {
		if _, err := s.Exec("USE " + txn.Database); err != nil {
			return txnOutcome{err: err}
		}
		*curDB = txn.Database
	}
	var last *engine.Result
	single := len(txn.Stmts) == 1
	if !single {
		if _, err := s.Exec("BEGIN"); err != nil {
			return txnOutcome{err: err}
		}
	}
	for _, sql := range txn.Stmts {
		r.serviceSleep(false)
		res, err := s.Exec(sql)
		if err != nil {
			if !single {
				_, _ = s.Exec("ROLLBACK")
			}
			return txnOutcome{err: err}
		}
		last = res
	}
	if !single {
		if _, err := s.Exec("COMMIT"); err != nil {
			return txnOutcome{err: err}
		}
	}
	if count {
		mm.commits.Add(1)
	}
	return txnOutcome{res: last}
}

// applyCertified certifies a write set and applies it if it passes.
func (mm *MultiMaster) applyCertified(r *Replica, cert *Certifier, seq uint64, txn mmTxn, count bool) txnOutcome {
	ok, err := cert.Certify(seq, txn.Snapshot, txn.WS)
	if err != nil {
		return txnOutcome{err: err}
	}
	if !ok {
		if count {
			mm.aborts.Add(1)
		}
		return txnOutcome{err: ErrCertificationAbort}
	}
	if err := r.acquire(); err != nil {
		return txnOutcome{err: err}
	}
	defer r.release()
	r.serviceSleep(false)
	if err := r.Engine().ApplyWriteSet(txn.WS, engine.ApplyOptions{AdvanceCounters: true}); err != nil {
		return txnOutcome{err: err}
	}
	if count {
		mm.commits.Add(1)
	}
	return txnOutcome{res: &engine.Result{RowsAffected: int64(len(txn.WS.Ops))}}
}

// notify wakes the waiting session when its home replica has processed the
// transaction.
func (mm *MultiMaster) notify(r *Replica, txnID uint64, outcome txnOutcome) {
	mm.mu.Lock()
	w, ok := mm.waiters[txnID]
	if ok && w.home == r.Name() {
		delete(mm.waiters, txnID)
	} else {
		w = nil
	}
	mm.mu.Unlock()
	if w != nil {
		w.ch <- outcome
	}
}

// submitAndWait orders a transaction and waits until the session's home
// replica has applied it.
func (mm *MultiMaster) submitAndWait(ord Orderer, home *Replica, txn mmTxn) (*engine.Result, error) {
	if mm.cfg.QuorumOf > 0 {
		if g, ok := ord.(*GCSOrderer); ok {
			if len(g.View().Members) <= mm.cfg.QuorumOf/2 {
				return nil, ErrNoQuorum
			}
		}
	}
	w := &txnWaiter{home: home.Name(), ch: make(chan txnOutcome, 1)}
	mm.mu.Lock()
	mm.waiters[txn.ID] = w
	mm.mu.Unlock()
	if err := ord.Submit(txn); err != nil {
		mm.mu.Lock()
		delete(mm.waiters, txn.ID)
		mm.mu.Unlock()
		return nil, err
	}
	select {
	case out := <-w.ch:
		return out.res, out.err
	case <-time.After(mm.cfg.CommitTimeout):
		mm.mu.Lock()
		delete(mm.waiters, txn.ID)
		mm.mu.Unlock()
		return nil, fmt.Errorf("%w: no ordering decision after %v (partition or overload)", ErrCommitUncertain, mm.cfg.CommitTimeout)
	}
}

// ordererFor returns the orderer a session on the given replica submits to.
func (mm *MultiMaster) ordererFor(home *Replica) Orderer {
	if len(mm.orderers) == 1 {
		return mm.orderers[0]
	}
	for i, r := range mm.replicas {
		if r == home {
			return mm.orderers[i]
		}
	}
	return mm.orderers[0]
}

// QueryCacheScope exposes the cluster's result cache scope (nil when
// caching is off).
func (mm *MultiMaster) QueryCacheScope() *qcache.Scope { return mm.qc }

// Admission returns the cluster's admission controller (nil when overload
// protection is off).
func (mm *MultiMaster) Admission() *admission.Controller { return mm.cfg.Admission }

// cacheMinPos is the lowest ordered position a cached result must carry to
// satisfy the given read guarantee — the cache-side mirror of replicaFresh.
func (mm *MultiMaster) cacheMinPos(cons Consistency, lastWriteSeq uint64) uint64 {
	switch cons {
	case SessionConsistent:
		return lastWriteSeq
	case StrongConsistent:
		return mm.head.Load()
	default:
		return 0
	}
}

// replicaFresh reports whether r currently satisfies the given read
// guarantee for a session whose last write is lastWriteSeq.
func (mm *MultiMaster) replicaFresh(r *Replica, cons Consistency, lastWriteSeq uint64) bool {
	switch cons {
	case ReadAny:
		return true
	case SessionConsistent:
		return r.AppliedSeq() >= lastWriteSeq
	case StrongConsistent:
		return r.AppliedSeq() >= mm.head.Load()
	}
	return true
}

// pickRead selects a read replica under the given consistency. With
// relaxed set (ANY-consistency reads under overload shedding) freshness
// bounds are waived: any healthy replica — however far behind — is a valid
// target, which keeps lagging replicas absorbing load during a flash crowd.
func (mm *MultiMaster) pickRead(cons Consistency, lastWriteSeq uint64, relaxed bool) (*Replica, error) {
	var candidates []lb.Target
	for _, r := range mm.replicas {
		if !r.Healthy() {
			continue
		}
		if relaxed || mm.replicaFresh(r, cons, lastWriteSeq) {
			candidates = append(candidates, r)
		}
	}
	t := mm.policy.Pick(candidates)
	if t == nil {
		return nil, ErrReplicaDown
	}
	return t.(*Replica), nil
}

// NewConn implements Cluster.
func (mm *MultiMaster) NewConn(user string) (Conn, error) {
	return mm.NewSession(user)
}

// Authenticate implements Cluster: credentials are checked against the
// first healthy replica's engine.
func (mm *MultiMaster) Authenticate(user, password string) error {
	for _, r := range mm.replicas {
		if r.Healthy() {
			return r.Engine().Authenticate(user, password)
		}
	}
	return ErrReplicaDown
}

// Health implements Cluster.
func (mm *MultiMaster) Health() Health {
	h := Health{Topology: "multi-master", Replicas: len(mm.replicas), Head: mm.head.Load()}
	for _, r := range mm.replicas {
		if r.Healthy() {
			h.HealthyReplicas++
		}
		if applied := r.AppliedSeq(); h.Head > applied && h.Head-applied > h.MaxLag {
			h.MaxLag = h.Head - applied
		}
	}
	return h
}

// pickHome assigns a session's home replica (round robin over healthy).
func (mm *MultiMaster) pickHome() (*Replica, error) {
	var candidates []lb.Target
	for _, r := range mm.replicas {
		if r.Healthy() {
			candidates = append(candidates, r)
		}
	}
	t := mm.policy.Pick(candidates)
	if t == nil {
		return nil, ErrReplicaDown
	}
	return t.(*Replica), nil
}
