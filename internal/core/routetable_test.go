package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// newBareParts builds n single-replica sub-clusters with no schema.
func newBareParts(t *testing.T, n int) []*MasterSlave {
	t.Helper()
	parts := make([]*MasterSlave, n)
	for i := range parts {
		rep := NewReplica(ReplicaConfig{Name: fmt.Sprintf("vp%d", i)})
		parts[i] = NewMasterSlave(rep, nil, MasterSlaveConfig{ReadFromMaster: true})
		t.Cleanup(parts[i].Close)
	}
	return parts
}

func wantConfigErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want ErrPartitionConfig (%s), got nil", frag)
	}
	if !errors.Is(err, ErrPartitionConfig) {
		t.Fatalf("error %v is not ErrPartitionConfig", err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestRuleValidationRejectsOverlappingRangeBounds(t *testing.T) {
	parts := newBareParts(t, 2)
	// Descending bounds: bucket 0 would swallow bucket 1's range — the
	// silently-misrouting config this validation exists to reject.
	_, err := NewElasticPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: RangePartition,
		Bounds: []sqltypes.Value{sqltypes.NewInt(100), sqltypes.NewInt(50)},
	}}, 3)
	wantConfigErr(t, err, "strictly ascending")

	// Equal bounds gap the middle bucket entirely.
	_, err = NewElasticPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: RangePartition,
		Bounds: []sqltypes.Value{sqltypes.NewInt(100), sqltypes.NewInt(100)},
	}}, 3)
	wantConfigErr(t, err, "strictly ascending")
}

func TestRuleValidationRejectsWrongBoundCount(t *testing.T) {
	parts := newBareParts(t, 2)
	_, err := NewElasticPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: RangePartition,
		Bounds: []sqltypes.Value{sqltypes.NewInt(10)},
	}}, 4) // needs 3 bounds
	wantConfigErr(t, err, "range bounds")
}

func TestRuleValidationRejectsOverlappingLists(t *testing.T) {
	parts := newBareParts(t, 2)
	_, err := NewElasticPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "region", Strategy: ListPartition,
		Lists: [][]sqltypes.Value{
			{sqltypes.NewString("eu"), sqltypes.NewString("us")},
			{sqltypes.NewString("us")}, // "us" in two buckets
		},
	}}, 2)
	wantConfigErr(t, err, "listed for both")
}

func TestRuleValidationRejectsDuplicateRules(t *testing.T) {
	parts := newBareParts(t, 2)
	_, err := NewElasticPartitioned(parts, []*PartitionRule{
		{Table: "items", Column: "id", Strategy: HashPartition},
		{Table: "items", Column: "other", Strategy: HashPartition},
	}, 2)
	wantConfigErr(t, err, "duplicate rule")
}

func TestValidationRejectsOrphanBuckets(t *testing.T) {
	parts := newBareParts(t, 3)
	// 2 buckets across 3 partitions: someone owns nothing.
	_, err := NewElasticPartitioned(parts, nil, 2)
	wantConfigErr(t, err, "owns no buckets")
}

// TestInstallRoutingRevalidates proves the same validation reruns at every
// epoch install: a build function producing a corrupt table is rejected and
// the published epoch never advances.
func TestInstallRoutingRevalidates(t *testing.T) {
	parts := newBareParts(t, 2)
	pc, err := NewElasticPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: HashPartition,
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := pc.RouteTable().Epoch()

	_, _, err = pc.InstallRouting(func(cur *RouteTable) (*RouteTable, error) {
		bad := &RouteTable{
			parts:    cur.parts,
			nbuckets: cur.nbuckets,
			assign:   make([]int, cur.nbuckets), // all buckets to partition 0
			rules:    cur.rules,
		}
		return bad, nil
	}, nil, nil)
	wantConfigErr(t, err, "owns no buckets")
	if got := pc.RouteTable().Epoch(); got != before {
		t.Fatalf("failed install advanced epoch %d -> %d", before, got)
	}

	// A valid reassign through the same path succeeds and bumps the epoch.
	dest := newBareParts(t, 1)[0]
	prev, installed, err := pc.InstallRouting(func(cur *RouteTable) (*RouteTable, error) {
		return cur.WithReassign([]int{0, 1}, dest, false)
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Epoch() != before || installed.Epoch() != before+1 {
		t.Fatalf("epochs: prev=%d installed=%d want %d -> %d", prev.Epoch(), installed.Epoch(), before, before+1)
	}
	if installed.Owner(0) != dest || installed.Owner(1) != dest {
		t.Fatal("reassigned buckets not owned by dest")
	}
	if got := pc.RouteTable().Epoch(); got != before+1 {
		t.Fatalf("published epoch = %d", got)
	}
}

func TestWithReassignDropEmptyRemovesPartition(t *testing.T) {
	parts := newBareParts(t, 2)
	pc, err := NewElasticPartitioned(parts, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt := pc.RouteTable()
	from := rt.PartIndex(parts[0])
	next, err := rt.WithReassign(rt.OwnedBuckets(from), parts[1], true)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Partitions()) != 1 {
		t.Fatalf("partitions after merge reassign: %d", len(next.Partitions()))
	}
	for b := 0; b < next.NumBuckets(); b++ {
		if next.Owner(b) != parts[1] {
			t.Fatalf("bucket %d not owned by survivor", b)
		}
	}
}

// TestSnapshotQuiesce pins a snapshot, supersedes it, and checks WaitQuiesce
// blocks until the pin releases.
func TestSnapshotQuiesce(t *testing.T) {
	parts := newBareParts(t, 2)
	pc, err := NewElasticPartitioned(parts, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	snap := pc.snapshotTable()
	if err := pc.WaitQuiesce(snap, 20*time.Millisecond); err == nil {
		t.Fatal("WaitQuiesce returned with a live reader")
	}
	done := make(chan error, 1)
	go func() { done <- pc.WaitQuiesce(snap, 2*time.Second) }()
	time.Sleep(5 * time.Millisecond)
	snap.release()
	if err := <-done; err != nil {
		t.Fatalf("WaitQuiesce after release: %v", err)
	}
}

// TestBucketForMatchesEnginePredicate pins the router's BucketFor to the
// engine-side BUCKET() builtin through an ownership predicate round trip:
// rows selected by the predicate are exactly the rows routed to the buckets.
func TestElasticRoutingSpreadsBuckets(t *testing.T) {
	parts := newBareParts(t, 2)
	pc, err := NewElasticPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: HashPartition,
	}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sess := pc.NewSession("test")
	defer sess.Close()
	mustExecC(t, sess.Exec, "CREATE DATABASE shop")
	mustExecC(t, sess.Exec, "USE shop")
	mustExecC(t, sess.Exec, "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)")
	var values []string
	for i := 1; i <= 64; i++ {
		values = append(values, fmt.Sprintf("(%d, 'x')", i))
	}
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES "+strings.Join(values, ", "))

	rt := pc.RouteTable()
	rule := rt.Rule("items")
	total := 0
	for pi, p := range rt.Partitions() {
		n, err := p.Master().Engine().RowCount("shop", "items")
		if err != nil {
			t.Fatal(err)
		}
		total += n
		// Every row on this partition must hash into one of its buckets.
		chk := p.NewSession("chk")
		mustExecC(t, chk.Exec, "USE shop")
		res, err := chk.Exec("SELECT id FROM items")
		chk.Close()
		if err != nil {
			t.Fatal(err)
		}
		owned := make(map[int]bool)
		for _, b := range rt.OwnedBuckets(pi) {
			owned[b] = true
		}
		for _, row := range res.Rows {
			bk, err := rule.BucketFor(row[0], rt.NumBuckets())
			if err != nil {
				t.Fatal(err)
			}
			if !owned[bk] {
				t.Fatalf("row id=%v (bucket %d) stored on partition %d which does not own it", row[0], bk, pi)
			}
		}
	}
	if total != 64 {
		t.Fatalf("total rows = %d", total)
	}
	cnt := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if cnt.Rows[0][0].Int() != 64 {
		t.Fatalf("scatter count = %d", cnt.Rows[0][0].Int())
	}
}
