package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// PartitionStrategy selects how a key maps to a partition (§2.1: "range
// partitioning, list partitioning and hash partitioning").
type PartitionStrategy int

// Partitioning strategies.
const (
	HashPartition PartitionStrategy = iota
	RangePartition
	ListPartition
)

// PartitionRule maps one table's rows onto partitions by a key column.
type PartitionRule struct {
	Table    string // unqualified table name
	Column   string // partition key column
	Strategy PartitionStrategy
	// Bounds are ascending upper bounds for RangePartition: partition i
	// holds keys < Bounds[i]; the last partition holds the rest. Must
	// have len(partitions)-1 entries.
	Bounds []sqltypes.Value
	// Lists enumerate the key values per partition for ListPartition.
	Lists [][]sqltypes.Value
}

// partitionFor maps a key value to a partition index.
func (r *PartitionRule) partitionFor(v sqltypes.Value, n int) (int, error) {
	switch r.Strategy {
	case HashPartition:
		return int(sqltypes.HashValue(v) % uint64(n)), nil
	case RangePartition:
		for i, b := range r.Bounds {
			if sqltypes.Compare(v, b) < 0 {
				return i, nil
			}
		}
		return len(r.Bounds), nil
	case ListPartition:
		for i, list := range r.Lists {
			for _, lv := range list {
				if sqltypes.Equal(lv, v) {
					return i, nil
				}
			}
		}
		return 0, fmt.Errorf("core: key %v not in any partition list for table %s", v, r.Table)
	}
	return 0, fmt.Errorf("core: unknown partition strategy")
}

// ErrCrossPartitionTxn is returned when an explicit transaction on a
// partitioned cluster touches (or cannot be proven to stay within) a single
// partition: atomic cross-partition commit would need distributed 2PC, which
// this middleware (like most of the systems the paper surveys) does not
// provide. "Adding or removing partial replicas ... is a completely open
// problem" (§5.1). Transactions whose every statement routes to one
// partition by key ARE supported — they run entirely on that partition's
// cluster.
var ErrCrossPartitionTxn = errors.New("core: transactions on partitioned clusters must stay within one partition by key (no 2PC)")

// Partitioned shards writes across sub-clusters by key (Figure 2), with
// scatter-gather reads. Each partition is itself a replicated master-slave
// cluster.
type Partitioned struct {
	partitions []*MasterSlave
	rules      map[string]*PartitionRule
	// adm gates statements at the partition router; in layered deployments
	// attach the controller HERE and leave the per-partition clusters
	// unguarded, or every statement pays admission twice.
	adm *admission.Controller
}

// NewPartitioned builds a partitioned cluster from per-partition clusters
// and table rules.
func NewPartitioned(partitions []*MasterSlave, rules []*PartitionRule) (*Partitioned, error) {
	if len(partitions) == 0 {
		return nil, fmt.Errorf("core: no partitions")
	}
	rm := make(map[string]*PartitionRule, len(rules))
	for _, r := range rules {
		if r.Strategy == RangePartition && len(r.Bounds) != len(partitions)-1 {
			return nil, fmt.Errorf("core: table %s: need %d range bounds for %d partitions", r.Table, len(partitions)-1, len(partitions))
		}
		if r.Strategy == ListPartition && len(r.Lists) != len(partitions) {
			return nil, fmt.Errorf("core: table %s: need %d lists for %d partitions", r.Table, len(partitions), len(partitions))
		}
		rm[r.Table] = r
	}
	return &Partitioned{partitions: partitions, rules: rm}, nil
}

// SetAdmission attaches an overload controller to the partition router.
// Call it before serving traffic (it is not synchronized with sessions).
func (pc *Partitioned) SetAdmission(c *admission.Controller) { pc.adm = c }

// Admission returns the router's admission controller (nil when off).
func (pc *Partitioned) Admission() *admission.Controller { return pc.adm }

// Partitions returns the sub-clusters.
func (pc *Partitioned) Partitions() []*MasterSlave {
	return append([]*MasterSlave(nil), pc.partitions...)
}

// Close shuts down all partitions.
func (pc *Partitioned) Close() {
	for _, p := range pc.partitions {
		p.Close()
	}
}

// NewConn implements Cluster.
func (pc *Partitioned) NewConn(user string) (Conn, error) {
	return pc.NewSession(user), nil
}

// Authenticate implements Cluster: credentials are checked against the
// first partition (schema statements broadcast, so user state is uniform
// when provisioned uniformly).
func (pc *Partitioned) Authenticate(user, password string) error {
	return pc.partitions[0].Authenticate(user, password)
}

// Health implements Cluster, aggregated over every partition.
func (pc *Partitioned) Health() Health {
	h := Health{Topology: "partitioned"}
	for _, p := range pc.partitions {
		ph := p.Health()
		h.Replicas += ph.Replicas
		h.HealthyReplicas += ph.HealthyReplicas
		if ph.Head > h.Head {
			h.Head = ph.Head
		}
		if ph.MaxLag > h.MaxLag {
			h.MaxLag = ph.MaxLag
		}
	}
	return h
}

// PSession is a client session on a partitioned cluster.
type PSession struct {
	pc   *Partitioned
	user string
	mu   sync.Mutex
	subs []*MSSession
	// cons shadows the session's read guarantee (the per-partition sessions
	// hold the authoritative copy) so the router can classify reads for
	// admission without reaching into a sub-session.
	cons Consistency
	// stmtTimeout is the per-statement deadline budget (SET DEADLINE); it
	// bounds the router-level admission wait. The forwarded SET DEADLINE
	// gives the per-partition sessions the same budget for execution.
	stmtTimeout time.Duration
	// Explicit transactions bind lazily to the partition of their first
	// keyed statement and must stay there (single-partition transactions;
	// cross-partition commits would need 2PC).
	inTxn   bool
	txnSub  *MSSession
	txnPart int
}

// NewSession opens a session across all partitions.
func (pc *Partitioned) NewSession(user string) *PSession {
	subs := make([]*MSSession, len(pc.partitions))
	for i, p := range pc.partitions {
		subs[i] = p.NewSession(user)
	}
	return &PSession{
		pc: pc, user: user, subs: subs,
		cons:        pc.partitions[0].cfg.Consistency,
		stmtTimeout: pc.partitions[0].cfg.StatementTimeout,
	}
}

// stmtDeadline converts the session's statement-timeout budget into an
// absolute deadline for the statement starting now; zero means unbounded.
func (ps *PSession) stmtDeadline() time.Time {
	if ps.stmtTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(ps.stmtTimeout)
}

// Close releases all per-partition sessions.
func (ps *PSession) Close() {
	for _, s := range ps.subs {
		s.Close()
	}
}

// Exec parses and routes a statement with optional ? bind arguments
// (through the statement cache).
func (ps *PSession) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return ps.ExecStmtArgs(st, args...)
}

// Query implements Conn; routing is decided by the statement itself.
func (ps *PSession) Query(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return ps.Exec(sql, args...)
}

// ExecStmtArgs routes a pre-parsed statement with bind arguments. The
// partition router inspects literal key values, so arguments are inlined
// into the AST up front; the per-partition clusters then see standalone
// statements.
func (ps *PSession) ExecStmtArgs(st sqlparse.Statement, args ...sqltypes.Value) (*engine.Result, error) {
	if len(args) > 0 {
		bound, err := sqlparse.BindParams(st, args)
		if err != nil {
			return nil, err
		}
		st = bound
	}
	return ps.ExecStmt(st)
}

// ExecStmt routes a pre-parsed statement by partition key.
func (ps *PSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	switch sd := st.(type) {
	case *sqlparse.BeginTxn:
		if ps.inTxn {
			return nil, fmt.Errorf("%w: transaction already in progress", ErrTxnState)
		}
		// Bind lazily: the partition is unknown until the first keyed
		// statement.
		ps.inTxn = true
		ps.txnSub = nil
		return &engine.Result{}, nil
	case *sqlparse.CommitTxn, *sqlparse.RollbackTxn:
		if !ps.inTxn {
			return nil, fmt.Errorf("%w: no transaction in progress", ErrTxnState)
		}
		sub := ps.txnSub
		ps.inTxn = false
		ps.txnSub = nil
		if sub == nil {
			return &engine.Result{}, nil // empty transaction
		}
		return sub.ExecStmt(st)
	case *sqlparse.UseDatabase:
		return ps.broadcast(st)
	case *sqlparse.SetDeadline:
		// Record the router-level budget and forward: the per-partition
		// sessions bound replica execution with the same budget.
		ps.stmtTimeout = sd.D
		for _, sub := range ps.subs {
			if _, err := sub.ExecStmt(sd); err != nil {
				return nil, err
			}
		}
		return &engine.Result{}, nil
	case *sqlparse.SetConsistency:
		c, err := ParseConsistency(sd.Level)
		if err != nil {
			return nil, err
		}
		ps.cons = c
		return ps.broadcast(st)
	}
	// Everything else is real work: gate it through the router's admission
	// controller (in-transaction statements count as writes — they hold
	// locks on the bound partition).
	class := admission.ClassWrite
	if !ps.inTxn && st.IsRead() {
		if ps.cons == ReadAny {
			class = admission.ClassReadAny
		} else {
			class = admission.ClassReadSession
		}
	}
	slot, err := ps.pc.adm.Acquire(ps.user, class, ps.stmtDeadline())
	if err != nil {
		return nil, err
	}
	res, err := ps.execRouted(st)
	slot.Done(err)
	return res, err
}

// execRouted dispatches an admitted statement to the partition layer.
func (ps *PSession) execRouted(st sqlparse.Statement) (*engine.Result, error) {
	if ps.inTxn {
		return ps.execInTxn(st)
	}
	switch s := st.(type) {
	case *sqlparse.Insert:
		return ps.execInsert(s)
	case *sqlparse.Update:
		return ps.routeByWhere(s, s.Table.Name, s.Where)
	case *sqlparse.Delete:
		return ps.routeByWhere(s, s.Table.Name, s.Where)
	case *sqlparse.Select:
		return ps.execSelect(s)
	default:
		// DDL and everything else goes everywhere.
		return ps.broadcast(st)
	}
}

// execInTxn routes a statement inside a single-partition transaction: every
// keyed statement must resolve to the same single partition, and the first
// one binds the transaction (forwarding the deferred BEGIN). Reads that
// touch no partitioned table route to the bound partition — or, before
// binding, to partition 0 without binding (they see committed state only,
// which is sound because the transaction has written nothing yet).
func (ps *PSession) execInTxn(st sqlparse.Statement) (*engine.Result, error) {
	if ps.agnosticRead(st) {
		if ps.txnSub != nil {
			return ps.txnSub.ExecStmt(st)
		}
		return ps.subs[0].ExecStmt(st)
	}
	p, ok := ps.partitionOf(st)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrCrossPartitionTxn, st.SQL()) // lint:rawsql-ok error-message rendering; text never leaves the process
	}
	if ps.txnSub == nil {
		sub := ps.subs[p]
		if _, err := sub.ExecStmt(&sqlparse.BeginTxn{}); err != nil {
			return nil, err
		}
		ps.txnSub = sub
		ps.txnPart = p
	} else if p != ps.txnPart {
		return nil, fmt.Errorf("%w: statement routes to partition %d, transaction is bound to %d", ErrCrossPartitionTxn, p, ps.txnPart)
	}
	return ps.txnSub.ExecStmt(st)
}

// agnosticRead reports whether st is a read that touches no partitioned
// table (SELECT with no FROM, or from a fully replicated table) and may
// therefore run on any partition.
func (ps *PSession) agnosticRead(st sqlparse.Statement) bool {
	s, ok := st.(*sqlparse.Select)
	if !ok || !st.IsRead() {
		return false
	}
	if s.NoTable {
		return true
	}
	return ps.pc.rules[s.From.Name] == nil && (s.Join == nil || ps.pc.rules[s.Join.Table.Name] == nil)
}

// partitionOf resolves the single partition a statement provably routes to
// by its key. Writes to unpartitioned (fully replicated) tables never
// resolve: they must replicate everywhere and therefore cannot join a
// single-partition transaction.
func (ps *PSession) partitionOf(st sqlparse.Statement) (int, bool) {
	keyed := func(table string, where sqlparse.Expr) (int, bool) {
		rule := ps.pc.rules[table]
		if rule == nil {
			return 0, false
		}
		v, ok := extractKeyEquality(where, rule.Column)
		if !ok {
			return 0, false
		}
		p, err := rule.partitionFor(v, len(ps.subs))
		if err != nil {
			return 0, false
		}
		return p, true
	}
	switch s := st.(type) {
	case *sqlparse.Insert:
		rule := ps.pc.rules[s.Table.Name]
		if rule == nil {
			return 0, false
		}
		keyIdx := -1
		for i, c := range s.Columns {
			if equalFoldASCII(c, rule.Column) {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return 0, false
		}
		part := -1
		for _, row := range s.Rows {
			lit, ok := row[keyIdx].(*sqlparse.Literal)
			if !ok {
				return 0, false
			}
			p, err := rule.partitionFor(lit.Val, len(ps.subs))
			if err != nil {
				return 0, false
			}
			if part >= 0 && p != part {
				return 0, false // rows split across partitions
			}
			part = p
		}
		if part < 0 {
			return 0, false
		}
		return part, true
	case *sqlparse.Update:
		return keyed(s.Table.Name, s.Where)
	case *sqlparse.Delete:
		return keyed(s.Table.Name, s.Where)
	case *sqlparse.Select:
		if s.NoTable {
			return 0, false
		}
		return keyed(s.From.Name, s.Where)
	}
	return 0, false
}

// broadcast runs the statement on every partition, returning the first
// result with summed RowsAffected.
func (ps *PSession) broadcast(st sqlparse.Statement) (*engine.Result, error) {
	type out struct {
		res *engine.Result
		err error
	}
	outs := make([]out, len(ps.subs))
	var wg sync.WaitGroup
	for i, sub := range ps.subs {
		wg.Add(1)
		go func(i int, sub *MSSession) {
			defer wg.Done()
			r, err := sub.ExecStmt(st)
			outs[i] = out{res: r, err: err}
		}(i, sub)
	}
	wg.Wait()
	total := &engine.Result{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		total.RowsAffected += o.res.RowsAffected
		if total.Columns == nil {
			total.Columns = o.res.Columns
		}
	}
	return total, nil
}

// execInsert splits rows by partition key and runs the per-partition
// inserts in parallel ("updates can be done in parallel to partitioned data
// segments", §2.1).
func (ps *PSession) execInsert(ins *sqlparse.Insert) (*engine.Result, error) {
	rule := ps.pc.rules[ins.Table.Name]
	if rule == nil {
		return ps.broadcast(ins) // unpartitioned table: replicate everywhere
	}
	keyIdx := -1
	for i, c := range ins.Columns {
		if equalFoldASCII(c, rule.Column) {
			keyIdx = i
			break
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("%w: INSERT into partitioned table %s must supply key column %s", ErrUnsupportedStatement, ins.Table.Name, rule.Column)
	}
	groups := make(map[int][][]sqlparse.Expr)
	for _, row := range ins.Rows {
		lit, ok := row[keyIdx].(*sqlparse.Literal)
		if !ok {
			return nil, fmt.Errorf("%w: partition key must be a literal in INSERT", ErrUnsupportedStatement)
		}
		p, err := rule.partitionFor(lit.Val, len(ps.subs))
		if err != nil {
			return nil, err
		}
		groups[p] = append(groups[p], row)
	}
	total := &engine.Result{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for p, rows := range groups {
		sub := ps.subs[p]
		stmt := &sqlparse.Insert{Table: ins.Table, Columns: ins.Columns, Rows: rows}
		wg.Add(1)
		go func(sub *MSSession, stmt *sqlparse.Insert) {
			defer wg.Done()
			res, err := sub.ExecStmt(stmt)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			if err == nil {
				total.RowsAffected += res.RowsAffected
				if res.LastInsertID > total.LastInsertID {
					total.LastInsertID = res.LastInsertID
				}
			}
		}(sub, stmt)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return total, nil
}

// routeByWhere routes keyed statements to one partition, scattering
// otherwise.
func (ps *PSession) routeByWhere(st sqlparse.Statement, table string, where sqlparse.Expr) (*engine.Result, error) {
	rule := ps.pc.rules[table]
	if rule == nil {
		return ps.broadcast(st)
	}
	if v, ok := extractKeyEquality(where, rule.Column); ok {
		p, err := rule.partitionFor(v, len(ps.subs))
		if err != nil {
			return nil, err
		}
		return ps.subs[p].ExecStmt(st)
	}
	return ps.broadcast(st)
}

// execSelect routes keyed selects to one partition and scatter-gathers the
// rest, merging rows and re-applying ORDER BY / LIMIT / aggregates at the
// middleware ("read latency can also be improved by exploiting intra-query
// parallelism", §2.1).
func (ps *PSession) execSelect(sel *sqlparse.Select) (*engine.Result, error) {
	if sel.NoTable {
		return ps.subs[0].ExecStmt(sel)
	}
	rule := ps.pc.rules[sel.From.Name]
	if rule != nil {
		if v, ok := extractKeyEquality(sel.Where, rule.Column); ok {
			p, err := rule.partitionFor(v, len(ps.subs))
			if err != nil {
				return nil, err
			}
			return ps.subs[p].ExecStmt(sel)
		}
	} else {
		// Unpartitioned (fully replicated) table: any partition serves it.
		return ps.subs[0].ExecStmt(sel)
	}

	// Scatter: strip LIMIT/OFFSET (re-applied after merge); sub-queries
	// keep ORDER BY so per-partition results arrive sorted.
	scatter := *sel
	scatter.Limit = -1
	scatter.Offset = 0

	hasAgg := false
	for _, it := range sel.Items {
		if !it.Star {
			if f, ok := it.Expr.(*sqlparse.FuncExpr); ok {
				switch f.Name {
				case "COUNT", "SUM", "MIN", "MAX":
					hasAgg = true
				case "AVG":
					return nil, fmt.Errorf("%w: AVG over scattered partitions; use SUM and COUNT", ErrUnsupportedStatement)
				}
			}
		}
	}
	if hasAgg && len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("%w: GROUP BY over scattered partitions", ErrUnsupportedStatement)
	}

	type out struct {
		res *engine.Result
		err error
	}
	outs := make([]out, len(ps.subs))
	var wg sync.WaitGroup
	for i, sub := range ps.subs {
		wg.Add(1)
		go func(i int, sub *MSSession) {
			defer wg.Done()
			r, err := sub.ExecStmt(&scatter)
			outs[i] = out{res: r, err: err}
		}(i, sub)
	}
	wg.Wait()

	merged := &engine.Result{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if merged.Columns == nil {
			merged.Columns = o.res.Columns
		}
		merged.Rows = append(merged.Rows, o.res.Rows...)
	}
	if hasAgg {
		return mergeAggregates(sel, merged)
	}
	if len(sel.OrderBy) > 0 {
		if err := sortResult(merged, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if sel.Offset > 0 {
		if sel.Offset >= int64(len(merged.Rows)) {
			merged.Rows = nil
		} else {
			merged.Rows = merged.Rows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && int64(len(merged.Rows)) > sel.Limit {
		merged.Rows = merged.Rows[:sel.Limit]
	}
	return merged, nil
}

// mergeAggregates folds per-partition aggregate rows into one.
func mergeAggregates(sel *sqlparse.Select, merged *engine.Result) (*engine.Result, error) {
	out := &engine.Result{Columns: merged.Columns}
	row := make(sqltypes.Row, len(sel.Items))
	for i, it := range sel.Items {
		f, _ := it.Expr.(*sqlparse.FuncExpr)
		for _, r := range merged.Rows {
			v := r[i]
			switch {
			case row[i].IsNull():
				row[i] = v
			case f != nil && (f.Name == "COUNT" || f.Name == "SUM"):
				sum, err := sqltypes.Arith("+", row[i], v)
				if err != nil {
					return nil, err
				}
				row[i] = sum
			case f != nil && f.Name == "MIN":
				if sqltypes.Compare(v, row[i]) < 0 {
					row[i] = v
				}
			case f != nil && f.Name == "MAX":
				if sqltypes.Compare(v, row[i]) > 0 {
					row[i] = v
				}
			}
		}
	}
	out.Rows = []sqltypes.Row{row}
	return out, nil
}

// sortResult re-sorts merged rows by ORDER BY columns that appear in the
// projection.
func sortResult(res *engine.Result, keys []sqlparse.OrderItem) error {
	idx := make([]int, 0, len(keys))
	desc := make([]bool, 0, len(keys))
	for _, k := range keys {
		cr, ok := k.Expr.(*sqlparse.ColumnRef)
		if !ok {
			return fmt.Errorf("core: scattered ORDER BY must use plain columns")
		}
		found := -1
		for i, c := range res.Columns {
			if equalFoldASCII(c, cr.Name) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("core: scattered ORDER BY column %q must be selected", cr.Name)
		}
		idx = append(idx, found)
		desc = append(desc, k.Desc)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for k, col := range idx {
			c := sqltypes.Compare(res.Rows[i][col], res.Rows[j][col])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// extractKeyEquality finds `column = literal` in an AND-connected WHERE.
func extractKeyEquality(e sqlparse.Expr, column string) (sqltypes.Value, bool) {
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND":
			if v, ok := extractKeyEquality(x.Left, column); ok {
				return v, true
			}
			return extractKeyEquality(x.Right, column)
		case "=":
			if cr, ok := x.Left.(*sqlparse.ColumnRef); ok && equalFoldASCII(cr.Name, column) {
				if lit, ok := x.Right.(*sqlparse.Literal); ok {
					return lit.Val, true
				}
			}
			if cr, ok := x.Right.(*sqlparse.ColumnRef); ok && equalFoldASCII(cr.Name, column) {
				if lit, ok := x.Left.(*sqlparse.Literal); ok {
					return lit.Val, true
				}
			}
		}
	}
	return sqltypes.Null, false
}

// Prepare implements Conn: parse once, execute many with fresh bindings
// (the partition router re-binds per execution, so one handle can hit a
// different partition per call).
func (ps *PSession) Prepare(sql string) (*Stmt, error) { return newStmt(ps, sql) }

// Begin implements Conn: opens a single-partition transaction that binds to
// the partition of its first keyed statement.
func (ps *PSession) Begin() error {
	_, err := ps.ExecStmt(&sqlparse.BeginTxn{})
	return err
}

// Commit implements Conn.
func (ps *PSession) Commit() error {
	_, err := ps.ExecStmt(&sqlparse.CommitTxn{})
	return err
}

// Rollback implements Conn.
func (ps *PSession) Rollback() error {
	_, err := ps.ExecStmt(&sqlparse.RollbackTxn{})
	return err
}

// SetIsolation implements Conn across every partition session.
func (ps *PSession) SetIsolation(level string) error {
	lv, err := normalizeIsolation(level)
	if err != nil {
		return err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, sub := range ps.subs {
		if _, err := sub.ExecStmt(&sqlparse.SetIsolation{Level: lv}); err != nil {
			return err
		}
	}
	return nil
}

// SetConsistency implements Conn across every partition session.
func (ps *PSession) SetConsistency(c Consistency) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.cons = c
	for _, sub := range ps.subs {
		if err := sub.SetConsistency(c); err != nil {
			return err
		}
	}
	return nil
}

// equalFoldASCII compares identifiers case-insensitively.
func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
