package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// PartitionStrategy selects how a key maps to a bucket (§2.1: "range
// partitioning, list partitioning and hash partitioning").
type PartitionStrategy int

// Partitioning strategies.
const (
	HashPartition PartitionStrategy = iota
	RangePartition
	ListPartition
)

// PartitionRule maps one table's rows onto virtual buckets by a key column.
// Buckets (not partitions) are the unit of the rule: the routing table's
// assignment vector maps buckets onto partitions, so elasticity moves
// buckets without ever rewriting rules.
type PartitionRule struct {
	Table    string // unqualified table name
	Column   string // partition key column
	Strategy PartitionStrategy
	// Bounds are ascending upper bounds for RangePartition: bucket i holds
	// keys < Bounds[i]; the last bucket holds the rest. Must have
	// nbuckets-1 strictly ascending entries.
	Bounds []sqltypes.Value
	// Lists enumerate the key values per bucket for ListPartition.
	Lists [][]sqltypes.Value
}

// partitionFor maps a key value to a bucket index out of n.
func (r *PartitionRule) partitionFor(v sqltypes.Value, n int) (int, error) {
	switch r.Strategy {
	case HashPartition:
		return int(sqltypes.HashValue(v) % uint64(n)), nil
	case RangePartition:
		for i, b := range r.Bounds {
			if sqltypes.Compare(v, b) < 0 {
				return i, nil
			}
		}
		return len(r.Bounds), nil
	case ListPartition:
		for i, list := range r.Lists {
			for _, lv := range list {
				if sqltypes.Equal(lv, v) {
					return i, nil
				}
			}
		}
		return 0, fmt.Errorf("core: key %v not in any partition list for table %s", v, r.Table)
	}
	return 0, fmt.Errorf("core: unknown partition strategy")
}

// BucketFor maps a key value to its bucket out of nbuckets — the exported
// form the rebalancer uses to filter rows and tail events by bucket with
// exactly the router's arithmetic.
func (r *PartitionRule) BucketFor(v sqltypes.Value, nbuckets int) (int, error) {
	return r.partitionFor(v, nbuckets)
}

// ErrCrossPartitionTxn is returned when an explicit transaction on a
// partitioned cluster touches (or cannot be proven to stay within) a single
// partition: atomic cross-partition commit would need distributed 2PC, which
// this middleware (like most of the systems the paper surveys) does not
// provide. "Adding or removing partial replicas ... is a completely open
// problem" (§5.1). Transactions whose every statement routes to one
// partition by key ARE supported — they run entirely on that partition's
// cluster.
var ErrCrossPartitionTxn = errors.New("core: transactions on partitioned clusters must stay within one partition by key (no 2PC)")

// errRouteRetry is the internal signal that a statement lost a race with a
// routing-table install between snapshotting and taking its write gates; the
// router retries against the fresh table.
var errRouteRetry = errors.New("core: routing epoch changed mid-statement")

// maxRouteRetries bounds how often one statement re-routes after losing
// races with routing installs before giving up with ErrRangeMoved.
const maxRouteRetries = 10

// Partitioned shards writes across sub-clusters by key (Figure 2), with
// scatter-gather reads. Each partition is itself a replicated master-slave
// cluster. The partition map is a versioned, epoch-stamped RouteTable that
// sessions snapshot per statement — live migrations install successor
// tables while traffic continues.
type Partitioned struct {
	// adm gates statements at the partition router; in layered deployments
	// attach the controller HERE and leave the per-partition clusters
	// unguarded, or every statement pays admission twice.
	adm *admission.Controller

	// mu is the routing lock: it serializes routing-table installs. The
	// repllint lockedcall *Epoch convention keys off it.
	mu    sync.Mutex
	table atomic.Pointer[RouteTable]

	gateMu sync.Mutex
	gates  map[*MasterSlave]*sync.RWMutex

	stateMu   sync.Mutex
	allParts  map[*MasterSlave]bool
	marks     map[*MasterSlave]bool
	markCount int
	migrating int
}

// NewPartitioned builds a partitioned cluster from per-partition clusters
// and table rules, with one bucket per partition (the static topology the
// paper describes; use NewElasticPartitioned for migratable bucket counts).
func NewPartitioned(partitions []*MasterSlave, rules []*PartitionRule) (*Partitioned, error) {
	return NewElasticPartitioned(partitions, rules, len(partitions))
}

// NewElasticPartitioned builds a partitioned cluster routing through
// nbuckets virtual buckets spread contiguously across the partitions. More
// buckets than partitions means Split/Migrate/Merge can move fractions of a
// partition's key space. All rules are validated against the bucket count
// (typed ErrPartitionConfig) — the same validation reruns at every
// routing-table install.
func NewElasticPartitioned(partitions []*MasterSlave, rules []*PartitionRule, nbuckets int) (*Partitioned, error) {
	if nbuckets <= 0 {
		nbuckets = len(partitions)
	}
	rm := make(map[string]*PartitionRule, len(rules))
	for _, r := range rules {
		if rm[r.Table] != nil {
			return nil, fmt.Errorf("%w: duplicate rule for table %s", ErrPartitionConfig, r.Table)
		}
		rm[r.Table] = r
	}
	assign := make([]int, nbuckets)
	for b := range assign {
		assign[b] = b * len(partitions) / max(nbuckets, 1)
	}
	rt := &RouteTable{epoch: 1, parts: partitions, nbuckets: nbuckets, assign: assign, rules: rm}
	if err := rt.validate(); err != nil {
		return nil, err
	}
	pc := &Partitioned{
		gates:    make(map[*MasterSlave]*sync.RWMutex),
		allParts: make(map[*MasterSlave]bool),
		marks:    make(map[*MasterSlave]bool),
	}
	pc.table.Store(rt)
	pc.registerParts(rt)
	return pc, nil
}

// SetAdmission attaches an overload controller to the partition router.
// Call it before serving traffic (it is not synchronized with sessions).
func (pc *Partitioned) SetAdmission(c *admission.Controller) { pc.adm = c }

// Admission returns the router's admission controller (nil when off).
func (pc *Partitioned) Admission() *admission.Controller { return pc.adm }

// Partitions returns the sub-clusters of the current routing table.
func (pc *Partitioned) Partitions() []*MasterSlave {
	return pc.table.Load().Partitions()
}

// ForgetPartition drops a retired sub-cluster from the router's ownership
// bookkeeping (Close will no longer touch it). The rebalancer calls this
// after a Merge hands the drained partition back to the caller.
func (pc *Partitioned) ForgetPartition(p *MasterSlave) {
	pc.SetContaminated(p, false)
	pc.stateMu.Lock()
	delete(pc.allParts, p)
	pc.stateMu.Unlock()
	pc.gateMu.Lock()
	delete(pc.gates, p)
	pc.gateMu.Unlock()
}

// Close shuts down every partition that was ever a member.
func (pc *Partitioned) Close() {
	pc.stateMu.Lock()
	parts := make([]*MasterSlave, 0, len(pc.allParts))
	for p := range pc.allParts {
		parts = append(parts, p)
	}
	pc.stateMu.Unlock()
	for _, p := range parts {
		p.Close()
	}
}

// NewConn implements Cluster.
func (pc *Partitioned) NewConn(user string) (Conn, error) {
	return pc.NewSession(user), nil
}

// Authenticate implements Cluster: credentials are checked against the
// first partition (schema statements broadcast, so user state is uniform
// when provisioned uniformly).
func (pc *Partitioned) Authenticate(user, password string) error {
	return pc.table.Load().parts[0].Authenticate(user, password)
}

// Health implements Cluster, aggregated over every partition.
func (pc *Partitioned) Health() Health {
	h := Health{Topology: "partitioned"}
	for _, p := range pc.table.Load().parts {
		ph := p.Health()
		h.Replicas += ph.Replicas
		h.HealthyReplicas += ph.HealthyReplicas
		if ph.Head > h.Head {
			h.Head = ph.Head
		}
		if ph.MaxLag > h.MaxLag {
			h.MaxLag = ph.MaxLag
		}
	}
	return h
}

// PSession is a client session on a partitioned cluster. Sub-sessions are
// created lazily per partition (a migration can add partitions mid-session)
// with the session's settings replayed onto late arrivals.
type PSession struct {
	pc   *Partitioned
	user string
	mu   sync.Mutex
	subs map[*MasterSlave]*MSSession
	// cons shadows the session's read guarantee (the per-partition sessions
	// hold the authoritative copy) so the router can classify reads for
	// admission without reaching into a sub-session.
	cons    Consistency
	consSet bool
	isoStmt *sqlparse.SetIsolation
	useStmt *sqlparse.UseDatabase
	// stmtTimeout is the per-statement deadline budget (SET DEADLINE); it
	// bounds the router-level admission wait. The forwarded SET DEADLINE
	// gives the per-partition sessions the same budget for execution.
	stmtTimeout time.Duration
	deadlineSet bool
	// Explicit transactions bind lazily to the partition of their first
	// keyed statement and must stay there (single-partition transactions;
	// cross-partition commits would need 2PC). The bound owner is tracked
	// by identity — not index — because installs reindex partitions; the
	// touched buckets are revalidated against the live table at every
	// statement and at COMMIT, surfacing ErrRangeMoved when a migration
	// moved them mid-transaction.
	inTxn      bool
	txnSub     *MSSession
	txnOwner   *MasterSlave
	txnEpoch   uint64
	txnBuckets map[int]bool
}

// NewSession opens a session on the partitioned cluster.
func (pc *Partitioned) NewSession(user string) *PSession {
	p0 := pc.table.Load().parts[0]
	return &PSession{
		pc: pc, user: user,
		subs:        make(map[*MasterSlave]*MSSession),
		cons:        p0.cfg.Consistency,
		stmtTimeout: p0.cfg.StatementTimeout,
	}
}

// sub returns the session on partition p, creating it (and replaying the
// session's settings onto it) on first use.
func (ps *PSession) sub(p *MasterSlave) (*MSSession, error) {
	if s := ps.subs[p]; s != nil {
		return s, nil
	}
	s := p.NewSession(ps.user)
	replay := func(st sqlparse.Statement) error {
		_, err := s.ExecStmt(st)
		return err
	}
	var err error
	if ps.useStmt != nil {
		err = replay(ps.useStmt)
	}
	if err == nil && ps.isoStmt != nil {
		err = replay(ps.isoStmt)
	}
	if err == nil && ps.consSet {
		err = s.SetConsistency(ps.cons)
	}
	if err == nil && ps.deadlineSet {
		err = replay(&sqlparse.SetDeadline{D: ps.stmtTimeout})
	}
	if err != nil {
		s.Close()
		return nil, err
	}
	ps.subs[p] = s
	return s, nil
}

// stmtDeadline converts the session's statement-timeout budget into an
// absolute deadline for the statement starting now; zero means unbounded.
func (ps *PSession) stmtDeadline() time.Time {
	if ps.stmtTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(ps.stmtTimeout)
}

// Close releases all per-partition sessions.
func (ps *PSession) Close() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, s := range ps.subs {
		s.Close()
	}
	ps.subs = make(map[*MasterSlave]*MSSession)
}

// Exec parses and routes a statement with optional ? bind arguments
// (through the statement cache).
func (ps *PSession) Exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return ps.ExecStmtArgs(st, args...)
}

// Query implements Conn; routing is decided by the statement itself.
func (ps *PSession) Query(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	return ps.Exec(sql, args...)
}

// ExecStmtArgs routes a pre-parsed statement with bind arguments. The
// partition router inspects literal key values, so arguments are inlined
// into the AST up front; the per-partition clusters then see standalone
// statements.
func (ps *PSession) ExecStmtArgs(st sqlparse.Statement, args ...sqltypes.Value) (*engine.Result, error) {
	if len(args) > 0 {
		bound, err := sqlparse.BindParams(st, args)
		if err != nil {
			return nil, err
		}
		st = bound
	}
	return ps.ExecStmt(st)
}

// forwardAll forwards a session-settings statement to every sub-session
// already open (late-created subs get it replayed at creation).
func (ps *PSession) forwardAll(st sqlparse.Statement) (*engine.Result, error) {
	for _, sub := range ps.subs {
		if _, err := sub.ExecStmt(st); err != nil {
			return nil, err
		}
	}
	return &engine.Result{}, nil
}

// ExecStmt routes a pre-parsed statement by partition key.
func (ps *PSession) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	switch sd := st.(type) {
	case *sqlparse.BeginTxn:
		if ps.inTxn {
			return nil, fmt.Errorf("%w: transaction already in progress", ErrTxnState)
		}
		// Bind lazily: the partition is unknown until the first keyed
		// statement.
		ps.inTxn = true
		ps.txnSub = nil
		ps.txnOwner = nil
		ps.txnBuckets = nil
		return &engine.Result{}, nil
	case *sqlparse.CommitTxn, *sqlparse.RollbackTxn:
		if !ps.inTxn {
			return nil, fmt.Errorf("%w: no transaction in progress", ErrTxnState)
		}
		sub, owner, buckets := ps.txnSub, ps.txnOwner, ps.txnBuckets
		ps.inTxn = false
		ps.txnSub = nil
		ps.txnOwner = nil
		ps.txnBuckets = nil
		if sub == nil {
			return &engine.Result{}, nil // empty transaction
		}
		if _, isCommit := st.(*sqlparse.CommitTxn); isCommit {
			return ps.commitTxn(sub, owner, buckets)
		}
		return sub.ExecStmt(st)
	case *sqlparse.UseDatabase:
		ps.useStmt = sd
		return ps.forwardAll(st)
	case *sqlparse.SetIsolation:
		ps.isoStmt = sd
		return ps.forwardAll(st)
	case *sqlparse.SetDeadline:
		// Record the router-level budget and forward: the per-partition
		// sessions bound replica execution with the same budget.
		ps.stmtTimeout = sd.D
		ps.deadlineSet = true
		return ps.forwardAll(st)
	case *sqlparse.SetConsistency:
		c, err := ParseConsistency(sd.Level)
		if err != nil {
			return nil, err
		}
		ps.cons = c
		ps.consSet = true
		return ps.forwardAll(st)
	}
	// Everything else is real work: gate it through the router's admission
	// controller (in-transaction statements count as writes — they hold
	// locks on the bound partition).
	class := admission.ClassWrite
	if !ps.inTxn && st.IsRead() {
		if ps.cons == ReadAny {
			class = admission.ClassReadAny
		} else {
			class = admission.ClassReadSession
		}
	}
	slot, err := ps.pc.adm.Acquire(ps.user, class, ps.stmtDeadline())
	if err != nil {
		return nil, err
	}
	res, err := ps.execRouted(st)
	slot.Done(err)
	return res, err
}

// execRouted dispatches an admitted statement to the partition layer,
// re-routing (bounded) when the statement loses a race with a routing
// install between snapshot and gate acquisition.
func (ps *PSession) execRouted(st sqlparse.Statement) (*engine.Result, error) {
	if ps.inTxn {
		return ps.execInTxn(st)
	}
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		res, err := ps.execOnce(st)
		if !errors.Is(err, errRouteRetry) {
			return res, err
		}
	}
	return nil, fmt.Errorf("%w: statement kept losing races with routing installs", ErrRangeMoved)
}

// execOnce runs one routing attempt under a pinned routing snapshot.
func (ps *PSession) execOnce(st sqlparse.Statement) (*engine.Result, error) {
	rt := ps.pc.snapshotTable()
	defer rt.release()
	switch s := st.(type) {
	case *sqlparse.Insert:
		return ps.execInsert(rt, s)
	case *sqlparse.Update:
		return ps.routeByWhere(rt, s, s.Table.Name, s.Where)
	case *sqlparse.Delete:
		return ps.routeByWhere(rt, s, s.Table.Name, s.Where)
	case *sqlparse.Select:
		return ps.execSelect(rt, s)
	default:
		// DDL and everything else goes everywhere.
		if st.IsRead() {
			return ps.fanout(rt, false, func(int) sqlparse.Statement { return st })
		}
		return ps.fanout(rt, true, func(int) sqlparse.Statement { return st })
	}
}

// acquireGates takes the shared write gates of the given partitions (in
// table order) and revalidates the routing snapshot afterwards: a fence that
// slipped in between the snapshot and the gates means the statement must
// re-route, signalled as errRouteRetry.
func (ps *PSession) acquireGates(rt *RouteTable, parts []*MasterSlave) (func(), error) {
	ordered := append([]*MasterSlave(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return rt.PartIndex(ordered[i]) < rt.PartIndex(ordered[j]) })
	held := make([]*sync.RWMutex, 0, len(ordered))
	for _, p := range ordered {
		g := ps.pc.gate(p)
		g.RLock()
		held = append(held, g)
	}
	release := func() {
		for _, g := range held {
			g.RUnlock()
		}
	}
	if ps.pc.table.Load() != rt {
		release()
		return nil, errRouteRetry
	}
	return release, nil
}

// commitTxn commits a bound transaction under the owner partition's write
// gate, first revalidating that every touched bucket is still owned by the
// bound partition. A bucket moved by a migration poisons the transaction
// with the retryable ErrRangeMoved (the client replays it against the new
// owner); the gate ensures the commit's binlog event lands before any
// cutover's frozen head.
func (ps *PSession) commitTxn(sub *MSSession, owner *MasterSlave, buckets map[int]bool) (*engine.Result, error) {
	for attempt := 0; attempt < maxRouteRetries; attempt++ {
		rt := ps.pc.snapshotTable()
		stale := rt.PartIndex(owner) < 0
		if !stale {
			for b := range buckets {
				if rt.Owner(b) != owner {
					stale = true
					break
				}
			}
		}
		if stale {
			rt.release()
			_, _ = sub.ExecStmt(&sqlparse.RollbackTxn{})
			return nil, fmt.Errorf("%w: transaction wrote to a key range that has since migrated", ErrRangeMoved)
		}
		g := ps.pc.gate(owner)
		g.RLock()
		if ps.pc.table.Load() != rt {
			g.RUnlock()
			rt.release()
			continue
		}
		res, err := sub.ExecStmt(&sqlparse.CommitTxn{})
		g.RUnlock()
		rt.release()
		return res, err
	}
	_, _ = sub.ExecStmt(&sqlparse.RollbackTxn{})
	return nil, fmt.Errorf("%w: commit kept losing races with routing installs", ErrRangeMoved)
}

// poisonTxn rolls the bound transaction back after a migration moved one of
// its touched buckets and surfaces the typed retryable error.
func (ps *PSession) poisonTxn() (*engine.Result, error) {
	sub := ps.txnSub
	ps.inTxn = false
	ps.txnSub = nil
	ps.txnOwner = nil
	ps.txnBuckets = nil
	if sub != nil {
		_, _ = sub.ExecStmt(&sqlparse.RollbackTxn{})
	}
	return nil, fmt.Errorf("%w: transaction touched a key range that migrated mid-flight", ErrRangeMoved)
}

// execInTxn routes a statement inside a single-partition transaction: every
// keyed statement must resolve to the same partition, and the first one
// binds the transaction (forwarding the deferred BEGIN). Reads that touch
// no partitioned table route to the bound partition — or, before binding,
// to partition 0 without binding (they see committed state only, which is
// sound because the transaction has written nothing yet).
func (ps *PSession) execInTxn(st sqlparse.Statement) (*engine.Result, error) {
	rt := ps.pc.snapshotTable()
	defer rt.release()
	if agnosticRead(rt, st) {
		if ps.txnSub != nil {
			return ps.txnSub.ExecStmt(st)
		}
		sub, err := ps.sub(rt.parts[0])
		if err != nil {
			return nil, err
		}
		return sub.ExecStmt(st)
	}
	owner, buckets, ok := ownerOf(rt, st)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrCrossPartitionTxn, st.SQL()) // lint:rawsql-ok error-message rendering; text never leaves the process
	}
	if ps.txnSub == nil {
		sub, err := ps.sub(owner)
		if err != nil {
			return nil, err
		}
		if _, err := sub.ExecStmt(&sqlparse.BeginTxn{}); err != nil {
			return nil, err
		}
		ps.txnSub = sub
		ps.txnOwner = owner
		ps.txnEpoch = rt.Epoch()
		ps.txnBuckets = make(map[int]bool)
	} else if owner != ps.txnOwner {
		if rt.Epoch() != ps.txnEpoch {
			// The routing changed under the transaction: the statement's
			// bucket (or the whole bound partition) migrated away.
			return ps.poisonTxn()
		}
		return nil, fmt.Errorf("%w: statement routes to a different partition than the transaction is bound to", ErrCrossPartitionTxn)
	}
	if rt.Epoch() != ps.txnEpoch {
		for b := range ps.txnBuckets {
			if rt.Owner(b) != ps.txnOwner {
				return ps.poisonTxn()
			}
		}
		ps.txnEpoch = rt.Epoch()
	}
	for _, b := range buckets {
		ps.txnBuckets[b] = true
	}
	return ps.txnSub.ExecStmt(st)
}

// agnosticRead reports whether st is a read that touches no partitioned
// table (SELECT with no FROM, or from a fully replicated table) and may
// therefore run on any partition.
func agnosticRead(rt *RouteTable, st sqlparse.Statement) bool {
	s, ok := st.(*sqlparse.Select)
	if !ok || !st.IsRead() {
		return false
	}
	if s.NoTable {
		return true
	}
	return rt.Rule(s.From.Name) == nil && (s.Join == nil || rt.Rule(s.Join.Table.Name) == nil)
}

// ownerOf resolves the single partition a statement provably routes to
// under rt, along with the buckets it touches. Writes to unpartitioned
// (fully replicated) tables never resolve: they must replicate everywhere
// and therefore cannot join a single-partition transaction.
func ownerOf(rt *RouteTable, st sqlparse.Statement) (*MasterSlave, []int, bool) {
	keyed := func(table string, where sqlparse.Expr) (*MasterSlave, []int, bool) {
		rule := rt.Rule(table)
		if rule == nil {
			return nil, nil, false
		}
		v, ok := extractKeyEquality(where, rule.Column)
		if !ok {
			return nil, nil, false
		}
		b, err := rt.bucketOf(rule, v)
		if err != nil {
			return nil, nil, false
		}
		return rt.Owner(b), []int{b}, true
	}
	switch s := st.(type) {
	case *sqlparse.Insert:
		rule := rt.Rule(s.Table.Name)
		if rule == nil {
			return nil, nil, false
		}
		keyIdx := -1
		for i, c := range s.Columns {
			if equalFoldASCII(c, rule.Column) {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return nil, nil, false
		}
		var owner *MasterSlave
		var buckets []int
		for _, row := range s.Rows {
			lit, ok := row[keyIdx].(*sqlparse.Literal)
			if !ok {
				return nil, nil, false
			}
			b, err := rt.bucketOf(rule, lit.Val)
			if err != nil {
				return nil, nil, false
			}
			p := rt.Owner(b)
			if owner != nil && p != owner {
				return nil, nil, false // rows split across partitions
			}
			owner = p
			buckets = append(buckets, b)
		}
		if owner == nil {
			return nil, nil, false
		}
		return owner, buckets, true
	case *sqlparse.Update:
		return keyed(s.Table.Name, s.Where)
	case *sqlparse.Delete:
		return keyed(s.Table.Name, s.Where)
	case *sqlparse.Select:
		if s.NoTable {
			return nil, nil, false
		}
		return keyed(s.From.Name, s.Where)
	}
	return nil, nil, false
}

// fanout runs a per-partition statement on every partition of rt in
// parallel, merging results. When gated, the partitions' write gates are
// held shared across the execution (binlog-producing broadcasts must not
// slip past a migration fence unnoticed).
func (ps *PSession) fanout(rt *RouteTable, gated bool, stmtFor func(i int) sqlparse.Statement) (*engine.Result, error) {
	subs := make([]*MSSession, len(rt.parts))
	for i, p := range rt.parts {
		s, err := ps.sub(p)
		if err != nil {
			return nil, err
		}
		subs[i] = s
	}
	var release func()
	if gated {
		rel, err := ps.acquireGates(rt, rt.parts)
		if err != nil {
			return nil, err
		}
		release = rel
	}
	type out struct {
		res *engine.Result
		err error
	}
	outs := make([]out, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := subs[i].ExecStmt(stmtFor(i))
			outs[i] = out{res: r, err: err}
		}(i)
	}
	wg.Wait()
	if release != nil {
		release()
	}
	merged := &engine.Result{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		merged.RowsAffected += o.res.RowsAffected
		if merged.Columns == nil {
			merged.Columns = o.res.Columns
		}
		merged.Rows = append(merged.Rows, o.res.Rows...)
		if o.res.LastInsertID > merged.LastInsertID {
			merged.LastInsertID = o.res.LastInsertID
		}
	}
	return merged, nil
}

// execInsert splits rows by partition key and runs the per-partition
// inserts in parallel ("updates can be done in parallel to partitioned data
// segments", §2.1), under the involved partitions' write gates.
func (ps *PSession) execInsert(rt *RouteTable, ins *sqlparse.Insert) (*engine.Result, error) {
	rule := rt.Rule(ins.Table.Name)
	if rule == nil {
		// Unpartitioned table: replicate everywhere.
		return ps.fanout(rt, true, func(int) sqlparse.Statement { return ins })
	}
	keyIdx := -1
	for i, c := range ins.Columns {
		if equalFoldASCII(c, rule.Column) {
			keyIdx = i
			break
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("%w: INSERT into partitioned table %s must supply key column %s", ErrUnsupportedStatement, ins.Table.Name, rule.Column)
	}
	groups := make(map[int][][]sqlparse.Expr)
	for _, row := range ins.Rows {
		lit, ok := row[keyIdx].(*sqlparse.Literal)
		if !ok {
			return nil, fmt.Errorf("%w: partition key must be a literal in INSERT", ErrUnsupportedStatement)
		}
		b, err := rt.bucketOf(rule, lit.Val)
		if err != nil {
			return nil, err
		}
		groups[rt.OwnerIndex(b)] = append(groups[rt.OwnerIndex(b)], row)
	}
	type task struct {
		sub  *MSSession
		stmt *sqlparse.Insert
	}
	tasks := make([]task, 0, len(groups))
	parts := make([]*MasterSlave, 0, len(groups))
	for p, rows := range groups {
		owner := rt.parts[p]
		sub, err := ps.sub(owner)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{sub: sub, stmt: &sqlparse.Insert{Table: ins.Table, Columns: ins.Columns, Rows: rows}})
		parts = append(parts, owner)
	}
	release, err := ps.acquireGates(rt, parts)
	if err != nil {
		return nil, err
	}
	total := &engine.Result{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, t := range tasks {
		wg.Add(1)
		go func(t task) {
			defer wg.Done()
			res, err := t.sub.ExecStmt(t.stmt)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			if err == nil {
				total.RowsAffected += res.RowsAffected
				if res.LastInsertID > total.LastInsertID {
					total.LastInsertID = res.LastInsertID
				}
			}
		}(t)
	}
	wg.Wait()
	release()
	if firstErr != nil {
		return nil, firstErr
	}
	return total, nil
}

// routeByWhere routes keyed statements to one partition, scattering
// otherwise. Unkeyed writes to a partitioned table are rejected with the
// retryable ErrRangeMoved while a migration is live: a broadcast write
// racing the binlog tail stream would apply twice on the destination.
func (ps *PSession) routeByWhere(rt *RouteTable, st sqlparse.Statement, table string, where sqlparse.Expr) (*engine.Result, error) {
	rule := rt.Rule(table)
	if rule == nil {
		return ps.fanout(rt, true, func(int) sqlparse.Statement { return st })
	}
	if v, ok := extractKeyEquality(where, rule.Column); ok {
		b, err := rt.bucketOf(rule, v)
		if err != nil {
			return nil, err
		}
		owner := rt.Owner(b)
		sub, err := ps.sub(owner)
		if err != nil {
			return nil, err
		}
		release, err := ps.acquireGates(rt, []*MasterSlave{owner})
		if err != nil {
			return nil, err
		}
		defer release()
		return sub.ExecStmt(st)
	}
	if ps.pc.Migrating() || ps.pc.contaminatedAny() {
		return nil, fmt.Errorf("%w: unkeyed write to partitioned table %s while a migration holds its rows on two partitions", ErrRangeMoved, table)
	}
	return ps.fanout(rt, true, func(int) sqlparse.Statement { return st })
}

// execSelect routes keyed selects to one partition and scatter-gathers the
// rest, merging rows and re-applying ORDER BY / LIMIT / aggregates at the
// middleware ("read latency can also be improved by exploiting intra-query
// parallelism", §2.1). Reads take no gates — they never block on a
// migration cutover. Scatter fragments sent to a contaminated partition
// (one physically holding rows of buckets it does not own, mid-migration)
// get an ownership predicate pushed down so no row is counted twice.
func (ps *PSession) execSelect(rt *RouteTable, sel *sqlparse.Select) (*engine.Result, error) {
	if sel.NoTable {
		sub, err := ps.sub(rt.parts[0])
		if err != nil {
			return nil, err
		}
		return sub.ExecStmt(sel)
	}
	rule := rt.Rule(sel.From.Name)
	if rule != nil {
		if v, ok := extractKeyEquality(sel.Where, rule.Column); ok {
			b, err := rt.bucketOf(rule, v)
			if err != nil {
				return nil, err
			}
			sub, err := ps.sub(rt.Owner(b))
			if err != nil {
				return nil, err
			}
			return sub.ExecStmt(sel)
		}
	} else {
		// Unpartitioned (fully replicated) table: any partition serves it.
		sub, err := ps.sub(rt.parts[0])
		if err != nil {
			return nil, err
		}
		return sub.ExecStmt(sel)
	}

	// Scatter: strip LIMIT/OFFSET (re-applied after merge); sub-queries
	// keep ORDER BY so per-partition results arrive sorted.
	scatter := *sel
	scatter.Limit = -1
	scatter.Offset = 0

	hasAgg := false
	for _, it := range sel.Items {
		if !it.Star {
			if f, ok := it.Expr.(*sqlparse.FuncExpr); ok {
				switch f.Name {
				case "COUNT", "SUM", "MIN", "MAX":
					hasAgg = true
				case "AVG":
					return nil, fmt.Errorf("%w: AVG over scattered partitions; use SUM and COUNT", ErrUnsupportedStatement)
				}
			}
		}
	}
	if hasAgg && len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("%w: GROUP BY over scattered partitions", ErrUnsupportedStatement)
	}

	contaminated := ps.pc.contaminatedAny()
	merged, err := ps.fanout(rt, false, func(i int) sqlparse.Statement {
		if !contaminated || !ps.pc.contaminated(rt.parts[i]) {
			return &scatter
		}
		frag := scatter
		frag.Where = andExpr(ownershipExpr(rule, rt.nbuckets, rt.OwnedBuckets(i)), scatter.Where)
		return &frag
	})
	if err != nil {
		return nil, err
	}
	if hasAgg {
		return mergeAggregates(sel, merged)
	}
	if len(sel.OrderBy) > 0 {
		if err := sortResult(merged, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if sel.Offset > 0 {
		if sel.Offset >= int64(len(merged.Rows)) {
			merged.Rows = nil
		} else {
			merged.Rows = merged.Rows[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && int64(len(merged.Rows)) > sel.Limit {
		merged.Rows = merged.Rows[:sel.Limit]
	}
	return merged, nil
}

// mergeAggregates folds per-partition aggregate rows into one.
func mergeAggregates(sel *sqlparse.Select, merged *engine.Result) (*engine.Result, error) {
	out := &engine.Result{Columns: merged.Columns}
	row := make(sqltypes.Row, len(sel.Items))
	for i, it := range sel.Items {
		f, _ := it.Expr.(*sqlparse.FuncExpr)
		for _, r := range merged.Rows {
			v := r[i]
			switch {
			case row[i].IsNull():
				row[i] = v
			case f != nil && (f.Name == "COUNT" || f.Name == "SUM"):
				sum, err := sqltypes.Arith("+", row[i], v)
				if err != nil {
					return nil, err
				}
				row[i] = sum
			case f != nil && f.Name == "MIN":
				if sqltypes.Compare(v, row[i]) < 0 {
					row[i] = v
				}
			case f != nil && f.Name == "MAX":
				if sqltypes.Compare(v, row[i]) > 0 {
					row[i] = v
				}
			}
		}
	}
	out.Rows = []sqltypes.Row{row}
	return out, nil
}

// sortResult re-sorts merged rows by ORDER BY columns that appear in the
// projection.
func sortResult(res *engine.Result, keys []sqlparse.OrderItem) error {
	idx := make([]int, 0, len(keys))
	desc := make([]bool, 0, len(keys))
	for _, k := range keys {
		cr, ok := k.Expr.(*sqlparse.ColumnRef)
		if !ok {
			return fmt.Errorf("core: scattered ORDER BY must use plain columns")
		}
		found := -1
		for i, c := range res.Columns {
			if equalFoldASCII(c, cr.Name) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("core: scattered ORDER BY column %q must be selected", cr.Name)
		}
		idx = append(idx, found)
		desc = append(desc, k.Desc)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for k, col := range idx {
			c := sqltypes.Compare(res.Rows[i][col], res.Rows[j][col])
			if c == 0 {
				continue
			}
			if desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// extractKeyEquality finds `column = literal` in an AND-connected WHERE.
func extractKeyEquality(e sqlparse.Expr, column string) (sqltypes.Value, bool) {
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND":
			if v, ok := extractKeyEquality(x.Left, column); ok {
				return v, true
			}
			return extractKeyEquality(x.Right, column)
		case "=":
			if cr, ok := x.Left.(*sqlparse.ColumnRef); ok && equalFoldASCII(cr.Name, column) {
				if lit, ok := x.Right.(*sqlparse.Literal); ok {
					return lit.Val, true
				}
			}
			if cr, ok := x.Right.(*sqlparse.ColumnRef); ok && equalFoldASCII(cr.Name, column) {
				if lit, ok := x.Left.(*sqlparse.Literal); ok {
					return lit.Val, true
				}
			}
		}
	}
	return sqltypes.Null, false
}

// Prepare implements Conn: parse once, execute many with fresh bindings
// (the partition router re-binds per execution, so one handle can hit a
// different partition per call).
func (ps *PSession) Prepare(sql string) (*Stmt, error) { return newStmt(ps, sql) }

// Begin implements Conn: opens a single-partition transaction that binds to
// the partition of its first keyed statement.
func (ps *PSession) Begin() error {
	_, err := ps.ExecStmt(&sqlparse.BeginTxn{})
	return err
}

// Commit implements Conn.
func (ps *PSession) Commit() error {
	_, err := ps.ExecStmt(&sqlparse.CommitTxn{})
	return err
}

// Rollback implements Conn.
func (ps *PSession) Rollback() error {
	_, err := ps.ExecStmt(&sqlparse.RollbackTxn{})
	return err
}

// SetIsolation implements Conn across every partition session.
func (ps *PSession) SetIsolation(level string) error {
	lv, err := normalizeIsolation(level)
	if err != nil {
		return err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.isoStmt = &sqlparse.SetIsolation{Level: lv}
	for _, sub := range ps.subs {
		if _, err := sub.ExecStmt(ps.isoStmt); err != nil {
			return err
		}
	}
	return nil
}

// SetConsistency implements Conn across every partition session.
func (ps *PSession) SetConsistency(c Consistency) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.cons = c
	ps.consSet = true
	for _, sub := range ps.subs {
		if err := sub.SetConsistency(c); err != nil {
			return err
		}
	}
	return nil
}

// equalFoldASCII compares identifiers case-insensitively.
func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
