package core

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// LagTracker samples per-replica apply lag into ring-buffered time series.
// The operability endpoint exports the series, and the autoscaler reads the
// same data to decide when read capacity is falling behind — one measurement
// path for both consumers (the paper's §3.4 complaint is that these numbers
// are "practically never measured"; here they are always on).
type LagTracker struct {
	ms       *MasterSlave
	interval time.Duration
	capacity int

	mu     sync.Mutex
	series map[string]*metrics.Series

	stop chan struct{}
	done chan struct{}
}

// NewLagTracker starts sampling the cluster's slave lag every interval
// (0 means 100ms), keeping capSamples samples per replica (0 means 1024).
func NewLagTracker(ms *MasterSlave, interval time.Duration, capSamples int) *LagTracker {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	lt := &LagTracker{
		ms:       ms,
		interval: interval,
		capacity: capSamples,
		series:   make(map[string]*metrics.Series),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go lt.run()
	return lt
}

func (lt *LagTracker) run() {
	defer close(lt.done)
	t := time.NewTicker(lt.interval)
	defer t.Stop()
	for {
		select {
		case <-lt.stop:
			return
		case <-t.C:
			lt.sample()
		}
	}
}

func (lt *LagTracker) sample() {
	now := time.Now()
	lag := lt.ms.SlaveLag()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for name, v := range lag {
		s := lt.series[name]
		if s == nil {
			s = metrics.NewSeries(lt.capacity)
			lt.series[name] = s
		}
		s.AddAt(now, float64(v))
	}
}

// Series returns a chronological copy of every replica's lag samples.
// Replicas that left the cluster keep their history until the tracker is
// closed — a retired replica's trace is exactly what a post-mortem wants.
func (lt *LagTracker) Series() map[string][]metrics.Sample {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make(map[string][]metrics.Sample, len(lt.series))
	for name, s := range lt.series {
		out[name] = s.Samples()
	}
	return out
}

// MaxLag returns the most recent lag sample's maximum across replicas.
func (lt *LagTracker) MaxLag() float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var max float64
	for _, s := range lt.series {
		if last, ok := s.Last(); ok && last.V > max {
			max = last.V
		}
	}
	return max
}

// Close stops sampling.
func (lt *LagTracker) Close() {
	select {
	case <-lt.stop:
	default:
		close(lt.stop)
	}
	<-lt.done
}
