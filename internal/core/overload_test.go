package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
)

// newOverloadMS builds a master-only cluster with a modelled read cost so
// tests can hold the admission slot for a predictable duration.
func newOverloadMS(t *testing.T, readCost time.Duration, cfg MasterSlaveConfig) (*MasterSlave, *MSSession) {
	t.Helper()
	master := NewReplica(ReplicaConfig{Name: "m", ReadCost: readCost, Concurrency: 1})
	ms := NewMasterSlave(master, nil, cfg)
	t.Cleanup(ms.Close)
	sess := ms.NewSession("boot")
	t.Cleanup(sess.Close)
	for _, sql := range strings.Split(schemaSQL, ";\n") {
		mustExecC(t, sess.Exec, sql)
	}
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'widget')")
	return ms, sess
}

// TestDeadlineCancelsQueuedStatementWithoutLeak is the PR's cancellation
// contract: a statement whose deadline expires while it waits in the
// admission queue fails with a deadline error, releases nothing it did not
// own (slot count returns to zero), and leaves its session fully usable.
func TestDeadlineCancelsQueuedStatementWithoutLeak(t *testing.T) {
	adm := admission.NewController(admission.Config{Slots: 1, Queue: 8})
	ms, _ := newOverloadMS(t, 150*time.Millisecond, MasterSlaveConfig{Admission: adm})

	// Session A occupies the single slot with a modelled 150ms read.
	slow := ms.NewSession("slow")
	defer slow.Close()
	mustExecC(t, slow.Exec, "USE shop")
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := slow.Query("SELECT * FROM items WHERE id = 1")
		done <- err
	}()
	<-started
	waitForActive(t, adm, 1)

	// Session B sets a deadline far shorter than A's residency and must be
	// cancelled while still queued.
	fast := ms.NewSession("fast")
	defer fast.Close()
	mustExecC(t, fast.Exec, "USE shop")
	mustExecC(t, fast.Exec, "SET DEADLINE '25ms'")
	start := time.Now()
	_, err := fast.Query("SELECT * FROM items WHERE id = 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued statement past deadline: got %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 120*time.Millisecond {
		t.Fatalf("cancellation took %v; deadline was 25ms", waited)
	}

	if err := <-done; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	waitForActive(t, adm, 0)
	if st := adm.Stats(); st.Expired == 0 {
		t.Fatalf("expiry not accounted: %+v", st)
	}

	// The cancelled session is not poisoned: clearing the deadline works
	// and the next statement succeeds.
	mustExecC(t, fast.Exec, "SET DEADLINE OFF")
	if _, err := fast.Query("SELECT * FROM items WHERE id = 1"); err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
}

// TestDeadlineCancellationConcurrent races many deadline-bearing sessions
// against one slot; afterwards no slot may be leaked and the cluster must
// still serve. Run with -race.
func TestDeadlineCancellationConcurrent(t *testing.T) {
	adm := admission.NewController(admission.Config{Slots: 1, Queue: 16})
	ms, _ := newOverloadMS(t, 20*time.Millisecond, MasterSlaveConfig{Admission: adm})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := ms.NewSession("racer")
			defer sess.Close()
			if _, err := sess.Exec("USE shop"); err != nil {
				t.Error(err)
				return
			}
			if _, err := sess.Exec("SET DEADLINE '15ms'"); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 10; j++ {
				_, err := sess.Query("SELECT * FROM items WHERE id = 1")
				if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, admission.ErrOverloaded) {
					t.Errorf("unexpected error class: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	waitForActive(t, adm, 0)
	sess := ms.NewSession("after")
	defer sess.Close()
	mustExecC(t, sess.Exec, "USE shop")
	if _, err := sess.Query("SELECT * FROM items WHERE id = 1"); err != nil {
		t.Fatalf("cluster unusable after deadline storm: %v", err)
	}
}

// TestStallSurfacesAsDeadlineNotFailure covers the gray-failure injector:
// a stalled replica keeps reporting healthy, so only the statement
// deadline — not failover — bounds the caller's wait.
func TestStallSurfacesAsDeadlineNotFailure(t *testing.T) {
	ms, sess := newOverloadMS(t, 0, MasterSlaveConfig{})
	master := ms.Master()

	master.SetStalled(true)
	if !master.Healthy() {
		t.Fatal("stall must not mark the replica unhealthy")
	}
	mustExecC(t, sess.Exec, "SET DEADLINE '40ms'")
	start := time.Now()
	_, err := sess.Query("SELECT * FROM items WHERE id = 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled read: got %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("deadline did not bound the stall: waited %v", waited)
	}
	if !master.Healthy() {
		t.Fatal("deadline expiry must not fail the replica")
	}

	master.Recover()
	if _, err := sess.Query("SELECT * FROM items WHERE id = 1"); err != nil {
		t.Fatalf("read after recover: %v", err)
	}
}

func waitForActive(t *testing.T, adm *admission.Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if adm.Stats().Active == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission active never reached %d: %+v", want, adm.Stats())
}
