package core

import (
	"errors"
	"sync"

	"repro/internal/engine"
)

// Certifier implements first-committer-wins certification over the totally
// ordered write-set stream (§3.3: the Postgres-R / Middle-R family).
//
// Deployed replicated (one instance per replica, fed identical ordered
// input, reaching identical decisions) it has no single point of failure.
// Deployed centralized (one shared instance) it is the SPOF whose outage
// and state-rebuild cost §3.2 complains about; Fail/Repair/RebuildFromLog
// model exactly that.
type Certifier struct {
	mu sync.Mutex
	// lastWriter maps a row key to the ordered position that last wrote
	// it (the certifier's "soft state").
	lastWriter map[string]uint64
	// decided caches per-position decisions: a centralized certifier is
	// consulted once per replica for the same ordered transaction and
	// must answer identically every time.
	decided   map[uint64]bool
	failed    bool
	decisions uint64
}

// ErrCertifierDown is returned while a centralized certifier is failed —
// which stalls every commit in the cluster (§3.2).
var ErrCertifierDown = errors.New("core: certifier is down")

// NewCertifier creates an empty certifier.
func NewCertifier() *Certifier {
	return &Certifier{lastWriter: make(map[string]uint64), decided: make(map[uint64]bool)}
}

// Certify decides one transaction: it commits iff no key in its write set
// was written by a transaction certified after the submitter's snapshot
// position. On commit the certifier records the write positions.
func (c *Certifier) Certify(seq, snapshot uint64, ws *engine.WriteSet) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return false, ErrCertifierDown
	}
	if d, ok := c.decided[seq]; ok {
		return d, nil // repeat consultation for the same ordered txn
	}
	c.decisions++
	commit := true
	for _, key := range ws.Keys() {
		if last, ok := c.lastWriter[key]; ok && last > snapshot {
			commit = false
			break
		}
	}
	if commit {
		for _, key := range ws.Keys() {
			c.lastWriter[key] = seq
		}
	}
	c.decided[seq] = commit
	return commit, nil
}

// Decisions returns the number of certifications performed.
func (c *Certifier) Decisions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decisions
}

// StateSize returns the number of tracked keys (the soft state that must be
// rebuilt after a centralized certifier failure).
func (c *Certifier) StateSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lastWriter)
}

// Fail takes the certifier down and discards its soft state — the
// centralized-component failure of §3.2.
func (c *Certifier) Fail() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failed = true
	c.lastWriter = make(map[string]uint64)
	c.decided = make(map[uint64]bool)
}

// Repair brings the certifier back up (empty-brained; call RebuildFromLog
// first for correct conflict detection of in-flight snapshots).
func (c *Certifier) Repair() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failed = false
}

// RebuildFromLog reconstructs the soft state by replaying certified write
// sets (e.g. from the recovery log or a replica's binlog): "the recovery
// procedure requires retrieving state from every replica to rebuild the
// load balancer's soft state" (§3.2). All recovered keys are stamped with
// asOf — the recovery point in ordered-stream positions — which forces any
// transaction whose snapshot predates the outage to abort (the safe
// post-recovery policy). It returns the number of entries scanned so
// callers can account the rebuild cost.
func (c *Certifier) RebuildFromLog(events []engine.Event, asOf uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range events {
		if ev.WriteSet == nil {
			continue
		}
		for _, key := range ev.WriteSet.Keys() {
			c.lastWriter[key] = asOf
		}
		n++
	}
	return n
}
