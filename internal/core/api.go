package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// Typed sentinels shared by every topology's session implementation. The
// wire server and the database/sql driver classify errors exclusively via
// errors.Is, so request-path errors must wrap one of these (or another
// package sentinel) — enforced by the typederr analyzer (cmd/repllint).

// ErrTxnState is wrapped by transaction-bracket misuse: BEGIN inside an
// open transaction, COMMIT/ROLLBACK without one. Deliberately not
// retryable — retrying cannot fix a client-side sequencing bug.
var ErrTxnState = errors.New("core: invalid transaction state")

// ErrUnsupportedStatement is wrapped when a statement is valid SQL but
// cannot be executed under the cluster's topology or replication mode
// (DDL inside multi-master transactions, scatter aggregates the partition
// router cannot merge, non-literal partition keys). Not retryable: the
// same statement fails the same way every time.
var ErrUnsupportedStatement = errors.New("core: statement not supported on this cluster topology")

// This file defines the unified client API every replication topology
// implements: the Go equivalent of the paper's central practical lesson that
// middleware replication only wins when applications talk to the cluster
// through one standard contract with the topology hidden behind it (§1,
// §4.3). A Cluster hands out Conns; a Conn executes SQL with bind arguments,
// prepares statements, and brackets transactions — identically whether the
// backend is master-slave, multi-master, partitioned or WAN multi-site. The
// wire server and the database/sql driver are written against these
// interfaces only, which is what lets one daemon serve any topology.

// Health is a topology-agnostic snapshot of cluster state.
type Health struct {
	// Topology names the replication design ("master-slave",
	// "multi-master", "partitioned", "wan").
	Topology string
	// Replicas is the total number of backend replicas.
	Replicas int
	// HealthyReplicas is how many of them are currently serving.
	HealthyReplicas int
	// Head is the highest replication position any replica has committed
	// (for partitioned/WAN deployments: the maximum across sub-clusters).
	Head uint64
	// MaxLag is the largest apply backlog (in events) of any replica.
	MaxLag uint64
}

// String renders the health snapshot for logs.
func (h Health) String() string {
	return fmt.Sprintf("%s: %d/%d replicas healthy, head=%d, max-lag=%d",
		h.Topology, h.HealthyReplicas, h.Replicas, h.Head, h.MaxLag)
}

// Cluster is the topology-agnostic cluster handle. All four controllers
// (MasterSlave, MultiMaster, Partitioned, WAN) implement it.
type Cluster interface {
	// NewConn opens a client connection. Conns model driver connections:
	// they are not safe for concurrent use, but any number can be open.
	NewConn(user string) (Conn, error)
	// Authenticate validates credentials against the cluster's backends
	// (the wire server calls it before opening a session).
	Authenticate(user, password string) error
	// Health reports a topology-agnostic state snapshot.
	Health() Health
	// Close shuts down replication machinery.
	Close()
}

// Conn is the uniform client connection contract. Every topology's session
// type implements it with the same semantics database/sql expects:
// placeholder (?) bind arguments, prepared statements, explicit transaction
// brackets, and per-session consistency/isolation announcements.
type Conn interface {
	// Exec parses (through the process-wide statement cache) and routes one
	// statement with optional ? bind arguments.
	Exec(sql string, args ...Value) (*engine.Result, error)
	// Query is Exec for reads; it exists so application code can express
	// intent, and behaves identically (routing is decided by the parsed
	// statement, not the entry point).
	Query(sql string, args ...Value) (*engine.Result, error)
	// ExecStmt routes a pre-parsed statement.
	ExecStmt(st sqlparse.Statement) (*engine.Result, error)
	// ExecStmtArgs routes a pre-parsed statement with bind arguments; this
	// is the prepared-statement hot path.
	ExecStmtArgs(st sqlparse.Statement, args ...Value) (*engine.Result, error)
	// Prepare parses once and returns a reusable handle whose Exec skips
	// parsing entirely.
	Prepare(sql string) (*Stmt, error)
	// Begin/Commit/Rollback bracket an explicit transaction.
	Begin() error
	Commit() error
	Rollback() error
	// SetIsolation announces the session's isolation level ("READ
	// COMMITTED", "SNAPSHOT", "SERIALIZABLE") across every backend the
	// session may touch.
	SetIsolation(level string) error
	// SetConsistency overrides the session's read guarantee (the cluster
	// config provides the default).
	SetConsistency(c Consistency) error
	// Close releases every backend resource the connection holds.
	Close()
}

// Compile-time checks: every topology implements the unified API.
var (
	_ Cluster = (*MasterSlave)(nil)
	_ Cluster = (*MultiMaster)(nil)
	_ Cluster = (*Partitioned)(nil)
	_ Cluster = (*WAN)(nil)

	_ Conn = (*MSSession)(nil)
	_ Conn = (*MMSession)(nil)
	_ Conn = (*PSession)(nil)
	_ Conn = (*WSession)(nil)
)

// Stmt is a prepared statement on a router connection: the AST is parsed
// once and pinned; Exec binds ? arguments and routes without touching the
// parser. Like the connection it came from, a Stmt is not safe for
// concurrent use.
type Stmt struct {
	conn Conn
	st   sqlparse.Statement
	sql  string
	n    int // number of ? placeholders
}

// newStmt builds a prepared handle for any Conn implementation.
func newStmt(c Conn, sql string) (*Stmt, error) {
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{conn: c, st: st, sql: sql, n: sqlparse.CountParams(st)}, nil
}

// NewStmt builds a prepared handle bound to an arbitrary Conn
// implementation. Decorating Conns (history recording, tracing) need it so
// their Prepare can route the statement back through the wrapper instead
// of the wrapped connection.
func NewStmt(c Conn, sql string) (*Stmt, error) { return newStmt(c, sql) }

// Exec routes the prepared statement with the given bind arguments.
func (s *Stmt) Exec(args ...Value) (*engine.Result, error) {
	return s.conn.ExecStmtArgs(s.st, args...)
}

// Query is Exec under a read-intent name.
func (s *Stmt) Query(args ...Value) (*engine.Result, error) {
	return s.conn.ExecStmtArgs(s.st, args...)
}

// NumInput returns the number of ? placeholders.
func (s *Stmt) NumInput() int { return s.n }

// SQL returns the text the handle was prepared from.
func (s *Stmt) SQL() string { return s.sql }

// Statement exposes the parsed AST (shared and immutable).
func (s *Stmt) Statement() sqlparse.Statement { return s.st }

// Close releases the handle. Router statements hold no backend state, so
// this is a no-op kept for driver symmetry.
func (s *Stmt) Close() {}

// ParseConsistency maps a textual level ("any", "session", "strong") to the
// Consistency enum; DSNs and SET CONSISTENCY use it.
func ParseConsistency(level string) (Consistency, error) {
	switch strings.ToUpper(strings.TrimSpace(level)) {
	case "ANY":
		return ReadAny, nil
	case "SESSION":
		return SessionConsistent, nil
	case "STRONG":
		return StrongConsistent, nil
	}
	return 0, fmt.Errorf("core: unknown consistency level %q (want any, session or strong)", level)
}

// String renders the consistency level as its SET CONSISTENCY keyword.
func (c Consistency) String() string {
	switch c {
	case ReadAny:
		return "ANY"
	case SessionConsistent:
		return "SESSION"
	case StrongConsistent:
		return "STRONG"
	}
	return fmt.Sprintf("Consistency(%d)", int(c))
}

// normalizeIsolation validates and canonicalizes an isolation level name for
// Conn.SetIsolation.
func normalizeIsolation(level string) (string, error) {
	up := strings.ToUpper(strings.TrimSpace(level))
	switch up {
	case "READ COMMITTED", "SNAPSHOT", "SERIALIZABLE":
		return up, nil
	}
	return "", fmt.Errorf("core: unknown isolation level %q", level)
}
