package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sqltypes"
)

// ---- helpers ----

const schemaSQL = `CREATE DATABASE shop;
USE shop;
CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, price FLOAT DEFAULT 0, stock INTEGER DEFAULT 0)`

func newReplicas(t *testing.T, n int, cfg ReplicaConfig) []*Replica {
	t.Helper()
	out := make([]*Replica, n)
	for i := range out {
		c := cfg
		c.Name = fmt.Sprintf("r%d", i+1)
		c.Engine.RandSeed = int64(i + 1) // distinct PRNG per replica (§4.3.2)
		out[i] = NewReplica(c)
	}
	return out
}

// bootstrap runs the schema on the master of a fresh MS cluster and waits
// for slaves to catch up.
func newMSCluster(t *testing.T, nSlaves int, cfg MasterSlaveConfig) (*MasterSlave, *MSSession) {
	t.Helper()
	reps := newReplicas(t, nSlaves+1, ReplicaConfig{})
	ms := NewMasterSlave(reps[0], reps[1:], cfg)
	t.Cleanup(ms.Close)
	sess := ms.NewSession("test")
	t.Cleanup(sess.Close)
	for _, sql := range strings.Split(schemaSQL, ";\n") {
		if _, err := sess.Exec(sql); err != nil {
			t.Fatalf("bootstrap %q: %v", sql, err)
		}
	}
	waitCaughtUp(t, ms)
	return ms, sess
}

func waitCaughtUp(t *testing.T, ms *MasterSlave) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		lags := ms.SlaveLag()
		max := uint64(0)
		for _, l := range lags {
			if l > max {
				max = l
			}
		}
		if max == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("slaves never caught up: %v", ms.SlaveLag())
}

func mustExecC(t *testing.T, exec func(string, ...sqltypes.Value) (*engine.Result, error), sql string) *engine.Result {
	t.Helper()
	res, err := exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func checkConverged(t *testing.T, reps []*Replica, db string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rep, err := CheckDivergence(reps, db)
		if err == nil && rep.OK() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep, _ := CheckDivergence(reps, db)
	t.Fatalf("replicas did not converge: %v", rep)
}

// ---- master-slave ----

func TestMSWriteThenReadEverywhere(t *testing.T) {
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{Consistency: SessionConsistent})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	// Session consistency: this read must see the write, wherever routed.
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("read-your-writes violated: %v", res.Rows)
	}
	waitCaughtUp(t, ms)
	all := append([]*Replica{ms.Master()}, ms.Slaves()...)
	checkConverged(t, all, "shop")
}

func TestMSReadsGoToSlaves(t *testing.T) {
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{Consistency: ReadAny})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)
	masterBefore := ms.Master().Engine().CommitTS()
	for i := 0; i < 20; i++ {
		mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	}
	if got := ms.Master().Engine().CommitTS(); got != masterBefore {
		t.Fatal("reads should not touch the master")
	}
}

func TestMSTwoSafeWaitsForReceipt(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{
		Safety:     TwoSafe,
		ApplyDelay: 20 * time.Millisecond, // receipt is fast; apply is slow
	})
	start := time.Now()
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	elapsed := time.Since(start)
	// 2-safe waits for *receipt*, not apply: the commit should NOT wait
	// the full apply delay chain but must have the event received.
	sl := ms.Slaves()[0]
	if sl.ReceivedSeq() < ms.MasterSeq() {
		t.Fatal("2-safe returned before slave receipt")
	}
	_ = elapsed
}

func TestMSOneSafeLosesTrailingTransactions(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{
		Safety:     OneSafe,
		ApplyDelay: 5 * time.Millisecond,
	})
	for i := 0; i < 20; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i+1))
	}
	// Crash the master while the slave still lags.
	ms.Master().Fail()
	if _, err := ms.Failover(); err != nil {
		t.Fatal(err)
	}
	if lost := ms.LostTransactions(); lost == 0 {
		t.Fatal("expected lost transactions under 1-safe with lagging slave")
	}
}

func TestMSTwoSafeLosesNothing(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{
		Safety:     TwoSafe,
		ApplyDelay: 2 * time.Millisecond,
	})
	for i := 0; i < 10; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i+1))
	}
	ms.Master().Fail()
	if _, err := ms.Failover(); err != nil {
		t.Fatal(err)
	}
	// 2-safe guarantees receipt; the slave may still need to apply its
	// received backlog, but no event is missing from its queue.
	sl := ms.Master() // promoted
	deadline := time.Now().Add(2 * time.Second)
	for sl.AppliedSeq() < sl.ReceivedSeq() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// All 10 inserts (plus bootstrap DDL) must be present.
	s := sl.Engine().NewSession("check")
	defer s.Close()
	if _, err := s.Exec("USE shop"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("2-safe lost rows: %d/10", res.Rows[0][0].Int())
	}
}

func TestMSFailoverPromotesMostUpToDate(t *testing.T) {
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)
	// Slow one slave far behind.
	slaves := ms.Slaves()
	slaves[0].SetSlowFactor(1)
	laggard := slaves[1]
	laggard.appliedSeq.Store(0) // simulate a lagging slave
	ms.Master().Fail()
	promoted, err := ms.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if promoted == laggard {
		t.Fatal("promoted the lagging slave")
	}
}

func TestMSTransparentFailoverReplaysTxn(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{TransparentFailover: true, FailoverTimeout: 2 * time.Second})
	mon := NewMonitor(ms, time.Millisecond)
	mon.Start()
	defer mon.Stop()

	mustExecC(t, sess.Exec, "BEGIN")
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'in-flight')")
	waitCaughtUp(t, ms)
	// Master dies mid-transaction.
	ms.Master().Fail()
	// The next statement transparently fails over and replays the txn.
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (2, 'after')")
	mustExecC(t, sess.Exec, "COMMIT")
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("transparent failover lost txn state: %v", res.Rows)
	}
}

func TestMSFailbackResynchronizes(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)
	old := ms.Master()
	old.Fail()
	if _, err := ms.Failover(); err != nil {
		t.Fatal(err)
	}
	// Writes continue on the new master.
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (2, 'b')")
	// Old master recovers and rejoins as a slave from its last position.
	if err := ms.Failback(old, old.Engine().Binlog().Head()); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, ms)
	all := append([]*Replica{ms.Master()}, ms.Slaves()...)
	checkConverged(t, all, "shop")
}

func TestMSSlaveLagGrowsWithDelay(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{ApplyDelay: 10 * time.Millisecond})
	for i := 0; i < 10; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'x')", i+1))
	}
	lag := ms.SlaveLag()["r2"]
	if lag == 0 {
		t.Fatal("expected visible slave lag with 10ms apply delay")
	}
}

func TestMSStrongConsistencyFallsBackToMaster(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{
		Consistency: StrongConsistent,
		ApplyDelay:  20 * time.Millisecond,
	})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	// Immediately read: slave lags, so the read must still see the row.
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("strong consistency violated during slave lag")
	}
	_ = ms
}

func TestMonitorDrivesFailoverAndAvailability(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{})
	mon := NewMonitor(ms, time.Millisecond)
	mon.Start()
	defer mon.Stop()
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)
	old := ms.Master()
	old.Fail()
	deadline := time.Now().Add(2 * time.Second)
	for ms.Master() == old && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ms.Master() == old {
		t.Fatal("monitor never failed over")
	}
	// The monitor records its bookkeeping just after promotion; poll.
	deadline = time.Now().Add(time.Second)
	for mon.Failovers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if mon.Failovers() != 1 {
		t.Fatalf("failovers = %d", mon.Failovers())
	}
	if mon.Availability().MTTR() == 0 {
		t.Fatal("MTTR not recorded")
	}
}

// ---- multi-master ----

// waitMMCaughtUp waits until every replica has applied the ordered head.
func waitMMCaughtUp(t *testing.T, mm *MultiMaster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		head := mm.Head()
		ok := true
		for _, r := range mm.Replicas() {
			if r.AppliedSeq() < head {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("multi-master replicas never caught up")
}

func newMMCluster(t *testing.T, n int, cfg MultiMasterConfig) (*MultiMaster, []*MMSession) {
	t.Helper()
	reps := newReplicas(t, n, ReplicaConfig{})
	ord := NewLocalOrderer()
	t.Cleanup(ord.Close)
	mm, err := NewMultiMaster(reps, []Orderer{ord}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm.Close)
	boot, err := mm.NewSession("boot")
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range strings.Split(schemaSQL, ";\n") {
		if _, err := boot.Exec(sql); err != nil {
			t.Fatalf("bootstrap %q: %v", sql, err)
		}
	}
	boot.Close()
	waitMMCaughtUp(t, mm)
	sessions := make([]*MMSession, n)
	for i := range sessions {
		s, err := mm.NewSession(fmt.Sprintf("user%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		s.db = "shop"
		if err := s.pool.setDB("shop"); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, s := range sessions {
			s.Close()
		}
	})
	return mm, sessions
}

func TestMMStatementConvergence(t *testing.T) {
	mm, sessions := newMMCluster(t, 3, MultiMasterConfig{Mode: StatementMode})
	done := make(chan error, len(sessions))
	for i, s := range sessions {
		go func(i int, s *MMSession) {
			for j := 0; j < 10; j++ {
				id := i*100 + j
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'w')", id)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, s)
	}
	for range sessions {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	checkConverged(t, mm.Replicas(), "shop")
	s := mm.Replicas()[0].Engine().NewSession("check")
	defer s.Close()
	_, _ = s.Exec("USE shop")
	res, _ := s.Exec("SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("count = %d, want 30", res.Rows[0][0].Int())
	}
}

func TestMMStatementRejectsUnsafe(t *testing.T) {
	_, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: StatementMode, NonDeterminism: RewriteAndReject})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	_, err := sessions[0].Exec("UPDATE items SET price = RAND()")
	if !errors.Is(err, ErrNonDeterministic) {
		t.Fatalf("err = %v", err)
	}
}

func TestMMStatementRewritesNow(t *testing.T) {
	mm, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: StatementMode, NonDeterminism: RewriteAndReject})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	mustExecC(t, sessions[0].Exec, "UPDATE items SET price = 1 WHERE id = 1 AND NOW() > 0")
	checkConverged(t, mm.Replicas(), "shop")
}

func TestMMStatementRandDiverges(t *testing.T) {
	// C6: allowing rand() under statement replication diverges the
	// cluster, and the divergence detector catches it.
	mm, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: StatementMode, NonDeterminism: RewriteAndAllow})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
	mustExecC(t, sessions[0].Exec, "UPDATE items SET price = RAND()")
	time.Sleep(50 * time.Millisecond)
	rep, err := CheckDivergence(mm.Replicas(), "shop")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected divergence from rand() (§4.3.2)")
	}
}

func TestMMTransactionReadsOwnWrites(t *testing.T) {
	_, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: StatementMode})
	s := sessions[0]
	mustExecC(t, s.Exec, "BEGIN")
	mustExecC(t, s.Exec, "INSERT INTO items (id, name) VALUES (1, 'mine')")
	res := mustExecC(t, s.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("transaction cannot see its own writes")
	}
	mustExecC(t, s.Exec, "COMMIT")
}

func TestMMCertificationCommitsAndConverges(t *testing.T) {
	mm, sessions := newMMCluster(t, 3, MultiMasterConfig{Mode: CertificationMode})
	s := sessions[0]
	mustExecC(t, s.Exec, "BEGIN")
	mustExecC(t, s.Exec, "INSERT INTO items (id, name, stock) VALUES (1, 'a', 5)")
	mustExecC(t, s.Exec, "UPDATE items SET stock = 6 WHERE id = 1")
	mustExecC(t, s.Exec, "COMMIT")
	checkConverged(t, mm.Replicas(), "shop")
	if mm.Commits() == 0 {
		t.Fatal("no commits recorded")
	}
}

func TestMMCertificationFirstCommitterWins(t *testing.T) {
	mm, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: CertificationMode})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name, stock) VALUES (1, 'a', 0)")
	time.Sleep(20 * time.Millisecond) // let the insert apply everywhere

	s1, s2 := sessions[0], sessions[1]
	mustExecC(t, s1.Exec, "BEGIN")
	mustExecC(t, s2.Exec, "BEGIN")
	mustExecC(t, s1.Exec, "UPDATE items SET stock = 1 WHERE id = 1")
	mustExecC(t, s2.Exec, "UPDATE items SET stock = 2 WHERE id = 1")
	_, err1 := s1.Exec("COMMIT")
	_, err2 := s2.Exec("COMMIT")
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one should abort: err1=%v err2=%v", err1, err2)
	}
	if err1 != nil && !errors.Is(err1, ErrCertificationAbort) {
		t.Fatalf("err1 = %v", err1)
	}
	if err2 != nil && !errors.Is(err2, ErrCertificationAbort) {
		t.Fatalf("err2 = %v", err2)
	}
	if mm.Aborts() != 1 {
		t.Fatalf("aborts = %d", mm.Aborts())
	}
	checkConverged(t, mm.Replicas(), "shop")
}

func TestMMCertificationNonConflictingBothCommit(t *testing.T) {
	mm, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: CertificationMode})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
	time.Sleep(20 * time.Millisecond)
	s1, s2 := sessions[0], sessions[1]
	mustExecC(t, s1.Exec, "BEGIN")
	mustExecC(t, s2.Exec, "BEGIN")
	mustExecC(t, s1.Exec, "UPDATE items SET stock = 1 WHERE id = 1")
	mustExecC(t, s2.Exec, "UPDATE items SET stock = 2 WHERE id = 2")
	if _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, mm.Replicas(), "shop")
}

func TestMMCentralizedCertifierSPOF(t *testing.T) {
	cert := NewCertifier()
	_, sessions := newMMCluster(t, 2, MultiMasterConfig{
		Mode: CertificationMode, Certifier: cert, CommitTimeout: 200 * time.Millisecond,
	})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	cert.Fail()
	_, err := sessions[0].Exec("UPDATE items SET stock = 1 WHERE id = 1")
	if err == nil {
		t.Fatal("commit should fail while the centralized certifier is down (§3.2)")
	}
	cert.Repair()
	mustExecC(t, sessions[0].Exec, "UPDATE items SET stock = 2 WHERE id = 1")
}

func TestMMStatementTotalOrderAcrossReplicas(t *testing.T) {
	// Increment-heavy workload: if total order held, final value equals
	// the number of increments on every replica.
	mm, sessions := newMMCluster(t, 3, MultiMasterConfig{Mode: StatementMode})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name, stock) VALUES (1, 'ctr', 0)")
	const perSession = 10
	done := make(chan error, len(sessions))
	for _, s := range sessions {
		go func(s *MMSession) {
			for j := 0; j < perSession; j++ {
				if _, err := s.Exec("UPDATE items SET stock = stock + 1 WHERE id = 1"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(s)
	}
	for range sessions {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	checkConverged(t, mm.Replicas(), "shop")
	for _, r := range mm.Replicas() {
		s := r.Engine().NewSession("check")
		_, _ = s.Exec("USE shop")
		res, err := s.Exec("SELECT stock FROM items WHERE id = 1")
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Int(); got != int64(len(sessions)*perSession) {
			t.Fatalf("replica %s: counter = %d, want %d", r.Name(), got, len(sessions)*perSession)
		}
	}
}

// ---- partitioned ----

func newPartitioned(t *testing.T, nParts int) (*Partitioned, *PSession) {
	t.Helper()
	parts := make([]*MasterSlave, nParts)
	for i := range parts {
		reps := newReplicas(t, 1, ReplicaConfig{Name: fmt.Sprintf("p%d", i)})
		reps[0].name = fmt.Sprintf("p%d-r1", i)
		parts[i] = NewMasterSlave(reps[0], nil, MasterSlaveConfig{ReadFromMaster: true})
	}
	pc, err := NewPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: HashPartition,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)
	sess := pc.NewSession("test")
	t.Cleanup(sess.Close)
	mustExecC(t, sess.Exec, "CREATE DATABASE shop")
	mustExecC(t, sess.Exec, "USE shop")
	mustExecC(t, sess.Exec, "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, price FLOAT DEFAULT 0)")
	return pc, sess
}

func TestPartitionedInsertSplitsRows(t *testing.T) {
	pc, sess := newPartitioned(t, 3)
	var values []string
	for i := 1; i <= 30; i++ {
		values = append(values, fmt.Sprintf("(%d, 'x')", i))
	}
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES "+strings.Join(values, ", "))
	// Every partition should hold some rows, and the union is 30.
	total := 0
	for _, p := range pc.Partitions() {
		n, err := p.Master().Engine().RowCount("shop", "items")
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("partition %s got no rows", p.Master().Name())
		}
		total += n
	}
	if total != 30 {
		t.Fatalf("total rows = %d", total)
	}
}

func TestPartitionedKeyedQuerySinglePartition(t *testing.T) {
	_, sess := newPartitioned(t, 3)
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (7, 'seven')")
	res := mustExecC(t, sess.Exec, "SELECT name FROM items WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "seven" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestPartitionedScatterGather(t *testing.T) {
	_, sess := newPartitioned(t, 3)
	var values []string
	for i := 1; i <= 20; i++ {
		values = append(values, fmt.Sprintf("(%d, 'n%02d')", i, i))
	}
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES "+strings.Join(values, ", "))
	res := mustExecC(t, sess.Exec, "SELECT id, name FROM items ORDER BY id DESC LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 20 || res.Rows[4][0].Int() != 16 {
		t.Fatalf("merge order wrong: %v", res.Rows)
	}
	// Aggregates merge across partitions.
	cnt := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if cnt.Rows[0][0].Int() != 20 {
		t.Fatalf("scatter count = %d", cnt.Rows[0][0].Int())
	}
}

func TestPartitionedSinglePartitionTxn(t *testing.T) {
	_, sess := newPartitioned(t, 2)
	// A transaction whose statements all route to one partition commits.
	mustExecC(t, sess.Exec, "BEGIN")
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (7, 'a')")
	mustExecC(t, sess.Exec, "UPDATE items SET name = 'b' WHERE id = 7")
	mustExecC(t, sess.Exec, "COMMIT")
	res := mustExecC(t, sess.Exec, "SELECT name FROM items WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// A rolled-back transaction leaves no trace.
	mustExecC(t, sess.Exec, "BEGIN")
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (8, 'x')")
	mustExecC(t, sess.Exec, "ROLLBACK")
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items WHERE id = 8")
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("rolled-back insert visible")
	}
}

func TestPartitionedRejectsCrossPartitionTxn(t *testing.T) {
	_, sess := newPartitioned(t, 2)
	// Find two keys hashing to different partitions.
	rule := &PartitionRule{Table: "items", Column: "id", Strategy: HashPartition}
	keyA := int64(1)
	pA, _ := rule.partitionFor(sqlInt(keyA), 2)
	keyB := keyA
	for k := int64(2); k < 64; k++ {
		if p, _ := rule.partitionFor(sqlInt(k), 2); p != pA {
			keyB = k
			break
		}
	}
	if keyB == keyA {
		t.Fatal("no key found in the other partition")
	}
	mustExecC(t, sess.Exec, "BEGIN")
	mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'a')", keyA))
	if _, err := sess.Exec(fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'b')", keyB)); !errors.Is(err, ErrCrossPartitionTxn) {
		t.Fatalf("cross-partition statement: err = %v", err)
	}
	mustExecC(t, sess.Exec, "ROLLBACK")
	// Statements that cannot be proven single-partition are rejected too.
	mustExecC(t, sess.Exec, "BEGIN")
	if _, err := sess.Exec("UPDATE items SET name = 'z'"); !errors.Is(err, ErrCrossPartitionTxn) {
		t.Fatalf("unkeyed write: err = %v", err)
	}
	mustExecC(t, sess.Exec, "ROLLBACK")
}

func TestPartitionedRangeRule(t *testing.T) {
	rule := &PartitionRule{Table: "t", Column: "k", Strategy: RangePartition}
	rule.Bounds = []sqlVal{sqlInt(100), sqlInt(200)}
	cases := map[int64]int{50: 0, 100: 1, 150: 1, 200: 2, 999: 2}
	for k, want := range cases {
		got, err := rule.partitionFor(sqlInt(k), 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("key %d -> partition %d, want %d", k, got, want)
		}
	}
}

// Small aliases to keep the range test readable.
type sqlVal = sqltypesValue

// ---- WAN ----

func newWAN(t *testing.T, latency time.Duration) (*WAN, map[string]*WSession) {
	t.Helper()
	sites := []*SiteConfig{}
	names := []string{"eu", "us", "asia"}
	for _, n := range names {
		reps := newReplicas(t, 1, ReplicaConfig{})
		reps[0].name = n + "-master"
		cluster := NewMasterSlave(reps[0], nil, MasterSlaveConfig{ReadFromMaster: true})
		t.Cleanup(cluster.Close)
		sites = append(sites, &SiteConfig{
			Name: n, Cluster: cluster, OwnedKeys: []sqlVal{sqlStr(n)},
		})
	}
	// Bootstrap each site's schema directly (schema is global).
	for _, s := range sites {
		sess := s.Cluster.NewSession("boot")
		mustExecC(t, sess.Exec, "CREATE DATABASE shop")
		mustExecC(t, sess.Exec, "USE shop")
		mustExecC(t, sess.Exec, "CREATE TABLE bookings (id INTEGER PRIMARY KEY, region TEXT, what TEXT)")
		sess.Close()
	}
	w, err := NewWAN(sites, WANConfig{Table: "bookings", Column: "region", Latency: latency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	out := make(map[string]*WSession, len(names))
	for _, n := range names {
		ws, err := w.NewSession(n, "app")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ws.Close)
		mustExecC(t, ws.Exec, "USE shop")
		out[n] = ws
	}
	return w, out
}

func TestWANLocalWritesFastRemoteSlow(t *testing.T) {
	_, sessions := newWAN(t, 30*time.Millisecond)
	eu := sessions["eu"]
	start := time.Now()
	mustExecC(t, eu.Exec, "INSERT INTO bookings (id, region, what) VALUES (1, 'eu', 'hotel')")
	local := time.Since(start)
	start = time.Now()
	mustExecC(t, eu.Exec, "INSERT INTO bookings (id, region, what) VALUES (2, 'asia', 'flight')")
	remote := time.Since(start)
	if local > 20*time.Millisecond {
		t.Fatalf("local write too slow: %v", local)
	}
	if remote < 55*time.Millisecond {
		t.Fatalf("remote write did not pay the WAN round trip: %v", remote)
	}
}

func TestWANAsyncConvergence(t *testing.T) {
	w, sessions := newWAN(t, 10*time.Millisecond)
	mustExecC(t, sessions["eu"].Exec, "INSERT INTO bookings (id, region, what) VALUES (1, 'eu', 'hotel')")
	mustExecC(t, sessions["us"].Exec, "INSERT INTO bookings (id, region, what) VALUES (2, 'us', 'car')")
	// All three sites converge to both rows.
	var reps []*Replica
	for _, s := range w.sites {
		reps = append(reps, s.Cluster.Master())
	}
	checkConverged(t, reps, "shop")
	res := mustExecC(t, sessions["asia"].Exec, "SELECT COUNT(*) FROM bookings")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("asia count = %d", res.Rows[0][0].Int())
	}
}

// ---- provisioner ----

func TestProvisionerResyncSerialAndParallel(t *testing.T) {
	// Build a source cluster whose events flow into a recovery log.
	ms, sess := newMSCluster(t, 0, MasterSlaveConfig{ReadFromMaster: true})
	mustExecC(t, sess.Exec, "CREATE TABLE t2 (id INTEGER PRIMARY KEY, v INTEGER)")
	for i := 1; i <= 40; i++ {
		mustExecC(t, sess.Exec, fmt.Sprintf("INSERT INTO t2 (id, v) VALUES (%d, %d)", i, i))
	}
	// Record the full committed history (including bootstrap DDL) into the
	// recovery log — a fresh replica replays from the beginning.
	prov := NewProvisioner(newRecoveryLog())
	events, _ := ms.Master().Engine().Binlog().ReadFrom(0, 0)
	for _, ev := range events {
		prov.RecordEvent(ev)
	}

	for _, parallel := range []bool{false, true} {
		fresh := NewReplica(ReplicaConfig{Name: fmt.Sprintf("fresh-par=%v", parallel)})
		res, err := prov.Resync(fresh, 0, ResyncOptions{Parallel: parallel, BatchWait: 10 * time.Millisecond}, 10*time.Second)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		if !res.CaughtUp {
			t.Fatalf("parallel=%v: did not catch up", parallel)
		}
		c1, err := ms.Master().Engine().TableChecksum("shop", "t2")
		if err != nil {
			t.Fatal(err)
		}
		c2, err := fresh.Engine().TableChecksum("shop", "t2")
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("parallel=%v: resync diverged", parallel)
		}
	}
}

func TestProvisionerCheckpoints(t *testing.T) {
	prov := NewProvisioner(newRecoveryLog())
	prov.Log().Append([]string{"INSERT INTO t (v) VALUES (1)"}, []string{"d.t"}, false)
	prov.CheckpointRemove("r2", prov.Log().Head())
	prov.Log().Append([]string{"INSERT INTO t (v) VALUES (2)"}, []string{"d.t"}, false)
	seq, ok := prov.Log().CheckpointSeq("remove:r2")
	if !ok || seq != 1 {
		t.Fatalf("checkpoint: %d, %v", seq, ok)
	}
	if got := len(prov.Log().ReadFrom(seq, 0)); got != 1 {
		t.Fatalf("entries after checkpoint = %d", got)
	}
}
