package core

import (
	"fmt"
	"sort"
)

// DivergenceReport describes replica state mismatches found by checksum
// comparison — the detector the paper implies every statement-replication
// deployment needs (§4.3.2).
type DivergenceReport struct {
	// Diverged maps "db.table" to the set of distinct checksums observed
	// (replica name -> checksum). Tables absent from the map agree.
	Diverged map[string]map[string]uint64
}

// OK reports whether all replicas agree on all tables.
func (r *DivergenceReport) OK() bool { return len(r.Diverged) == 0 }

// Tables lists the diverged tables, sorted.
func (r *DivergenceReport) Tables() []string {
	out := make([]string, 0, len(r.Diverged))
	for t := range r.Diverged {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String summarizes the report.
func (r *DivergenceReport) String() string {
	if r.OK() {
		return "replicas consistent"
	}
	return fmt.Sprintf("DIVERGED tables: %v", r.Tables())
}

// CheckDivergence compares per-table checksums across replicas for the
// given database. All replicas must host the database.
func CheckDivergence(replicas []*Replica, db string) (*DivergenceReport, error) {
	if len(replicas) < 2 {
		return &DivergenceReport{Diverged: map[string]map[string]uint64{}}, nil
	}
	// Union of table names across replicas (a missing table is itself a
	// divergence, surfaced via checksum 0 vs missing entry), gathered via
	// a throwaway session per replica.
	tables := make(map[string]bool)
	for _, r := range replicas {
		s := r.Engine().NewSession("divergence")
		if _, err := s.Exec("USE " + db); err != nil {
			s.Close()
			return nil, fmt.Errorf("core: replica %s: %w", r.Name(), err)
		}
		res, err := s.Exec("SHOW TABLES")
		s.Close()
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			tables[row[0].Str()] = true
		}
	}
	report := &DivergenceReport{Diverged: make(map[string]map[string]uint64)}
	for t := range tables {
		sums := make(map[string]uint64, len(replicas))
		distinct := make(map[uint64]bool)
		for _, r := range replicas {
			sum, err := r.Engine().TableChecksum(db, t)
			if err != nil {
				sum = 0 // missing table counts as divergence
			}
			sums[r.Name()] = sum
			distinct[sum] = true
		}
		if len(distinct) > 1 {
			report.Diverged[db+"."+t] = sums
		}
	}
	return report, nil
}
