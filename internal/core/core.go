package core
