package core

import (
	"errors"
	"testing"
)

// PR 8 regression tests: request-path errors introduced (or re-wrapped) for
// the typederr analyzer must actually satisfy errors.Is against their
// sentinels, so drivers and the wire layer can classify them.

func TestMMSessionTxnStateSentinel(t *testing.T) {
	_, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: StatementMode})
	s := sessions[0]

	if _, err := s.Exec("COMMIT"); !errors.Is(err, ErrTxnState) {
		t.Fatalf("COMMIT without txn: got %v, want ErrTxnState", err)
	}
	if _, err := s.Exec("ROLLBACK"); !errors.Is(err, ErrTxnState) {
		t.Fatalf("ROLLBACK without txn: got %v, want ErrTxnState", err)
	}
	mustExecC(t, s.Exec, "BEGIN")
	if _, err := s.Exec("BEGIN"); !errors.Is(err, ErrTxnState) {
		t.Fatalf("nested BEGIN: got %v, want ErrTxnState", err)
	}
	mustExecC(t, s.Exec, "ROLLBACK")
}

func TestMMSessionDDLInTxnSentinel(t *testing.T) {
	_, sessions := newMMCluster(t, 2, MultiMasterConfig{Mode: StatementMode})
	s := sessions[0]
	mustExecC(t, s.Exec, "BEGIN")
	_, err := s.Exec("CREATE TABLE nope (id INTEGER PRIMARY KEY)")
	if !errors.Is(err, ErrUnsupportedStatement) {
		t.Fatalf("DDL inside txn: got %v, want ErrUnsupportedStatement", err)
	}
	mustExecC(t, s.Exec, "ROLLBACK")
}

func TestPartitionedTxnStateSentinel(t *testing.T) {
	_, sess := newPartitioned(t, 2)
	if _, err := sess.Exec("COMMIT"); !errors.Is(err, ErrTxnState) {
		t.Fatalf("COMMIT without txn: got %v, want ErrTxnState", err)
	}
	mustExecC(t, sess.Exec, "BEGIN")
	if _, err := sess.Exec("BEGIN"); !errors.Is(err, ErrTxnState) {
		t.Fatalf("nested BEGIN: got %v, want ErrTxnState", err)
	}
	mustExecC(t, sess.Exec, "ROLLBACK")
}

func TestPartitionedUnsupportedStatementSentinel(t *testing.T) {
	_, sess := newPartitioned(t, 3)
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')")

	if _, err := sess.Exec("INSERT INTO items (name) VALUES ('nokey')"); !errors.Is(err, ErrUnsupportedStatement) {
		t.Fatalf("INSERT without partition key: got %v, want ErrUnsupportedStatement", err)
	}
	if _, err := sess.Query("SELECT AVG(id) FROM items"); !errors.Is(err, ErrUnsupportedStatement) {
		t.Fatalf("scattered AVG: got %v, want ErrUnsupportedStatement", err)
	}
	if _, err := sess.Query("SELECT name, COUNT(*) FROM items GROUP BY name"); !errors.Is(err, ErrUnsupportedStatement) {
		t.Fatalf("scattered GROUP BY: got %v, want ErrUnsupportedStatement", err)
	}
}
