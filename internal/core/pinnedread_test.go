package core

import (
	"testing"
	"time"
)

// TestPinnedReadHonorsSessionConsistency is the regression test for the
// stale-pinned-read bug: under the default connection-level balancing, a
// session's first read pins a slave; subsequent reads used to go to that
// slave without re-checking the consistency guarantee, so a session-
// consistent read issued right after a write could observe the pre-write
// state whenever the pinned slave lagged. The statement fast path made
// clients fast enough to hit the window reliably through the wire layer.
// ApplyDelay makes the lag deterministic here.
func TestPinnedReadHonorsSessionConsistency(t *testing.T) {
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{
		Consistency: SessionConsistent,
		ApplyDelay:  50 * time.Millisecond,
	})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	waitCaughtUp(t, ms)

	// Pin a (currently fresh) slave.
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("pre-write count: %v", res.Rows)
	}

	// Write, then read immediately — well inside the slaves' 50 ms apply
	// delay. Read-your-writes must hold even though the pinned slave is
	// stale: the router has to fall back to a fresh replica (the master).
	mustExecC(t, sess.Exec, "UPDATE items SET id = 77 WHERE id = 3")
	mustExecC(t, sess.Exec, "DELETE FROM items WHERE id = 1")
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("session-consistent read served stale pinned replica: COUNT=%d, want 2", got)
	}
	// The master served that read as a fallback; it must NOT have been
	// installed as the pin, or this session would read from the master
	// forever and read-one/write-all scaling would quietly collapse.
	if sess.pinned == ms.Master() {
		t.Fatal("master fallback was pinned")
	}
	res = mustExecC(t, sess.Exec, "SELECT name FROM items WHERE id = 77")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "c" {
		t.Fatalf("read-your-writes broken for moved key: %v", res.Rows)
	}

	// Once the slaves drain, reads return to (and re-pin) a slave.
	waitCaughtUp(t, ms)
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("post-catchup count: %v", res.Rows)
	}
	if sess.pinned == nil || sess.pinned == ms.Master() {
		t.Fatalf("reads did not re-pin a drained slave (pinned=%v)", sess.pinned)
	}
}

// TestPinnedReadReleasedOnPromotion: a pinned slave that gets promoted to
// master must stop absorbing its sessions' reads — once a fresh slave is
// available again, reads move (and re-pin) there.
func TestPinnedReadReleasedOnPromotion(t *testing.T) {
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{Consistency: SessionConsistent})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)
	mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	pinned := sess.pinned
	if pinned == nil || pinned == ms.Master() {
		t.Fatalf("expected a slave pin, got %v", pinned)
	}

	old := ms.Master()
	old.Fail()
	promoted, err := ms.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if promoted != pinned {
		t.Fatalf("expected the pinned slave to be promoted, got %v", promoted)
	}
	// Old master rejoins as a slave and catches up.
	if err := ms.Failback(old, old.Engine().Binlog().Head()); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, ms)

	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("post-promotion read: %v", res.Rows)
	}
	if sess.pinned == ms.Master() {
		t.Fatal("session still pinned to the promoted master")
	}
}
