package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qcache"
	"repro/internal/sqlparse"
)

// normalizedSQL renders a statement text the way the cache keys it.
func normalizedSQL(t *testing.T, sql string) string {
	t.Helper()
	st, err := sqlparse.ParseCached(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st.SQL()
}

// TestCachedReadServesFromCache: a repeated eligible read is served from
// the cache with zero backend executions.
func TestCachedReadServesFromCache(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{
		Consistency: SessionConsistent,
		QueryCache:  qc,
	})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
	waitCaughtUp(t, ms)

	const q = "SELECT COUNT(*) FROM items"
	res := mustExecC(t, sess.Exec, q) // miss: fills the cache
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("first read: %v", res.Rows)
	}
	execsBefore := uint64(0)
	for _, r := range append(ms.Slaves(), ms.Master()) {
		execsBefore += r.Execs()
	}
	hitsBefore := qc.Stats().Hits
	for i := 0; i < 10; i++ {
		res = mustExecC(t, sess.Exec, q)
		if res.Rows[0][0].Int() != 2 {
			t.Fatalf("cached read %d: %v", i, res.Rows)
		}
	}
	execsAfter := uint64(0)
	for _, r := range append(ms.Slaves(), ms.Master()) {
		execsAfter += r.Execs()
	}
	if execsAfter != execsBefore {
		t.Fatalf("cache hits executed on a backend: %d -> %d", execsBefore, execsAfter)
	}
	if got := qc.Stats().Hits - hitsBefore; got != 10 {
		t.Fatalf("hits = %d, want 10", got)
	}
}

// TestCachedReadHonorsSessionConsistency is the cache mirror of
// TestPinnedReadHonorsSessionConsistency: a session-consistent read issued
// right after a write must not be served the pre-write cached result, even
// though that entry was perfectly fresh a moment earlier. ApplyDelay keeps
// the slaves (whose positions tag slave-filled entries) deterministically
// stale through the window.
func TestCachedReadHonorsSessionConsistency(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{
		Consistency: SessionConsistent,
		ApplyDelay:  50 * time.Millisecond,
		QueryCache:  qc,
	})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	waitCaughtUp(t, ms)

	// Fill the cache with the pre-write result.
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("pre-write count: %v", res.Rows)
	}

	// Write, then read well inside the slaves' 50 ms apply delay. The
	// cached COUNT=3 entry must be refused (position < last write) and the
	// read routed to a fresh replica.
	mustExecC(t, sess.Exec, "DELETE FROM items WHERE id = 1")
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("session-consistent read served stale cached result: COUNT=%d, want 2", got)
	}

	// The post-write result was cached at the master's position: repeated
	// reads now hit the cache and still see the write.
	hitsBefore := qc.Stats().Hits
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("post-write cached read: %v", res.Rows)
	}
	if qc.Stats().Hits == hitsBefore {
		t.Fatal("post-write read did not hit the refilled cache")
	}

	// A second session of the same user that never wrote must not be
	// served the pre-write entry either: invalidation was synchronous
	// with the first session's ack, and the refilled entry carries the
	// post-write state. (A different user would miss — entries are
	// user-keyed — and may legally read a lagging slave under session
	// consistency, having written nothing.)
	other := ms.NewSession("test")
	defer other.Close()
	other.pool.setDB("shop")
	res = mustExecC(t, other.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("same-user session read pre-write state after ack: %v", res.Rows)
	}
}

// TestCacheInvalidatedBeforeWriteAck asserts the ordering contract
// directly: by the time a write returns to its session, the cache no longer
// serves the pre-write entry to anyone — not even a consistency-free
// lookup with minPos 0.
func TestCacheInvalidatedBeforeWriteAck(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	ms, sess := newMSCluster(t, 2, MasterSlaveConfig{
		Consistency: SessionConsistent,
		ApplyDelay:  50 * time.Millisecond, // slaves stay stale past the ack
		QueryCache:  qc,
	})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)

	const q = "SELECT name FROM items WHERE id = 1"
	text := normalizedSQL(t, q)
	mustExecC(t, sess.Exec, q)
	if _, ok := ms.QueryCacheScope().Get("test", "shop", text, nil, 0); !ok {
		t.Fatal("warm-up read did not fill the cache")
	}
	mustExecC(t, sess.Exec, "UPDATE items SET name = 'z' WHERE id = 1")
	// The write has been acknowledged; the pre-write entry must be gone.
	if res, ok := ms.QueryCacheScope().Get("test", "shop", text, nil, 0); ok {
		t.Fatalf("pre-write entry still served after write ack: %v", res.Rows)
	}
}

// TestCachedReadSkipsSerializable: serializable reads take 2PL locks; they
// must bypass the cache in both directions (no hits, no fills).
func TestCachedReadSkipsSerializable(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	ms, sess := newMSCluster(t, 1, MasterSlaveConfig{
		Consistency: SessionConsistent,
		QueryCache:  qc,
	})
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitCaughtUp(t, ms)
	mustExecC(t, sess.Exec, "SET ISOLATION LEVEL SERIALIZABLE")

	puts := qc.Stats().Puts
	hits := qc.Stats().Hits
	for i := 0; i < 3; i++ {
		mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	}
	st := qc.Stats()
	if st.Puts != puts || st.Hits != hits {
		t.Fatalf("serializable reads touched the cache: %+v", st)
	}

	// Dropping back to snapshot re-enables caching.
	mustExecC(t, sess.Exec, "SET ISOLATION LEVEL SNAPSHOT")
	mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if qc.Stats().Puts == puts {
		t.Fatal("snapshot read did not fill the cache")
	}
}

// TestCachedReadsConcurrentWriters runs transfer transactions against
// cached readers under -race: every read must observe a committed state
// (the transfer invariant holds), never a stale-cache artifact newer
// sessions shouldn't see.
func TestCachedReadsConcurrentWriters(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	ms, boot := newMSCluster(t, 2, MasterSlaveConfig{
		Consistency: SessionConsistent,
		ApplyDelay:  2 * time.Millisecond,
		QueryCache:  qc,
	})
	mustExecC(t, boot.Exec, "INSERT INTO items (id, name, stock) VALUES (1, 'a', 25), (2, 'b', 25), (3, 'c', 25), (4, 'd', 25)")
	waitCaughtUp(t, ms)

	const total = 100
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := ms.NewSession(fmt.Sprintf("writer%d", w))
			defer sess.Close()
			if _, err := sess.Exec("USE shop"); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				from, to := 1+(i+w)%4, 1+(i+w+1)%4
				for _, sql := range []string{
					"BEGIN",
					fmt.Sprintf("UPDATE items SET stock = stock - 1 WHERE id = %d", from),
					fmt.Sprintf("UPDATE items SET stock = stock + 1 WHERE id = %d", to),
					"COMMIT",
				} {
					if _, err := sess.Exec(sql); err != nil {
						errs <- fmt.Errorf("%s: %w", sql, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := ms.NewSession(fmt.Sprintf("reader%d", r))
			defer sess.Close()
			if _, err := sess.Exec("USE shop"); err != nil {
				errs <- err
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Exec("SELECT SUM(stock) FROM items")
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].Int(); got != total {
					errs <- fmt.Errorf("read observed torn/stale state: SUM=%d, want %d", got, total)
					return
				}
				// Yield so the slave appliers are not starved of the
				// engine lock by a hot read loop.
				time.Sleep(100 * time.Microsecond)
			}
		}(r)
	}

	go func() {
		time.Sleep(300 * time.Millisecond)
		close(stop)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Deterministic epilogue: once the slaves drain, reads must fill and
	// then hit the cache — and still observe the final committed state.
	waitCaughtUp(t, ms)
	sess := ms.NewSession("post")
	defer sess.Close()
	mustExecC(t, sess.Exec, "USE shop")
	hitsBefore := qc.Stats().Hits
	for i := 0; i < 3; i++ {
		res := mustExecC(t, sess.Exec, "SELECT SUM(stock) FROM items")
		if got := res.Rows[0][0].Int(); got != total {
			t.Fatalf("post-workload read %d: SUM=%d, want %d", i, got, total)
		}
	}
	if qc.Stats().Hits == hitsBefore {
		t.Fatal("post-workload reads never hit the cache")
	}
}

// ---- multi-master ----

// TestMMCachedReadHonorsSessionConsistency (certification mode): after a
// certified commit, the writing session's next read must not be served the
// pre-write cached result.
func TestMMCachedReadHonorsSessionConsistency(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	mm, sessions := newMMCluster(t, 3, MultiMasterConfig{
		Mode:        CertificationMode,
		Consistency: SessionConsistent,
		QueryCache:  qc,
	})
	sess := sessions[0]
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
	waitMMCaughtUp(t, mm)

	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("pre-write count: %v", res.Rows)
	}
	mustExecC(t, sess.Exec, "DELETE FROM items WHERE id = 2")
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if got := res.Rows[0][0].Int(); got != 1 {
		t.Fatalf("session-consistent read served stale cached result: COUNT=%d, want 1", got)
	}
	// Direct probe: the write-set invalidation happened before the commit
	// was acknowledged, so the old entry is gone for everyone.
	text := normalizedSQL(t, "SELECT COUNT(*) FROM items")
	if res, ok := mm.QueryCacheScope().Get("test", "shop", text, nil, 0); ok && res.Rows[0][0].Int() == 2 {
		t.Fatal("pre-write entry survived certified commit ack")
	}
}

// TestMMStatementModeFlushesDatabase: statement-mode scripts have no
// captured write set; committing one flushes the affected database's
// cached results before the ack.
func TestMMStatementModeFlushesDatabase(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	mm, sessions := newMMCluster(t, 2, MultiMasterConfig{
		Mode:        StatementMode,
		Consistency: SessionConsistent,
		QueryCache:  qc,
	})
	sess := sessions[0]
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (1, 'a')")
	waitMMCaughtUp(t, mm)

	mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (2, 'b')")
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if got := res.Rows[0][0].Int(); got != 2 {
		t.Fatalf("read after statement-mode write: COUNT=%d, want 2", got)
	}
	_ = mm
}

// TestMMCachedReadsConcurrentWriters: certification-mode writers against
// cached readers under -race, same invariant discipline as the
// master-slave variant.
func TestMMCachedReadsConcurrentWriters(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	mm, sessions := newMMCluster(t, 3, MultiMasterConfig{
		Mode:        CertificationMode,
		Consistency: SessionConsistent,
		QueryCache:  qc,
	})
	mustExecC(t, sessions[0].Exec, "INSERT INTO items (id, name, stock) VALUES (1, 'a', 50), (2, 'b', 50)")
	waitMMCaughtUp(t, mm)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		sess := sessions[1]
		for i := 0; i < 20; i++ {
			// Single-row certified updates keep the sum invariant per
			// commit pair; write both rows in one transaction so every
			// committed state sums to 100.
			for _, sql := range []string{
				"BEGIN",
				"UPDATE items SET stock = stock - 1 WHERE id = 1",
				"UPDATE items SET stock = stock + 1 WHERE id = 2",
				"COMMIT",
			} {
				if _, err := sess.Exec(sql); err != nil {
					errs <- fmt.Errorf("%s: %w", sql, err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := sessions[2]
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := sess.Exec("SELECT SUM(stock) FROM items")
			if err != nil {
				errs <- err
				return
			}
			if got := res.Rows[0][0].Int(); got != 100 {
				errs <- fmt.Errorf("read observed torn/stale state: SUM=%d, want 100", got)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// ---- partitioned ----

// TestPartitionedCachedReads: one shared Cache backs every partition
// without result collisions (scopes), keyed and scattered reads are served
// correctly, and a write through one partition invalidates before its ack.
func TestPartitionedCachedReads(t *testing.T) {
	qc := qcache.New(qcache.Config{})
	parts := make([]*MasterSlave, 3)
	for i := range parts {
		reps := newReplicas(t, 1, ReplicaConfig{Name: fmt.Sprintf("p%d", i)})
		reps[0].name = fmt.Sprintf("p%d-r1", i)
		parts[i] = NewMasterSlave(reps[0], nil, MasterSlaveConfig{
			ReadFromMaster: true,
			Consistency:    SessionConsistent,
			QueryCache:     qc, // shared instance, per-cluster scopes
		})
	}
	pc, err := NewPartitioned(parts, []*PartitionRule{{
		Table: "items", Column: "id", Strategy: HashPartition,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Close)
	sess := pc.NewSession("test")
	t.Cleanup(sess.Close)
	mustExecC(t, sess.Exec, "CREATE DATABASE shop")
	mustExecC(t, sess.Exec, "USE shop")
	mustExecC(t, sess.Exec, "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)")

	var values []string
	for i := 1; i <= 30; i++ {
		values = append(values, fmt.Sprintf("(%d, 'n%02d')", i, i))
	}
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES "+strings.Join(values, ", "))

	// Scatter-gather COUNT: each partition's sub-result caches under its
	// own scope; the merged total must be exact, twice.
	for i := 0; i < 2; i++ {
		res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
		if got := res.Rows[0][0].Int(); got != 30 {
			t.Fatalf("scatter COUNT pass %d = %d, want 30 (scope collision?)", i, got)
		}
	}
	if qc.Stats().Hits == 0 {
		t.Fatal("second scatter pass never hit the cache")
	}

	// Keyed read twice: second serves from the owning partition's scope.
	for i := 0; i < 2; i++ {
		res := mustExecC(t, sess.Exec, "SELECT name FROM items WHERE id = 7")
		if len(res.Rows) != 1 || res.Rows[0][0].Str() != "n07" {
			t.Fatalf("keyed read pass %d: %v", i, res.Rows)
		}
	}

	// A write through one partition invalidates before its ack: the next
	// scatter COUNT must see 31.
	mustExecC(t, sess.Exec, "INSERT INTO items (id, name) VALUES (31, 'n31')")
	res := mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if got := res.Rows[0][0].Int(); got != 31 {
		t.Fatalf("post-insert scatter COUNT = %d, want 31", got)
	}
}
