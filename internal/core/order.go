package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/gcs"
	"repro/internal/simnet"
)

// Ordered is one payload delivered in total order to every consumer.
type Ordered struct {
	Seq     uint64
	Payload any
}

// Orderer is the total-order broadcast abstraction multi-master replication
// runs on (§4.3.4.1). Two implementations: LocalOrderer (an in-process
// sequencer — zero network cost, used when the middleware is a single
// process) and GCSOrderer (the real group communication protocol over the
// simulated network, used to measure protocol costs and partition
// behaviour).
type Orderer interface {
	// Submit queues a payload for ordered delivery to all subscribers.
	Submit(payload any) error
	// Subscribe returns a channel of ordered deliveries, starting after
	// the current position.
	Subscribe() <-chan Ordered
	// Close shuts the orderer down.
	Close()
}

// LocalOrderer is a mutex-protected sequencer: the centralized scheduler of
// C-JDBC-style middleware. It is itself a single point of failure — which
// is precisely the §3.2 critique, measured in experiment C5.
//
// Delivery, closing and subscriber teardown all happen under one mutex, and
// every send is non-blocking: Submit can never race Close into a send on a
// closed channel, and a wedged subscriber (its buffer full because its
// consumer stopped draining) can never stall the sequencer for every other
// producer. Instead the wedged subscription is dropped — its channel is
// closed, which its consumer observes exactly like an orderer shutdown —
// matching how a broken replica behaves elsewhere in the middleware:
// it stops receiving the stream and needs operator intervention, but the
// cluster keeps committing.
type LocalOrderer struct {
	mu     sync.Mutex
	seq    uint64
	subs   []*localSub
	closed bool

	dropped atomic.Uint64
}

// localSub is one subscription. closed is only read/written under the
// orderer mutex, which is what makes close(ch) race-free against sends.
type localSub struct {
	ch     chan Ordered
	closed bool
}

// localOrdererBuf is the per-subscriber delivery buffer. A subscriber this
// far behind the sequencer is considered wedged and is dropped.
const localOrdererBuf = 4096

// NewLocalOrderer creates an in-process sequencer.
func NewLocalOrderer() *LocalOrderer { return &LocalOrderer{} }

// Submit implements Orderer. Delivery is non-blocking: a subscriber whose
// buffer is full is dropped (channel closed) rather than allowed to wedge
// every producer behind the sequencer lock.
func (o *LocalOrderer) Submit(payload any) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return gcs.ErrStopped
	}
	o.seq++
	msg := Ordered{Seq: o.seq, Payload: payload}
	live := o.subs[:0]
	for _, s := range o.subs {
		select {
		case s.ch <- msg:
			live = append(live, s)
		default:
			s.closed = true
			close(s.ch)
			o.dropped.Add(1)
		}
	}
	o.subs = live
	return nil
}

// Subscribe implements Orderer.
func (o *LocalOrderer) Subscribe() <-chan Ordered {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := &localSub{ch: make(chan Ordered, localOrdererBuf)}
	if o.closed {
		// Late subscription on a closed orderer: deliver the shutdown.
		s.closed = true
		close(s.ch)
		return s.ch
	}
	o.subs = append(o.subs, s)
	return s.ch
}

// Close implements Orderer. Safe to call concurrently with Submit and with
// itself: channel closes happen under the same mutex as sends.
func (o *LocalOrderer) Close() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return
	}
	o.closed = true
	for _, s := range o.subs {
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
	}
	o.subs = nil
}

// DroppedSubscribers reports how many subscriptions were torn down because
// their consumer wedged with a full buffer.
func (o *LocalOrderer) DroppedSubscribers() uint64 { return o.dropped.Load() }

// GCSOrderer adapts one gcs.Node into the Orderer interface. Each replica
// of a distributed deployment owns one; Subscribe must be called exactly
// once per node (the gcs delivery stream is single-consumer).
type GCSOrderer struct {
	node *gcs.Node
	out  chan Ordered
	once sync.Once
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewGCSOrderer wraps a started gcs node.
func NewGCSOrderer(node *gcs.Node) *GCSOrderer {
	return &GCSOrderer{node: node, out: make(chan Ordered, 4096), stop: make(chan struct{})}
}

// Submit implements Orderer.
func (o *GCSOrderer) Submit(payload any) error {
	return o.node.Broadcast(payload)
}

// Subscribe implements Orderer.
func (o *GCSOrderer) Subscribe() <-chan Ordered {
	o.once.Do(func() {
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			for {
				select {
				case <-o.stop:
					return
				case d, ok := <-o.node.Deliveries():
					if !ok {
						close(o.out)
						return
					}
					select {
					case o.out <- Ordered{Seq: d.Seq, Payload: d.Payload}:
					case <-o.stop:
						return
					}
				}
			}
		}()
	})
	return o.out
}

// Close implements Orderer.
func (o *GCSOrderer) Close() {
	close(o.stop)
	o.node.Stop()
	o.wg.Wait()
}

// View exposes the node's membership view (for quorum checks).
func (o *GCSOrderer) View() gcs.View { return o.node.View() }

// BuildGCSCluster is a helper wiring n gcs nodes on a fresh simnet and
// returning their orderers. Used by experiments C10 and the WAN setups.
func BuildGCSCluster(n int, cfg gcs.Config, seed int64) (*simnet.Network, []*GCSOrderer) {
	net := simnet.NewNetwork(seed)
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i + 1)
	}
	out := make([]*GCSOrderer, n)
	for i, id := range ids {
		node := gcs.NewNode(net.Attach(id), ids, cfg)
		node.Start()
		out[i] = NewGCSOrderer(node)
	}
	return net, out
}
