package core

import (
	"sync"

	"repro/internal/gcs"
	"repro/internal/simnet"
)

// Ordered is one payload delivered in total order to every consumer.
type Ordered struct {
	Seq     uint64
	Payload any
}

// Orderer is the total-order broadcast abstraction multi-master replication
// runs on (§4.3.4.1). Two implementations: LocalOrderer (an in-process
// sequencer — zero network cost, used when the middleware is a single
// process) and GCSOrderer (the real group communication protocol over the
// simulated network, used to measure protocol costs and partition
// behaviour).
type Orderer interface {
	// Submit queues a payload for ordered delivery to all subscribers.
	Submit(payload any) error
	// Subscribe returns a channel of ordered deliveries, starting after
	// the current position.
	Subscribe() <-chan Ordered
	// Close shuts the orderer down.
	Close()
}

// LocalOrderer is a mutex-protected sequencer: the centralized scheduler of
// C-JDBC-style middleware. It is itself a single point of failure — which
// is precisely the §3.2 critique, measured in experiment C5.
type LocalOrderer struct {
	mu     sync.Mutex
	seq    uint64
	subs   []chan Ordered
	closed bool
}

// NewLocalOrderer creates an in-process sequencer.
func NewLocalOrderer() *LocalOrderer { return &LocalOrderer{} }

// Submit implements Orderer.
func (o *LocalOrderer) Submit(payload any) error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return gcs.ErrStopped
	}
	o.seq++
	msg := Ordered{Seq: o.seq, Payload: payload}
	subs := append([]chan Ordered{}, o.subs...)
	o.mu.Unlock()
	for _, ch := range subs {
		ch <- msg
	}
	return nil
}

// Subscribe implements Orderer.
func (o *LocalOrderer) Subscribe() <-chan Ordered {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch := make(chan Ordered, 4096)
	o.subs = append(o.subs, ch)
	return ch
}

// Close implements Orderer.
func (o *LocalOrderer) Close() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return
	}
	o.closed = true
	for _, ch := range o.subs {
		close(ch)
	}
	o.subs = nil
}

// GCSOrderer adapts one gcs.Node into the Orderer interface. Each replica
// of a distributed deployment owns one; Subscribe must be called exactly
// once per node (the gcs delivery stream is single-consumer).
type GCSOrderer struct {
	node *gcs.Node
	out  chan Ordered
	once sync.Once
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewGCSOrderer wraps a started gcs node.
func NewGCSOrderer(node *gcs.Node) *GCSOrderer {
	return &GCSOrderer{node: node, out: make(chan Ordered, 4096), stop: make(chan struct{})}
}

// Submit implements Orderer.
func (o *GCSOrderer) Submit(payload any) error {
	return o.node.Broadcast(payload)
}

// Subscribe implements Orderer.
func (o *GCSOrderer) Subscribe() <-chan Ordered {
	o.once.Do(func() {
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			for {
				select {
				case <-o.stop:
					return
				case d, ok := <-o.node.Deliveries():
					if !ok {
						close(o.out)
						return
					}
					select {
					case o.out <- Ordered{Seq: d.Seq, Payload: d.Payload}:
					case <-o.stop:
						return
					}
				}
			}
		}()
	})
	return o.out
}

// Close implements Orderer.
func (o *GCSOrderer) Close() {
	close(o.stop)
	o.node.Stop()
	o.wg.Wait()
}

// View exposes the node's membership view (for quorum checks).
func (o *GCSOrderer) View() gcs.View { return o.node.View() }

// BuildGCSCluster is a helper wiring n gcs nodes on a fresh simnet and
// returning their orderers. Used by experiments C10 and the WAN setups.
func BuildGCSCluster(n int, cfg gcs.Config, seed int64) (*simnet.Network, []*GCSOrderer) {
	net := simnet.NewNetwork(seed)
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i + 1)
	}
	out := make([]*GCSOrderer, n)
	for i, id := range ids {
		node := gcs.NewNode(net.Attach(id), ids, cfg)
		node.Start()
		out[i] = NewGCSOrderer(node)
	}
	return net, out
}
