package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// These tests pin the unified bind-argument (?) path on every topology's
// session type — the seed only supported args on engine sessions and the
// wire layer, so a parameterized statement silently lost its bindings at
// the router (MMSession/PSession/WSession had no args path at all) and a
// statement-shipped parameterized write stalled slave appliers with
// "parameter not bound".

func intv(i int64) sqltypes.Value     { return sqltypes.NewInt(i) }
func strv(s string) sqltypes.Value    { return sqltypes.NewString(s) }
func floatv(f float64) sqltypes.Value { return sqltypes.NewFloat(f) }

// TestMSSessionBindArgs covers args through the master-slave router — and,
// critically, that a parameterized write statement-ships to slaves with its
// bindings inlined (the binlog records executable text, not "(?)").
func TestMSSessionBindArgs(t *testing.T) {
	master := NewReplica(ReplicaConfig{Name: "m"})
	slave := NewReplica(ReplicaConfig{Name: "s"})
	ms := NewMasterSlave(master, []*Replica{slave}, MasterSlaveConfig{
		Consistency: SessionConsistent, Ship: ShipStatements,
	})
	defer ms.Close()
	sess := ms.NewSession("app")
	defer sess.Close()
	mustExecC(t, sess.Exec, "CREATE DATABASE d")
	mustExecC(t, sess.Exec, "USE d")
	mustExecC(t, sess.Exec, "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, price FLOAT)")
	if _, err := sess.Exec("INSERT INTO t (id, name, price) VALUES (?, ?, ?)",
		intv(1), strv("it's"), floatv(2.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("UPDATE t SET price = ? WHERE id = ?", floatv(9.75), intv(1)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec("SELECT name, price FROM t WHERE id = ?", intv(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "it's" || res.Rows[0][1].Float() != 9.75 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The slave applied the shipped statements (with inlined bindings,
	// including the quote-bearing string) — the replicas converge.
	waitCaughtUp(t, ms)
	rep, err := CheckDivergence([]*Replica{master, slave}, "d")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("replicas diverged after parameterized writes: %v", rep)
	}
	// Explicit transaction with args (exercises the txn replay log path).
	mustExecC(t, sess.Exec, "BEGIN")
	if _, err := sess.Exec("INSERT INTO t (id, name, price) VALUES (?, ?, ?)",
		intv(2), strv("two"), floatv(1)); err != nil {
		t.Fatal(err)
	}
	mustExecC(t, sess.Exec, "COMMIT")
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %d", res.Rows[0][0].Int())
	}
}

// TestMMSessionBindArgs covers args through the multi-master router in both
// replication modes: statement mode must inline bindings into the ordered
// script; certification mode binds at the dry run and ships row images.
func TestMMSessionBindArgs(t *testing.T) {
	for _, mode := range []MMMode{StatementMode, CertificationMode} {
		name := "statement"
		if mode == CertificationMode {
			name = "certification"
		}
		t.Run(name, func(t *testing.T) {
			replicas := []*Replica{
				NewReplica(ReplicaConfig{Name: "a"}),
				NewReplica(ReplicaConfig{Name: "b"}),
			}
			mm, err := NewMultiMaster(replicas, []Orderer{NewLocalOrderer()},
				MultiMasterConfig{Mode: mode, Consistency: SessionConsistent})
			if err != nil {
				t.Fatal(err)
			}
			defer mm.Close()
			sess, err := mm.NewSession("app")
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			mustExecC(t, sess.Exec, "CREATE DATABASE d")
			mustExecC(t, sess.Exec, "USE d")
			mustExecC(t, sess.Exec, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
			if _, err := sess.Exec("INSERT INTO t (id, v) VALUES (?, ?)", intv(1), strv("x")); err != nil {
				t.Fatal(err)
			}
			// Transaction with args.
			mustExecC(t, sess.Exec, "BEGIN")
			if _, err := sess.Exec("INSERT INTO t (id, v) VALUES (?, ?)", intv(2), strv("y")); err != nil {
				t.Fatal(err)
			}
			res, err := sess.Exec("SELECT v FROM t WHERE id = ?", intv(2))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].Str() != "y" {
				t.Fatalf("txn read-own-write: %v", res.Rows)
			}
			mustExecC(t, sess.Exec, "COMMIT")
			// Every replica applied the parameterized writes identically.
			deadline := time.Now().Add(5 * time.Second)
			for {
				rep, err := CheckDivergence(replicas, "d")
				if err == nil && rep.OK() {
					if n, _ := replicas[1].Engine().RowCount("d", "t"); n == 2 {
						break
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("replicas never converged: %v", rep)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestPSessionBindArgs covers args through the partition router: the
// binding must happen BEFORE key extraction, or a parameterized statement
// could not be routed at all.
func TestPSessionBindArgs(t *testing.T) {
	_, sess := newPartitioned(t, 3)
	for i := int64(1); i <= 12; i++ {
		if _, err := sess.Exec("INSERT INTO items (id, name) VALUES (?, ?)",
			intv(i), strv(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Exec("SELECT name FROM items WHERE id = ?", intv(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "n5" {
		t.Fatalf("keyed select: %v", res.Rows)
	}
	if _, err := sess.Exec("UPDATE items SET name = ? WHERE id = ?", strv("renamed"), intv(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("DELETE FROM items WHERE id = ?", intv(12)); err != nil {
		t.Fatal(err)
	}
	res = mustExecC(t, sess.Exec, "SELECT COUNT(*) FROM items")
	if res.Rows[0][0].Int() != 11 {
		t.Fatalf("count = %d", res.Rows[0][0].Int())
	}
	// Args inside a single-partition transaction.
	mustExecC(t, sess.Exec, "BEGIN")
	if _, err := sess.Exec("UPDATE items SET name = ? WHERE id = ?", strv("txn"), intv(5)); err != nil {
		t.Fatal(err)
	}
	mustExecC(t, sess.Exec, "COMMIT")
	res = mustExecC(t, sess.Exec, "SELECT name FROM items WHERE id = 5")
	if res.Rows[0][0].Str() != "txn" {
		t.Fatalf("name = %q", res.Rows[0][0].Str())
	}
}

// TestWSessionBindArgs covers args through the WAN router: the geo key must
// be extractable from bound statements so remote-owner writes still forward
// to the owning site.
func TestWSessionBindArgs(t *testing.T) {
	mkSite := func(name string) *SiteConfig {
		r := NewReplica(ReplicaConfig{Name: name})
		return &SiteConfig{
			Name:    name,
			Cluster: NewMasterSlave(r, nil, MasterSlaveConfig{ReadFromMaster: true}),
		}
	}
	eu := mkSite("eu")
	us := mkSite("us")
	eu.OwnedKeys = []sqltypes.Value{strv("eu")}
	us.OwnedKeys = []sqltypes.Value{strv("us")}
	w, err := NewWAN([]*SiteConfig{eu, us}, WANConfig{Table: "bookings", Column: "region"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	defer eu.Cluster.Close()
	defer us.Cluster.Close()

	boot, err := w.NewSession("eu", "setup")
	if err != nil {
		t.Fatal(err)
	}
	mustExecC(t, boot.Exec, "CREATE DATABASE travel")
	mustExecC(t, boot.Exec, "USE travel")
	mustExecC(t, boot.Exec, "CREATE TABLE bookings (id INTEGER PRIMARY KEY, region TEXT)")
	boot.Close()
	// Wait for the DDL to replicate to the US site.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := us.Cluster.Master().Engine().RowCount("travel", "bookings"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("schema never reached the US site")
		}
		time.Sleep(time.Millisecond)
	}

	sess, err := w.NewSession("eu", "app")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	mustExecC(t, sess.Exec, "USE travel")
	// A bound write whose key belongs to the remote site must forward
	// there synchronously: the owning master holds it immediately.
	if _, err := sess.Exec("INSERT INTO bookings (id, region) VALUES (?, ?)",
		intv(1), strv("us")); err != nil {
		t.Fatal(err)
	}
	if n, _ := us.Cluster.Master().Engine().RowCount("travel", "bookings"); n != 1 {
		t.Fatalf("remote-owner write not forwarded: us rows = %d", n)
	}
	// A local-key bound write stays local.
	if _, err := sess.Exec("INSERT INTO bookings (id, region) VALUES (?, ?)",
		intv(2), strv("eu")); err != nil {
		t.Fatal(err)
	}
	if n, _ := eu.Cluster.Master().Engine().RowCount("travel", "bookings"); n < 1 {
		t.Fatal("local write missing at local site")
	}
	res, err := sess.Exec("SELECT COUNT(*) FROM bookings WHERE region = ?", strv("eu"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("local read with args: %d", res.Rows[0][0].Int())
	}
}

// TestWSessionRejectsRemoteWriteInTxn pins the WAN transaction guard: a
// transaction is local to its site, and a keyed write owned by another site
// must be refused (forwarding it would autocommit at the owner, outside the
// transaction — a rollback could never undo it).
func TestWSessionRejectsRemoteWriteInTxn(t *testing.T) {
	mkSite := func(name string) *SiteConfig {
		r := NewReplica(ReplicaConfig{Name: name})
		return &SiteConfig{
			Name:    name,
			Cluster: NewMasterSlave(r, nil, MasterSlaveConfig{ReadFromMaster: true}),
		}
	}
	eu := mkSite("eu2")
	us := mkSite("us2")
	eu.OwnedKeys = []sqltypes.Value{strv("eu")}
	us.OwnedKeys = []sqltypes.Value{strv("us")}
	w, err := NewWAN([]*SiteConfig{eu, us}, WANConfig{Table: "bookings", Column: "region"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	defer eu.Cluster.Close()
	defer us.Cluster.Close()
	sess, err := w.NewSession("eu2", "app")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	mustExecC(t, sess.Exec, "CREATE DATABASE travel")
	mustExecC(t, sess.Exec, "USE travel")
	mustExecC(t, sess.Exec, "CREATE TABLE bookings (id INTEGER PRIMARY KEY, region TEXT)")
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO bookings (id, region) VALUES (1, 'us')"); err == nil {
		t.Fatal("remote-owner write inside a transaction was accepted")
	}
	if err := sess.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Nothing escaped to the owning site.
	if n, _ := us.Cluster.Master().Engine().RowCount("travel", "bookings"); n != 0 {
		t.Fatalf("remote site has %d rows from a rolled-back transaction", n)
	}
	// Local-key writes inside a transaction still work.
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO bookings (id, region) VALUES (2, 'eu')"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMSSessionCommitConflictClearsTxnState pins the failed-COMMIT repair:
// a first-committer-wins abort ends the transaction at the engine, and the
// router session must agree — or later writes pile into a stale replay log
// and session consistency breaks.
func TestMSSessionCommitConflictClearsTxnState(t *testing.T) {
	master := NewReplica(ReplicaConfig{Name: "m"})
	ms := NewMasterSlave(master, nil, MasterSlaveConfig{
		ReadFromMaster: true, Consistency: SessionConsistent,
	})
	defer ms.Close()
	a := ms.NewSession("a")
	defer a.Close()
	b := ms.NewSession("b")
	defer b.Close()
	mustExecC(t, a.Exec, "CREATE DATABASE d")
	mustExecC(t, a.Exec, "USE d")
	mustExecC(t, a.Exec, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExecC(t, a.Exec, "INSERT INTO t (id, v) VALUES (1, 0)")
	mustExecC(t, b.Exec, "USE d")

	mustExecC(t, a.Exec, "BEGIN")
	mustExecC(t, a.Exec, "INSERT INTO t (id, v) VALUES (2, 10)")
	// b commits the same key first: a's COMMIT fails the deferred PK
	// uniqueness check (first committer wins).
	mustExecC(t, b.Exec, "INSERT INTO t (id, v) VALUES (2, 20)")
	if _, err := a.Exec("COMMIT"); err == nil {
		t.Fatal("conflicting COMMIT succeeded")
	}
	// The session is out of the transaction and fully usable: autocommit
	// writes run, update lastWriteSeq, and read-your-writes holds.
	mustExecC(t, a.Exec, "UPDATE t SET v = 30 WHERE id = 1")
	res := mustExecC(t, a.Exec, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("v = %d, want 30", res.Rows[0][0].Int())
	}
	if _, err := a.Exec("ROLLBACK"); err == nil {
		t.Fatal("ROLLBACK succeeded with no open transaction")
	}
}
