package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/recoverylog"
)

// ---- Provisioner.Resync error path ----

// TestResyncFailureDoesNotSkipEntries is the regression test for the resync
// bookkeeping bug: the old code recorded pos = head (and stored it as the
// replica's applied position) before checking the replay error, so a
// mid-stream failure marked the replica caught up through head and a
// resumed resync silently skipped every entry the failed pass never
// applied. The fix advances only by the contiguous applied prefix.
func TestResyncFailureDoesNotSkipEntries(t *testing.T) {
	log := recoverylog.New()
	prov := NewProvisioner(log)
	log.Append([]string{"CREATE DATABASE shop"}, nil, true)
	log.Append([]string{"USE shop", "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)"}, nil, true)
	const rows = 20
	for i := 1; i <= rows; i++ {
		log.Append(
			[]string{"USE shop", fmt.Sprintf("INSERT INTO items (id, name) VALUES (%d, 'n%d')", i, i)},
			[]string{"shop.items"}, false)
	}

	rep := NewReplica(ReplicaConfig{Name: "fresh"})
	// Fail transiently at one mid-stream entry (a replica hiccup, not a
	// poisoned statement: the retry must succeed).
	failAt := uint64(12)
	injected := errors.New("transient apply failure")
	tripped := false
	opts := ResyncOptions{BeforeApply: func(e recoverylog.Entry) error {
		if e.Seq == failAt && !tripped {
			tripped = true
			return injected
		}
		return nil
	}}

	_, err := prov.Resync(rep, 0, opts, time.Second)
	if !errors.Is(err, injected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if got := rep.AppliedSeq(); got != failAt-1 {
		t.Fatalf("failed resync recorded applied=%d, want %d (the contiguous applied prefix)", got, failAt-1)
	}

	// Resume from the recorded position: with the bug, this skipped
	// entries 12..22 and the table ended up short.
	res, err := prov.Resync(rep, rep.AppliedSeq(), opts, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CaughtUp {
		t.Fatalf("resumed resync did not catch up: %+v", res)
	}
	n, err := rep.Engine().RowCount("shop", "items")
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("resumed resync left %d rows, want %d (entries skipped)", n, rows)
	}
}

// TestResyncParallelFailureResumes: the parallel replay path reports its
// contiguous applied prefix too, so a resumed parallel resync never skips
// an entry. (Entries beyond the prefix may re-apply on resume — the
// documented re-execution exposure — so this test replays idempotent
// updates, the class of entry for which resumption is exact.)
func TestResyncParallelFailureResumes(t *testing.T) {
	log := recoverylog.New()
	prov := NewProvisioner(log)
	log.Append([]string{"CREATE DATABASE shop"}, nil, true)
	// Entries on distinct tables replay in parallel (per-table conflict
	// tags, as Provisioner.RecordEvent produces); two updates per table
	// keep per-table order observable and make re-application idempotent.
	const tables = 8
	for i := 0; i < tables; i++ {
		log.Append([]string{"USE shop",
			fmt.Sprintf("CREATE TABLE t%d (id INTEGER PRIMARY KEY, name TEXT)", i)}, nil, true)
	}
	seedHead := log.Head()
	// Unknown-footprint entries are replay barriers: every INSERT completes
	// before the parallel UPDATE phase starts, so only idempotent entries
	// can ever re-apply when the resumed resync revisits the failed range.
	for i := 0; i < tables; i++ {
		log.Append([]string{"USE shop", fmt.Sprintf("INSERT INTO t%d (id, name) VALUES (1, 'raw')", i)},
			nil, false)
	}
	for i := 0; i < tables; i++ {
		log.Append([]string{"USE shop", fmt.Sprintf("UPDATE t%d SET name = 'done' WHERE id = 1", i)},
			[]string{fmt.Sprintf("shop.t%d", i)}, false)
	}
	failAt := seedHead + tables + 3 // one of the UPDATE entries

	rep := NewReplica(ReplicaConfig{Name: "fresh"})
	injected := errors.New("transient apply failure")
	var mu sync.Mutex
	tripped := false
	opts := ResyncOptions{Parallel: true, Workers: 4, BeforeApply: func(e recoverylog.Entry) error {
		mu.Lock()
		defer mu.Unlock()
		if e.Seq == failAt && !tripped {
			tripped = true
			return injected
		}
		return nil
	}}

	if _, err := prov.Resync(rep, 0, opts, time.Second); !errors.Is(err, injected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if got := rep.AppliedSeq(); got >= failAt {
		t.Fatalf("failed parallel resync recorded applied=%d, at or beyond the failed entry %d", got, failAt)
	}
	res, err := prov.Resync(rep, rep.AppliedSeq(), opts, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CaughtUp {
		t.Fatalf("resumed resync did not catch up: %+v", res)
	}
	sess := rep.Engine().NewSession("check")
	defer sess.Close()
	if _, err := sess.Exec("USE shop"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tables; i++ {
		got, err := sess.Exec(fmt.Sprintf("SELECT name FROM t%d WHERE id = 1", i))
		if err != nil {
			t.Fatalf("t%d: %v (entry skipped)", i, err)
		}
		if len(got.Rows) != 1 || got.Rows[0][0].Str() != "done" {
			t.Fatalf("t%d = %v, want 'done' (entries skipped)", i, got.Rows)
		}
	}
}

// ---- LocalOrderer Submit/Close race and wedged subscribers ----

// TestLocalOrdererSubmitCloseRace: Submit used to copy the subscriber list
// under the lock but send after releasing it, so a concurrent Close could
// close those channels mid-send and panic Submit with "send on closed
// channel". Run under -race this is also the data-race proof.
func TestLocalOrdererSubmitCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		ord := NewLocalOrderer()
		var consumers sync.WaitGroup
		for i := 0; i < 3; i++ {
			ch := ord.Subscribe()
			consumers.Add(1)
			go func(ch <-chan Ordered) {
				defer consumers.Done()
				for range ch {
				}
			}(ch)
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					if err := ord.Submit(i); err != nil {
						return // closed: expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ord.Close()
		}()
		wg.Wait()
		ord.Close() // idempotent
		consumers.Wait()
	}
}

// TestLocalOrdererWedgedSubscriberDoesNotStallProducers: one subscriber
// that never drains used to wedge every producer once its 4096-entry buffer
// filled. Now the wedged subscription is dropped (channel closed) and the
// sequencer keeps going.
func TestLocalOrdererWedgedSubscriberDoesNotStallProducers(t *testing.T) {
	ord := NewLocalOrderer()
	defer ord.Close()
	wedged := ord.Subscribe() // never read until dropped

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < localOrdererBuf+100; i++ {
			if err := ord.Submit(i); err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producers stalled behind a wedged subscriber")
	}
	if got := ord.DroppedSubscribers(); got != 1 {
		t.Fatalf("DroppedSubscribers = %d, want 1", got)
	}
	// The wedged subscriber's buffered backlog stays readable, then the
	// closed channel tells its consumer the subscription ended.
	n := 0
	for range wedged {
		n++
	}
	if n != localOrdererBuf {
		t.Fatalf("wedged subscriber drained %d buffered events, want %d", n, localOrdererBuf)
	}
}

// TestLocalOrdererKeepsPacedSubscriber: a subscriber that drains is never
// dropped, no matter how many events flow. Production is paced by
// consumption (ack per event) so the test makes no scheduling assumptions.
func TestLocalOrdererKeepsPacedSubscriber(t *testing.T) {
	ord := NewLocalOrderer()
	defer ord.Close()
	ch := ord.Subscribe()
	for i := 0; i < localOrdererBuf+100; i++ {
		if err := ord.Submit(i); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, ok := <-ch; !ok {
			t.Fatal("paced subscriber was dropped")
		}
	}
	if got := ord.DroppedSubscribers(); got != 0 {
		t.Fatalf("DroppedSubscribers = %d, want 0", got)
	}
}

// ---- Monitor.Stop double close ----

// TestMonitorConcurrentStop: two concurrent Stops could both take the
// default branch of the old select-then-close and double-close m.stop.
func TestMonitorConcurrentStop(t *testing.T) {
	ms, _ := newMSCluster(t, 1, MasterSlaveConfig{})
	for round := 0; round < 20; round++ {
		mon := NewMonitor(ms, time.Millisecond)
		mon.Start()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mon.Stop()
			}()
		}
		wg.Wait()
	}
}
