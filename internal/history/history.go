// Package history is the consistency certification harness: it records
// client-observable histories at the replication.Conn boundary (and through
// the database/sql driver), and checks them offline against the guarantees
// the middleware announces — serializability, snapshot isolation, read
// committed, and the session guarantees (read-your-writes, monotonic
// reads).
//
// The checkers follow the Biswas & Enea line of work: for the consistency
// models checked here, verifying a history is polynomial when every write
// installs a unique value (so write-read inference is exact). Histories are
// captured over a key-value abstraction of one table — point reads and
// point writes of (key, value) pairs — which the workload generator
// produces by construction with a process-wide unique-value counter.
//
// A history is a set of sessions; a session is a sequence of transactions;
// a transaction is a sequence of read and write operations plus a commit
// status. Autocommit statements are one-operation transactions. The
// recorder never talks to the cluster: it only parses the SQL the client
// already sent and the results the cluster already returned, so recording
// works identically over every topology and over the wire.
package history

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

const (
	// OpRead is a point read: Value/Found hold what the client observed.
	OpRead OpKind = iota
	// OpWrite is a point write: Value holds what the client installed.
	OpWrite
)

// TxnStatus is the client-observed outcome of a transaction.
type TxnStatus uint8

const (
	// StatusCommitted: the client received a successful commit ack.
	StatusCommitted TxnStatus = iota
	// StatusAborted: the client rolled back, or received a deterministic
	// abort (first-committer-wins conflict, constraint violation).
	StatusAborted
	// StatusUnknown: the commit outcome is ambiguous (connection died
	// in flight). The checker treats such transactions as committed only
	// if another transaction observed one of their writes.
	StatusUnknown
)

func (s TxnStatus) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	}
	return "unknown"
}

// Op is one recorded point operation on the key-value table.
type Op struct {
	Kind OpKind `json:"kind"`
	Key  string `json:"key"`
	// Value is the observed value (reads) or installed value (writes).
	Value int64 `json:"value"`
	// Found is false for a read that saw no row (the key's initial,
	// pre-bootstrap state).
	Found bool `json:"found"`
	// Applied is false for a write whose statement affected no rows.
	Applied bool `json:"applied"`
	// Seq is the replication position the write's commit landed at
	// (engine Result.AtSeq), zero when unknown. Reads leave it zero; the
	// session-guarantee checker derives a read's version position from
	// the writer that installed the observed value.
	Seq uint64 `json:"seq,omitempty"`
}

// Txn is one recorded transaction.
type Txn struct {
	// Session and Index identify the transaction: Index is its position
	// in its session's sequence.
	Session int       `json:"session"`
	Index   int       `json:"index"`
	Status  TxnStatus `json:"status"`
	Ops     []Op      `json:"ops"`
	// Start and End are samples of the recorder's monotonic logical clock
	// (one clock for the whole process): Start is taken before the first
	// statement was sent, End after the last response arrived. Sample
	// order is consistent with real time, so End(a) < Start(b) means a
	// finished before b began — the real-time order edges need nothing
	// more. The values are not durations.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// Name renders a short stable identifier for counterexamples.
func (t *Txn) Name() string { return fmt.Sprintf("s%d/t%d", t.Session, t.Index) }

// Describe renders the transaction's operations for counterexamples.
func (t *Txn) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]", t.Name(), t.Status)
	for _, op := range t.Ops {
		if op.Kind == OpRead {
			if op.Found {
				fmt.Fprintf(&b, " r(%s)=%d", op.Key, op.Value)
			} else {
				fmt.Fprintf(&b, " r(%s)=∅", op.Key)
			}
		} else {
			fmt.Fprintf(&b, " w(%s):=%d", op.Key, op.Value)
		}
	}
	return b.String()
}

// History is a complete recorded run: one entry per session, each in
// session order.
type History struct {
	Sessions [][]*Txn `json:"sessions"`
}

// Txns returns every transaction of every session, session-major.
func (h *History) Txns() []*Txn {
	var out []*Txn
	for _, s := range h.Sessions {
		out = append(out, s...)
	}
	return out
}

// Stats summarizes a history for logs.
func (h *History) Stats() string {
	txns, reads, writes, aborted, unknown := 0, 0, 0, 0, 0
	for _, s := range h.Sessions {
		for _, t := range s {
			txns++
			switch t.Status {
			case StatusAborted:
				aborted++
			case StatusUnknown:
				unknown++
			}
			for _, op := range t.Ops {
				if op.Kind == OpRead {
					reads++
				} else {
					writes++
				}
			}
		}
	}
	return fmt.Sprintf("%d sessions, %d txns (%d aborted, %d unknown), %d reads, %d writes",
		len(h.Sessions), txns, aborted, unknown, reads, writes)
}

// WriteFile serializes the history as indented JSON, the on-disk format
// the driver's record=<path> DSN option produces.
func (h *History) WriteFile(path string) error {
	data, err := json.MarshalIndent(h, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a history serialized by WriteFile.
func ReadFile(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("history: bad history file %s: %w", path, err)
	}
	return &h, nil
}

// registry is the process-wide named-recorder table behind the driver's
// record=mem:<name> DSN option: the application records through the DSN,
// the test retrieves the same recorder by name.
var registry struct {
	mu sync.Mutex
	m  map[string]*Recorder
}

// Shared returns the process-wide named recorder, creating it with the
// given spec on first use (later calls ignore the spec argument).
func Shared(name string, spec Spec) *Recorder {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]*Recorder)
	}
	r, ok := registry.m[name]
	if !ok {
		r = NewRecorder(spec)
		registry.m[name] = r
	}
	return r
}

// DropShared removes a named recorder (so tests can reuse names).
func DropShared(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.m, name)
}

// recorderClock is the recorder's shared monotonic clock: a process-wide
// atomic counter rather than a nanosecond clock. A fetch-and-increment is
// linearizable, so sample order is consistent with real time — if one
// statement's End sample happened before another's Start sample, the
// counter values compare the same way — which is exactly the property the
// real-time-order edges need. It is also several times cheaper than a
// clock read, which matters on the recording hot path. The values are NOT
// durations; they only compare.
var recorderClock atomic.Int64

func monotonicNow() int64 { return recorderClock.Add(1) }
