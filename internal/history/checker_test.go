package history

import (
	"strings"
	"testing"
)

// Test helpers: hand-built histories, one op constructor per shape.

func rd(key string, val int64) Op { return Op{Kind: OpRead, Key: key, Value: val, Found: true} }
func rdMiss(key string) Op        { return Op{Kind: OpRead, Key: key} }
func wr(key string, val int64, seq uint64) Op {
	return Op{Kind: OpWrite, Key: key, Value: val, Applied: true, Seq: seq}
}

type hb struct {
	h *History
}

func newHB(sessions int) *hb {
	return &hb{h: &History{Sessions: make([][]*Txn, sessions)}}
}

func (b *hb) txn(sess int, status TxnStatus, start, end int64, ops ...Op) *hb {
	t := &Txn{Session: sess, Index: len(b.h.Sessions[sess]), Status: status, Ops: ops, Start: start, End: end}
	b.h.Sessions[sess] = append(b.h.Sessions[sess], t)
	return b
}

// expectViolation asserts the check fails with the given kind and that the
// violation renders a counterexample mentioning wantIn.
func expectViolation(t *testing.T, h *History, opts CheckOpts, kind string) *Violation {
	t.Helper()
	v := Check(h, opts)
	if v == nil {
		t.Fatalf("%s: expected a %q violation, history admitted", opts.Level, kind)
	}
	if v.Kind != kind {
		t.Fatalf("%s: expected kind %q, got %q: %s", opts.Level, kind, v.Kind, v)
	}
	if v.String() == "" || !strings.Contains(v.String(), "violation") {
		t.Fatalf("%s: violation renders empty", opts.Level)
	}
	return v
}

func expectPass(t *testing.T, h *History, opts CheckOpts) {
	t.Helper()
	if v := Check(h, opts); v != nil {
		t.Fatalf("%s: expected pass, got: %s", opts.Level, v)
	}
}

// A strictly serial run must pass every level.
func TestCheckerSerialHistoryPassesAllLevels(t *testing.T) {
	h := newHB(2).
		txn(0, StatusCommitted, 0, 10, wr("x", 100, 1)).
		txn(1, StatusCommitted, 20, 30, rd("x", 100), wr("x", 101, 2)).
		txn(0, StatusCommitted, 40, 50, rd("x", 101), wr("y", 200, 3)).
		txn(1, StatusCommitted, 60, 70, rd("y", 200), rd("x", 101)).
		h
	for _, lv := range []Level{ReadCommitted, SnapshotIsolation, Serializable} {
		expectPass(t, h, CheckOpts{Level: lv, RealTime: true})
	}
	if v := CheckSessionGuarantees(h, SessionOpts{}); v != nil {
		t.Fatalf("session guarantees: %s", v)
	}
}

// Dirty read (Adya G1a): observing an aborted transaction's write is a
// violation at every level, including read committed.
func TestCheckerDirtyRead(t *testing.T) {
	for _, lv := range []Level{ReadCommitted, SnapshotIsolation, Serializable} {
		h := newHB(2).
			txn(0, StatusAborted, 0, 10, wr("x", 500, 0)).
			txn(1, StatusCommitted, 5, 15, rd("x", 500)).
			h
		expectViolation(t, h, CheckOpts{Level: lv}, "dirty-read")
	}
}

// Intermediate read (G1b): observing a value its writer overwrote before
// committing violates every level.
func TestCheckerIntermediateRead(t *testing.T) {
	for _, lv := range []Level{ReadCommitted, SnapshotIsolation, Serializable} {
		h := newHB(2).
			txn(0, StatusCommitted, 0, 10, wr("x", 1, 0), wr("x", 2, 1)).
			txn(1, StatusCommitted, 5, 15, rd("x", 1)).
			h
		expectViolation(t, h, CheckOpts{Level: lv}, "intermediate-read")
	}
}

// Circular information flow (G1c): two committed transactions each reading
// the other's write is invalid even at read committed.
func TestCheckerG1cCycleAtReadCommitted(t *testing.T) {
	h := newHB(2).
		txn(0, StatusCommitted, 0, 10, wr("x", 1, 1), rd("y", 2)).
		txn(1, StatusCommitted, 0, 10, wr("y", 2, 2), rd("x", 1)).
		h
	v := expectViolation(t, h, CheckOpts{Level: ReadCommitted}, "cycle")
	if len(v.Steps) == 0 {
		t.Fatalf("expected a counterexample cycle, got none: %s", v)
	}
}

// Lost update: both transactions read the initial version and both commit
// an overwrite. Snapshot isolation's first-committer-wins forbids it;
// read committed allows it.
func TestCheckerLostUpdate(t *testing.T) {
	build := func() *History {
		return newHB(3).
			txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
			txn(1, StatusCommitted, 10, 20, rd("x", 10), wr("x", 11, 2)).
			txn(2, StatusCommitted, 10, 20, rd("x", 10), wr("x", 12, 3)).
			h
	}
	expectPass(t, build(), CheckOpts{Level: ReadCommitted})
	expectViolation(t, build(), CheckOpts{Level: SnapshotIsolation}, "cycle")
	expectViolation(t, build(), CheckOpts{Level: Serializable}, "cycle")
}

// Write skew: disjoint writes under reads of a shared precondition. Legal
// under snapshot isolation, a cycle under serializability.
func TestCheckerWriteSkew(t *testing.T) {
	build := func() *History {
		return newHB(3).
			txn(0, StatusCommitted, 0, 5, wr("x", 10, 1), wr("y", 20, 2)).
			txn(1, StatusCommitted, 10, 20, rd("x", 10), rd("y", 20), wr("x", 11, 3)).
			txn(2, StatusCommitted, 10, 20, rd("x", 10), rd("y", 20), wr("y", 21, 4)).
			h
	}
	expectPass(t, build(), CheckOpts{Level: ReadCommitted})
	expectPass(t, build(), CheckOpts{Level: SnapshotIsolation})
	expectViolation(t, build(), CheckOpts{Level: Serializable}, "cycle")
}

// Long fork: two observers see the two independent writes in opposite
// orders. Snapshot isolation forbids it (snapshots are totally ordered by
// commit prefix); it is also non-serializable.
func TestCheckerLongFork(t *testing.T) {
	build := func() *History {
		return newHB(4).
			txn(0, StatusCommitted, 0, 5, wr("x", 1, 1)).
			txn(1, StatusCommitted, 0, 5, wr("y", 1, 1)).
			txn(2, StatusCommitted, 10, 20, rd("x", 1), rdMiss("y")).
			txn(3, StatusCommitted, 10, 20, rdMiss("x"), rd("y", 1)).
			h
	}
	expectViolation(t, build(), CheckOpts{Level: SnapshotIsolation}, "cycle")
	expectViolation(t, build(), CheckOpts{Level: Serializable}, "cycle")
	expectPass(t, build(), CheckOpts{Level: ReadCommitted})
}

// Non-repeatable read inside one transaction: allowed at read committed,
// an anomaly from snapshot isolation up.
func TestCheckerNonRepeatableRead(t *testing.T) {
	build := func() *History {
		return newHB(2).
			txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
			txn(0, StatusCommitted, 20, 30, wr("x", 11, 2)).
			txn(1, StatusCommitted, 0, 40, rd("x", 10), rd("x", 11)).
			h
	}
	expectPass(t, build(), CheckOpts{Level: ReadCommitted})
	expectViolation(t, build(), CheckOpts{Level: SnapshotIsolation}, "non-repeatable-read")
	expectViolation(t, build(), CheckOpts{Level: Serializable}, "non-repeatable-read")
}

// Internal consistency: a transaction must see its own pending write.
func TestCheckerReadOwnWrite(t *testing.T) {
	h := newHB(1).
		txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
		txn(0, StatusCommitted, 10, 20, wr("x", 11, 0), rd("x", 10), wr("x", 11, 2)).
		h
	expectViolation(t, h, CheckOpts{Level: ReadCommitted}, "internal")
}

// A value nobody wrote is flagged.
func TestCheckerPhantomValue(t *testing.T) {
	h := newHB(1).
		txn(0, StatusCommitted, 0, 5, rd("x", 999)).
		h
	expectViolation(t, h, CheckOpts{Level: ReadCommitted}, "phantom-value")
}

// Real-time edges: reading a stale version after the writer finished is
// fine under plain serializability but a violation with RealTime set
// (strong consistency promises linearizable read placement).
func TestCheckerRealTimeStaleRead(t *testing.T) {
	build := func() *History {
		return newHB(3).
			txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
			txn(1, StatusCommitted, 10, 20, wr("x", 11, 2)).
			txn(2, StatusCommitted, 30, 40, rd("x", 10)).
			h
	}
	expectPass(t, build(), CheckOpts{Level: Serializable})
	expectViolation(t, build(), CheckOpts{Level: Serializable, RealTime: true}, "cycle")
}

// An unknown-outcome transaction whose write was observed is promoted to
// committed; an unobserved one is dropped without complaint.
func TestCheckerUnknownPromotion(t *testing.T) {
	h := newHB(2).
		txn(0, StatusUnknown, 0, 5, wr("x", 10, 1)).
		txn(0, StatusUnknown, 6, 8, wr("y", 77, 0)).
		txn(1, StatusCommitted, 10, 20, rd("x", 10)).
		h
	for _, lv := range []Level{ReadCommitted, SnapshotIsolation, Serializable} {
		expectPass(t, h, CheckOpts{Level: lv, RealTime: true})
	}
}

// Excused values: a committed write lost to 1-safe failover may vanish;
// without the excusal the same history is a violation.
func TestCheckerExcusedLostWrite(t *testing.T) {
	build := func() *History {
		return newHB(2).
			txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
			txn(0, StatusCommitted, 10, 15, wr("x", 11, 7)). // lost: never replicated
			txn(1, StatusCommitted, 20, 30, rd("x", 11)).    // observed pre-crash
			txn(1, StatusCommitted, 40, 50, rd("x", 10)).    // after failover: old version
			h
	}
	expectViolation(t, build(), CheckOpts{Level: Serializable, RealTime: true}, "cycle")
	ex := make(Excused)
	ex.Add("x", 11)
	expectPass(t, build(), CheckOpts{Level: Serializable, RealTime: true, Excused: ex})
	if v := CheckSessionGuarantees(build(), SessionOpts{Excused: ex}); v != nil {
		t.Fatalf("session guarantees with excusal: %s", v)
	}
}

func TestSessionGuaranteeViolations(t *testing.T) {
	// Monotonic reads: version goes backward across two reads.
	mr := newHB(2).
		txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
		txn(0, StatusCommitted, 6, 9, wr("x", 11, 2)).
		txn(1, StatusCommitted, 10, 20, rd("x", 11)).
		txn(1, StatusCommitted, 30, 40, rd("x", 10)).
		h
	v := CheckSessionGuarantees(mr, SessionOpts{})
	if v == nil || v.Kind != "monotonic-reads" {
		t.Fatalf("expected monotonic-reads violation, got %v", v)
	}

	// Read-your-writes: the session's own committed write disappears.
	ryw := newHB(1).
		txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
		txn(0, StatusCommitted, 6, 9, wr("x", 11, 2)).
		txn(0, StatusCommitted, 10, 20, rd("x", 10)).
		h
	v = CheckSessionGuarantees(ryw, SessionOpts{})
	if v == nil || v.Kind != "read-your-writes" {
		t.Fatalf("expected read-your-writes violation, got %v", v)
	}

	// KeyFilter: the same violation on a filtered-out key is ignored.
	v = CheckSessionGuarantees(ryw, SessionOpts{KeyFilter: func(k string) bool { return k != "x" }})
	if v != nil {
		t.Fatalf("filtered key still checked: %s", v)
	}
}

// The counterexample renderer names the transactions on the cycle.
func TestViolationCounterexampleRendering(t *testing.T) {
	h := newHB(3).
		txn(0, StatusCommitted, 0, 5, wr("x", 10, 1)).
		txn(1, StatusCommitted, 10, 20, rd("x", 10), wr("x", 11, 2)).
		txn(2, StatusCommitted, 10, 20, rd("x", 10), wr("x", 12, 3)).
		h
	v := Check(h, CheckOpts{Level: SnapshotIsolation})
	if v == nil {
		t.Fatal("lost update not caught")
	}
	out := v.String()
	if !strings.Contains(out, "→") || len(v.Steps) == 0 {
		t.Fatalf("no counterexample cycle rendered:\n%s", out)
	}
	if len(v.Txns) == 0 {
		t.Fatalf("no involved transactions rendered:\n%s", out)
	}
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	h := newHB(2).
		txn(0, StatusCommitted, 0, 10, wr("x", 100, 1)).
		txn(1, StatusAborted, 20, 30, rd("x", 100), wr("x", 101, 0)).
		h
	path := t.TempDir() + "/history.json"
	if err := h.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 2 || len(got.Sessions[0]) != 1 || got.Sessions[1][0].Ops[0].Value != 100 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Stats() == "" {
		t.Fatal("empty stats")
	}
}
