package history

import "testing"

// PR 8 regression: wwConstraints used to iterate its per-key map directly,
// so the counterexample Check reported for a multi-key anomaly depended on
// Go's randomized map order. The checker now walks keys in sorted order —
// the same history must yield a byte-identical violation every run.
func TestCheckerCounterexampleDeterministic(t *testing.T) {
	build := func() *History {
		// Write skew across two keys (x and y): at Serializable the
		// cycle can be entered from either key's ww constraint, which is
		// exactly the case map iteration order used to perturb.
		return newHB(3).
			txn(0, StatusCommitted, 0, 5, wr("x", 10, 1), wr("y", 20, 2)).
			txn(1, StatusCommitted, 10, 20, rd("x", 10), rd("y", 20), wr("x", 11, 3)).
			txn(2, StatusCommitted, 10, 20, rd("x", 10), rd("y", 20), wr("y", 21, 4)).
			h
	}
	first := expectViolation(t, build(), CheckOpts{Level: Serializable}, "cycle")
	want := first.String()
	wantSteps := len(first.Steps)
	for i := 0; i < 20; i++ {
		v := expectViolation(t, build(), CheckOpts{Level: Serializable}, "cycle")
		if got := v.String(); got != want {
			t.Fatalf("run %d: counterexample differs:\n first: %s\n   got: %s", i, want, got)
		}
		if len(v.Steps) != wantSteps {
			t.Fatalf("run %d: step count %d != %d", i, len(v.Steps), wantSteps)
		}
	}
}
