package history

import "fmt"

// SessionOpts configures the session-guarantee check.
type SessionOpts struct {
	// Excused lists values lost to 1-safe failover; a session whose own
	// write was lost legitimately reads older values afterwards, so
	// checks involving excused values are skipped.
	Excused Excused
	// KeyFilter restricts checking to the keys it accepts (nil = all).
	// WAN runs pass the home site's owned keys: remote-owned keys are
	// served by asynchronous refresh and promise no session guarantees.
	KeyFilter func(key string) bool
}

// CheckSessionGuarantees verifies read-your-writes and monotonic reads,
// per key, for every session of the history. Unlike the isolation
// checkers this needs no graph: every committed write carries the exact
// binlog position of its commit (Op.Seq), and same-key writes always
// share one position space (the key's master), so "version A is older
// than version B" is a direct integer comparison between the positions of
// the writes that installed the two observed values.
//
// Read-your-writes: after a session's own committed write of key k at
// position p, every later read of k in that session must observe a
// version installed at position ≥ p. Monotonic reads: once a session
// observed k's version from position p, it must never observe an older
// one. Both are per key — the middleware orders a session's reads against
// positions, which are comparable only within one key's replica set.
func CheckSessionGuarantees(h *History, opts SessionOpts) *Violation {
	// Position of the write that installed each observable value.
	writerSeq := make(map[string]map[int64]uint64)
	for _, t := range h.Txns() {
		if t.Status == StatusAborted {
			continue
		}
		for _, op := range t.Ops {
			if op.Kind != OpWrite || !op.Applied || op.Seq == 0 {
				continue
			}
			m := writerSeq[op.Key]
			if m == nil {
				m = make(map[int64]uint64)
				writerSeq[op.Key] = m
			}
			m[op.Value] = op.Seq
		}
	}
	check := func(key string) bool { return opts.KeyFilter == nil || opts.KeyFilter(key) }

	for si, sess := range h.Sessions {
		floorWrite := make(map[string]uint64) // own committed writes
		floorRead := make(map[string]uint64)  // observed versions
		for _, t := range sess {
			if t.Status == StatusUnknown {
				// An unacked transaction promises nothing and its reads
				// may predate the failure that killed it; skip.
				continue
			}
			own := make(map[string]bool)
			for _, op := range t.Ops {
				switch op.Kind {
				case OpWrite:
					if op.Applied {
						own[op.Key] = true
					}
				case OpRead:
					if own[op.Key] || !check(op.Key) {
						continue // internal read; checked by the isolation pass
					}
					var obsSeq uint64
					if op.Found {
						if opts.Excused.Has(op.Key, op.Value) {
							continue // version from the erased 1-safe suffix
						}
						var ok bool
						obsSeq, ok = lookup(writerSeq, op.Key, op.Value)
						if !ok {
							continue // unattributable; the isolation pass flags it
						}
					}
					if fw := floorWrite[op.Key]; fw > obsSeq {
						return &Violation{
							Level: "session",
							Kind:  "read-your-writes",
							Message: fmt.Sprintf("session %d wrote %s at position %d in %s but later observed %s (position %d)",
								si, op.Key, fw, t.Name(), renderRead(op), obsSeq),
							Txns: []string{t.Describe()},
						}
					}
					if fr := floorRead[op.Key]; fr > obsSeq {
						return &Violation{
							Level: "session",
							Kind:  "monotonic-reads",
							Message: fmt.Sprintf("session %d observed %s at position %d but %s later observed %s (position %d)",
								si, op.Key, fr, t.Name(), renderRead(op), obsSeq),
							Txns: []string{t.Describe()},
						}
					}
					if obsSeq > floorRead[op.Key] {
						floorRead[op.Key] = obsSeq
					}
				}
			}
			// A session's write floor rises only once the commit is acked.
			if t.Status != StatusCommitted {
				continue
			}
			for _, op := range t.Ops {
				if op.Kind != OpWrite || !op.Applied || op.Seq == 0 ||
					opts.Excused.Has(op.Key, op.Value) || !check(op.Key) {
					continue
				}
				if op.Seq > floorWrite[op.Key] {
					floorWrite[op.Key] = op.Seq
				}
				// The own write is also an observation of that version.
				if op.Seq > floorRead[op.Key] {
					floorRead[op.Key] = op.Seq
				}
			}
		}
	}
	return nil
}

func lookup(m map[string]map[int64]uint64, key string, value int64) (uint64, bool) {
	inner, ok := m[key]
	if !ok {
		return 0, false
	}
	s, ok := inner[value]
	return s, ok
}
