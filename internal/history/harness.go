package history

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqltypes"
)

// Opener hands the harness a fresh connection to the cluster under test,
// already authenticated and on the right database. Workers call it again
// after a connection-level failure; each reconnect becomes a new recorded
// session, because a new connection carries no session guarantees.
type Opener func() (core.Conn, error)

// Bootstrap creates the key-value table and installs a unique initial
// value for every key, recording the inserts so the checkers know each
// key's first version. It returns once the schema and seed rows are in.
func Bootstrap(rec *Recorder, open Opener, cfg WorkloadConfig) error {
	c, err := open()
	if err != nil {
		return fmt.Errorf("history: bootstrap connect: %w", err)
	}
	rc := WrapConn(c, rec)
	defer rc.Close()
	spec := rec.Spec()
	ddl := fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s (%s INTEGER PRIMARY KEY, %s INTEGER)",
		spec.Table, spec.KeyCol, spec.ValCol)
	if _, err := rc.Exec(ddl); err != nil {
		return fmt.Errorf("history: bootstrap schema: %w", err)
	}
	ins := fmt.Sprintf("INSERT INTO %s (%s, %s) VALUES (?, ?)", spec.Table, spec.KeyCol, spec.ValCol)
	for k := 1; k <= cfg.Keys; k++ {
		if _, err := rc.Exec(ins, sqltypes.NewInt(int64(k)), sqltypes.NewInt(NextValue())); err != nil {
			return fmt.Errorf("history: bootstrap insert k=%d: %w", k, err)
		}
	}
	return nil
}

// RunWorkload drives cfg.Sessions concurrent workers through their
// deterministic scripts, recording everything. Workers survive faults: a
// statement error is retried on the same connection a few times (covers
// certification aborts and transient failover windows), and a connection
// that keeps failing is reopened as a brand-new recorded session. The
// returned error reports only infrastructure collapse (no connection could
// be obtained at all); anomaly hunting happens in the checkers.
func RunWorkload(rec *Recorder, open Opener, cfg WorkloadConfig) error {
	cfg = cfg.WithDefaults()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runSession(rec, open, cfg, i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// worker holds one session's live connection state.
type worker struct {
	rec  *Recorder
	open Opener
	rc   *RecordedConn
	spec Spec
	// consecutive statement failures; crossing the threshold reconnects.
	failures int
}

const reconnectAfter = 3

func runSession(rec *Recorder, open Opener, cfg WorkloadConfig, i int) error {
	w := &worker{rec: rec, open: open, spec: rec.Spec()}
	if err := w.reconnect(); err != nil {
		return fmt.Errorf("history: session %d: %w", i, err)
	}
	defer w.rc.Close()
	for _, u := range cfg.sessionScript(i) {
		switch u.kind {
		case unitRead:
			w.exec(fmt.Sprintf("SELECT %s FROM %s WHERE %s = ?", w.spec.ValCol, w.spec.Table, w.spec.KeyCol),
				sqltypes.NewInt(u.keys[0]))
		case unitWrite:
			w.exec(fmt.Sprintf("UPDATE %s SET %s = ? WHERE %s = ?", w.spec.Table, w.spec.ValCol, w.spec.KeyCol),
				sqltypes.NewInt(NextValue()), sqltypes.NewInt(u.keys[0]))
		case unitRMW:
			w.rmw(u.keys)
		}
		if w.failures > 10*reconnectAfter {
			return fmt.Errorf("history: session %d: cluster unreachable", i)
		}
		if cfg.Pace > 0 {
			time.Sleep(cfg.Pace)
		}
	}
	return nil
}

// exec runs one autocommit statement, recording through the wrapped conn,
// and maintains the failure/reconnect state machine.
func (w *worker) exec(sql string, args ...sqltypes.Value) (*engine.Result, error) {
	res, err := w.rc.Exec(sql, args...)
	if err == nil {
		w.failures = 0
		return res, nil
	}
	w.failures++
	if w.failures%reconnectAfter == 0 {
		if rerr := w.reconnect(); rerr != nil {
			time.Sleep(50 * time.Millisecond)
		}
	}
	return res, err
}

// rmw runs one read-modify-write transaction: read every key, then
// overwrite each with a fresh unique value, then commit. Any statement
// error rolls the transaction back; the recorder sees the real outcome
// either way.
func (w *worker) rmw(keys []int64) {
	if _, err := w.rc.Exec("BEGIN"); err != nil {
		w.noteFailure()
		return
	}
	sel := fmt.Sprintf("SELECT %s FROM %s WHERE %s = ?", w.spec.ValCol, w.spec.Table, w.spec.KeyCol)
	upd := fmt.Sprintf("UPDATE %s SET %s = ? WHERE %s = ?", w.spec.Table, w.spec.ValCol, w.spec.KeyCol)
	for _, k := range keys {
		if _, err := w.rc.Exec(sel, sqltypes.NewInt(k)); err != nil {
			w.abort()
			return
		}
		if _, err := w.rc.Exec(upd, sqltypes.NewInt(NextValue()), sqltypes.NewInt(k)); err != nil {
			w.abort()
			return
		}
	}
	if _, err := w.rc.Exec("COMMIT"); err != nil {
		// Certification abort or lost connection: both are recorded as
		// outcome Unknown by the session recorder; just move on.
		w.noteFailure()
		return
	}
	w.failures = 0
}

func (w *worker) abort() {
	_, err := w.rc.Exec("ROLLBACK")
	if err != nil {
		w.noteFailure()
		return
	}
	w.failures = 0
}

func (w *worker) noteFailure() {
	w.failures++
	if w.failures%reconnectAfter == 0 {
		if err := w.reconnect(); err != nil {
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// reconnect closes the current recorded session (an open transaction is
// recorded aborted) and opens a fresh connection under a new session.
func (w *worker) reconnect() error {
	if w.rc != nil {
		w.rc.Close()
		w.rc = nil
	}
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		c, err := w.open()
		if err == nil {
			w.rc = WrapConn(c, w.rec)
			return nil
		}
		lastErr = err
		time.Sleep(25 * time.Millisecond)
	}
	return lastErr
}

// ExcusedFromBinlog extracts the values 1-safe failover lost: every write
// to spec.Table in the dead master's binlog after the promoted replica's
// applied position. The checkers skip anomalies that involve only these
// values — the paper's 1-safe contract explicitly allows losing the
// unshipped suffix.
func ExcusedFromBinlog(dead *engine.Engine, promotedApplied uint64, spec Spec) Excused {
	spec = spec.withDefaults()
	ex := make(Excused)
	events, _ := dead.Binlog().ReadFrom(promotedApplied, 1<<20)
	for _, ev := range events {
		if ev.WriteSet == nil {
			continue
		}
		for _, op := range ev.WriteSet.Ops {
			if !strings.EqualFold(op.Table, spec.Table) || len(op.After) < 2 {
				continue
			}
			// The harness owns the schema: (key, value) column order.
			ex.Add(op.After[0].Str(), op.After[1].Int())
		}
	}
	return ex
}
