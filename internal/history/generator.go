package history

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// WorkloadConfig shapes the randomized certification workload. Given the
// same seed the generated statement sequence per session is identical
// run-to-run; only scheduling (and therefore the recorded interleaving)
// varies, which is exactly what a reproducible chaos harness wants.
type WorkloadConfig struct {
	Seed     int64
	Sessions int // concurrent client sessions
	Txns     int // work units per session
	Keys     int // keyspace size; keys are 1..Keys
	// ReadFraction is the probability a work unit is a lone read;
	// TxnFraction the probability it is a read-modify-write transaction.
	// The remainder are autocommit writes.
	ReadFraction float64
	TxnFraction  float64
	// OpsPerTxn is how many keys a read-modify-write transaction touches.
	OpsPerTxn int
	// Pace, when set, is a sleep inserted between work units. Chaos runs
	// use it to hold the workload open long enough that a mid-run fault
	// provably lands while units are still executing — an unpaced workload
	// on a fast in-process cluster can drain in milliseconds.
	Pace time.Duration
}

// WithDefaults fills zero fields with a workload that exercises every
// interesting interleaving class at small scale.
func (c WorkloadConfig) WithDefaults() WorkloadConfig {
	if c.Sessions == 0 {
		c.Sessions = 4
	}
	if c.Txns == 0 {
		c.Txns = 40
	}
	if c.Keys == 0 {
		c.Keys = 8
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.4
	}
	if c.TxnFraction == 0 {
		c.TxnFraction = 0.3
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 2
	}
	return c
}

// valueCounter hands out process-wide unique write values: the discipline
// that makes the write-read relation of a recorded history exact.
var valueCounter atomic.Int64

func init() { valueCounter.Store(1_000_000) }

// NextValue returns a fresh never-before-written value.
func NextValue() int64 { return valueCounter.Add(1) }

// unit is one generated work unit.
type unit struct {
	kind unitKind
	keys []int64 // distinct keys, ascending (deadlock-free lock order)
}

type unitKind uint8

const (
	unitRead unitKind = iota
	unitWrite
	unitRMW
)

// sessionScript deterministically generates session i's work units.
func (c WorkloadConfig) sessionScript(i int) []unit {
	rng := rand.New(rand.NewSource(c.Seed*1_000_003 + int64(i)))
	units := make([]unit, 0, c.Txns)
	for t := 0; t < c.Txns; t++ {
		u := unit{kind: unitWrite}
		n := 1
		switch p := rng.Float64(); {
		case p < c.ReadFraction:
			u.kind = unitRead
		case p < c.ReadFraction+c.TxnFraction:
			u.kind = unitRMW
			n = c.OpsPerTxn
		}
		seen := make(map[int64]bool, n)
		for len(u.keys) < n {
			k := int64(rng.Intn(c.Keys)) + 1
			if !seen[k] {
				seen[k] = true
				u.keys = append(u.keys, k)
			}
		}
		// Ascending key order keeps 2PL runs deadlock-free by design.
		for a := 1; a < len(u.keys); a++ {
			for b := a; b > 0 && u.keys[b-1] > u.keys[b]; b-- {
				u.keys[b-1], u.keys[b] = u.keys[b], u.keys[b-1]
			}
		}
		units = append(units, u)
	}
	return units
}
