package history

import (
	"strings"
	"sync"

	"repro/internal/sqlparse"
	"repro/internal/sqltypes"
)

// Spec tells the recorder which table carries the key-value abstraction.
// Statements that are not point reads/writes of this table are ignored;
// they can't violate guarantees the checkers reason about.
type Spec struct {
	Table  string // table name, default "kv"
	KeyCol string // primary-key column, default "k"
	ValCol string // value column, default "v"
}

// DefaultSpec is the shape the workload generator uses.
var DefaultSpec = Spec{Table: "kv", KeyCol: "k", ValCol: "v"}

func (s Spec) withDefaults() Spec {
	if s.Table == "" {
		s.Table = DefaultSpec.Table
	}
	if s.KeyCol == "" {
		s.KeyCol = DefaultSpec.KeyCol
	}
	if s.ValCol == "" {
		s.ValCol = DefaultSpec.ValCol
	}
	return s
}

// Recorder accumulates the history of many concurrent sessions. It is safe
// for concurrent use; each client connection gets its own SessionRecorder.
//
// Recording is deliberately split in two: the online half appends one
// compact raw event per statement (a couple of pointer copies under an
// uncontended per-session lock), and the offline half — statement parsing,
// operation extraction, transaction assembly — runs lazily in History().
// That keeps the recorder's hot-path tax on the cluster within the ≤10%
// latency budget TestHistoryRecordingOverheadBudget enforces.
type Recorder struct {
	spec     Spec
	mu       sync.Mutex
	sessions []*SessionRecorder
}

// NewRecorder returns an empty recorder. Zero fields of spec take the
// DefaultSpec values.
func NewRecorder(spec Spec) *Recorder {
	return &Recorder{spec: spec.withDefaults()}
}

// Spec returns the key-value table shape the recorder extracts.
func (r *Recorder) Spec() Spec { return r.spec }

// NewSession registers a new client session and returns its recorder. A
// reconnected client must use a fresh session: a new connection carries no
// session guarantees from the old one.
func (r *Recorder) NewSession() *SessionRecorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	sr := &SessionRecorder{r: r, id: len(r.sessions)}
	r.sessions = append(r.sessions, sr)
	return sr
}

// History extracts everything recorded so far. It may be called while the
// workload is still running (the chaos driver polls it for progress): each
// session contributes the transactions its event prefix completes; an
// explicit transaction still open on a live session is not included, and
// one left open by a closed session is recorded as aborted.
func (r *Recorder) History() *History {
	r.mu.Lock()
	sessions := make([]*SessionRecorder, len(r.sessions))
	copy(sessions, r.sessions)
	r.mu.Unlock()
	h := &History{Sessions: make([][]*Txn, len(sessions))}
	for i, sr := range sessions {
		h.Sessions[i] = sr.extract()
	}
	return h
}

// Now returns a timestamp on the recorder clock; wrappers sample it
// immediately before sending a statement and pass it to Observe.
func Now() int64 { return monotonicNow() }

// Observed carries what the cluster returned for one statement. It is a
// subset of engine.Result flattened so the recorder does not care whether
// the response came from an in-process Conn or over the wire.
type Observed struct {
	Columns      []string
	Rows         []sqltypes.Row
	RowsAffected int64
	// AtSeq is the replication position of the commit (autocommit writes
	// and COMMIT), zero otherwise.
	AtSeq uint64
}

// rawEvent is the online half of one observed statement: everything the
// offline extractor needs, captured without parsing. The common point-op
// shape — at most two integer arguments, at most one single-integer result
// cell in the value column — is stored inline, keeping the event log free
// of references into the engine's result graph (retaining those would tax
// every GC cycle for the rest of the run). Anything else spills.
type rawEvent struct {
	start, end   int64
	sql          string
	spill        *spilledEvent // non-nil when the statement exceeded the inline shape
	argv         [2]int64      // integer arguments, inline
	cell         int64         // the single observed result cell, inline
	rowsAffected int64
	atSeq        uint64
	nargs        uint8
	flags        uint8
}

const (
	evFailed uint8 = 1 << iota // the client saw an error
	evHasRow                   // exactly one (value-column, integer) result cell
)

// spilledEvent holds the full argument vector and observation for the rare
// statement that does not fit rawEvent's inline shape.
type spilledEvent struct {
	args []sqltypes.Value
	obs  Observed
}

// eventChunk is the fixed chunk size of a session's event log. Chunked
// storage keeps the append path allocation-flat: a plain slice would
// memmove the whole (fat-element) log on every doubling and leave the
// abandoned half-size arrays behind for the collector.
const eventChunk = 512

// SessionRecorder records one session's statement stream. Like the
// connection it shadows, it is not safe for concurrent use by multiple
// statement issuers; the internal lock only coordinates with History()
// extracting a snapshot mid-run.
type SessionRecorder struct {
	r  *Recorder
	id int

	mu       sync.Mutex
	chunks   []*[eventChunk]rawEvent
	n        int // events recorded
	closed   bool
	closedAt int64
}

// ID returns the session's index in the recorded history.
func (sr *SessionRecorder) ID() int { return sr.id }

// Observe records the outcome of one executed statement. start/end are
// Now() samples bracketing the round-trip; execErr is the error the client
// saw (nil on success). This is the hot path: it only appends the raw
// event — statements outside the key-value abstraction are discarded later
// by the extractor, off the cluster's latency path.
func (sr *SessionRecorder) Observe(start, end int64, sqlText string, args []sqltypes.Value, obs Observed, execErr error) {
	ev := rawEvent{start: start, end: end, sql: sqlText,
		rowsAffected: obs.RowsAffected, atSeq: obs.AtSeq}
	if execErr != nil {
		ev.flags |= evFailed
	}
	compact := len(args) <= 2
	if compact {
		for i, a := range args {
			if a.K != sqltypes.KindInt {
				compact = false
				break
			}
			ev.argv[i] = a.I
		}
		ev.nargs = uint8(len(args))
	}
	if compact {
		switch {
		case len(obs.Rows) == 0:
			// Columns are only consulted when a row came back.
		case len(obs.Rows) == 1 && len(obs.Rows[0]) == 1 && len(obs.Columns) == 1 &&
			obs.Rows[0][0].K == sqltypes.KindInt &&
			strings.EqualFold(obs.Columns[0], sr.r.spec.ValCol):
			ev.flags |= evHasRow
			ev.cell = obs.Rows[0][0].I
		default:
			compact = false
		}
	}
	if !compact {
		ev.spill = &spilledEvent{args: args, obs: obs}
	}
	sr.mu.Lock()
	if sr.n%eventChunk == 0 {
		sr.chunks = append(sr.chunks, new([eventChunk]rawEvent))
	}
	sr.chunks[sr.n/eventChunk][sr.n%eventChunk] = ev
	sr.n++
	sr.mu.Unlock()
}

// Close finishes the session. An open transaction is recorded as aborted:
// its COMMIT was never sent, so the middleware rolls it back on disconnect.
func (sr *SessionRecorder) Close() {
	sr.mu.Lock()
	if !sr.closed {
		sr.closed = true
		sr.closedAt = monotonicNow()
	}
	sr.mu.Unlock()
}

// extract replays the session's raw events through the transaction state
// machine. It is pure with respect to the event prefix, so concurrent
// calls (the chaos driver polling progress) always agree on the completed
// transactions.
func (sr *SessionRecorder) extract() []*Txn {
	sr.mu.Lock()
	n := sr.n
	chunks := sr.chunks[:len(sr.chunks):len(sr.chunks)]
	closed, closedAt := sr.closed, sr.closedAt
	sr.mu.Unlock()
	x := extractor{spec: sr.r.spec, session: sr.id}
	for i := 0; i < n; i++ {
		x.step(&chunks[i/eventChunk][i%eventChunk])
	}
	if x.cur != nil && closed {
		// The session died with the transaction open; the middleware
		// rolled it back on disconnect.
		x.cur.End = closedAt
		x.cur.Status = StatusAborted
		x.publish(x.cur)
		x.cur = nil
	}
	return x.txns
}

// extractor assembles transactions from one session's event stream.
type extractor struct {
	spec    Spec
	session int
	txns    []*Txn
	cur     *Txn // open explicit transaction, nil in autocommit

	// Scratch buffers for materializing compact events; safe to reuse per
	// event because extracted Ops copy what they keep.
	argbuf  [2]sqltypes.Value
	cellbuf [1]sqltypes.Value
	rowbuf  [1]sqltypes.Row
	colbuf  [1]string
}

// materialize reconstructs the argument vector and observation a compact
// event encoded inline (spilled events carry theirs verbatim).
func (x *extractor) materialize(ev *rawEvent) ([]sqltypes.Value, Observed) {
	if ev.spill != nil {
		return ev.spill.args, ev.spill.obs
	}
	for i := 0; i < int(ev.nargs); i++ {
		x.argbuf[i] = sqltypes.NewInt(ev.argv[i])
	}
	obs := Observed{RowsAffected: ev.rowsAffected, AtSeq: ev.atSeq}
	if ev.flags&evHasRow != 0 {
		x.cellbuf[0] = sqltypes.NewInt(ev.cell)
		x.rowbuf[0] = x.cellbuf[:1]
		x.colbuf[0] = x.spec.ValCol
		obs.Columns = x.colbuf[:1]
		obs.Rows = x.rowbuf[:1]
	}
	return x.argbuf[:ev.nargs], obs
}

func (x *extractor) step(ev *rawEvent) {
	st, err := sqlparse.ParseCached(ev.sql)
	if err != nil {
		return // not SQL the cluster accepted either
	}
	args, obs := x.materialize(ev)
	failed := ev.flags&evFailed != 0
	switch s := st.(type) {
	case *sqlparse.BeginTxn:
		if failed || x.cur != nil {
			return
		}
		x.cur = &Txn{Session: x.session, Start: ev.start}
	case *sqlparse.CommitTxn:
		if x.cur == nil {
			return
		}
		t := x.cur
		x.cur = nil
		t.End = ev.end
		if failed {
			// The outcome is genuinely ambiguous: a conflict abort and a
			// connection lost after the commit landed look the same here.
			// The checker promotes Unknown to Committed only when another
			// transaction observed one of its writes.
			t.Status = StatusUnknown
		} else {
			t.Status = StatusCommitted
			for i := range t.Ops {
				if t.Ops[i].Kind == OpWrite {
					t.Ops[i].Seq = obs.AtSeq
				}
			}
		}
		x.publish(t)
	case *sqlparse.RollbackTxn:
		if x.cur == nil {
			return
		}
		t := x.cur
		x.cur = nil
		t.End = ev.end
		t.Status = StatusAborted
		x.publish(t)
	case *sqlparse.Select:
		op, ok := x.readOp(s, args, obs)
		if !ok || failed {
			return // a failed read observed nothing
		}
		x.add(op, ev, StatusCommitted)
	case *sqlparse.Update:
		op, ok := x.updateOp(s, args, obs)
		if ok {
			x.add(op, ev, writeStatus(failed))
		}
	case *sqlparse.Insert:
		op, ok := x.insertOp(s, args, obs)
		if ok {
			x.add(op, ev, writeStatus(failed))
		}
	}
}

// writeStatus maps an autocommit write's outcome to a transaction status:
// success is a commit ack, any error is ambiguous (the write may have
// committed before the failure reached us).
func writeStatus(failed bool) TxnStatus {
	if failed {
		return StatusUnknown
	}
	return StatusCommitted
}

// add appends op to the open transaction or publishes it as a one-op
// autocommit transaction.
func (x *extractor) add(op Op, ev *rawEvent, status TxnStatus) {
	if x.cur != nil {
		if ev.flags&evFailed != 0 {
			return // an errored in-transaction statement installed nothing
		}
		x.cur.Ops = append(x.cur.Ops, op)
		return
	}
	x.publish(&Txn{Session: x.session, Status: status, Ops: []Op{op}, Start: ev.start, End: ev.end})
}

func (x *extractor) publish(t *Txn) {
	t.Index = len(x.txns)
	x.txns = append(x.txns, t)
}

// ---- statement → operation extraction ----

// readOp recognizes SELECT ... FROM <table> WHERE <key>=<const> and builds
// the read operation from the returned rows.
func (x *extractor) readOp(sel *sqlparse.Select, args []sqltypes.Value, obs Observed) (Op, bool) {
	spec := x.spec
	if sel.NoTable || sel.Join != nil || !strings.EqualFold(sel.From.Name, spec.Table) {
		return Op{}, false
	}
	key, ok := keyFromWhere(sel.Where, spec.KeyCol, args)
	if !ok {
		return Op{}, false
	}
	op := Op{Kind: OpRead, Key: key}
	if len(obs.Rows) == 0 {
		return op, true // key absent: the read observed the initial state
	}
	vi := columnIndex(obs.Columns, spec.ValCol)
	if vi < 0 || len(obs.Rows) > 1 {
		return Op{}, false // not a point read of the value column
	}
	op.Found = true
	op.Value = obs.Rows[0][vi].Int()
	return op, true
}

// updateOp recognizes UPDATE <table> SET <val>=<const> WHERE <key>=<const>.
func (x *extractor) updateOp(up *sqlparse.Update, args []sqltypes.Value, obs Observed) (Op, bool) {
	spec := x.spec
	if !strings.EqualFold(up.Table.Name, spec.Table) {
		return Op{}, false
	}
	key, ok := keyFromWhere(up.Where, spec.KeyCol, args)
	if !ok {
		return Op{}, false
	}
	for _, a := range up.Set {
		if !strings.EqualFold(a.Column, spec.ValCol) {
			continue
		}
		v, ok := resolveExpr(a.Value, args)
		if !ok {
			return Op{}, false // v = v+1 style writes break value uniqueness
		}
		return Op{
			Kind:    OpWrite,
			Key:     key,
			Value:   v.Int(),
			Applied: obs.RowsAffected > 0,
			Seq:     obs.AtSeq,
		}, true
	}
	return Op{}, false
}

// insertOp recognizes single-row INSERT INTO <table> (cols) VALUES (...).
func (x *extractor) insertOp(ins *sqlparse.Insert, args []sqltypes.Value, obs Observed) (Op, bool) {
	spec := x.spec
	if !strings.EqualFold(ins.Table.Name, spec.Table) || len(ins.Rows) != 1 {
		return Op{}, false
	}
	ki := columnIndex(ins.Columns, spec.KeyCol)
	vi := columnIndex(ins.Columns, spec.ValCol)
	row := ins.Rows[0]
	if ki < 0 || vi < 0 || ki >= len(row) || vi >= len(row) {
		return Op{}, false
	}
	kv, ok1 := resolveExpr(row[ki], args)
	vv, ok2 := resolveExpr(row[vi], args)
	if !ok1 || !ok2 {
		return Op{}, false
	}
	return Op{
		Kind:    OpWrite,
		Key:     kv.Str(),
		Value:   vv.Int(),
		Applied: obs.RowsAffected > 0,
		Seq:     obs.AtSeq,
	}, true
}

// keyFromWhere extracts the key from a `<keycol> = <const>` predicate
// (either operand order, optional table qualifier on the column).
func keyFromWhere(where sqlparse.Expr, keyCol string, args []sqltypes.Value) (string, bool) {
	be, ok := where.(*sqlparse.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", false
	}
	if col, ok := be.Left.(*sqlparse.ColumnRef); ok && strings.EqualFold(col.Name, keyCol) {
		if v, ok := resolveExpr(be.Right, args); ok {
			return v.Str(), true
		}
	}
	if col, ok := be.Right.(*sqlparse.ColumnRef); ok && strings.EqualFold(col.Name, keyCol) {
		if v, ok := resolveExpr(be.Left, args); ok {
			return v.Str(), true
		}
	}
	return "", false
}

// resolveExpr evaluates a literal or a bound placeholder to a value.
func resolveExpr(e sqlparse.Expr, args []sqltypes.Value) (sqltypes.Value, bool) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Val, true
	case *sqlparse.Param:
		if x.Index >= 0 && x.Index < len(args) {
			return args[x.Index], true
		}
	}
	return sqltypes.Value{}, false
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}
