package history

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// RecordedConn decorates a core.Conn so every statement the application
// executes is observed by a SessionRecorder. It implements core.Conn, so a
// recorded connection drops into any code written against the unified API
// — in-process topologies, the chaos harness, the wire server's backend.
type RecordedConn struct {
	conn core.Conn
	sr   *SessionRecorder
}

var _ core.Conn = (*RecordedConn)(nil)

// WrapConn registers a new recorded session for c. The wrapper assumes
// exclusive use of the underlying connection, matching core.Conn's own
// single-goroutine contract.
func WrapConn(c core.Conn, r *Recorder) *RecordedConn {
	return &RecordedConn{conn: c, sr: r.NewSession()}
}

// Session exposes the session recorder (tests use its ID).
func (rc *RecordedConn) Session() *SessionRecorder { return rc.sr }

// Unwrap returns the underlying connection.
func (rc *RecordedConn) Unwrap() core.Conn { return rc.conn }

func (rc *RecordedConn) observe(sql string, args []core.Value, res *engine.Result, err error, start int64) {
	var obs Observed
	if res != nil {
		obs = Observed{Columns: res.Columns, Rows: res.Rows, RowsAffected: res.RowsAffected, AtSeq: res.AtSeq}
	}
	rc.sr.Observe(start, Now(), sql, args, obs, err)
}

// Exec implements core.Conn.
func (rc *RecordedConn) Exec(sql string, args ...core.Value) (*engine.Result, error) {
	start := Now()
	res, err := rc.conn.Exec(sql, args...)
	rc.observe(sql, args, res, err, start)
	return res, err
}

// Query implements core.Conn.
func (rc *RecordedConn) Query(sql string, args ...core.Value) (*engine.Result, error) {
	start := Now()
	res, err := rc.conn.Query(sql, args...)
	rc.observe(sql, args, res, err, start)
	return res, err
}

// ExecStmt implements core.Conn.
func (rc *RecordedConn) ExecStmt(st sqlparse.Statement) (*engine.Result, error) {
	return rc.ExecStmtArgs(st)
}

// ExecStmtArgs implements core.Conn. The recorder re-parses the rendered
// SQL through the process-wide statement cache, so the prepared hot path
// stays allocation-light.
func (rc *RecordedConn) ExecStmtArgs(st sqlparse.Statement, args ...core.Value) (*engine.Result, error) {
	start := Now()
	res, err := rc.conn.ExecStmtArgs(st, args...)
	// Recording the executed text (with its argument vector alongside) is
	// the point of history capture; the checkers re-parse it in-process
	// with the same args.
	// lint:rawsql-ok history capture records text + args together
	rc.observe(st.SQL(), args, res, err, start)
	return res, err
}

// Prepare implements core.Conn: the handle is bound to the wrapper so its
// Exec routes back through recording.
func (rc *RecordedConn) Prepare(sql string) (*core.Stmt, error) {
	return core.NewStmt(rc, sql)
}

// Begin implements core.Conn.
func (rc *RecordedConn) Begin() error {
	start := Now()
	err := rc.conn.Begin()
	rc.sr.Observe(start, Now(), "BEGIN", nil, Observed{}, err)
	return err
}

// Commit implements core.Conn.
func (rc *RecordedConn) Commit() error {
	start := Now()
	err := rc.conn.Commit()
	// Conn.Commit returns no result, so the commit position is unknown
	// here; SQL-level COMMIT via Exec carries it. Session-guarantee
	// checks simply skip seq-less writes.
	rc.sr.Observe(start, Now(), "COMMIT", nil, Observed{}, err)
	return err
}

// Rollback implements core.Conn.
func (rc *RecordedConn) Rollback() error {
	start := Now()
	err := rc.conn.Rollback()
	rc.sr.Observe(start, Now(), "ROLLBACK", nil, Observed{}, err)
	return err
}

// SetIsolation implements core.Conn.
func (rc *RecordedConn) SetIsolation(level string) error { return rc.conn.SetIsolation(level) }

// SetConsistency implements core.Conn.
func (rc *RecordedConn) SetConsistency(c core.Consistency) error { return rc.conn.SetConsistency(c) }

// Close implements core.Conn; an open transaction is recorded as aborted.
func (rc *RecordedConn) Close() {
	rc.sr.Close()
	rc.conn.Close()
}
