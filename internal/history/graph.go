package history

import (
	"fmt"
	"strings"
)

// graph is a directed graph over the history's event nodes with an
// incrementally maintained transitive closure (one bitset row per node).
// Edge insertion is O(n²/64) worst case; insertions whose reachability is
// already implied cost O(1). Direct edges keep a label so counterexample
// cycles render as a chain of named axiom applications.
type graph struct {
	n     int
	names []string
	words int
	reach [][]uint64 // reach[u] has bit v set iff a nonempty path u→v exists
	adj   [][]edgeRef
}

type edgeRef struct {
	to    int
	label string
}

func newGraph(names []string) *graph {
	n := len(names)
	words := (n + 63) / 64
	g := &graph{n: n, names: names, words: words}
	g.reach = make([][]uint64, n)
	buf := make([]uint64, n*words)
	for i := range g.reach {
		g.reach[i] = buf[i*words : (i+1)*words]
	}
	g.adj = make([][]edgeRef, n)
	return g
}

// has reports whether a nonempty path u→v exists.
func (g *graph) has(u, v int) bool {
	return g.reach[u][v/64]&(1<<(uint(v)%64)) != 0
}

// wouldCycle reports whether adding u→v would close a cycle.
func (g *graph) wouldCycle(u, v int) bool {
	return u == v || g.has(v, u)
}

// addEdge inserts the labeled edge u→v and updates the closure. The caller
// must have checked wouldCycle first; addEdge panics on a cycle-closing
// insert because every call site turns that case into a Violation instead.
func (g *graph) addEdge(u, v int, label string) {
	if g.wouldCycle(u, v) {
		panic("history: addEdge would close a cycle")
	}
	g.adj[u] = append(g.adj[u], edgeRef{to: v, label: label})
	if g.has(u, v) {
		return // reachability already implied; direct edge kept for paths
	}
	ru, rv := g.reach[u], g.reach[v]
	for w := range ru {
		ru[w] |= rv[w]
	}
	ru[v/64] |= 1 << (uint(v) % 64)
	// Propagate to every node that can already reach u.
	ub, um := u/64, uint64(1)<<(uint(u)%64)
	for w := 0; w < g.n; w++ {
		if w == u || g.reach[w][ub]&um == 0 {
			continue
		}
		rw := g.reach[w]
		for i := range rw {
			rw[i] |= ru[i]
		}
	}
}

// path returns the labeled steps of some path u→…→v over direct edges
// (BFS, so it is a fewest-edges path), or nil if none exists.
func (g *graph) path(u, v int) []string {
	type hop struct {
		prev  int // index into visited order
		node  int
		label string
	}
	if u == v {
		return []string{g.names[u]}
	}
	seen := make([]bool, g.n)
	queue := []hop{{prev: -1, node: u}}
	seen[u] = true
	for qi := 0; qi < len(queue); qi++ {
		h := queue[qi]
		for _, e := range g.adj[h.node] {
			if seen[e.to] {
				continue
			}
			nh := hop{prev: qi, node: e.to, label: e.label}
			if e.to == v {
				// Walk back to render the chain.
				var rev []hop
				for cur := nh; ; cur = queue[cur.prev] {
					rev = append(rev, cur)
					if cur.prev == -1 {
						break
					}
				}
				steps := make([]string, 0, len(rev))
				for i := len(rev) - 1; i > 0; i-- {
					steps = append(steps, fmt.Sprintf("%s —%s→ %s",
						g.names[rev[i].node], rev[i-1].label, g.names[rev[i-1].node]))
				}
				return steps
			}
			seen[e.to] = true
			queue = append(queue, nh)
		}
	}
	return nil
}

// cycleWith renders the cycle that adding u→v(label) would close: the
// existing path v→…→u followed by the offending edge.
func (g *graph) cycleWith(u, v int, label string) []string {
	steps := g.path(v, u)
	return append(steps, fmt.Sprintf("%s —%s→ %s", g.names[u], label, g.names[v]))
}

// constraint is one binary disjunction produced by an isolation axiom:
// edge d1 (a1→b1) or edge d2 (a2→b2) must hold in any witness execution.
// ground records which disjunct replication ground truth (binlog commit
// positions of the two writers) forces: 0 none, 1 → d1, 2 → d2.
type constraint struct {
	a1, b1 int
	l1     string
	a2, b2 int
	l2     string
	ground int
	desc   string
}

// solve saturates the graph under the constraints. Resolution sources, in
// order of preference: a disjunct already implied (constraint satisfied), a
// disjunct impossible (forces the other), and — only when pure saturation
// reaches a fixpoint — the binlog ground truth. Returns a Violation when a
// constraint has both disjuncts impossible or a forced edge contradicts
// ground truth; returns nil when every constraint is satisfied or the
// residue is unresolvable either way (sound: no false alarms).
func (g *graph) solve(cons []constraint, level string) *Violation {
	pending := make([]*constraint, 0, len(cons))
	for i := range cons {
		pending = append(pending, &cons[i])
	}
	for len(pending) > 0 {
		progress := false
		next := pending[:0]
		for _, c := range pending {
			if g.has(c.a1, c.b1) || g.has(c.a2, c.b2) {
				progress = true
				continue // satisfied
			}
			imp1 := g.wouldCycle(c.a1, c.b1)
			imp2 := g.wouldCycle(c.a2, c.b2)
			switch {
			case imp1 && imp2:
				return &Violation{
					Level:   level,
					Kind:    "cycle",
					Message: fmt.Sprintf("%s: both resolutions of the constraint close a cycle", c.desc),
					Steps: append(
						append([]string{"either:"}, g.cycleWith(c.a1, c.b1, c.l1)...),
						append([]string{"or:"}, g.cycleWith(c.a2, c.b2, c.l2)...)...),
				}
			case imp1:
				g.addEdge(c.a2, c.b2, c.l2)
				progress = true
			case imp2:
				g.addEdge(c.a1, c.b1, c.l1)
				progress = true
			default:
				next = append(next, c)
			}
		}
		pending = next
		if progress || len(pending) == 0 {
			continue
		}
		// Fixpoint with pending constraints: let replication ground truth
		// (binlog commit order of the two writers) pick a direction.
		grounded := false
		for i, c := range pending {
			if c.ground == 0 {
				continue
			}
			a, b, l := c.a1, c.b1, c.l1
			if c.ground == 2 {
				a, b, l = c.a2, c.b2, c.l2
			}
			if g.wouldCycle(a, b) {
				return &Violation{
					Level:   level,
					Kind:    "cycle",
					Message: fmt.Sprintf("%s: the resolution forced by binlog commit order closes a cycle", c.desc),
					Steps:   g.cycleWith(a, b, l),
				}
			}
			g.addEdge(a, b, l)
			pending = append(pending[:i], pending[i+1:]...)
			grounded = true
			break
		}
		if !grounded {
			// No theory-forced and no grounded resolution remains. Accept:
			// an arbitrary choice could manufacture a false violation.
			return nil
		}
	}
	return nil
}

// Violation describes one detected anomaly with a minimal counterexample.
type Violation struct {
	Level   string   // which check was running ("serializable", "snapshot", …)
	Kind    string   // short anomaly class ("dirty-read", "cycle", …)
	Message string   // one-line description
	Steps   []string // the counterexample cycle, one edge per line
	Txns    []string // Describe() of the transactions involved
}

// Error implements error.
func (v *Violation) Error() string { return v.String() }

// String renders the violation with its counterexample.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation (%s): %s", v.Level, v.Kind, v.Message)
	for _, s := range v.Steps {
		b.WriteString("\n  ")
		b.WriteString(s)
	}
	if len(v.Txns) > 0 {
		b.WriteString("\n involving:")
		for _, t := range v.Txns {
			b.WriteString("\n  ")
			b.WriteString(t)
		}
	}
	return b.String()
}
