package history

import (
	"fmt"
	"sort"
)

// Level selects the isolation guarantee a history is checked against.
type Level int

// The checkable isolation levels, weakest first.
const (
	ReadCommitted Level = iota
	SnapshotIsolation
	Serializable
)

func (l Level) String() string {
	switch l {
	case ReadCommitted:
		return "read-committed"
	case SnapshotIsolation:
		return "snapshot-isolation"
	}
	return "serializable"
}

// Excused is the set of values legitimately lost by 1-safe failover: the
// suffix of the failed master's binlog the promoted replica never received.
// Transactions that wrote an excused value, and reads that observed one,
// are removed before checking — the paper's 1-safe contract explicitly
// allows losing them.
type Excused map[string]map[int64]bool

// Add marks (key, value) as excused.
func (e Excused) Add(key string, value int64) {
	m := e[key]
	if m == nil {
		m = make(map[int64]bool)
		e[key] = m
	}
	m[value] = true
}

// Has reports whether (key, value) is excused.
func (e Excused) Has(key string, value int64) bool {
	return e != nil && e[key][value]
}

// CheckOpts configures a history check.
type CheckOpts struct {
	Level Level
	// RealTime adds real-time precedence edges (T1 ended before T2
	// started ⇒ T1 serializes first). Set it only when the run promised
	// strong (linearizable) consistency; session and any consistency do
	// not order concurrent clients in real time.
	RealTime bool
	// Excused lists values lost to 1-safe failover; see Excused.
	Excused Excused
}

// Check verifies a history against the given isolation level following the
// Biswas & Enea saturation approach over the key-value abstraction. The
// unique-value write discipline makes the write-read relation exact, so no
// search is needed: axioms become binary edge disjunctions resolved by
// saturation, with the replicas' binlog commit positions as ground truth
// for the write-write order residue. Returns nil if the history is
// admitted, or a Violation carrying a minimal counterexample cycle.
func Check(h *History, opts CheckOpts) *Violation {
	c, v := digestHistory(h, opts)
	if v != nil {
		return v
	}
	switch opts.Level {
	case ReadCommitted:
		return c.checkReadCommitted()
	case SnapshotIsolation:
		return c.checkSnapshot()
	default:
		return c.checkSerializable()
	}
}

// wref identifies a write: which transaction installed a value and at what
// replication position.
type wref struct {
	txn *digest
	seq uint64
	// final is false when the transaction overwrote this value itself
	// before committing (observing it would be an intermediate read).
	final bool
}

// extRead is one externally-visible read: the first observation of a key
// before the transaction's own write to it.
type extRead struct {
	key    string
	value  int64
	found  bool
	writer *digest // resolved installer; nil means the initial state
}

// digest is a committed transaction prepared for graph building.
type digest struct {
	t     *Txn
	node  int // node id (serializable encoding); SI uses 2*node, 2*node+1
	reads []extRead
	// writes maps key → final installed (value, seq).
	writes map[string]wref
}

func (d *digest) name() string { return d.t.Name() }

type checkerState struct {
	opts CheckOpts
	txns []*digest
	// writerOf resolves (key, value) → installing write.
	writerOf map[string]map[int64]wref
	// byKey lists, per key, the committed transactions that wrote it.
	byKey map[string][]*digest
}

// digestHistory runs the checks every isolation level shares — aborted
// reads, intermediate reads, internal (read-own-write) consistency — and
// builds the per-transaction digests for the graph stage.
func digestHistory(h *History, opts CheckOpts) (*checkerState, *Violation) {
	// Classify transactions and index every value written by a
	// transaction that could have committed.
	type cand struct {
		t      *Txn
		status TxnStatus
	}
	var cands []*cand
	byTxn := make(map[*Txn]*cand)
	for _, t := range h.Txns() {
		c := &cand{t: t, status: t.Status}
		cands = append(cands, c)
		byTxn[t] = c
	}
	// valueTxn: (key, value) → writing transaction, any status.
	valueTxn := make(map[string]map[int64]*cand)
	for _, c := range cands {
		for _, op := range c.t.Ops {
			if op.Kind != OpWrite || (!op.Applied && c.status == StatusCommitted) {
				// A committed write that affected no rows installed
				// nothing. (For unknown-status txns RowsAffected is
				// unreliable; keep them as candidates.)
				continue
			}
			m := valueTxn[op.Key]
			if m == nil {
				m = make(map[int64]*cand)
				valueTxn[op.Key] = m
			}
			m[op.Value] = c
		}
	}
	// Promote unknown-status transactions whose writes were observed:
	// somebody read the value, so the commit must have landed. The
	// engine aborts cleanly when COMMIT returns an error locally, so a
	// genuinely-aborted write is never observable; observation is proof.
	// Fixpoint because a promoted transaction's reads count as observers.
	observers := make([]*cand, 0, len(cands))
	for _, c := range cands {
		if c.status == StatusCommitted {
			observers = append(observers, c)
		}
	}
	for qi := 0; qi < len(observers); qi++ {
		for _, op := range observers[qi].t.Ops {
			if op.Kind != OpRead || !op.Found {
				continue
			}
			w := valueTxn[op.Key][op.Value]
			if w != nil && w.status == StatusUnknown {
				w.status = StatusCommitted
				observers = append(observers, w)
			}
		}
	}

	// Excuse transactions lost to 1-safe failover, and close the value
	// set over their writes so every vanished value is skippable.
	excused := opts.Excused
	excusedTxn := make(map[*cand]bool)
	if excused != nil {
		for _, c := range cands {
			for _, op := range c.t.Ops {
				if op.Kind == OpWrite && excused.Has(op.Key, op.Value) {
					excusedTxn[c] = true
				}
			}
			if excusedTxn[c] {
				for _, op := range c.t.Ops {
					if op.Kind == OpWrite {
						excused.Add(op.Key, op.Value)
					}
				}
			}
		}
	}

	// Build digests for the surviving committed transactions.
	cs := &checkerState{
		opts:     opts,
		writerOf: make(map[string]map[int64]wref),
		byKey:    make(map[string][]*digest),
	}
	digests := make(map[*cand]*digest)
	for _, c := range cands {
		if c.status != StatusCommitted || excusedTxn[c] {
			continue
		}
		d := &digest{t: c.t, node: len(cs.txns), writes: make(map[string]wref)}
		cs.txns = append(cs.txns, d)
		digests[c] = d
		for _, op := range c.t.Ops {
			if op.Kind != OpWrite || !op.Applied || excused.Has(op.Key, op.Value) {
				continue
			}
			d.writes[op.Key] = wref{txn: d, seq: op.Seq, final: true}
		}
		if len(d.writes) > 0 {
			for k := range d.writes {
				cs.byKey[k] = append(cs.byKey[k], d)
			}
		}
	}
	// Register every written value (final and intermediate) for read
	// resolution; intermediate values keep final=false.
	for c, d := range digests {
		last := make(map[string]int) // key → op index of final write
		for i, op := range c.t.Ops {
			if op.Kind == OpWrite && op.Applied && !excused.Has(op.Key, op.Value) {
				last[op.Key] = i
			}
		}
		for i, op := range c.t.Ops {
			if op.Kind != OpWrite || !op.Applied || excused.Has(op.Key, op.Value) {
				continue
			}
			m := cs.writerOf[op.Key]
			if m == nil {
				m = make(map[int64]wref)
				cs.writerOf[op.Key] = m
			}
			m[op.Value] = wref{txn: d, seq: op.Seq, final: last[op.Key] == i}
		}
	}

	// Per-transaction scan: internal consistency, aborted/intermediate
	// reads, and the external read set.
	for _, c := range cands {
		d := digests[c]
		if d == nil {
			continue
		}
		own := make(map[string]int64) // key → own latest installed value
		seen := make(map[string]int)  // key → index of first external read
		for _, op := range c.t.Ops {
			switch op.Kind {
			case OpWrite:
				if op.Applied {
					own[op.Key] = op.Value
				}
			case OpRead:
				if v, ok := own[op.Key]; ok {
					// Internal read: must observe the own pending write.
					if !op.Found || op.Value != v {
						return nil, &Violation{
							Level:   opts.Level.String(),
							Kind:    "internal",
							Message: fmt.Sprintf("%s read %s after writing it but observed %s instead of its own value %d", d.name(), op.Key, renderRead(op), v),
							Txns:    []string{d.t.Describe()},
						}
					}
					continue
				}
				if op.Found && excused.Has(op.Key, op.Value) {
					continue // observed a value 1-safe failover erased
				}
				er := extRead{key: op.Key, value: op.Value, found: op.Found}
				if op.Found {
					w, ok := cs.writerOf[op.Key][op.Value]
					if !ok {
						wc := valueTxn[op.Key][op.Value]
						kind, msg := "phantom-value", fmt.Sprintf("%s observed %s=%d, a value no transaction installed", d.name(), op.Key, op.Value)
						if wc != nil && wc.status == StatusAborted {
							kind = "dirty-read"
							msg = fmt.Sprintf("%s observed %s=%d written by aborted %s", d.name(), op.Key, op.Value, wc.t.Name())
						}
						viol := &Violation{Level: opts.Level.String(), Kind: kind, Message: msg, Txns: []string{d.t.Describe()}}
						if wc != nil {
							viol.Txns = append(viol.Txns, wc.t.Describe())
						}
						return nil, viol
					}
					if !w.final {
						return nil, &Violation{
							Level:   opts.Level.String(),
							Kind:    "intermediate-read",
							Message: fmt.Sprintf("%s observed %s=%d, an intermediate value %s overwrote before committing", d.name(), op.Key, op.Value, w.txn.name()),
							Txns:    []string{d.t.Describe(), w.txn.t.Describe()},
						}
					}
					er.writer = w.txn
				}
				if prev, ok := seen[op.Key]; ok {
					// Repeated external read. Equal observations are
					// redundant; differing ones are non-repeatable — an
					// anomaly at SI and above, legal at read committed
					// (where each read is checked independently).
					p := d.reads[prev]
					if p.found == er.found && p.value == er.value {
						continue
					}
					if opts.Level >= SnapshotIsolation {
						return nil, &Violation{
							Level:   opts.Level.String(),
							Kind:    "non-repeatable-read",
							Message: fmt.Sprintf("%s read %s twice and observed %s then %s", d.name(), op.Key, renderObs(p.found, p.value), renderRead(op)),
							Txns:    []string{d.t.Describe()},
						}
					}
				} else {
					seen[op.Key] = len(d.reads)
				}
				d.reads = append(d.reads, er)
			}
		}
	}
	return cs, nil
}

func renderRead(op Op) string { return renderObs(op.Found, op.Value) }

func renderObs(found bool, value int64) string {
	if !found {
		return "no row"
	}
	return fmt.Sprintf("%d", value)
}

// checkReadCommitted verifies Adya's PL-2: the universal checks already ran
// in digestHistory (G1a dirty reads, G1b intermediate reads), so what is
// left is G1c — no cycle of write-read and write-write dependencies. The
// write-write order per key is taken from binlog commit positions, which
// are authoritative because co-writers of one key always commit in a
// single position space (the key's master), whatever the topology.
func (cs *checkerState) checkReadCommitted() *Violation {
	g, init := cs.newTxnGraph()
	// wr edges.
	if v := cs.addWREdges(g, init); v != nil {
		return v
	}
	// ww edges per key in binlog order.
	for key, writers := range cs.byKey {
		ordered := seqOrdered(key, writers)
		for i := 1; i < len(ordered); i++ {
			u, v := ordered[i-1].node, ordered[i].node
			if g.wouldCycle(u, v) {
				return cs.violation(g, u, v, "ww("+key+")", "cycle",
					fmt.Sprintf("write-write order of %s closes a dependency cycle (G1c)", key))
			}
			g.addEdge(u, v, "ww("+key+")")
		}
	}
	return nil
}

// checkSerializable encodes each committed transaction as one node and
// saturates the serializability axiom: for every read of x from W and
// every other committed writer W' of x, either W' serializes before W or
// the reader serializes before W'.
func (cs *checkerState) checkSerializable() *Violation {
	g, init := cs.newTxnGraph()
	if v := cs.addWREdges(g, init); v != nil {
		return v
	}
	if v := cs.addOrderEdges(g, func(d *digest) (int, int) { return d.node, d.node }, init); v != nil {
		return v
	}
	var cons []constraint
	for _, d := range cs.txns {
		for _, r := range d.reads {
			w := r.writer
			for _, w2 := range cs.byKey[r.key] {
				if w2 == w || w2 == d {
					continue
				}
				if w == nil {
					// Reading the initial state of the key forces the
					// reader before every committed writer of it.
					if g.wouldCycle(d.node, w2.node) {
						return cs.violation(g, d.node, w2.node, "rw("+r.key+")", "cycle",
							fmt.Sprintf("%s read the initial state of %s, which %s overwrote", d.name(), r.key, w2.name()))
					}
					g.addEdge(d.node, w2.node, "rw("+r.key+")")
					continue
				}
				cons = append(cons, constraint{
					a1: w2.node, b1: w.node, l1: "ww(" + r.key + ")",
					a2: d.node, b2: w2.node, l2: "rw(" + r.key + ")",
					ground: groundOf(r.key, w2, w),
					desc:   fmt.Sprintf("%s read %s from %s while %s also wrote %s", d.name(), r.key, writerName(w), w2.name(), r.key),
				})
			}
		}
	}
	// Total write order per key.
	cons = append(cons, cs.wwConstraints(func(d *digest) (int, int) { return d.node, d.node })...)
	return cs.finish(g.solve(cons, cs.opts.Level.String()))
}

// checkSnapshot uses the two-event encoding (start node s, commit node c
// per transaction). Reads happen at s, writes install at c; snapshot
// isolation's axioms become: a read of x from W with co-writer W' needs
// W'.c before W.c or the reader's start before W'.c, and two committed
// writers of one key must not overlap (first-committer-wins).
func (cs *checkerState) checkSnapshot() *Violation {
	names := make([]string, 0, 2*len(cs.txns)+2)
	for _, d := range cs.txns {
		names = append(names, d.name()+".start", d.name()+".commit")
	}
	initNode := len(names)
	names = append(names, "init.start", "init.commit")
	g := newGraph(names)
	g.addEdge(initNode, initNode+1, "txn")
	sOf := func(d *digest) int { return 2 * d.node }
	cOf := func(d *digest) int { return 2*d.node + 1 }
	for _, d := range cs.txns {
		g.addEdge(sOf(d), cOf(d), "txn")
		g.addEdge(initNode+1, sOf(d), "init")
	}
	// wr: the installing commit precedes the reader's snapshot.
	for _, d := range cs.txns {
		for _, r := range d.reads {
			u := initNode + 1
			label := "wr(" + r.key + ":init)"
			if r.writer != nil {
				if r.writer == d {
					continue
				}
				u = cOf(r.writer)
				label = "wr(" + r.key + ")"
			}
			if g.wouldCycle(u, sOf(d)) {
				return cs.violation(g, u, sOf(d), label, "cycle", fmt.Sprintf("%s cannot observe %s=%s", d.name(), r.key, renderObs(r.found, r.value)))
			}
			g.addEdge(u, sOf(d), label)
		}
	}
	if v := cs.addOrderEdges(g, func(d *digest) (int, int) { return sOf(d), cOf(d) }, -1); v != nil {
		return v
	}
	var cons []constraint
	for _, d := range cs.txns {
		for _, r := range d.reads {
			w := r.writer
			for _, w2 := range cs.byKey[r.key] {
				if w2 == w || w2 == d {
					continue
				}
				if w == nil {
					// Reading the initial state: no committed writer of
					// the key may have committed before this snapshot.
					if g.wouldCycle(sOf(d), cOf(w2)) {
						return cs.violation(g, sOf(d), cOf(w2), "rw("+r.key+")", "cycle",
							fmt.Sprintf("%s read the initial state of %s, which %s overwrote", d.name(), r.key, w2.name()))
					}
					g.addEdge(sOf(d), cOf(w2), "rw("+r.key+")")
					continue
				}
				cons = append(cons, constraint{
					a1: cOf(w2), b1: cOf(w), l1: "ww(" + r.key + ")",
					a2: sOf(d), b2: cOf(w2), l2: "rw(" + r.key + ")",
					ground: groundOf(r.key, w2, w),
					desc:   fmt.Sprintf("%s read %s from %s while %s also wrote %s", d.name(), r.key, writerName(w), w2.name(), r.key),
				})
			}
		}
	}
	// First-committer-wins: committed writers of one key never overlap.
	cons = append(cons, cs.wwConstraints(func(d *digest) (int, int) { return sOf(d), cOf(d) })...)
	return cs.finish(g.solve(cons, cs.opts.Level.String()))
}

// wwConstraints emits, for every pair of committed writers of a key, the
// disjunction "W1 wholly before W2 or W2 wholly before W1" (between their
// commit events at SER, between commit and start at SI — the caller's
// node mapper decides). Ground truth orients each pair by binlog order.
func (cs *checkerState) wwConstraints(nodes func(*digest) (s, c int)) []constraint {
	var cons []constraint
	// Constraint order feeds the solver and its counterexamples: iterate
	// the key set in sorted order so a failing history reproduces the same
	// counterexample on every run instead of varying with map layout.
	keys := make([]string, 0, len(cs.byKey))
	for key := range cs.byKey { // lint:maporder-ok keys are sorted immediately below
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		writers := cs.byKey[key]
		for i := 0; i < len(writers); i++ {
			for j := i + 1; j < len(writers); j++ {
				w1, w2 := writers[i], writers[j]
				s1, c1 := nodes(w1)
				s2, c2 := nodes(w2)
				cons = append(cons, constraint{
					a1: c1, b1: s2, l1: "ww(" + key + ")",
					a2: c2, b2: s1, l2: "ww(" + key + ")",
					ground: groundOf(key, w1, w2),
					desc:   fmt.Sprintf("%s and %s both wrote %s", w1.name(), w2.name(), key),
				})
			}
		}
	}
	return cons
}

// groundOf returns which disjunct the binlog orders for the writer pair
// (1: w1 before w2, 2: w2 before w1, 0: unknown). Both writes carry the
// exact commit position of the key's master, so when both are present the
// order is authoritative.
func groundOf(key string, w1, w2 *digest) int {
	s1 := w1.writes[key].seq
	s2 := w2.writes[key].seq
	switch {
	case s1 == 0 || s2 == 0 || s1 == s2:
		return 0
	case s1 < s2:
		return 1
	default:
		return 2
	}
}

func writerName(w *digest) string {
	if w == nil {
		return "the initial state"
	}
	return w.name()
}

// newTxnGraph builds the one-node-per-transaction graph plus the virtual
// initial transaction, returning the graph and the init node id.
func (cs *checkerState) newTxnGraph() (*graph, int) {
	names := make([]string, 0, len(cs.txns)+1)
	for _, d := range cs.txns {
		names = append(names, d.name())
	}
	init := len(names)
	names = append(names, "init")
	g := newGraph(names)
	for _, d := range cs.txns {
		g.addEdge(init, d.node, "init")
	}
	return g, init
}

// addWREdges installs writer→reader edges on a one-node-per-txn graph.
func (cs *checkerState) addWREdges(g *graph, init int) *Violation {
	for _, d := range cs.txns {
		for _, r := range d.reads {
			u, label := init, "wr("+r.key+":init)"
			if r.writer != nil {
				if r.writer == d {
					continue
				}
				u, label = r.writer.node, "wr("+r.key+")"
			}
			if g.has(u, d.node) {
				g.addEdge(u, d.node, label)
				continue
			}
			if g.wouldCycle(u, d.node) {
				return cs.violation(g, u, d.node, label, "cycle",
					fmt.Sprintf("%s observing %s=%s closes a dependency cycle", d.name(), r.key, renderObs(r.found, r.value)))
			}
			g.addEdge(u, d.node, label)
		}
	}
	return nil
}

// addOrderEdges installs session-order and (optionally) real-time edges.
// nodes maps a digest to its (first, last) event; the edge runs from the
// predecessor's last event to the successor's first. init < 0 skips
// nothing — it is only used to keep signatures uniform.
func (cs *checkerState) addOrderEdges(g *graph, nodes func(*digest) (int, int), init int) *Violation {
	_ = init
	// Session order: consecutive committed txns of one session.
	bySession := make(map[int][]*digest)
	for _, d := range cs.txns {
		bySession[d.t.Session] = append(bySession[d.t.Session], d)
	}
	for _, seq := range bySession {
		for i := 1; i < len(seq); i++ {
			_, c := nodes(seq[i-1])
			s, _ := nodes(seq[i])
			if g.wouldCycle(c, s) {
				return cs.violation(g, c, s, "so", "cycle",
					fmt.Sprintf("session order %s → %s closes a dependency cycle", seq[i-1].name(), seq[i].name()))
			}
			g.addEdge(c, s, "so")
		}
	}
	if !cs.opts.RealTime {
		return nil
	}
	// Real-time order: T1 ended strictly before T2 started. Inserting in
	// ascending end-time order maximizes O(1) already-implied skips.
	ordered := make([]*digest, len(cs.txns))
	copy(ordered, cs.txns)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].t.End > ordered[j].t.End; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	for _, d1 := range ordered {
		_, c := nodes(d1)
		for _, d2 := range cs.txns {
			if d1 == d2 || d1.t.End >= d2.t.Start {
				continue
			}
			s, _ := nodes(d2)
			if g.has(c, s) {
				continue
			}
			if g.wouldCycle(c, s) {
				return cs.violation(g, c, s, "rt", "cycle",
					fmt.Sprintf("real-time order %s → %s closes a dependency cycle", d1.name(), d2.name()))
			}
			g.addEdge(c, s, "rt")
		}
	}
	return nil
}

// violation builds a cycle Violation for the edge u→v(label) and attaches
// the transactions on the cycle.
func (cs *checkerState) violation(g *graph, u, v int, label, kind, msg string) *Violation {
	return cs.finish(&Violation{
		Level:   cs.opts.Level.String(),
		Kind:    kind,
		Message: msg,
		Steps:   g.cycleWith(u, v, label),
	})
}

// finish attaches Describe() lines for the transactions named in the
// counterexample steps.
func (cs *checkerState) finish(v *Violation) *Violation {
	if v == nil || len(v.Txns) > 0 {
		return v
	}
	named := make(map[string]bool)
	for _, d := range cs.txns {
		named[d.name()] = false
	}
	for _, step := range v.Steps {
		for _, d := range cs.txns {
			if !named[d.name()] && containsName(step, d.name()) {
				named[d.name()] = true
				v.Txns = append(v.Txns, d.t.Describe())
				if len(v.Txns) >= 8 {
					return v
				}
			}
		}
	}
	return v
}

func containsName(step, name string) bool {
	for i := 0; i+len(name) <= len(step); i++ {
		if step[i:i+len(name)] == name {
			// Reject prefix matches like s1/t1 inside s1/t12.
			j := i + len(name)
			if j < len(step) && step[j] >= '0' && step[j] <= '9' {
				continue
			}
			return true
		}
	}
	return false
}

// seqOrdered returns the writers of key that carry a binlog position,
// sorted by it.
func seqOrdered(key string, writers []*digest) []*digest {
	out := make([]*digest, 0, len(writers))
	for _, w := range writers {
		if w.writes[key].seq > 0 {
			out = append(out, w)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].writes[key].seq > out[j].writes[key].seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
