// Package bench implements the paper's experiment suite: one function per
// figure (F1–F8) and per quantitative claim (C1–C10) of DESIGN.md. Each
// returns printable rows so both `go test -bench` and cmd/replbench can
// regenerate the series. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqltypes"
	"repro/internal/workload"
)

// Row is one line of an experiment's output table.
type Row struct {
	Label  string
	Values map[string]float64
	Order  []string // column order
}

// Format renders the row for terminal output.
func (r Row) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s", r.Label)
	for _, k := range r.Order {
		fmt.Fprintf(&sb, " %s=%.2f", k, r.Values[k])
	}
	return sb.String()
}

// Options tunes experiment scale so `go test` stays fast while replbench
// can run longer windows.
type Options struct {
	// Measure is the measurement window per data point (default 400 ms).
	Measure time.Duration
	// Clients is the closed-loop client count per replica (default 4).
	Clients int
}

func (o Options) fill() Options {
	if o.Measure == 0 {
		o.Measure = 400 * time.Millisecond
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	return o
}

// replicaCfg is the standard modelled replica: 4 ms reads, 6 ms writes,
// 4 concurrent workers (≈1000 reads/s of capacity per replica). Costs are
// deliberately large relative to the host's real per-statement CPU cost so
// that scalability shapes reflect modelled replica capacity, not the test
// machine (see DESIGN.md "service-time model").
func replicaCfg(name string) core.ReplicaConfig {
	return core.ReplicaConfig{
		Name:        name,
		Concurrency: 4,
		ReadCost:    4 * time.Millisecond,
		WriteCost:   6 * time.Millisecond,
	}
}

func buildReplicas(n int, cost bool) []*core.Replica {
	out := make([]*core.Replica, n)
	for i := range out {
		cfg := replicaCfg(fmt.Sprintf("r%d", i+1))
		if !cost {
			cfg.ReadCost, cfg.WriteCost = 0, 0
		}
		cfg.Engine.RandSeed = int64(i + 1)
		out[i] = core.NewReplica(cfg)
	}
	return out
}

const benchTable = "bookings"

func setupMS(nSlaves int, cfg core.MasterSlaveConfig, keys int) (*core.MasterSlave, error) {
	return setupMSCost(nSlaves, cfg, keys, true)
}

// setupMSCost optionally disables modelled service time: the interception
// experiments (F5–F8) measure pure layer overhead, so their replicas must
// not sleep.
func setupMSCost(nSlaves int, cfg core.MasterSlaveConfig, keys int, cost bool) (*core.MasterSlave, error) {
	reps := buildReplicas(nSlaves+1, cost)
	ms := core.NewMasterSlave(reps[0], reps[1:], cfg)
	sess := ms.NewSession("setup")
	defer sess.Close()
	if _, err := sess.Exec("CREATE DATABASE app"); err != nil {
		return nil, err
	}
	if _, err := sess.Exec("USE app"); err != nil {
		return nil, err
	}
	mix := workload.Mix{Table: benchTable, Keys: keys}
	if err := mix.Setup(clientOf(sess), keys); err != nil {
		return nil, err
	}
	// Wait for slaves before measuring.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		max := uint64(0)
		for _, l := range ms.SlaveLag() {
			if l > max {
				max = l
			}
		}
		if max == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return ms, nil
}

type execer interface {
	Exec(sql string, args ...sqltypes.Value) (*engine.Result, error)
}

func clientOf(e execer) workload.Client {
	return workload.ClientFunc(func(sql string, args ...sqltypes.Value) (*engine.Result, error) {
		return e.Exec(sql, args...)
	})
}

func msClientFactory(ms *core.MasterSlave) func(int) (workload.Client, error) {
	return func(int) (workload.Client, error) {
		s := ms.NewSession(fmt.Sprintf("c"))
		if _, err := s.Exec("USE app"); err != nil {
			return nil, err
		}
		return clientOf(s), nil
	}
}

// F1ScaleOutReads measures read throughput versus slave count for
// asynchronous master-slave replication (Figure 1: "the system can scale
// linearly by merely adding more slave nodes").
func F1ScaleOutReads(opts Options) ([]Row, error) {
	opts = opts.fill()
	var rows []Row
	for _, slaves := range []int{1, 2, 3, 4} {
		ms, err := setupMS(slaves, core.MasterSlaveConfig{Consistency: core.ReadAny}, 25)
		if err != nil {
			return nil, err
		}
		mix := workload.Mix{ReadFraction: 1.0, Keys: 25, Table: benchTable}
		res, err := workload.RunClosed(msClientFactory(ms), opts.Clients*slaves, mix, opts.Measure)
		ms.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Label:  fmt.Sprintf("slaves=%d", slaves),
			Values: map[string]float64{"reads/s": res.ThroughputTotal, "p95_ms": float64(res.ReadLatency.Percentile(95)) / 1e6},
			Order:  []string{"reads/s", "p95_ms"},
		})
	}
	return rows, nil
}

// F2PartitionedWrites measures write throughput versus partition count
// (Figure 2: "updates can be done in parallel to partitioned data
// segments") against a fully replicated single cluster of the same size.
func F2PartitionedWrites(opts Options) ([]Row, error) {
	opts = opts.fill()
	var rows []Row
	for _, parts := range []int{1, 2, 3, 4} {
		clusters := make([]*core.MasterSlave, parts)
		for i := range clusters {
			reps := buildReplicas(1, true)
			clusters[i] = core.NewMasterSlave(reps[0], nil, core.MasterSlaveConfig{ReadFromMaster: true})
		}
		pc, err := core.NewPartitioned(clusters, []*core.PartitionRule{{
			Table: benchTable, Column: "id", Strategy: core.HashPartition,
		}})
		if err != nil {
			return nil, err
		}
		boot := pc.NewSession("setup")
		if _, err := boot.Exec("CREATE DATABASE app"); err != nil {
			return nil, err
		}
		if _, err := boot.Exec("USE app"); err != nil {
			return nil, err
		}
		if _, err := boot.Exec(fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY, name TEXT, price FLOAT DEFAULT 1, stock INTEGER DEFAULT 1000000)", benchTable)); err != nil {
			return nil, err
		}
		for id := 1; id <= 120; id++ {
			if _, err := boot.Exec(fmt.Sprintf("INSERT INTO %s (id, name) VALUES (%d, 'x')", benchTable, id)); err != nil {
				return nil, err
			}
		}
		boot.Close()
		mkClient := func(int) (workload.Client, error) {
			s := pc.NewSession("c")
			if _, err := s.Exec("USE app"); err != nil {
				return nil, err
			}
			return clientOf(s), nil
		}
		mix := workload.Mix{ReadFraction: 0, Keys: 120, Table: benchTable}
		res, err := workload.RunClosed(mkClient, opts.Clients*parts, mix, opts.Measure)
		pc.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Label:  fmt.Sprintf("partitions=%d", parts),
			Values: map[string]float64{"writes/s": res.ThroughputTotal, "p95_ms": float64(res.WriteLatency.Percentile(95)) / 1e6},
			Order:  []string{"writes/s", "p95_ms"},
		})
	}
	return rows, nil
}

// F3HotStandbyFailover measures the hot-standby pipeline of Figure 3:
// commit latency under 1-safe vs 2-safe, then failover time and lost
// transactions when the master crashes with a lagging slave.
func F3HotStandbyFailover(opts Options) ([]Row, error) {
	opts = opts.fill()
	var rows []Row
	for _, safety := range []core.SafetyMode{core.OneSafe, core.TwoSafe} {
		label := "1-safe"
		if safety == core.TwoSafe {
			label = "2-safe"
		}
		ms, err := setupMS(1, core.MasterSlaveConfig{
			Safety:     safety,
			ApplyDelay: 2 * time.Millisecond,
		}, 50)
		if err != nil {
			return nil, err
		}
		mon := core.NewMonitor(ms, time.Millisecond)
		mon.Start()

		sess := ms.NewSession("bench")
		if _, err := sess.Exec("USE app"); err != nil {
			return nil, err
		}
		lat := time.Duration(0)
		const commits = 50
		for i := 0; i < commits; i++ {
			t0 := time.Now()
			if _, err := sess.Exec(fmt.Sprintf("UPDATE %s SET stock = stock - 1 WHERE id = %d", benchTable, i%50+1)); err != nil {
				return nil, err
			}
			lat += time.Since(t0)
		}
		// Crash the master; the monitor detects and promotes.
		old := ms.Master()
		crash := time.Now()
		old.Fail()
		deadline := time.Now().Add(5 * time.Second)
		for ms.Master() == old && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		failoverTime := time.Since(crash)
		lost := ms.LostTransactions()
		mon.Stop()
		sess.Close()
		ms.Close()
		rows = append(rows, Row{
			Label: label,
			Values: map[string]float64{
				"commit_ms":   float64(lat/commits) / 1e6,
				"failover_ms": float64(failoverTime) / 1e6,
				"lost_txns":   float64(lost),
			},
			Order: []string{"commit_ms", "failover_ms", "lost_txns"},
		})
	}
	return rows, nil
}

// F4WANReplication measures Figure 4's 3-site multi-way master/slave:
// local-owner vs remote-owner write latency under WAN delays.
func F4WANReplication(opts Options) ([]Row, error) {
	opts = opts.fill()
	var rows []Row
	for _, wanLat := range []time.Duration{20 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond} {
		sites := []*core.SiteConfig{}
		for _, n := range []string{"eu", "us", "asia"} {
			reps := buildReplicas(1, true)
			cluster := core.NewMasterSlave(reps[0], nil, core.MasterSlaveConfig{ReadFromMaster: true})
			boot := cluster.NewSession("boot")
			if _, err := boot.Exec("CREATE DATABASE app"); err != nil {
				return nil, err
			}
			if _, err := boot.Exec("USE app"); err != nil {
				return nil, err
			}
			if _, err := boot.Exec("CREATE TABLE bookings (id INTEGER PRIMARY KEY AUTO_INCREMENT, region TEXT, what TEXT)"); err != nil {
				return nil, err
			}
			boot.Close()
			sites = append(sites, &core.SiteConfig{Name: n, Cluster: cluster, OwnedKeys: []core.Value{core.NewStringValue(n)}})
		}
		w, err := core.NewWAN(sites, core.WANConfig{Table: "bookings", Column: "region", Latency: wanLat})
		if err != nil {
			return nil, err
		}
		sess, err := w.NewSession("eu", "bench")
		if err != nil {
			return nil, err
		}
		if _, err := sess.Exec("USE app"); err != nil {
			return nil, err
		}
		measure := func(region string) (time.Duration, error) {
			const n = 5
			var total time.Duration
			for i := 0; i < n; i++ {
				t0 := time.Now()
				if _, err := sess.Exec(fmt.Sprintf("INSERT INTO bookings (region, what) VALUES ('%s', 'x')", region)); err != nil {
					return 0, err
				}
				total += time.Since(t0)
			}
			return total / n, nil
		}
		local, err := measure("eu")
		if err != nil {
			return nil, err
		}
		remote, err := measure("asia")
		if err != nil {
			return nil, err
		}
		sess.Close()
		w.Close()
		for _, s := range sites {
			s.Cluster.Close()
		}
		rows = append(rows, Row{
			Label: fmt.Sprintf("wan=%v", wanLat),
			Values: map[string]float64{
				"local_ms":  float64(local) / 1e6,
				"remote_ms": float64(remote) / 1e6,
			},
			Order: []string{"local_ms", "remote_ms"},
		})
	}
	return rows, nil
}
